# include-what-they-ship guard, run as a ctest via
#   cmake -DSOURCE_DIR=<repo> -P cmake/include_guard.cmake
#
# tools/ and examples/ are the shipped consumers of the library: they must
# obtain algorithms exclusively through the ftsched:: facade
# (api/api.hpp + SchedulerRegistry), never by including the per-algorithm
# implementation headers under algo/ directly. The same grep runs in CI.
if(NOT SOURCE_DIR)
  message(FATAL_ERROR "include_guard.cmake needs -DSOURCE_DIR")
endif()

file(GLOB shipped
     ${SOURCE_DIR}/tools/*.cpp ${SOURCE_DIR}/tools/*.hpp
     ${SOURCE_DIR}/examples/*.cpp ${SOURCE_DIR}/examples/*.hpp)

# An empty glob means the guard is scanning nothing (e.g. a moved
# directory) — fail loudly instead of passing vacuously.
if(NOT shipped)
  message(FATAL_ERROR
    "include guard found no sources under ${SOURCE_DIR}/tools and "
    "${SOURCE_DIR}/examples — wrong SOURCE_DIR?")
endif()

set(violations "")
foreach(source ${shipped})
  file(STRINGS ${source} bad_includes REGEX "#include[ \t]+\"algo/")
  if(bad_includes)
    string(APPEND violations "  ${source}: ${bad_includes}\n")
  endif()
endforeach()

if(violations)
  message(FATAL_ERROR
    "tools/ and examples/ must consume algorithms via the api/ facade "
    "(SchedulerRegistry), not algo/*.hpp directly:\n${violations}")
endif()

message(STATUS "include guard clean: tools/ and examples/ use api/ only")
