# Subprocess-backend identity gate, run as a ctest via
#   cmake -DCLI=<campaign_cli> -DWORK_DIR=<scratch>
#         -P cmake/campaign_subprocess.cmake
#
# The same campaign runs once in-process and once through the subprocess
# backend at 1, 2 and 4 workers; all four JSON summaries must match byte
# for byte (the scale-out determinism contract of api/session.hpp). Two
# samplers are covered: the paper's uniform-k (discrete masks) and a crash
# window (continuous θ, a non-trivial latency-quantile stream).
if(NOT CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "campaign_subprocess.cmake needs -DCLI and -DWORK_DIR")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})

foreach(sampler_args
    "--sampler;uniform"
    "--sampler;window;--k;2;--theta-lo;0;--theta-hi;800")
  set(common_args
      --replays 300 --procs 10 --eps 1 --tasks 40
      --instance-seed 11 --seed 99 --algos caft,ftsa ${sampler_args})

  execute_process(
    COMMAND ${CLI} ${common_args} --json single
    OUTPUT_QUIET
    RESULT_VARIABLE single_rc
    WORKING_DIRECTORY ${WORK_DIR})
  if(NOT single_rc EQUAL 0)
    message(FATAL_ERROR "campaign_cli (single-process run) exited with ${single_rc}")
  endif()

  foreach(workers 1 2 4)
    execute_process(
      COMMAND ${CLI} ${common_args}
              --exec subprocess --workers ${workers} --json sub${workers}
      OUTPUT_QUIET
      RESULT_VARIABLE sub_rc
      WORKING_DIRECTORY ${WORK_DIR})
    if(NOT sub_rc EQUAL 0)
      message(FATAL_ERROR
        "campaign_cli (--exec subprocess --workers ${workers}) exited with ${sub_rc}")
    endif()
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              ${WORK_DIR}/single_campaign.json
              ${WORK_DIR}/sub${workers}_campaign.json
      RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
      message(FATAL_ERROR
        "subprocess campaign summary at ${workers} worker(s) differs from "
        "the single-process summary (${sampler_args}) — the scale-out "
        "determinism contract is broken")
    endif()
  endforeach()
endforeach()

message(STATUS "subprocess campaign summaries identical at 1, 2 and 4 workers")
