# Subprocess-backend identity gate, run as a ctest via
#   cmake -DCLI=<campaign_cli> -DWORK_DIR=<scratch>
#         -P cmake/campaign_subprocess.cmake
#
# The same campaign runs once in-process and once through the subprocess
# backend at 1, 2 and 4 workers; all four JSON summaries must match byte
# for byte (the scale-out determinism contract of api/session.hpp). Two
# samplers are covered: the paper's uniform-k (discrete masks) and a crash
# window (continuous θ, a non-trivial latency-quantile stream).
# With -DOBS=ON the subprocess runs additionally carry
# --trace-out/--metrics-out/--progress; the JSON summaries must STILL be
# byte-identical to the uninstrumented single-process run (observability
# inertness across the process boundary).
#
# A second leg replays the same identity check through the *streaming*
# coordinator under memory pressure: --block-replays 25 splits the 300
# replays into 12 blocks and --reorder-window 2 forces the fold to run
# with at most two blocks buffered, so out-of-order completions must be
# held back and folded in canonical order — the summary must still match
# the single-process run byte for byte.
if(NOT CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "campaign_subprocess.cmake needs -DCLI and -DWORK_DIR")
endif()

set(OBS_ARGS "")
if(OBS)
  set(OBS_ARGS --trace-out trace.json --metrics-out metrics.json --progress)
endif()

file(MAKE_DIRECTORY ${WORK_DIR})

foreach(sampler_args
    "--sampler;uniform"
    "--sampler;window;--k;2;--theta-lo;0;--theta-hi;800")
  set(common_args
      --replays 300 --procs 10 --eps 1 --tasks 40
      --instance-seed 11 --seed 99 --algos caft,ftsa ${sampler_args})

  execute_process(
    COMMAND ${CLI} ${common_args} --json single
    OUTPUT_QUIET
    RESULT_VARIABLE single_rc
    WORKING_DIRECTORY ${WORK_DIR})
  if(NOT single_rc EQUAL 0)
    message(FATAL_ERROR "campaign_cli (single-process run) exited with ${single_rc}")
  endif()

  foreach(workers 1 2 4)
    execute_process(
      COMMAND ${CLI} ${common_args} ${OBS_ARGS}
              --exec subprocess --workers ${workers} --json sub${workers}
      OUTPUT_QUIET
      RESULT_VARIABLE sub_rc
      WORKING_DIRECTORY ${WORK_DIR})
    if(NOT sub_rc EQUAL 0)
      message(FATAL_ERROR
        "campaign_cli (--exec subprocess --workers ${workers}) exited with ${sub_rc}")
    endif()
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              ${WORK_DIR}/single_campaign.json
              ${WORK_DIR}/sub${workers}_campaign.json
      RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
      message(FATAL_ERROR
        "subprocess campaign summary at ${workers} worker(s) differs from "
        "the single-process summary (${sampler_args}) — the scale-out "
        "determinism contract is broken")
    endif()
  endforeach()

  # Streaming-coordinator leg: small blocks + a tight reorder window, so
  # the O(blocks-in-flight) fold path (not the window-never-fills happy
  # path) is what produces the summary.
  foreach(workers 2 4)
    execute_process(
      COMMAND ${CLI} ${common_args} ${OBS_ARGS}
              --exec subprocess --workers ${workers}
              --block-replays 25 --reorder-window 2 --json stream${workers}
      OUTPUT_QUIET
      RESULT_VARIABLE stream_rc
      WORKING_DIRECTORY ${WORK_DIR})
    if(NOT stream_rc EQUAL 0)
      message(FATAL_ERROR
        "campaign_cli (streaming fold, --workers ${workers} "
        "--block-replays 25 --reorder-window 2) exited with ${stream_rc}")
    endif()
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              ${WORK_DIR}/single_campaign.json
              ${WORK_DIR}/stream${workers}_campaign.json
      RESULT_VARIABLE stream_diff_rc)
    if(NOT stream_diff_rc EQUAL 0)
      message(FATAL_ERROR
        "streaming-fold campaign summary at ${workers} worker(s) with a "
        "2-block reorder window differs from the single-process summary "
        "(${sampler_args}) — the canonical-order fold is broken")
    endif()
  endforeach()
endforeach()

if(OBS)
  file(READ ${WORK_DIR}/trace.json trace_content)
  if(NOT trace_content MATCHES "worker-slot-")
    message(FATAL_ERROR "--trace-out carries no per-worker subprocess spans")
  endif()
  file(READ ${WORK_DIR}/metrics.json metrics_content)
  if(NOT metrics_content MATCHES "caft-metrics/v1")
    message(FATAL_ERROR "--metrics-out produced no caft-metrics/v1 document")
  endif()
  message(STATUS
    "subprocess campaign summaries identical at 1, 2 and 4 workers "
    "(incl. streaming fold, reorder window 2) with observability on")
else()
  message(STATUS
    "subprocess campaign summaries identical at 1, 2 and 4 workers "
    "(incl. streaming fold, reorder window 2)")
endif()
