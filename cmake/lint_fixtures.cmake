# ftsched_lint fixture gate, run as a ctest via
#   cmake -DLINT=<binary> -DFIXTURES=<repo>/tests/lint_fixtures -P …
#
# Asserts the linter's whole behavioural contract against the committed
# fixture corpus: every rule fires at the expected file:line (byte-exact
# against expected.txt), suppressions suppress, the --rule filter
# restricts output to that rule, and bad invocations fail loudly.
if(NOT LINT OR NOT FIXTURES)
  message(FATAL_ERROR "lint_fixtures.cmake needs -DLINT and -DFIXTURES")
endif()

file(READ ${FIXTURES}/expected.txt expected)

# ------------------------------------------------ full run: exact output
execute_process(
  COMMAND ${LINT} --root ${FIXTURES}
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE summary
  RESULT_VARIABLE code)
if(NOT code EQUAL 1)
  message(FATAL_ERROR
    "ftsched_lint on the fixture corpus must exit 1 (findings), got "
    "${code}:\n${actual}${summary}")
endif()
if(NOT actual STREQUAL expected)
  message(FATAL_ERROR
    "fixture findings drifted from tests/lint_fixtures/expected.txt.\n"
    "--- expected ---\n${expected}\n--- actual ---\n${actual}\n"
    "If the change is intentional, regenerate: "
    "./build/tools/ftsched_lint --root tests/lint_fixtures > "
    "tests/lint_fixtures/expected.txt")
endif()

# --------------------------------------- --rule filter: layering subset
string(REPLACE "\n" ";" expected_lines "${expected}")
set(want_layering "")
foreach(line ${expected_lines})
  if(line MATCHES ": layering: ")
    string(APPEND want_layering "${line}\n")
  endif()
endforeach()

execute_process(
  COMMAND ${LINT} --root ${FIXTURES} --rule layering
  OUTPUT_VARIABLE actual_layering
  ERROR_QUIET
  RESULT_VARIABLE code)
if(NOT code EQUAL 1)
  message(FATAL_ERROR "--rule layering on fixtures must exit 1, got ${code}")
endif()
if(NOT actual_layering STREQUAL want_layering)
  message(FATAL_ERROR
    "--rule layering must report exactly the layering subset of "
    "expected.txt.\n--- expected ---\n${want_layering}\n--- actual ---\n"
    "${actual_layering}")
endif()

# ------------------------------------------------- bad invocations fail
execute_process(
  COMMAND ${LINT} --root ${FIXTURES} --rule no-such-rule
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE code)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "unknown --rule must exit 2, got ${code}")
endif()

execute_process(
  COMMAND ${LINT} --root ${FIXTURES}/does-not-exist
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE code)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "missing --root must exit 2 (never pass vacuously), "
    "got ${code}")
endif()

message(STATUS "ftsched_lint fixtures: all rules fire as pinned, "
  "suppressions and --rule filter behave")
