# Golden-file regression for `caft_cli schedule` through the registry path,
# run as a ctest via
#   cmake -DCLI=<caft_cli> -DGOLDEN_DIR=<tests/golden>
#         -DWORK_DIR=<scratch> -P cmake/caft_cli_golden.cmake
#
# One pinned instance (random family, m=10, granularity 1.0, seed 11) is
# generated, then scheduled with *every* registered algorithm name at
# eps=2; the concatenated schedule reports must match the committed golden
# byte for byte. Regenerate with tools/regen_caft_cli_golden.sh after an
# intentional change.
if(NOT CLI OR NOT GOLDEN_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR "caft_cli_golden.cmake needs -DCLI, -DGOLDEN_DIR and -DWORK_DIR")
endif()

set(ALGOS caft caft-batch ftsa ftbar heft)

file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${CLI} generate --family random --procs 10 --granularity 1.0
          --seed 11 --out instance.txt
  OUTPUT_QUIET
  RESULT_VARIABLE generate_rc
  WORKING_DIRECTORY ${WORK_DIR})
if(NOT generate_rc EQUAL 0)
  message(FATAL_ERROR "caft_cli generate exited with ${generate_rc}")
endif()

set(REPORT "")
foreach(algo ${ALGOS})
  execute_process(
    COMMAND ${CLI} schedule --in instance.txt --algo ${algo} --eps 2
    OUTPUT_VARIABLE algo_out
    RESULT_VARIABLE algo_rc
    WORKING_DIRECTORY ${WORK_DIR})
  if(NOT algo_rc EQUAL 0)
    message(FATAL_ERROR
      "caft_cli schedule --algo ${algo} exited with ${algo_rc} (a valid "
      "schedule exits 0)")
  endif()
  string(APPEND REPORT "${algo_out}")
endforeach()

# The registry's unknown-algo error is part of the CLI contract too.
execute_process(
  COMMAND ${CLI} schedule --in instance.txt --algo no-such-algo
  ERROR_VARIABLE unknown_err
  OUTPUT_QUIET
  RESULT_VARIABLE unknown_rc
  WORKING_DIRECTORY ${WORK_DIR})
if(unknown_rc EQUAL 0)
  message(FATAL_ERROR "caft_cli schedule accepted an unknown algorithm")
endif()
if(NOT unknown_err MATCHES "unknown algo 'no-such-algo'; known: caft, caft-batch, ftsa, ftbar, heft")
  message(FATAL_ERROR
    "unknown-algo error message does not list the registry names: ${unknown_err}")
endif()

file(WRITE ${WORK_DIR}/caft_cli_schedule.txt "${REPORT}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/caft_cli_schedule.txt
          ${GOLDEN_DIR}/caft_cli_schedule.txt
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "caft_cli schedule output differs from the golden "
    "tests/golden/caft_cli_schedule.txt.\n"
    "If the change is intentional, regenerate with "
    "tools/regen_caft_cli_golden.sh <build-dir> and commit the result.")
endif()

message(STATUS "caft_cli schedule golden outputs match for: ${ALGOS}")
