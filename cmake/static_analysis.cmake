# Static-analysis wiring: warnings-as-errors, the in-repo determinism
# linter, and clang-tidy over the exported compile database.
#
#   FTSCHED_WERROR=ON   promote the global -Wall -Wextra to -Werror (CI
#                       builds turn this on; default OFF so an older local
#                       compiler with extra warnings never blocks a build)
#   lint   target       run ftsched_lint over the source tree (all rules)
#   tidy   target       run clang-tidy (via run-clang-tidy when available)
#                       over compile_commands.json with the repo .clang-tidy
#
# The same checks gate ctest: `ftsched_lint` (full rule set, committed
# tree must be clean), `include_what_they_ship` (the layering rule, which
# absorbed the old cmake/include_guard.cmake grep) and
# `ftsched_lint_fixtures` (the linter's own behavioural contract).

option(FTSCHED_WERROR "Treat compiler warnings as errors" OFF)
if(FTSCHED_WERROR)
  add_compile_options(-Werror)
endif()

# clang-tidy consumes the compile database; always export it.
set(CMAKE_EXPORT_COMPILE_COMMANDS ON)

# The $<TARGET_FILE:…> expression resolves at generate time, so this
# module may be included before the tools are declared; the top-level
# CMakeLists adds the lint -> ftsched_lint build dependency once the
# binary target exists.
add_custom_target(lint
  COMMAND $<TARGET_FILE:ftsched_lint> --root ${CMAKE_SOURCE_DIR}
  COMMENT "ftsched_lint: determinism-contract rules over src/ tools/ examples/ tests/ bench/"
  VERBATIM)

# tidy is gated on the tool being installed: the container image bakes in
# only the gcc toolchain, so locally this degrades to a clear message
# instead of a hard configure failure; CI installs clang-tidy and runs it.
find_program(FTSCHED_CLANG_TIDY clang-tidy)
find_program(FTSCHED_RUN_CLANG_TIDY run-clang-tidy)
if(FTSCHED_CLANG_TIDY AND FTSCHED_RUN_CLANG_TIDY)
  add_custom_target(tidy
    COMMAND ${FTSCHED_RUN_CLANG_TIDY} -p ${CMAKE_BINARY_DIR} -quiet
            "${CMAKE_SOURCE_DIR}/src/.*"
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-tidy over compile_commands.json (src/)"
    VERBATIM)
elseif(FTSCHED_CLANG_TIDY)
  file(GLOB_RECURSE FTSCHED_TIDY_SOURCES CONFIGURE_DEPENDS
       ${CMAKE_SOURCE_DIR}/src/*.cpp)
  add_custom_target(tidy
    COMMAND ${FTSCHED_CLANG_TIDY} -p ${CMAKE_BINARY_DIR} --quiet
            ${FTSCHED_TIDY_SOURCES}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-tidy over compile_commands.json (src/)"
    VERBATIM)
else()
  add_custom_target(tidy
    COMMAND ${CMAKE_COMMAND} -E echo
            "clang-tidy not found; install it (or use the CI static-analysis job) to run the tidy target"
    VERBATIM)
endif()
