# Golden-file regression for campaign_cli, run as a ctest via
#   cmake -DCLI=<campaign_cli> -DGOLDEN_DIR=<tests/golden>
#         -DWORK_DIR=<scratch> -P cmake/campaign_golden.cmake
#
# The CLI is invoked twice with a pinned instance/campaign seed: once for
# the text report (stdout contains no filesystem paths), once for the CSV +
# JSON artifacts. All three outputs must match the committed goldens byte
# for byte. Regenerate with tools/regen_campaign_golden.sh after an
# *intentional* statistics or formatting change.
# With -DOBS=ON every invocation additionally writes a Chrome trace and a
# caft-metrics/v1 snapshot — the reports must STILL match the goldens byte
# for byte (the observability inertness contract), and the artifacts must
# be produced and well-formed enough to carry their schema markers.
if(NOT CLI OR NOT GOLDEN_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR "campaign_golden.cmake needs -DCLI, -DGOLDEN_DIR and -DWORK_DIR")
endif()

set(GOLDEN_ARGS
    --replays 200 --procs 8 --eps 1 --tasks 30
    --instance-seed 7 --seed 123 --algos caft,ftsa)

set(OBS_ARGS "")
if(OBS)
  set(OBS_ARGS --trace-out trace.json --metrics-out metrics.json)
endif()

file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${CLI} ${GOLDEN_ARGS} ${OBS_ARGS}
  OUTPUT_FILE ${WORK_DIR}/campaign_report.txt
  RESULT_VARIABLE text_rc
  WORKING_DIRECTORY ${WORK_DIR})
if(NOT text_rc EQUAL 0)
  message(FATAL_ERROR "campaign_cli (text run) exited with ${text_rc}")
endif()

# Memo-placement cross-checks: the per-worker scratch memo, the shared
# concurrent memo, and the bit-exactness escape hatch must all reproduce the
# *same* golden text byte for byte (memo placement is unobservable in every
# report; see campaign/campaign.hpp).
foreach(memo_variant "scratch" "shared")
  set(variant_args --memo ${memo_variant})
  if(memo_variant STREQUAL "shared")
    list(APPEND variant_args --exact)
  endif()
  execute_process(
    COMMAND ${CLI} ${GOLDEN_ARGS} ${variant_args} ${OBS_ARGS}
    OUTPUT_FILE ${WORK_DIR}/campaign_report_${memo_variant}.txt
    RESULT_VARIABLE memo_rc
    WORKING_DIRECTORY ${WORK_DIR})
  if(NOT memo_rc EQUAL 0)
    message(FATAL_ERROR
      "campaign_cli (--memo ${memo_variant} run) exited with ${memo_rc}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/campaign_report_${memo_variant}.txt
            ${GOLDEN_DIR}/campaign_report.txt
    RESULT_VARIABLE memo_diff_rc)
  if(NOT memo_diff_rc EQUAL 0)
    message(FATAL_ERROR
      "--memo ${memo_variant} report differs from the golden text — memo "
      "placement leaked into the summary")
  endif()
endforeach()

execute_process(
  COMMAND ${CLI} ${GOLDEN_ARGS} --csv out --json out ${OBS_ARGS}
  OUTPUT_QUIET
  RESULT_VARIABLE file_rc
  WORKING_DIRECTORY ${WORK_DIR})
if(NOT file_rc EQUAL 0)
  message(FATAL_ERROR "campaign_cli (csv/json run) exited with ${file_rc}")
endif()

foreach(pair
    "campaign_report.txt;campaign_report.txt"
    "out_campaign.csv;campaign_report.csv"
    "out_campaign.json;campaign_report.json")
  list(GET pair 0 produced)
  list(GET pair 1 golden)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/${produced} ${GOLDEN_DIR}/${golden}
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
      "${produced} differs from golden ${golden}.\n"
      "If the change is intentional, regenerate with "
      "tools/regen_campaign_golden.sh <build-dir> and commit the result.")
  endif()
endforeach()

if(OBS)
  file(READ ${WORK_DIR}/trace.json trace_content)
  if(NOT trace_content MATCHES "traceEvents")
    message(FATAL_ERROR "--trace-out produced no Chrome trace document")
  endif()
  file(READ ${WORK_DIR}/metrics.json metrics_content)
  if(NOT metrics_content MATCHES "caft-metrics/v1")
    message(FATAL_ERROR "--metrics-out produced no caft-metrics/v1 document")
  endif()
  if(NOT metrics_content MATCHES "campaign.replays")
    message(FATAL_ERROR "metrics snapshot carries no campaign counters")
  endif()
  message(STATUS "campaign_cli golden outputs match with observability on")
else()
  message(STATUS "campaign_cli golden outputs match")
endif()
