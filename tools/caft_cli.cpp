/// caft_cli — command-line front end to the library, built entirely on the
/// ftsched:: facade (api/api.hpp): algorithms are resolved by name through
/// the SchedulerRegistry, so `--algo` accepts exactly the registered names
/// and new algorithms appear here with zero CLI changes.
///
/// Subcommands:
///   generate    build an instance (graph + platform + costs) and save it
///   schedule    run a registered scheduler on an instance; save/export
///   replay      re-execute a scheduled instance under a crash set
///   resilience  exhaustive ε-subset survival check of a scheduled instance
///   figure      reproduce one of the paper's figures (1-6)
///   algos       list the registered algorithms and their capabilities
///
/// Examples:
///   caft_cli generate --family random --procs 10 --granularity 0.5
///       --seed 42 --out instance.txt                        (one line)
///   caft_cli schedule --in instance.txt --algo caft --eps 2
///       --out scheduled.txt --dot s.dot --trace t.json --gantt
///   caft_cli schedule --in instance.txt --algo caft --support direct
///   caft_cli replay --in scheduled.txt --crash 0,3 --gantt
///   caft_cli resilience --in scheduled.txt
///   caft_cli figure 1 --reps 10
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "common/build_info.hpp"
#include "common/cli_args.hpp"
#include "dag/generators.hpp"
#include "exp/config.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "io/dot_export.hpp"
#include "io/trace_export.hpp"
#include "metrics/gantt.hpp"
#include "metrics/metrics.hpp"
#include "platform/cost_synthesis.hpp"
#include "sim/resilience.hpp"

namespace {

using namespace caft;

using Args = CliArgs;

int usage() {
  std::fprintf(stderr,
               "usage: caft_cli <generate|schedule|replay|resilience|figure|"
               "algos> [options]\n(see the header of tools/caft_cli.cpp for "
               "examples)\n");
  return 2;
}

TaskGraph build_graph(const Args& args, Rng& rng) {
  const std::string family = args.get("family", "random");
  const std::size_t size = args.get_size("size", 0);
  if (family == "random") return random_dag(RandomDagParams{}, rng);
  if (family == "chain") return chain(size ? size : 20, 100.0);
  if (family == "fork") return fork(size ? size : 12, 100.0);
  if (family == "join") return join(size ? size : 12, 100.0);
  if (family == "forkjoin") return fork_join(size ? size : 10, 100.0);
  if (family == "outforest") return random_out_forest(size ? size : 50, 3, rng);
  if (family == "gauss") return gaussian_elimination(size ? size : 8, 100.0);
  if (family == "cholesky") return cholesky(size ? size : 6, 100.0);
  if (family == "fft") return fft(size ? size : 4, 100.0);
  if (family == "stencil") return stencil(size ? size : 5, size ? size : 5, 100.0);
  throw CheckError("unknown graph family '" + family + "'");
}

int cmd_generate(const Args& args) {
  Rng rng(args.get_size("seed", 42));
  TaskGraph graph = build_graph(args, rng);
  const std::size_t m = args.get_size("procs", 10);
  const std::string topo =
      args.get_choice("topology", "clique", {"clique", "ring", "star"});
  Platform platform(m);
  if (topo == "ring")
    platform = Platform(Topology::ring(m));
  else if (topo == "star")
    platform = Platform(Topology::star(m));

  CostSynthesisParams params;
  params.granularity = args.get_double("granularity", 1.0);
  const ftsched::Instance instance(std::move(graph), std::move(platform),
                                   params, rng);

  const std::string out = args.get("out", "instance.txt");
  instance.save(out);
  std::printf("wrote %s: %zu tasks, %zu edges, m=%zu, g=%.2f\n", out.c_str(),
              instance.graph().task_count(), instance.graph().edge_count(), m,
              instance.costs().granularity(instance.graph()));
  return 0;
}

int cmd_schedule(const Args& args) {
  ftsched::Instance instance = ftsched::Instance::load(
      args.get("in", "instance.txt"));
  const std::string algo = args.get("algo", "caft");
  instance.set_eps(args.get_size("eps", 1));
  instance.options().model = args.get_choice("model", "oneport",
                                             {"oneport", "macro"}) == "macro"
                                 ? CommModelKind::kMacroDataflow
                                 : CommModelKind::kOnePort;

  ftsched::ScheduleRequest request;
  request.batch_size = args.get_size("batch", 10);
  request.support_mode = args.get_choice("support", "transitive",
                                         {"transitive", "direct"}) == "direct"
                             ? CaftSupportMode::kDirect
                             : CaftSupportMode::kTransitive;

  // The registry is the single dispatch point: unknown names fail with
  // "unknown algo 'x'; known: <names>".
  const ftsched::ScheduleResult result =
      ftsched::SchedulerRegistry::global().make(algo)->schedule(instance,
                                                                request);

  std::printf("%s: latency %.2f (normalized %.2f), upper bound %.2f, "
              "%zu messages, valid=%s\n",
              algo.c_str(), result.makespan,
              normalized_latency(result.makespan, instance.graph(),
                                 instance.costs()),
              result.upper_bound, result.messages,
              result.validation.ok() ? "yes" : "NO");
  if (!result.validation.ok())
    std::fprintf(stderr, "%s\n", result.validation.summary().c_str());

  if (args.has("out")) instance.save(args.get("out"), &result.schedule);
  if (args.has("dot")) {
    std::ofstream dot(args.get("dot"));
    dot << to_dot(result.schedule);
  }
  if (args.has("trace")) {
    std::ofstream trace(args.get("trace"));
    trace << to_chrome_trace(result.schedule);
  }
  if (args.has("gantt")) std::cout << render_gantt(result.schedule);
  return result.ok() ? 0 : 1;
}

std::vector<ProcId> parse_crash_list(const std::string& spec) {
  std::vector<ProcId> procs;
  std::string token;
  for (const char c : spec + ",") {
    if (c == ',') {
      if (!token.empty())
        procs.push_back(ProcId(static_cast<ProcId::value_type>(
            std::stoul(token))));
      token.clear();
    } else {
      token += c;
    }
  }
  return procs;
}

int cmd_replay(const Args& args) {
  const ftsched::Instance instance = ftsched::Instance::load(
      args.get("in", "scheduled.txt"));
  const Schedule* schedule = instance.loaded_schedule();
  CAFT_CHECK_MSG(schedule != nullptr, "instance has no schedule; run "
                                      "'caft_cli schedule --out ...' first");
  const auto failed = parse_crash_list(args.get("crash", ""));
  const CrashScenario scenario =
      CrashScenario::at_zero(instance.proc_count(), failed);
  const CrashResult result =
      simulate_crashes(*schedule, instance.costs(), scenario);
  std::printf("crash set of %zu processor(s): %s, latency %.2f "
              "(0-crash estimate %.2f), %zu messages delivered\n",
              failed.size(), result.success ? "survived" : "FAILED",
              result.latency, schedule->zero_crash_latency(),
              result.delivered_messages);
  if (args.has("gantt"))
    std::cout << render_crash_gantt(*schedule, result, scenario);
  if (args.has("trace")) {
    std::ofstream trace(args.get("trace"));
    trace << to_chrome_trace(*schedule, result, scenario);
  }
  return result.success ? 0 : 1;
}

int cmd_resilience(const Args& args) {
  const ftsched::Instance instance = ftsched::Instance::load(
      args.get("in", "scheduled.txt"));
  const Schedule* schedule = instance.loaded_schedule();
  CAFT_CHECK_MSG(schedule != nullptr, "instance has no schedule");
  const std::size_t failures = args.get_size("failures", schedule->eps());
  const ResilienceReport report =
      check_resilience_exhaustive(*schedule, instance.costs(), failures);
  std::printf("%zu crash subsets of size %zu: %zu failed -> %s\n",
              report.scenarios_tested, failures, report.failures,
              report.resistant ? "RESISTANT" : "NOT RESISTANT");
  if (!report.witness.empty()) {
    std::printf("witness:");
    for (const ProcId p : report.witness) std::printf(" P%u", p.value());
    std::printf("\n");
  }
  if (report.resistant)
    std::printf("re-executed latency: best %.2f, worst %.2f\n",
                report.best_latency, report.worst_latency);
  return report.resistant ? 0 : 1;
}

int cmd_figure(const Args& args) {
  CAFT_CHECK_MSG(!args.positional().empty(), "figure number required (1-6)");
  const int figure = std::stoi(args.positional().front());
  ExperimentConfig config;
  switch (figure) {
    case 1: config = figure1(); break;
    case 2: config = figure2(); break;
    case 3: config = figure3(); break;
    case 4: config = figure4(); break;
    case 5: config = figure5(); break;
    case 6: config = figure6(); break;
    default: throw CheckError("figure number must be 1-6");
  }
  config.graphs_per_point = args.get_size("reps", 10);
  const auto points = run_experiment(config);
  report_figure(std::cout, config, points,
                args.has("csv") ? config.name : "");
  return 0;
}

int cmd_algos() {
  ftsched::SchedulerRegistry::global().for_each(
      [](const ftsched::Scheduler& scheduler) {
        const ftsched::SchedulerCapabilities caps = scheduler.capabilities();
        std::printf("%-12s eps=%-3s contention-aware=%-3s duplicates=%s\n",
                    scheduler.name().c_str(),
                    caps.supports_eps ? "yes" : "no",
                    caps.contention_aware ? "yes" : "no",
                    caps.emits_duplicates ? "yes" : "no");
      });
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "--version" || command == "version") {
    std::printf("%s\n", caft::version_line().c_str());
    return 0;
  }
  const Args args(argc, argv, 2);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "schedule") return cmd_schedule(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "resilience") return cmd_resilience(args);
    if (command == "figure") return cmd_figure(args);
    if (command == "algos") return cmd_algos();
    return usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
