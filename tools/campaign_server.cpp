/// campaign_server — campaigns as a service: a long-running daemon that
/// wraps one in-process ftsched::Session behind the campaign wire protocol
/// (src/server/server_wire.hpp) and amortizes instance loads, schedules
/// and replay-engine templates across requests through a content-addressed
/// cache. The report a client receives is byte-identical to running the
/// same campaign locally (campaign_cli / Session::evaluate) — cache hit or
/// miss, alone or under concurrent load.
///
/// Usage:
///   campaign_server [--listen ADDR] [--port N] [--cache-size N]
///                   [--max-inflight N] [--queue-limit N]
///                   [--threads N] [--engine incremental|naive]
///                   [--memo shared|scratch] [--block N]
///                   [--metrics-out FILE] [--trace-out FILE] [--version]
///
///   --listen ADDR      interface to bind, IPv4 dotted quad (default
///                      127.0.0.1 — local-only; 0.0.0.0 for all interfaces)
///   --port N           TCP port; 0 binds an ephemeral port (default 7070).
///                      The bound port is always printed on the startup
///                      line, so harnesses pass --port 0 and scrape it.
///   --cache-size N     content-addressed cache entry budget, all artifact
///                      families combined (default 64; 0 disables caching)
///   --max-inflight N   concurrent campaign evaluations (default 2; 0
///                      rejects every request — drain/maintenance mode)
///   --queue-limit N    requests allowed to wait for a slot before an
///                      immediate busy rejection (default 8)
///   --threads/--engine/--memo/--block
///                      the wrapped Session's execution knobs, exactly as
///                      campaign_cli takes them. Execution policy is
///                      in-process by design: byte-identity leans on
///                      in-process early-stopping determinism.
///
/// On SIGTERM/SIGINT the server drains: it stops accepting, finishes every
/// in-flight request, then exits 0. Observability artifacts (inert, like
/// everywhere else in the library) are written after the drain.
///
/// The startup line — `campaign_server listening on ADDR:PORT` — goes to
/// stdout and is flushed immediately; everything else goes to stderr.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <thread>

#include "campaign_spec_cli.hpp"
#include "common/build_info.hpp"
#include "common/cli_args.hpp"
#include "server/server.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void handle_shutdown_signal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  const caft::CliArgs args(argc, argv);
  if (args.has("help")) {
    std::printf("see the header of tools/campaign_server.cpp for usage\n");
    return 0;
  }
  if (args.has("version")) {
    std::printf("%s\n", caft::version_line().c_str());
    return 0;
  }
  try {
    ftsched::tools::arm_observability(args);

    ftsched::server::ServerOptions options;
    options.listen_address = caft::CliArgs::check_listen_address(
        "listen", args.get("listen", "127.0.0.1"));
    options.port = caft::CliArgs::check_port("port", args.get("port", "7070"));
    options.cache_capacity = args.get_size("cache-size", 64);
    options.max_inflight = args.get_size("max-inflight", 2);
    options.queue_limit = args.get_size("queue-limit", 8);
    options.session.threads = args.get_size("threads", 0);
    options.session.engine =
        args.get_choice("engine", "incremental", {"incremental", "naive"}) ==
                "incremental"
            ? caft::CampaignEngine::kIncremental
            : caft::CampaignEngine::kNaive;
    options.session.memo =
        args.get_choice("memo", "shared", {"shared", "scratch"}) == "shared"
            ? caft::CampaignMemo::kShared
            : caft::CampaignMemo::kScratch;
    options.session.block = args.get_size("block", options.session.block);

    ftsched::server::CampaignServer daemon(options);
    daemon.start();
    // The one stdout line, flushed so a harness that started us with
    // --port 0 can scrape the real port before any client connects.
    std::printf("campaign_server listening on %s:%u\n",
                options.listen_address.c_str(),
                static_cast<unsigned>(daemon.port()));
    std::fflush(stdout);

    std::signal(SIGTERM, handle_shutdown_signal);
    std::signal(SIGINT, handle_shutdown_signal);
    while (g_shutdown == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::fprintf(stderr, "campaign_server draining...\n");
    daemon.stop();  // stop accepting, finish every in-flight request
    std::fprintf(stderr, "campaign_server drained, exiting\n");
    ftsched::tools::write_observability_outputs(args);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
