/// campaign_cli — Monte-Carlo fault-injection campaigns from the command
/// line: build (or load) an instance, schedule it with any set of
/// registered algorithms, replay each schedule under thousands of sampled
/// crash scenarios, and print a side-by-side comparison table.
///
/// The CLI is a thin shell over the ftsched:: facade: `--algos` names are
/// resolved through the SchedulerRegistry (unknown names list the known
/// ones), the sampler flags populate an ftsched::SamplerSpec, and the
/// campaigns themselves run through ftsched::Session — the same service
/// layer library consumers use, so CLI results and API results are
/// bit-for-bit identical.
///
/// Examples:
///   campaign_cli --replays 2000 --procs 10 --eps 2 --granularity 1.0
///   campaign_cli --sampler exp --rate 0.001 --replays 5000 --algos caft
///   campaign_cli --sampler window --k 2 --theta-lo 0 --theta-hi 200
///   campaign_cli --sampler groups --group-size 5 --group-prob 0.1
///   campaign_cli --in instance.txt --replays 1000 --csv camp --json camp
///   campaign_cli --algos caft,caft-batch,ftsa,ftbar,heft --replays 500
///
/// Samplers (--sampler):
///   uniform   k distinct processors dead from t=0 (paper model; default,
///             k defaults to eps)
///   exp       per-processor exponential lifetimes (--rate; --horizon
///             censors lifetimes beyond the mission to "never fails")
///   weibull   per-processor Weibull lifetimes (--shape, --scale, --horizon)
///   window    k processors crash at theta ~ U[--theta-lo, --theta-hi]
///   groups    contiguous groups of --group-size fail together with
///             probability --group-prob at theta ~ U[--theta-lo, --theta-hi]
///
/// The campaign seed, replay count and thread count (--seed, --replays,
/// --threads; 0 threads = auto) apply identically to every algorithm, so
/// the comparison is paired: same scenario stream for each schedule.
///
/// --engine naive|incremental (default incremental) picks the replay
/// implementation: `incremental` is the prefix-cached ReplayEngine,
/// `naive` re-simulates every scenario from t=0. Both produce bit-for-bit
/// identical reports — the flag exists for A/B validation and benchmarks.
///
/// --memo shared|scratch (default shared) places the incremental engine's
/// dead-set memo: `shared` is one lock-free concurrent memo every worker
/// thread consults, `scratch` keeps one private memo per worker. Both
/// produce bit-for-bit identical reports.
///
/// --theta-buckets N (default 0 = off) additionally memoises crash-at-θ
/// scenarios by quantizing each finite crash time to one of N buckets of
/// the schedule horizon and replaying the bucket midpoint — a
/// deterministic approximation whose drift is bounded by the bucket width.
/// --exact is the escape hatch: bit-exact replays even with buckets set.
/// Numeric/choice flags are validated strictly; malformed values abort
/// with a clear error instead of silently falling back to defaults.
///
/// --exec in-process|subprocess (default in-process) picks where campaigns
/// run. `subprocess` fans each campaign out to --workers worker processes
/// (each running --worker-threads threads): the scenario stream is split
/// into contiguous blocks, failed workers are retried, and the partial
/// results are folded back in canonical scenario order — reports are
/// byte-identical to in-process runs by construction. --worker-cmd names
/// the worker binary (default: this binary).
///
/// The subprocess coordinator folds worker records *streamingly* (PR 7):
/// completed blocks enter a bounded reorder window and fold into the
/// summary the moment they are next in canonical scenario order, so
/// coordinator memory is O(--reorder-window × --block-replays) records
/// regardless of --replays. --block-replays N sets the replays per worker
/// block (0 = auto, ~4 blocks per worker); --reorder-window W caps the
/// blocks past the fold frontier (0 = auto, max(2 × workers, 4)). Neither
/// knob can change a report.
///
/// --target-ci-width W (off by default) stops the campaign early once the
/// Wilson 95% CI around the folded prefix's success rate is at most W
/// wide; the summary then covers a contiguous canonical prefix of the
/// scenario stream. In-process the cut lands at a wave boundary, a
/// deterministic function of (--seed, the session block size) — reruns are
/// byte-identical. On the subprocess backend the stopping point
/// additionally depends on worker completion timing: deterministic per
/// stopping point, intentionally NOT byte-identical across runs.
///
/// --worker is the worker side of that protocol: read one serialized work
/// order (api/campaign_wire.hpp) on stdin, replay the requested scenario
/// block, emit the partial result on stdout — records stream out in
/// sub-block chunks as waves complete. Spawned by the coordinator; not for
/// interactive use.
///
/// Observability (all inert — reports are byte-identical with or without):
///   --trace-out FILE    Chrome trace-event JSON of the run (scheduler
///                       phases, campaign waves, per-worker subprocess
///                       spans); open in Perfetto or about:tracing.
///   --metrics-out FILE  caft-metrics/v1 JSON snapshot (counters, gauges,
///                       histograms, build provenance).
///   --progress          live heartbeat on stderr: replays/s, Wilson CI
///                       width, memo hit rate, ETA. Rejected in --worker
///                       mode (a worker's stderr belongs to its failure
///                       diagnostics).
///   --version           print build provenance (git SHA, compiler, build
///                       type) and exit.
/// Both files are validated writable up front and written on completion;
/// the confirmation lines go to stderr so stdout stays byte-stable.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "campaign/progress.hpp"
#include "campaign/stats.hpp"
#include "campaign_spec_cli.hpp"
#include "common/build_info.hpp"
#include "common/cli_args.hpp"
#include "dag/generators.hpp"
#include "obs/obs.hpp"
#include "platform/cost_synthesis.hpp"

namespace {

using namespace caft;
using ftsched::tools::arm_observability;
using ftsched::tools::build_campaign_spec;
using ftsched::tools::write_observability_outputs;
using ftsched::tools::write_table_outputs;

using Args = CliArgs;

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  // Explicitly requested help is a success, on stdout (the docs gate
  // probes it; see tools/check_docs.py).
  if (args.has("help")) {
    std::printf("see the header of tools/campaign_cli.cpp for usage "
                "and examples\n");
    return 0;
  }
  if (args.has("version")) {
    std::printf("%s\n", caft::version_line().c_str());
    return 0;
  }
  // Worker mode: one wire-protocol exchange on stdin/stdout, nothing else
  // on stdout (the coordinator parses it). Errors go to stderr + exit 1,
  // which the coordinator treats as a retryable worker failure.
  if (args.has("worker")) {
    try {
      // A worker's stderr is its failure diagnostics channel — refuse the
      // heartbeat rather than interleave the two. Traces/metrics are fine:
      // they land in their own files (one per worker invocation).
      CAFT_CHECK_MSG(!args.has("progress"),
                     "--progress conflicts with --worker (the coordinator "
                     "owns progress reporting; worker stderr carries "
                     "failure diagnostics)");
      arm_observability(args);
      ftsched::run_campaign_worker(std::cin, std::cout);
      write_observability_outputs(args);
      return 0;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "worker error: %s\n", error.what());
      return 1;
    }
  }
  try {
    arm_observability(args);
    // --- instance: load from file or generate the paper's random protocol.
    std::unique_ptr<ftsched::Instance> instance;
    if (args.has("in")) {
      instance = std::make_unique<ftsched::Instance>(
          ftsched::Instance::load(args.get("in")));
    } else {
      Rng rng(args.get_size("instance-seed", 42));
      RandomDagParams dag;
      if (args.has("tasks")) {
        dag.min_tasks = args.get_size("tasks", 100);
        dag.max_tasks = dag.min_tasks;
      }
      TaskGraph graph = random_dag(dag, rng);
      CostSynthesisParams params;
      params.granularity = args.get_double("granularity", 1.0);
      instance = std::make_unique<ftsched::Instance>(
          std::move(graph), Platform(args.get_size("procs", 10)), params, rng);
    }
    const std::size_t m = instance->proc_count();
    instance->set_eps(args.get_size("eps", 1));

    // --- session: execution policy (threads, engine, memo placement).
    ftsched::SessionOptions session_options;
    session_options.threads = args.get_size("threads", 0);
    session_options.engine =
        args.get_choice("engine", "incremental", {"incremental", "naive"}) ==
                "incremental"
            ? CampaignEngine::kIncremental
            : CampaignEngine::kNaive;
    session_options.memo =
        args.get_choice("memo", "shared", {"shared", "scratch"}) == "shared"
            ? CampaignMemo::kShared
            : CampaignMemo::kScratch;
    // Process-parallel backend: fan blocks out to --workers copies of
    // --worker-cmd (default: this very binary) instead of running the
    // campaign in this process. Summaries are byte-identical either way.
    if (args.get_choice("exec", "in-process",
                        {"in-process", "subprocess"}) == "subprocess") {
      session_options.exec = ftsched::ExecutionPolicy::subprocess(
          args.get("worker-cmd", argv[0]), args.get_size("workers", 2));
      session_options.exec.worker_threads =
          args.get_size("worker-threads", 1);
      // Streaming-fold knobs: replays per worker block and how many blocks
      // may sit past the fold frontier at once (coordinator memory is
      // O(reorder-window × block-replays) records). 0 = auto for both.
      session_options.exec.block_replays = args.get_size("block-replays", 0);
      session_options.exec.reorder_window =
          args.get_size("reorder-window", 0);
    }
    // One heartbeat shared across every campaign of this run, behind a
    // shared_ptr because std::function copies its callable: finish() below
    // must see the same throttle state the callbacks updated.
    std::shared_ptr<ProgressHeartbeat> heartbeat;
    if (args.has("progress")) {
      heartbeat = std::make_shared<ProgressHeartbeat>();
      session_options.on_progress =
          [heartbeat](const caft::CampaignProgress& progress) {
            (*heartbeat)(progress);
          };
    }
    const ftsched::Session session(session_options);

    // --- spec: algorithms, sampler distribution, replay/seed budget (the
    // shared flag surface — campaign_client builds its spec identically).
    const ftsched::CampaignSpec spec =
        build_campaign_spec(args, instance->eps());

    const std::string sampler_name = spec.sampler.name(m);
    std::printf("instance: %zu tasks, %zu edges, m=%zu, eps=%zu\n",
                instance->graph().task_count(),
                instance->graph().edge_count(), m, instance->eps());
    std::printf("campaign: %zu replays of %s, seed %llu, engine %s\n\n",
                spec.replays, sampler_name.c_str(),
                static_cast<unsigned long long>(spec.seed),
                session_options.engine == CampaignEngine::kIncremental
                    ? "incremental"
                    : "naive");

    // --- schedule each algorithm via the registry and run the campaigns.
    // One evaluate_schedule call per algorithm (rather than one
    // Session::evaluate for the whole spec) so the progress line prints
    // *before* its campaign runs — long campaigns show live progress.
    ftsched::CampaignReport report;
    report.runs.reserve(spec.algorithms.size());
    for (const std::string& algo : spec.algorithms) {
      ftsched::ScheduleResult scheduled =
          ftsched::SchedulerRegistry::global().make(algo)->schedule(
              *instance, spec.request);
      std::printf("%s: 0-crash latency %.2f, upper bound %.2f, "
                  "%zu messages — running campaign...\n",
                  ftsched::display_name(algo).c_str(), scheduled.makespan,
                  scheduled.upper_bound, scheduled.messages);
      std::fflush(stdout);
      const ftsched::CampaignRun& run = report.runs.emplace_back(
          session.evaluate_schedule(*instance, std::move(scheduled), spec));
      // Terminal heartbeat line: the campaign is complete, so flush the
      // state the 200 ms throttle may have swallowed — without this, a
      // last block landing inside the throttle window (or an early-stopped
      // campaign, which never reaches replays_total) leaves the heartbeat
      // frozen below its final count.
      if (heartbeat) heartbeat->finish();
      // Quantization is an opt-in approximation; surface its effect. (Not
      // printed otherwise — nor under --exact, where no bucketing happens —
      // so exact reports stay byte-stable.)
      if (spec.theta_buckets > 0 && !spec.exact)
        std::printf("  theta buckets: %zu (width %.4f), memo hit rate "
                    "%.1f%% over %llu lookups\n",
                    spec.theta_buckets, run.theta_bucket_width,
                    run.telemetry.memo_lookups == 0
                        ? 0.0
                        : 100.0 *
                              static_cast<double>(run.telemetry.memo_hits) /
                              static_cast<double>(run.telemetry.memo_lookups),
                    static_cast<unsigned long long>(
                        run.telemetry.memo_lookups));
    }
    std::printf("\n");

    const Table table = campaign_table("fault-injection campaign — " +
                                           sampler_name,
                                       report.summary_rows());
    if (const int rc = write_table_outputs(args, table); rc != 0) return rc;

    // Before the Proposition check so the artifacts exist even when a
    // violated run exits 1 — that is exactly the run worth inspecting.
    write_observability_outputs(args);

    // Proposition 5.2 check: every within-eps replay must have survived.
    // (HEFT, when campaigned, schedules at ε=0, so its within-eps replays
    // are the 0-failure ones — the check still applies.)
    for (const ftsched::CampaignRun& run : report.runs) {
      const CampaignSummary& s = run.summary;
      if (s.successes_within_eps != s.replays_within_eps) {
        std::fprintf(stderr,
                     "WARNING: %s lost %zu of %zu replays with <= eps "
                     "failures — Proposition 5.2 violated\n",
                     ftsched::display_name(run.algorithm).c_str(),
                     s.replays_within_eps - s.successes_within_eps,
                     s.replays_within_eps);
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
