/// campaign_cli — Monte-Carlo fault-injection campaigns from the command
/// line: build (or load) an instance, schedule it with the fault-tolerant
/// algorithms, replay each schedule under thousands of sampled crash
/// scenarios, and print a side-by-side comparison table.
///
/// Examples:
///   campaign_cli --replays 2000 --procs 10 --eps 2 --granularity 1.0
///   campaign_cli --sampler exp --rate 0.001 --replays 5000 --algos caft
///   campaign_cli --sampler window --k 2 --theta-lo 0 --theta-hi 200
///   campaign_cli --sampler groups --group-size 5 --group-prob 0.1
///   campaign_cli --in instance.txt --replays 1000 --csv camp --json camp
///
/// Samplers (--sampler):
///   uniform   k distinct processors dead from t=0 (paper model; default,
///             k defaults to eps)
///   exp       per-processor exponential lifetimes (--rate; --horizon
///             censors lifetimes beyond the mission to "never fails")
///   weibull   per-processor Weibull lifetimes (--shape, --scale, --horizon)
///   window    k processors crash at theta ~ U[--theta-lo, --theta-hi]
///   groups    contiguous groups of --group-size fail together with
///             probability --group-prob at theta ~ U[--theta-lo, --theta-hi]
///
/// The campaign seed, replay count and thread count (--seed, --replays,
/// --threads; 0 threads = auto) apply identically to every algorithm, so
/// the comparison is paired: same scenario stream for each schedule.
///
/// --engine naive|incremental (default incremental) picks the replay
/// implementation: `incremental` is the prefix-cached ReplayEngine,
/// `naive` re-simulates every scenario from t=0. Both produce bit-for-bit
/// identical reports — the flag exists for A/B validation and benchmarks.
///
/// --memo shared|scratch (default shared) places the incremental engine's
/// dead-set memo: `shared` is one sharded concurrent memo every worker
/// thread consults, `scratch` keeps one private memo per worker. Both
/// produce bit-for-bit identical reports.
///
/// --theta-buckets N (default 0 = off) additionally memoises crash-at-θ
/// scenarios by quantizing each finite crash time to one of N buckets of
/// the schedule horizon and replaying the bucket midpoint — a
/// deterministic approximation whose drift is bounded by the bucket width.
/// --exact is the escape hatch: bit-exact replays even with buckets set.
/// Numeric/choice flags are validated strictly; malformed values abort
/// with a clear error instead of silently falling back to defaults.
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algo/caft.hpp"
#include "algo/ftbar.hpp"
#include "algo/ftsa.hpp"
#include "campaign/campaign.hpp"
#include "campaign/scenario_sampler.hpp"
#include "campaign/stats.hpp"
#include "common/cli_args.hpp"
#include "dag/generators.hpp"
#include "io/instance_io.hpp"
#include "platform/cost_synthesis.hpp"

namespace {

using namespace caft;

using Args = CliArgs;

std::unique_ptr<ScenarioSampler> build_sampler(const Args& args,
                                               std::size_t procs,
                                               std::size_t eps) {
  const std::string kind = args.get_choice(
      "sampler", "uniform", {"uniform", "exp", "weibull", "window", "groups"});
  const std::size_t k = args.get_size("k", eps);
  // Lifetimes beyond --horizon are censored to "never fails"; without it
  // every processor eventually crashes, so the within-eps statistics of
  // lifetime campaigns are empty (failed_count counts any finite lifetime).
  const double horizon = args.get_double(
      "horizon", std::numeric_limits<double>::infinity());
  if (kind == "uniform") return std::make_unique<UniformKSampler>(procs, k);
  if (kind == "exp")
    return std::make_unique<ExponentialLifetimeSampler>(
        procs, args.get_double("rate", 0.001), horizon);
  if (kind == "weibull")
    return std::make_unique<WeibullLifetimeSampler>(
        procs, args.get_double("shape", 1.5), args.get_double("scale", 1000.0),
        horizon);
  if (kind == "window")
    return std::make_unique<CrashWindowSampler>(
        procs, k, args.get_double("theta-lo", 0.0),
        args.get_double("theta-hi", 1000.0));
  // get_choice above guarantees kind == "groups" here.
  return std::make_unique<CorrelatedGroupSampler>(
      procs, args.get_size("group-size", 2),
      args.get_double("group-prob", 0.1), args.get_double("theta-lo", 0.0),
      args.get_double("theta-hi", 0.0));
}

CampaignEngine parse_engine(const Args& args) {
  return args.get_choice("engine", "incremental", {"incremental", "naive"}) ==
                 "incremental"
             ? CampaignEngine::kIncremental
             : CampaignEngine::kNaive;
}

CampaignMemo parse_memo(const Args& args) {
  return args.get_choice("memo", "shared", {"shared", "scratch"}) == "shared"
             ? CampaignMemo::kShared
             : CampaignMemo::kScratch;
}

bool wants_algo(const std::string& algos, const std::string& name) {
  return algos.find(name) != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.has("help")) {
    std::fprintf(stderr, "see the header of tools/campaign_cli.cpp for usage "
                         "and examples\n");
    return 2;
  }
  try {
    // --- instance: load from file or generate the paper's random protocol.
    TaskGraph graph;
    std::unique_ptr<Platform> platform;
    std::unique_ptr<CostModel> costs;
    if (args.has("in")) {
      InstanceBundle in = load_instance_file(args.get("in"));
      graph = std::move(in.graph);
      platform = std::move(in.platform);
      costs = std::move(in.costs);
    } else {
      Rng rng(args.get_size("instance-seed", 42));
      RandomDagParams dag;
      if (args.has("tasks")) {
        dag.min_tasks = args.get_size("tasks", 100);
        dag.max_tasks = dag.min_tasks;
      }
      graph = random_dag(dag, rng);
      platform = std::make_unique<Platform>(args.get_size("procs", 10));
      CostSynthesisParams params;
      params.granularity = args.get_double("granularity", 1.0);
      costs = std::make_unique<CostModel>(
          synthesize_costs(graph, *platform, params, rng));
    }
    const std::size_t m = platform->proc_count();
    const std::size_t eps = args.get_size("eps", 1);

    CampaignOptions options;
    options.replays = args.get_size("replays", 1000);
    CAFT_CHECK_MSG(options.replays > 0, "--replays must be positive");
    options.seed = args.get_size("seed", 20080201);
    options.threads = args.get_size("threads", 0);
    options.engine = parse_engine(args);
    options.memo = parse_memo(args);
    options.exact = args.has("exact");
    // --theta-buckets N splits each schedule's horizon into N θ buckets for
    // shared-memo quantization (width = horizon / N, set per schedule
    // below); 0 keeps every replay bit-exact. Quantization only exists on
    // the incremental engine's shared memo, so reject the inert
    // combinations rather than silently running an exact campaign the user
    // believes is bucketed (--exact is the intentional opt-out and stays
    // allowed).
    const std::size_t theta_buckets = args.get_size("theta-buckets", 0);
    if (theta_buckets > 0 && !options.exact) {
      CAFT_CHECK_MSG(options.engine == CampaignEngine::kIncremental,
                     "--theta-buckets requires --engine incremental");
      CAFT_CHECK_MSG(options.memo == CampaignMemo::kShared,
                     "--theta-buckets requires --memo shared");
    }

    const auto sampler = build_sampler(args, m, eps);
    std::printf("instance: %zu tasks, %zu edges, m=%zu, eps=%zu\n",
                graph.task_count(), graph.edge_count(), m, eps);
    std::printf("campaign: %zu replays of %s, seed %llu, engine %s\n\n",
                options.replays, sampler->name().c_str(),
                static_cast<unsigned long long>(options.seed),
                options.engine == CampaignEngine::kIncremental
                    ? "incremental"
                    : "naive");

    // --- schedule with each requested algorithm and run the campaign.
    const std::string algos = args.get("algos", "caft,ftsa,ftbar");
    const SchedulerOptions base{eps, CommModelKind::kOnePort};
    std::vector<std::pair<std::string, Schedule>> schedules;
    if (wants_algo(algos, "caft")) {
      CaftOptions caft_options;
      caft_options.base = base;
      schedules.emplace_back(
          "CAFT", caft_schedule(graph, *platform, *costs, caft_options));
    }
    if (wants_algo(algos, "ftsa"))
      schedules.emplace_back("FTSA",
                             ftsa_schedule(graph, *platform, *costs, base));
    if (wants_algo(algos, "ftbar")) {
      FtbarOptions ftbar_options;
      ftbar_options.base = base;
      schedules.emplace_back(
          "FTBAR", ftbar_schedule(graph, *platform, *costs, ftbar_options));
    }
    if (schedules.empty()) throw CheckError("no known algorithm in --algos");

    std::vector<std::pair<std::string, CampaignSummary>> rows;
    for (const auto& [label, schedule] : schedules) {
      std::printf("%s: 0-crash latency %.2f, upper bound %.2f, "
                  "%zu messages — running campaign...\n",
                  label.c_str(), schedule.zero_crash_latency(),
                  schedule.upper_bound_latency(), schedule.message_count());
      options.theta_bucket_width =
          theta_buckets > 0
              ? schedule.horizon() / static_cast<double>(theta_buckets)
              : 0.0;
      CampaignTelemetry telemetry;
      rows.emplace_back(
          label, run_campaign(schedule, *costs, *sampler, options, &telemetry));
      // Quantization is an opt-in approximation; surface its effect. (Not
      // printed otherwise — nor under --exact, where no bucketing happens —
      // so exact reports stay byte-stable.)
      if (theta_buckets > 0 && !options.exact)
        std::printf("  theta buckets: %zu (width %.4f), memo hit rate "
                    "%.1f%% over %llu lookups\n",
                    theta_buckets, options.theta_bucket_width,
                    telemetry.memo_lookups == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(telemetry.memo_hits) /
                              static_cast<double>(telemetry.memo_lookups),
                    static_cast<unsigned long long>(telemetry.memo_lookups));
    }
    std::printf("\n");

    const Table table = campaign_table("fault-injection campaign — " +
                                           sampler->name(),
                                       rows);
    table.print(std::cout, 4);
    if (args.has("csv")) {
      const std::string path = args.get("csv") + "_campaign.csv";
      if (!table.save_csv(path)) {
        std::fprintf(stderr, "error: could not write %s\n", path.c_str());
        return 1;
      }
      std::printf("CSV written to %s\n", path.c_str());
    }
    if (args.has("json")) {
      const std::string path = args.get("json") + "_campaign.json";
      if (!table.save_json(path)) {
        std::fprintf(stderr, "error: could not write %s\n", path.c_str());
        return 1;
      }
      std::printf("JSON written to %s\n", path.c_str());
    }

    // Proposition 5.2 check: every within-eps replay must have survived.
    for (const auto& [label, s] : rows)
      if (s.successes_within_eps != s.replays_within_eps) {
        std::fprintf(stderr,
                     "WARNING: %s lost %zu of %zu replays with <= eps "
                     "failures — Proposition 5.2 violated\n",
                     label.c_str(),
                     s.replays_within_eps - s.successes_within_eps,
                     s.replays_within_eps);
        return 1;
      }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
