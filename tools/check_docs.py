#!/usr/bin/env python3
"""Documentation gate: dead links and stale CLI examples.

Run from anywhere inside the repo (CI runs it in the static-analysis job):

    python3 tools/check_docs.py [--bin-dir build]

Two checks over README.md and every docs/*.md:

1.  Dead relative links. Every markdown link/image whose target is not
    absolute (http(s)://, mailto:, #anchor) must resolve to an existing
    file or directory relative to the file containing it. Anchors are
    stripped before the existence check.

2.  Stale CLI examples. Inside fenced code blocks, lines that invoke one
    of the repo's binaries (campaign_cli, caft_cli, campaign_server,
    campaign_client, campaign_throughput, ftsched_lint) have their
    `--flag` tokens verified. A flag is accepted when it appears in the
    binary's `--help` output or, because the CLIs keep their usage text
    in the source header, in the tool's source file; anything found in
    neither is a renamed or removed option still advertised by the docs.
    With --bin-dir the `--help` probe also asserts the binary runs and
    exits 0; without it (or for unbuilt binaries) the source-text check
    still gates.

Exit status: 0 clean, 1 findings (one line per finding on stderr).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# binary name -> source file holding its usage text and option parser
TOOL_SOURCES = {
    "campaign_cli": "tools/campaign_cli.cpp",
    "caft_cli": "tools/caft_cli.cpp",
    "campaign_server": "tools/campaign_server.cpp",
    "campaign_client": "tools/campaign_client.cpp",
    "campaign_throughput": "bench/campaign_throughput.cpp",
    "ftsched_lint": "tools/ftsched_lint.cpp",
}

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^(```|~~~)")
FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")
INVOKE_RE = re.compile(
    r"(?:^|[\s;(`])(?:[.\w/]*/)?(%s)(?:\s|$)" % "|".join(TOOL_SOURCES)
)


def doc_files() -> list[pathlib.Path]:
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_links(doc: pathlib.Path, findings: list[str]) -> None:
    in_fence = False
    for line_no, line in enumerate(doc.read_text().splitlines(), 1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            if target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                findings.append(
                    f"{doc.relative_to(REPO)}:{line_no}: dead relative link "
                    f"'{target}' (resolves to {resolved})"
                )


def help_flags(binary: pathlib.Path) -> set[str] | None:
    """Flags named by `--help`; None when the probe cannot run."""
    try:
        proc = subprocess.run(
            [str(binary), "--help"],
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return set(FLAG_RE.findall(proc.stdout + proc.stderr))


def check_cli_examples(
    doc: pathlib.Path, bin_dir: pathlib.Path | None, findings: list[str]
) -> None:
    known: dict[str, set[str] | None] = {}

    def flags_of(tool: str) -> set[str] | None:
        if tool not in known:
            flags: set[str] = set()
            probed = False
            if bin_dir is not None:
                for sub in ("tools", "bench", "."):
                    binary = bin_dir / sub / tool
                    if binary.is_file():
                        from_help = help_flags(binary)
                        if from_help is None:
                            findings.append(
                                f"{binary}: `--help` failed — docs examples "
                                f"for {tool} cannot be trusted"
                            )
                        else:
                            flags |= from_help
                            probed = True
                        break
            source = REPO / TOOL_SOURCES[tool]
            if source.is_file():
                flags |= set(FLAG_RE.findall(source.read_text()))
                probed = True
            known[tool] = flags if probed else None
        return known[tool]

    in_fence = False
    for line_no, line in enumerate(doc.read_text().splitlines(), 1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            continue
        invoked = INVOKE_RE.search(line)
        if not invoked:
            continue
        tool = invoked.group(1)
        accepted = flags_of(tool)
        if accepted is None:
            continue  # neither binary nor source available: nothing to gate
        for flag in FLAG_RE.findall(line):
            if flag not in accepted:
                findings.append(
                    f"{doc.relative_to(REPO)}:{line_no}: example uses "
                    f"{tool} {flag}, unknown to its --help/source"
                )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bin-dir",
        type=pathlib.Path,
        default=None,
        help="build directory holding tools/ and bench/ binaries; "
        "enables the live --help probe",
    )
    args = parser.parse_args()

    findings: list[str] = []
    docs = doc_files()
    if len(docs) < 2:
        findings.append("docs/ tree missing or empty next to README.md")
    for doc in docs:
        check_links(doc, findings)
        check_cli_examples(doc, args.bin_dir, findings)

    for finding in findings:
        print(finding, file=sys.stderr)
    print(
        f"check_docs: {len(docs)} files, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
