/// campaign_client — the client side of the campaign server: read an
/// instance file, ship its bytes plus a campaign spec to a running
/// campaign_server, and render the streamed-back report exactly as
/// campaign_cli renders a local one (same table, same --csv/--json
/// artifacts, byte-for-byte — the server's identity guarantee makes the
/// two interchangeable).
///
/// Usage:
///   campaign_client --in FILE [--connect ADDR] [--port N] [--eps N]
///                   [spec flags: --algos --sampler --k --rate --shape
///                    --scale --horizon --theta-lo --theta-hi --group-size
///                    --group-prob --replays --seed --theta-buckets
///                    --exact --target-ci-width]
///                   [--progress] [--csv PREFIX] [--json PREFIX]
///
///   --in FILE       instance file (io/instance_io text); its *bytes* go
///                   over the wire — the server never sees the path
///   --connect ADDR  server address, IPv4 dotted quad (default 127.0.0.1)
///   --port N        server port (required; no default on purpose — a
///                   client should fail loudly rather than guess)
///   --eps N         ε pinned into the request (default 1). Pinning
///                   matters: the server schedules the instance as its
///                   bytes describe it, so ε must ride the spec — exactly
///                   like `campaign_cli --in FILE --eps N` applies it.
///   --progress      server streams per-wave progress lines; printed live
///                   on stderr (stdout stays byte-stable)
///
/// Exit codes: 0 report received, 1 error (connection, protocol, server
/// error document), 3 server busy (the admission controller rejected —
/// retry later; the busy document's state is printed to stderr).
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign_spec_cli.hpp"
#include "common/build_info.hpp"
#include "common/cli_args.hpp"
#include "server/server_wire.hpp"
#include "server/socket.hpp"

int main(int argc, char** argv) {
  const caft::CliArgs args(argc, argv);
  if (args.has("help")) {
    std::printf("see the header of tools/campaign_client.cpp for usage\n");
    return 0;
  }
  if (args.has("version")) {
    std::printf("%s\n", caft::version_line().c_str());
    return 0;
  }
  try {
    CAFT_CHECK_MSG(args.has("in"), "--in FILE is required (the instance to "
                                   "campaign)");
    CAFT_CHECK_MSG(args.has("port"), "--port N is required (the "
                                     "campaign_server port)");
    const std::string address = caft::CliArgs::check_listen_address(
        "connect", args.get("connect", "127.0.0.1"));
    const std::uint16_t port =
        caft::CliArgs::check_port("port", args.get("port"));

    const std::string instance_path = args.get("in");
    std::ifstream in(instance_path, std::ios::binary);
    CAFT_CHECK_MSG(in.good(),
                   "--in: cannot read '" + instance_path + "'");
    std::ostringstream bytes;
    bytes << in.rdbuf();

    const std::size_t eps = args.get_size("eps", 1);
    ftsched::server::CampaignRequest request;
    request.spec = ftsched::tools::build_campaign_spec(args, eps);
    // The server schedules from the instance *bytes*, which carry no ε of
    // their own — pin it into the request so the server resolves exactly
    // what `campaign_cli --in FILE --eps N` resolves locally.
    request.spec.request.eps = eps;
    request.progress = args.has("progress");
    request.instance_bytes = bytes.str();

    const auto connection = ftsched::server::connect_to(address, port);
    ftsched::server::write_campaign_request(*connection, request);
    connection->flush();

    const ftsched::server::ServerResponse response =
        ftsched::server::read_server_response(
            *connection,
            [](const ftsched::server::ProgressLine& line) {
              std::fprintf(stderr, "%s: %zu/%zu replays, %zu ok, ci %.4f\n",
                           ftsched::display_name(line.algorithm).c_str(),
                           line.done, line.total, line.successes,
                           line.ci_width);
            });

    using Kind = ftsched::server::ServerResponse::Kind;
    if (response.kind == Kind::kBusy) {
      std::fprintf(stderr,
                   "server busy: %zu in flight (max %zu), %zu queued "
                   "(limit %zu) — retry later\n",
                   response.busy.inflight, response.busy.max_inflight,
                   response.busy.queued, response.busy.queue_limit);
      return 3;
    }
    if (response.kind == Kind::kError) {
      std::fprintf(stderr, "server error: %s\n", response.error.c_str());
      return 1;
    }

    CAFT_CHECK_MSG(!response.report.runs.empty(),
                   "server report names no runs");
    // The summary's sampler string is the same name campaign_cli derives
    // locally, so the table title — and with it the CSV/JSON artifacts —
    // match byte-for-byte.
    const caft::Table table = caft::campaign_table(
        "fault-injection campaign — " +
            response.report.runs.front().summary.sampler,
        response.report.summary_rows());
    return ftsched::tools::write_table_outputs(args, table);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
