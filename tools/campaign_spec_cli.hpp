/// \file campaign_spec_cli.hpp
/// The campaign-flag surface shared by the campaign CLIs — campaign_cli,
/// campaign_client and campaign_server all accept the same spec flags
/// (--algos/--sampler/--replays/--seed/--theta-buckets/--exact/
/// --target-ci-width and the sampler knobs) and the same observability
/// flags (--trace-out/--metrics-out), so the helpers that turn flags into
/// an ftsched::CampaignSpec and arm the obs registry live here, once.
/// Header-only on purpose: tools/*.cpp are each built as a binary by
/// caft_add_binaries, so a shared .cpp has nowhere to live.
///
/// Byte-stability note: campaign_client's table/CSV/JSON output must be
/// byte-identical to campaign_cli's for the same campaign (the CI smoke
/// legs diff them), which is why the table/CSV/JSON writer is shared too.
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "campaign/stats.hpp"
#include "common/build_info.hpp"
#include "common/check.hpp"
#include "common/cli_args.hpp"
#include "obs/obs.hpp"

namespace ftsched {
namespace tools {

inline SamplerSpec build_sampler_spec(const caft::CliArgs& args,
                                      std::size_t eps) {
  const std::string kind = args.get_choice(
      "sampler", "uniform", {"uniform", "exp", "weibull", "window", "groups"});
  const std::size_t k = args.get_size("k", eps);
  // Lifetimes beyond --horizon are censored to "never fails"; without it
  // every processor eventually crashes, so the within-eps statistics of
  // lifetime campaigns are empty (failed_count counts any finite lifetime).
  const double horizon =
      args.get_double("horizon", std::numeric_limits<double>::infinity());
  if (kind == "uniform") return SamplerSpec::uniform_k(k);
  if (kind == "exp")
    return SamplerSpec::exponential(args.get_double("rate", 0.001), horizon);
  if (kind == "weibull")
    return SamplerSpec::weibull(args.get_double("shape", 1.5),
                                args.get_double("scale", 1000.0), horizon);
  if (kind == "window")
    return SamplerSpec::window(k, args.get_double("theta-lo", 0.0),
                               args.get_double("theta-hi", 1000.0));
  // get_choice above guarantees kind == "groups" here.
  return SamplerSpec::groups(
      args.get_size("group-size", 2), args.get_double("group-prob", 0.1),
      args.get_double("theta-lo", 0.0), args.get_double("theta-hi", 0.0));
}

/// Splits --algos on commas and validates every name against the registry:
/// an unknown entry aborts with "unknown algo 'x'; known: ...", and a
/// repeated entry aborts too (it would double the run and the report row).
inline std::vector<std::string> parse_algos(const std::string& list) {
  const SchedulerRegistry& registry = SchedulerRegistry::global();
  std::vector<std::string> names;
  std::string token;
  for (const char c : list + ",") {
    if (c != ',') {
      token += c;
      continue;
    }
    if (token.empty()) continue;
    (void)registry.make(token);  // throws the canonical unknown-algo error
    CAFT_CHECK_MSG(
        std::find(names.begin(), names.end(), token) == names.end(),
        "--algos lists '" + token + "' twice");
    names.push_back(token);
    token.clear();
  }
  CAFT_CHECK_MSG(!names.empty(), "--algos names no algorithms; known: " +
                                     registry.known_list());
  return names;
}

/// The full spec from the shared flags. `eps` seeds the uniform/window
/// sampler's default k (the caller resolves it — campaign_cli from the
/// instance, campaign_client from --eps).
inline CampaignSpec build_campaign_spec(const caft::CliArgs& args,
                                        std::size_t eps) {
  CampaignSpec spec;
  spec.algorithms = parse_algos(args.get("algos", "caft,ftsa,ftbar"));
  spec.sampler = build_sampler_spec(args, eps);
  spec.replays = args.get_size("replays", 1000);
  CAFT_CHECK_MSG(spec.replays > 0, "--replays must be positive");
  spec.seed = args.get_size("seed", 20080201);
  // --theta-buckets N splits each schedule's horizon into N θ buckets for
  // shared-memo quantization; 0 keeps every replay bit-exact. The Session
  // rejects inert combinations (quantization without the incremental
  // engine's shared memo) rather than silently running an exact campaign
  // the user believes is bucketed (--exact is the intentional opt-out).
  spec.theta_buckets = args.get_size("theta-buckets", 0);
  spec.exact = args.has("exact");
  // --target-ci-width W: stop once the folded prefix's Wilson 95% CI is at
  // most W wide. In-process the cut lands at a wave boundary — a
  // deterministic function of (seed, block), byte-identical across runs
  // (what the campaign server's identity guarantee leans on). Subprocess
  // stopping points additionally depend on worker timing, so those runs
  // are deterministic per stopping point but not byte-identical.
  spec.target_ci_width = args.get_double("target-ci-width", 0.0);
  return spec;
}

/// Validates the observability flags up front (so a long campaign cannot
/// fail at the final write) and arms the global registry. Purely additive:
/// with neither flag the registry stays disabled and every instrumentation
/// point in the library is a relaxed load + branch.
inline void arm_observability(const caft::CliArgs& args) {
  if (args.has("trace-out"))
    caft::CliArgs::check_writable_path("trace-out", args.get("trace-out"));
  if (args.has("metrics-out"))
    caft::CliArgs::check_writable_path("metrics-out",
                                       args.get("metrics-out"));
  obs::Registry& registry = obs::Registry::global();
  if (args.has("trace-out") || args.has("metrics-out"))
    registry.set_enabled(true);
  if (args.has("trace-out")) registry.set_tracing(true);
}

/// Writes --trace-out / --metrics-out. Confirmations go to *stderr*: stdout
/// carries the deterministic report (or, in worker mode, the wire partial)
/// and must stay byte-identical with observability on.
inline void write_observability_outputs(const caft::CliArgs& args) {
  obs::Registry& registry = obs::Registry::global();
  if (args.has("trace-out")) {
    const std::string path = args.get("trace-out");
    std::ofstream out(path, std::ios::trunc);
    registry.write_trace_json(out);
    CAFT_CHECK_MSG(out.good(), "--trace-out: failed writing '" + path + "'");
    std::fprintf(stderr, "trace written to %s (%zu events)\n", path.c_str(),
                 registry.trace_event_count());
  }
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out");
    std::ofstream out(path, std::ios::trunc);
    registry.write_metrics_json(out, caft::build_info());
    CAFT_CHECK_MSG(out.good(),
                   "--metrics-out: failed writing '" + path + "'");
    std::fprintf(stderr, "metrics written to %s\n", path.c_str());
  }
}

/// Prints the campaign table and writes --csv/--json artifacts, exactly as
/// campaign_cli always has (shared so campaign_client's output is
/// byte-identical). Returns 0, or 1 when an artifact could not be written.
inline int write_table_outputs(const caft::CliArgs& args,
                               const caft::Table& table) {
  table.print(std::cout, 4);
  if (args.has("csv")) {
    const std::string path = args.get("csv") + "_campaign.csv";
    if (!table.save_csv(path)) {
      std::fprintf(stderr, "error: could not write %s\n", path.c_str());
      return 1;
    }
    std::printf("CSV written to %s\n", path.c_str());
  }
  if (args.has("json")) {
    const std::string path = args.get("json") + "_campaign.json";
    if (!table.save_json(path)) {
      std::fprintf(stderr, "error: could not write %s\n", path.c_str());
      return 1;
    }
    std::printf("JSON written to %s\n", path.c_str());
  }
  return 0;
}

}  // namespace tools
}  // namespace ftsched
