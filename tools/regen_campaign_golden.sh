#!/usr/bin/env sh
# Regenerates the committed golden outputs of campaign_cli
# (tests/golden/campaign_report.{txt,csv,json}) after an *intentional*
# change to campaign statistics or report formatting.
#
# Usage: tools/regen_campaign_golden.sh [build-dir]   (default: build)
#
# The arguments below must stay in sync with cmake/campaign_golden.cmake.
set -eu

BUILD_DIR=${1:-build}
REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
CLI=$REPO_ROOT/$BUILD_DIR/tools/campaign_cli
# GOLDEN_DIR may be overridden (CI golden-drift gate regenerates into
# a scratch dir and diffs against the committed goldens).
GOLDEN_DIR=${GOLDEN_DIR:-$REPO_ROOT/tests/golden}

if [ ! -x "$CLI" ]; then
  echo "error: $CLI not found — build the project first" >&2
  exit 1
fi

GOLDEN_ARGS="--replays 200 --procs 8 --eps 1 --tasks 30 \
  --instance-seed 7 --seed 123 --algos caft,ftsa"

mkdir -p "$GOLDEN_DIR"
WORK_DIR=$(mktemp -d)
trap 'rm -rf "$WORK_DIR"' EXIT

# Text run first (stdout carries no filesystem paths), then the artifacts.
# shellcheck disable=SC2086  # GOLDEN_ARGS is intentionally word-split
(cd "$WORK_DIR" && "$CLI" $GOLDEN_ARGS) > "$GOLDEN_DIR/campaign_report.txt"
(cd "$WORK_DIR" && "$CLI" $GOLDEN_ARGS --csv out --json out) > /dev/null
cp "$WORK_DIR/out_campaign.csv" "$GOLDEN_DIR/campaign_report.csv"
cp "$WORK_DIR/out_campaign.json" "$GOLDEN_DIR/campaign_report.json"

echo "regenerated goldens in $GOLDEN_DIR:"
ls -l "$GOLDEN_DIR"
