/// \file ftsched_lint.cpp
/// Determinism-contract static analyzer for this repository.
///
/// The repo's core promise — campaign summaries byte-identical across
/// thread counts, worker counts and process boundaries — is enforced at
/// runtime by the identity ctests, but those only catch a violation when
/// the exact configuration is exercised. This tool catches the *class* of
/// bug at analysis time: it walks src/ tools/ examples/ tests/ bench/ and
/// enforces the project invariants as named, individually suppressible
/// rules.
///
/// Rules (ids are stable; they appear in findings and suppressions):
///
///   layering        A declared layer DAG over src/ modules: every
///                   `#include "<layer>/..."` must point at the including
///                   layer itself or a layer it is declared to depend on.
///                   io/ notably may NOT include campaign/ or api/ (wire
///                   formats of upper layers live in those layers), and
///                   tools/ + examples/ must consume algorithms via the
///                   api/ facade, never algo/*.hpp (the rule that used to
///                   live in cmake/include_guard.cmake as a grep).
///   wire-determinism
///                   In wire/serialization code (src/io/,
///                   api/campaign_wire.* and src/server/ — the campaign
///                   server speaks the same dialect): floating-point
///                   values must
///                   never reach an ostream at default precision —
///                   `operator<<(double)` without a prior
///                   std::setprecision/std::hexfloat pin in the file,
///                   `std::to_string` on a floating value (always 6
///                   digits), and %f/%g/%e printf formats are all flagged.
///                   format_double()/"%a" hexfloat are the blessed paths.
///   ordered-fold    Iterating a std::unordered_{map,set} (range-for or
///                   .begin()) in shipped code (src/ tools/ examples/):
///                   iteration order is unspecified, so feeding it into
///                   any output or accumulator breaks byte-identity.
///                   Keyed lookups (find/insert/at) stay legal.
///   clock-rng       Nondeterministic sources — system_clock, time(),
///                   rand()/srand(), random_device, getenv — banned in
///                   src/ outside obs/, common/ and campaign/progress.*:
///                   core layers must be pure functions of their inputs.
///   header-hygiene  Headers must carry #pragma once (or a classic
///                   include guard) and must not `using namespace` at
///                   file scope.
///   suppression     Meta rule: a suppression comment must name known
///                   rules and carry a non-empty reason.
///
/// Suppression syntax — same line or a comment line directly above:
///
///   std::getenv("CAFT_THREADS");  // ftsched-lint: allow(clock-rng) env
///                                 // is read once at startup, documented
///
/// Findings print as `file:line: rule-id: message` (paths relative to
/// --root) and the tool exits 1 on any unsuppressed finding, 0 on a clean
/// tree, 2 on usage/IO errors. Run it via the `lint` build target, the
/// `ftsched_lint` ctest (full rule set) or the `include_what_they_ship`
/// ctest (`--rule layering`).
///
/// This is a line-oriented lexical analyzer, not a compiler plugin: it
/// strips comments and string-literal contents before matching (so prose
/// mentioning rand() never fires), resolves project includes transitively
/// to learn which identifiers are floating-point or unordered containers,
/// and accepts that heuristics have edges — the suppression mechanism is
/// the escape hatch, and tests/lint_fixtures/ pins every rule's expected
/// behaviour.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------------ model

struct Finding {
  std::string file;  // relative to the scan root, '/'-separated
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

bool finding_less(const Finding& a, const Finding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

/// One physical source line in three views plus its comment text.
struct SourceLine {
  std::string raw;      ///< the line as written
  std::string code;     ///< comments stripped, string/char contents blanked
  std::string nostr;    ///< comments stripped, string contents kept
  std::string comment;  ///< concatenated comment text on this line
};

struct Suppression {
  std::set<std::string> rules;
  std::string reason;
};

struct SourceFile {
  std::string rel;  ///< path relative to root
  bool is_header = false;
  std::vector<SourceLine> lines;
  /// Project includes ("api/session.hpp") in order of appearance.
  std::vector<std::string> includes;
  /// line number (1-based) -> parsed suppression on that line.
  std::map<std::size_t, Suppression> suppressions;
  /// Scalar double/float names declared anywhere in this file.
  std::set<std::string> float_names;
  /// Subset of float_names safe to export to includers (fields/globals,
  /// not function parameters or locals hidden behind parentheses).
  std::set<std::string> float_exports;
  /// vector<double>/span<double>/array<double,..> names (indexed access
  /// yields a floating value).
  std::set<std::string> float_seq_names;
  std::set<std::string> float_seq_exports;
  /// std::unordered_{map,set,...} variable/field names.
  std::set<std::string> unordered_names;
  std::set<std::string> unordered_exports;
};

const std::set<std::string> kRuleIds = {
    "layering",  "wire-determinism", "ordered-fold",
    "clock-rng", "header-hygiene",   "suppression"};

// ------------------------------------------------- layer DAG (the contract)
//
// Key: src/<layer>; value: the layers it may include (its own layer is
// always allowed). This is the single declaration of the architecture —
// extend it deliberately when a new dependency is architectural, never to
// silence a finding.
const std::map<std::string, std::set<std::string>>& layer_dag() {
  static const std::map<std::string, std::set<std::string>> dag = {
      {"common", {}},
      {"obs", {"common"}},
      {"dag", {"common"}},
      {"platform", {"common", "dag"}},
      {"comm", {"common", "platform"}},
      {"sched", {"common", "dag", "platform", "comm"}},
      {"sim", {"common", "dag", "platform", "sched"}},
      {"algo", {"common", "obs", "dag", "platform", "comm", "sched"}},
      {"metrics", {"common", "dag", "platform", "comm", "sched", "sim"}},
      // io is the low-level serialization layer: instance files, DOT and
      // trace exports. It must stay below campaign/ and api/ — protocol
      // formats of those layers (e.g. api/campaign_wire) live up there.
      {"io", {"common", "dag", "platform", "comm", "sched", "sim"}},
      {"campaign", {"common", "obs", "dag", "platform", "sched", "sim"}},
      {"api",
       {"common", "obs", "dag", "platform", "comm", "sched", "sim", "algo",
        "metrics", "io", "campaign"}},
      {"exp",
       {"common", "obs", "dag", "platform", "comm", "sched", "sim",
        "metrics", "io", "campaign", "api"}},
      // server is a *consumer* of the facade, like tools/: it campaigns
      // through api/Session, caches sim/ReplayEngine templates, and speaks
      // the campaign/ stats shapes over its wire. It may not reach algo/
      // (schedulers come via the api/ registry) nor io/ (instances arrive
      // as bytes and load through api/Instance).
      {"server", {"common", "obs", "sim", "campaign", "api"}},
  };
  return dag;
}

std::string join(const std::set<std::string>& items, const char* sep) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += sep;
    out += item;
  }
  return out;
}

// ------------------------------------------------------------------ lexing

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Splits a file into SourceLines, tracking block comments, raw strings
/// and ordinary string/char literals across the whole text.
std::vector<SourceLine> lex_file(const std::string& text) {
  enum class State { kCode, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;       // raw-string delimiter, ")delim" form
  std::vector<SourceLine> lines;
  SourceLine line;

  auto flush = [&]() {
    lines.push_back(line);
    line = SourceLine{};
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      // An unterminated ordinary literal does not cross lines in valid
      // C++; recover rather than swallowing the rest of the file.
      if (state == State::kString || state == State::kChar)
        state = State::kCode;
      flush();
      continue;
    }
    line.raw += c;
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          line.comment += "  ";
          for (i += 2; i < text.size() && text[i] != '\n'; ++i) {
            line.raw += text[i];
            line.comment += text[i];
          }
          --i;  // reprocess the newline
          break;
        }
        if (c == '/' && next == '*') {
          state = State::kBlock;
          line.code += "  ";
          line.nostr += "  ";
          ++i;
          line.raw += '*';
          break;
        }
        if (c == '"' &&
            (i >= 1 && text[i - 1] == 'R')) {  // raw string literal R"…(
          state = State::kRaw;
          raw_delim = ")";
          for (std::size_t j = i + 1; j < text.size() && text[j] != '(';
               ++j)
            raw_delim += text[j];
          raw_delim += '"';
          line.code += '"';
          line.nostr += '"';
          break;
        }
        if (c == '"') {
          state = State::kString;
          line.code += '"';
          line.nostr += '"';
          break;
        }
        if (c == '\'') {
          state = State::kChar;
          line.code += '\'';
          line.nostr += '\'';
          break;
        }
        line.code += c;
        line.nostr += c;
        break;
      case State::kBlock:
        line.comment += c;
        line.code += ' ';
        line.nostr += ' ';
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
          line.raw += '/';
          line.code += ' ';
          line.nostr += ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          line.code += ' ';
          line.nostr += c;
          if (next != '\0' && next != '\n') {
            ++i;
            line.raw += text[i];
            line.code += ' ';
            line.nostr += text[i];
          }
          break;
        }
        line.code += c == '"' ? '"' : ' ';
        line.nostr += c;
        if (c == '"') state = State::kCode;
        break;
      case State::kChar:
        if (c == '\\') {
          line.code += ' ';
          line.nostr += ' ';
          if (next != '\0' && next != '\n') {
            ++i;
            line.raw += text[i];
            line.code += ' ';
            line.nostr += ' ';
          }
          break;
        }
        line.code += c == '\'' ? '\'' : ' ';
        line.nostr += c == '\'' ? '\'' : ' ';
        if (c == '\'') state = State::kCode;
        break;
      case State::kRaw: {
        line.code += ' ';
        line.nostr += c;
        if (c == raw_delim[0] &&
            text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 1; j < raw_delim.size(); ++j) {
            ++i;
            line.raw += text[i];
            line.code += ' ';
            line.nostr += text[i];
          }
          state = State::kCode;
        }
        break;
      }
    }
  }
  if (!line.raw.empty()) flush();
  return lines;
}

std::string trimmed(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool word_at(const std::string& s, std::size_t pos, std::string_view word) {
  if (s.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(s[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= s.size() || !ident_char(s[end]);
}

/// First position of `word` as a whole identifier in `s`, npos if absent.
std::size_t find_word(const std::string& s, std::string_view word,
                      std::size_t from = 0) {
  for (std::size_t pos = s.find(word.data(), from, word.size());
       pos != std::string::npos;
       pos = s.find(word.data(), pos + 1, word.size()))
    if (word_at(s, pos, word)) return pos;
  return std::string::npos;
}

// ------------------------------------------------------------- harvesting

bool is_type_keyword(const std::string& word) {
  static const std::set<std::string> kw = {
      "int",    "bool",     "char",   "unsigned", "signed", "long",
      "short",  "auto",     "void",   "const",    "double", "float",
      "std",    "size_t",   "return", "static",   "if",     "while",
      "struct", "class",    "using",  "typename", "new",    "delete",
      "sizeof", "operator", "case",   "default",  "else"};
  return kw.count(word) != 0;
}

/// True when `pos` sits inside an unclosed '(' earlier on the same line —
/// the cheap "this is a function parameter" test used to decide whether a
/// declaration is exported to includers.
bool inside_parens(const std::string& code, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = 0; i < pos && i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')') --depth;
  }
  return depth > 0;
}

std::string read_ident(const std::string& s, std::size_t& pos) {
  while (pos < s.size() &&
         (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '&'))
    ++pos;
  if (pos >= s.size() || !ident_start(s[pos])) return "";
  std::size_t start = pos;
  while (pos < s.size() && ident_char(s[pos])) ++pos;
  return s.substr(start, pos - start);
}

/// Harvests `double x`, `float y = …`, `double a, b;` declarator names
/// from one code line into the file's float-name sets.
void harvest_floats_line(const std::string& code, bool header,
                         SourceFile& file) {
  for (const char* type : {"double", "float"}) {
    for (std::size_t pos = find_word(code, type); pos != std::string::npos;
         pos = find_word(code, type, pos + 1)) {
      std::size_t cursor = pos + std::string_view(type).size();
      // `double>` / `double*` / `double)` are template args, pointers or
      // casts — scalar-name harvesting only wants `double name`.
      while (cursor < code.size() && code[cursor] == ' ') ++cursor;
      if (cursor >= code.size() || !ident_start(code[cursor])) continue;
      const bool param = inside_parens(code, pos);
      while (true) {
        std::string name = read_ident(code, cursor);
        if (name.empty() || is_type_keyword(name)) break;
        file.float_names.insert(name);
        if (header && !param) file.float_exports.insert(name);
        // Multi-declarator: `double a, b;` — stop at anything that is not
        // a plain `, next_name` continuation (initializers, params).
        while (cursor < code.size() && code[cursor] == ' ') ++cursor;
        if (cursor >= code.size() || code[cursor] != ',') break;
        ++cursor;
        while (cursor < code.size() && code[cursor] == ' ') ++cursor;
        if (cursor >= code.size() || !ident_start(code[cursor])) break;
      }
    }
  }
  // Sequences of floats: vector<double> v; span<const double> s; …
  for (const char* seq : {"vector<double>", "vector<float>",
                          "span<double>", "span<const double>"}) {
    for (std::size_t pos = code.find(seq); pos != std::string::npos;
         pos = code.find(seq, pos + 1)) {
      std::size_t cursor = pos + std::string_view(seq).size();
      std::string name = read_ident(code, cursor);
      if (name.empty() || is_type_keyword(name)) continue;
      file.float_seq_names.insert(name);
      if (header && !inside_parens(code, pos))
        file.float_seq_exports.insert(name);
    }
  }
}

/// Harvests `std::unordered_map<K, V> name` declarator names. Template
/// argument lists may span lines; a small lookahead window joins them.
void harvest_unordered(SourceFile& file) {
  static const char* kinds[] = {"unordered_map", "unordered_set",
                                "unordered_multimap",
                                "unordered_multiset"};
  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    for (const char* kind : kinds) {
      std::size_t pos = find_word(file.lines[li].code, kind);
      if (pos == std::string::npos) continue;
      // Join this line with a short lookahead so multi-line template
      // argument lists still yield the declarator name.
      std::string window = file.lines[li].code;
      for (std::size_t j = li + 1;
           j < file.lines.size() && j < li + 6; ++j)
        window += " " + file.lines[j].code;
      std::size_t cursor = pos + std::string_view(kind).size();
      if (cursor >= window.size() || window[cursor] != '<') continue;
      int angle = 0;
      for (; cursor < window.size(); ++cursor) {
        if (window[cursor] == '<') ++angle;
        if (window[cursor] == '>' && --angle == 0) {
          ++cursor;
          break;
        }
      }
      if (angle != 0) continue;
      std::string name = read_ident(window, cursor);
      if (name.empty() || is_type_keyword(name)) continue;
      file.unordered_names.insert(name);
      if (file.is_header && !inside_parens(window, pos))
        file.unordered_exports.insert(name);
    }
  }
}

// -------------------------------------------------------------- suppression

void parse_suppressions(SourceFile& file, std::vector<Finding>& findings) {
  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    const std::string& comment = file.lines[li].comment;
    std::size_t tag = comment.find("ftsched-lint:");
    if (tag == std::string::npos) continue;
    const std::size_t line_no = li + 1;
    std::size_t open = comment.find("allow(", tag);
    std::size_t close =
        open == std::string::npos ? std::string::npos
                                  : comment.find(')', open);
    if (open == std::string::npos || close == std::string::npos) {
      findings.push_back(
          {file.rel, line_no, "suppression",
           "malformed suppression; expected `ftsched-lint: "
           "allow(rule-id) reason`"});
      continue;
    }
    Suppression sup;
    std::stringstream ids(
        comment.substr(open + 6, close - open - 6));
    std::string id;
    while (std::getline(ids, id, ',')) {
      id = trimmed(id);
      if (id.empty()) continue;
      if (kRuleIds.count(id) == 0) {
        findings.push_back({file.rel, line_no, "suppression",
                            "unknown rule '" + id + "' in suppression "
                            "(known: " + join(kRuleIds, ", ") + ")"});
        continue;
      }
      sup.rules.insert(id);
    }
    sup.reason = trimmed(comment.substr(close + 1));
    if (sup.reason.empty())
      findings.push_back(
          {file.rel, line_no, "suppression",
           "suppression must carry a reason: `ftsched-lint: "
           "allow(rule-id) <why>`"});
    if (!sup.rules.empty()) file.suppressions[line_no] = sup;
  }
}

/// A finding at `line_no` is suppressed by an allow() on the same line or
/// on a directly preceding run of comment-only lines.
bool is_suppressed(const SourceFile& file, std::size_t line_no,
                   const std::string& rule) {
  auto covers = [&](std::size_t ln) {
    auto it = file.suppressions.find(ln);
    return it != file.suppressions.end() && it->second.rules.count(rule);
  };
  if (covers(line_no)) return true;
  for (std::size_t ln = line_no; ln > 1;) {
    --ln;
    const SourceLine& above = file.lines[ln - 1];
    if (!trimmed(above.code).empty()) return false;  // real code: stop
    if (covers(ln)) return true;
    if (trimmed(above.comment).empty() && !trimmed(above.raw).empty())
      return false;
  }
  return false;
}

// ------------------------------------------------------------------ rules

struct Context {
  std::map<std::string, SourceFile> files;  // rel -> file
  /// rel -> transitive project-include closure (rel paths).
  std::map<std::string, std::set<std::string>> closures;
};

std::string top_dir(const std::string& rel) {
  std::size_t slash = rel.find('/');
  return slash == std::string::npos ? "" : rel.substr(0, slash);
}

std::string src_layer(const std::string& rel) {
  if (top_dir(rel) != "src") return "";
  std::size_t first = rel.find('/');
  std::size_t second = rel.find('/', first + 1);
  if (second == std::string::npos) return "";
  return rel.substr(first + 1, second - first - 1);
}

/// Resolves an include string ("api/session.hpp") to a scanned file's rel
/// path, or "" when it is a system/unknown include.
std::string resolve_include(const Context& ctx, const std::string& inc) {
  const std::string as_src = "src/" + inc;
  if (ctx.files.count(as_src)) return as_src;
  if (ctx.files.count(inc)) return inc;
  return "";
}

void check_layering(const SourceFile& file,
                    std::vector<Finding>& findings) {
  const std::string dir = top_dir(file.rel);
  const std::string layer = src_layer(file.rel);
  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    const std::string& nostr = file.lines[li].nostr;
    std::size_t hash = nostr.find_first_not_of(" \t");
    if (hash == std::string::npos || nostr[hash] != '#') continue;
    std::size_t inc = nostr.find("include", hash);
    if (inc == std::string::npos) continue;
    std::size_t quote = nostr.find('"', inc);
    if (quote == std::string::npos) continue;
    std::size_t end = nostr.find('"', quote + 1);
    if (end == std::string::npos) continue;
    const std::string target = nostr.substr(quote + 1, end - quote - 1);
    std::size_t slash = target.find('/');
    if (slash == std::string::npos) continue;  // sibling/generated header
    const std::string component = target.substr(0, slash);
    const std::size_t line_no = li + 1;

    if (dir == "tools" || dir == "examples") {
      if (component == "algo")
        findings.push_back(
            {file.rel, line_no, "layering",
             "tools/ and examples/ must consume algorithms via the api/ "
             "facade (SchedulerRegistry), not \"" + target + "\""});
      continue;
    }
    if (dir != "src") continue;  // tests/ and bench/ may reach anywhere

    const auto& dag = layer_dag();
    auto self = dag.find(layer);
    if (self == dag.end()) {
      findings.push_back(
          {file.rel, line_no, "layering",
           "'src/" + layer + "' is not a declared layer — add it to the "
           "layer DAG in tools/ftsched_lint.cpp"});
      continue;
    }
    if (component == layer) continue;
    if (dag.find(component) == dag.end()) {
      findings.push_back(
          {file.rel, line_no, "layering",
           "include of undeclared layer '" + component + "' (\"" + target +
               "\"); add it to the layer DAG in tools/ftsched_lint.cpp"});
      continue;
    }
    if (self->second.count(component) == 0)
      findings.push_back(
          {file.rel, line_no, "layering",
           "src/" + layer + " may not include \"" + target + "\" (layer '" +
               layer + "' depends only on: " + join(self->second, ", ") +
               ")"});
  }
}

bool wire_scope(const std::string& rel) {
  return rel.rfind("src/io/", 0) == 0 ||
         rel.rfind("src/api/campaign_wire", 0) == 0 ||
         rel.rfind("src/server/", 0) == 0;
}

/// Terminal identifier of an expression chain ending right before `end`
/// ("order.spec.seed" -> "seed"); empty when the tail is not an identifier.
std::string terminal_ident(const std::string& code, std::size_t end) {
  if (end == 0 || !ident_char(code[end - 1])) return "";
  std::size_t start = end;
  while (start > 0 && ident_char(code[start - 1])) --start;
  return code.substr(start, end - start);
}

void check_wire_determinism(const SourceFile& file,
                            const std::set<std::string>& floats,
                            const std::set<std::string>& float_seqs,
                            std::vector<Finding>& findings) {
  if (!wire_scope(file.rel)) return;
  bool pinned = false;  // file set an explicit precision/hexfloat earlier
  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    const std::string& code = file.lines[li].code;
    const std::string& nostr = file.lines[li].nostr;
    const std::size_t line_no = li + 1;

    // std::to_string on a floating value — always 6 fixed digits, and a
    // stream precision pin cannot help it.
    for (std::size_t pos = find_word(code, "to_string");
         pos != std::string::npos;
         pos = find_word(code, "to_string", pos + 1)) {
      std::size_t cursor = pos + 9;
      while (cursor < code.size() && code[cursor] == ' ') ++cursor;
      if (cursor >= code.size() || code[cursor] != '(') continue;
      ++cursor;
      std::size_t arg_end = cursor;
      while (arg_end < code.size() && code[arg_end] != ')' &&
             code[arg_end] != ',')
        ++arg_end;
      std::size_t tail = arg_end;
      while (tail > cursor && code[tail - 1] == ' ') --tail;
      const std::string name = terminal_ident(code, tail);
      if (!name.empty() && floats.count(name))
        findings.push_back(
            {file.rel, line_no, "wire-determinism",
             "std::to_string on floating-point '" + name +
                 "' formats at a fixed 6 digits; route it through "
                 "format_double()/hexfloat"});
    }

    // printf-style %f/%g/%e in wire code (the "%a" hexfloat family is the
    // blessed exception).
    const bool has_printf = find_word(nostr, "printf") !=
                                std::string::npos ||
                            find_word(nostr, "sprintf") !=
                                std::string::npos ||
                            find_word(nostr, "snprintf") !=
                                std::string::npos ||
                            find_word(nostr, "fprintf") !=
                                std::string::npos;
    if (has_printf) {
      for (std::size_t pos = nostr.find('%'); pos != std::string::npos;
           pos = nostr.find('%', pos + 1)) {
        std::size_t cursor = pos + 1;
        while (cursor < nostr.size() &&
               (std::isdigit(static_cast<unsigned char>(nostr[cursor])) !=
                    0 ||
                nostr[cursor] == '.' || nostr[cursor] == '*' ||
                nostr[cursor] == '-' || nostr[cursor] == '+' ||
                nostr[cursor] == '#' || nostr[cursor] == ' '))
          ++cursor;
        if (cursor < nostr.size() &&
            std::string_view("fgeFGE").find(nostr[cursor]) !=
                std::string_view::npos) {
          findings.push_back(
              {file.rel, line_no, "wire-determinism",
               "printf float format '%" +
                   std::string(1, nostr[cursor]) +
                   "' in wire code; use format_double()/hexfloat "
                   "(\"%a\") so values round-trip bit-exactly"});
          break;
        }
      }
    }

    if (code.find("setprecision") != std::string::npos ||
        code.find("hexfloat") != std::string::npos)
      pinned = true;

    // Default-precision streaming of a floating identifier. A file that
    // pinned precision earlier (setprecision/hexfloat) took explicit
    // control of its formatting and is exempt from this heuristic.
    if (pinned) continue;
    for (std::size_t pos = code.find("<<"); pos != std::string::npos;
         pos = code.find("<<", pos + 2)) {
      std::size_t cursor = pos + 2;
      while (cursor < code.size() && code[cursor] == ' ') ++cursor;
      if (cursor >= code.size() || !ident_start(code[cursor])) continue;
      std::size_t start = cursor;
      while (cursor < code.size() &&
             (ident_char(code[cursor]) || code[cursor] == '.' ||
              code[cursor] == ':' ||
              (code[cursor] == '-' && cursor + 1 < code.size() &&
               code[cursor + 1] == '>') ||
              (code[cursor] == '>' && code[cursor - 1] == '-')))
        ++cursor;
      const std::string chain = code.substr(start, cursor - start);
      const char after = cursor < code.size() ? code[cursor] : '\0';
      if (after == '(') continue;  // a call: format_double(x) et al.
      const std::string name = terminal_ident(code, cursor);
      const bool indexed_float =
          after == '[' && !name.empty() && float_seqs.count(name) != 0;
      if (indexed_float || (!name.empty() && floats.count(name) != 0))
        findings.push_back(
            {file.rel, line_no, "wire-determinism",
             "floating-point '" + chain +
                 "' reaches the stream at default precision; route it "
                 "through format_double()/hexfloat or pin "
                 "std::setprecision first"});
    }
  }
}

void check_ordered_fold(const SourceFile& file,
                        const std::set<std::string>& unordered,
                        std::vector<Finding>& findings) {
  const std::string dir = top_dir(file.rel);
  if (dir != "src" && dir != "tools" && dir != "examples") return;
  if (unordered.empty()) return;
  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    const std::string& code = file.lines[li].code;
    const std::size_t line_no = li + 1;

    // Range-for over an unordered container: for (auto& kv : memo)
    for (std::size_t pos = find_word(code, "for");
         pos != std::string::npos; pos = find_word(code, "for", pos + 1)) {
      std::size_t paren = code.find('(', pos);
      if (paren == std::string::npos) continue;
      int depth = 0;
      std::size_t colon = std::string::npos, close = std::string::npos;
      for (std::size_t i = paren; i < code.size(); ++i) {
        if (code[i] == '(') ++depth;
        if (code[i] == ')' && --depth == 0) {
          close = i;
          break;
        }
        if (code[i] == ':' && depth == 1 &&
            (i == 0 || code[i - 1] != ':') &&
            (i + 1 >= code.size() || code[i + 1] != ':'))
          colon = i;
      }
      if (colon == std::string::npos || close == std::string::npos)
        continue;
      std::size_t tail = close;
      while (tail > colon && code[tail - 1] == ' ') --tail;
      if (tail > 0 && code[tail - 1] == ')') continue;  // call result
      const std::string name = terminal_ident(code, tail);
      if (!name.empty() && unordered.count(name))
        findings.push_back(
            {file.rel, line_no, "ordered-fold",
             "range-for over std::unordered container '" + name +
                 "': iteration order is unspecified and breaks "
                 "byte-identical output/folds; use an ordered container "
                 "or sort a snapshot first"});
    }

    // Explicit iterator walks: memo.begin() / memo.cbegin()
    for (const char* begin : {".begin", ".cbegin", ".rbegin"}) {
      for (std::size_t pos = code.find(begin); pos != std::string::npos;
           pos = code.find(begin, pos + 1)) {
        std::size_t call = pos + std::string_view(begin).size();
        if (call >= code.size() || code[call] != '(') continue;
        const std::string name = terminal_ident(code, pos);
        if (!name.empty() && unordered.count(name))
          findings.push_back(
              {file.rel, line_no, "ordered-fold",
               "iterator walk over std::unordered container '" + name +
                   "': iteration order is unspecified and breaks "
                   "byte-identical output/folds; keyed lookups "
                   "(find/at) are fine"});
      }
    }
  }
}

bool clock_rng_exempt(const std::string& rel) {
  return rel.rfind("src/obs/", 0) == 0 ||
         rel.rfind("src/common/", 0) == 0 ||
         rel.rfind("src/campaign/progress", 0) == 0;
}

void check_clock_rng(const SourceFile& file,
                     std::vector<Finding>& findings) {
  if (top_dir(file.rel) != "src" || clock_rng_exempt(file.rel)) return;
  struct Pattern {
    const char* token;
    bool call_only;  // must be followed by '('
    const char* what;
  };
  static const Pattern patterns[] = {
      {"system_clock", false, "wall-clock time"},
      {"time", true, "wall-clock time"},
      {"clock", true, "process clock"},
      {"rand", true, "libc RNG"},
      {"srand", true, "libc RNG seeding"},
      {"random_device", false, "hardware entropy"},
      {"getenv", false, "environment lookup"},
  };
  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    const std::string& code = file.lines[li].code;
    for (const Pattern& p : patterns) {
      for (std::size_t pos = find_word(code, p.token);
           pos != std::string::npos;
           pos = find_word(code, p.token, pos + 1)) {
        // Member calls (schedule.time(...)) are project API, not libc.
        if (pos > 0 && (code[pos - 1] == '.' ||
                        (pos > 1 && code[pos - 2] == '-' &&
                         code[pos - 1] == '>')))
          continue;
        if (p.call_only) {
          std::size_t cursor = pos + std::string_view(p.token).size();
          while (cursor < code.size() && code[cursor] == ' ') ++cursor;
          if (cursor >= code.size() || code[cursor] != '(') continue;
        }
        findings.push_back(
            {file.rel, li + 1, "clock-rng",
             std::string("'") + p.token + "' (" + p.what +
                 ") in a core layer — results must be pure functions of "
                 "the inputs; only obs/, common/ and campaign/progress "
                 "may touch nondeterministic sources"});
      }
    }
  }
}

void check_header_hygiene(const SourceFile& file,
                          std::vector<Finding>& findings) {
  if (!file.is_header) return;
  bool guarded = false, saw_ifndef = false;
  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    const std::string& nostr = file.lines[li].nostr;
    if (nostr.find("#pragma once") != std::string::npos) guarded = true;
    if (nostr.find("#ifndef") != std::string::npos) saw_ifndef = true;
    if (saw_ifndef && nostr.find("#define") != std::string::npos)
      guarded = true;
    std::size_t pos = find_word(file.lines[li].code, "using");
    if (pos != std::string::npos &&
        find_word(file.lines[li].code, "namespace", pos) !=
            std::string::npos)
      findings.push_back(
          {file.rel, li + 1, "header-hygiene",
           "'using namespace' in a header leaks the namespace into every "
           "includer; qualify names or alias instead"});
  }
  if (!guarded)
    findings.push_back({file.rel, 1, "header-hygiene",
                        "header has neither #pragma once nor an include "
                        "guard"});
}

// ------------------------------------------------------------------ driver

struct Options {
  fs::path root = ".";
  std::set<std::string> rules;  // empty = all
};

int usage(int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: ftsched_lint [--root DIR] [--rule id[,id...]] "
        "[--list-rules]\n"
        "Walks src/ tools/ examples/ tests/ bench/ under DIR and enforces "
        "the\nproject determinism contract. Exits 1 on any unsuppressed "
        "finding.\n";
  return code;
}

bool collect_files(const Options& opt, Context& ctx, std::string& error) {
  static const char* kTopDirs[] = {"src", "tools", "examples", "tests",
                                   "bench"};
  static const char* kSkipDirs[] = {"lint_fixtures", "golden", "build"};
  bool any = false;
  for (const char* top : kTopDirs) {
    const fs::path dir = opt.root / top;
    if (!fs::is_directory(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        for (const char* skip : kSkipDirs)
          if (name == skip) {
            it.disable_recursion_pending();
            break;
          }
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext != ".cpp" && ext != ".cc" && ext != ".hpp" && ext != ".h")
        continue;
      std::ifstream in(it->path(), std::ios::binary);
      if (!in) {
        error = "cannot read " + it->path().string();
        return false;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      SourceFile file;
      file.rel =
          fs::relative(it->path(), opt.root).generic_string();
      file.is_header = ext == ".hpp" || ext == ".h";
      file.lines = lex_file(buffer.str());
      ctx.files[file.rel] = std::move(file);
      any = true;
    }
  }
  if (!any)
    error = "no sources found under " + opt.root.string() +
            " (expected src/, tools/, examples/, tests/ or bench/) — "
            "wrong --root?";
  return any;
}

void build_closures(Context& ctx) {
  for (auto& [rel, file] : ctx.files) {
    for (const auto& line : file.lines) {
      const std::string& nostr = line.nostr;
      std::size_t hash = nostr.find_first_not_of(" \t");
      if (hash == std::string::npos || nostr[hash] != '#') continue;
      std::size_t inc = nostr.find("include", hash);
      if (inc == std::string::npos) continue;
      std::size_t quote = nostr.find('"', inc);
      if (quote == std::string::npos) continue;
      std::size_t end = nostr.find('"', quote + 1);
      if (end == std::string::npos) continue;
      file.includes.push_back(nostr.substr(quote + 1, end - quote - 1));
    }
  }
  for (auto& [rel, file] : ctx.files) {
    std::set<std::string>& closure = ctx.closures[rel];
    std::vector<std::string> queue = {rel};
    while (!queue.empty()) {
      const std::string current = queue.back();
      queue.pop_back();
      auto it = ctx.files.find(current);
      if (it == ctx.files.end()) continue;
      for (const auto& inc : it->second.includes) {
        const std::string resolved = resolve_include(ctx, inc);
        if (resolved.empty() || resolved == rel) continue;
        if (closure.insert(resolved).second) queue.push_back(resolved);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--list-rules") {
      for (const auto& id : kRuleIds) std::cout << id << "\n";
      return 0;
    }
    if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
      continue;
    }
    if (arg == "--rule" && i + 1 < argc) {
      std::stringstream list(argv[++i]);
      std::string id;
      while (std::getline(list, id, ',')) {
        id = trimmed(id);
        if (kRuleIds.count(id) == 0) {
          std::cerr << "ftsched_lint: unknown rule '" << id
                    << "' (known: " << join(kRuleIds, ", ") << ")\n";
          return 2;
        }
        opt.rules.insert(id);
      }
      continue;
    }
    std::cerr << "ftsched_lint: unknown argument '" << arg << "'\n";
    return usage(2);
  }

  Context ctx;
  std::string error;
  if (!collect_files(opt, ctx, error)) {
    std::cerr << "ftsched_lint: " << error << "\n";
    return 2;
  }
  build_closures(ctx);

  std::vector<Finding> raw_findings;
  for (auto& [rel, file] : ctx.files) {
    parse_suppressions(file, raw_findings);
    for (std::size_t li = 0; li < file.lines.size(); ++li)
      harvest_floats_line(file.lines[li].code, file.is_header, file);
    harvest_unordered(file);
  }

  for (const auto& [rel, file] : ctx.files) {
    // Effective name sets: the file's own declarations plus what its
    // transitive project includes export (fields/globals, not params).
    std::set<std::string> floats = file.float_names;
    std::set<std::string> float_seqs = file.float_seq_names;
    std::set<std::string> unordered = file.unordered_names;
    for (const auto& dep : ctx.closures[rel]) {
      const SourceFile& d = ctx.files.at(dep);
      floats.insert(d.float_exports.begin(), d.float_exports.end());
      float_seqs.insert(d.float_seq_exports.begin(),
                        d.float_seq_exports.end());
      unordered.insert(d.unordered_exports.begin(),
                       d.unordered_exports.end());
    }
    check_layering(file, raw_findings);
    check_wire_determinism(file, floats, float_seqs, raw_findings);
    check_ordered_fold(file, unordered, raw_findings);
    check_clock_rng(file, raw_findings);
    check_header_hygiene(file, raw_findings);
  }

  std::vector<Finding> findings;
  std::size_t suppressed = 0;
  for (const auto& finding : raw_findings) {
    if (!opt.rules.empty() && opt.rules.count(finding.rule) == 0)
      continue;
    if (is_suppressed(ctx.files.at(finding.file), finding.line,
                      finding.rule)) {
      ++suppressed;
      continue;
    }
    findings.push_back(finding);
  }
  std::sort(findings.begin(), findings.end(), finding_less);

  for (const auto& f : findings)
    std::cout << f.file << ":" << f.line << ": " << f.rule << ": "
              << f.message << "\n";
  std::cerr << "ftsched_lint: " << findings.size() << " finding(s), "
            << suppressed << " suppressed, " << ctx.files.size()
            << " files scanned\n";
  return findings.empty() ? 0 : 1;
}
