#!/usr/bin/env sh
# Regenerates the committed golden output of `caft_cli schedule`
# (tests/golden/caft_cli_schedule.txt) after an *intentional* change to
# scheduling results or report formatting.
#
# Usage: tools/regen_caft_cli_golden.sh [build-dir]   (default: build)
#
# The arguments below must stay in sync with cmake/caft_cli_golden.cmake.
set -eu

BUILD_DIR=${1:-build}
REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
CLI=$REPO_ROOT/$BUILD_DIR/tools/caft_cli
# GOLDEN_DIR may be overridden (CI golden-drift gate regenerates into
# a scratch dir and diffs against the committed goldens).
GOLDEN_DIR=${GOLDEN_DIR:-$REPO_ROOT/tests/golden}

if [ ! -x "$CLI" ]; then
  echo "error: $CLI not found — build the project first" >&2
  exit 1
fi

mkdir -p "$GOLDEN_DIR"
WORK_DIR=$(mktemp -d)
trap 'rm -rf "$WORK_DIR"' EXIT

(cd "$WORK_DIR" && "$CLI" generate --family random --procs 10 \
  --granularity 1.0 --seed 11 --out instance.txt) > /dev/null

: > "$GOLDEN_DIR/caft_cli_schedule.txt"
for algo in caft caft-batch ftsa ftbar heft; do
  (cd "$WORK_DIR" && "$CLI" schedule --in instance.txt --algo "$algo" \
    --eps 2) >> "$GOLDEN_DIR/caft_cli_schedule.txt"
done

echo "regenerated $GOLDEN_DIR/caft_cli_schedule.txt:"
cat "$GOLDEN_DIR/caft_cli_schedule.txt"
