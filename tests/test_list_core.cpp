// Direct tests for the shared placement machinery (algo/list_core): the
// evaluate/commit protocol, plan building, and support masks.
#include "algo/list_core.hpp"

#include <gtest/gtest.h>

#include "comm/one_port.hpp"
#include "dag/generators.hpp"
#include "platform/cost_synthesis.hpp"

namespace caft {
namespace {

TaskId T(std::size_t i) { return TaskId(static_cast<TaskId::value_type>(i)); }
ProcId P(std::size_t i) { return ProcId(static_cast<ProcId::value_type>(i)); }

/// join(2) on 3 processors, exec 10, delay 1, volumes 10; eps = 1.
struct Fixture {
  TaskGraph g = join(2, 10.0);
  Platform platform{3};
  CostModel costs = uniform_costs(g, platform, 10.0, 1.0);
  Schedule schedule{g, platform, 1, CommModelKind::kOnePort};
  OnePortEngine engine{platform, costs};
  Placer placer{g, costs, engine, schedule};
};

TEST(SupportMask, SupportOfSetsOneBit) {
  EXPECT_EQ(support_of(P(0)), 1u);
  EXPECT_EQ(support_of(P(5)), 32u);
}

TEST(SupportMap, GetSetRoundTrip) {
  SupportMap map(4, 2);
  EXPECT_EQ(map.get(T(1), 0), 0u);
  map.set(T(1), 0, 0b101);
  EXPECT_EQ(map.get(T(1), 0), 0b101u);
  EXPECT_EQ(map.get(T(1), 1), 0u);  // other replica untouched
  EXPECT_THROW((void)map.get(T(0), 2), CheckError);  // only primaries
}

TEST(Placer, EvaluateDoesNotMutateEngineOrSchedule) {
  Fixture f;
  // Place the two sources first.
  f.placer.commit(T(0), 0, P(0), {});
  f.placer.commit(T(0), 1, P(1), {});
  f.placer.commit(T(1), 0, P(1), {});
  f.placer.commit(T(1), 1, P(2), {});

  const EngineSnapshot before = f.engine.snapshot();
  const std::size_t comms_before = f.schedule.comms().size();
  const auto plans = f.placer.receive_all_plans(T(2), P(0));
  (void)f.placer.evaluate(T(2), P(0), plans);
  const EngineSnapshot after = f.engine.snapshot();
  EXPECT_EQ(before.proc_ready, after.proc_ready);
  EXPECT_EQ(before.sending_free, after.sending_free);
  EXPECT_EQ(before.receiving_free, after.receiving_free);
  EXPECT_EQ(before.link_ready, after.link_ready);
  EXPECT_EQ(f.schedule.comms().size(), comms_before);
}

TEST(Placer, CommitMatchesEvaluation) {
  Fixture f;
  f.placer.commit(T(0), 0, P(0), {});
  f.placer.commit(T(0), 1, P(1), {});
  f.placer.commit(T(1), 0, P(1), {});
  f.placer.commit(T(1), 1, P(2), {});

  const auto plans = f.placer.receive_all_plans(T(2), P(0));
  const TaskTimes predicted = f.placer.evaluate(T(2), P(0), plans);
  const TaskTimes committed = f.placer.commit(T(2), 0, P(0), plans);
  EXPECT_DOUBLE_EQ(predicted.start, committed.start);
  EXPECT_DOUBLE_EQ(predicted.finish, committed.finish);
  EXPECT_DOUBLE_EQ(f.schedule.replica(T(2), 0).finish, committed.finish);
}

TEST(Placer, ReceiveAllPlansListAllPrimaries) {
  Fixture f;
  f.placer.commit(T(0), 0, P(0), {});
  f.placer.commit(T(0), 1, P(1), {});
  f.placer.commit(T(1), 0, P(1), {});
  f.placer.commit(T(1), 1, P(2), {});

  // Target P0 hosts t0#0 -> that edge collapses to the co-located copy;
  // the other edge lists both primaries of t1.
  const auto plans = f.placer.receive_all_plans(T(2), P(0));
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].senders.size(), 1u);  // co-located t0#0
  EXPECT_EQ(plans[0].senders[0].proc, P(0));
  EXPECT_EQ(plans[1].senders.size(), 2u);  // both copies of t1
}

TEST(Placer, SupportsGateTheColocatedRule) {
  Fixture f;
  f.placer.commit(T(0), 0, P(0), {});
  f.placer.commit(T(0), 1, P(1), {});
  f.placer.commit(T(1), 0, P(1), {});
  f.placer.commit(T(1), 1, P(2), {});

  // t0#0 on P0 declared to depend on P2 as well: relying on it alone from
  // P0 would not be safe, so the plan keeps all primaries for that edge.
  SupportMap supports(f.g.task_count(), 2);
  supports.set(T(0), 0, support_of(P(0)) | support_of(P(2)));
  supports.set(T(0), 1, support_of(P(1)));
  supports.set(T(1), 0, support_of(P(1)));
  supports.set(T(1), 1, support_of(P(2)));
  const auto plans = f.placer.receive_all_plans(T(2), P(0), &supports);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].senders.size(), 2u);  // co-location rule suppressed
}

TEST(Placer, ArrivalsReportedPerPlan) {
  Fixture f;
  f.placer.commit(T(0), 0, P(0), {});
  f.placer.commit(T(0), 1, P(1), {});
  f.placer.commit(T(1), 0, P(1), {});
  f.placer.commit(T(1), 1, P(2), {});

  const auto plans = f.placer.receive_all_plans(T(2), P(0));
  std::vector<double> arrivals;
  const TaskTimes times = f.placer.evaluate(T(2), P(0), plans, &arrivals);
  ASSERT_EQ(arrivals.size(), plans.size());
  // The start is exactly the max of the per-edge first arrivals here (the
  // processor is free after its own replica at t=10 and arrivals dominate).
  EXPECT_DOUBLE_EQ(times.start, std::max(arrivals[0], arrivals[1]));
  // Intra edge arrives at the source finish (t0#0 finishes at 10).
  EXPECT_DOUBLE_EQ(arrivals[0], 10.0);
}

TEST(Placer, EmptyPlanRejectsEmptySenderList) {
  Fixture f;
  f.placer.commit(T(0), 0, P(0), {});
  IncomingPlan bad;
  bad.edge = 0;
  bad.volume = 10.0;  // no senders
  std::vector<IncomingPlan> plans{bad};
  EXPECT_THROW((void)f.placer.evaluate(T(2), P(0), plans), CheckError);
}

TEST(Placer, DuplicateCommitRecordsExtraReplica) {
  Fixture f;
  f.placer.commit(T(0), 0, P(0), {});
  f.placer.commit(T(0), 1, P(1), {});
  ReplicaIndex dup = 0;
  const TaskTimes times = f.placer.commit_duplicate(T(0), P(2), {}, dup);
  EXPECT_GE(dup, 2u);
  EXPECT_EQ(f.schedule.total_replicas(T(0)), 3u);
  EXPECT_DOUBLE_EQ(f.schedule.replica(T(0), dup).finish, times.finish);
}

TEST(MakeEngine, ProducesTheRightKinds) {
  const TaskGraph g = chain(2);
  const Platform platform(2);
  const CostModel costs = uniform_costs(g, platform, 1.0, 1.0);
  const auto one_port =
      make_engine(CommModelKind::kOnePort, platform, costs);
  const auto macro =
      make_engine(CommModelKind::kMacroDataflow, platform, costs);
  // Behavioural check: post two sends from the same processor; one-port
  // serializes, macro-dataflow does not.
  const CommTimes a1 = one_port->post_comm(P(0), P(1), 5.0, 0.0);
  const CommTimes a2 = one_port->post_comm(P(0), P(1), 5.0, 0.0);
  EXPECT_GE(a2.link_start, a1.link_finish);
  const CommTimes b1 = macro->post_comm(P(0), P(1), 5.0, 0.0);
  const CommTimes b2 = macro->post_comm(P(0), P(1), 5.0, 0.0);
  EXPECT_DOUBLE_EQ(b1.link_start, b2.link_start);
}

}  // namespace
}  // namespace caft
