// Property tests for the paper's central guarantee (Proposition 5.2): a
// fault-tolerant schedule must deliver every task's result under ANY set of
// at most ε processor crashes. For small platforms the crash-set space is
// enumerated *exhaustively* — every subset of size 0..ε, replayed through
// both the naive simulator and the incremental engine — and the structural
// validator must accept every schedule the library's algorithms emit on
// randomized platforms.
#include <gtest/gtest.h>

#include <bit>
#include <string>
#include <vector>

#include "algo/caft.hpp"
#include "algo/ftbar.hpp"
#include "algo/ftsa.hpp"
#include "algo/heft.hpp"
#include "helpers.hpp"
#include "sched/validator.hpp"
#include "sim/crash_sim.hpp"
#include "sim/replay_engine.hpp"
#include "sim/resilience.hpp"

namespace caft {
namespace {

using test::Scenario;

/// Enumerates every crash subset of {0..m-1} with size <= max_failures and
/// asserts the schedule survives each one, through both replay paths.
void expect_survives_all_subsets(const Schedule& schedule,
                                 const CostModel& costs,
                                 std::size_t max_failures,
                                 const std::string& context) {
  const std::size_t m = schedule.platform().proc_count();
  ASSERT_LE(m, 16u) << "exhaustive sweep is for small platforms";
  const ReplayEngine engine(schedule, costs);
  ReplayEngine::Scratch scratch;
  std::size_t tested = 0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << m); ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) > max_failures)
      continue;
    std::vector<ProcId> failed;
    for (std::size_t p = 0; p < m; ++p)
      if ((mask >> p) & 1)
        failed.push_back(ProcId(static_cast<ProcId::value_type>(p)));
    const CrashScenario scenario =
        CrashScenario::at_zero(m, failed);
    const CrashResult naive = simulate_crashes(schedule, costs, scenario);
    const CrashResult incr = engine.replay(scenario, scratch);
    EXPECT_TRUE(naive.success)
        << context << ": naive replay lost mask " << mask;
    EXPECT_TRUE(incr.success)
        << context << ": incremental replay lost mask " << mask;
    EXPECT_EQ(naive.latency, incr.latency) << context << " mask " << mask;
    ++tested;
  }
  // C(m,0) + ... + C(m,eps) scenarios were actually swept.
  EXPECT_GT(tested, max_failures);
}

TEST(EpsilonGuarantee, CaftSurvivesEveryCrashSetExhaustively) {
  for (const std::uint64_t seed : {101, 202, 303}) {
    for (const std::size_t eps : {1u, 2u}) {
      RandomDagParams dag;
      dag.min_tasks = 12;
      dag.max_tasks = 24;
      const Scenario s =
          test::random_setup(seed + eps, 6, seed % 2 == 0 ? 1.0 : 5.0, dag);
      CaftOptions options;
      options.base = SchedulerOptions{eps, CommModelKind::kOnePort};
      const Schedule schedule =
          caft_schedule(s.graph, *s.platform, *s.costs, options);
      expect_survives_all_subsets(schedule, *s.costs, eps,
                                  "caft seed " + std::to_string(seed) +
                                      " eps " + std::to_string(eps));
    }
  }
}

TEST(EpsilonGuarantee, FtsaAndFtbarSurviveEveryCrashSetExhaustively) {
  RandomDagParams dag;
  dag.min_tasks = 12;
  dag.max_tasks = 20;
  const Scenario s = test::random_setup(77, 5, 1.0, dag);
  const SchedulerOptions base{1, CommModelKind::kOnePort};
  const Schedule ftsa = ftsa_schedule(s.graph, *s.platform, *s.costs, base);
  expect_survives_all_subsets(ftsa, *s.costs, 1, "ftsa");
  FtbarOptions ftbar_options;
  ftbar_options.base = base;
  const Schedule ftbar =
      ftbar_schedule(s.graph, *s.platform, *s.costs, ftbar_options);
  expect_survives_all_subsets(ftbar, *s.costs, 1, "ftbar");
}

TEST(EpsilonGuarantee, CrashAtAnyThetaWithinEpsilonIsSurvived) {
  // Proposition 5.2 speaks of processors dead from t=0; mid-execution
  // crashes only ever *add* surviving work, so any <= ε crashes at any
  // positive θ must be survived too (the within-ε split of the campaign
  // relies on this).
  const Scenario s = test::random_setup(55, 6, 1.0);
  CaftOptions options;
  options.base = SchedulerOptions{2, CommModelKind::kOnePort};
  const Schedule schedule =
      caft_schedule(s.graph, *s.platform, *s.costs, options);
  const ReplayEngine engine(schedule, *s.costs);
  ReplayEngine::Scratch scratch;
  const double horizon = schedule.horizon();
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    CrashScenario scenario = CrashScenario::none(6);
    const auto procs = rng.sample_without_replacement(6, 2);
    for (const std::size_t p : procs)
      scenario.set_crash_time(ProcId(static_cast<ProcId::value_type>(p)),
                              rng.uniform(0.0, horizon * 1.2));
    const CrashResult result = engine.replay(scenario, scratch);
    EXPECT_TRUE(result.success) << "trial " << trial;
  }
}

TEST(EpsilonGuarantee, ExhaustiveResilienceCheckerAgrees) {
  // The dedicated checker (sim/resilience.hpp) sweeps exactly-ε subsets;
  // its verdict must agree with the exhaustive enumeration above.
  const Scenario s = test::random_setup(42, 6, 5.0);
  CaftOptions options;
  options.base = SchedulerOptions{2, CommModelKind::kOnePort};
  const Schedule schedule =
      caft_schedule(s.graph, *s.platform, *s.costs, options);
  const ResilienceReport report =
      check_resilience_exhaustive(schedule, *s.costs, 2);
  EXPECT_TRUE(report.resistant);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.scenarios_tested, 15u);  // C(6, 2)
}

TEST(EpsilonGuarantee, ValidatorAcceptsAllAlgorithmsOnRandomPlatforms) {
  for (const std::uint64_t seed : {7, 19, 31}) {
    for (const double granularity : {0.2, 1.0, 5.0}) {
      RandomDagParams dag;
      dag.min_tasks = 10;
      dag.max_tasks = 30;
      const std::size_t procs = 4 + seed % 5;
      const Scenario s = test::random_setup(seed, procs, granularity, dag);
      const std::size_t eps = 1 + seed % 2;
      const std::string context = "seed " + std::to_string(seed) + " gran " +
                                  std::to_string(granularity) + " m " +
                                  std::to_string(procs);

      CaftOptions caft_options;
      caft_options.base = SchedulerOptions{eps, CommModelKind::kOnePort};
      const Schedule caft =
          caft_schedule(s.graph, *s.platform, *s.costs, caft_options);
      EXPECT_TRUE(validate_schedule(caft, *s.costs).ok())
          << context << " caft: " << validate_schedule(caft, *s.costs).summary();

      const SchedulerOptions base{eps, CommModelKind::kOnePort};
      const Schedule ftsa = ftsa_schedule(s.graph, *s.platform, *s.costs, base);
      EXPECT_TRUE(validate_schedule(ftsa, *s.costs).ok())
          << context << " ftsa: " << validate_schedule(ftsa, *s.costs).summary();

      FtbarOptions ftbar_options;
      ftbar_options.base = base;
      const Schedule ftbar =
          ftbar_schedule(s.graph, *s.platform, *s.costs, ftbar_options);
      EXPECT_TRUE(validate_schedule(ftbar, *s.costs).ok())
          << context << " ftbar: "
          << validate_schedule(ftbar, *s.costs).summary();

      const Schedule heft =
          heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
      EXPECT_TRUE(validate_schedule(heft, *s.costs).ok())
          << context << " heft: " << validate_schedule(heft, *s.costs).summary();
    }
  }
}

}  // namespace
}  // namespace caft
