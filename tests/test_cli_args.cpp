// Tests for the shared --flag parser (common/cli_args.hpp), in particular
// the strict numeric/choice validation the CLIs rely on: a malformed value
// must abort with a clear CheckError instead of silently truncating
// ("10x" -> 10) or falling back to a default — a typo'd campaign flag must
// never silently run a different campaign.
#include "common/cli_args.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/progress.hpp"

namespace caft {
namespace {

/// Builds a CliArgs from a token list (argv[0] is skipped by the parser).
CliArgs make_args(std::vector<std::string> tokens) {
  tokens.insert(tokens.begin(), "prog");
  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (std::string& token : tokens) argv.push_back(token.data());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, ParsesFlagsValuesAndPositionals) {
  // A flag followed by a non-flag token consumes it as its value, so the
  // positional comes first and the bare flag last.
  const CliArgs args = make_args({"input.txt", "--replays", "500", "--gantt"});
  EXPECT_EQ(args.get("replays"), "500");
  EXPECT_TRUE(args.has("gantt"));
  EXPECT_EQ(args.get("gantt"), "true");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.get_size("replays", 0), 500u);
  EXPECT_EQ(args.get_size("absent", 7), 7u);
}

TEST(CliArgs, GetDoubleParsesStrictly) {
  const CliArgs args = make_args({"--rate", "0.25", "--bad", "0.25x",
                                  "--empty-ish", "--neg", "-0.5"});
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(args.get_double("absent", 1.5), 1.5);
  // Trailing junk, and a bare flag where a number is required, both throw.
  EXPECT_THROW((void)args.get_double("bad", 0.0), CheckError);
  EXPECT_THROW((void)args.get_double("empty-ish", 0.0), CheckError);
  // "-0.5" parses as the *next flag* being absent — the parser treats a
  // leading '-' token as this flag's value only when it does not start
  // with "--"; get_double accepts genuine negative numbers.
  EXPECT_DOUBLE_EQ(args.get_double("neg", 0.0), -0.5);
}

TEST(CliArgs, GetSizeRejectsMalformedCounts) {
  const CliArgs args = make_args({"--replays", "10O0", "--neg", "-5",
                                  "--float", "3.5", "--ok", "12"});
  EXPECT_EQ(args.get_size("ok", 0), 12u);
  EXPECT_THROW((void)args.get_size("replays", 0), CheckError);  // letter O
  EXPECT_THROW((void)args.get_size("neg", 0), CheckError);
  EXPECT_THROW((void)args.get_size("float", 0), CheckError);
}

TEST(CliArgs, GetChoiceValidatesAgainstSet) {
  const CliArgs args = make_args({"--memo", "shared", "--engine", "fast"});
  EXPECT_EQ(args.get_choice("memo", "scratch", {"shared", "scratch"}),
            "shared");
  EXPECT_EQ(args.get_choice("absent", "scratch", {"shared", "scratch"}),
            "scratch");
  try {
    (void)args.get_choice("engine", "incremental", {"incremental", "naive"});
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    // The message must name the flag, the bad value and the valid set.
    const std::string what = error.what();
    EXPECT_NE(what.find("--engine"), std::string::npos);
    EXPECT_NE(what.find("'fast'"), std::string::npos);
    EXPECT_NE(what.find("incremental|naive"), std::string::npos);
  }
}

TEST(CliArgs, CheckWritablePathAcceptsAndPreservesFiles) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "caft_cli_args_probe.txt")
          .string();
  std::remove(path.c_str());

  // A creatable path passes; the probe must not leave partial state that
  // confuses the real writer later (an empty file is fine — it is what the
  // writer would produce anyway).
  CliArgs::check_writable_path("trace-out", path);

  // An *existing* file must survive the probe byte-identically: validation
  // runs before the campaign, and aborting later for an unrelated reason
  // must not have truncated a previous run's artifact.
  { std::ofstream out(path, std::ios::trunc); out << "previous artifact"; }
  CliArgs::check_writable_path("trace-out", path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "previous artifact");
  std::remove(path.c_str());
}

TEST(CliArgs, CheckWritablePathRejectsBadTargets) {
  // A directory that does not exist: fail now, not after the campaign.
  try {
    CliArgs::check_writable_path("metrics-out",
                                 "/nonexistent-dir-xyzzy/metrics.json");
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--metrics-out"), std::string::npos);
    EXPECT_NE(what.find("/nonexistent-dir-xyzzy/metrics.json"),
              std::string::npos);
  }
  // A bare flag parses as the value "true": that is a missing path, not a
  // file named "true" in the working directory.
  EXPECT_THROW(CliArgs::check_writable_path("trace-out", "true"), CheckError);
  EXPECT_THROW(CliArgs::check_writable_path("trace-out", ""), CheckError);
}

TEST(CliArgs, CheckPortParsesStrictly) {
  EXPECT_EQ(CliArgs::check_port("port", "0"), 0);  // 0 = ephemeral bind
  EXPECT_EQ(CliArgs::check_port("port", "7070"), 7070);
  EXPECT_EQ(CliArgs::check_port("port", "65535"), 65535);
  const std::vector<std::string> bad = {
      "65536",   // one past the top
      "80x",     // trailing junk
      "-1",      // get_size rule: leading '-' never silently wraps
      "",        // empty
      "true",    // a bare --port with no value
      "999999999999999999999",  // longer than any port, must not overflow
      "0x50",    // no hex ports
  };
  for (const std::string& text : bad) {
    try {
      (void)CliArgs::check_port("port", text);
      FAIL() << "expected CheckError for '" << text << "'";
    } catch (const CheckError& error) {
      // The message must name the flag and the offending value.
      const std::string what = error.what();
      EXPECT_NE(what.find("--port"), std::string::npos) << text;
    }
  }
}

TEST(CliArgs, CheckListenAddressAcceptsDottedQuadsOnly) {
  EXPECT_EQ(CliArgs::check_listen_address("listen", "127.0.0.1"),
            "127.0.0.1");
  EXPECT_EQ(CliArgs::check_listen_address("listen", "0.0.0.0"), "0.0.0.0");
  EXPECT_EQ(CliArgs::check_listen_address("listen", "10.255.0.42"),
            "10.255.0.42");
  const std::vector<std::string> bad = {
      "localhost",      // hostnames mean DNS; a listen address names an
                        // interface — rejected by design
      "127.0.0.256",    // octet out of range
      "127.0.0",        // three octets
      "1.2.3.4.5",      // five octets
      "127.0..1",       // empty octet
      "127.0.0.1 ",     // trailing junk
      " 127.0.0.1",     // leading junk
      "127.0.0.+1",     // stoul would eat the '+'; the checker must not
      "::1",            // IPv6 not spoken here
      "",               // empty
      "true",           // bare --listen
  };
  for (const std::string& text : bad) {
    try {
      (void)CliArgs::check_listen_address("listen", text);
      FAIL() << "expected CheckError for '" << text << "'";
    } catch (const CheckError& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find("--listen"), std::string::npos) << text;
      // Actionable: the message suggests the two sane defaults.
      EXPECT_NE(what.find("127.0.0.1"), std::string::npos) << text;
      EXPECT_NE(what.find("0.0.0.0"), std::string::npos) << text;
    }
  }
}

// --- ProgressHeartbeat (campaign/progress.hpp) — the --progress state
// machine the CLIs hang on CampaignProgress callbacks, driven here with an
// injected clock so the 200 ms throttle is deterministic.

CampaignProgress progress_at(std::size_t done, std::size_t total) {
  CampaignProgress progress;
  progress.replays_done = done;
  progress.replays_total = total;
  progress.successes = done;
  return progress;
}

std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  return lines;
}

TEST(ProgressHeartbeat, EmitsTerminalLineSwallowedByThrottle) {
  // The regression this class exists for: the campaign's last update lands
  // inside the 200 ms throttle window with replays_done < replays_total
  // (an early-stopped campaign, or intermediate folds) — finish() must
  // still emit the terminal state instead of leaving the heartbeat frozen
  // at an earlier count.
  using Clock = ProgressHeartbeat::Clock;
  Clock::time_point fake_now{std::chrono::seconds(1000)};
  std::ostringstream sink;
  ProgressHeartbeat heartbeat(&sink, [&] { return fake_now; });

  heartbeat(progress_at(100, 1000));  // first update always prints
  fake_now += std::chrono::milliseconds(50);
  heartbeat(progress_at(300, 1000));  // throttled: 50 ms < 200 ms
  EXPECT_EQ(count_lines(sink.str()), 1u);
  EXPECT_NE(sink.str().find("100/1000"), std::string::npos);

  heartbeat.finish();  // campaign complete (early stop at 300)
  EXPECT_EQ(count_lines(sink.str()), 2u);
  EXPECT_NE(sink.str().find("300/1000"), std::string::npos);
  heartbeat.finish();  // idempotent
  EXPECT_EQ(count_lines(sink.str()), 2u);
}

TEST(ProgressHeartbeat, FinalUpdateBypassesThrottleAndFinishStaysQuiet) {
  using Clock = ProgressHeartbeat::Clock;
  Clock::time_point fake_now{std::chrono::seconds(1000)};
  std::ostringstream sink;
  ProgressHeartbeat heartbeat(&sink, [&] { return fake_now; });

  heartbeat(progress_at(500, 1000));
  fake_now += std::chrono::milliseconds(10);
  heartbeat(progress_at(1000, 1000));  // done == total: prints regardless
  EXPECT_EQ(count_lines(sink.str()), 2u);
  EXPECT_NE(sink.str().find("1000/1000"), std::string::npos);
  EXPECT_NE(sink.str().find("100.0%"), std::string::npos);
  heartbeat.finish();  // nothing pending — no duplicate line
  EXPECT_EQ(count_lines(sink.str()), 2u);
}

TEST(ProgressHeartbeat, RestartedCampaignResetsRateState) {
  using Clock = ProgressHeartbeat::Clock;
  Clock::time_point fake_now{std::chrono::seconds(1000)};
  std::ostringstream sink;
  ProgressHeartbeat heartbeat(&sink, [&] { return fake_now; });

  heartbeat(progress_at(1000, 1000));  // campaign A completes
  fake_now += std::chrono::milliseconds(10);
  // Campaign B begins: a non-increasing count (or changed total) resets
  // the throttle, so B's first update prints even inside A's window.
  heartbeat(progress_at(200, 2000));
  EXPECT_EQ(count_lines(sink.str()), 2u);
  EXPECT_NE(sink.str().find("200/2000"), std::string::npos);
  heartbeat.finish();  // B's last state already printed
  EXPECT_EQ(count_lines(sink.str()), 2u);
}

TEST(ProgressHeartbeat, FinishWithNoObservationsIsANoOp) {
  std::ostringstream sink;
  ProgressHeartbeat heartbeat(&sink);
  heartbeat.finish();
  EXPECT_TRUE(sink.str().empty());
}

}  // namespace
}  // namespace caft
