// Tests for exact DAG width via Dilworth / Hopcroft–Karp (dag/width).
#include "dag/width.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dag/generators.hpp"

namespace caft {
namespace {

TEST(HopcroftKarp, PerfectMatchingSquare) {
  HopcroftKarp hk(3, 3);
  for (std::size_t l = 0; l < 3; ++l)
    for (std::size_t r = 0; r < 3; ++r) hk.add_edge(l, r);
  EXPECT_EQ(hk.solve(), 3u);
}

TEST(HopcroftKarp, NoEdgesNoMatching) {
  HopcroftKarp hk(4, 4);
  EXPECT_EQ(hk.solve(), 0u);
  EXPECT_EQ(hk.match_of_left(0), HopcroftKarp::npos);
}

TEST(HopcroftKarp, PathGraphMatching) {
  // Left {0,1}, right {0,1}: 0-0, 1-0, 1-1 -> matching 2.
  HopcroftKarp hk(2, 2);
  hk.add_edge(0, 0);
  hk.add_edge(1, 0);
  hk.add_edge(1, 1);
  EXPECT_EQ(hk.solve(), 2u);
}

TEST(HopcroftKarp, AugmentingPathNeeded) {
  // Classic case where greedy would get 1 but optimum is 2.
  HopcroftKarp hk(2, 2);
  hk.add_edge(0, 0);
  hk.add_edge(0, 1);
  hk.add_edge(1, 0);
  EXPECT_EQ(hk.solve(), 2u);
}

TEST(HopcroftKarp, MatchConsistency) {
  HopcroftKarp hk(3, 3);
  hk.add_edge(0, 1);
  hk.add_edge(1, 2);
  hk.add_edge(2, 0);
  EXPECT_EQ(hk.solve(), 3u);
  EXPECT_EQ(hk.match_of_left(0), 1u);
  EXPECT_EQ(hk.match_of_left(1), 2u);
  EXPECT_EQ(hk.match_of_left(2), 0u);
}

TEST(DagWidth, EmptyGraph) { EXPECT_EQ(dag_width(TaskGraph{}), 0u); }

TEST(DagWidth, SingleTask) {
  TaskGraph g;
  g.add_task();
  EXPECT_EQ(dag_width(g), 1u);
}

TEST(DagWidth, ChainIsOne) { EXPECT_EQ(dag_width(chain(10)), 1u); }

TEST(DagWidth, IndependentTasksIsAll) {
  TaskGraph g;
  for (int i = 0; i < 7; ++i) g.add_task();
  EXPECT_EQ(dag_width(g), 7u);
}

TEST(DagWidth, ForkWidthIsLeaves) { EXPECT_EQ(dag_width(fork(5)), 5u); }

TEST(DagWidth, DiamondWidthIsMiddle) { EXPECT_EQ(dag_width(diamond(4)), 4u); }

TEST(DagWidth, ForkJoinWidth) { EXPECT_EQ(dag_width(fork_join(6)), 6u); }

TEST(DagWidth, TwoParallelChains) {
  TaskGraph g;
  std::vector<TaskId> row1, row2;
  for (int i = 0; i < 4; ++i) row1.push_back(g.add_task());
  for (int i = 0; i < 4; ++i) row2.push_back(g.add_task());
  for (int i = 0; i + 1 < 4; ++i) {
    g.add_edge(row1[static_cast<std::size_t>(i)],
               row1[static_cast<std::size_t>(i + 1)], 1.0);
    g.add_edge(row2[static_cast<std::size_t>(i)],
               row2[static_cast<std::size_t>(i + 1)], 1.0);
  }
  EXPECT_EQ(dag_width(g), 2u);
}

TEST(DagWidth, StencilWidthIsMinDimension) {
  // Antichains of an n x m grid order are its anti-diagonals.
  EXPECT_EQ(dag_width(stencil(3, 5)), 3u);
  EXPECT_EQ(dag_width(stencil(4, 4)), 4u);
}

TEST(MaximumAntichain, SizeMatchesWidth) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    RandomDagParams params;
    params.min_tasks = 15;
    params.max_tasks = 30;
    const TaskGraph g = random_dag(params, rng);
    const auto antichain = maximum_antichain(g);
    EXPECT_EQ(antichain.size(), dag_width(g));
  }
}

TEST(MaximumAntichain, ElementsPairwiseIndependent) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    RandomDagParams params;
    params.min_tasks = 15;
    params.max_tasks = 30;
    const TaskGraph g = random_dag(params, rng);
    const auto antichain = maximum_antichain(g);
    const Reachability closure(g);
    for (std::size_t i = 0; i < antichain.size(); ++i)
      for (std::size_t j = 0; j < antichain.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(closure.reaches(antichain[i], antichain[j]))
            << antichain[i].value() << " precedes " << antichain[j].value();
      }
  }
}

TEST(MaximumAntichain, EmptyGraph) {
  EXPECT_TRUE(maximum_antichain(TaskGraph{}).empty());
}

/// Width over the paper's random graphs stays within sane limits (a
/// regression canary for the closure/matching machinery at real sizes).
TEST(DagWidth, PaperSizedGraphs) {
  Rng rng(2008);
  for (int trial = 0; trial < 5; ++trial) {
    const TaskGraph g = random_dag(RandomDagParams{}, rng);
    const std::size_t width = dag_width(g);
    EXPECT_GE(width, 1u);
    EXPECT_LE(width, g.task_count());
  }
}

}  // namespace
}  // namespace caft
