// Tests for the campaign server (src/server/): the wire documents, the
// admission controller, the content-addressed cache, and the headline
// guarantee — a server's report document is byte-identical to serializing
// an in-process Session::evaluate of the same (instance bytes, spec),
// cache hit or miss, alone or under concurrent mixed load. Cache behavior
// is asserted through the server.cache.* obs counters, never wall-clock.
//
// The `*Identity*` tests double as the `campaign_server_identity` ctest
// (see CMakeLists.txt).
#include "server/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "helpers.hpp"
#include "obs/obs.hpp"
#include "server/server_wire.hpp"
#include "server/socket.hpp"

namespace ftsched {
namespace {

/// A randomized instance following the paper's protocol, adopted from the
/// shared test fixture (stable platform/costs addresses).
Instance random_instance(std::uint64_t seed, std::size_t procs, double g,
                         std::size_t eps) {
  caft::test::Scenario s = caft::test::random_setup(seed, procs, g);
  return Instance(std::move(s.graph), std::move(s.platform),
                  std::move(s.costs), RunOptions{eps});
}

std::string instance_bytes(const Instance& instance) {
  std::ostringstream bytes;
  instance.save(bytes);
  return bytes.str();
}

/// The spec every test starts from. ε rides the request (spec.request.eps)
/// — the server schedules the instance as its bytes describe it, and the
/// bytes carry no ε.
CampaignSpec base_spec() {
  CampaignSpec spec;
  spec.algorithms = {"caft", "ftsa"};
  spec.sampler = SamplerSpec::uniform_k(1);
  spec.replays = 300;
  spec.seed = 777;
  spec.request.eps = 1;
  return spec;
}

/// What the server must reproduce byte-for-byte: the serialized report of
/// an in-process Session::evaluate over an instance loaded from the same
/// bytes.
std::string local_document(const std::string& bytes, const CampaignSpec& spec,
                           const SessionOptions& options = {}) {
  std::istringstream in(bytes);
  const Instance instance = Instance::load(in);
  const Session session(options);
  std::ostringstream out;
  server::write_campaign_report(out, session.evaluate(instance, spec));
  return out.str();
}

/// One request through the stream-shaped protocol entry point.
std::string serve_once(server::CampaignServer& daemon,
                       const server::CampaignRequest& request) {
  std::ostringstream request_text;
  server::write_campaign_request(request_text, request);
  std::istringstream in(request_text.str());
  std::ostringstream out;
  daemon.serve(in, out);
  return out.str();
}

std::string serve_raw(server::CampaignServer& daemon,
                      const std::string& request_text) {
  std::istringstream in(request_text);
  std::ostringstream out;
  daemon.serve(in, out);
  return out.str();
}

// --- wire round-trips

TEST(CampaignServerWire, RequestRoundTripsThroughTheWire) {
  server::CampaignRequest request;
  request.spec = base_spec();
  request.spec.algorithms = {"caft", "heft"};
  request.spec.sampler = SamplerSpec::window(2, 10.0, 250.5);
  request.spec.replays = 1234;
  request.spec.seed = 99;
  request.spec.quantiles = {0.25, 0.75};
  request.spec.theta_buckets = 32;
  request.spec.exact = true;
  request.spec.target_ci_width = 0.125;
  request.spec.request.eps = 2;
  request.spec.request.one_to_one = false;
  request.progress = true;
  request.instance_bytes = "not parsed by the wire layer\njust carried\n";

  std::ostringstream out;
  server::write_campaign_request(out, request);
  std::istringstream in(out.str());
  const server::CampaignRequest parsed = server::read_campaign_request(in);

  EXPECT_EQ(parsed.spec.algorithms, request.spec.algorithms);
  EXPECT_EQ(parsed.spec.sampler.kind, request.spec.sampler.kind);
  EXPECT_EQ(parsed.spec.sampler.failures, request.spec.sampler.failures);
  EXPECT_EQ(parsed.spec.sampler.theta_hi, request.spec.sampler.theta_hi);
  EXPECT_EQ(parsed.spec.replays, request.spec.replays);
  EXPECT_EQ(parsed.spec.seed, request.spec.seed);
  EXPECT_EQ(parsed.spec.quantiles, request.spec.quantiles);
  EXPECT_EQ(parsed.spec.theta_buckets, request.spec.theta_buckets);
  EXPECT_EQ(parsed.spec.exact, request.spec.exact);
  EXPECT_EQ(parsed.spec.target_ci_width, request.spec.target_ci_width);
  EXPECT_EQ(parsed.spec.request.eps, request.spec.request.eps);
  EXPECT_EQ(parsed.spec.request.one_to_one, request.spec.request.one_to_one);
  EXPECT_EQ(parsed.progress, request.progress);
  EXPECT_EQ(parsed.instance_bytes, request.instance_bytes);

  // And the round-trip is a fixed point: re-serializing the parsed request
  // yields the same bytes (hexfloat doubles make this exact).
  std::ostringstream again;
  server::write_campaign_request(again, parsed);
  EXPECT_EQ(again.str(), out.str());
}

TEST(CampaignServerWire, ReportRoundTripsIntoAReadableDocument) {
  const Instance instance = random_instance(21, 6, 1.0, 1);
  CampaignSpec spec = base_spec();
  spec.replays = 120;
  const Session session;
  const CampaignReport report = session.evaluate(instance, spec);

  std::ostringstream out;
  server::write_campaign_report(out, report);
  std::istringstream in(out.str());
  const server::ReportDocument document = server::read_campaign_report(in);

  ASSERT_EQ(document.runs.size(), report.runs.size());
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    const CampaignRun& run = report.runs[i];
    const server::ReportRun& parsed = document.runs[i];
    EXPECT_EQ(parsed.algorithm, run.algorithm);
    EXPECT_EQ(parsed.eps, run.result.eps);
    EXPECT_EQ(parsed.makespan, run.result.makespan);
    EXPECT_EQ(parsed.upper_bound, run.result.upper_bound);
    EXPECT_EQ(parsed.messages, run.result.messages);
    EXPECT_EQ(parsed.message_volume, run.result.message_volume);
    EXPECT_EQ(parsed.theta_bucket_width, run.theta_bucket_width);
    EXPECT_EQ(parsed.summary.sampler, run.summary.sampler);
    EXPECT_EQ(parsed.summary.replays, run.summary.replays);
    EXPECT_EQ(parsed.summary.successes, run.summary.successes);
    EXPECT_EQ(parsed.summary.success_ci.low, run.summary.success_ci.low);
    EXPECT_EQ(parsed.summary.success_ci.high, run.summary.success_ci.high);
    EXPECT_EQ(parsed.summary.latency.count(), run.summary.latency.count());
    EXPECT_EQ(parsed.summary.latency.mean(), run.summary.latency.mean());
    EXPECT_EQ(parsed.summary.latency.m2(), run.summary.latency.m2());
    EXPECT_EQ(parsed.summary.delivered_messages.mean(),
              run.summary.delivered_messages.mean());
    ASSERT_EQ(parsed.summary.latency_quantiles.size(),
              run.summary.latency_quantiles.size());
    for (std::size_t q = 0; q < run.summary.latency_quantiles.size(); ++q) {
      EXPECT_EQ(parsed.summary.latency_quantiles[q].q,
                run.summary.latency_quantiles[q].q);
      EXPECT_EQ(parsed.summary.latency_quantiles[q].value,
                run.summary.latency_quantiles[q].value);
    }
  }
  // summary_rows parity: the client renders exactly what the local report
  // would have rendered.
  const auto local_rows = report.summary_rows();
  const auto wire_rows = document.summary_rows();
  ASSERT_EQ(wire_rows.size(), local_rows.size());
  for (std::size_t i = 0; i < local_rows.size(); ++i)
    EXPECT_EQ(wire_rows[i].first, local_rows[i].first);
}

TEST(CampaignServerWire, BusyAndErrorDocumentsRoundTrip) {
  std::ostringstream busy_out;
  server::write_campaign_busy(busy_out, server::BusyInfo{3, 7, 4, 8});
  std::istringstream busy_in(busy_out.str());
  const server::ServerResponse busy = server::read_server_response(busy_in);
  ASSERT_EQ(busy.kind, server::ServerResponse::Kind::kBusy);
  EXPECT_EQ(busy.busy.inflight, 3u);
  EXPECT_EQ(busy.busy.queued, 7u);
  EXPECT_EQ(busy.busy.max_inflight, 4u);
  EXPECT_EQ(busy.busy.queue_limit, 8u);

  std::ostringstream error_out;
  server::write_campaign_error(error_out, "multi\nline\nmessage");
  std::istringstream error_in(error_out.str());
  const server::ServerResponse error =
      server::read_server_response(error_in);
  ASSERT_EQ(error.kind, server::ServerResponse::Kind::kError);
  // Embedded newlines were flattened — the message rides one keyed line.
  EXPECT_EQ(error.error, "multi line message");
}

TEST(CampaignServerWire, ResponseReaderStripsAndReportsProgressLines) {
  std::ostringstream out;
  server::write_progress_line(out, server::ProgressLine{"caft", 64, 300, 60,
                                                        0.25});
  server::write_progress_line(out, server::ProgressLine{"caft", 128, 300,
                                                        120, 0.125});
  server::write_campaign_busy(out, server::BusyInfo{1, 0, 1, 0});
  std::istringstream in(out.str());
  std::vector<std::size_t> seen;
  const server::ServerResponse response = server::read_server_response(
      in, [&](const server::ProgressLine& line) {
        seen.push_back(line.done);
      });
  EXPECT_EQ(response.kind, server::ServerResponse::Kind::kBusy);
  ASSERT_EQ(response.progress.size(), 2u);
  EXPECT_EQ(response.progress[0].algorithm, "caft");
  EXPECT_EQ(response.progress[1].ci_width, 0.125);
  EXPECT_EQ(seen, (std::vector<std::size_t>{64, 128}));
}

// --- admission

TEST(Admission, ZeroInflightRejectsEverythingImmediately) {
  server::Admission admission(0, 8);
  const server::Admission::Ticket ticket = admission.acquire();
  EXPECT_FALSE(ticket.admitted);
  EXPECT_EQ(ticket.inflight, 0u);
  EXPECT_EQ(ticket.queued, 0u);
}

TEST(Admission, RejectsBeyondTheQueueLimitAndRecoversOnRelease) {
  server::Admission admission(1, 0);  // one slot, no queue
  const server::Admission::Ticket first = admission.acquire();
  ASSERT_TRUE(first.admitted);
  const server::Admission::Ticket second = admission.acquire();
  EXPECT_FALSE(second.admitted);  // slot busy, queue full (size 0)
  EXPECT_EQ(second.inflight, 1u);
  admission.release();
  const server::Admission::Ticket third = admission.acquire();
  EXPECT_TRUE(third.admitted);
  admission.release();
}

TEST(Admission, QueuedAcquirerProceedsWhenASlotFrees) {
  server::Admission admission(1, 1);
  const server::Admission::Ticket first = admission.acquire();
  ASSERT_TRUE(first.admitted);
  std::atomic<bool> second_admitted{false};
  std::thread waiter([&] {
    const server::Admission::Ticket second = admission.acquire();
    EXPECT_TRUE(second.admitted);
    second_admitted.store(true);
    admission.release();
  });
  admission.release();  // frees the slot; the queued waiter takes it
  waiter.join();
  EXPECT_TRUE(second_admitted.load());
}

// --- protocol behavior through serve()

TEST(CampaignServer, SaturatedServerAnswersWithABusyDocument) {
  server::ServerOptions options;
  options.max_inflight = 0;  // maintenance mode: deterministic rejection
  options.queue_limit = 5;
  server::CampaignServer daemon(options);

  const Instance instance = random_instance(31, 6, 1.0, 1);
  server::CampaignRequest request;
  request.spec = base_spec();
  request.instance_bytes = instance_bytes(instance);

  std::istringstream response_in(serve_once(daemon, request));
  const server::ServerResponse response =
      server::read_server_response(response_in);
  ASSERT_EQ(response.kind, server::ServerResponse::Kind::kBusy);
  EXPECT_EQ(response.busy.max_inflight, 0u);
  EXPECT_EQ(response.busy.queue_limit, 5u);
}

TEST(CampaignServer, VersionSkewBecomesAnErrorDocumentNamingV1) {
  server::CampaignServer daemon(server::ServerOptions{});
  const std::string response_text =
      serve_raw(daemon, "caft-campaign-request v2\nend\n");
  std::istringstream response_in(response_text);
  const server::ServerResponse response =
      server::read_server_response(response_in);
  ASSERT_EQ(response.kind, server::ServerResponse::Kind::kError);
  EXPECT_NE(response.error.find("caft-campaign-request v2"),
            std::string::npos);
  EXPECT_NE(response.error.find("speaks v1"), std::string::npos);
}

TEST(CampaignServer, BadRequestsBecomeErrorDocumentsNotDroppedStreams) {
  server::CampaignServer daemon(server::ServerOptions{});
  const Instance instance = random_instance(32, 6, 1.0, 1);

  // Unknown algorithm: the canonical registry error rides the document.
  server::CampaignRequest request;
  request.spec = base_spec();
  request.spec.algorithms = {"nonesuch"};
  request.instance_bytes = instance_bytes(instance);
  std::istringstream unknown_in(serve_once(daemon, request));
  const server::ServerResponse unknown =
      server::read_server_response(unknown_in);
  ASSERT_EQ(unknown.kind, server::ServerResponse::Kind::kError);
  EXPECT_NE(unknown.error.find("unknown algo 'nonesuch'"),
            std::string::npos);

  // Garbage instance bytes: the loader's error, still a document.
  request.spec = base_spec();
  request.instance_bytes = "this is not an instance file\n";
  std::istringstream garbage_in(serve_once(daemon, request));
  const server::ServerResponse garbage =
      server::read_server_response(garbage_in);
  EXPECT_EQ(garbage.kind, server::ServerResponse::Kind::kError);

  // Truncated request (no 'end'): a document too.
  std::istringstream truncated_in(
      serve_raw(daemon, "caft-campaign-request v1\nreplays 10\n"));
  const server::ServerResponse truncated =
      server::read_server_response(truncated_in);
  EXPECT_EQ(truncated.kind, server::ServerResponse::Kind::kError);
}

// --- the headline guarantee

TEST(CampaignServer, ReportIdentityColdAndWarmWithCacheHitsObserved) {
  obs::Registry& registry = obs::Registry::global();
  registry.set_enabled(true);

  server::ServerOptions options;
  options.cache_capacity = 64;
  server::CampaignServer daemon(options);

  const Instance instance = random_instance(33, 8, 1.0, 1);
  server::CampaignRequest request;
  request.spec = base_spec();
  request.instance_bytes = instance_bytes(instance);
  const std::string expected =
      local_document(request.instance_bytes, request.spec);

  const std::uint64_t hits_before =
      registry.snapshot().counter_value("server.cache.hit");
  const std::uint64_t misses_before =
      registry.snapshot().counter_value("server.cache.miss");

  // Cold: every artifact family misses, report already byte-identical.
  EXPECT_EQ(serve_once(daemon, request), expected);
  const std::uint64_t misses_cold =
      registry.snapshot().counter_value("server.cache.miss");
  EXPECT_GE(misses_cold - misses_before, 3u);  // instance + schedules

  // Warm: the same bytes hit every family, and the report must not move
  // by a single byte — the cache-hit path is observed via counters, never
  // wall-clock.
  EXPECT_EQ(serve_once(daemon, request), expected);
  const std::uint64_t hits_after =
      registry.snapshot().counter_value("server.cache.hit");
  const std::uint64_t misses_after =
      registry.snapshot().counter_value("server.cache.miss");
  EXPECT_GE(hits_after - hits_before, 3u);
  EXPECT_EQ(misses_after, misses_cold);  // warm run misses nothing

  registry.set_enabled(false);
}

TEST(CampaignServer, ReportIdentityWindowSamplerAndEarlyStopping) {
  server::ServerOptions options;
  options.session.block = 64;  // early stopping cuts at wave boundaries
  server::CampaignServer daemon(options);

  const Instance instance = random_instance(44, 8, 1.0, 1);

  // Window sampler, full replay budget.
  server::CampaignRequest request;
  request.spec = base_spec();
  request.spec.sampler = SamplerSpec::window(2, 0.0, 500.0);
  request.instance_bytes = instance_bytes(instance);
  EXPECT_EQ(serve_once(daemon, request),
            local_document(request.instance_bytes, request.spec,
                           options.session));

  // Early-stopped campaign: the in-process stopping point is deterministic
  // per (seed, block), so the server (cold, then warm) still reproduces
  // the local document byte-for-byte.
  server::CampaignRequest stopped = request;
  stopped.spec.sampler = SamplerSpec::uniform_k(2);
  stopped.spec.replays = 4000;
  stopped.spec.target_ci_width = 0.2;
  const std::string expected =
      local_document(stopped.instance_bytes, stopped.spec, options.session);
  const std::string cold = serve_once(daemon, stopped);
  EXPECT_EQ(cold, expected);
  EXPECT_EQ(serve_once(daemon, stopped), expected);  // warm

  // The campaign genuinely stopped early (otherwise this tests nothing).
  std::istringstream parsed_in(cold);
  const server::ReportDocument parsed =
      server::read_campaign_report(parsed_in);
  ASSERT_FALSE(parsed.runs.empty());
  EXPECT_LT(parsed.runs.front().summary.replays, 4000u);
  EXPECT_GT(parsed.runs.front().summary.replays, 0u);
}

TEST(CampaignServer, ReportIdentityUnderConcurrentMixedLoadOverSockets) {
  server::ServerOptions options;
  options.max_inflight = 4;
  options.queue_limit = 8;
  server::CampaignServer daemon(options);
  daemon.start();
  const std::uint16_t port = daemon.port();

  const Instance uniform_instance = random_instance(55, 6, 1.0, 1);
  const Instance window_instance = random_instance(56, 6, 0.5, 1);

  server::CampaignRequest uniform_request;
  uniform_request.spec = base_spec();
  uniform_request.spec.replays = 200;
  uniform_request.instance_bytes = instance_bytes(uniform_instance);

  server::CampaignRequest window_request;
  window_request.spec = base_spec();
  window_request.spec.replays = 200;
  window_request.spec.sampler = SamplerSpec::window(2, 0.0, 400.0);
  window_request.instance_bytes = instance_bytes(window_instance);

  const std::string uniform_expected =
      local_document(uniform_request.instance_bytes, uniform_request.spec);
  const std::string window_expected =
      local_document(window_request.instance_bytes, window_request.spec);

  // Two clients ask for the same campaign (one will warm the other's
  // cache, in whichever order the threads land), a third asks for a
  // different instance+sampler concurrently. Every byte must match the
  // local documents regardless.
  const auto fetch = [port](const server::CampaignRequest& request) {
    const auto connection = server::connect_to("127.0.0.1", port);
    server::write_campaign_request(*connection, request);
    connection->flush();
    std::ostringstream response;
    response << connection->rdbuf();
    return response.str();
  };

  std::string first, second, third;
  std::thread a([&] { first = fetch(uniform_request); });
  std::thread b([&] { second = fetch(uniform_request); });
  std::thread c([&] { third = fetch(window_request); });
  a.join();
  b.join();
  c.join();
  daemon.stop();

  EXPECT_EQ(first, uniform_expected);
  EXPECT_EQ(second, uniform_expected);
  EXPECT_EQ(third, window_expected);
}

// --- cache eviction and lifecycle

TEST(CampaignServer, TinyCacheEvictsButNeverChangesAReport) {
  obs::Registry& registry = obs::Registry::global();
  registry.set_enabled(true);
  const std::uint64_t evictions_before =
      registry.snapshot().counter_value("server.cache.evict");

  server::ServerOptions options;
  options.cache_capacity = 1;  // pathological: every family fights for it
  server::CampaignServer daemon(options);

  const Instance first_instance = random_instance(61, 6, 1.0, 1);
  const Instance second_instance = random_instance(62, 6, 1.0, 1);
  server::CampaignRequest request;
  request.spec = base_spec();
  request.spec.replays = 120;
  request.spec.algorithms = {"caft"};

  request.instance_bytes = instance_bytes(first_instance);
  const std::string first_expected =
      local_document(request.instance_bytes, request.spec);
  server::CampaignRequest other = request;
  other.instance_bytes = instance_bytes(second_instance);
  const std::string second_expected =
      local_document(other.instance_bytes, other.spec);

  // Alternate the two campaigns so the single-entry cache thrashes.
  EXPECT_EQ(serve_once(daemon, request), first_expected);
  EXPECT_EQ(serve_once(daemon, other), second_expected);
  EXPECT_EQ(serve_once(daemon, request), first_expected);
  EXPECT_EQ(serve_once(daemon, other), second_expected);

  const std::uint64_t evictions_after =
      registry.snapshot().counter_value("server.cache.evict");
  EXPECT_GT(evictions_after, evictions_before);
  registry.set_enabled(false);
}

TEST(CampaignServer, StartStopDrainsAndRestarts) {
  server::ServerOptions options;
  server::CampaignServer daemon(options);
  daemon.start();
  EXPECT_NE(daemon.port(), 0u);  // ephemeral port resolved
  EXPECT_THROW(daemon.start(), caft::CheckError);  // already running

  // A full request/response cycle over a real socket, then a drain.
  const Instance instance = random_instance(71, 6, 1.0, 1);
  server::CampaignRequest request;
  request.spec = base_spec();
  request.spec.replays = 60;
  request.spec.algorithms = {"caft"};
  request.instance_bytes = instance_bytes(instance);
  {
    const auto connection = server::connect_to("127.0.0.1", daemon.port());
    server::write_campaign_request(*connection, request);
    connection->flush();
    const server::ServerResponse response =
        server::read_server_response(*connection);
    EXPECT_EQ(response.kind, server::ServerResponse::Kind::kReport);
  }
  daemon.stop();
  daemon.stop();  // idempotent

  // The server restarts cleanly after a drain (new ephemeral port).
  daemon.start();
  EXPECT_NE(daemon.port(), 0u);
  daemon.stop();
}

TEST(CampaignServer, RejectsSubprocessExecutionPolicy) {
  server::ServerOptions options;
  options.session.exec =
      ExecutionPolicy::subprocess("/does/not/matter", 2);
  EXPECT_THROW(server::CampaignServer{options}, caft::CheckError);
}

TEST(CampaignServer, StreamsProgressLinesBeforeTheReport) {
  server::ServerOptions options;
  options.session.block = 64;
  server::CampaignServer daemon(options);

  const Instance instance = random_instance(81, 6, 1.0, 1);
  server::CampaignRequest request;
  request.spec = base_spec();
  request.spec.replays = 256;
  request.spec.algorithms = {"caft"};
  request.progress = true;
  request.instance_bytes = instance_bytes(instance);

  std::istringstream response_in(serve_once(daemon, request));
  const server::ServerResponse response =
      server::read_server_response(response_in);
  ASSERT_EQ(response.kind, server::ServerResponse::Kind::kReport);
  ASSERT_FALSE(response.progress.empty());
  EXPECT_EQ(response.progress.front().algorithm, "caft");
  EXPECT_EQ(response.progress.back().done, 256u);
  EXPECT_EQ(response.progress.back().total, 256u);

  // And the report itself is still byte-identical: strip the progress
  // lines (everything before the magic line) and compare.
  request.progress = false;
  const std::string with_progress = serve_once(daemon, request);
  const std::string expected =
      local_document(request.instance_bytes, request.spec, options.session);
  EXPECT_EQ(serve_once(daemon, request), expected);
  const std::size_t magic = with_progress.find("caft-campaign-report v1");
  ASSERT_NE(magic, std::string::npos);
  EXPECT_EQ(with_progress.substr(magic), expected);
}

}  // namespace
}  // namespace ftsched
