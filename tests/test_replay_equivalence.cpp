// Differential (adversarial) suite for the incremental ReplayEngine: on
// hundreds of randomized (instance, schedule, scenario) triples — across
// algorithms, ε values, communication models, topologies and scenario
// distributions — every field of the engine's CrashResult must be
// *byte-identical* to the naive simulate_crashes path: per-task/per-replica
// finish times (exact doubles, no tolerance), success flags, delivered
// message counts, order-relaxation accounting. The campaign executor's
// `--engine` interchangeability rests entirely on this property.
#include "sim/replay_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "algo/caft.hpp"
#include "algo/ftbar.hpp"
#include "algo/ftsa.hpp"
#include "algo/heft.hpp"
#include "campaign/campaign.hpp"
#include "campaign/scenario_sampler.hpp"
#include "dag/generators.hpp"
#include "helpers.hpp"
#include "platform/cost_synthesis.hpp"
#include "sim/crash_sim.hpp"

namespace caft {
namespace {

using test::Scenario;

/// Exact, field-by-field comparison. Doubles compare with ==: the engines
/// must perform identical IEEE arithmetic, not merely agree approximately.
void expect_identical(const CrashResult& naive, const CrashResult& incr,
                      const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(naive.success, incr.success);
  EXPECT_EQ(naive.latency, incr.latency);
  EXPECT_EQ(naive.delivered_messages, incr.delivered_messages);
  EXPECT_EQ(naive.order_relaxations, incr.order_relaxations);
  EXPECT_EQ(naive.order_deadlock, incr.order_deadlock);
  ASSERT_EQ(naive.completed.size(), incr.completed.size());
  ASSERT_EQ(naive.finish.size(), incr.finish.size());
  for (std::size_t t = 0; t < naive.completed.size(); ++t) {
    ASSERT_EQ(naive.completed[t].size(), incr.completed[t].size());
    ASSERT_EQ(naive.finish[t].size(), incr.finish[t].size());
    for (std::size_t r = 0; r < naive.completed[t].size(); ++r) {
      EXPECT_EQ(naive.completed[t][r], incr.completed[t][r])
          << "task " << t << " replica " << r;
      EXPECT_EQ(naive.finish[t][r], incr.finish[t][r])
          << "task " << t << " replica " << r;
    }
  }
}

/// Replays `scenario` through both paths and asserts identity. Returns the
/// number of triples exercised (always 1; keeps call sites countable).
std::size_t check_triple(const Schedule& schedule, const CostModel& costs,
                         const ReplayEngine& engine,
                         ReplayEngine::Scratch& scratch,
                         const CrashScenario& scenario,
                         const std::string& context) {
  const CrashResult naive = simulate_crashes(schedule, costs, scenario);
  const CrashResult incr = engine.replay(scenario, scratch);
  expect_identical(naive, incr, context);
  return 1;
}

Schedule schedule_with(const std::string& algo, const Scenario& s,
                       std::size_t eps, CommModelKind model) {
  const SchedulerOptions base{eps, model};
  if (algo == "caft") {
    CaftOptions options;
    options.base = base;
    return caft_schedule(s.graph, *s.platform, *s.costs, options);
  }
  if (algo == "ftsa") return ftsa_schedule(s.graph, *s.platform, *s.costs, base);
  if (algo == "ftbar") {
    FtbarOptions options;
    options.base = base;
    return ftbar_schedule(s.graph, *s.platform, *s.costs, options);
  }
  return heft_schedule(s.graph, *s.platform, *s.costs, model);  // eps = 0
}

// ------------------------------------------------------- the big sweep

TEST(ReplayEquivalence, RandomTriplesAcrossAlgorithmsAndSamplers) {
  // 6 instances x 4 schedules x 11 scenarios = 264 triples, all checked
  // byte-for-byte. One Scratch is reused throughout, so scratch reuse (and
  // the dead-set memo behind it) is exercised across schedules too.
  std::size_t triples = 0;
  ReplayEngine::Scratch scratch;
  const std::vector<std::uint64_t> seeds = {11, 23, 37, 51, 73, 97};
  for (const std::uint64_t seed : seeds) {
    RandomDagParams dag;
    dag.min_tasks = 15;
    dag.max_tasks = 35;
    const Scenario s = test::random_setup(seed, 8, seed % 2 == 0 ? 1.0 : 5.0,
                                          dag);
    struct Config {
      const char* algo;
      std::size_t eps;
      CommModelKind model;
    };
    const std::vector<Config> configs = {
        {"caft", 1, CommModelKind::kOnePort},
        {"ftsa", 2, CommModelKind::kOnePort},
        {"ftbar", 1, CommModelKind::kOnePort},
        {"heft", 0, CommModelKind::kMacroDataflow},
    };
    for (const Config& config : configs) {
      const Schedule schedule =
          schedule_with(config.algo, s, config.eps, config.model);
      const ReplayEngine engine(schedule, *s.costs);
      const double horizon = schedule.horizon();

      std::vector<std::unique_ptr<ScenarioSampler>> samplers;
      samplers.push_back(std::make_unique<UniformKSampler>(8, config.eps));
      samplers.push_back(
          std::make_unique<UniformKSampler>(8, config.eps + 2));
      samplers.push_back(std::make_unique<CrashWindowSampler>(
          8, 2, 0.0, horizon * 1.1));
      samplers.push_back(std::make_unique<ExponentialLifetimeSampler>(
          8, 2.0 / horizon, horizon));
      samplers.push_back(std::make_unique<CorrelatedGroupSampler>(
          8, 3, 0.4, 0.0, horizon * 0.5));
      Rng rng(seed * 1000 + config.eps);
      for (const auto& sampler : samplers) {
        for (int draw = 0; draw < 2; ++draw) {
          const CrashScenario scenario = sampler->sample(rng);
          triples += check_triple(
              schedule, *s.costs, engine, scratch, scenario,
              std::string(config.algo) + " seed " + std::to_string(seed) +
                  " sampler " + sampler->name() + " draw " +
                  std::to_string(draw));
        }
      }
      // The fault-free scenario replays from the final snapshot alone.
      triples += check_triple(schedule, *s.costs, engine, scratch,
                              CrashScenario::none(8),
                              std::string(config.algo) + " fault-free");
    }
  }
  EXPECT_GE(triples, 200u);
}

// ------------------------------------------- targeted boundary scenarios

TEST(ReplayEquivalence, ZeroCrashMatchesCommittedTimetable) {
  const Scenario s = test::random_setup(5, 6, 1.0);
  const Schedule schedule = schedule_with("caft", s, 1, CommModelKind::kOnePort);
  const ReplayEngine engine(schedule, *s.costs);
  const CrashResult result = engine.replay(CrashScenario::none(6));
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.latency, schedule.zero_crash_latency());
  for (const TaskId t : s.graph.all_tasks())
    for (ReplicaIndex r = 0; r < 2; ++r)
      EXPECT_NEAR(result.finish[t.index()][r], schedule.replica(t, r).finish,
                  1e-9);
}

TEST(ReplayEquivalence, AllProcessorsDead) {
  const Scenario s = test::random_setup(9, 5, 1.0);
  const Schedule schedule = schedule_with("ftsa", s, 1, CommModelKind::kOnePort);
  const ReplayEngine engine(schedule, *s.costs);
  ReplayEngine::Scratch scratch;
  std::vector<ProcId> all;
  for (std::size_t p = 0; p < 5; ++p)
    all.push_back(ProcId(static_cast<ProcId::value_type>(p)));
  check_triple(schedule, *s.costs, engine, scratch,
               CrashScenario::at_zero(5, all), "all dead");
}

TEST(ReplayEquivalence, ThetaExactlyAtReplicaFinishBoundary) {
  // Crash times equal to committed finish instants probe the strict ">"
  // in the crash-at-θ rule and the "<=" in snapshot validity: work
  // completing exactly at θ survives in both engines.
  const Scenario s = test::random_setup(13, 6, 1.0);
  const Schedule schedule = schedule_with("caft", s, 1, CommModelKind::kOnePort);
  const ReplayEngine engine(schedule, *s.costs);
  ReplayEngine::Scratch scratch;
  std::size_t checked = 0;
  for (const TaskId t : s.graph.all_tasks()) {
    if (t.index() % 3 != 0) continue;  // keep the test quick
    for (ReplicaIndex r = 0; r < 2; ++r) {
      const ReplicaAssignment& a = schedule.replica(t, r);
      CrashScenario scenario = CrashScenario::none(6);
      scenario.set_crash_time(a.proc, a.finish);
      checked += check_triple(schedule, *s.costs, engine, scratch, scenario,
                              "theta at finish of task " +
                                  std::to_string(t.index()) + " replica " +
                                  std::to_string(r));
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(ReplayEquivalence, ThetaSweepAcrossSnapshotBoundaries) {
  // A fine θ sweep for one crashing processor crosses every stored
  // snapshot's validity boundary at least once.
  const Scenario s = test::random_setup(29, 6, 5.0);
  const Schedule schedule = schedule_with("ftsa", s, 1, CommModelKind::kOnePort);
  const ReplayEngine engine(schedule, *s.costs);
  ASSERT_GT(engine.snapshot_count(), 1u);
  ReplayEngine::Scratch scratch;
  const double horizon = schedule.horizon();
  for (int step = 0; step <= 40; ++step) {
    const double theta = horizon * static_cast<double>(step) / 40.0;
    CrashScenario scenario = CrashScenario::none(6);
    scenario.set_crash_time(ProcId(2), theta);
    check_triple(schedule, *s.costs, engine, scratch, scenario,
                 "theta sweep step " + std::to_string(step));
  }
}

TEST(ReplayEquivalence, SparseTopologyWithRouters) {
  // Star topology: multi-hop routes exercise segment ops and router kill
  // lists (transit through a dead hub must vanish identically).
  Rng rng(21);
  RandomDagParams dp;
  dp.min_tasks = 20;
  dp.max_tasks = 30;
  const TaskGraph g = random_dag(dp, rng);
  auto platform = std::make_unique<Platform>(Topology::star(6));
  CostSynthesisParams cp;
  cp.granularity = 1.0;
  auto costs =
      std::make_unique<CostModel>(synthesize_costs(g, *platform, cp, rng));
  CaftOptions options;
  options.base = SchedulerOptions{1, CommModelKind::kOnePort};
  const Schedule schedule = caft_schedule(g, *platform, *costs, options);
  const ReplayEngine engine(schedule, *costs);
  ReplayEngine::Scratch scratch;
  // Kill each processor alone (including the hub, proc 0), then pairs.
  for (std::size_t p = 0; p < 6; ++p)
    check_triple(schedule, *costs, engine, scratch,
                 CrashScenario::at_zero(
                     6, {ProcId(static_cast<ProcId::value_type>(p))}),
                 "star single crash p" + std::to_string(p));
  for (std::size_t p = 1; p < 6; ++p)
    check_triple(
        schedule, *costs, engine, scratch,
        CrashScenario::at_zero(
            6, {ProcId(0), ProcId(static_cast<ProcId::value_type>(p))}),
        "star hub plus p" + std::to_string(p));
}

TEST(ReplayEquivalence, MemoisedRepeatsStayIdentical) {
  // The dead-set memo must return the same result object content on every
  // hit, and a Scratch rebound to another engine must not leak results.
  const Scenario s1 = test::random_setup(31, 6, 1.0);
  const Scenario s2 = test::random_setup(32, 6, 1.0);
  const Schedule sched1 = schedule_with("caft", s1, 1, CommModelKind::kOnePort);
  const Schedule sched2 = schedule_with("caft", s2, 1, CommModelKind::kOnePort);
  const ReplayEngine engine1(sched1, *s1.costs);
  const ReplayEngine engine2(sched2, *s2.costs);
  ReplayEngine::Scratch scratch;
  const CrashScenario crash = CrashScenario::at_zero(6, {ProcId(3)});
  for (int round = 0; round < 3; ++round) {
    check_triple(sched1, *s1.costs, engine1, scratch, crash,
                 "memo round " + std::to_string(round) + " engine1");
    check_triple(sched2, *s2.costs, engine2, scratch, crash,
                 "memo round " + std::to_string(round) + " engine2");
  }
}

// ------------------------------------------------ campaign-level identity

TEST(ReplayEquivalence, CampaignSummariesIdenticalAcrossEngines) {
  const Scenario s = test::random_setup(17, 8, 1.0);
  const Schedule schedule = schedule_with("caft", s, 1, CommModelKind::kOnePort);
  const UniformKSampler uniform(8, 1);
  const CrashWindowSampler window(8, 2, 0.0, schedule.horizon());
  for (const ScenarioSampler* sampler :
       std::vector<const ScenarioSampler*>{&uniform, &window}) {
    CampaignOptions naive_options;
    naive_options.replays = 600;
    naive_options.threads = 2;
    naive_options.engine = CampaignEngine::kNaive;
    CampaignOptions incr_options = naive_options;
    incr_options.engine = CampaignEngine::kIncremental;
    incr_options.threads = 3;  // engine identity must survive resharding
    incr_options.block = 128;
    const CampaignSummary a =
        run_campaign(schedule, *s.costs, *sampler, naive_options);
    const CampaignSummary b =
        run_campaign(schedule, *s.costs, *sampler, incr_options);
    EXPECT_EQ(a.replays, b.replays);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.replays_within_eps, b.replays_within_eps);
    EXPECT_EQ(a.successes_within_eps, b.successes_within_eps);
    EXPECT_EQ(a.max_failed, b.max_failed);
    EXPECT_EQ(a.order_relaxations, b.order_relaxations);
    EXPECT_EQ(a.order_deadlocks, b.order_deadlocks);
    EXPECT_EQ(a.latency.mean(), b.latency.mean());
    EXPECT_EQ(a.latency.min(), b.latency.min());
    EXPECT_EQ(a.latency.max(), b.latency.max());
    EXPECT_EQ(a.latency.stddev(), b.latency.stddev());
    EXPECT_EQ(a.delivered_messages.mean(), b.delivered_messages.mean());
    ASSERT_EQ(a.latency_quantiles.size(), b.latency_quantiles.size());
    for (std::size_t i = 0; i < a.latency_quantiles.size(); ++i)
      EXPECT_EQ(a.latency_quantiles[i].value, b.latency_quantiles[i].value);
  }
}

TEST(ReplayEquivalence, EngineRejectsMismatchedScenario) {
  const Scenario s = test::random_setup(3, 5, 1.0);
  const Schedule schedule = schedule_with("heft", s, 0, CommModelKind::kOnePort);
  const ReplayEngine engine(schedule, *s.costs);
  EXPECT_THROW((void)engine.replay(CrashScenario::none(4)), CheckError);
}

TEST(ReplayEquivalence, FirstCrashHelper) {
  CrashScenario scenario = CrashScenario::none(4);
  EXPECT_TRUE(std::isinf(ReplayEngine::first_crash(scenario)));
  scenario.set_crash_time(ProcId(2), 7.5);
  EXPECT_EQ(ReplayEngine::first_crash(scenario), 7.5);
  scenario.set_crash_time(ProcId(0), 3.25);
  EXPECT_EQ(ReplayEngine::first_crash(scenario), 3.25);
}

}  // namespace
}  // namespace caft
