/// \file helpers.hpp
/// Shared fixtures for the scheduler-layer tests: (graph, platform, costs)
/// bundles with stable addresses (CostModel keeps a pointer to its Platform,
/// so both live behind unique_ptr) and convenience runners.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "dag/generators.hpp"
#include "platform/cost_synthesis.hpp"
#include "platform/platform.hpp"

namespace caft::test {

/// One scheduling scenario. Movable: platform/costs have stable addresses.
/// (Named Scenario, not Setup: gtest reserves Setup inside TEST bodies.)
struct Scenario {
  TaskGraph graph;
  std::unique_ptr<Platform> platform;
  std::unique_ptr<CostModel> costs;
};

/// Homogeneous scenario: every task costs `exec` everywhere, every link has
/// unit delay `delay` (hand-computable schedules).
inline Scenario uniform_setup(TaskGraph graph, std::size_t procs, double exec,
                           double delay) {
  Scenario s;
  s.graph = std::move(graph);
  s.platform = std::make_unique<Platform>(procs);
  s.costs = std::make_unique<CostModel>(
      uniform_costs(s.graph, *s.platform, exec, delay));
  return s;
}

/// Paper-protocol random scenario at the given granularity.
inline Scenario random_setup(std::uint64_t seed, std::size_t procs,
                          double granularity,
                          RandomDagParams dag_params = RandomDagParams{}) {
  Rng rng(seed);
  Scenario s;
  s.graph = random_dag(dag_params, rng);
  s.platform = std::make_unique<Platform>(procs);
  CostSynthesisParams params;
  params.granularity = granularity;
  s.costs = std::make_unique<CostModel>(
      synthesize_costs(s.graph, *s.platform, params, rng));
  return s;
}

/// Random scenario over an arbitrary graph family.
inline Scenario graph_setup(TaskGraph graph, std::uint64_t seed,
                         std::size_t procs, double granularity) {
  Rng rng(seed);
  Scenario s;
  s.graph = std::move(graph);
  s.platform = std::make_unique<Platform>(procs);
  CostSynthesisParams params;
  params.granularity = granularity;
  s.costs = std::make_unique<CostModel>(
      synthesize_costs(s.graph, *s.platform, params, rng));
  return s;
}

}  // namespace caft::test
