// Tests for the Monte-Carlo fault-injection campaign (campaign/): scenario
// samplers, streaming statistics (Wilson interval, P² quantiles), and the
// parallel executor's determinism and Proposition 5.2 guarantee.
#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

#include "algo/caft.hpp"
#include "algo/ftsa.hpp"
#include "campaign/scenario_sampler.hpp"
#include "campaign/stats.hpp"
#include "helpers.hpp"

namespace caft {
namespace {

using test::Scenario;
using test::random_setup;

Schedule caft_for(const Scenario& s, std::size_t eps) {
  CaftOptions options;
  options.base = SchedulerOptions{eps, CommModelKind::kOnePort};
  return caft_schedule(s.graph, *s.platform, *s.costs, options);
}

// ---------------------------------------------------------------- samplers

TEST(ScenarioSamplers, UniformKFailsExactlyK) {
  const UniformKSampler sampler(10, 3);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const CrashScenario scenario = sampler.sample(rng);
    EXPECT_EQ(scenario.proc_count(), 10u);
    EXPECT_EQ(scenario.failed_count(), 3u);
    for (std::size_t p = 0; p < 10; ++p) {
      const double t = scenario.crash_time(ProcId(p));
      EXPECT_TRUE(t == 0.0 || std::isinf(t));  // dead at 0 or never
    }
  }
}

TEST(ScenarioSamplers, UniformKCoversAllProcessors) {
  const UniformKSampler sampler(6, 1);
  Rng rng(7);
  std::vector<bool> hit(6, false);
  for (int i = 0; i < 200; ++i) {
    const CrashScenario scenario = sampler.sample(rng);
    for (std::size_t p = 0; p < 6; ++p)
      if (scenario.dead_from_start(ProcId(p))) hit[p] = true;
  }
  EXPECT_TRUE(std::all_of(hit.begin(), hit.end(), [](bool b) { return b; }));
}

TEST(ScenarioSamplers, SamplersAreDeterministicPerStream) {
  const ExponentialLifetimeSampler exp_sampler(8, 0.01);
  const WeibullLifetimeSampler weibull_sampler(8, 1.5, 200.0);
  const CrashWindowSampler window_sampler(8, 2, 10.0, 50.0);
  const CorrelatedGroupSampler group_sampler(8, 3, 0.5, 0.0, 20.0);
  for (const ScenarioSampler* sampler :
       {static_cast<const ScenarioSampler*>(&exp_sampler),
        static_cast<const ScenarioSampler*>(&weibull_sampler),
        static_cast<const ScenarioSampler*>(&window_sampler),
        static_cast<const ScenarioSampler*>(&group_sampler)}) {
    Rng a(99), b(99);
    for (int i = 0; i < 20; ++i) {
      const CrashScenario sa = sampler->sample(a);
      const CrashScenario sb = sampler->sample(b);
      for (std::size_t p = 0; p < 8; ++p)
        EXPECT_EQ(sa.crash_time(ProcId(p)), sb.crash_time(ProcId(p)))
            << sampler->name();
    }
  }
}

TEST(ScenarioSamplers, LifetimesArePositive) {
  const ExponentialLifetimeSampler exp_sampler(5, 0.1);
  const WeibullLifetimeSampler weibull_sampler(5, 0.8, 50.0);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    for (const ScenarioSampler* sampler :
         {static_cast<const ScenarioSampler*>(&exp_sampler),
          static_cast<const ScenarioSampler*>(&weibull_sampler)}) {
      const CrashScenario scenario = sampler->sample(rng);
      for (std::size_t p = 0; p < 5; ++p)
        EXPECT_GT(scenario.crash_time(ProcId(p)), 0.0);
    }
  }
}

TEST(ScenarioSamplers, HorizonCensorsToNeverFails) {
  // A tiny horizon turns almost every draw into +inf (mean lifetime 1000).
  const ExponentialLifetimeSampler sampler(20, 0.001, 1e-6);
  Rng rng(11);
  std::size_t failed = 0;
  for (int i = 0; i < 20; ++i) failed += sampler.sample(rng).failed_count();
  EXPECT_EQ(failed, 0u);
}

TEST(ScenarioSamplers, WindowDrawsInsideWindow) {
  const CrashWindowSampler sampler(10, 4, 5.0, 9.0);
  Rng rng(21);
  for (int i = 0; i < 50; ++i) {
    const CrashScenario scenario = sampler.sample(rng);
    EXPECT_EQ(scenario.failed_count(), 4u);
    for (std::size_t p = 0; p < 10; ++p) {
      const double t = scenario.crash_time(ProcId(p));
      if (std::isinf(t)) continue;
      EXPECT_GE(t, 5.0);
      EXPECT_LT(t, 9.0);
    }
  }
}

TEST(ScenarioSamplers, GroupsFailAsUnits) {
  const CorrelatedGroupSampler sampler(9, 3, 0.5);
  Rng rng(31);
  bool saw_failure = false;
  for (int i = 0; i < 50; ++i) {
    const CrashScenario scenario = sampler.sample(rng);
    EXPECT_EQ(scenario.failed_count() % 3, 0u);  // whole groups only
    for (std::size_t g = 0; g < 3; ++g) {
      const bool first = scenario.dead_from_start(ProcId(3 * g));
      for (std::size_t j = 1; j < 3; ++j)
        EXPECT_EQ(scenario.dead_from_start(ProcId(3 * g + j)), first);
    }
    saw_failure = saw_failure || scenario.failed_count() > 0;
  }
  EXPECT_TRUE(saw_failure);
}

TEST(ScenarioSamplers, RejectsBadParameters) {
  EXPECT_THROW(UniformKSampler(4, 5), CheckError);
  EXPECT_THROW(ExponentialLifetimeSampler(4, 0.0), CheckError);
  EXPECT_THROW(WeibullLifetimeSampler(4, -1.0, 10.0), CheckError);
  EXPECT_THROW(CrashWindowSampler(4, 1, 5.0, 2.0), CheckError);
  EXPECT_THROW(CorrelatedGroupSampler(4, 0, 0.5), CheckError);
  EXPECT_THROW(CorrelatedGroupSampler(4, 2, 1.5), CheckError);
}

// ------------------------------------------------------------------- stats

TEST(CampaignStats, WilsonIntervalBrackets) {
  const WilsonInterval ci = wilson_interval(90, 100);
  EXPECT_GT(ci.low, 0.8);
  EXPECT_LT(ci.low, 0.9);
  EXPECT_GT(ci.high, 0.9);
  EXPECT_LT(ci.high, 1.0);
}

TEST(CampaignStats, WilsonIntervalStaysInUnitRange) {
  const WilsonInterval all = wilson_interval(50, 50);
  EXPECT_LT(all.low, 1.0);   // finite sample: can't certify certainty
  EXPECT_NEAR(all.high, 1.0, 1e-12);
  const WilsonInterval none = wilson_interval(0, 50);
  EXPECT_NEAR(none.low, 0.0, 1e-12);
  EXPECT_GT(none.high, 0.0);
  const WilsonInterval empty = wilson_interval(0, 0);
  EXPECT_EQ(empty.low, 0.0);
  EXPECT_EQ(empty.high, 1.0);
}

TEST(CampaignStats, WilsonIntervalTightensWithSamples) {
  const WilsonInterval small = wilson_interval(9, 10);
  const WilsonInterval large = wilson_interval(900, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(CampaignStats, P2ExactForSmallSamples) {
  P2Quantile median(0.5);
  median.add(3.0);
  median.add(1.0);
  median.add(2.0);
  EXPECT_DOUBLE_EQ(median.value(), 2.0);
}

TEST(CampaignStats, P2MedianOfUniformDraws) {
  P2Quantile median(0.5);
  P2Quantile p90(0.9);
  Rng rng(47);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform01();
    median.add(x);
    p90.add(x);
  }
  EXPECT_NEAR(median.value(), 0.5, 0.02);
  EXPECT_NEAR(p90.value(), 0.9, 0.02);
}

TEST(CampaignStats, P2TracksShiftedExponential) {
  // Against the closed form: the q-quantile of Exp(1) is -ln(1-q).
  P2Quantile p99(0.99);
  Rng rng(53);
  for (int i = 0; i < 50000; ++i) p99.add(rng.exponential(1.0));
  EXPECT_NEAR(p99.value(), -std::log(0.01), 0.25);
}

TEST(CampaignStats, P2SurvivesIdenticalValues) {
  // Degenerate stream: every observation identical. Marker heights all
  // collide, so the parabolic update's numerator differences cancel; the
  // estimator must clamp to the (well-conditioned) linear fallback and
  // report the exact value, never NaN/inf.
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    P2Quantile est(q);
    for (int i = 0; i < 1000; ++i) est.add(42.5);
    EXPECT_TRUE(std::isfinite(est.value())) << "q=" << q;
    EXPECT_DOUBLE_EQ(est.value(), 42.5) << "q=" << q;
  }
}

TEST(CampaignStats, P2SurvivesNearDuplicateValues) {
  // Long runs of near-identical latencies (ulp-scale jitter around a few
  // plateaus) — the regime where height gaps underflow while position gaps
  // stay integral. The estimate must stay finite and inside the sample
  // range, and land on the dominant plateau.
  P2Quantile median(0.5);
  Rng rng(99);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < 1000; ++i) {
    const double plateau = (i % 10 == 0) ? 100.0 : 50.0;
    const double x = plateau * (1.0 + 1e-15 * rng.uniform01());
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    median.add(x);
    ASSERT_TRUE(std::isfinite(median.value())) << "at observation " << i;
  }
  EXPECT_GE(median.value(), lo);
  EXPECT_LE(median.value(), hi);
  EXPECT_NEAR(median.value(), 50.0, 1e-3);
}

TEST(CampaignStats, P2SurvivesExtremeMagnitudes) {
  // Huge magnitudes can overflow the parabolic step to ±inf; the clamp must
  // keep markers bracketed and the estimate finite.
  P2Quantile p90(0.9);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i)
    p90.add((i % 2 == 0 ? 1.0 : 1e300) * (1.0 + rng.uniform01()));
  EXPECT_TRUE(std::isfinite(p90.value()));
}

TEST(CampaignStats, StreamingMomentsMatchDirectComputation) {
  StreamingMoments moments;
  const std::vector<double> xs = {4.0, 7.0, 13.0, 16.0};
  for (const double x : xs) moments.add(x);
  EXPECT_EQ(moments.count(), 4u);
  EXPECT_DOUBLE_EQ(moments.mean(), 10.0);
  EXPECT_DOUBLE_EQ(moments.min(), 4.0);
  EXPECT_DOUBLE_EQ(moments.max(), 16.0);
  EXPECT_NEAR(moments.stddev(), std::sqrt(30.0), 1e-12);  // sample variance
}

TEST(CampaignStats, TableAndJsonRender) {
  CampaignAccumulator acc(1, {0.5});
  CrashResult ok;
  ok.success = true;
  ok.latency = 10.0;
  ok.delivered_messages = 5;
  acc.add(1, ok);
  CrashResult lost;
  lost.success = false;
  acc.add(2, lost);
  acc.set_sampler_name("test");
  const Table table = campaign_table("t", {{"X", acc.summary()}});
  EXPECT_EQ(table.row_count(), 1u);
  std::ostringstream json;
  table.write_json(json);
  EXPECT_NE(json.str().find("\"success_rate\": 0.5"), std::string::npos);
}

// ---------------------------------------------------------------- executor

TEST(Campaign, SummaryIdenticalAcrossThreadCounts) {
  Scenario s = random_setup(101, 10, 1.0);
  const Schedule schedule = caft_for(s, 1);
  // Mean lifetime of 20 makespans: most replays succeed (so the latency
  // stream is non-trivial) while a visible minority lose work.
  const ExponentialLifetimeSampler sampler(
      10, 0.05 / schedule.zero_crash_latency());

  CampaignOptions one;
  one.replays = 300;
  one.threads = 1;
  const CampaignSummary a = run_campaign(schedule, *s.costs, sampler, one);

  CampaignOptions four = one;
  four.threads = 4;
  const CampaignSummary b = run_campaign(schedule, *s.costs, sampler, four);

  EXPECT_EQ(a.replays, b.replays);
  EXPECT_EQ(a.successes, b.successes);
  ASSERT_GT(a.successes, 0u);
  EXPECT_EQ(a.latency.mean(), b.latency.mean());  // bit-for-bit
  EXPECT_EQ(a.latency.min(), b.latency.min());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.stddev(), b.latency.stddev());
  ASSERT_EQ(a.latency_quantiles.size(), b.latency_quantiles.size());
  for (std::size_t i = 0; i < a.latency_quantiles.size(); ++i)
    EXPECT_EQ(a.latency_quantiles[i].value, b.latency_quantiles[i].value);
  EXPECT_EQ(a.delivered_messages.mean(), b.delivered_messages.mean());
  EXPECT_EQ(a.order_relaxations, b.order_relaxations);
  EXPECT_EQ(a.order_deadlocks, b.order_deadlocks);
}

TEST(Campaign, SummaryIdenticalAcrossBlockSizes) {
  Scenario s = random_setup(102, 10, 1.0);
  const Schedule schedule = caft_for(s, 1);
  const UniformKSampler sampler(10, 1);

  CampaignOptions small;
  small.replays = 257;
  small.block = 16;
  small.threads = 2;
  CampaignOptions big = small;
  big.block = 1024;
  big.threads = 3;
  const CampaignSummary a = run_campaign(schedule, *s.costs, sampler, small);
  const CampaignSummary b = run_campaign(schedule, *s.costs, sampler, big);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency_quantiles[0].value, b.latency_quantiles[0].value);
}

// Process scale-out contract (api/session.hpp): any partition of the
// canonical scenario stream into contiguous blocks — computed in any order,
// with any per-block thread count — yields record streams whose
// concatenation is bit-identical to the whole-campaign stream, and whose
// canonical-order fold reproduces run_campaign's summary exactly.
TEST(Campaign, BlockPartitionReproducesRecordStream) {
  Scenario s = random_setup(105, 10, 1.0);
  const Schedule schedule = caft_for(s, 1);
  const ExponentialLifetimeSampler sampler(
      10, 0.05 / schedule.zero_crash_latency());

  CampaignOptions options;
  options.replays = 211;
  options.threads = 2;
  const std::vector<ReplayRecord> whole =
      run_campaign_block(schedule, *s.costs, sampler, options, 0, 211);
  ASSERT_EQ(whole.size(), 211u);

  // Uneven partition, blocks computed out of order, varying thread counts
  // and block sizes — none of it may show in the stitched stream.
  std::vector<ReplayRecord> stitched(whole.size());
  const std::vector<std::pair<std::size_t, std::size_t>> blocks = {
      {128, 83}, {1, 127}, {0, 1}};
  for (const auto& [first, count] : blocks) {
    CampaignOptions block_options = options;
    block_options.threads = 1 + first % 3;
    block_options.block = 64;
    const std::vector<ReplayRecord> records = run_campaign_block(
        schedule, *s.costs, sampler, block_options, first, count);
    ASSERT_EQ(records.size(), count);
    std::copy(records.begin(), records.end(),
              stitched.begin() + static_cast<std::ptrdiff_t>(first));
  }
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(whole[i].success, stitched[i].success) << i;
    EXPECT_EQ(whole[i].order_deadlock, stitched[i].order_deadlock) << i;
    EXPECT_EQ(whole[i].latency, stitched[i].latency) << i;  // bit-for-bit
    EXPECT_EQ(whole[i].delivered_messages, stitched[i].delivered_messages)
        << i;
    EXPECT_EQ(whole[i].order_relaxations, stitched[i].order_relaxations)
        << i;
    EXPECT_EQ(whole[i].failed_count, stitched[i].failed_count) << i;
  }

  // Folding the stitched stream in canonical order is the coordinator's
  // half; it must land on run_campaign's summary bit-for-bit.
  const CampaignSummary reference =
      run_campaign(schedule, *s.costs, sampler, options);
  CampaignAccumulator accumulator(schedule.eps(), options.quantiles);
  accumulator.set_sampler_name(sampler.name());
  for (const ReplayRecord& record : stitched)
    fold_replay_record(accumulator, record);
  const CampaignSummary folded = accumulator.summary();
  EXPECT_EQ(reference.replays, folded.replays);
  EXPECT_EQ(reference.successes, folded.successes);
  EXPECT_EQ(reference.success_ci.low, folded.success_ci.low);
  EXPECT_EQ(reference.success_ci.high, folded.success_ci.high);
  EXPECT_EQ(reference.latency.mean(), folded.latency.mean());
  EXPECT_EQ(reference.latency.stddev(), folded.latency.stddev());
  ASSERT_EQ(reference.latency_quantiles.size(),
            folded.latency_quantiles.size());
  for (std::size_t i = 0; i < reference.latency_quantiles.size(); ++i)
    EXPECT_EQ(reference.latency_quantiles[i].value,
              folded.latency_quantiles[i].value);
  EXPECT_EQ(reference.delivered_messages.mean(),
            folded.delivered_messages.mean());
  EXPECT_EQ(reference.max_failed, folded.max_failed);
  EXPECT_EQ(reference.sampler, folded.sampler);
}

// Proposition 5.2: a schedule built for ε failures survives *every* crash
// set of at most ε processors — so a uniform-k campaign with k <= ε must
// report an empirical success rate of exactly 1.
TEST(Campaign, WithinEpsilonAlwaysSucceeds) {
  for (std::uint64_t seed : {103, 104}) {
    Scenario s = random_setup(seed, 10, 0.7);
    const Schedule schedule = caft_for(s, 2);
    for (std::size_t k : {1, 2}) {
      const UniformKSampler sampler(10, k);
      CampaignOptions options;
      options.replays = 200;
      const CampaignSummary summary =
          run_campaign(schedule, *s.costs, sampler, options);
      EXPECT_EQ(summary.successes, summary.replays) << "k=" << k;
      EXPECT_DOUBLE_EQ(summary.success_rate(), 1.0);
      EXPECT_EQ(summary.replays_within_eps, summary.replays);
      EXPECT_EQ(summary.successes_within_eps, summary.replays);
      EXPECT_EQ(summary.max_failed, k);
    }
  }
}

// Under stochastic lifetimes some scenarios exceed ε failures, but the
// within-ε split must still show zero losses among the <= ε draws (FTSA
// carries the same guarantee).
TEST(Campaign, WithinEpsilonSplitHoldsUnderLifetimes) {
  Scenario s = random_setup(105, 10, 1.0);
  const Schedule schedule = ftsa_schedule(
      s.graph, *s.platform, *s.costs, SchedulerOptions{1, CommModelKind::kOnePort});
  // Per-processor failure probability within the makespan horizon of
  // 1 - e^-0.2 ~ 18%: a third of the draws stay within ε = 1 while the
  // majority land beyond it, populating both sides of the split.
  const double makespan = schedule.zero_crash_latency();
  const ExponentialLifetimeSampler sampler(10, 0.2 / makespan, makespan);
  CampaignOptions options;
  options.replays = 300;
  const CampaignSummary summary =
      run_campaign(schedule, *s.costs, sampler, options);
  ASSERT_GT(summary.replays_within_eps, 0u);  // split must not be vacuous
  EXPECT_LT(summary.replays_within_eps, summary.replays);
  EXPECT_EQ(summary.successes_within_eps, summary.replays_within_eps);
  EXPECT_GT(summary.max_failed, 1u);          // the tail beyond ε was reached
  EXPECT_LT(summary.successes, summary.replays);  // and some replays died
  EXPECT_LE(summary.success_ci.low, summary.success_rate());
  EXPECT_GE(summary.success_ci.high, summary.success_rate());
}

TEST(Campaign, ZeroFailureSamplerReproducesCommittedLatency) {
  Scenario s = random_setup(106, 10, 1.0);
  const Schedule schedule = caft_for(s, 1);
  const UniformKSampler sampler(10, 0);
  CampaignOptions options;
  options.replays = 8;
  const CampaignSummary summary =
      run_campaign(schedule, *s.costs, sampler, options);
  EXPECT_EQ(summary.successes, summary.replays);
  EXPECT_NEAR(summary.latency.mean(), schedule.zero_crash_latency(), 1e-6);
  EXPECT_NEAR(summary.latency.min(), summary.latency.max(), 1e-12);
  EXPECT_EQ(summary.order_relaxations, 0u);
}

TEST(Campaign, RejectsMismatchedSamplerSize) {
  Scenario s = random_setup(107, 10, 1.0);
  const Schedule schedule = caft_for(s, 1);
  const UniformKSampler sampler(9, 1);
  EXPECT_THROW(run_campaign(schedule, *s.costs, sampler, CampaignOptions{}),
               CheckError);
}

}  // namespace
}  // namespace caft
