// Tests for CAFT (algo/caft): the one-to-one mapping procedure, the message
// bounds of Proposition 5.1, locking, and the HEFT equivalence at ε = 0.
#include "algo/caft.hpp"

#include <gtest/gtest.h>

#include <set>

#include "algo/ftsa.hpp"
#include "algo/heft.hpp"
#include "helpers.hpp"
#include "sched/validator.hpp"

namespace caft {
namespace {

using test::Scenario;
using test::graph_setup;
using test::random_setup;
using test::uniform_setup;

CaftOptions options_for(std::size_t eps,
                        CommModelKind model = CommModelKind::kOnePort,
                        bool one_to_one = true) {
  CaftOptions options;
  options.base = SchedulerOptions{eps, model};
  options.one_to_one = one_to_one;
  return options;
}

TEST(Caft, EveryTaskGetsEpsPlusOneReplicas) {
  Scenario s = random_setup(1, 10, 1.0);
  const Schedule sched =
      caft_schedule(s.graph, *s.platform, *s.costs, options_for(2));
  for (const TaskId t : s.graph.all_tasks()) {
    EXPECT_EQ(sched.primaries_recorded(t), 3u);
    EXPECT_EQ(sched.total_replicas(t), 3u);  // CAFT never duplicates
  }
}

TEST(Caft, ReplicasOnDistinctProcessors) {
  Scenario s = random_setup(2, 10, 1.0);
  const Schedule sched =
      caft_schedule(s.graph, *s.platform, *s.costs, options_for(3));
  for (const TaskId t : s.graph.all_tasks()) {
    std::set<ProcId> procs;
    for (const ReplicaAssignment& a : sched.primaries(t)) procs.insert(a.proc);
    EXPECT_EQ(procs.size(), 4u);
  }
}

TEST(Caft, FaultFreeReducesToHeft) {
  // Section 6: "the fault-free version of CAFT reduces to an implementation
  // of HEFT".
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Scenario s = random_setup(seed, 10, 1.0);
    const Schedule caft =
        caft_schedule(s.graph, *s.platform, *s.costs, options_for(0));
    const Schedule heft =
        heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
    EXPECT_DOUBLE_EQ(caft.zero_crash_latency(), heft.zero_crash_latency())
        << "seed " << seed;
  }
}

TEST(Caft, Proposition51ForkMessageBound) {
  // Prop. 5.1: on fork graphs CAFT sends at most e(ε+1) messages.
  for (const std::size_t eps : {1u, 2u, 3u}) {
    Scenario s = graph_setup(fork(8, 100.0), 10 + eps, 10, 1.0);
    const Schedule sched =
        caft_schedule(s.graph, *s.platform, *s.costs, options_for(eps));
    EXPECT_LE(sched.message_count(), s.graph.edge_count() * (eps + 1))
        << "eps " << eps;
  }
}

TEST(Caft, Proposition51OutForestMessageBound) {
  for (const std::size_t eps : {1u, 2u, 3u}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Rng rng(seed);
      TaskGraph forest = random_out_forest(40, 2, rng);
      Scenario s = graph_setup(std::move(forest), seed * 100 + eps, 10, 1.0);
      const Schedule sched =
          caft_schedule(s.graph, *s.platform, *s.costs, options_for(eps));
      EXPECT_LE(sched.message_count(), s.graph.edge_count() * (eps + 1))
          << "eps " << eps << " seed " << seed;
    }
  }
}

TEST(Caft, Proposition51ChainMessageBound) {
  for (const std::size_t eps : {1u, 3u}) {
    Scenario s = graph_setup(chain(20, 100.0), 30 + eps, 10, 0.5);
    const Schedule sched =
        caft_schedule(s.graph, *s.platform, *s.costs, options_for(eps));
    EXPECT_LE(sched.message_count(), s.graph.edge_count() * (eps + 1));
  }
}

TEST(Caft, FarFewerMessagesThanFtsa) {
  // The headline claim: CAFT drastically reduces communications vs FTSA.
  Scenario s = random_setup(3, 10, 0.5);
  const std::size_t eps = 3;
  const Schedule caft =
      caft_schedule(s.graph, *s.platform, *s.costs, options_for(eps));
  const Schedule ftsa =
      ftsa_schedule(s.graph, *s.platform, *s.costs,
                    SchedulerOptions{eps, CommModelKind::kOnePort});
  EXPECT_LT(caft.message_count(), ftsa.message_count());
}

TEST(Caft, StatsAccountAllCommits) {
  Scenario s = random_setup(4, 10, 1.0);
  const std::size_t eps = 2;
  CaftRunStats stats;
  const Schedule sched =
      caft_schedule(s.graph, *s.platform, *s.costs, options_for(eps), &stats);
  EXPECT_EQ(stats.one_to_one_commits + stats.fallback_commits,
            s.graph.task_count() * (eps + 1));
  EXPECT_GT(stats.one_to_one_commits, 0u);
}

TEST(Caft, OneToOneDisabledStillValid) {
  Scenario s = random_setup(5, 10, 1.0);
  CaftRunStats stats;
  const Schedule sched = caft_schedule(
      s.graph, *s.platform, *s.costs,
      options_for(2, CommModelKind::kOnePort, /*one_to_one=*/false), &stats);
  EXPECT_EQ(stats.one_to_one_commits, 0u);
  EXPECT_TRUE(validate_schedule(sched, *s.costs).ok());
}

TEST(Caft, OneToOneReducesMessagesVsDisabled) {
  Scenario s = random_setup(6, 10, 0.5);
  const Schedule with =
      caft_schedule(s.graph, *s.platform, *s.costs, options_for(2));
  const Schedule without = caft_schedule(
      s.graph, *s.platform, *s.costs,
      options_for(2, CommModelKind::kOnePort, /*one_to_one=*/false));
  EXPECT_LE(with.message_count(), without.message_count());
}

TEST(Caft, UpperBoundStaysWithinTwiceZeroCrash) {
  // The paper reports CAFT's upper bound close to its 0-crash latency. In
  // this reproduction the relationship is looser (our contention-aware FTSA
  // places near-symmetric replicas, so *its* bound is the tight one — see
  // EXPERIMENTS.md), but CAFT's straggling stays bounded: the last replica
  // never doubles the earliest-copy latency on the paper's configurations.
  for (std::uint64_t seed = 5; seed <= 9; ++seed) {
    Scenario s = random_setup(seed, 10, 0.5);
    const std::size_t eps = 2;
    const Schedule caft =
        caft_schedule(s.graph, *s.platform, *s.costs, options_for(eps));
    EXPECT_GE(caft.upper_bound_latency(), caft.zero_crash_latency());
    EXPECT_LE(caft.upper_bound_latency(), 2.0 * caft.zero_crash_latency())
        << "seed " << seed;
  }
}

TEST(Caft, SingleEntryTaskGraph) {
  Scenario s = uniform_setup(chain(1), 4, 10.0, 1.0);
  const Schedule sched =
      caft_schedule(s.graph, *s.platform, *s.costs, options_for(2));
  EXPECT_TRUE(sched.complete());
  EXPECT_DOUBLE_EQ(sched.zero_crash_latency(), 10.0);
  EXPECT_EQ(sched.message_count(), 0u);
}

TEST(Caft, ExactlyEpsPlusOneProcessors) {
  // m = ε+1: every processor hosts exactly one replica of every task.
  Scenario s = uniform_setup(chain(3, 10.0), 3, 10.0, 1.0);
  const Schedule sched =
      caft_schedule(s.graph, *s.platform, *s.costs, options_for(2));
  EXPECT_TRUE(sched.complete());
  for (const TaskId t : s.graph.all_tasks()) {
    std::set<ProcId> procs;
    for (const ReplicaAssignment& a : sched.primaries(t)) procs.insert(a.proc);
    EXPECT_EQ(procs.size(), 3u);
  }
  EXPECT_TRUE(validate_schedule(sched, *s.costs).ok());
}

TEST(Caft, DeterministicAcrossRuns) {
  Scenario s = random_setup(8, 10, 1.0);
  const Schedule a =
      caft_schedule(s.graph, *s.platform, *s.costs, options_for(2));
  const Schedule b =
      caft_schedule(s.graph, *s.platform, *s.costs, options_for(2));
  EXPECT_DOUBLE_EQ(a.zero_crash_latency(), b.zero_crash_latency());
  EXPECT_EQ(a.message_count(), b.message_count());
  for (const TaskId t : s.graph.all_tasks())
    for (ReplicaIndex r = 0; r < 3; ++r)
      EXPECT_EQ(a.replica(t, r).proc, b.replica(t, r).proc);
}

TEST(Caft, RequiresEnoughProcessors) {
  Scenario s = uniform_setup(chain(2), 2, 1.0, 1.0);
  EXPECT_THROW(
      caft_schedule(s.graph, *s.platform, *s.costs, options_for(2)),
      CheckError);
}

/// Validity sweep over seeds, ε, models, graph families.
class CaftValidity
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::size_t, CommModelKind>> {};

TEST_P(CaftValidity, SchedulesValidate) {
  const auto [seed, eps, model] = GetParam();
  Scenario s = random_setup(seed, 10, 1.0);
  const Schedule sched =
      caft_schedule(s.graph, *s.platform, *s.costs, options_for(eps, model));
  const ValidationResult result = validate_schedule(sched, *s.costs);
  EXPECT_TRUE(result.ok()) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CaftValidity,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(0u, 1u, 3u),
                       ::testing::Values(CommModelKind::kOnePort,
                                         CommModelKind::kMacroDataflow)));

/// Validity across structured graph families at ε = 2.
class CaftFamilies : public ::testing::TestWithParam<int> {};

TEST_P(CaftFamilies, SchedulesValidate) {
  TaskGraph g;
  switch (GetParam()) {
    case 0: g = fork(10, 100.0); break;
    case 1: g = join(10, 100.0); break;
    case 2: g = fork_join(8, 100.0); break;
    case 3: g = gaussian_elimination(5, 100.0); break;
    case 4: g = cholesky(4, 100.0); break;
    case 5: g = fft(3, 100.0); break;
    default: g = stencil(4, 5, 100.0); break;
  }
  Scenario s =
      graph_setup(std::move(g), 50u + static_cast<std::uint64_t>(GetParam()),
                  8, 1.0);
  const Schedule sched =
      caft_schedule(s.graph, *s.platform, *s.costs, options_for(2));
  const ValidationResult result = validate_schedule(sched, *s.costs);
  EXPECT_TRUE(result.ok()) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(Families, CaftFamilies,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace caft
