// Tests for every task-graph family (dag/generators), including the
// paper-protocol random DAGs and the structured workloads.
#include "dag/generators.hpp"

#include <gtest/gtest.h>

#include "dag/analysis.hpp"

namespace caft {
namespace {

TEST(RandomDag, SizeWithinPaperRange) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const TaskGraph g = random_dag(RandomDagParams{}, rng);
    EXPECT_GE(g.task_count(), 80u);
    EXPECT_LE(g.task_count(), 120u);
    EXPECT_TRUE(g.is_acyclic());
  }
}

TEST(RandomDag, OutDegreeWithinRange) {
  Rng rng(2);
  const TaskGraph g = random_dag(RandomDagParams{}, rng);
  for (const TaskId t : g.all_tasks()) {
    if (t.index() + 1 == g.task_count()) continue;  // last task: no targets
    EXPECT_GE(g.out_degree(t), 1u);
    EXPECT_LE(g.out_degree(t), 3u);
  }
}

TEST(RandomDag, VolumesWithinPaperRange) {
  Rng rng(3);
  const TaskGraph g = random_dag(RandomDagParams{}, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.volume, 50.0);
    EXPECT_LE(e.volume, 150.0);
  }
}

TEST(RandomDag, Deterministic) {
  Rng a(99), b(99);
  const TaskGraph ga = random_dag(RandomDagParams{}, a);
  const TaskGraph gb = random_dag(RandomDagParams{}, b);
  ASSERT_EQ(ga.task_count(), gb.task_count());
  ASSERT_EQ(ga.edge_count(), gb.edge_count());
  for (std::size_t e = 0; e < ga.edge_count(); ++e) {
    EXPECT_EQ(ga.edge(static_cast<EdgeIndex>(e)).src,
              gb.edge(static_cast<EdgeIndex>(e)).src);
    EXPECT_DOUBLE_EQ(ga.edge(static_cast<EdgeIndex>(e)).volume,
                     gb.edge(static_cast<EdgeIndex>(e)).volume);
  }
}

TEST(RandomDag, CustomParams) {
  Rng rng(4);
  RandomDagParams params;
  params.min_tasks = 10;
  params.max_tasks = 10;
  params.min_out_degree = 2;
  params.max_out_degree = 2;
  const TaskGraph g = random_dag(params, rng);
  EXPECT_EQ(g.task_count(), 10u);
  // Tasks with >= 2 later tasks available must have out-degree exactly 2.
  for (const TaskId t : g.all_tasks())
    if (t.index() + 2 < g.task_count()) {
      EXPECT_EQ(g.out_degree(t), 2u);
    }
}

TEST(RandomDag, RejectsBadParams) {
  Rng rng(5);
  RandomDagParams params;
  params.min_tasks = 1;
  params.max_tasks = 1;
  EXPECT_THROW(random_dag(params, rng), CheckError);
  params = RandomDagParams{};
  params.min_out_degree = 0;
  EXPECT_THROW(random_dag(params, rng), CheckError);
}

TEST(Chain, Structure) {
  const TaskGraph g = chain(5, 2.0);
  EXPECT_EQ(g.task_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  for (const Edge& e : g.edges()) EXPECT_DOUBLE_EQ(e.volume, 2.0);
}

TEST(Chain, SingleTask) {
  const TaskGraph g = chain(1);
  EXPECT_EQ(g.task_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Fork, Structure) {
  const TaskGraph g = fork(4);
  EXPECT_EQ(g.task_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  for (const TaskId t : g.all_tasks()) EXPECT_LE(g.in_degree(t), 1u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 4u);
}

TEST(Join, Structure) {
  const TaskGraph g = join(4);
  EXPECT_EQ(g.task_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.entry_tasks().size(), 4u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
}

TEST(ForkJoin, Structure) {
  const TaskGraph g = fork_join(3);
  EXPECT_EQ(g.task_count(), 5u);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
}

TEST(OutForest, InDegreeAtMostOne) {
  Rng rng(6);
  const TaskGraph g = random_out_forest(40, 3, rng);
  EXPECT_EQ(g.task_count(), 40u);
  EXPECT_EQ(g.edge_count(), 37u);  // tasks - roots
  for (const TaskId t : g.all_tasks()) EXPECT_LE(g.in_degree(t), 1u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.entry_tasks().size(), 3u);
}

TEST(OutForest, SingleRootIsTree) {
  Rng rng(7);
  const TaskGraph g = random_out_forest(20, 1, rng);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.edge_count(), 19u);
}

TEST(InForest, OutDegreeAtMostOne) {
  Rng rng(8);
  const TaskGraph g = random_in_forest(40, 3, rng);
  for (const TaskId t : g.all_tasks()) EXPECT_LE(g.out_degree(t), 1u);
  EXPECT_TRUE(g.is_acyclic());
}

TEST(Diamond, Structure) {
  const TaskGraph g = diamond(6);
  EXPECT_EQ(g.task_count(), 8u);
  EXPECT_EQ(g.edge_count(), 12u);
}

TEST(SeriesParallel, AcyclicSingleSourceSink) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const TaskGraph g = series_parallel(30, rng);
    EXPECT_TRUE(g.is_acyclic());
    EXPECT_GE(g.task_count(), 2u);
    // Node 0 is the source, node 1 the sink of the SP skeleton.
    EXPECT_EQ(g.in_degree(TaskId(0)), 0u);
    EXPECT_EQ(g.out_degree(TaskId(1)), 0u);
  }
}

TEST(GaussianElimination, SizeFormula) {
  for (std::size_t k = 2; k <= 6; ++k) {
    const TaskGraph g = gaussian_elimination(k);
    // Steps s = 1..k-1 contribute (k - s + 1) tasks each.
    std::size_t expected = 0;
    for (std::size_t s = 1; s < k; ++s) expected += k - s + 1;
    EXPECT_EQ(g.task_count(), expected) << "k=" << k;
    EXPECT_TRUE(g.is_acyclic());
  }
}

TEST(GaussianElimination, PivotFeedsUpdates) {
  const TaskGraph g = gaussian_elimination(4);
  // First pivot has out-degree k-1 = 3 (updates of step 1).
  const auto entries = g.entry_tasks();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(g.out_degree(entries[0]), 3u);
}

TEST(Cholesky, KernelCounts) {
  // tiles = 3: potrf 3, trsm 3, syrk 3, gemm 1 -> 10 tasks.
  const TaskGraph g = cholesky(3);
  EXPECT_EQ(g.task_count(), 10u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.entry_tasks().size(), 1u);  // potrf(0)
}

TEST(Cholesky, SingleTile) {
  const TaskGraph g = cholesky(1);
  EXPECT_EQ(g.task_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Fft, ButterflyShape) {
  const TaskGraph g = fft(3);  // 8 points, 4 rows of 8 tasks
  EXPECT_EQ(g.task_count(), 32u);
  EXPECT_EQ(g.edge_count(), 48u);  // 3 stages x 8 points x 2 edges
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.entry_tasks().size(), 8u);
  EXPECT_EQ(g.exit_tasks().size(), 8u);
  // Interior rows have in-degree exactly 2.
  for (const TaskId t : g.all_tasks())
    if (g.in_degree(t) != 0) {
      EXPECT_EQ(g.in_degree(t), 2u);
    }
}

TEST(Stencil, WavefrontShape) {
  const TaskGraph g = stencil(3, 4);
  EXPECT_EQ(g.task_count(), 12u);
  // Edges: right 3*3 + down 2*4 = 17.
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
}

TEST(Stencil, SingleRowIsChain) {
  const TaskGraph g = stencil(1, 5);
  EXPECT_EQ(g.edge_count(), 4u);
  const auto depth = depths(g);
  EXPECT_EQ(depth[4], 4u);
}

/// Parameterized sweep: every generator yields acyclic graphs across seeds.
class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, AllFamiliesAcyclic) {
  Rng rng(GetParam());
  EXPECT_TRUE(random_dag(RandomDagParams{}, rng).is_acyclic());
  EXPECT_TRUE(random_out_forest(30, 2, rng).is_acyclic());
  EXPECT_TRUE(random_in_forest(30, 2, rng).is_acyclic());
  EXPECT_TRUE(series_parallel(25, rng).is_acyclic());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace caft
