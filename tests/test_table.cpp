// Tests for the tabular report writer (common/table).
#include "common/table.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace caft {
namespace {

Table sample_table() {
  Table t("demo", {"x", "value", "note"});
  t.add_row({1.0, 3.25, std::string("first")});
  t.add_row({2.0, 4.5, std::string("second")});
  return t;
}

TEST(Table, RowCountTracksAdds) {
  Table t = sample_table();
  EXPECT_EQ(t.row_count(), 2u);
  t.add_row({3.0, 5.0, std::string("third")});
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table("bad", {}), CheckError);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t = sample_table();
  EXPECT_THROW(t.add_row({1.0}), CheckError);
}

TEST(Table, NumberAtReadsBack) {
  const Table t = sample_table();
  EXPECT_DOUBLE_EQ(t.number_at(0, 1), 3.25);
  EXPECT_DOUBLE_EQ(t.number_at(1, 0), 2.0);
}

TEST(Table, NumberAtRejectsText) {
  const Table t = sample_table();
  EXPECT_THROW((void)t.number_at(0, 2), CheckError);
}

TEST(Table, NumberAtRejectsOutOfRange) {
  const Table t = sample_table();
  EXPECT_THROW((void)t.number_at(9, 0), CheckError);
  EXPECT_THROW((void)t.number_at(0, 9), CheckError);
}

TEST(Table, PrintContainsHeaderAndData) {
  std::ostringstream os;
  sample_table().print(os, 2);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("3.25"), std::string::npos);
  EXPECT_NE(out.find("second"), std::string::npos);
}

TEST(Table, CsvShape) {
  std::ostringstream os;
  sample_table().write_csv(os, 2);
  const std::string out = os.str();
  EXPECT_EQ(out, "x,value,note\n1.00,3.25,first\n2.00,4.50,second\n");
}

TEST(Table, CsvPrecision) {
  Table t("p", {"v"});
  t.add_row({1.0 / 3.0});
  std::ostringstream os;
  t.write_csv(os, 4);
  EXPECT_EQ(os.str(), "v\n0.3333\n");
}

TEST(Table, SaveCsvRoundTrip) {
  const std::string path = "/tmp/caft_test_table.csv";
  ASSERT_TRUE(sample_table().save_csv(path));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x,value,note");
}

TEST(Table, SaveCsvBadPathFails) {
  EXPECT_FALSE(sample_table().save_csv("/nonexistent-dir/t.csv"));
}

}  // namespace
}  // namespace caft
