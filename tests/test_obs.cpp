/// Tests of the observability subsystem (src/obs): exact counters and
/// histograms under multi-thread contention (this file runs in the TSan CI
/// suite), trace JSON well-formedness, metrics snapshot round-trip, and
/// the zero-allocation guarantee of the disabled hot path.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

// ---------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps a
// thread_local count, so a test can assert a code region allocated
// nothing. gtest and the registry itself allocate freely outside the
// guarded regions; only the delta inside a region matters.
namespace {
thread_local std::uint64_t t_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++t_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++t_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

TEST(ObsRegistry, GlobalStartsDisabled) {
  // The library is instrumented unconditionally; the contract that makes
  // that safe is a disabled-by-default process-wide registry.
  EXPECT_FALSE(obs::Registry::global().enabled());
  EXPECT_FALSE(obs::Registry::global().tracing());
}

TEST(ObsRegistry, CounterIsExactUnderContention) {
  obs::Registry registry;
  registry.set_enabled(true);
  obs::Counter counter = registry.counter("contended");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t)
    pool.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  for (std::thread& thread : pool) thread.join();
  // Striped relaxed adds still sum exactly — no lost updates, ever.
  EXPECT_EQ(registry.snapshot().counter_value("contended"),
            kThreads * kPerThread);
}

TEST(ObsRegistry, HistogramIsExactUnderContention) {
  obs::Registry registry;
  registry.set_enabled(true);
  obs::Histogram histogram =
      registry.histogram("latency", std::vector<double>{1.0, 2.0, 4.0});
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 18000;  // divisible by 6
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t)
    pool.emplace_back([&histogram] {
      for (std::size_t i = 0; i < kPerThread; ++i)
        histogram.observe(static_cast<double>(i % 6));  // 0..5
    });
  for (std::thread& thread : pool) thread.join();

  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const obs::MetricsSnapshot::HistogramValue& h = snap.histograms[0];
  EXPECT_EQ(h.name, "latency");
  ASSERT_EQ(h.counts.size(), 4u);  // 3 bounds + overflow
  const std::uint64_t per_value = kThreads * kPerThread / 6;
  // Bounds are inclusive upper bounds: 0,1 -> b0; 2 -> b1; 3,4 -> b2;
  // 5 -> overflow.
  EXPECT_EQ(h.counts[0], 2 * per_value);
  EXPECT_EQ(h.counts[1], per_value);
  EXPECT_EQ(h.counts[2], 2 * per_value);
  EXPECT_EQ(h.counts[3], per_value);
  EXPECT_EQ(h.count, kThreads * kPerThread);
  // Integer-valued observations sum exactly even through atomic doubles.
  EXPECT_EQ(h.sum, static_cast<double>(per_value) * (0 + 1 + 2 + 3 + 4 + 5));
}

TEST(ObsRegistry, GaugeLastWriteWinsAndSnapshotRoundTrips) {
  obs::Registry registry;
  registry.set_enabled(true);
  registry.gauge("rate").set(1.5);
  registry.gauge("rate").set(42.25);
  registry.counter("n").add(7);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.gauge_value("rate"), 42.25);
  EXPECT_EQ(snap.counter_value("n"), 7u);
  // Absent names read as zero (the telemetry cross-check convention).
  EXPECT_EQ(snap.counter_value("absent"), 0u);
  EXPECT_EQ(snap.gauge_value("absent"), 0.0);
  // Handles are find-or-create: same name, same storage.
  registry.counter("n").add(1);
  EXPECT_EQ(registry.snapshot().counter_value("n"), 8u);
}

TEST(ObsRegistry, DisabledRegistryRecordsNothing) {
  obs::Registry registry;
  obs::Counter counter = registry.counter("c");
  obs::Histogram histogram = registry.histogram("h");
  counter.add(5);
  histogram.observe(1.0);
  { obs::Span span = registry.span("s"); }
  EXPECT_EQ(registry.snapshot().counter_value("c"), 0u);
  EXPECT_EQ(registry.snapshot().histograms[0].count, 0u);
  EXPECT_EQ(registry.trace_event_count(), 0u);
  // Storage created while disabled records once enabled — handles can be
  // set up at startup, before any consumer arms the registry.
  registry.set_enabled(true);
  counter.add(5);
  EXPECT_EQ(registry.snapshot().counter_value("c"), 5u);
}

TEST(ObsRegistry, DisabledHotPathAllocatesNothing) {
  obs::Registry registry;  // disabled
  obs::Counter counter = registry.counter("c");
  obs::Gauge gauge = registry.gauge("g");
  obs::Histogram histogram = registry.histogram("h");

  const std::uint64_t before = t_allocations;
  for (int i = 0; i < 10000; ++i) {
    counter.add(1);
    gauge.set(1.0);
    histogram.observe(0.5);
    obs::Span span = registry.span("phase");
    span.finish();
    obs::ScopedTimer timer(registry, "phase");
    timer.stop();
  }
  EXPECT_EQ(t_allocations, before)
      << "disabled observability must be allocation-free on the hot path";
}

TEST(ObsTrace, SpansBecomeWellFormedCompleteEvents) {
  obs::Registry registry;
  registry.set_enabled(true);
  registry.set_tracing(true);
  {
    obs::Span outer = registry.span("campaign.range");
    obs::Span detail = registry.span("scheduler.run", "caft");
    registry.set_track_label(7, "worker-slot-7");
  }
  registry.complete_event("with \"quotes\" and \\slash", 1.0, 2.0, 3);
  ASSERT_EQ(registry.trace_event_count(), 4u);

  std::ostringstream out;
  registry.write_trace_json(out);
  const std::string json = out.str();

  // Structure: one top-level object, balanced braces/brackets outside
  // string literals (a cheap well-formedness proxy without a JSON lib).
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) { escaped = false; continue; }
    if (c == '\\') { escaped = true; continue; }
    if (c == '"') { in_string = !in_string; continue; }
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"campaign.range\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler.run:caft\""), std::string::npos);
  // Metadata event names the worker track.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"worker-slot-7\""), std::string::npos);
  // Special characters arrive escaped.
  EXPECT_NE(json.find("with \\\"quotes\\\" and \\\\slash"),
            std::string::npos);
  // Spans nest: the inner span's duration fits inside the outer's.
  EXPECT_LE(json.find("\"campaign.range\""),
            json.find("\"scheduler.run:caft\""));
}

TEST(ObsTrace, NoEventsWithoutTracingFlag) {
  obs::Registry registry;
  registry.set_enabled(true);  // metrics on, tracing off
  { obs::Span span = registry.span("invisible"); }
  registry.complete_event("invisible", 0.0, 1.0, 1);
  EXPECT_EQ(registry.trace_event_count(), 0u);
  // ...but ScopedTimer still feeds its histogram.
  { obs::ScopedTimer timer(registry, "phase"); }
  EXPECT_EQ(registry.snapshot().histograms.size(), 1u);
  EXPECT_EQ(registry.snapshot().histograms[0].count, 1u);
}

TEST(ObsMetricsJson, CarriesSchemaBuildAndSortedMetrics) {
  obs::Registry registry;
  registry.set_enabled(true);
  registry.counter("zeta").add(3);
  registry.counter("alpha").add(1);
  registry.gauge("replays_per_second").set(123.5);
  registry.histogram("wave.seconds", std::vector<double>{0.1, 1.0})
      .observe(0.5);

  std::ostringstream out;
  const caft::BuildInfo build{"abc123", "testcc 1.0", "Release"};
  registry.write_metrics_json(out, build);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"schema\": \"caft-metrics/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\": \"abc123\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\": \"testcc 1.0\""), std::string::npos);
  EXPECT_NE(json.find("\"build_type\": \"Release\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"zeta\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"replays_per_second\": 123.5"), std::string::npos);
  // Inclusive upper bounds: 0.5 lands in the (0.1, 1.0] bucket.
  EXPECT_NE(json.find("\"counts\": [0, 1, 0]"), std::string::npos);
  // Deterministic output: names are sorted.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
}

TEST(ObsSpan, MoveTransfersRecordingResponsibility) {
  obs::Registry registry;
  registry.set_enabled(true);
  registry.set_tracing(true);
  {
    obs::Span a = registry.span("moved");
    obs::Span b = std::move(a);
    // `a` is inert after the move; only `b`'s destruction records.
  }
  EXPECT_EQ(registry.trace_event_count(), 1u);
}

}  // namespace
