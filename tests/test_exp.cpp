// Tests for the experiment harness (exp/config, exp/runner, exp/report).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "exp/config.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

namespace caft {
namespace {

/// A tiny configuration that runs in milliseconds.
ExperimentConfig tiny_config() {
  ExperimentConfig config = figure1();
  config.granularities = {0.4, 1.2};
  config.graphs_per_point = 2;
  config.dag.min_tasks = 20;
  config.dag.max_tasks = 30;
  return config;
}

TEST(ExpConfig, SweepsMatchPaper) {
  const auto a = granularity_sweep_a();
  ASSERT_EQ(a.size(), 10u);
  EXPECT_NEAR(a.front(), 0.2, 1e-12);
  EXPECT_NEAR(a.back(), 2.0, 1e-12);
  const auto b = granularity_sweep_b();
  ASSERT_EQ(b.size(), 10u);
  EXPECT_DOUBLE_EQ(b.front(), 1.0);
  EXPECT_DOUBLE_EQ(b.back(), 10.0);
}

TEST(ExpConfig, FigureConfigsMatchPaperPlatforms) {
  EXPECT_EQ(figure1().proc_count, 10u);
  EXPECT_EQ(figure1().eps, 1u);
  EXPECT_EQ(figure1().crashes, 1u);
  EXPECT_EQ(figure2().eps, 3u);
  EXPECT_EQ(figure2().crashes, 2u);
  EXPECT_EQ(figure3().proc_count, 20u);
  EXPECT_EQ(figure3().eps, 5u);
  EXPECT_EQ(figure3().crashes, 3u);
  EXPECT_EQ(figure4().eps, 1u);
  EXPECT_EQ(figure5().eps, 3u);
  EXPECT_EQ(figure6().proc_count, 20u);
  for (const auto& config : {figure1(), figure2(), figure3(), figure4(),
                             figure5(), figure6()})
    EXPECT_EQ(config.graphs_per_point, 60u);
}

TEST(ExpConfig, ScaledDown) {
  const ExperimentConfig config = scaled_down(figure1(), 10);
  EXPECT_EQ(config.graphs_per_point, 6u);
  EXPECT_EQ(scaled_down(figure1(), 1000).graphs_per_point, 1u);
}

TEST(ExpConfig, BenchRepsFromEnv) {
  unsetenv("CAFT_BENCH_REPS");
  EXPECT_EQ(bench_reps_from_env(12), 12u);
  setenv("CAFT_BENCH_REPS", "33", 1);
  EXPECT_EQ(bench_reps_from_env(12), 33u);
  setenv("CAFT_BENCH_REPS", "garbage", 1);
  EXPECT_EQ(bench_reps_from_env(12), 12u);
  unsetenv("CAFT_BENCH_REPS");
}

TEST(ExpRunner, ProducesOnePointPerGranularity) {
  const auto points = run_experiment(tiny_config());
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].granularity, 0.4);
  EXPECT_DOUBLE_EQ(points[1].granularity, 1.2);
}

TEST(ExpRunner, MetricsWellFormed) {
  const ExperimentConfig config = tiny_config();
  const auto points = run_experiment(config);
  for (const PointAverages& p : points) {
    // One keyed entry per configured algorithm, in config order.
    ASSERT_EQ(p.algos.size(), config.algorithms.size());
    for (std::size_t a = 0; a < config.algorithms.size(); ++a)
      EXPECT_EQ(p.algos[a].first, config.algorithms[a]);
    const AlgoAverages* ftsa = p.algo("ftsa");
    const AlgoAverages* ftbar = p.algo("ftbar");
    const AlgoAverages* caft = p.algo("caft");
    ASSERT_NE(ftsa, nullptr);
    ASSERT_NE(ftbar, nullptr);
    ASSERT_NE(caft, nullptr);
    EXPECT_EQ(p.algo("no-such-algo"), nullptr);
    // Latencies positive. Note: a replicated schedule may slightly beat the
    // fault-free baseline on the 0-crash latency — the earliest replica of
    // each task races, so extra copies add placement options.
    EXPECT_GT(p.ff_caft, 0.0);
    EXPECT_GT(ftsa->latency0, 0.0);
    EXPECT_GT(caft->latency0, 0.0);
    // Upper bounds dominate 0-crash latencies.
    EXPECT_GE(ftsa->latency_ub, ftsa->latency0 - 1e-9);
    EXPECT_GE(ftbar->latency_ub, ftbar->latency0 - 1e-9);
    EXPECT_GE(caft->latency_ub, caft->latency0 - 1e-9);
    // No crash run may lose results (c <= eps).
    EXPECT_EQ(p.crash_failures, 0u);
    // CAFT sends no more messages than FTSA.
    EXPECT_LE(caft->messages, ftsa->messages + 1e-9);
    // Overheads are bounded below (mild negative values possible: see the
    // racing note above).
    EXPECT_GE(ftsa->overhead0, -50.0);
    EXPECT_GE(caft->overhead0, -50.0);
  }
}

TEST(ExpRunner, DeterministicForFixedSeed) {
  const auto a = run_experiment(tiny_config());
  const auto b = run_experiment(tiny_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].algo("ftsa")->latency0, b[i].algo("ftsa")->latency0);
    EXPECT_DOUBLE_EQ(a[i].algo("caft")->latency_crash,
                     b[i].algo("caft")->latency_crash);
    EXPECT_DOUBLE_EQ(a[i].algo("ftbar")->messages,
                     b[i].algo("ftbar")->messages);
  }
}

TEST(ExpRunner, SeedChangesResults) {
  ExperimentConfig config = tiny_config();
  const auto a = run_experiment(config);
  config.seed += 1;
  const auto b = run_experiment(config);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i)
    differs = a[i].algo("ftsa")->latency0 != b[i].algo("ftsa")->latency0;
  EXPECT_TRUE(differs);
}

TEST(ExpRunner, RejectsCrashesAboveEps) {
  ExperimentConfig config = tiny_config();
  config.crashes = config.eps + 1;
  EXPECT_THROW(run_experiment(config), CheckError);
}

TEST(ExpRunner, RejectsUnknownAlgorithm) {
  ExperimentConfig config = tiny_config();
  config.algorithms.push_back("no-such-algo");
  EXPECT_THROW(run_experiment(config), CheckError);
}

// Adding an algorithm to a figure is one registry name in the config —
// results and report panels pick it up without any struct change.
TEST(ExpRunner, FifthAlgorithmNeedsNoStructChange) {
  ExperimentConfig config = tiny_config();
  config.algorithms = {"ftsa", "ftbar", "caft", "caft-batch"};
  const auto points = run_experiment(config);
  for (const PointAverages& p : points) {
    ASSERT_EQ(p.algos.size(), 4u);
    const AlgoAverages* batch = p.algo("caft-batch");
    ASSERT_NE(batch, nullptr);
    EXPECT_GT(batch->latency0, 0.0);
    EXPECT_GE(batch->latency_ub, batch->latency0 - 1e-9);
  }
  const Table a = panel_a(config, points);
  EXPECT_EQ(a.header().size(), 11u);  // 1 + 4x2 + 2 baselines
  const Table b = panel_b(config, points);
  EXPECT_EQ(b.header().size(), 9u);
  EXPECT_EQ(b.header()[7], "CAFT-BATCH 0-crash");
}

TEST(ExpReport, PanelsHaveExpectedShape) {
  const ExperimentConfig config = tiny_config();
  const auto points = run_experiment(config);
  const Table a = panel_a(config, points);
  EXPECT_EQ(a.row_count(), 2u);
  EXPECT_EQ(a.header().size(), 9u);
  const Table b = panel_b(config, points);
  EXPECT_EQ(b.header().size(), 7u);
  const Table c = panel_c(config, points);
  EXPECT_EQ(c.header().size(), 7u);
  const Table msgs = panel_messages(config, points);
  EXPECT_EQ(msgs.header().size(), 7u);
}

TEST(ExpReport, ReportPrintsAllPanels) {
  const ExperimentConfig config = tiny_config();
  const auto points = run_experiment(config);
  std::ostringstream os;
  report_figure(os, config, points);
  const std::string out = os.str();
  EXPECT_NE(out.find("fig1(a)"), std::string::npos);
  EXPECT_NE(out.find("fig1(b)"), std::string::npos);
  EXPECT_NE(out.find("fig1(c)"), std::string::npos);
  EXPECT_NE(out.find("messages"), std::string::npos);
  EXPECT_NE(out.find("crash re-executions with lost results: 0"),
            std::string::npos);
}

TEST(ExpReport, CsvFilesWritten) {
  const ExperimentConfig config = tiny_config();
  const auto points = run_experiment(config);
  std::ostringstream os;
  report_figure(os, config, points, "/tmp/caft_test_fig");
  std::ifstream in("/tmp/caft_test_fig_a.csv");
  EXPECT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("granularity"), std::string::npos);
}

}  // namespace
}  // namespace caft
