// Tests for the ftsched:: facade (api/instance, api/scheduler,
// api/session): registry enumeration and lookup, capability flags,
// ScheduleResult parity with the direct per-algorithm calls, Instance
// validation, and Session campaigns bit-identical to run_campaign.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "algo/caft.hpp"
#include "algo/caft_batch.hpp"
#include "algo/ftbar.hpp"
#include "algo/ftsa.hpp"
#include "algo/heft.hpp"
#include "api/api.hpp"
#include "campaign/campaign.hpp"
#include "campaign/scenario_sampler.hpp"
#include "dag/generators.hpp"
#include "helpers.hpp"
#include "platform/cost_synthesis.hpp"
#include "sched/validator.hpp"

namespace ftsched {
namespace {

using caft::CampaignSummary;
using caft::Schedule;

const std::vector<std::string> kBuiltins = {"caft", "caft-batch", "ftsa",
                                            "ftbar", "heft"};

/// A randomized instance following the paper's protocol, adopted from the
/// shared test fixture (stable platform/costs addresses).
Instance random_instance(std::uint64_t seed, std::size_t procs, double g,
                         std::size_t eps) {
  caft::test::Scenario s = caft::test::random_setup(seed, procs, g);
  return Instance(std::move(s.graph), std::move(s.platform),
                  std::move(s.costs), RunOptions{eps});
}

/// Bit-for-bit equality of two schedules: same eps/model, same replica
/// placements (primaries and duplicates), same committed communications.
void expect_schedules_identical(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.eps(), b.eps());
  ASSERT_EQ(a.model(), b.model());
  ASSERT_EQ(a.graph().task_count(), b.graph().task_count());
  for (std::size_t t = 0; t < a.graph().task_count(); ++t) {
    const caft::TaskId task(static_cast<caft::TaskId::value_type>(t));
    ASSERT_EQ(a.total_replicas(task), b.total_replicas(task));
    for (std::size_t r = 0; r < a.total_replicas(task); ++r) {
      const caft::ReplicaIndex replica =
          static_cast<caft::ReplicaIndex>(r);
      const caft::ReplicaAssignment& ra = a.replica(task, replica);
      const caft::ReplicaAssignment& rb = b.replica(task, replica);
      ASSERT_EQ(ra.proc, rb.proc);
      ASSERT_EQ(ra.start, rb.start);    // exact: same code path, same input
      ASSERT_EQ(ra.finish, rb.finish);
    }
  }
  ASSERT_EQ(a.comms().size(), b.comms().size());
  for (std::size_t i = 0; i < a.comms().size(); ++i) {
    const caft::CommAssignment& ca = a.comms()[i];
    const caft::CommAssignment& cb = b.comms()[i];
    ASSERT_EQ(ca.edge, cb.edge);
    ASSERT_EQ(ca.from, cb.from);
    ASSERT_EQ(ca.to, cb.to);
    ASSERT_EQ(ca.src_proc, cb.src_proc);
    ASSERT_EQ(ca.dst_proc, cb.dst_proc);
    ASSERT_EQ(ca.volume, cb.volume);
    ASSERT_EQ(ca.times.arrival, cb.times.arrival);
    ASSERT_EQ(ca.times.link_start, cb.times.link_start);
    ASSERT_EQ(ca.times.link_finish, cb.times.link_finish);
  }
  ASSERT_EQ(a.zero_crash_latency(), b.zero_crash_latency());
  ASSERT_EQ(a.upper_bound_latency(), b.upper_bound_latency());
  ASSERT_EQ(a.message_count(), b.message_count());
}

/// EXPECT_EQ for doubles that treats NaN == NaN (an all-failures campaign
/// legitimately reports NaN latency quantiles on both sides).
void expect_same_double(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b);
}

/// Bit-for-bit equality of everything a campaign summary reports.
void expect_summaries_identical(const CampaignSummary& a,
                                const CampaignSummary& b) {
  EXPECT_EQ(a.replays, b.replays);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.replays_within_eps, b.replays_within_eps);
  EXPECT_EQ(a.successes_within_eps, b.successes_within_eps);
  EXPECT_EQ(a.max_failed, b.max_failed);
  EXPECT_EQ(a.order_relaxations, b.order_relaxations);
  EXPECT_EQ(a.order_deadlocks, b.order_deadlocks);
  expect_same_double(a.latency.mean(), b.latency.mean());
  expect_same_double(a.latency.min(), b.latency.min());
  expect_same_double(a.latency.max(), b.latency.max());
  expect_same_double(a.latency.stddev(), b.latency.stddev());
  expect_same_double(a.delivered_messages.mean(),
                     b.delivered_messages.mean());
  ASSERT_EQ(a.latency_quantiles.size(), b.latency_quantiles.size());
  for (std::size_t i = 0; i < a.latency_quantiles.size(); ++i)
    expect_same_double(a.latency_quantiles[i].value,
                       b.latency_quantiles[i].value);
}

// ---------------------------------------------------------------- registry

TEST(Registry, EnumeratesBuiltinsInCanonicalOrder) {
  const auto names = SchedulerRegistry::global().names();
  ASSERT_GE(names.size(), kBuiltins.size());
  // Built-ins are registered before anything else, in canonical order
  // (other tests in this binary may append their own schedulers).
  for (std::size_t i = 0; i < kBuiltins.size(); ++i)
    EXPECT_EQ(names[i], kBuiltins[i]);
}

TEST(Registry, MakeReturnsTheNamedScheduler) {
  for (const std::string& name : kBuiltins)
    EXPECT_EQ(SchedulerRegistry::global().make(name)->name(), name);
}

TEST(Registry, UnknownNameThrowsWithKnownList) {
  try {
    (void)SchedulerRegistry::global().make("definitely-not-registered");
    FAIL() << "expected CheckError";
  } catch (const caft::CheckError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unknown algo 'definitely-not-registered'"),
              std::string::npos)
        << message;
    EXPECT_NE(
        message.find("known: caft, caft-batch, ftsa, ftbar, heft"),
        std::string::npos)
        << message;
  }
}

TEST(Registry, ForEachVisitsEveryScheduler) {
  std::vector<std::string> visited;
  SchedulerRegistry::global().for_each(
      [&](const Scheduler& s) { visited.push_back(s.name()); });
  EXPECT_EQ(visited, SchedulerRegistry::global().names());
}

TEST(Registry, CapabilitiesMatchTheAlgorithms) {
  const auto& registry = SchedulerRegistry::global();
  EXPECT_TRUE(registry.make("caft")->capabilities().supports_eps);
  EXPECT_TRUE(registry.make("caft")->capabilities().contention_aware);
  EXPECT_FALSE(registry.make("caft")->capabilities().emits_duplicates);
  EXPECT_TRUE(registry.make("caft-batch")->capabilities().contention_aware);
  EXPECT_TRUE(registry.make("ftsa")->capabilities().supports_eps);
  EXPECT_FALSE(registry.make("ftsa")->capabilities().contention_aware);
  EXPECT_TRUE(registry.make("ftbar")->capabilities().emits_duplicates);
  EXPECT_FALSE(registry.make("heft")->capabilities().supports_eps);
}

TEST(Registry, RejectsDuplicateRegistration) {
  class Fake final : public Scheduler {
   public:
    [[nodiscard]] std::string name() const override { return "caft"; }
    [[nodiscard]] SchedulerCapabilities capabilities() const override {
      return {};
    }

   protected:
    [[nodiscard]] Schedule run(const Instance&,
                               const caft::SchedulerOptions&,
                               const ScheduleRequest&,
                               std::any*) const override {
      throw caft::CheckError("never scheduled");
    }
  };
  EXPECT_THROW(SchedulerRegistry::global().add(std::make_shared<Fake>()),
               caft::CheckError);
}

// An external scheduler registered by user code is discovered like a
// built-in — adding an algorithm needs no registry change.
class EchoHeftScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "echo-heft"; }
  [[nodiscard]] SchedulerCapabilities capabilities() const override {
    return {};
  }

 protected:
  [[nodiscard]] std::size_t resolve_eps(
      const Instance&, const ScheduleRequest&) const override {
    return 0;
  }
  [[nodiscard]] Schedule run(const Instance& instance,
                             const caft::SchedulerOptions& options,
                             const ScheduleRequest&,
                             std::any*) const override {
    return heft_schedule(instance.graph(), instance.platform(),
                         instance.costs(), options.model);
  }
};

FTSCHED_REGISTER_SCHEDULER(EchoHeftScheduler)

TEST(Registry, SelfRegisteredExternalSchedulerIsDiscoverable) {
  ASSERT_TRUE(SchedulerRegistry::global().contains("echo-heft"));
  const Instance instance = random_instance(404, 8, 1.0, 0);
  const ScheduleResult via_registry =
      SchedulerRegistry::global().make("echo-heft")->schedule(instance);
  const ScheduleResult via_builtin =
      SchedulerRegistry::global().make("heft")->schedule(instance);
  expect_schedules_identical(via_registry.schedule, via_builtin.schedule);
}

// ---------------------------------------------------------------- instance

TEST(InstanceApi, ValidateRejectsEpsAtOrAboveProcCount) {
  const Instance instance = random_instance(1, 4, 1.0, 4);  // eps == m
  try {
    instance.validate();
    FAIL() << "expected CheckError";
  } catch (const caft::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("eps must be < m"),
              std::string::npos)
        << error.what();
  }
  EXPECT_NO_THROW(instance.validate(3));  // eps = m-1 is the legal maximum
}

TEST(InstanceApi, ValidateRejectsCostModelGraphMismatch) {
  caft::test::Scenario s = caft::test::random_setup(2, 6, 1.0);
  // Costs sized for a *different* (smaller) graph on the same platform.
  auto wrong_costs = std::make_unique<caft::CostModel>(
      caft::uniform_costs(caft::chain(3, 10.0), *s.platform, 1.0, 1.0));
  const Instance instance(std::move(s.graph), std::move(s.platform),
                          std::move(wrong_costs), RunOptions{1});
  try {
    instance.validate();
    FAIL() << "expected CheckError";
  } catch (const caft::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("different graph"),
              std::string::npos)
        << error.what();
  }
}

TEST(InstanceApi, AdoptionRejectsForeignPlatformCosts) {
  caft::test::Scenario s = caft::test::random_setup(3, 6, 1.0);
  auto other_platform = std::make_unique<caft::Platform>(6);
  auto foreign_costs = std::make_unique<caft::CostModel>(
      caft::uniform_costs(s.graph, *other_platform, 1.0, 1.0));
  EXPECT_THROW(Instance(std::move(s.graph), std::move(s.platform),
                        std::move(foreign_costs)),
               caft::CheckError);
}

TEST(InstanceApi, SchedulersFrontloadValidation) {
  const Instance instance = random_instance(4, 4, 1.0, 5);  // eps > m
  EXPECT_THROW(
      (void)SchedulerRegistry::global().make("caft")->schedule(instance),
      caft::CheckError);
  // HEFT pins eps to 0, so the same instance is fine there.
  EXPECT_NO_THROW(
      (void)SchedulerRegistry::global().make("heft")->schedule(instance));
}

TEST(InstanceApi, SaveLoadRoundTripsScheduleThroughFacade) {
  const std::string path = "/tmp/ftsched_api_roundtrip.txt";
  const Instance instance = random_instance(5, 8, 1.0, 1);
  const ScheduleResult result =
      SchedulerRegistry::global().make("caft")->schedule(instance);
  instance.save(path, &result.schedule);

  const Instance loaded = Instance::load(path);
  ASSERT_NE(loaded.loaded_schedule(), nullptr);
  EXPECT_EQ(loaded.eps(), 1u);  // adopted from the serialized schedule
  expect_schedules_identical(*loaded.loaded_schedule(), result.schedule);
  // The loaded instance schedules identically to the in-memory one.
  const ScheduleResult again =
      SchedulerRegistry::global().make("caft")->schedule(loaded);
  expect_schedules_identical(again.schedule, result.schedule);
}

TEST(InstanceApi, MovedInstanceKeepsSchedulesValid) {
  Instance instance = random_instance(6, 8, 1.0, 1);
  const ScheduleResult result =
      SchedulerRegistry::global().make("ftsa")->schedule(instance);
  const double latency = result.makespan;
  // Moving the instance must not invalidate the schedule's internal
  // pointers (everything lives behind one stable allocation).
  Instance moved = std::move(instance);
  EXPECT_EQ(result.schedule.zero_crash_latency(), latency);
  EXPECT_EQ(&result.schedule.graph(), &moved.graph());
  const caft::ValidationResult validation =
      validate_schedule(result.schedule, moved.costs());
  EXPECT_TRUE(validation.ok()) << validation.summary();
}

// ------------------------------------------------- facade/direct parity

TEST(FacadeParity, AllAlgorithmsMatchDirectCallsOnRandomInstances) {
  for (const std::uint64_t seed : {11u, 29u, 83u}) {
    for (const double granularity : {0.4, 1.0, 4.0}) {
      const std::size_t eps = seed % 2 == 0 ? 1 : 2;
      const Instance instance = random_instance(seed, 10, granularity, eps);
      const caft::SchedulerOptions base{eps, caft::CommModelKind::kOnePort};

      const auto check = [&](const std::string& name,
                             const Schedule& direct) {
        const ScheduleResult result =
            SchedulerRegistry::global().make(name)->schedule(instance);
        expect_schedules_identical(result.schedule, direct);
        // Metrics are read straight off the schedule.
        EXPECT_EQ(result.makespan, direct.zero_crash_latency());
        EXPECT_EQ(result.upper_bound, direct.upper_bound_latency());
        EXPECT_EQ(result.messages, direct.message_count());
        EXPECT_EQ(result.message_volume, direct.message_volume());
        // Validator verdict matches a direct validation.
        ASSERT_TRUE(result.validated);
        const caft::ValidationResult direct_validation =
            validate_schedule(direct, instance.costs());
        EXPECT_EQ(result.validation.ok(), direct_validation.ok());
        EXPECT_EQ(result.validation.issues.size(),
                  direct_validation.issues.size());
      };

      caft::CaftOptions caft_options;
      caft_options.base = base;
      check("caft", caft_schedule(instance.graph(), instance.platform(),
                                  instance.costs(), caft_options));

      caft::CaftBatchOptions batch_options;
      batch_options.caft.base = base;
      check("caft-batch",
            caft_batch_schedule(instance.graph(), instance.platform(),
                                instance.costs(), batch_options));

      check("ftsa", ftsa_schedule(instance.graph(), instance.platform(),
                                  instance.costs(), base));

      caft::FtbarOptions ftbar_options;
      ftbar_options.base = base;
      check("ftbar", ftbar_schedule(instance.graph(), instance.platform(),
                                    instance.costs(), ftbar_options));

      check("heft", heft_schedule(instance.graph(), instance.platform(),
                                  instance.costs(),
                                  caft::CommModelKind::kOnePort));
    }
  }
}

TEST(FacadeParity, RequestKnobsReachTheAlgorithms) {
  const Instance instance = random_instance(7, 10, 1.0, 2);

  // support_mode = direct matches a direct kDirect call.
  ScheduleRequest direct_request;
  direct_request.support_mode = caft::CaftSupportMode::kDirect;
  caft::CaftOptions direct_options;
  direct_options.base = {2, caft::CommModelKind::kOnePort};
  direct_options.support_mode = caft::CaftSupportMode::kDirect;
  expect_schedules_identical(
      SchedulerRegistry::global()
          .make("caft")
          ->schedule(instance, direct_request)
          .schedule,
      caft_schedule(instance.graph(), instance.platform(), instance.costs(),
                    direct_options));

  // eps override beats the instance's eps.
  ScheduleRequest eps_request;
  eps_request.eps = 1;
  const ScheduleResult eps_result =
      SchedulerRegistry::global().make("ftsa")->schedule(instance,
                                                         eps_request);
  EXPECT_EQ(eps_result.eps, 1u);
  EXPECT_EQ(eps_result.schedule.eps(), 1u);

  // HEFT ignores eps entirely.
  const ScheduleResult heft_result =
      SchedulerRegistry::global().make("heft")->schedule(instance);
  EXPECT_EQ(heft_result.eps, 0u);
  EXPECT_EQ(heft_result.schedule.primary_count(), 1u);

  // batch_size = 1 makes caft-batch collapse to caft exactly.
  ScheduleRequest batch1;
  batch1.batch_size = 1;
  expect_schedules_identical(
      SchedulerRegistry::global()
          .make("caft-batch")
          ->schedule(instance, batch1)
          .schedule,
      SchedulerRegistry::global().make("caft")->schedule(instance).schedule);
}

TEST(FacadeParity, TypedStatsRideAlong) {
  const Instance instance = random_instance(8, 10, 1.0, 1);
  const ScheduleResult caft_result =
      SchedulerRegistry::global().make("caft")->schedule(instance);
  const auto* stats = caft_result.stats_as<caft::CaftRunStats>();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->one_to_one_commits + stats->fallback_commits, 0u);
  // FTSA publishes no stats; the typed accessor answers null, not garbage.
  const ScheduleResult ftsa_result =
      SchedulerRegistry::global().make("ftsa")->schedule(instance);
  EXPECT_EQ(ftsa_result.stats_as<caft::CaftRunStats>(), nullptr);
}

// ------------------------------------------------------------- session

TEST(SessionApi, EvaluateIsBitIdenticalToRunCampaign) {
  const Instance instance = random_instance(21, 10, 1.0, 2);

  CampaignSpec spec;
  spec.algorithms = {"caft", "ftsa", "ftbar"};
  spec.sampler = SamplerSpec::uniform_k(2);
  spec.replays = 400;
  spec.seed = 777;

  const Session session;
  const CampaignReport report = session.evaluate(instance, spec);
  ASSERT_EQ(report.runs.size(), 3u);

  // Hand-rolled pre-facade path: direct scheduling + run_campaign with the
  // same seeds must give byte-identical summaries.
  const caft::SchedulerOptions base{2, caft::CommModelKind::kOnePort};
  caft::CaftOptions caft_options;
  caft_options.base = base;
  caft::FtbarOptions ftbar_options;
  ftbar_options.base = base;
  const std::vector<std::pair<std::string, Schedule>> direct = {
      {"caft", caft_schedule(instance.graph(), instance.platform(),
                             instance.costs(), caft_options)},
      {"ftsa", ftsa_schedule(instance.graph(), instance.platform(),
                             instance.costs(), base)},
      {"ftbar", ftbar_schedule(instance.graph(), instance.platform(),
                               instance.costs(), ftbar_options)},
  };
  const caft::UniformKSampler sampler(10, 2);
  caft::CampaignOptions options;
  options.replays = 400;
  options.seed = 777;

  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(report.runs[i].algorithm, direct[i].first);
    expect_schedules_identical(report.runs[i].result.schedule,
                               direct[i].second);
    const CampaignSummary expected =
        run_campaign(direct[i].second, instance.costs(), sampler, options);
    expect_summaries_identical(report.runs[i].summary, expected);
  }

  // find() and summary_rows() expose the same runs.
  ASSERT_NE(report.find("ftsa"), nullptr);
  EXPECT_EQ(report.find("ftsa"), &report.runs[1]);
  EXPECT_EQ(report.find("heft"), nullptr);
  const auto rows = report.summary_rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "CAFT");
  EXPECT_EQ(rows[2].first, "FTBAR");
}

TEST(SessionApi, ReportsAreExecutionPolicyIndependent) {
  const Instance instance = random_instance(22, 8, 1.0, 1);
  CampaignSpec spec;
  spec.algorithms = {"caft"};
  spec.sampler = SamplerSpec::window(1, 0.0, 500.0);
  spec.replays = 300;

  SessionOptions one_thread_naive;
  one_thread_naive.threads = 1;
  one_thread_naive.engine = caft::CampaignEngine::kNaive;
  SessionOptions four_threads_scratch;
  four_threads_scratch.threads = 4;
  four_threads_scratch.memo = caft::CampaignMemo::kScratch;
  SessionOptions four_threads_shared;
  four_threads_shared.threads = 4;

  const CampaignReport a =
      Session(one_thread_naive).evaluate(instance, spec);
  const CampaignReport b =
      Session(four_threads_scratch).evaluate(instance, spec);
  const CampaignReport c =
      Session(four_threads_shared).evaluate(instance, spec);
  expect_summaries_identical(a.runs[0].summary, b.runs[0].summary);
  expect_summaries_identical(a.runs[0].summary, c.runs[0].summary);
}

TEST(SessionApi, EvaluateBatchMatchesPerInstanceEvaluate) {
  std::vector<Instance> instances;
  instances.push_back(random_instance(31, 8, 0.5, 1));
  instances.push_back(random_instance(32, 8, 2.0, 1));

  CampaignSpec spec;
  spec.algorithms = {"caft", "heft"};
  spec.sampler = SamplerSpec::uniform_k(1);
  spec.replays = 200;

  const Session session;
  const auto batch = session.evaluate_batch(instances, spec);
  ASSERT_EQ(batch.size(), 2u);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const CampaignReport solo = session.evaluate(instances[i], spec);
    ASSERT_EQ(batch[i].runs.size(), solo.runs.size());
    for (std::size_t r = 0; r < solo.runs.size(); ++r)
      expect_summaries_identical(batch[i].runs[r].summary,
                                 solo.runs[r].summary);
  }
}

TEST(SessionApi, RejectsInertThetaBucketCombinations) {
  const Instance instance = random_instance(41, 8, 1.0, 1);
  CampaignSpec spec;
  spec.algorithms = {"caft"};
  spec.replays = 10;
  spec.theta_buckets = 16;

  SessionOptions naive;
  naive.engine = caft::CampaignEngine::kNaive;
  EXPECT_THROW((void)Session(naive).evaluate(instance, spec),
               caft::CheckError);
  SessionOptions scratch;
  scratch.memo = caft::CampaignMemo::kScratch;
  EXPECT_THROW((void)Session(scratch).evaluate(instance, spec),
               caft::CheckError);
  // --exact opts out of quantization, so any engine/memo is legal again.
  spec.exact = true;
  EXPECT_NO_THROW((void)Session(naive).evaluate(instance, spec));
}

TEST(SessionApi, ThetaBucketWidthRejectsDegenerateHorizons) {
  CampaignSpec spec;
  spec.theta_buckets = 16;
  // A zero or non-finite horizon admits no bucket width: 0-width buckets
  // would silently degenerate to exact replays, inf/NaN would poison every
  // quantized crash time. The derivation must refuse, pointing at the
  // exact path.
  EXPECT_THROW((void)spec.theta_bucket_width(0.0), caft::CheckError);
  EXPECT_THROW((void)spec.theta_bucket_width(-1.0), caft::CheckError);
  EXPECT_THROW(
      (void)spec.theta_bucket_width(std::numeric_limits<double>::infinity()),
      caft::CheckError);
  EXPECT_THROW(
      (void)spec.theta_bucket_width(std::numeric_limits<double>::quiet_NaN()),
      caft::CheckError);
  EXPECT_DOUBLE_EQ(spec.theta_bucket_width(16.0), 1.0);
  // No buckets, no width — degenerate horizons are fine then.
  spec.theta_buckets = 0;
  EXPECT_DOUBLE_EQ(spec.theta_bucket_width(0.0), 0.0);
}

TEST(SessionApi, ExactCampaignsNeverDeriveABucketWidth) {
  // exact + buckets on a degenerate schedule must run, not throw: the
  // exact path is precisely the documented escape hatch for schedules
  // whose horizon admits no bucket width.
  const Instance instance = random_instance(43, 8, 1.0, 1);
  CampaignSpec spec;
  spec.algorithms = {"caft"};
  spec.replays = 10;
  spec.theta_buckets = 16;
  spec.exact = true;
  const CampaignReport report = Session().evaluate(instance, spec);
  EXPECT_DOUBLE_EQ(report.runs[0].theta_bucket_width, 0.0);
}

TEST(SessionApi, InProcessTargetCiWidthStopsEarlyAndDeterministically) {
  const Instance instance = random_instance(44, 8, 1.0, 1);
  CampaignSpec spec;
  spec.algorithms = {"caft"};
  spec.replays = 4000;
  // A loose target: the Wilson interval narrows below it long before the
  // full budget, so the in-process backend must stop at a wave boundary
  // with a truncated (but non-empty) canonical prefix.
  spec.target_ci_width = 0.2;
  SessionOptions options;
  options.block = 64;
  const CampaignReport report = Session(options).evaluate(instance, spec);
  ASSERT_EQ(report.runs.size(), 1u);
  const caft::CampaignSummary& stopped = report.runs[0].summary;
  EXPECT_GT(stopped.replays, 0u);
  EXPECT_LT(stopped.replays, spec.replays);
  EXPECT_EQ(stopped.replays % options.block, 0u);  // wave-boundary cut
  EXPECT_LE(stopped.success_ci.high - stopped.success_ci.low,
            spec.target_ci_width);

  // The stopping point is a function of (seed, block) only: any thread
  // count folds the same canonical prefix, byte-for-byte — the property
  // the campaign server's cached-vs-fresh identity rests on.
  SessionOptions threaded = options;
  threaded.threads = 4;
  const CampaignReport again = Session(threaded).evaluate(instance, spec);
  expect_summaries_identical(again.runs[0].summary, stopped);

  // And the width itself must be a meaningful CI width.
  spec.target_ci_width = 1.5;
  EXPECT_THROW((void)Session().evaluate(instance, spec), caft::CheckError);
  spec.target_ci_width = -0.1;
  EXPECT_THROW((void)Session().evaluate(instance, spec), caft::CheckError);
}

TEST(SessionApi, DisplayNameUppercases) {
  EXPECT_EQ(display_name("caft"), "CAFT");
  EXPECT_EQ(display_name("caft-batch"), "CAFT-BATCH");
  EXPECT_EQ(display_name("heft"), "HEFT");
}

}  // namespace
}  // namespace ftsched
