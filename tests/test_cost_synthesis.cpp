// Tests for the paper-protocol random cost generation
// (platform/cost_synthesis): exact granularity targeting and ranges.
#include "platform/cost_synthesis.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"

namespace caft {
namespace {

TEST(CostSynthesis, HitsGranularityExactly) {
  Rng rng(1);
  const TaskGraph g = random_dag(RandomDagParams{}, rng);
  const Platform platform(10);
  for (const double target : {0.2, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    CostSynthesisParams params;
    params.granularity = target;
    Rng local(17);
    const CostModel costs = synthesize_costs(g, platform, params, local);
    EXPECT_NEAR(costs.granularity(g), target, 1e-9) << "target " << target;
  }
}

TEST(CostSynthesis, LinkDelaysWithinPaperRange) {
  Rng rng(2);
  const TaskGraph g = random_dag(RandomDagParams{}, rng);
  const Platform platform(6);
  const CostModel costs =
      synthesize_costs(g, platform, CostSynthesisParams{}, rng);
  for (std::size_t l = 0; l < platform.topology().link_count(); ++l) {
    const double d = costs.unit_delay(LinkId(static_cast<LinkId::value_type>(l)));
    EXPECT_GE(d, 0.5);
    EXPECT_LE(d, 1.0);
  }
}

TEST(CostSynthesis, ExecTimesPositive) {
  Rng rng(3);
  const TaskGraph g = random_dag(RandomDagParams{}, rng);
  const Platform platform(8);
  const CostModel costs =
      synthesize_costs(g, platform, CostSynthesisParams{}, rng);
  for (const TaskId t : g.all_tasks())
    for (const ProcId p : platform.all_procs())
      EXPECT_GT(costs.exec(t, p), 0.0);
}

TEST(CostSynthesis, HeterogeneityProducesSpread) {
  Rng rng(4);
  const TaskGraph g = random_dag(RandomDagParams{}, rng);
  const Platform platform(10);
  CostSynthesisParams params;
  params.heterogeneity = 0.5;
  const CostModel costs = synthesize_costs(g, platform, params, rng);
  // At least one task must see noticeably different speeds across procs.
  bool spread = false;
  for (const TaskId t : g.all_tasks())
    if (costs.slowest_exec(t) > 1.5 * costs.fastest_exec(t)) spread = true;
  EXPECT_TRUE(spread);
}

TEST(CostSynthesis, ZeroHeterogeneityUniformAcrossProcs) {
  Rng rng(5);
  const TaskGraph g = random_dag(RandomDagParams{}, rng);
  const Platform platform(4);
  CostSynthesisParams params;
  params.heterogeneity = 0.0;
  params.base_spread = 0.0;
  const CostModel costs = synthesize_costs(g, platform, params, rng);
  for (const TaskId t : g.all_tasks())
    EXPECT_NEAR(costs.slowest_exec(t), costs.fastest_exec(t), 1e-12);
}

TEST(CostSynthesis, DeterministicGivenSeed) {
  Rng g1(6);
  const TaskGraph g = random_dag(RandomDagParams{}, g1);
  const Platform platform(5);
  Rng a(7), b(7);
  const CostModel ca = synthesize_costs(g, platform, CostSynthesisParams{}, a);
  const CostModel cb = synthesize_costs(g, platform, CostSynthesisParams{}, b);
  for (const TaskId t : g.all_tasks())
    for (const ProcId p : platform.all_procs())
      EXPECT_DOUBLE_EQ(ca.exec(t, p), cb.exec(t, p));
}

TEST(CostSynthesis, RejectsBadParams) {
  Rng rng(8);
  const TaskGraph g = chain(3, 10.0);
  const Platform platform(3);
  CostSynthesisParams params;
  params.granularity = 0.0;
  EXPECT_THROW(synthesize_costs(g, platform, params, rng), CheckError);
  params = CostSynthesisParams{};
  params.heterogeneity = 1.0;
  EXPECT_THROW(synthesize_costs(g, platform, params, rng), CheckError);
}

TEST(CostSynthesis, RejectsGraphWithoutEdges) {
  Rng rng(9);
  TaskGraph g;
  g.add_task();
  const Platform platform(2);
  EXPECT_THROW(synthesize_costs(g, platform, CostSynthesisParams{}, rng),
               CheckError);
}

TEST(CostSynthesis, WorksOnSparseTopology) {
  Rng rng(10);
  const TaskGraph g = random_dag(RandomDagParams{}, rng);
  const Platform platform(Topology::ring(8));
  CostSynthesisParams params;
  params.granularity = 1.5;
  const CostModel costs = synthesize_costs(g, platform, params, rng);
  EXPECT_NEAR(costs.granularity(g), 1.5, 1e-9);
}

TEST(UniformCosts, AllEqual) {
  const TaskGraph g = chain(4, 2.0);
  const Platform platform(3);
  const CostModel costs = uniform_costs(g, platform, 5.0, 0.5);
  for (const TaskId t : g.all_tasks())
    for (const ProcId p : platform.all_procs())
      EXPECT_DOUBLE_EQ(costs.exec(t, p), 5.0);
  EXPECT_DOUBLE_EQ(costs.pair_delay(ProcId(0), ProcId(1)), 0.5);
}

/// Parameterized: granularity targeting holds across graph families.
class GranularityTargeting
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(GranularityTargeting, ExactOnFamilies) {
  const double target = std::get<0>(GetParam());
  const int family = std::get<1>(GetParam());
  Rng rng(static_cast<std::uint64_t>(family) + 100);
  TaskGraph g;
  switch (family) {
    case 0: g = chain(12, 100.0); break;
    case 1: g = fork_join(8, 100.0); break;
    case 2: g = gaussian_elimination(5, 100.0); break;
    default: g = stencil(4, 4, 100.0); break;
  }
  const Platform platform(6);
  CostSynthesisParams params;
  params.granularity = target;
  const CostModel costs = synthesize_costs(g, platform, params, rng);
  EXPECT_NEAR(costs.granularity(g), target, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GranularityTargeting,
    ::testing::Combine(::testing::Values(0.2, 1.0, 4.0),
                       ::testing::Values(0, 1, 2, 3)));

}  // namespace
}  // namespace caft
