// Tests for the heterogeneous cost functions (platform/cost_model).
#include "platform/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dag/generators.hpp"

namespace caft {
namespace {

ProcId P(std::size_t i) { return ProcId(static_cast<ProcId::value_type>(i)); }
TaskId T(std::size_t i) { return TaskId(static_cast<TaskId::value_type>(i)); }

TEST(CostModel, ExecSetAndGet) {
  const TaskGraph g = chain(3);
  const Platform platform(2);
  CostModel costs(g.task_count(), platform);
  costs.set_exec(T(0), P(0), 5.0);
  costs.set_exec(T(0), P(1), 7.0);
  EXPECT_DOUBLE_EQ(costs.exec(T(0), P(0)), 5.0);
  EXPECT_DOUBLE_EQ(costs.exec(T(0), P(1)), 7.0);
  EXPECT_DOUBLE_EQ(costs.exec(T(1), P(0)), 0.0);  // default
}

TEST(CostModel, SetExecAll) {
  const TaskGraph g = chain(2);
  const Platform platform(3);
  CostModel costs(g.task_count(), platform);
  costs.set_exec_all(T(1), 4.0);
  for (std::size_t p = 0; p < 3; ++p)
    EXPECT_DOUBLE_EQ(costs.exec(T(1), P(p)), 4.0);
}

TEST(CostModel, RejectsNegativeCosts) {
  const TaskGraph g = chain(2);
  const Platform platform(2);
  CostModel costs(g.task_count(), platform);
  EXPECT_THROW(costs.set_exec(T(0), P(0), -1.0), CheckError);
  EXPECT_THROW(costs.set_unit_delay(LinkId(0), -0.5), CheckError);
}

TEST(CostModel, PairDelayCliqueIsDirectLink) {
  const TaskGraph g = chain(2);
  const Platform platform(3);
  CostModel costs(g.task_count(), platform);
  const LinkId l = platform.topology().direct_link(P(0), P(2));
  costs.set_unit_delay(l, 0.75);
  EXPECT_DOUBLE_EQ(costs.pair_delay(P(0), P(2)), 0.75);
  EXPECT_DOUBLE_EQ(costs.pair_delay(P(1), P(1)), 0.0);
}

TEST(CostModel, PairDelaySumsAlongSparseRoute) {
  const TaskGraph g = chain(2);
  const Platform platform(Topology::star(4));
  CostModel costs(g.task_count(), platform);
  costs.set_all_unit_delays(0.5);
  // Leaf -> leaf goes through the hub: two hops of 0.5 per unit.
  EXPECT_DOUBLE_EQ(costs.pair_delay(P(1), P(3)), 1.0);
  EXPECT_DOUBLE_EQ(costs.comm_time(10.0, P(1), P(3)), 10.0);
}

TEST(CostModel, AvgSlowestFastestExec) {
  const TaskGraph g = chain(2);
  const Platform platform(3);
  CostModel costs(g.task_count(), platform);
  costs.set_exec(T(0), P(0), 2.0);
  costs.set_exec(T(0), P(1), 4.0);
  costs.set_exec(T(0), P(2), 9.0);
  EXPECT_DOUBLE_EQ(costs.avg_exec(T(0)), 5.0);
  EXPECT_DOUBLE_EQ(costs.slowest_exec(T(0)), 9.0);
  EXPECT_DOUBLE_EQ(costs.fastest_exec(T(0)), 2.0);
}

TEST(CostModel, AvgAndMaxPairDelay) {
  const TaskGraph g = chain(2);
  const Platform platform(2);
  CostModel costs(g.task_count(), platform);
  costs.set_unit_delay(platform.topology().direct_link(P(0), P(1)), 0.6);
  costs.set_unit_delay(platform.topology().direct_link(P(1), P(0)), 1.0);
  EXPECT_DOUBLE_EQ(costs.avg_pair_delay(), 0.8);
  EXPECT_DOUBLE_EQ(costs.max_pair_delay(), 1.0);
}

TEST(CostModel, SingleProcessorNoDelays) {
  const TaskGraph g = chain(2);
  const Platform platform(1);
  CostModel costs(g.task_count(), platform);
  EXPECT_DOUBLE_EQ(costs.avg_pair_delay(), 0.0);
  EXPECT_DOUBLE_EQ(costs.max_pair_delay(), 0.0);
}

TEST(CostModel, GranularityDefinition) {
  // Two tasks, one edge of volume 10; delays 0.5 everywhere; exec 5 / 15.
  const TaskGraph g = chain(2, 10.0);
  const Platform platform(2);
  CostModel costs(g.task_count(), platform);
  costs.set_all_unit_delays(0.5);
  costs.set_exec_all(T(0), 5.0);
  costs.set_exec_all(T(1), 15.0);
  // slowest comp = 5 + 15 = 20; slowest comm = 10 * 0.5 = 5; g = 4.
  EXPECT_DOUBLE_EQ(costs.granularity(g), 4.0);
}

TEST(CostModel, GranularityInfiniteWithoutComm) {
  TaskGraph g;
  g.add_task();
  const Platform platform(2);
  CostModel costs(g.task_count(), platform);
  costs.set_exec_all(T(0), 3.0);
  EXPECT_TRUE(std::isinf(costs.granularity(g)));
}

TEST(CostModel, AverageWeightsForPriorities) {
  const TaskGraph g = chain(2, 10.0);
  const Platform platform(2);
  CostModel costs(g.task_count(), platform);
  costs.set_exec(T(0), P(0), 2.0);
  costs.set_exec(T(0), P(1), 6.0);
  costs.set_exec_all(T(1), 3.0);
  costs.set_all_unit_delays(0.5);
  const DagWeights w = costs.average_weights(g);
  EXPECT_DOUBLE_EQ(w.node[0], 4.0);
  EXPECT_DOUBLE_EQ(w.node[1], 3.0);
  EXPECT_DOUBLE_EQ(w.edge[0], 5.0);  // 10 * 0.5 average delay
}

TEST(CostModel, FastestWeightsZeroComm) {
  const TaskGraph g = chain(2, 10.0);
  const Platform platform(2);
  CostModel costs(g.task_count(), platform);
  costs.set_exec(T(0), P(0), 2.0);
  costs.set_exec(T(0), P(1), 6.0);
  costs.set_all_unit_delays(0.5);
  const DagWeights w = costs.fastest_weights(g);
  EXPECT_DOUBLE_EQ(w.node[0], 2.0);
  EXPECT_DOUBLE_EQ(w.edge[0], 0.0);
}

TEST(CostModel, ScaleExec) {
  const TaskGraph g = chain(2);
  const Platform platform(2);
  CostModel costs(g.task_count(), platform);
  costs.set_exec_all(T(0), 3.0);
  costs.scale_exec(2.0);
  EXPECT_DOUBLE_EQ(costs.exec(T(0), P(0)), 6.0);
  EXPECT_THROW(costs.scale_exec(0.0), CheckError);
}

TEST(CostModel, MismatchedPlatformRejected) {
  const TaskGraph g = chain(2);
  const Platform platform(2);
  CostModel costs(g.task_count(), platform);
  const TaskGraph bigger = chain(3);
  EXPECT_THROW((void)costs.granularity(bigger), CheckError);
}

}  // namespace
}  // namespace caft
