// Tests for CAFT-B, the batched variant of Section 7's future work
// (algo/caft_batch).
#include "algo/caft_batch.hpp"

#include <gtest/gtest.h>

#include <set>

#include "helpers.hpp"
#include "sched/validator.hpp"

namespace caft {
namespace {

using test::Scenario;
using test::random_setup;
using test::uniform_setup;

CaftBatchOptions options_for(std::size_t eps, std::size_t batch) {
  CaftBatchOptions options;
  options.caft.base = SchedulerOptions{eps, CommModelKind::kOnePort};
  options.batch_size = batch;
  return options;
}

TEST(CaftBatch, CompleteAndDistinctProcs) {
  Scenario s = random_setup(1, 10, 1.0);
  const Schedule sched =
      caft_batch_schedule(s.graph, *s.platform, *s.costs, options_for(2, 5));
  EXPECT_TRUE(sched.complete());
  for (const TaskId t : s.graph.all_tasks()) {
    std::set<ProcId> procs;
    for (const ReplicaAssignment& a : sched.primaries(t)) procs.insert(a.proc);
    EXPECT_EQ(procs.size(), 3u);
  }
}

TEST(CaftBatch, BatchSizeOneBehavesLikeCaft) {
  // batch_size = 1 processes one task at a time with the same placement
  // machinery; the schedules must be identical to plain CAFT.
  Scenario s = random_setup(2, 10, 1.0);
  CaftOptions plain;
  plain.base = SchedulerOptions{2, CommModelKind::kOnePort};
  const Schedule a = caft_schedule(s.graph, *s.platform, *s.costs, plain);
  const Schedule b =
      caft_batch_schedule(s.graph, *s.platform, *s.costs, options_for(2, 1));
  EXPECT_DOUBLE_EQ(a.zero_crash_latency(), b.zero_crash_latency());
  EXPECT_EQ(a.message_count(), b.message_count());
  for (const TaskId t : s.graph.all_tasks())
    for (ReplicaIndex r = 0; r < 3; ++r)
      EXPECT_EQ(a.replica(t, r).proc, b.replica(t, r).proc);
}

TEST(CaftBatch, ValidAcrossBatchSizes) {
  Scenario s = random_setup(3, 10, 1.0);
  for (const std::size_t batch : {2u, 4u, 10u}) {
    const Schedule sched = caft_batch_schedule(s.graph, *s.platform, *s.costs,
                                               options_for(1, batch));
    const ValidationResult result = validate_schedule(sched, *s.costs);
    EXPECT_TRUE(result.ok()) << "batch " << batch << ": " << result.summary();
  }
}

TEST(CaftBatch, StatsAccountAllCommits) {
  Scenario s = random_setup(4, 10, 1.0);
  CaftRunStats stats;
  const Schedule sched = caft_batch_schedule(s.graph, *s.platform, *s.costs,
                                             options_for(1, 6), &stats);
  EXPECT_EQ(stats.one_to_one_commits + stats.fallback_commits,
            s.graph.task_count() * 2);
  EXPECT_TRUE(sched.complete());
}

TEST(CaftBatch, SingleTask) {
  Scenario s = uniform_setup(chain(1), 3, 10.0, 1.0);
  const Schedule sched =
      caft_batch_schedule(s.graph, *s.platform, *s.costs, options_for(1, 10));
  EXPECT_TRUE(sched.complete());
  EXPECT_DOUBLE_EQ(sched.zero_crash_latency(), 10.0);
}

TEST(CaftBatch, RejectsZeroBatch) {
  Scenario s = uniform_setup(chain(2), 3, 10.0, 1.0);
  EXPECT_THROW(
      caft_batch_schedule(s.graph, *s.platform, *s.costs, options_for(1, 0)),
      CheckError);
}

TEST(CaftBatch, DeterministicAcrossRuns) {
  Scenario s = random_setup(5, 10, 1.0);
  const Schedule a =
      caft_batch_schedule(s.graph, *s.platform, *s.costs, options_for(2, 4));
  const Schedule b =
      caft_batch_schedule(s.graph, *s.platform, *s.costs, options_for(2, 4));
  EXPECT_DOUBLE_EQ(a.zero_crash_latency(), b.zero_crash_latency());
  EXPECT_EQ(a.message_count(), b.message_count());
}

/// Validity sweep over seeds and batch sizes at ε = 2.
class CaftBatchValidity
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(CaftBatchValidity, SchedulesValidate) {
  const auto [seed, batch] = GetParam();
  Scenario s = random_setup(seed, 10, 1.0);
  const Schedule sched = caft_batch_schedule(s.graph, *s.platform, *s.costs,
                                             options_for(2, batch));
  const ValidationResult result = validate_schedule(sched, *s.costs);
  EXPECT_TRUE(result.ok()) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CaftBatchValidity,
    ::testing::Combine(::testing::Values(6u, 7u, 8u),
                       ::testing::Values(1u, 3u, 10u)));

}  // namespace
}  // namespace caft
