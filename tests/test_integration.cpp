// Cross-module integration and property tests: the paper's qualitative
// claims checked end-to-end on the real pipeline (schedule -> validate ->
// re-execute -> measure), plus sparse-topology runs of the Section 7
// extension.
#include <gtest/gtest.h>

#include "algo/caft.hpp"
#include "algo/caft_batch.hpp"
#include "algo/ftbar.hpp"
#include "algo/ftsa.hpp"
#include "algo/heft.hpp"
#include "helpers.hpp"
#include "metrics/metrics.hpp"
#include "sched/bounds.hpp"
#include "sched/validator.hpp"
#include "sim/resilience.hpp"

namespace caft {
namespace {

using test::Scenario;
using test::random_setup;

/// Mean over paired random instances of alg latency (0 crash, one-port).
struct PairedRun {
  double caft = 0.0;
  double ftsa = 0.0;
  double ftbar = 0.0;
  double caft_msgs = 0.0;
  double ftsa_msgs = 0.0;
};

PairedRun run_paired(std::size_t eps, double granularity, int repetitions) {
  PairedRun acc;
  for (int rep = 0; rep < repetitions; ++rep) {
    Scenario s = random_setup(1000 + static_cast<std::uint64_t>(rep), 10,
                              granularity);
    const SchedulerOptions options{eps, CommModelKind::kOnePort};
    CaftOptions caft_options;
    caft_options.base = options;
    FtbarOptions ftbar_options;
    ftbar_options.base = options;
    const Schedule caft =
        caft_schedule(s.graph, *s.platform, *s.costs, caft_options);
    const Schedule ftsa = ftsa_schedule(s.graph, *s.platform, *s.costs, options);
    const Schedule ftbar =
        ftbar_schedule(s.graph, *s.platform, *s.costs, ftbar_options);
    acc.caft += normalized_latency(caft.zero_crash_latency(), s.graph, *s.costs);
    acc.ftsa += normalized_latency(ftsa.zero_crash_latency(), s.graph, *s.costs);
    acc.ftbar +=
        normalized_latency(ftbar.zero_crash_latency(), s.graph, *s.costs);
    acc.caft_msgs += static_cast<double>(caft.message_count());
    acc.ftsa_msgs += static_cast<double>(ftsa.message_count());
  }
  const double n = repetitions;
  acc.caft /= n;
  acc.ftsa /= n;
  acc.ftbar /= n;
  acc.caft_msgs /= n;
  acc.ftsa_msgs /= n;
  return acc;
}

TEST(PaperClaims, CaftBeatsFtsaAndFtbarOnAverage) {
  // The paper's headline (Figures 1-6(a)): CAFT's 0-crash latency is below
  // FTSA's and FTBAR's under the one-port model.
  const PairedRun run = run_paired(/*eps=*/2, /*granularity=*/0.5, 6);
  EXPECT_LT(run.caft, run.ftsa);
  EXPECT_LT(run.caft, run.ftbar);
}

TEST(PaperClaims, MessageScalingLinearVsQuadratic) {
  // The quadratic-vs-linear signature (Section 6): normalized by the
  // paper's linear budget e(ε+1), FTSA's message count grows with ε (its
  // scaling is ~e(ε+1)², damped by the intra-processor rule) while CAFT
  // stays at or below ~1.5x the linear budget, and below FTSA at every ε.
  std::vector<double> ftsa_norm, caft_norm;
  for (const std::size_t eps : {1u, 2u, 3u}) {
    double caft_msgs = 0.0, ftsa_msgs = 0.0, linear = 0.0;
    for (int rep = 0; rep < 4; ++rep) {
      Scenario s = random_setup(1000 + static_cast<std::uint64_t>(rep), 10, 0.5);
      const SchedulerOptions options{eps, CommModelKind::kOnePort};
      CaftOptions caft_options;
      caft_options.base = options;
      const Schedule caft =
          caft_schedule(s.graph, *s.platform, *s.costs, caft_options);
      const Schedule ftsa =
          ftsa_schedule(s.graph, *s.platform, *s.costs, options);
      caft_msgs += static_cast<double>(caft.message_count());
      ftsa_msgs += static_cast<double>(ftsa.message_count());
      linear += static_cast<double>(s.graph.edge_count() * (eps + 1));
    }
    EXPECT_LT(caft_msgs, ftsa_msgs) << "eps " << eps;
    ftsa_norm.push_back(ftsa_msgs / linear);
    caft_norm.push_back(caft_msgs / linear);
  }
  // FTSA drifts away from the linear budget as ε grows...
  EXPECT_GT(ftsa_norm[1], ftsa_norm[0]);
  EXPECT_GT(ftsa_norm[2], ftsa_norm[1]);
  EXPECT_GT(ftsa_norm[2], 1.5);
  // ...while CAFT stays pinned near it.
  for (const double norm : caft_norm) EXPECT_LT(norm, 1.55);
}

TEST(PaperClaims, ContentionMattersMoreAtFineGranularity) {
  // Figures 4-6: the CAFT/FTSA gap shrinks as granularity grows
  // (communication stops dominating).
  const PairedRun fine = run_paired(1, 0.2, 5);
  const PairedRun coarse = run_paired(1, 8.0, 5);
  const double gap_fine = fine.ftsa / fine.caft;
  const double gap_coarse = coarse.ftsa / coarse.caft;
  EXPECT_GT(gap_fine, gap_coarse);
}

TEST(Pipeline, FullStackOnSparseTopologies) {
  // Section 7 extension: the whole stack runs on non-clique interconnects.
  // Fixed routing makes intermediate routers genuine single points of
  // failure (the crash replay models this honestly), so ε-resistance is
  // only guaranteed against crashes of processors that route no committed
  // traffic — the structural checks and that guarded crash are asserted.
  Rng rng(42);
  RandomDagParams dp;
  dp.min_tasks = 25;
  dp.max_tasks = 35;
  const TaskGraph g = random_dag(dp, rng);
  for (int topo = 0; topo < 3; ++topo) {
    Platform platform(topo == 0   ? Topology::ring(8)
                      : topo == 1 ? Topology::star(8)
                                  : Topology::mesh(2, 4));
    CostSynthesisParams cp;
    cp.granularity = 1.0;
    Rng local(7);
    const CostModel costs = synthesize_costs(g, platform, cp, local);
    CaftOptions options;
    options.base = SchedulerOptions{1, CommModelKind::kOnePort};
    options.support_mode = CaftSupportMode::kTransitive;
    const Schedule sched = caft_schedule(g, platform, costs, options);
    const ValidationResult validation = validate_schedule(sched, costs);
    EXPECT_TRUE(validation.ok()) << "topo " << topo << ": "
                                 << validation.summary();

    // Processors that appear as intermediate routers of committed traffic.
    std::vector<bool> routes_traffic(platform.proc_count(), false);
    for (const CommAssignment& c : sched.comms())
      for (const LinkOccupancy& seg : c.times.segments) {
        const LinkDef& def = platform.topology().link(seg.link);
        if (def.from != c.src_proc) routes_traffic[def.from.index()] = true;
        if (def.to != c.dst_proc) routes_traffic[def.to.index()] = true;
      }
    for (const ProcId p : platform.all_procs()) {
      if (routes_traffic[p.index()]) continue;
      const CrashResult result = simulate_crashes(
          sched, costs, CrashScenario::at_zero(platform.proc_count(), {p}));
      EXPECT_TRUE(result.success)
          << "topo " << topo << ": non-router P" << p.value()
          << " crash lost results";
    }
  }
}

TEST(Pipeline, StarHubIsAnHonestSinglePointOfFailure) {
  // Killing the hub of a star cuts every cross-leaf route: messages that
  // would transit it are never delivered — the physical reality fixed
  // routing cannot mask.
  Rng rng(43);
  RandomDagParams dp;
  dp.min_tasks = 25;
  dp.max_tasks = 35;
  const TaskGraph g = random_dag(dp, rng);
  Platform platform(Topology::star(8));
  CostSynthesisParams cp;
  cp.granularity = 1.0;
  Rng local(11);
  const CostModel costs = synthesize_costs(g, platform, cp, local);
  CaftOptions options;
  options.base = SchedulerOptions{1, CommModelKind::kOnePort};
  const Schedule sched = caft_schedule(g, platform, costs, options);

  std::size_t cross_leaf = 0;
  for (const CommAssignment& c : sched.comms())
    if (c.times.segments.size() > 1) ++cross_leaf;
  ASSERT_GT(cross_leaf, 0u);  // the schedule does use hub transit

  const CrashResult none =
      simulate_crashes(sched, costs, CrashScenario::none(8));
  const CrashResult hub_dead = simulate_crashes(
      sched, costs, CrashScenario::at_zero(8, {ProcId(0)}));
  EXPECT_LT(hub_dead.delivered_messages, none.delivered_messages);
}

TEST(Pipeline, UtilizationSaneAcrossAlgorithms) {
  Scenario s = random_setup(5, 10, 1.0);
  const SchedulerOptions options{2, CommModelKind::kOnePort};
  CaftOptions caft_options;
  caft_options.base = options;
  const Schedule sched =
      caft_schedule(s.graph, *s.platform, *s.costs, caft_options);
  const ScheduleStats stats = schedule_stats(sched);
  EXPECT_GT(stats.procs_used, 0u);
  EXPECT_LE(stats.procs_used, 10u);
  EXPECT_GT(stats.mean_utilization, 0.0);
  EXPECT_LE(stats.mean_utilization, 1.0 + 1e-9);
}

TEST(Pipeline, CrashLatencyBoundedByAdversarialWorst) {
  // Any single random crash draw lies within [best, worst] of the
  // exhaustive sweep.
  Scenario s = random_setup(6, 8, 0.8);
  const SchedulerOptions options{1, CommModelKind::kOnePort};
  const Schedule sched = ftsa_schedule(s.graph, *s.platform, *s.costs, options);
  const ResilienceReport report =
      check_resilience_exhaustive(sched, *s.costs, 1);
  ASSERT_TRUE(report.resistant);
  Rng rng(9);
  for (int draw = 0; draw < 5; ++draw) {
    const CrashResult result = simulate_random_crashes(sched, *s.costs, 1, rng);
    ASSERT_TRUE(result.success);
    EXPECT_GE(result.latency, report.best_latency - 1e-9);
    EXPECT_LE(result.latency, report.worst_latency + 1e-9);
  }
}

TEST(Pipeline, BatchingKeepsMessageDiscipline) {
  // CAFT-B inherits the one-to-one machinery: message counts stay in the
  // same regime as sequential CAFT (well below FTSA).
  Scenario s = random_setup(7, 10, 0.5);
  const SchedulerOptions options{2, CommModelKind::kOnePort};
  CaftBatchOptions batch_options;
  batch_options.caft.base = options;
  batch_options.batch_size = 8;
  const Schedule batched =
      caft_batch_schedule(s.graph, *s.platform, *s.costs, batch_options);
  const Schedule ftsa = ftsa_schedule(s.graph, *s.platform, *s.costs, options);
  EXPECT_LT(batched.message_count(), ftsa.message_count());
}

/// End-to-end property: for every algorithm, on every seed, the one-port
/// schedule validates AND its crash replay with no failures reproduces the
/// committed latency AND eps failures never lose results.
class EndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEnd, AllAlgorithmsAllChecks) {
  RandomDagParams dp;
  dp.min_tasks = 20;
  dp.max_tasks = 30;
  Scenario s = random_setup(GetParam(), 6, 1.0, dp);
  const std::size_t eps = 1;
  const SchedulerOptions options{eps, CommModelKind::kOnePort};

  std::vector<Schedule> schedules;
  schedules.push_back(ftsa_schedule(s.graph, *s.platform, *s.costs, options));
  FtbarOptions ftbar_options;
  ftbar_options.base = options;
  schedules.push_back(
      ftbar_schedule(s.graph, *s.platform, *s.costs, ftbar_options));
  CaftOptions caft_options;
  caft_options.base = options;
  caft_options.support_mode = CaftSupportMode::kTransitive;
  schedules.push_back(
      caft_schedule(s.graph, *s.platform, *s.costs, caft_options));

  for (const Schedule& sched : schedules) {
    const ValidationResult validation = validate_schedule(sched, *s.costs);
    EXPECT_TRUE(validation.ok()) << validation.summary();
    const CrashResult clean = simulate_crashes(
        sched, *s.costs, CrashScenario::none(6));
    ASSERT_TRUE(clean.success);
    EXPECT_EQ(clean.order_relaxations, 0u);
    EXPECT_NEAR(clean.latency, sched.zero_crash_latency(), 1e-6);
    const ResilienceReport report =
        check_resilience_exhaustive(sched, *s.costs, eps);
    EXPECT_TRUE(report.resistant)
        << report.failures << "/" << report.scenarios_tested;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEnd,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u, 106u));

}  // namespace
}  // namespace caft
