// Tests for the process-parallel campaign backend (api/session.hpp):
//   - the worker protocol round-trips through run_campaign_worker without
//     any process machinery (work order in, partial result out, records
//     bit-identical to run_campaign_block);
//   - Session summaries under ExecutionPolicy::subprocess are *byte-
//     identical* to in-process ones at 1, 2 and 4 workers (the acceptance
//     gate of the scale-out contract);
//   - worker-failure recovery: a worker that crashes mid-campaign, or one
//     that emits garbage, is retried and the final summary is still
//     bit-identical; a persistently failing worker fails the campaign
//     loudly after the retry budget.
//
// The subprocess tests drive the real campaign_cli binary; ctest exports
// its path as CAFT_CAMPAIGN_CLI (see CMakeLists.txt). When the variable is
// absent (running the test binary by hand), those tests skip.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "campaign/campaign.hpp"
#include "common/check.hpp"
#include "common/subprocess.hpp"
#include "helpers.hpp"
#include "api/campaign_wire.hpp"
#include "obs/obs.hpp"

namespace ftsched {
namespace {

using caft::CampaignSummary;

std::string cli_path() {
  const char* path = std::getenv("CAFT_CAMPAIGN_CLI");
  return path == nullptr ? std::string() : std::string(path);
}

/// A randomized paper-protocol instance (stable platform/costs addresses).
Instance random_instance(std::uint64_t seed, std::size_t procs, double g,
                         std::size_t eps) {
  caft::test::Scenario s = caft::test::random_setup(seed, procs, g);
  return Instance(std::move(s.graph), std::move(s.platform),
                  std::move(s.costs), RunOptions{eps});
}

/// Exact equality that also treats NaN == NaN as identical (a campaign
/// with zero successes reports NaN latency quantiles on both sides).
void expect_double_identical(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b);
}

/// Byte-identity predicate of the scale-out contract: every field a
/// campaign summary reports, compared with exact (bit-for-bit) equality.
void expect_summaries_identical(const CampaignSummary& a,
                                const CampaignSummary& b) {
  EXPECT_EQ(a.sampler, b.sampler);
  EXPECT_EQ(a.replays, b.replays);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.success_ci.low, b.success_ci.low);
  EXPECT_EQ(a.success_ci.high, b.success_ci.high);
  EXPECT_EQ(a.replays_within_eps, b.replays_within_eps);
  EXPECT_EQ(a.successes_within_eps, b.successes_within_eps);
  EXPECT_EQ(a.max_failed, b.max_failed);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.min(), b.latency.min());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.stddev(), b.latency.stddev());
  ASSERT_EQ(a.latency_quantiles.size(), b.latency_quantiles.size());
  for (std::size_t i = 0; i < a.latency_quantiles.size(); ++i) {
    EXPECT_EQ(a.latency_quantiles[i].q, b.latency_quantiles[i].q);
    expect_double_identical(a.latency_quantiles[i].value,
                            b.latency_quantiles[i].value);
  }
  EXPECT_EQ(a.delivered_messages.count(), b.delivered_messages.count());
  EXPECT_EQ(a.delivered_messages.mean(), b.delivered_messages.mean());
  EXPECT_EQ(a.order_relaxations, b.order_relaxations);
  EXPECT_EQ(a.order_deadlocks, b.order_deadlocks);
}

/// Writes an executable wrapper script the coordinator spawns in place of
/// campaign_cli — the fault-injection hook of the recovery tests.
std::string write_script(const caft::ScratchDir& dir, const std::string& name,
                         const std::string& body) {
  const std::string script = dir.file(name);
  {
    std::ofstream out(script);
    out << "#!/bin/sh\n" << body;
  }
  ::chmod(script.c_str(), 0755);
  return script;
}

/// A lifetime campaign spec with successes *and* failures, so the latency
/// stream (mean, quantiles — the order-sensitive folds) is non-trivial.
CampaignSpec lifetime_spec(std::size_t replays) {
  CampaignSpec spec;
  spec.algorithms = {"caft"};
  spec.sampler = SamplerSpec::exponential(0.0001);
  spec.replays = replays;
  spec.seed = 4242;
  return spec;
}

TEST(CampaignWorker, ProtocolRoundTripMatchesDirectBlock) {
  const Instance instance = random_instance(301, 8, 1.0, 1);
  const auto scheduler = SchedulerRegistry::global().make("caft");
  const ScheduleResult scheduled = scheduler->schedule(instance);

  const caft::ScratchDir dir("ftsched-subproc");
  const std::string instance_path = dir.file("instance.txt");
  instance.save(instance_path);

  CampaignWorkOrder order;
  order.instance_path = instance_path;
  order.algorithm = "caft";
  order.first = 37;
  order.count = 113;
  order.spec = lifetime_spec(1000);
  order.spec.request.eps = scheduled.eps;
  order.spec.request.model = scheduled.schedule.model();
  order.expect_makespan = scheduled.makespan;
  order.expect_horizon = scheduled.schedule.horizon();

  std::ostringstream order_doc;
  write_campaign_work_order(order_doc, order);
  std::istringstream in(order_doc.str());
  std::ostringstream out;
  run_campaign_worker(in, out);

  std::istringstream partial_doc(out.str());
  const CampaignPartialResult partial = read_campaign_partial(partial_doc);
  EXPECT_EQ(partial.algorithm, "caft");
  EXPECT_EQ(partial.first, 37u);
  EXPECT_EQ(partial.count, 113u);

  // The worker's records, after one serialize/parse round-trip, must be
  // bit-identical to computing the block directly in this process.
  const auto sampler = order.spec.sampler.build(instance.proc_count());
  caft::CampaignOptions options;
  options.seed = order.spec.seed;
  options.threads = 1;
  const std::vector<caft::ReplayRecord> direct = caft::run_campaign_block(
      scheduled.schedule, instance.costs(), *sampler, options, 37, 113);
  ASSERT_EQ(partial.records.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(partial.records[i].success, direct[i].success);
    EXPECT_EQ(partial.records[i].latency, direct[i].latency);
    EXPECT_EQ(partial.records[i].delivered_messages,
              direct[i].delivered_messages);
    EXPECT_EQ(partial.records[i].failed_count, direct[i].failed_count);
  }
}

TEST(CampaignWorker, RefusesDivergentSchedulePins) {
  const Instance instance = random_instance(302, 8, 1.0, 1);
  const caft::ScratchDir dir("ftsched-subproc");
  const std::string instance_path = dir.file("instance.txt");
  instance.save(instance_path);

  CampaignWorkOrder order;
  order.instance_path = instance_path;
  order.algorithm = "caft";
  order.first = 0;
  order.count = 10;
  order.spec = lifetime_spec(10);
  order.spec.request.eps = 1;
  order.expect_makespan = 1.0;  // no CAFT schedule of this instance has it

  std::ostringstream order_doc;
  write_campaign_work_order(order_doc, order);
  std::istringstream in(order_doc.str());
  std::ostringstream out;
  EXPECT_THROW(run_campaign_worker(in, out), caft::CheckError);
}

TEST(SessionSubprocess, ByteIdenticalAcrossWorkerCounts) {
  const std::string cli = cli_path();
  if (cli.empty()) GTEST_SKIP() << "CAFT_CAMPAIGN_CLI not set (run via ctest)";

  const Instance instance = random_instance(303, 10, 1.0, 1);
  // Mean lifetime of two makespans: successes and failures are both common,
  // so the order-sensitive latency folds (P², Welford) see a real stream.
  const ScheduleResult scheduled =
      SchedulerRegistry::global().make("caft")->schedule(instance);
  CampaignSpec spec = lifetime_spec(400);
  spec.sampler = SamplerSpec::exponential(0.5 / scheduled.makespan);

  const Session in_process{};
  const CampaignReport reference = in_process.evaluate(instance, spec);
  ASSERT_EQ(reference.runs.size(), 1u);
  // A latency stream with both outcomes, or the test proves too little.
  ASSERT_GT(reference.runs[0].summary.successes, 0u);
  ASSERT_LT(reference.runs[0].summary.successes, 400u);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    SessionOptions options;
    options.exec = ExecutionPolicy::subprocess(cli, workers);
    const Session session(options);
    const CampaignReport report = session.evaluate(instance, spec);
    ASSERT_EQ(report.runs.size(), 1u);
    expect_summaries_identical(reference.runs[0].summary,
                               report.runs[0].summary);
  }
}

TEST(SessionSubprocess, TelemetryParityWithInProcess) {
  const std::string cli = cli_path();
  if (cli.empty()) GTEST_SKIP() << "CAFT_CAMPAIGN_CLI not set (run via ctest)";

  const Instance instance = random_instance(310, 8, 1.0, 1);
  CampaignSpec spec = lifetime_spec(400);
  // Dead-from-t0 masks are the memoisable scenario shape (8 masks for
  // k = 1), so the memo telemetry the parity below compares is non-trivial.
  spec.sampler = SamplerSpec::uniform_k(1);

  const Session in_process{};
  const CampaignRun reference = in_process.evaluate(instance, spec).runs[0];

  SessionOptions options;
  options.exec = ExecutionPolicy::subprocess(cli, 2);
  const CampaignRun subprocess =
      Session(options).evaluate(instance, spec).runs[0];

  // Both backends report the same telemetry story (PR 6): every field is
  // populated with identical semantics, and the deterministic fields agree.
  const caft::CampaignTelemetry& a = reference.telemetry;
  const caft::CampaignTelemetry& b = subprocess.telemetry;
  EXPECT_EQ(a.replays, spec.replays);
  EXPECT_EQ(b.replays, spec.replays);
  // The wave executor batches identical scenarios, so the memo sees one
  // probe per distinct-scenario run per wave — lookup and hit counts are a
  // function of the block partitioning, not of the replay count, and the
  // subprocess backend's finer blocks can only probe at least as often as
  // the in-process single wave. (Summary bytes stay partition-independent;
  // only this observational telemetry varies.)
  EXPECT_GT(a.memo_lookups, 0u);
  EXPECT_GT(b.memo_lookups, 0u);
  EXPECT_GE(b.memo_lookups, a.memo_lookups);
  // Workers run the same engine configuration, so the folded snapshot
  // count is per-worker-identical; the coordinator reports the maximum.
  EXPECT_EQ(b.snapshots, a.snapshots);
  EXPECT_GT(a.blocks, 0u);
  EXPECT_GT(b.blocks, 0u);
  EXPECT_GE(a.workers, 1u);
  EXPECT_EQ(b.workers, 2u);
  EXPECT_EQ(a.worker_retries, 0u);
  EXPECT_EQ(b.worker_retries, 0u);
  EXPECT_GT(a.wall_seconds, 0.0);
  EXPECT_GT(b.wall_seconds, 0.0);
}

TEST(SessionSubprocess, EvaluateBatchMatchesInProcess) {
  const std::string cli = cli_path();
  if (cli.empty()) GTEST_SKIP() << "CAFT_CAMPAIGN_CLI not set (run via ctest)";

  std::vector<Instance> instances;
  instances.push_back(random_instance(304, 8, 1.0, 1));
  instances.push_back(random_instance(305, 10, 0.7, 2));
  CampaignSpec spec = lifetime_spec(200);
  spec.algorithms = {"caft", "ftsa"};
  spec.sampler = SamplerSpec::uniform_k(2);

  const Session session{};  // in-process session; override per call below
  const std::vector<CampaignReport> reference =
      session.evaluate_batch(instances, spec);
  const std::vector<CampaignReport> subprocess = session.evaluate_batch(
      instances, spec, ExecutionPolicy::subprocess(cli, 2));

  ASSERT_EQ(reference.size(), subprocess.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(reference[i].runs.size(), subprocess[i].runs.size());
    for (std::size_t r = 0; r < reference[i].runs.size(); ++r) {
      EXPECT_EQ(reference[i].runs[r].algorithm,
                subprocess[i].runs[r].algorithm);
      expect_summaries_identical(reference[i].runs[r].summary,
                                 subprocess[i].runs[r].summary);
    }
  }
}

TEST(SessionSubprocess, EvaluateBatchDedupesEqualInstanceSaves) {
  const std::string cli = cli_path();
  if (cli.empty()) GTEST_SKIP() << "CAFT_CAMPAIGN_CLI not set (run via ctest)";

  // Three instances, two of them byte-identical (same generator seed):
  // the batch must serialize two files, not three, and the duplicate must
  // still campaign correctly off the shared file — across two algorithms,
  // so the shared path is reused within an evaluate as well.
  std::vector<Instance> instances;
  instances.push_back(random_instance(320, 8, 1.0, 1));
  instances.push_back(random_instance(321, 8, 1.0, 1));
  instances.push_back(random_instance(320, 8, 1.0, 1));  // dup of [0]
  CampaignSpec spec = lifetime_spec(100);
  spec.algorithms = {"caft", "ftsa"};
  spec.sampler = SamplerSpec::uniform_k(1);

  obs::Registry& registry = obs::Registry::global();
  registry.set_enabled(true);
  const std::uint64_t saves_before =
      registry.snapshot().counter_value("campaign.instance.saves");
  const Session session{};
  const std::vector<CampaignReport> batch = session.evaluate_batch(
      instances, spec, ExecutionPolicy::subprocess(cli, 2));
  const std::uint64_t saves_after =
      registry.snapshot().counter_value("campaign.instance.saves");
  registry.set_enabled(false);

  // Two distinct contents -> exactly two saves for three instances.
  EXPECT_EQ(saves_after - saves_before, 2u);

  // The deduped instance's report is byte-identical to its twin's.
  ASSERT_EQ(batch.size(), 3u);
  ASSERT_EQ(batch[0].runs.size(), batch[2].runs.size());
  for (std::size_t r = 0; r < batch[0].runs.size(); ++r) {
    EXPECT_EQ(batch[0].runs[r].algorithm, batch[2].runs[r].algorithm);
    expect_summaries_identical(batch[0].runs[r].summary,
                               batch[2].runs[r].summary);
  }
}

TEST(SessionSubprocess, RetriesCrashedWorkerAndStaysIdentical) {
  const std::string cli = cli_path();
  if (cli.empty()) GTEST_SKIP() << "CAFT_CAMPAIGN_CLI not set (run via ctest)";

  const Instance instance = random_instance(306, 8, 1.0, 1);
  const CampaignSpec spec = lifetime_spec(300);
  const Session in_process{};
  const CampaignSummary reference =
      in_process.evaluate(instance, spec).runs[0].summary;

  const caft::ScratchDir dir("ftsched-subproc");
  // The first invocation to claim the poison marker dies mid-campaign with
  // a nonzero status (a killed/crashed worker, as the coordinator sees it);
  // every later invocation behaves normally.
  const std::string poison = dir.file("poison");
  const std::string script = write_script(
      dir, "flaky_worker.sh",
      "if rm \"" + poison + "\" 2>/dev/null; then\n"
      "  echo 'injected worker crash' >&2\n"
      "  exit 7\n"
      "fi\n"
      "exec \"" + cli + "\" \"$@\"\n");
  { std::ofstream marker(poison); }

  SessionOptions options;
  options.exec = ExecutionPolicy::subprocess(script, 2);
  const Session session(options);
  const CampaignReport report = session.evaluate(instance, spec);
  expect_summaries_identical(reference, report.runs[0].summary);
  EXPECT_FALSE(std::filesystem::exists(poison));  // the crash did happen
}

TEST(SessionSubprocess, RetriesPoisonedOutputAndStaysIdentical) {
  const std::string cli = cli_path();
  if (cli.empty()) GTEST_SKIP() << "CAFT_CAMPAIGN_CLI not set (run via ctest)";

  const Instance instance = random_instance(307, 8, 1.0, 1);
  const CampaignSpec spec = lifetime_spec(300);
  const Session in_process{};
  const CampaignSummary reference =
      in_process.evaluate(instance, spec).runs[0].summary;

  const caft::ScratchDir dir("ftsched-subproc");
  // The poisoned invocation exits 0 but emits garbage instead of a partial
  // result — the strict wire parser must reject it and the coordinator
  // must retry, never fold it.
  const std::string poison = dir.file("poison");
  const std::string script = write_script(
      dir, "poisoned_worker.sh",
      "if rm \"" + poison + "\" 2>/dev/null; then\n"
      "  echo 'caft-campaign-partial v1'\n"
      "  echo 'this is not a record'\n"
      "  exit 0\n"
      "fi\n"
      "exec \"" + cli + "\" \"$@\"\n");
  { std::ofstream marker(poison); }

  SessionOptions options;
  options.exec = ExecutionPolicy::subprocess(script, 2);
  const Session session(options);
  const CampaignReport report = session.evaluate(instance, spec);
  expect_summaries_identical(reference, report.runs[0].summary);
  EXPECT_FALSE(std::filesystem::exists(poison));
}

TEST(SessionSubprocess, StreamedFoldBoundedByReorderWindow) {
  const std::string cli = cli_path();
  if (cli.empty()) GTEST_SKIP() << "CAFT_CAMPAIGN_CLI not set (run via ctest)";

  const Instance instance = random_instance(311, 8, 1.0, 1);
  const CampaignSpec spec = lifetime_spec(600);
  const Session in_process{};
  const CampaignSummary reference =
      in_process.evaluate(instance, spec).runs[0].summary;

  // Delaying wrapper: the first invocation to claim the marker sleeps half
  // a second, so later blocks complete first and must buffer in the
  // reorder window until the straggler folds — the exact pattern that made
  // the old coordinator's memory O(replays).
  const caft::ScratchDir dir("ftsched-subproc");
  const std::string script = write_script(
      dir, "straggler_worker.sh",
      "if mkdir \"" + dir.file("straggler-claimed") + "\" 2>/dev/null; then\n"
      "  sleep 0.5\n"
      "fi\n"
      "exec \"" + cli + "\" \"$@\"\n");

  SessionOptions options;
  options.exec = ExecutionPolicy::subprocess(script, 4);
  options.exec.block_replays = 30;    // 20 blocks
  options.exec.reorder_window = 3;    // far fewer than blocks
  const Session session(options);

  // The peak-window gauge is the coordinator's own measurement of how many
  // blocks it ever buffered; arm the registry to read it back.
  obs::Registry& registry = obs::Registry::global();
  registry.set_enabled(true);
  const CampaignReport report = session.evaluate(instance, spec);
  const obs::MetricsSnapshot metrics = registry.snapshot();
  registry.set_enabled(false);

  // Byte-identity survives the straggler-induced reordering...
  expect_summaries_identical(reference, report.runs[0].summary);
  // ...and coordinator memory stayed bounded by the window, not by the
  // campaign: at most reorder_window blocks buffered, ever.
  const double peak = metrics.gauge_value("campaign.fold.window_peak");
  EXPECT_GE(peak, 1.0);
  EXPECT_LE(peak, 3.0);
  EXPECT_EQ(report.runs[0].telemetry.fold_window_peak,
            static_cast<std::size_t>(peak));
  // The straggler forced at least one block to wait for the fold frontier.
  EXPECT_GE(metrics.counter_value("campaign.fold.blocks_buffered"), 1u);
  EXPECT_EQ(report.runs[0].telemetry.blocks, 20u);
}

TEST(SessionSubprocess, OutOfOrderCompletionStaysIdenticalAcrossWorkers) {
  const std::string cli = cli_path();
  if (cli.empty()) GTEST_SKIP() << "CAFT_CAMPAIGN_CLI not set (run via ctest)";

  const Instance instance = random_instance(312, 10, 1.0, 1);
  const ScheduleResult scheduled =
      SchedulerRegistry::global().make("caft")->schedule(instance);
  CampaignSpec spec = lifetime_spec(400);
  spec.sampler = SamplerSpec::exponential(0.5 / scheduled.makespan);

  const Session in_process{};
  const CampaignSummary reference =
      in_process.evaluate(instance, spec).runs[0].summary;

  // Jittering wrapper: each worker invocation sleeps 0–0.2 s depending on
  // its pid, so block completion order is scrambled differently on every
  // run — the streamed fold must reproduce the canonical summary from any
  // completion order, at any worker count, with a tight window.
  const caft::ScratchDir dir("ftsched-subproc");
  const std::string script = write_script(dir, "jitter_worker.sh",
                                          "sleep 0.$(( $$ % 3 ))\n"
                                          "exec \"" + cli + "\" \"$@\"\n");

  for (const std::size_t workers : {1u, 2u, 4u}) {
    SessionOptions options;
    options.exec = ExecutionPolicy::subprocess(script, workers);
    options.exec.block_replays = 50;  // 8 blocks
    options.exec.reorder_window = 2;
    const Session session(options);
    const CampaignReport report = session.evaluate(instance, spec);
    expect_summaries_identical(reference, report.runs[0].summary);
    EXPECT_LE(report.runs[0].telemetry.fold_window_peak, 2u);
  }
}

TEST(SessionSubprocess, ReorderWindowOfOneSerializesTheFold) {
  const std::string cli = cli_path();
  if (cli.empty()) GTEST_SKIP() << "CAFT_CAMPAIGN_CLI not set (run via ctest)";

  const Instance instance = random_instance(313, 8, 1.0, 1);
  const CampaignSpec spec = lifetime_spec(200);
  const Session in_process{};
  const CampaignSummary reference =
      in_process.evaluate(instance, spec).runs[0].summary;

  SessionOptions options;
  options.exec = ExecutionPolicy::subprocess(cli, 4);
  options.exec.block_replays = 25;  // 8 blocks
  options.exec.reorder_window = 1;  // degenerate: one block in flight
  const Session session(options);
  const CampaignReport report = session.evaluate(instance, spec);
  expect_summaries_identical(reference, report.runs[0].summary);
  EXPECT_EQ(report.runs[0].telemetry.fold_window_peak, 1u);
}

TEST(SessionSubprocess, EarlyStopFoldsAContiguousCanonicalPrefix) {
  const std::string cli = cli_path();
  if (cli.empty()) GTEST_SKIP() << "CAFT_CAMPAIGN_CLI not set (run via ctest)";

  const Instance instance = random_instance(314, 8, 1.0, 1);
  CampaignSpec spec = lifetime_spec(2000);
  spec.target_ci_width = 0.15;  // reached after a few hundred replays

  SessionOptions options;
  options.exec = ExecutionPolicy::subprocess(cli, 2);
  options.exec.block_replays = 50;
  const Session session(options);
  const CampaignRun run = session.evaluate(instance, spec).runs[0];

  // Stopped early, on a block boundary (claims are whole blocks)...
  const std::size_t folded = run.summary.replays;
  EXPECT_LT(folded, spec.replays);
  EXPECT_GE(folded, 50u);
  EXPECT_EQ(folded % 50, 0u);
  EXPECT_EQ(run.telemetry.replays, folded);
  // ...and the folded set is the contiguous canonical prefix [0, folded):
  // an in-process campaign of exactly that many replays is byte-identical.
  // (This is what makes early stopping a *truncated* campaign rather than
  // a subsampled one.)
  CampaignSpec prefix = lifetime_spec(folded);
  const CampaignSummary reference =
      Session{}.evaluate(instance, prefix).runs[0].summary;
  expect_summaries_identical(reference, run.summary);
}

TEST(SessionSubprocess, FailsLoudlyAfterRetryBudget) {
  const Instance instance = random_instance(308, 8, 1.0, 1);
  const CampaignSpec spec = lifetime_spec(100);

  const caft::ScratchDir dir("ftsched-subproc");
  const std::string script =
      write_script(dir, "dead_worker.sh", "exit 3\n");

  SessionOptions options;
  options.exec = ExecutionPolicy::subprocess(script, 2);
  options.exec.max_retries = 1;
  const Session session(options);
  try {
    (void)session.evaluate(instance, spec);
    FAIL() << "a persistently failing worker must fail the campaign";
  } catch (const caft::CheckError& error) {
    // The message names the block and the observed failure.
    EXPECT_NE(std::string(error.what()).find("exited with status 3"),
              std::string::npos)
        << error.what();
  }
}

TEST(SessionSubprocess, RequiresWorkerCommand) {
  const Instance instance = random_instance(309, 8, 1.0, 1);
  SessionOptions options;
  options.exec.mode = ExecutionPolicy::Mode::kSubprocess;  // no command
  const Session session(options);
  EXPECT_THROW((void)session.evaluate(instance, lifetime_spec(10)),
               caft::CheckError);
}

}  // namespace
}  // namespace ftsched
