// Tests for the campaign wire format (api/campaign_wire.hpp): bit-exact
// round-trip of work orders and partial results (hexfloat doubles, inf/nan,
// optional request overrides), and strict rejection of malformed or
// internally inconsistent documents — a poisoned worker must be *detected*,
// never folded.
#include "api/campaign_wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace ftsched {
namespace {

using caft::CheckError;
using caft::ReplayRecord;

CampaignWorkOrder sample_order() {
  CampaignWorkOrder order;
  order.instance_path = "/tmp/some dir/instance.txt";  // spaces survive
  order.algorithm = "caft-batch";
  order.first = 1024;
  order.count = 311;
  order.spec.algorithms = {"caft-batch"};
  order.spec.replays = 100000;
  order.spec.seed = 0xDEADBEEFCAFEF00DULL;
  order.spec.quantiles = {0.1, 0.5, 0.999};  // 0.1/0.999 are inexact in binary
  order.spec.theta_buckets = 64;
  order.spec.exact = false;
  order.spec.sampler = SamplerSpec::weibull(1.7, 940.25, 1e6);
  order.spec.request.eps = 3;
  order.spec.request.model = caft::CommModelKind::kMacroDataflow;
  order.spec.request.validate = false;
  order.spec.request.support_mode = caft::CaftSupportMode::kDirect;
  order.spec.request.one_to_one = false;
  order.spec.request.batch_size = 17;
  order.spec.request.minimize_start_time = false;
  order.threads = 3;
  order.engine = caft::CampaignEngine::kNaive;
  order.memo = caft::CampaignMemo::kScratch;
  order.block = 512;
  order.memo_capacity = 1 << 10;
  order.memo_shards = 4;
  order.adaptive_snapshots = false;
  order.expect_makespan = 123.4567891011;
  order.expect_horizon = 200.000000000001;
  return order;
}

std::string to_text(const CampaignWorkOrder& order) {
  std::ostringstream os;
  write_campaign_work_order(os, order);
  return os.str();
}

TEST(CampaignWire, WorkOrderRoundTripsBitExactly) {
  const CampaignWorkOrder order = sample_order();
  std::istringstream is(to_text(order));
  const CampaignWorkOrder back = read_campaign_work_order(is);

  EXPECT_EQ(back.instance_path, order.instance_path);
  EXPECT_EQ(back.algorithm, order.algorithm);
  EXPECT_EQ(back.first, order.first);
  EXPECT_EQ(back.count, order.count);
  EXPECT_EQ(back.spec.replays, order.spec.replays);
  EXPECT_EQ(back.spec.seed, order.spec.seed);
  ASSERT_EQ(back.spec.quantiles.size(), order.spec.quantiles.size());
  for (std::size_t i = 0; i < order.spec.quantiles.size(); ++i)
    EXPECT_EQ(back.spec.quantiles[i], order.spec.quantiles[i]);  // bit-exact
  EXPECT_EQ(back.spec.theta_buckets, order.spec.theta_buckets);
  EXPECT_EQ(back.spec.exact, order.spec.exact);
  EXPECT_EQ(back.spec.sampler.kind, order.spec.sampler.kind);
  EXPECT_EQ(back.spec.sampler.failures, order.spec.sampler.failures);
  EXPECT_EQ(back.spec.sampler.rate, order.spec.sampler.rate);
  EXPECT_EQ(back.spec.sampler.shape, order.spec.sampler.shape);
  EXPECT_EQ(back.spec.sampler.scale, order.spec.sampler.scale);
  EXPECT_EQ(back.spec.sampler.horizon, order.spec.sampler.horizon);
  EXPECT_EQ(back.spec.sampler.theta_lo, order.spec.sampler.theta_lo);
  EXPECT_EQ(back.spec.sampler.theta_hi, order.spec.sampler.theta_hi);
  EXPECT_EQ(back.spec.sampler.group_size, order.spec.sampler.group_size);
  EXPECT_EQ(back.spec.sampler.group_prob, order.spec.sampler.group_prob);
  ASSERT_TRUE(back.spec.request.eps.has_value());
  EXPECT_EQ(*back.spec.request.eps, 3u);
  ASSERT_TRUE(back.spec.request.model.has_value());
  EXPECT_EQ(*back.spec.request.model, caft::CommModelKind::kMacroDataflow);
  EXPECT_EQ(back.spec.request.validate, false);
  EXPECT_EQ(back.spec.request.support_mode, caft::CaftSupportMode::kDirect);
  EXPECT_EQ(back.spec.request.one_to_one, false);
  EXPECT_EQ(back.spec.request.batch_size, 17u);
  EXPECT_EQ(back.spec.request.minimize_start_time, false);
  EXPECT_EQ(back.threads, order.threads);
  EXPECT_EQ(back.engine, order.engine);
  EXPECT_EQ(back.memo, order.memo);
  EXPECT_EQ(back.block, order.block);
  EXPECT_EQ(back.memo_capacity, order.memo_capacity);
  EXPECT_EQ(back.memo_shards, order.memo_shards);
  EXPECT_EQ(back.adaptive_snapshots, order.adaptive_snapshots);
  EXPECT_EQ(back.expect_makespan, order.expect_makespan);  // bit-exact
  EXPECT_EQ(back.expect_horizon, order.expect_horizon);
}

TEST(CampaignWire, WorkOrderRoundTripsInfinityAndUnsetOverrides) {
  CampaignWorkOrder order = sample_order();
  order.spec.sampler =
      SamplerSpec::exponential(0.001);  // horizon defaults to +inf
  order.spec.request.eps.reset();
  order.spec.request.model.reset();
  order.expect_makespan = std::numeric_limits<double>::quiet_NaN();
  order.expect_horizon = std::numeric_limits<double>::quiet_NaN();

  std::istringstream is(to_text(order));
  const CampaignWorkOrder back = read_campaign_work_order(is);
  EXPECT_TRUE(std::isinf(back.spec.sampler.horizon));
  EXPECT_GT(back.spec.sampler.horizon, 0.0);
  EXPECT_FALSE(back.spec.request.eps.has_value());
  EXPECT_FALSE(back.spec.request.model.has_value());
  EXPECT_TRUE(std::isnan(back.expect_makespan));
  EXPECT_TRUE(std::isnan(back.expect_horizon));
}

TEST(CampaignWire, WorkOrderRejectsMalformedDocuments) {
  const std::string good = to_text(sample_order());

  {  // wrong magic
    std::istringstream is("caft-campaign-partial v1\nend\n");
    EXPECT_THROW((void)read_campaign_work_order(is), CheckError);
  }
  {  // truncated (no end)
    std::istringstream is(good.substr(0, good.size() - 4));
    EXPECT_THROW((void)read_campaign_work_order(is), CheckError);
  }
  {  // unknown key
    std::string doc = good;
    doc.insert(doc.find("end\n"), "mystery 42\n");
    std::istringstream is(doc);
    EXPECT_THROW((void)read_campaign_work_order(is), CheckError);
  }
  {  // an essential line missing: no block
    CampaignWorkOrder order = sample_order();
    std::string doc = to_text(order);
    const std::size_t at = doc.find("block ");
    doc.erase(at, doc.find('\n', at) - at + 1);
    std::istringstream is(doc);
    EXPECT_THROW((void)read_campaign_work_order(is), CheckError);
  }
  {  // empty block
    CampaignWorkOrder order = sample_order();
    order.count = 0;
    std::istringstream is(to_text(order));
    EXPECT_THROW((void)read_campaign_work_order(is), CheckError);
  }
}

TEST(CampaignWire, ReadersNameVersionSkewExplicitly) {
  // A v2 document is not "corruption": the reader must tell the peer it
  // speaks v1 so a future writer is told to downgrade, not to debug bytes.
  const std::string good = to_text(sample_order());
  std::string skewed = good;
  skewed.replace(0, skewed.find('\n'), "caft-campaign-work v2");
  {
    std::istringstream is(skewed);
    try {
      (void)read_campaign_work_order(is);
      FAIL() << "expected CheckError";
    } catch (const CheckError& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find("unsupported document version"), std::string::npos);
      EXPECT_NE(what.find("caft-campaign-work v2"), std::string::npos);
      EXPECT_NE(what.find("speaks v1"), std::string::npos);
    }
  }
  {  // a *wrong* magic still reads as corruption, not as version skew
    std::istringstream is("caft-campaign-partial v1\nend\n");
    try {
      (void)read_campaign_work_order(is);
      FAIL() << "expected CheckError";
    } catch (const CheckError& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find("bad magic line"), std::string::npos);
      EXPECT_EQ(what.find("unsupported document version"), std::string::npos);
    }
  }
  // The shared helper behind every reader: exact match passes, any other
  // version of the *same* magic is skew, anything else is a bad magic.
  EXPECT_NO_THROW(wire::check_magic_line("caft-x v1", "caft-x"));
  EXPECT_THROW(wire::check_magic_line("caft-x v2", "caft-x"), CheckError);
  EXPECT_THROW(wire::check_magic_line("caft-x v10", "caft-x"), CheckError);
  EXPECT_THROW(wire::check_magic_line("caft-x v1 ", "caft-x"), CheckError);
  EXPECT_THROW(wire::check_magic_line("caft-y v1", "caft-x"), CheckError);
}

TEST(CampaignWire, PartialReaderRejectsVersionSkew) {
  CampaignPartialReader reader;
  const std::string doc = "caft-campaign-partial v2\nend\n";
  reader.feed(doc.data(), doc.size());
  EXPECT_TRUE(reader.failed());
  try {
    (void)reader.take();
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unsupported document version"), std::string::npos);
    EXPECT_NE(what.find("speaks v1"), std::string::npos);
  }
}

CampaignPartialResult sample_partial() {
  CampaignPartialResult partial;
  partial.algorithm = "ftsa";
  partial.first = 12;
  partial.count = 3;
  ReplayRecord success;
  success.success = true;
  success.latency = 417.123456789;
  success.delivered_messages = 90;
  success.order_relaxations = 2;
  success.failed_count = 1;
  ReplayRecord failure;
  failure.success = false;
  failure.order_deadlock = true;
  failure.latency = std::numeric_limits<double>::infinity();
  failure.delivered_messages = 4;
  failure.failed_count = 9;
  partial.records = {success, failure, success};
  partial.successes = 2;
  partial.telemetry.memo_lookups = 100;
  partial.telemetry.memo_hits = 61;
  partial.telemetry.memo_evictions = 3;
  partial.telemetry.memo_entries = 39;
  partial.telemetry.snapshots = 17;
  return partial;
}

std::string to_text(const CampaignPartialResult& partial) {
  std::ostringstream os;
  write_campaign_partial(os, partial);
  return os.str();
}

TEST(CampaignWire, PartialResultRoundTripsBitExactly) {
  const CampaignPartialResult partial = sample_partial();
  std::istringstream is(to_text(partial));
  const CampaignPartialResult back = read_campaign_partial(is);

  EXPECT_EQ(back.algorithm, partial.algorithm);
  EXPECT_EQ(back.first, partial.first);
  EXPECT_EQ(back.count, partial.count);
  EXPECT_EQ(back.successes, partial.successes);
  ASSERT_EQ(back.records.size(), partial.records.size());
  for (std::size_t i = 0; i < partial.records.size(); ++i) {
    EXPECT_EQ(back.records[i].success, partial.records[i].success);
    EXPECT_EQ(back.records[i].order_deadlock,
              partial.records[i].order_deadlock);
    EXPECT_EQ(back.records[i].latency, partial.records[i].latency);
    EXPECT_EQ(back.records[i].delivered_messages,
              partial.records[i].delivered_messages);
    EXPECT_EQ(back.records[i].order_relaxations,
              partial.records[i].order_relaxations);
    EXPECT_EQ(back.records[i].failed_count, partial.records[i].failed_count);
  }
  EXPECT_EQ(back.telemetry.memo_lookups, partial.telemetry.memo_lookups);
  EXPECT_EQ(back.telemetry.memo_hits, partial.telemetry.memo_hits);
  EXPECT_EQ(back.telemetry.memo_evictions,
            partial.telemetry.memo_evictions);
  EXPECT_EQ(back.telemetry.memo_entries, partial.telemetry.memo_entries);
  EXPECT_EQ(back.telemetry.snapshots, partial.telemetry.snapshots);
}

TEST(CampaignWire, PartialTimingLineIsOptionalAndRoundTripsBitExactly) {
  {  // absent on the wire -> absent after parsing (v1 workers stay foldable)
    const CampaignPartialResult partial = sample_partial();
    const std::string doc = to_text(partial);
    EXPECT_EQ(doc.find("timing "), std::string::npos);
    std::istringstream is(doc);
    EXPECT_FALSE(read_campaign_partial(is).timing.present);
  }
  {  // present -> hexfloat round-trip is bit-exact
    CampaignPartialResult partial = sample_partial();
    partial.timing.present = true;
    partial.timing.wall_seconds = 1.2345678901234567;
    partial.timing.schedule_seconds = 0.1;  // inexact in binary
    partial.timing.replay_seconds = 1.1345678901234567;
    const std::string doc = to_text(partial);
    EXPECT_NE(doc.find("timing "), std::string::npos);
    std::istringstream is(doc);
    const CampaignPartialResult back = read_campaign_partial(is);
    ASSERT_TRUE(back.timing.present);
    EXPECT_EQ(back.timing.wall_seconds, partial.timing.wall_seconds);
    EXPECT_EQ(back.timing.schedule_seconds, partial.timing.schedule_seconds);
    EXPECT_EQ(back.timing.replay_seconds, partial.timing.replay_seconds);
  }
  {  // a malformed timing line is rejected, not defaulted
    CampaignPartialResult partial = sample_partial();
    partial.timing.present = true;
    partial.timing.wall_seconds = 2.0;
    std::string doc = to_text(partial);
    const std::size_t at = doc.find("timing ");
    ASSERT_NE(at, std::string::npos);
    doc.replace(at, doc.find('\n', at) - at, "timing 0x1p+1 zz");
    std::istringstream is(doc);
    EXPECT_THROW((void)read_campaign_partial(is), CheckError);
  }
}

TEST(CampaignWire, PartialRejectsInconsistentDocuments) {
  {  // record list shorter than the block
    CampaignPartialResult partial = sample_partial();
    partial.count = 5;
    std::istringstream is(to_text(partial));
    EXPECT_THROW((void)read_campaign_partial(is), CheckError);
  }
  {  // counts line lies about successes
    std::string doc = to_text(sample_partial());
    const std::size_t at = doc.find("counts 3 2");
    ASSERT_NE(at, std::string::npos);
    doc.replace(at, 10, "counts 3 1");
    std::istringstream is(doc);
    EXPECT_THROW((void)read_campaign_partial(is), CheckError);
  }
  {  // truncated record list
    std::string doc = to_text(sample_partial());
    const std::size_t at = doc.rfind("r ");
    doc.erase(at);
    std::istringstream is(doc);
    EXPECT_THROW((void)read_campaign_partial(is), CheckError);
  }
  {  // garbage where a worker answer should be
    std::istringstream is("Segmentation fault (core dumped)\n");
    EXPECT_THROW((void)read_campaign_partial(is), CheckError);
  }
  {  // malformed latency
    std::string doc = to_text(sample_partial());
    const std::size_t at = doc.find("0x");
    ASSERT_NE(at, std::string::npos);
    doc.replace(at, 2, "zz");
    std::istringstream is(doc);
    EXPECT_THROW((void)read_campaign_partial(is), CheckError);
  }
}

TEST(CampaignWire, PartialRejectsCorruptBlockRanges) {
  {  // first + count overflows size_t — would wrap every range computation
    std::string doc = to_text(sample_partial());
    const std::size_t at = doc.find("block 12 3");
    ASSERT_NE(at, std::string::npos);
    doc.replace(at, 10,
                "block 18446744073709551615 2");  // SIZE_MAX + 2 wraps
    std::istringstream is(doc);
    EXPECT_THROW((void)read_campaign_partial(is), CheckError);
  }
  {  // records header disagrees with the echoed block count — must be
     // rejected *before* any records are accepted (a corrupt huge count
     // must never become a giant reserve, a short one a silent underfold)
    std::string doc = to_text(sample_partial());
    const std::size_t at = doc.find("records 3");
    ASSERT_NE(at, std::string::npos);
    doc.replace(at, 9, "records 2");
    std::istringstream is(doc);
    EXPECT_THROW((void)read_campaign_partial(is), CheckError);
  }
  {  // records header before any block range: nothing to validate against
    std::istringstream is(
        "caft-campaign-partial v1\nalgorithm caft\nrecords 1\n"
        "r 1 0 0x1p+0 1 0 0\nblock 0 1\ncounts 1 1\nend\n");
    EXPECT_THROW((void)read_campaign_partial(is), CheckError);
  }
}

TEST(CampaignWire, IncrementalReaderMatchesWholeDocumentReader) {
  CampaignPartialResult partial = sample_partial();
  partial.timing.present = true;
  partial.timing.wall_seconds = 0.25;
  partial.timing.schedule_seconds = 0.0625;
  partial.timing.replay_seconds = 0.1875;
  const std::string doc = to_text(partial);

  // Feed the document at every chunk size from 1 byte up — mid-line and
  // mid-token splits included — and require the identical parse.
  for (std::size_t chunk = 1; chunk <= doc.size(); ++chunk) {
    CampaignPartialReader reader;
    for (std::size_t at = 0; at < doc.size(); at += chunk)
      reader.feed(doc.data() + at, std::min(chunk, doc.size() - at));
    ASSERT_FALSE(reader.failed()) << "chunk size " << chunk;
    const CampaignPartialResult back = reader.take();
    ASSERT_EQ(back.records.size(), partial.records.size());
    EXPECT_EQ(back.first, partial.first);
    EXPECT_EQ(back.count, partial.count);
    EXPECT_EQ(back.successes, partial.successes);
    for (std::size_t i = 0; i < partial.records.size(); ++i)
      EXPECT_EQ(back.records[i].latency, partial.records[i].latency);
    EXPECT_TRUE(back.timing.present);
    EXPECT_EQ(back.timing.replay_seconds, partial.timing.replay_seconds);
  }
}

TEST(CampaignWire, IncrementalReaderAcceptsStreamedFooterLastLayout) {
  // The streaming worker writes header + records first, the mergeable fold
  // state last; the reader must parse that layout identically.
  const CampaignPartialResult partial = sample_partial();
  std::ostringstream os;
  write_campaign_partial_header(os, partial.algorithm, partial.first,
                                partial.count);
  write_campaign_partial_records(os, partial.records.data(), 2);
  write_campaign_partial_records(os, partial.records.data() + 2, 1);
  write_campaign_partial_footer(os, partial.records.size(),
                                partial.successes, partial.telemetry,
                                partial.timing);
  const std::string doc = os.str();
  EXPECT_LT(doc.find("records 3"), doc.find("counts 3"));

  std::istringstream is(doc);
  const CampaignPartialResult back = read_campaign_partial(is);
  EXPECT_EQ(back.algorithm, partial.algorithm);
  EXPECT_EQ(back.first, partial.first);
  EXPECT_EQ(back.count, partial.count);
  EXPECT_EQ(back.successes, partial.successes);
  ASSERT_EQ(back.records.size(), partial.records.size());
  for (std::size_t i = 0; i < partial.records.size(); ++i)
    EXPECT_EQ(back.records[i].latency, partial.records[i].latency);
  EXPECT_EQ(back.telemetry.memo_lookups, partial.telemetry.memo_lookups);
}

TEST(CampaignWire, IncrementalReaderLatchesErrorsInsteadOfThrowing) {
  CampaignPartialReader reader;
  const std::string garbage = "Segmentation fault (core dumped)\n";
  reader.feed(garbage.data(), garbage.size());  // must not throw
  EXPECT_TRUE(reader.failed());
  // Further input after the latch is ignored, not parsed.
  const std::string more = "caft-campaign-partial v1\n";
  reader.feed(more.data(), more.size());
  EXPECT_THROW((void)reader.take(), CheckError);
}

TEST(CampaignWire, IncrementalReaderRejectsMidLineTruncation) {
  const std::string doc = to_text(sample_partial());
  const std::size_t cut = doc.rfind("r ") + 5;  // mid-record, no newline
  CampaignPartialReader reader;
  reader.feed(doc.data(), cut);
  EXPECT_THROW((void)reader.take(), CheckError);
}

}  // namespace
}  // namespace ftsched
