// Tests for DAG analyses: topological order, levels, critical path,
// reachability (dag/analysis).
#include "dag/analysis.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dag/generators.hpp"

namespace caft {
namespace {

/// a -> b -> d, a -> c -> d with unit node weights and edge weights 2.
TaskGraph diamond4(TaskId& a, TaskId& b, TaskId& c, TaskId& d) {
  TaskGraph g;
  a = g.add_task("a");
  b = g.add_task("b");
  c = g.add_task("c");
  d = g.add_task("d");
  g.add_edge(a, b, 1.0);
  g.add_edge(a, c, 1.0);
  g.add_edge(b, d, 1.0);
  g.add_edge(c, d, 1.0);
  return g;
}

DagWeights unit_weights(const TaskGraph& g, double node, double edge) {
  DagWeights w;
  w.node.assign(g.task_count(), node);
  w.edge.assign(g.edge_count(), edge);
  return w;
}

TEST(TopologicalOrder, RespectsEdges) {
  Rng rng(5);
  const TaskGraph g = random_dag(RandomDagParams{}, rng);
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), g.task_count());
  std::vector<std::size_t> position(g.task_count());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i].index()] = i;
  for (const Edge& e : g.edges())
    EXPECT_LT(position[e.src.index()], position[e.dst.index()]);
}

TEST(TopologicalOrder, ThrowsOnCycle) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  g.add_edge(a, b, 1.0);
  g.add_edge(b, a, 1.0);
  EXPECT_THROW(topological_order(g), CheckError);
}

TEST(TopologicalOrder, EmptyGraph) {
  EXPECT_TRUE(topological_order(TaskGraph{}).empty());
}

TEST(Levels, DiamondTopLevels) {
  TaskId a, b, c, d;
  const TaskGraph g = diamond4(a, b, c, d);
  const auto tl = top_levels(g, unit_weights(g, 1.0, 2.0));
  EXPECT_DOUBLE_EQ(tl[a.index()], 0.0);
  EXPECT_DOUBLE_EQ(tl[b.index()], 3.0);  // 1 (a) + 2 (edge)
  EXPECT_DOUBLE_EQ(tl[c.index()], 3.0);
  EXPECT_DOUBLE_EQ(tl[d.index()], 6.0);  // a + e + b + e
}

TEST(Levels, DiamondBottomLevels) {
  TaskId a, b, c, d;
  const TaskGraph g = diamond4(a, b, c, d);
  const auto bl = bottom_levels(g, unit_weights(g, 1.0, 2.0));
  EXPECT_DOUBLE_EQ(bl[d.index()], 1.0);  // own weight only
  EXPECT_DOUBLE_EQ(bl[b.index()], 4.0);  // 1 + 2 + 1
  EXPECT_DOUBLE_EQ(bl[a.index()], 7.0);  // 1 + 2 + 1 + 2 + 1
}

TEST(Levels, EntryTopLevelZeroExitBottomIsOwnWeight) {
  Rng rng(11);
  const TaskGraph g = random_dag(RandomDagParams{}, rng);
  DagWeights w;
  w.node.assign(g.task_count(), 0.0);
  w.edge.assign(g.edge_count(), 0.0);
  for (std::size_t i = 0; i < g.task_count(); ++i)
    w.node[i] = 1.0 + static_cast<double>(i % 7);
  const auto tl = top_levels(g, w);
  const auto bl = bottom_levels(g, w);
  for (const TaskId t : g.entry_tasks()) EXPECT_DOUBLE_EQ(tl[t.index()], 0.0);
  for (const TaskId t : g.exit_tasks())
    EXPECT_DOUBLE_EQ(bl[t.index()], w.node[t.index()]);
}

TEST(Levels, WeightSizeMismatchThrows) {
  TaskId a, b, c, d;
  const TaskGraph g = diamond4(a, b, c, d);
  DagWeights w = unit_weights(g, 1.0, 1.0);
  w.node.pop_back();
  EXPECT_THROW(top_levels(g, w), CheckError);
}

TEST(CriticalPath, LengthMatchesLevels) {
  TaskId a, b, c, d;
  const TaskGraph g = diamond4(a, b, c, d);
  const auto w = unit_weights(g, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(critical_path_length(g, w), 7.0);
}

TEST(CriticalPath, PathIsRealAndMaximal) {
  Rng rng(13);
  const TaskGraph g = random_dag(RandomDagParams{}, rng);
  DagWeights w;
  w.node.resize(g.task_count());
  w.edge.resize(g.edge_count());
  Rng wrng(14);
  for (auto& x : w.node) x = wrng.uniform(1.0, 5.0);
  for (auto& x : w.edge) x = wrng.uniform(0.0, 3.0);

  const auto path = critical_path(g, w);
  ASSERT_FALSE(path.empty());
  // Consecutive elements are connected.
  double length = w.node[path[0].index()];
  for (std::size_t i = 1; i < path.size(); ++i) {
    ASSERT_TRUE(g.has_edge(path[i - 1], path[i]));
    // Locate the edge weight.
    for (const EdgeIndex e : g.out_edges(path[i - 1]))
      if (g.edge(e).dst == path[i]) length += w.edge[e];
    length += w.node[path[i].index()];
  }
  EXPECT_NEAR(length, critical_path_length(g, w), 1e-9);
}

TEST(CriticalPath, ChainIsWholeChain) {
  const TaskGraph g = chain(6);
  const auto w = unit_weights(g, 1.0, 1.0);
  EXPECT_EQ(critical_path(g, w).size(), 6u);
  EXPECT_DOUBLE_EQ(critical_path_length(g, w), 11.0);  // 6 nodes + 5 edges
}

TEST(CriticalPath, EmptyGraphZero) {
  const TaskGraph g;
  EXPECT_DOUBLE_EQ(critical_path_length(g, DagWeights{}), 0.0);
  EXPECT_TRUE(critical_path(g, DagWeights{}).empty());
}

TEST(Depths, DiamondDepths) {
  TaskId a, b, c, d;
  const TaskGraph g = diamond4(a, b, c, d);
  const auto depth = depths(g);
  EXPECT_EQ(depth[a.index()], 0u);
  EXPECT_EQ(depth[b.index()], 1u);
  EXPECT_EQ(depth[c.index()], 1u);
  EXPECT_EQ(depth[d.index()], 2u);
}

TEST(Reachable, DirectAndTransitive) {
  TaskId a, b, c, d;
  const TaskGraph g = diamond4(a, b, c, d);
  EXPECT_TRUE(reachable(g, a, d));
  EXPECT_TRUE(reachable(g, a, a));
  EXPECT_FALSE(reachable(g, b, c));
  EXPECT_FALSE(reachable(g, d, a));
}

TEST(Reachability, MatchesDfsOnRandomGraph) {
  Rng rng(17);
  RandomDagParams params;
  params.min_tasks = 30;
  params.max_tasks = 40;
  const TaskGraph g = random_dag(params, rng);
  const Reachability closure(g);
  for (const TaskId u : g.all_tasks())
    for (const TaskId v : g.all_tasks()) {
      if (u == v) continue;
      EXPECT_EQ(closure.reaches(u, v), reachable(g, u, v))
          << "pair " << u.value() << " -> " << v.value();
    }
}

TEST(Reachability, SelfNotIncluded) {
  TaskId a, b, c, d;
  const TaskGraph g = diamond4(a, b, c, d);
  const Reachability closure(g);
  EXPECT_FALSE(closure.reaches(a, a));
  EXPECT_TRUE(closure.reaches(a, d));
}

}  // namespace
}  // namespace caft
