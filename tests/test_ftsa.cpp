// Tests for FTSA (algo/ftsa): replication structure, message bounds,
// validity across models and ε values.
#include "algo/ftsa.hpp"

#include <gtest/gtest.h>

#include <set>

#include "algo/heft.hpp"
#include "helpers.hpp"
#include "sched/validator.hpp"

namespace caft {
namespace {

using test::Scenario;
using test::random_setup;
using test::uniform_setup;

TEST(Ftsa, EveryTaskGetsEpsPlusOneReplicas) {
  Scenario s = random_setup(1, 10, 1.0);
  const Schedule sched = ftsa_schedule(s.graph, *s.platform, *s.costs,
                                       SchedulerOptions{2, CommModelKind::kOnePort});
  for (const TaskId t : s.graph.all_tasks()) {
    EXPECT_EQ(sched.primaries_recorded(t), 3u);
    EXPECT_EQ(sched.total_replicas(t), 3u);  // FTSA never duplicates
  }
}

TEST(Ftsa, ReplicasOnDistinctProcessors) {
  Scenario s = random_setup(2, 10, 1.0);
  const Schedule sched = ftsa_schedule(s.graph, *s.platform, *s.costs,
                                       SchedulerOptions{3, CommModelKind::kOnePort});
  for (const TaskId t : s.graph.all_tasks()) {
    std::set<ProcId> procs;
    for (const ReplicaAssignment& a : sched.primaries(t)) procs.insert(a.proc);
    EXPECT_EQ(procs.size(), 4u);
  }
}

TEST(Ftsa, EpsZeroIsHeft) {
  Scenario s = random_setup(3, 10, 1.0);
  const Schedule ftsa = ftsa_schedule(s.graph, *s.platform, *s.costs,
                                      SchedulerOptions{0, CommModelKind::kOnePort});
  const Schedule heft =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  EXPECT_DOUBLE_EQ(ftsa.zero_crash_latency(), heft.zero_crash_latency());
  EXPECT_EQ(ftsa.message_count(), heft.message_count());
}

TEST(Ftsa, MessageCountAtMostQuadratic) {
  // Section 4.2: at most e(ε+1)² messages.
  for (const std::size_t eps : {1u, 2u, 3u}) {
    Scenario s = random_setup(4 + eps, 10, 1.0);
    const Schedule sched = ftsa_schedule(
        s.graph, *s.platform, *s.costs,
        SchedulerOptions{eps, CommModelKind::kOnePort});
    EXPECT_LE(sched.message_count(),
              s.graph.edge_count() * (eps + 1) * (eps + 1));
  }
}

TEST(Ftsa, MessageCountAboveLinearOnRandomGraphs) {
  // The quadratic replication is the point of comparison with CAFT: on
  // multi-predecessor graphs FTSA sends clearly more than e(ε+1).
  Scenario s = random_setup(8, 10, 0.5);
  const std::size_t eps = 2;
  const Schedule sched =
      ftsa_schedule(s.graph, *s.platform, *s.costs,
                    SchedulerOptions{eps, CommModelKind::kOnePort});
  EXPECT_GT(sched.message_count(), s.graph.edge_count() * (eps + 1));
}

TEST(Ftsa, LatencyGrowsWithEps) {
  Scenario s = random_setup(5, 10, 0.5);
  double previous = 0.0;
  for (const std::size_t eps : {0u, 1u, 3u}) {
    const Schedule sched = ftsa_schedule(
        s.graph, *s.platform, *s.costs,
        SchedulerOptions{eps, CommModelKind::kOnePort});
    const double latency = sched.zero_crash_latency();
    EXPECT_GE(latency, previous - 1e-9) << "eps " << eps;
    previous = latency;
  }
}

TEST(Ftsa, UpperBoundAtLeastZeroCrash) {
  Scenario s = random_setup(6, 10, 1.0);
  const Schedule sched = ftsa_schedule(s.graph, *s.platform, *s.costs,
                                       SchedulerOptions{2, CommModelKind::kOnePort});
  EXPECT_GE(sched.upper_bound_latency(), sched.zero_crash_latency());
}

TEST(Ftsa, IntraProcessorRuleSuppressesRedundantSends) {
  // chain(2), eps=1: t1 replicas land where t0 replicas are (intra, free),
  // so at most... the rule means a co-located source serves alone.
  Scenario s = uniform_setup(chain(2, 10.0), 4, 10.0, 1.0);
  const Schedule sched = ftsa_schedule(s.graph, *s.platform, *s.costs,
                                       SchedulerOptions{1, CommModelKind::kOnePort});
  // Best placement co-locates both replicas of t1 with replicas of t0:
  // zero inter-processor messages.
  EXPECT_EQ(sched.message_count(), 0u);
  EXPECT_DOUBLE_EQ(sched.zero_crash_latency(), 20.0);
}

TEST(Ftsa, RequiresEnoughProcessors) {
  Scenario s = uniform_setup(chain(2), 2, 1.0, 1.0);
  EXPECT_THROW(ftsa_schedule(s.graph, *s.platform, *s.costs,
                             SchedulerOptions{2, CommModelKind::kOnePort}),
               CheckError);
}

TEST(Ftsa, DeterministicAcrossRuns) {
  Scenario s = random_setup(7, 10, 1.0);
  const SchedulerOptions options{1, CommModelKind::kOnePort};
  const Schedule a = ftsa_schedule(s.graph, *s.platform, *s.costs, options);
  const Schedule b = ftsa_schedule(s.graph, *s.platform, *s.costs, options);
  EXPECT_DOUBLE_EQ(a.zero_crash_latency(), b.zero_crash_latency());
  EXPECT_EQ(a.message_count(), b.message_count());
  for (const TaskId t : s.graph.all_tasks())
    for (ReplicaIndex r = 0; r < 2; ++r)
      EXPECT_EQ(a.replica(t, r).proc, b.replica(t, r).proc);
}

/// Validity sweep over seeds, ε, and models.
class FtsaValidity : public ::testing::TestWithParam<
                         std::tuple<std::uint64_t, std::size_t, CommModelKind>> {
};

TEST_P(FtsaValidity, SchedulesValidate) {
  const auto [seed, eps, model] = GetParam();
  Scenario s = random_setup(seed, 10, 1.0);
  const Schedule sched =
      ftsa_schedule(s.graph, *s.platform, *s.costs, SchedulerOptions{eps, model});
  const ValidationResult result = validate_schedule(sched, *s.costs);
  EXPECT_TRUE(result.ok()) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FtsaValidity,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0u, 1u, 3u),
                       ::testing::Values(CommModelKind::kOnePort,
                                         CommModelKind::kMacroDataflow)));

}  // namespace
}  // namespace caft
