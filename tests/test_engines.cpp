// Tests for the communication engines (comm/macro_dataflow, comm/one_port):
// the contention-free model versus the paper's equations (1)-(6).
#include <gtest/gtest.h>

#include "comm/macro_dataflow.hpp"
#include "comm/one_port.hpp"
#include "dag/generators.hpp"
#include "platform/cost_synthesis.hpp"

namespace caft {
namespace {

ProcId P(std::size_t i) { return ProcId(static_cast<ProcId::value_type>(i)); }

/// 3-processor clique, unit delays, 4 dummy tasks with exec 10.
struct Fixture {
  TaskGraph g = chain(4, 1.0);
  Platform platform{3};
  CostModel costs{4, platform};

  Fixture() {
    for (const TaskId t : g.all_tasks()) costs.set_exec_all(t, 10.0);
    costs.set_all_unit_delays(1.0);
  }
};

TEST(MacroDataflow, CommIgnoresContention) {
  Fixture f;
  MacroDataflowEngine engine(f.platform, f.costs);
  // Two messages from P0 at the same time: both depart immediately.
  const CommTimes a = engine.post_comm(P(0), P(1), 5.0, 100.0);
  const CommTimes b = engine.post_comm(P(0), P(2), 5.0, 100.0);
  EXPECT_DOUBLE_EQ(a.link_start, 100.0);
  EXPECT_DOUBLE_EQ(a.arrival, 105.0);
  EXPECT_DOUBLE_EQ(b.link_start, 100.0);
  EXPECT_DOUBLE_EQ(b.arrival, 105.0);
}

TEST(MacroDataflow, IntraProcessorFree) {
  Fixture f;
  MacroDataflowEngine engine(f.platform, f.costs);
  const CommTimes t = engine.post_comm(P(1), P(1), 42.0, 7.0);
  EXPECT_DOUBLE_EQ(t.arrival, 7.0);
}

TEST(MacroDataflow, PeekMatchesPost) {
  Fixture f;
  MacroDataflowEngine engine(f.platform, f.costs);
  const double peek = engine.peek_link_finish(P(0), P(2), 3.0, 11.0);
  const CommTimes t = engine.post_comm(P(0), P(2), 3.0, 11.0);
  EXPECT_DOUBLE_EQ(peek, t.link_finish);
}

TEST(OnePort, UncontendedCommMatchesW) {
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  const CommTimes t = engine.post_comm(P(0), P(1), 5.0, 10.0);
  EXPECT_DOUBLE_EQ(t.link_start, 10.0);
  EXPECT_DOUBLE_EQ(t.link_finish, 15.0);
  EXPECT_DOUBLE_EQ(t.arrival, 15.0);  // cut-through: A = F when ports free
  EXPECT_DOUBLE_EQ(t.send_finish, 15.0);
  EXPECT_DOUBLE_EQ(t.recv_start, 10.0);
}

TEST(OnePort, SendingSerialized) {
  // Inequality (2): two emissions from P0 must not overlap.
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  const CommTimes a = engine.post_comm(P(0), P(1), 5.0, 0.0);
  const CommTimes b = engine.post_comm(P(0), P(2), 5.0, 0.0);
  EXPECT_DOUBLE_EQ(a.link_start, 0.0);
  EXPECT_DOUBLE_EQ(b.link_start, 5.0);  // waits for SF(P0)
  EXPECT_DOUBLE_EQ(b.arrival, 10.0);
}

TEST(OnePort, ReceivingSerialized) {
  // Inequality (3): two receptions at P2 must not overlap.
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  const CommTimes a = engine.post_comm(P(0), P(2), 5.0, 0.0);
  const CommTimes b = engine.post_comm(P(1), P(2), 5.0, 0.0);
  EXPECT_DOUBLE_EQ(a.arrival, 5.0);
  // b's wire is free (different sender and link) but reception waits RF(P2).
  EXPECT_DOUBLE_EQ(b.link_start, 0.0);
  EXPECT_DOUBLE_EQ(b.recv_start, 5.0);
  EXPECT_DOUBLE_EQ(b.arrival, 10.0);
}

TEST(OnePort, SendReceiveOverlapAllowed) {
  // Full-duplex: P1 can send while receiving.
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  const CommTimes in = engine.post_comm(P(0), P(1), 10.0, 0.0);
  const CommTimes out = engine.post_comm(P(1), P(2), 10.0, 0.0);
  EXPECT_DOUBLE_EQ(in.arrival, 10.0);
  EXPECT_DOUBLE_EQ(out.link_start, 0.0);  // sending port independent
}

TEST(OnePort, DisjointPairsRunInParallel) {
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  const CommTimes a = engine.post_comm(P(0), P(1), 8.0, 0.0);
  const CommTimes b = engine.post_comm(P(2), P(0), 8.0, 0.0);
  EXPECT_DOUBLE_EQ(a.link_start, 0.0);
  EXPECT_DOUBLE_EQ(b.link_start, 0.0);
  EXPECT_DOUBLE_EQ(a.arrival, 8.0);
  EXPECT_DOUBLE_EQ(b.arrival, 8.0);
}

TEST(OnePort, LinkExclusivitySameDirection) {
  // Inequality (1): two messages on the same directed link serialize.
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  const CommTimes a = engine.post_comm(P(0), P(1), 5.0, 0.0);
  const CommTimes b = engine.post_comm(P(0), P(1), 5.0, 0.0);
  EXPECT_DOUBLE_EQ(a.link_finish, 5.0);
  EXPECT_DOUBLE_EQ(b.link_start, 5.0);
  EXPECT_DOUBLE_EQ(b.link_finish, 10.0);
}

TEST(OnePort, IntraProcessorFreeAndPortless) {
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  const CommTimes t = engine.post_comm(P(1), P(1), 42.0, 7.0);
  EXPECT_DOUBLE_EQ(t.arrival, 7.0);
  EXPECT_TRUE(t.segments.empty());
  // Ports untouched.
  EXPECT_DOUBLE_EQ(engine.sending_free(P(1)), 0.0);
  EXPECT_DOUBLE_EQ(engine.receiving_free(P(1)), 0.0);
}

TEST(OnePort, DataReadyDominates) {
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  const CommTimes t = engine.post_comm(P(0), P(1), 2.0, 50.0);
  EXPECT_DOUBLE_EQ(t.link_start, 50.0);
  EXPECT_DOUBLE_EQ(t.arrival, 52.0);
}

TEST(OnePort, PeekMatchesPostLinkFinish) {
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  engine.post_comm(P(0), P(1), 5.0, 0.0);  // occupy SF(P0) and the link
  const double peek = engine.peek_link_finish(P(0), P(1), 3.0, 0.0);
  const CommTimes t = engine.post_comm(P(0), P(1), 3.0, 0.0);
  EXPECT_DOUBLE_EQ(peek, t.link_finish);
  EXPECT_DOUBLE_EQ(peek, 8.0);
}

TEST(OnePort, PeekDoesNotMutate) {
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  (void)engine.peek_link_finish(P(0), P(1), 5.0, 0.0);
  const CommTimes t = engine.post_comm(P(0), P(1), 5.0, 0.0);
  EXPECT_DOUBLE_EQ(t.link_start, 0.0);
}

TEST(OnePort, SnapshotRestoreRoundTrip) {
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  engine.post_comm(P(0), P(1), 5.0, 0.0);
  engine.post_exec(P(2), 0.0, 10.0);
  const EngineSnapshot snap = engine.snapshot();
  engine.post_comm(P(0), P(1), 5.0, 0.0);
  engine.post_comm(P(1), P(2), 5.0, 0.0);
  engine.post_exec(P(2), 0.0, 10.0);
  engine.restore(snap);
  // State identical to the snapshot: a re-post sees the same times.
  const CommTimes t = engine.post_comm(P(0), P(1), 5.0, 0.0);
  EXPECT_DOUBLE_EQ(t.link_start, 5.0);  // SF(P0) from the first comm only
  EXPECT_DOUBLE_EQ(engine.proc_ready(P(2)), 10.0);
}

TEST(OnePort, ResetClearsEverything) {
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  engine.post_comm(P(0), P(1), 5.0, 0.0);
  engine.post_exec(P(0), 0.0, 3.0);
  engine.reset();
  EXPECT_DOUBLE_EQ(engine.sending_free(P(0)), 0.0);
  EXPECT_DOUBLE_EQ(engine.receiving_free(P(1)), 0.0);
  EXPECT_DOUBLE_EQ(engine.proc_ready(P(0)), 0.0);
}

TEST(Engine, PostExecSerializesOnProcessor) {
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  const TaskTimes a = engine.post_exec(P(0), 0.0, 10.0);
  const TaskTimes b = engine.post_exec(P(0), 0.0, 10.0);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_DOUBLE_EQ(a.finish, 10.0);
  EXPECT_DOUBLE_EQ(b.start, 10.0);
  EXPECT_DOUBLE_EQ(b.finish, 20.0);
}

TEST(Engine, PostExecHonoursEarliestStart) {
  Fixture f;
  OnePortEngine engine(f.platform, f.costs);
  const TaskTimes t = engine.post_exec(P(1), 33.0, 2.0);
  EXPECT_DOUBLE_EQ(t.start, 33.0);
}

TEST(Engine, RejectsForeignCostModel) {
  const TaskGraph g = chain(2);
  const Platform p1(2), p2(2);
  CostModel costs(g.task_count(), p1);
  EXPECT_THROW(OnePortEngine(p2, costs), CheckError);
}

TEST(OnePortSparse, MultiHopStoreAndForward) {
  // Star: leaf 1 -> hub 0 -> leaf 2; delays 1.0; volume 5.
  const TaskGraph g = chain(2, 1.0);
  const Platform platform(Topology::star(3));
  CostModel costs(g.task_count(), platform);
  costs.set_all_unit_delays(1.0);
  OnePortEngine engine(platform, costs);
  const CommTimes t = engine.post_comm(P(1), P(2), 5.0, 0.0);
  ASSERT_EQ(t.segments.size(), 2u);
  EXPECT_DOUBLE_EQ(t.segments[0].start, 0.0);
  EXPECT_DOUBLE_EQ(t.segments[0].finish, 5.0);
  EXPECT_DOUBLE_EQ(t.segments[1].start, 5.0);  // store-and-forward at hub
  EXPECT_DOUBLE_EQ(t.segments[1].finish, 10.0);
  EXPECT_DOUBLE_EQ(t.arrival, 10.0);  // reception overlaps the last hop
}

TEST(OnePortSparse, SharedLinkContention) {
  // Both messages traverse link 1 -> 0 (hub): they serialize there.
  const TaskGraph g = chain(2, 1.0);
  const Platform platform(Topology::star(4));
  CostModel costs(g.task_count(), platform);
  costs.set_all_unit_delays(1.0);
  OnePortEngine engine(platform, costs);
  const CommTimes a = engine.post_comm(P(1), P(2), 4.0, 0.0);
  const CommTimes b = engine.post_comm(P(1), P(3), 4.0, 0.0);
  EXPECT_DOUBLE_EQ(a.segments[0].finish, 4.0);
  EXPECT_DOUBLE_EQ(b.segments[0].start, 4.0);  // sender port + shared first hop
}

/// Property sweep: posting any sequence keeps per-port invariants: the
/// engine's free times never decrease and arrival >= link start.
class OnePortPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnePortPropertySweep, MonotoneClocksAndSaneTimes) {
  Rng rng(GetParam());
  const TaskGraph g = chain(2, 1.0);
  const Platform platform(5);
  CostModel costs(g.task_count(), platform);
  costs.set_all_unit_delays(0.7);
  OnePortEngine engine(platform, costs);

  std::vector<double> sf(5, 0.0), rf(5, 0.0);
  for (int i = 0; i < 200; ++i) {
    const auto from = P(rng.uniform_int(0, 4));
    const auto to = P(rng.uniform_int(0, 4));
    const double volume = rng.uniform(0.0, 10.0);
    const double ready = rng.uniform(0.0, 50.0);
    const CommTimes t = engine.post_comm(from, to, volume, ready);
    EXPECT_GE(t.link_start, ready);
    EXPECT_GE(t.arrival, t.link_start);
    EXPECT_GE(t.link_finish, t.link_start);
    if (from != to) {
      EXPECT_GE(engine.sending_free(from), sf[from.index()]);
      EXPECT_GE(engine.receiving_free(to), rf[to.index()]);
      sf[from.index()] = engine.sending_free(from);
      rf[to.index()] = engine.receiving_free(to);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnePortPropertySweep,
                         ::testing::Values(1u, 7u, 42u, 1234u));

}  // namespace
}  // namespace caft
