// Tests for FTBAR (algo/ftbar): schedule-pressure selection, replication
// structure, and the Minimize-Start-Time duplication pass.
#include "algo/ftbar.hpp"

#include <gtest/gtest.h>

#include <set>

#include "helpers.hpp"
#include "sched/validator.hpp"

namespace caft {
namespace {

using test::Scenario;
using test::random_setup;
using test::uniform_setup;

FtbarOptions options_for(std::size_t eps,
                         CommModelKind model = CommModelKind::kOnePort,
                         bool mst = true) {
  FtbarOptions options;
  options.base = SchedulerOptions{eps, model};
  options.minimize_start_time = mst;
  return options;
}

TEST(Ftbar, EveryTaskGetsEpsPlusOnePrimaries) {
  Scenario s = random_setup(1, 10, 1.0);
  const Schedule sched =
      ftbar_schedule(s.graph, *s.platform, *s.costs, options_for(2));
  for (const TaskId t : s.graph.all_tasks())
    EXPECT_EQ(sched.primaries_recorded(t), 3u);
}

TEST(Ftbar, PrimariesOnDistinctProcessors) {
  Scenario s = random_setup(2, 10, 1.0);
  const Schedule sched =
      ftbar_schedule(s.graph, *s.platform, *s.costs, options_for(3));
  for (const TaskId t : s.graph.all_tasks()) {
    std::set<ProcId> procs;
    for (const ReplicaAssignment& a : sched.primaries(t)) procs.insert(a.proc);
    EXPECT_EQ(procs.size(), 4u);
  }
}

TEST(Ftbar, SingleTaskGraph) {
  Scenario s = uniform_setup(chain(1), 3, 10.0, 1.0);
  const Schedule sched =
      ftbar_schedule(s.graph, *s.platform, *s.costs, options_for(1));
  EXPECT_TRUE(sched.complete());
  EXPECT_DOUBLE_EQ(sched.zero_crash_latency(), 10.0);
}

TEST(Ftbar, MstNeverWorseThanWithout) {
  // Duplication is only committed when it strictly reduces the start time,
  // so enabling it can only help (or leave the schedule unchanged) on the
  // zero-crash latency of each placement decision... The global greedy can
  // in principle diverge, so assert a softer invariant: both variants are
  // valid and finite, and MST produces at least as many replicas.
  Scenario s = random_setup(3, 10, 0.3);
  const Schedule with =
      ftbar_schedule(s.graph, *s.platform, *s.costs, options_for(1));
  const Schedule without = ftbar_schedule(
      s.graph, *s.platform, *s.costs,
      options_for(1, CommModelKind::kOnePort, /*mst=*/false));
  std::size_t with_replicas = 0, without_replicas = 0;
  for (const TaskId t : s.graph.all_tasks()) {
    with_replicas += with.total_replicas(t);
    without_replicas += without.total_replicas(t);
  }
  EXPECT_GE(with_replicas, without_replicas);
  EXPECT_TRUE(validate_schedule(with, *s.costs).ok());
  EXPECT_TRUE(validate_schedule(without, *s.costs).ok());
}

TEST(Ftbar, MstDuplicatesRemoteCriticalParent) {
  // join(2) with expensive edges: the two producers run in parallel on
  // different processors, so the consumer co-locates with one of them and
  // waits ~110 for the other's message — unless Minimize-Start-Time
  // duplicates that remote parent locally (cost 10), which is exactly what
  // the pass is for.
  Scenario s = uniform_setup(join(2, 100.0), 4, 10.0, 1.0);
  const Schedule sched =
      ftbar_schedule(s.graph, *s.platform, *s.costs, options_for(0));
  std::size_t duplicates = 0;
  for (const TaskId t : s.graph.all_tasks())
    duplicates += sched.duplicates(t).size();
  EXPECT_GT(duplicates, 0u);
  EXPECT_TRUE(validate_schedule(sched, *s.costs).ok());
  // With the duplicate, the sink starts right after the local copies.
  EXPECT_LT(sched.zero_crash_latency(), 50.0);
}

TEST(Ftbar, MessageCountAtMostQuadratic) {
  Scenario s = random_setup(4, 10, 1.0);
  const std::size_t eps = 2;
  const Schedule sched = ftbar_schedule(
      s.graph, *s.platform, *s.costs,
      options_for(eps, CommModelKind::kOnePort, /*mst=*/false));
  EXPECT_LE(sched.message_count(),
            s.graph.edge_count() * (eps + 1) * (eps + 1));
}

TEST(Ftbar, DeterministicAcrossRuns) {
  Scenario s = random_setup(5, 10, 1.0);
  const Schedule a =
      ftbar_schedule(s.graph, *s.platform, *s.costs, options_for(1));
  const Schedule b =
      ftbar_schedule(s.graph, *s.platform, *s.costs, options_for(1));
  EXPECT_DOUBLE_EQ(a.zero_crash_latency(), b.zero_crash_latency());
  EXPECT_EQ(a.message_count(), b.message_count());
}

TEST(Ftbar, RequiresEnoughProcessors) {
  Scenario s = uniform_setup(chain(2), 2, 1.0, 1.0);
  EXPECT_THROW(
      ftbar_schedule(s.graph, *s.platform, *s.costs, options_for(2)),
      CheckError);
}

/// Validity sweep over seeds, ε, models, and the MST switch.
class FtbarValidity
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::size_t, CommModelKind, bool>> {};

TEST_P(FtbarValidity, SchedulesValidate) {
  const auto [seed, eps, model, mst] = GetParam();
  Scenario s = random_setup(seed, 10, 1.0);
  const Schedule sched = ftbar_schedule(s.graph, *s.platform, *s.costs,
                                        options_for(eps, model, mst));
  const ValidationResult result = validate_schedule(sched, *s.costs);
  EXPECT_TRUE(result.ok()) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FtbarValidity,
    ::testing::Combine(::testing::Values(1u, 2u),
                       ::testing::Values(0u, 1u, 3u),
                       ::testing::Values(CommModelKind::kOnePort,
                                         CommModelKind::kMacroDataflow),
                       ::testing::Bool()));

}  // namespace
}  // namespace caft
