// Tests for the I/O layer: DOT export, Chrome-trace export and instance
// serialization round-trips (src/io).
#include <gtest/gtest.h>

#include <sstream>

#include "algo/caft.hpp"
#include "algo/ftbar.hpp"
#include "algo/ftsa.hpp"
#include "algo/heft.hpp"
#include "helpers.hpp"
#include "io/dot_export.hpp"
#include "io/instance_io.hpp"
#include "io/trace_export.hpp"
#include "sched/validator.hpp"
#include "sim/crash_sim.hpp"

namespace caft {
namespace {

using test::Scenario;
using test::random_setup;
using test::uniform_setup;

TEST(DotExport, GraphContainsAllNodesAndEdges) {
  const TaskGraph g = fork_join(3, 25.0);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph taskgraph"), std::string::npos);
  for (const TaskId t : g.all_tasks())
    EXPECT_NE(dot.find('"' + g.name(t) + '"'), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("25.0"), std::string::npos);  // edge volume label
}

TEST(DotExport, VolumeLabelsOptional) {
  const TaskGraph g = chain(3, 42.0);
  DotOptions options;
  options.show_volumes = false;
  EXPECT_EQ(to_dot(g, options).find("42.0"), std::string::npos);
}

TEST(DotExport, QuotesPunctuatedNames) {
  const TaskGraph g = cholesky(3, 1.0);  // names like "gemm(2,1,0)"
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("\"gemm(2,1,0)\""), std::string::npos);
}

TEST(DotExport, ScheduleHasClustersAndCommEdges) {
  Scenario s = random_setup(1, 6, 1.0);
  CaftOptions options;
  options.base = SchedulerOptions{1, CommModelKind::kOnePort};
  const Schedule sched = caft_schedule(s.graph, *s.platform, *s.costs, options);
  const std::string dot = to_dot(sched);
  EXPECT_NE(dot.find("subgraph cluster_P0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_P5"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // inter-proc comm
  EXPECT_NE(dot.find("#0"), std::string::npos);            // replica suffix
  EXPECT_NE(dot.find("#1"), std::string::npos);
}

TEST(DotExport, DuplicatesHighlighted) {
  // FTBAR's MST duplicates get a distinct fill.
  Scenario s = uniform_setup(join(2, 100.0), 4, 10.0, 1.0);
  FtbarOptions options;
  options.base = SchedulerOptions{0, CommModelKind::kOnePort};
  const Schedule sched =
      ftbar_schedule(s.graph, *s.platform, *s.costs, options);
  std::size_t duplicates = 0;
  for (const TaskId t : s.graph.all_tasks())
    duplicates += sched.duplicates(t).size();
  ASSERT_GT(duplicates, 0u);
  EXPECT_NE(to_dot(sched).find("lightyellow"), std::string::npos);
}

TEST(TraceExport, WellFormedJsonWithAllReplicas) {
  Scenario s = random_setup(2, 6, 1.0);
  CaftOptions options;
  options.base = SchedulerOptions{1, CommModelKind::kOnePort};
  const Schedule sched = caft_schedule(s.graph, *s.platform, *s.costs, options);
  const std::string trace = to_chrome_trace(sched);
  EXPECT_EQ(trace.find("},{"), std::string::npos);  // one event per line
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);  // flow start
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);  // flow finish
  // Rough balance check: braces match.
  const auto open = std::count(trace.begin(), trace.end(), '{');
  const auto close = std::count(trace.begin(), trace.end(), '}');
  EXPECT_EQ(open, close);
}

TEST(TraceExport, CrashTraceMarksCrashAndSkipsDeadWork) {
  Scenario s = uniform_setup(chain(3, 10.0), 3, 10.0, 1.0);
  const Schedule sched = ftsa_schedule(
      s.graph, *s.platform, *s.costs, SchedulerOptions{1, CommModelKind::kOnePort});
  const ProcId victim = sched.replica(TaskId(0), 0).proc;
  const CrashScenario scenario = CrashScenario::at_zero(3, {victim});
  const CrashResult result = simulate_crashes(sched, *s.costs, scenario);
  const std::string trace = to_chrome_trace(sched, result, scenario);
  EXPECT_NE(trace.find("CRASH"), std::string::npos);
  // No execution event on the dead processor's exec lane: its replicas are
  // incomplete. (The surviving replica names still appear.)
  EXPECT_NE(trace.find("t0#"), std::string::npos);
}

TEST(InstanceIo, GraphPlatformCostsRoundTrip) {
  Scenario s = random_setup(3, 5, 0.7);
  std::stringstream buffer;
  save_instance(buffer, s.graph, *s.platform, *s.costs);
  const InstanceBundle loaded = load_instance(buffer);

  ASSERT_EQ(loaded.graph->task_count(), s.graph.task_count());
  ASSERT_EQ(loaded.graph->edge_count(), s.graph.edge_count());
  for (const TaskId t : s.graph.all_tasks())
    EXPECT_EQ(loaded.graph->name(t), s.graph.name(t));
  for (std::size_t e = 0; e < s.graph.edge_count(); ++e) {
    EXPECT_EQ(loaded.graph->edge(static_cast<EdgeIndex>(e)).src,
              s.graph.edge(static_cast<EdgeIndex>(e)).src);
    EXPECT_DOUBLE_EQ(loaded.graph->edge(static_cast<EdgeIndex>(e)).volume,
                     s.graph.edge(static_cast<EdgeIndex>(e)).volume);
  }
  ASSERT_EQ(loaded.platform->proc_count(), 5u);
  for (const TaskId t : s.graph.all_tasks())
    for (const ProcId p : s.platform->all_procs())
      EXPECT_DOUBLE_EQ(loaded.costs->exec(t, p), s.costs->exec(t, p));
  EXPECT_DOUBLE_EQ(loaded.costs->granularity(*loaded.graph),
                   s.costs->granularity(s.graph));
  EXPECT_EQ(loaded.schedule, nullptr);
}

TEST(InstanceIo, ScheduleRoundTripPreservesEverything) {
  Scenario s = random_setup(4, 6, 1.0);
  CaftOptions options;
  options.base = SchedulerOptions{2, CommModelKind::kOnePort};
  const Schedule sched = caft_schedule(s.graph, *s.platform, *s.costs, options);

  std::stringstream buffer;
  save_instance(buffer, s.graph, *s.platform, *s.costs, &sched);
  const InstanceBundle loaded = load_instance(buffer);
  ASSERT_NE(loaded.schedule, nullptr);

  EXPECT_EQ(loaded.schedule->eps(), 2u);
  EXPECT_EQ(loaded.schedule->model(), CommModelKind::kOnePort);
  EXPECT_DOUBLE_EQ(loaded.schedule->zero_crash_latency(),
                   sched.zero_crash_latency());
  EXPECT_DOUBLE_EQ(loaded.schedule->upper_bound_latency(),
                   sched.upper_bound_latency());
  EXPECT_EQ(loaded.schedule->message_count(), sched.message_count());
  EXPECT_EQ(loaded.schedule->comms().size(), sched.comms().size());
  // The reloaded schedule passes the validator against the reloaded costs.
  const ValidationResult result =
      validate_schedule(*loaded.schedule, *loaded.costs);
  EXPECT_TRUE(result.ok()) << result.summary();
}

TEST(InstanceIo, SparseTopologyRoundTrip) {
  const TaskGraph g = chain(4, 50.0);
  const Platform platform(Topology::star(5));
  CostModel costs = uniform_costs(g, platform, 10.0, 0.5);
  std::stringstream buffer;
  save_instance(buffer, g, platform, costs);
  const InstanceBundle loaded = load_instance(buffer);
  EXPECT_FALSE(loaded.platform->topology().is_clique());
  EXPECT_EQ(loaded.platform->topology().link_count(), 8u);
  EXPECT_EQ(loaded.platform->topology().hop_count(ProcId(1), ProcId(4)), 2u);
  EXPECT_DOUBLE_EQ(loaded.costs->pair_delay(ProcId(1), ProcId(4)), 1.0);
}

TEST(InstanceIo, DuplicatesRoundTrip) {
  Scenario s = uniform_setup(join(2, 100.0), 4, 10.0, 1.0);
  FtbarOptions options;
  options.base = SchedulerOptions{0, CommModelKind::kOnePort};
  const Schedule sched =
      ftbar_schedule(s.graph, *s.platform, *s.costs, options);
  std::stringstream buffer;
  save_instance(buffer, s.graph, *s.platform, *s.costs, &sched);
  const InstanceBundle loaded = load_instance(buffer);
  ASSERT_NE(loaded.schedule, nullptr);
  std::size_t original = 0, reloaded = 0;
  for (const TaskId t : s.graph.all_tasks()) {
    original += sched.duplicates(t).size();
    reloaded += loaded.schedule->duplicates(t).size();
  }
  EXPECT_EQ(reloaded, original);
  EXPECT_GT(reloaded, 0u);
}

TEST(InstanceIo, RejectsGarbage) {
  std::stringstream buffer("not-an-instance at all");
  EXPECT_THROW(load_instance(buffer), CheckError);
}

TEST(InstanceIo, RejectsTruncated) {
  Scenario s = uniform_setup(chain(3, 10.0), 3, 10.0, 1.0);
  std::stringstream buffer;
  save_instance(buffer, s.graph, *s.platform, *s.costs);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_instance(truncated), CheckError);
}

TEST(InstanceIo, FileRoundTrip) {
  Scenario s = uniform_setup(chain(3, 10.0), 3, 10.0, 1.0);
  const std::string path = "/tmp/caft_test_instance.txt";
  save_instance_file(path, s.graph, *s.platform, *s.costs);
  const InstanceBundle loaded = load_instance_file(path);
  EXPECT_EQ(loaded.graph->task_count(), 3u);
  EXPECT_THROW(load_instance_file("/nonexistent/instance.txt"), CheckError);
}

TEST(InstanceIo, TaskNamesWithSpacesSurvive) {
  TaskGraph g;
  const TaskId a = g.add_task("stage one");
  const TaskId b = g.add_task("stage two");
  g.add_edge(a, b, 5.0);
  const Platform platform(2);
  const CostModel costs = uniform_costs(g, platform, 1.0, 1.0);
  std::stringstream buffer;
  save_instance(buffer, g, platform, costs);
  const InstanceBundle loaded = load_instance(buffer);
  EXPECT_EQ(loaded.graph->name(a), "stage one");
  EXPECT_EQ(loaded.graph->name(b), "stage two");
}

}  // namespace
}  // namespace caft
