// Tests for the schedule validator (sched/validator): it must accept
// schedules the algorithms emit and reject each class of violation.
#include "sched/validator.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "platform/cost_synthesis.hpp"

namespace caft {
namespace {

ProcId P(std::size_t i) { return ProcId(static_cast<ProcId::value_type>(i)); }
TaskId T(std::size_t i) { return TaskId(static_cast<TaskId::value_type>(i)); }

CommTimes wire(double start, double finish) {
  CommTimes t;
  t.link_start = start;
  t.link_finish = finish;
  t.send_finish = finish;
  t.recv_start = start;
  t.arrival = finish;
  return t;
}

/// Hand-built valid schedule: chain(2), eps=1, exec 10, delay 1, volume 10.
/// t0 on P0/P1 at [0,10]; t1 on P0 (intra, [10,20]) and P1 (intra, [10,20]).
struct ValidFixture {
  TaskGraph g = chain(2, 10.0);
  Platform platform{3};
  CostModel costs = uniform_costs(g, platform, 10.0, 1.0);
  Schedule schedule{g, platform, 1, CommModelKind::kOnePort};

  ValidFixture() {
    schedule.set_replica(T(0), 0, {P(0), 0.0, 10.0});
    schedule.set_replica(T(0), 1, {P(1), 0.0, 10.0});
    schedule.set_replica(T(1), 0, {P(0), 10.0, 20.0});
    schedule.set_replica(T(1), 1, {P(1), 10.0, 20.0});
    add_intra(0, 0, 0);  // t0#0 -> t1#0 on P0
    add_intra(1, 1, 1);  // t0#1 -> t1#1 on P1
  }

  void add_intra(ReplicaIndex from, ReplicaIndex to, std::size_t proc) {
    CommAssignment c;
    c.edge = 0;
    c.from = {T(0), from};
    c.to = {T(1), to};
    c.src_proc = P(proc);
    c.dst_proc = P(proc);
    c.volume = 10.0;
    CommTimes t;
    t.link_start = t.link_finish = 10.0;
    t.send_finish = t.recv_start = t.arrival = 10.0;
    c.times = t;
    schedule.add_comm(c);
  }
};

TEST(Validator, AcceptsValidSchedule) {
  ValidFixture f;
  const ValidationResult result = validate_schedule(f.schedule, f.costs);
  EXPECT_TRUE(result.ok()) << result.summary();
}

TEST(Validator, ReportsIncomplete) {
  ValidFixture f;
  Schedule partial(f.g, f.platform, 1, CommModelKind::kOnePort);
  const ValidationResult result = validate_schedule(partial, f.costs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("incomplete"), std::string::npos);
}

TEST(Validator, DetectsSharedProcessorReplicas) {
  ValidFixture f;
  Schedule bad(f.g, f.platform, 1, CommModelKind::kOnePort);
  bad.set_replica(T(0), 0, {P(0), 0.0, 10.0});
  bad.set_replica(T(0), 1, {P(0), 10.0, 20.0});  // same processor!
  bad.set_replica(T(1), 0, {P(1), 20.0, 30.0});
  bad.set_replica(T(1), 1, {P(2), 20.0, 30.0});
  const ValidationResult result = validate_schedule(bad, f.costs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("share processor"), std::string::npos);
}

TEST(Validator, DetectsWrongDuration) {
  ValidFixture f;
  Schedule bad(f.g, f.platform, 1, CommModelKind::kOnePort);
  bad.set_replica(T(0), 0, {P(0), 0.0, 7.0});  // should take 10
  bad.set_replica(T(0), 1, {P(1), 0.0, 10.0});
  bad.set_replica(T(1), 0, {P(0), 10.0, 20.0});
  bad.set_replica(T(1), 1, {P(1), 10.0, 20.0});
  const ValidationResult result = validate_schedule(bad, f.costs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("duration"), std::string::npos);
}

TEST(Validator, DetectsOverlapOnProcessor) {
  // Two tasks overlapping on P0.
  TaskGraph g;
  g.add_task();
  g.add_task();  // independent tasks
  Platform platform(3);
  CostModel costs = uniform_costs(g, platform, 10.0, 1.0);
  Schedule bad(g, platform, 0, CommModelKind::kOnePort);
  bad.set_replica(T(0), 0, {P(0), 0.0, 10.0});
  bad.set_replica(T(1), 0, {P(0), 5.0, 15.0});  // overlaps
  const ValidationResult result = validate_schedule(bad, costs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("overlaps"), std::string::npos);
}

TEST(Validator, DetectsMissingInput) {
  ValidFixture f;
  Schedule bad(f.g, f.platform, 1, CommModelKind::kOnePort);
  bad.set_replica(T(0), 0, {P(0), 0.0, 10.0});
  bad.set_replica(T(0), 1, {P(1), 0.0, 10.0});
  bad.set_replica(T(1), 0, {P(0), 10.0, 20.0});
  bad.set_replica(T(1), 1, {P(2), 10.0, 20.0});  // no comm feeds it
  const ValidationResult result = validate_schedule(bad, f.costs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("no input"), std::string::npos);
}

TEST(Validator, DetectsLateArrival) {
  ValidFixture f;
  Schedule bad(f.g, f.platform, 1, CommModelKind::kOnePort);
  bad.set_replica(T(0), 0, {P(0), 0.0, 10.0});
  bad.set_replica(T(0), 1, {P(1), 0.0, 10.0});
  bad.set_replica(T(1), 0, {P(2), 12.0, 22.0});
  bad.set_replica(T(1), 1, {P(1), 10.0, 20.0});
  // Comm arrives at 25 but the consumer starts at 12.
  CommAssignment c;
  c.edge = 0;
  c.from = {T(0), 0};
  c.to = {T(1), 0};
  c.src_proc = P(0);
  c.dst_proc = P(2);
  c.volume = 10.0;
  c.times = wire(10.0, 25.0);
  bad.add_comm(c);
  // Feed replica 1 properly (intra).
  CommAssignment intra;
  intra.edge = 0;
  intra.from = {T(0), 1};
  intra.to = {T(1), 1};
  intra.src_proc = P(1);
  intra.dst_proc = P(1);
  intra.volume = 10.0;
  intra.times = wire(10.0, 10.0);
  bad.add_comm(intra);
  const ValidationResult result = validate_schedule(bad, f.costs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("no input"), std::string::npos);
}

TEST(Validator, DetectsCommBeforeSourceFinish) {
  ValidFixture f;
  Schedule bad(f.g, f.platform, 1, CommModelKind::kOnePort);
  bad.set_replica(T(0), 0, {P(0), 0.0, 10.0});
  bad.set_replica(T(0), 1, {P(1), 0.0, 10.0});
  bad.set_replica(T(1), 0, {P(2), 15.0, 25.0});
  bad.set_replica(T(1), 1, {P(1), 10.0, 20.0});
  CommAssignment c;
  c.edge = 0;
  c.from = {T(0), 0};
  c.to = {T(1), 0};
  c.src_proc = P(0);
  c.dst_proc = P(2);
  c.volume = 10.0;
  c.times = wire(5.0, 15.0);  // leaves at 5 but source finishes at 10
  bad.add_comm(c);
  CommAssignment intra;
  intra.edge = 0;
  intra.from = {T(0), 1};
  intra.to = {T(1), 1};
  intra.src_proc = P(1);
  intra.dst_proc = P(1);
  intra.volume = 10.0;
  intra.times = wire(10.0, 10.0);
  bad.add_comm(intra);
  const ValidationResult result = validate_schedule(bad, f.costs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("before its source"), std::string::npos);
}

TEST(Validator, DetectsVolumeMismatch) {
  ValidFixture f;
  Schedule bad(f.g, f.platform, 1, CommModelKind::kOnePort);
  bad.set_replica(T(0), 0, {P(0), 0.0, 10.0});
  bad.set_replica(T(0), 1, {P(1), 0.0, 10.0});
  bad.set_replica(T(1), 0, {P(0), 10.0, 20.0});
  bad.set_replica(T(1), 1, {P(1), 10.0, 20.0});
  CommAssignment c;
  c.edge = 0;
  c.from = {T(0), 0};
  c.to = {T(1), 0};
  c.src_proc = P(0);
  c.dst_proc = P(0);
  c.volume = 99.0;  // edge volume is 10
  c.times = wire(10.0, 10.0);
  bad.add_comm(c);
  CommAssignment intra;
  intra.edge = 0;
  intra.from = {T(0), 1};
  intra.to = {T(1), 1};
  intra.src_proc = P(1);
  intra.dst_proc = P(1);
  intra.volume = 10.0;
  intra.times = wire(10.0, 10.0);
  bad.add_comm(intra);
  const ValidationResult result = validate_schedule(bad, f.costs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("volume"), std::string::npos);
}

TEST(Validator, DetectsSendPortOverlap) {
  // Two simultaneous emissions from P0 (violates inequality (2)).
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  const TaskId c = g.add_task();
  g.add_edge(a, b, 10.0);
  g.add_edge(a, c, 10.0);
  Platform platform(4);
  CostModel costs = uniform_costs(g, platform, 10.0, 1.0);
  Schedule bad(g, platform, 0, CommModelKind::kOnePort);
  bad.set_replica(T(0), 0, {P(0), 0.0, 10.0});
  bad.set_replica(T(1), 0, {P(1), 20.0, 30.0});
  bad.set_replica(T(2), 0, {P(2), 20.0, 30.0});
  for (std::size_t dst = 1; dst <= 2; ++dst) {
    CommAssignment cm;
    cm.edge = static_cast<EdgeIndex>(dst - 1);
    cm.from = {T(0), 0};
    cm.to = {T(dst), 0};
    cm.src_proc = P(0);
    cm.dst_proc = P(dst);
    cm.volume = 10.0;
    cm.times = wire(10.0, 20.0);  // both hold the send port [10, 20]
    cm.times.segments.push_back(
        {platform.topology().direct_link(P(0), P(dst)), 10.0, 20.0});
    bad.add_comm(cm);
  }
  const ValidationResult result = validate_schedule(bad, costs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("send port"), std::string::npos);
}

TEST(Validator, MacroDataflowSkipsPortChecks) {
  // The same overlapping emissions are fine under macro-dataflow.
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  const TaskId c = g.add_task();
  g.add_edge(a, b, 10.0);
  g.add_edge(a, c, 10.0);
  Platform platform(4);
  CostModel costs = uniform_costs(g, platform, 10.0, 1.0);
  Schedule ok(g, platform, 0, CommModelKind::kMacroDataflow);
  ok.set_replica(T(0), 0, {P(0), 0.0, 10.0});
  ok.set_replica(T(1), 0, {P(1), 20.0, 30.0});
  ok.set_replica(T(2), 0, {P(2), 20.0, 30.0});
  for (std::size_t dst = 1; dst <= 2; ++dst) {
    CommAssignment cm;
    cm.edge = static_cast<EdgeIndex>(dst - 1);
    cm.from = {T(0), 0};
    cm.to = {T(dst), 0};
    cm.src_proc = P(0);
    cm.dst_proc = P(dst);
    cm.volume = 10.0;
    cm.times = wire(10.0, 20.0);
    ok.add_comm(cm);
  }
  const ValidationResult result = validate_schedule(ok, costs);
  EXPECT_TRUE(result.ok()) << result.summary();
}

TEST(Validator, DetectsLinkOverlap) {
  // Two messages on the same directed link at the same time.
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  const TaskId c = g.add_task();
  const TaskId d = g.add_task();
  g.add_edge(a, c, 10.0);
  g.add_edge(b, d, 10.0);
  Platform platform(4);
  CostModel costs = uniform_costs(g, platform, 10.0, 1.0);
  Schedule bad(g, platform, 0, CommModelKind::kOnePort);
  bad.set_replica(T(0), 0, {P(0), 0.0, 10.0});
  bad.set_replica(T(1), 0, {P(1), 0.0, 10.0});
  bad.set_replica(T(2), 0, {P(2), 20.0, 30.0});
  bad.set_replica(T(3), 0, {P(2), 30.0, 40.0});
  const LinkId shared = platform.topology().direct_link(P(0), P(2));
  // First message legitimately on link P0->P2.
  CommAssignment c1;
  c1.edge = 0;
  c1.from = {T(0), 0};
  c1.to = {T(2), 0};
  c1.src_proc = P(0);
  c1.dst_proc = P(2);
  c1.volume = 10.0;
  c1.times = wire(10.0, 20.0);
  c1.times.segments.push_back({shared, 10.0, 20.0});
  bad.add_comm(c1);
  // Second message *claims* the same link interval (src_proc P1 lies, but
  // the validator checks segments independently).
  CommAssignment c2;
  c2.edge = 1;
  c2.from = {T(1), 0};
  c2.to = {T(3), 0};
  c2.src_proc = P(1);
  c2.dst_proc = P(2);
  c2.volume = 10.0;
  c2.times = wire(10.0, 20.0);
  c2.times.recv_start = 20.0;
  c2.times.arrival = 30.0;
  c2.times.segments.push_back({shared, 10.0, 20.0});
  bad.add_comm(c2);
  const ValidationResult result = validate_schedule(bad, costs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("link"), std::string::npos);
}

TEST(Validator, DuplicatesAreChecked) {
  ValidFixture f;
  // A duplicate with a wrong duration must be flagged.
  f.schedule.add_duplicate(T(0), {P(2), 0.0, 3.0});  // should take 10
  const ValidationResult result = validate_schedule(f.schedule, f.costs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("duration"), std::string::npos);
}

TEST(Validator, ToleranceAbsorbsFloatNoise) {
  ValidFixture f;
  Schedule nearly(f.g, f.platform, 1, CommModelKind::kOnePort);
  nearly.set_replica(T(0), 0, {P(0), 0.0, 10.0 + 1e-9});
  nearly.set_replica(T(0), 1, {P(1), 0.0, 10.0});
  nearly.set_replica(T(1), 0, {P(0), 10.0 + 1e-9, 20.0 + 1e-9});
  nearly.set_replica(T(1), 1, {P(1), 10.0, 20.0});
  CommAssignment c;
  c.edge = 0;
  c.from = {T(0), 0};
  c.to = {T(1), 0};
  c.src_proc = P(0);
  c.dst_proc = P(0);
  c.volume = 10.0;
  c.times = wire(10.0 + 1e-9, 10.0 + 1e-9);
  nearly.add_comm(c);
  CommAssignment intra;
  intra.edge = 0;
  intra.from = {T(0), 1};
  intra.to = {T(1), 1};
  intra.src_proc = P(1);
  intra.dst_proc = P(1);
  intra.volume = 10.0;
  intra.times = wire(10.0, 10.0);
  nearly.add_comm(intra);
  EXPECT_TRUE(validate_schedule(nearly, f.costs).ok());
}

}  // namespace
}  // namespace caft
