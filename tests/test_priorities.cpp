// Tests for tℓ+bℓ priorities and the free list α (algo/priorities).
#include "algo/priorities.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "platform/cost_synthesis.hpp"

namespace caft {
namespace {

TaskId T(std::size_t i) { return TaskId(static_cast<TaskId::value_type>(i)); }

TEST(Priorities, EntryTasksStartFree) {
  const TaskGraph g = join(3);  // three entries feeding a sink
  const Platform platform(2);
  const CostModel costs = uniform_costs(g, platform, 10.0, 1.0);
  PriorityTracker tracker(g, costs);
  EXPECT_TRUE(tracker.has_free_task());
  // Exactly three pops available before anything is marked scheduled.
  (void)tracker.pop_highest();
  (void)tracker.pop_highest();
  (void)tracker.pop_highest();
  EXPECT_FALSE(tracker.has_free_task());
}

TEST(Priorities, PopOrderFollowsBottomLevelOnChain) {
  const TaskGraph g = chain(4, 10.0);
  const Platform platform(2);
  const CostModel costs = uniform_costs(g, platform, 10.0, 1.0);
  PriorityTracker tracker(g, costs);
  // Only the head is free initially.
  EXPECT_EQ(tracker.pop_highest(), T(0));
  EXPECT_FALSE(tracker.has_free_task());
  tracker.mark_scheduled(T(0), 10.0);
  EXPECT_EQ(tracker.pop_highest(), T(1));
}

TEST(Priorities, SuccessorsReleasedWhenAllPredsDone) {
  const TaskGraph g = join(2);
  const Platform platform(2);
  const CostModel costs = uniform_costs(g, platform, 10.0, 1.0);
  PriorityTracker tracker(g, costs);
  const TaskId first = tracker.pop_highest();
  const TaskId second = tracker.pop_highest();
  tracker.mark_scheduled(first, 10.0);
  EXPECT_FALSE(tracker.has_free_task());  // sink still blocked
  tracker.mark_scheduled(second, 10.0);
  EXPECT_TRUE(tracker.has_free_task());
  EXPECT_EQ(tracker.pop_highest(), T(2));
}

TEST(Priorities, BottomLevelsDecreaseAlongChain) {
  const TaskGraph g = chain(5, 10.0);
  const Platform platform(3);
  const CostModel costs = uniform_costs(g, platform, 7.0, 1.0);
  PriorityTracker tracker(g, costs);
  for (std::size_t i = 0; i + 1 < 5; ++i)
    EXPECT_GT(tracker.bottom_level(T(i)), tracker.bottom_level(T(i + 1)));
}

TEST(Priorities, BottomLevelOfExitIsAvgExec) {
  const TaskGraph g = chain(3, 10.0);
  const Platform platform(2);
  const CostModel costs = uniform_costs(g, platform, 7.0, 1.0);
  PriorityTracker tracker(g, costs);
  EXPECT_DOUBLE_EQ(tracker.bottom_level(T(2)), 7.0);
}

TEST(Priorities, TopLevelRelaxedBySchedulingEvents) {
  const TaskGraph g = chain(2, 10.0);
  const Platform platform(2);
  const CostModel costs = uniform_costs(g, platform, 7.0, 0.5);
  PriorityTracker tracker(g, costs);
  EXPECT_DOUBLE_EQ(tracker.top_level(T(1)), 0.0);
  (void)tracker.pop_highest();
  tracker.mark_scheduled(T(0), 30.0);
  // tℓ(t1) = finish(t0) + avg comm = 30 + 10 * avg delay.
  // On 2 procs with uniform 0.5 delay, avg pair delay = 0.5 -> 30 + 5.
  EXPECT_DOUBLE_EQ(tracker.top_level(T(1)), 35.0);
}

TEST(Priorities, HigherPriorityPopsFirst) {
  // Two independent chains of different depth share the free list; the
  // deeper chain's head has the larger bottom level, so it pops first.
  TaskGraph g;
  const TaskId a0 = g.add_task();  // chain A: a0 -> a1 -> a2
  const TaskId a1 = g.add_task();
  const TaskId a2 = g.add_task();
  const TaskId b0 = g.add_task();  // chain B: b0
  g.add_edge(a0, a1, 10.0);
  g.add_edge(a1, a2, 10.0);
  (void)b0;
  const Platform platform(2);
  const CostModel costs = uniform_costs(g, platform, 5.0, 1.0);
  PriorityTracker tracker(g, costs);
  EXPECT_EQ(tracker.pop_highest(), a0);
}

TEST(Priorities, TieBreakByLowestId) {
  TaskGraph g;
  g.add_task();
  g.add_task();  // two identical independent tasks
  const Platform platform(2);
  const CostModel costs = uniform_costs(g, platform, 5.0, 1.0);
  PriorityTracker tracker(g, costs);
  EXPECT_EQ(tracker.pop_highest(), T(0));
  EXPECT_EQ(tracker.pop_highest(), T(1));
}

TEST(Priorities, PopOnEmptyThrows) {
  TaskGraph g;
  g.add_task();
  const Platform platform(2);
  const CostModel costs = uniform_costs(g, platform, 5.0, 1.0);
  PriorityTracker tracker(g, costs);
  (void)tracker.pop_highest();
  EXPECT_THROW(tracker.pop_highest(), CheckError);
}

TEST(Priorities, DoubleReleaseThrows) {
  const TaskGraph g = chain(2, 10.0);
  const Platform platform(2);
  const CostModel costs = uniform_costs(g, platform, 5.0, 1.0);
  PriorityTracker tracker(g, costs);
  (void)tracker.pop_highest();
  tracker.mark_scheduled(T(0), 5.0);
  EXPECT_THROW(tracker.mark_scheduled(T(0), 5.0), CheckError);
}

TEST(Priorities, WholeGraphDrains) {
  Rng rng(3);
  const TaskGraph g = random_dag(RandomDagParams{}, rng);
  const Platform platform(4);
  CostSynthesisParams params;
  const CostModel costs = synthesize_costs(g, platform, params, rng);
  PriorityTracker tracker(g, costs);
  std::size_t popped = 0;
  while (tracker.has_free_task()) {
    const TaskId t = tracker.pop_highest();
    ++popped;
    tracker.mark_scheduled(t, static_cast<double>(popped));
  }
  EXPECT_EQ(popped, g.task_count());
  EXPECT_EQ(tracker.scheduled_count(), g.task_count());
}

}  // namespace
}  // namespace caft
