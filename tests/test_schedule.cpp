// Tests for the fault-tolerant schedule container (sched/schedule) and the
// aggregate statistics (sched/bounds).
#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dag/generators.hpp"
#include "sched/bounds.hpp"

namespace caft {
namespace {

ProcId P(std::size_t i) { return ProcId(static_cast<ProcId::value_type>(i)); }
TaskId T(std::size_t i) { return TaskId(static_cast<TaskId::value_type>(i)); }

/// chain(2) with eps = 1 on 3 processors.
struct Fixture {
  TaskGraph g = chain(2, 10.0);
  Platform platform{3};
  Schedule schedule{g, platform, 1, CommModelKind::kOnePort};
};

CommTimes times_at(double start, double finish) {
  CommTimes t;
  t.link_start = start;
  t.link_finish = finish;
  t.send_finish = finish;
  t.recv_start = start;
  t.arrival = finish;
  return t;
}

TEST(Schedule, ReplicaBookkeeping) {
  Fixture f;
  EXPECT_EQ(f.schedule.primary_count(), 2u);
  EXPECT_FALSE(f.schedule.complete());
  EXPECT_FALSE(f.schedule.has_replica(T(0), 0));
  f.schedule.set_replica(T(0), 0, {P(0), 0.0, 5.0});
  EXPECT_TRUE(f.schedule.has_replica(T(0), 0));
  EXPECT_EQ(f.schedule.primaries_recorded(T(0)), 1u);
  EXPECT_FALSE(f.schedule.complete());
  f.schedule.set_replica(T(0), 1, {P(1), 0.0, 5.0});
  f.schedule.set_replica(T(1), 0, {P(0), 5.0, 10.0});
  f.schedule.set_replica(T(1), 1, {P(2), 6.0, 11.0});
  EXPECT_TRUE(f.schedule.complete());
}

TEST(Schedule, RejectsDoublePlacement) {
  Fixture f;
  f.schedule.set_replica(T(0), 0, {P(0), 0.0, 5.0});
  EXPECT_THROW(f.schedule.set_replica(T(0), 0, {P(1), 0.0, 5.0}), CheckError);
}

TEST(Schedule, RejectsOutOfRangeReplica) {
  Fixture f;
  EXPECT_THROW(f.schedule.set_replica(T(0), 2, {P(0), 0.0, 5.0}), CheckError);
}

TEST(Schedule, RejectsBackwardTimes) {
  Fixture f;
  EXPECT_THROW(f.schedule.set_replica(T(0), 0, {P(0), 5.0, 3.0}), CheckError);
}

TEST(Schedule, NeedsEnoughProcessors) {
  TaskGraph g = chain(2);
  Platform tiny(1);
  EXPECT_THROW(Schedule(g, tiny, 1, CommModelKind::kOnePort), CheckError);
}

TEST(Schedule, LatencyIsMaxOverTasksOfFirstReplica) {
  Fixture f;
  f.schedule.set_replica(T(0), 0, {P(0), 0.0, 5.0});
  f.schedule.set_replica(T(0), 1, {P(1), 0.0, 6.0});
  f.schedule.set_replica(T(1), 0, {P(0), 5.0, 15.0});
  f.schedule.set_replica(T(1), 1, {P(2), 10.0, 25.0});
  // Task 0 first done at 5, task 1 first done at 15.
  EXPECT_DOUBLE_EQ(f.schedule.zero_crash_latency(), 15.0);
  // Upper bound takes the last replica: max(6, 25).
  EXPECT_DOUBLE_EQ(f.schedule.upper_bound_latency(), 25.0);
}

TEST(Schedule, IncompleteLatencyThrows) {
  Fixture f;
  EXPECT_THROW((void)f.schedule.zero_crash_latency(), CheckError);
}

TEST(Schedule, HorizonCoversReplicasAndArrivals) {
  Fixture f;
  f.schedule.set_replica(T(0), 0, {P(0), 0.0, 5.0});
  f.schedule.set_replica(T(0), 1, {P(1), 0.0, 6.0});
  f.schedule.set_replica(T(1), 0, {P(0), 5.0, 15.0});
  f.schedule.set_replica(T(1), 1, {P(2), 10.0, 25.0});
  EXPECT_DOUBLE_EQ(f.schedule.horizon(), 25.0);

  CommAssignment c;
  c.edge = 0;
  c.from = {T(0), 1};
  c.to = {T(1), 1};
  c.src_proc = P(1);
  c.dst_proc = P(2);
  c.volume = 1.0;
  c.times = times_at(6.0, 30.0);  // arrival after every replica finish
  f.schedule.add_comm(c);
  EXPECT_DOUBLE_EQ(f.schedule.horizon(), 30.0);
}

TEST(Schedule, HorizonIgnoresNonFiniteInstants) {
  // A "partially dead" schedule: some copies were reserved but never got a
  // finite timetable (+inf sentinels). Folding them into horizon() would
  // poison every crash-window range and snapshot bound derived from it.
  const double inf = std::numeric_limits<double>::infinity();
  Fixture f;
  f.schedule.set_replica(T(0), 0, {P(0), 0.0, 5.0});
  f.schedule.set_replica(T(0), 1, {P(1), 0.0, 6.0});
  f.schedule.set_replica(T(1), 0, {P(0), 5.0, 15.0});
  f.schedule.set_replica(T(1), 1, {P(2), 10.0, 25.0});

  // An unscheduled copy's message: committed but its arrival never timed.
  CommAssignment dead;
  dead.edge = 0;
  dead.from = {T(0), 0};
  dead.to = {T(1), 0};
  dead.src_proc = P(0);
  dead.dst_proc = P(2);
  dead.volume = 1.0;
  dead.times = times_at(5.0, inf);
  f.schedule.add_comm(dead);
  EXPECT_DOUBLE_EQ(f.schedule.horizon(), 25.0);

  // A duplicate reserved with an +inf finish (never patched to a real slot)
  // must not poison the replica fold either.
  f.schedule.add_duplicate(T(1), {P(1), 30.0, inf});
  EXPECT_DOUBLE_EQ(f.schedule.horizon(), 25.0);
  EXPECT_TRUE(std::isfinite(f.schedule.horizon()));
}

TEST(Schedule, CommRecordingAndLookup) {
  Fixture f;
  f.schedule.set_replica(T(0), 0, {P(0), 0.0, 5.0});
  f.schedule.set_replica(T(0), 1, {P(1), 0.0, 5.0});
  f.schedule.set_replica(T(1), 0, {P(2), 15.0, 25.0});
  f.schedule.set_replica(T(1), 1, {P(0), 5.0, 15.0});

  CommAssignment c;
  c.edge = 0;
  c.from = {T(0), 0};
  c.to = {T(1), 0};
  c.src_proc = P(0);
  c.dst_proc = P(2);
  c.volume = 10.0;
  c.times = times_at(5.0, 15.0);
  f.schedule.add_comm(c);

  EXPECT_EQ(f.schedule.comms().size(), 1u);
  EXPECT_EQ(f.schedule.incoming_comms(T(1), 0).size(), 1u);
  EXPECT_TRUE(f.schedule.incoming_comms(T(1), 1).empty());
  EXPECT_EQ(f.schedule.message_count(), 1u);
  EXPECT_DOUBLE_EQ(f.schedule.message_volume(), 10.0);
}

TEST(Schedule, IntraCommNotCountedAsMessage) {
  Fixture f;
  f.schedule.set_replica(T(0), 0, {P(0), 0.0, 5.0});
  f.schedule.set_replica(T(1), 0, {P(0), 5.0, 15.0});
  CommAssignment c;
  c.edge = 0;
  c.from = {T(0), 0};
  c.to = {T(1), 0};
  c.src_proc = P(0);
  c.dst_proc = P(0);
  c.volume = 10.0;
  c.times = times_at(5.0, 5.0);
  f.schedule.add_comm(c);
  EXPECT_TRUE(c.intra());
  EXPECT_EQ(f.schedule.message_count(), 0u);
  EXPECT_DOUBLE_EQ(f.schedule.message_volume(), 0.0);
}

TEST(Schedule, CommEndpointValidation) {
  Fixture f;
  f.schedule.set_replica(T(0), 0, {P(0), 0.0, 5.0});
  f.schedule.set_replica(T(1), 0, {P(1), 5.0, 15.0});
  CommAssignment c;
  c.edge = 0;
  c.from = {T(1), 0};  // wrong direction
  c.to = {T(0), 0};
  c.src_proc = P(1);
  c.dst_proc = P(0);
  EXPECT_THROW(f.schedule.add_comm(c), CheckError);
}

TEST(Schedule, DuplicatesExtendReplicaSet) {
  Fixture f;
  f.schedule.set_replica(T(0), 0, {P(0), 0.0, 5.0});
  f.schedule.set_replica(T(0), 1, {P(1), 0.0, 5.0});
  const ReplicaIndex dup = f.schedule.add_duplicate(T(0), {P(2), 1.0, 6.0});
  EXPECT_EQ(dup, 2u);
  EXPECT_EQ(f.schedule.total_replicas(T(0)), 3u);
  EXPECT_EQ(f.schedule.duplicates(T(0)).size(), 1u);
  EXPECT_EQ(f.schedule.replica(T(0), dup).proc, P(2));
}

TEST(Schedule, PatchDuplicate) {
  Fixture f;
  const ReplicaIndex dup = f.schedule.add_duplicate(T(0), {P(2), 0.0, 0.0});
  f.schedule.patch_duplicate(T(0), dup, {P(2), 3.0, 8.0});
  EXPECT_DOUBLE_EQ(f.schedule.replica(T(0), dup).start, 3.0);
  // Primaries cannot be patched.
  f.schedule.set_replica(T(0), 0, {P(0), 0.0, 5.0});
  EXPECT_THROW(f.schedule.patch_duplicate(T(0), 0, {P(0), 0.0, 5.0}),
               CheckError);
}

TEST(Schedule, DuplicateCountsTowardLatency) {
  Fixture f;
  f.schedule.set_replica(T(0), 0, {P(0), 0.0, 5.0});
  f.schedule.set_replica(T(0), 1, {P(1), 0.0, 7.0});
  f.schedule.set_replica(T(1), 0, {P(0), 5.0, 15.0});
  f.schedule.set_replica(T(1), 1, {P(2), 7.0, 17.0});
  f.schedule.add_duplicate(T(1), {P(1), 7.0, 9.0});
  // Duplicate of t1 finishes at 9 -> earliest copy of t1 done at 9.
  EXPECT_DOUBLE_EQ(f.schedule.zero_crash_latency(), 9.0);
  EXPECT_DOUBLE_EQ(f.schedule.upper_bound_latency(), 17.0);
}

TEST(ScheduleStats, AggregatesBusyTimeAndMessages) {
  Fixture f;
  f.schedule.set_replica(T(0), 0, {P(0), 0.0, 5.0});
  f.schedule.set_replica(T(0), 1, {P(1), 0.0, 5.0});
  f.schedule.set_replica(T(1), 0, {P(0), 5.0, 15.0});
  f.schedule.set_replica(T(1), 1, {P(1), 5.0, 15.0});
  CommAssignment c;
  c.edge = 0;
  c.from = {T(0), 0};
  c.to = {T(1), 1};
  c.src_proc = P(0);
  c.dst_proc = P(1);
  c.volume = 10.0;
  c.times = times_at(5.0, 15.0);
  f.schedule.add_comm(c);

  const ScheduleStats stats = schedule_stats(f.schedule);
  EXPECT_DOUBLE_EQ(stats.zero_crash_latency, 15.0);
  EXPECT_EQ(stats.inter_proc_messages, 1u);
  EXPECT_EQ(stats.intra_proc_handoffs, 0u);
  EXPECT_DOUBLE_EQ(stats.busy_time[0], 15.0);
  EXPECT_DOUBLE_EQ(stats.busy_time[1], 15.0);
  EXPECT_DOUBLE_EQ(stats.busy_time[2], 0.0);
  EXPECT_EQ(stats.procs_used, 2u);
  EXPECT_DOUBLE_EQ(stats.messages_per_edge, 1.0);
  EXPECT_NEAR(stats.mean_utilization, 1.0, 1e-12);
}

TEST(ScheduleStats, IncompleteRejected) {
  Fixture f;
  EXPECT_THROW(schedule_stats(f.schedule), CheckError);
}

}  // namespace
}  // namespace caft
