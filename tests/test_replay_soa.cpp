// Micro-property suite pinning the SoA replay kernel and the striped-CAS
// SharedReplayMemo introduced by the structure-of-arrays refactor:
//
//  - dead-mask closure (the single linear topological pass over
//    direct_kill_mask_ words) must compute exactly the fixpoint the old
//    worklist propagation computed, witnessed against the naive
//    simulate_crashes reference on randomized 64-processor schedules —
//    the widest platform the bitmask path handles;
//  - the > 64-processor worklist fallback must stay byte-identical too;
//  - the lock-free memo must survive a concurrent insert/lookup/evict
//    torture (mask space >> capacity, many threads, one engine) with every
//    returned record still the pure function of its scenario and the
//    resident-entry count structurally bounded by the capacity. This test
//    is in the TSan CI job's filter: the hazard-pointer reclamation and
//    CAS publication protocol are exercised under the race detector.
#include "sim/replay_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "algo/caft.hpp"
#include "campaign/scenario_sampler.hpp"
#include "comm/one_port.hpp"
#include "common/rng.hpp"
#include "dag/generators.hpp"
#include "helpers.hpp"
#include "sim/crash_sim.hpp"

namespace caft {
namespace {

using test::Scenario;

Schedule caft_for(const Scenario& s, std::size_t eps) {
  CaftOptions options;
  options.base = SchedulerOptions{eps, CommModelKind::kOnePort};
  return caft_schedule(s.graph, *s.platform, *s.costs, options);
}

/// Exact, field-by-field comparison; doubles compare with ==.
void expect_identical(const CrashResult& naive, const CrashResult& incr,
                      const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(naive.success, incr.success);
  EXPECT_EQ(naive.latency, incr.latency);
  EXPECT_EQ(naive.delivered_messages, incr.delivered_messages);
  EXPECT_EQ(naive.order_relaxations, incr.order_relaxations);
  EXPECT_EQ(naive.order_deadlock, incr.order_deadlock);
  ASSERT_EQ(naive.completed.size(), incr.completed.size());
  ASSERT_EQ(naive.finish.size(), incr.finish.size());
  for (std::size_t t = 0; t < naive.completed.size(); ++t) {
    ASSERT_EQ(naive.completed[t].size(), incr.completed[t].size());
    ASSERT_EQ(naive.finish[t].size(), incr.finish[t].size());
    for (std::size_t r = 0; r < naive.completed[t].size(); ++r) {
      EXPECT_EQ(naive.completed[t][r], incr.completed[t][r])
          << "task " << t << " replica " << r;
      EXPECT_EQ(naive.finish[t][r], incr.finish[t][r])
          << "task " << t << " replica " << r;
    }
  }
}

/// Non-asserting variant usable off the main thread (gtest assertions are
/// not thread-safe): true iff every field matches exactly.
bool results_identical(const CrashResult& a, const CrashResult& b) {
  if (a.success != b.success || a.latency != b.latency ||
      a.delivered_messages != b.delivered_messages ||
      a.order_relaxations != b.order_relaxations ||
      a.order_deadlock != b.order_deadlock)
    return false;
  if (a.completed.size() != b.completed.size() ||
      a.finish.size() != b.finish.size())
    return false;
  for (std::size_t t = 0; t < a.completed.size(); ++t) {
    if (a.completed[t] != b.completed[t] || a.finish[t] != b.finish[t])
      return false;
  }
  return true;
}

CrashScenario mask_scenario(std::size_t procs, std::uint64_t mask) {
  std::vector<ProcId> failed;
  for (std::size_t p = 0; p < procs; ++p)
    if ((mask >> p) & 1u) failed.push_back(ProcId(p));
  return CrashScenario::at_zero(procs, failed);
}

// ----------------------------------------------- dead-mask closure property

TEST(ReplaySoa, DeadMaskClosureMatchesNaiveOnRandom64ProcSchedules) {
  // 64 processors is the full width of the bitmask word the linear
  // topological closure operates on. Randomized dead-from-start masks of
  // every size class — singletons, small random subsets, half the machine,
  // all-but-one, all — must replay byte-identically to simulate_crashes,
  // whose kill set is still computed by per-event worklist propagation.
  ReplayEngine::Scratch scratch;
  for (const std::uint64_t seed : {101ull, 113ull}) {
    RandomDagParams dag;
    dag.min_tasks = 20;
    dag.max_tasks = 40;
    const Scenario s = test::random_setup(seed, 64, 2.0, dag);
    const Schedule schedule = caft_for(s, 1);
    const ReplayEngine engine(schedule, *s.costs);
    Rng rng(seed * 31 + 7);

    std::vector<std::uint64_t> masks;
    masks.push_back(0);                      // no dead procs: closure skipped
    masks.push_back(~std::uint64_t{0});      // whole machine dead
    masks.push_back(~std::uint64_t{0} >> 1); // all but the top proc
    for (std::size_t p = 0; p < 64; p += 7)  // singleton sweep
      masks.push_back(std::uint64_t{1} << p);
    for (int draw = 0; draw < 24; ++draw) {  // random subsets, mixed k
      const std::size_t k =
          static_cast<std::size_t>(rng.uniform_int(1, draw % 3 == 0 ? 32 : 6));
      std::uint64_t mask = 0;
      for (const std::size_t p : rng.sample_without_replacement(64, k))
        mask |= std::uint64_t{1} << p;
      masks.push_back(mask);
    }

    for (const std::uint64_t mask : masks) {
      const CrashScenario scenario = mask_scenario(64, mask);
      const CrashResult naive = simulate_crashes(schedule, *s.costs, scenario);
      const CrashResult incr = engine.replay(scenario, scratch);
      expect_identical(naive, incr,
                       "seed " + std::to_string(seed) + " mask " +
                           std::to_string(mask));
    }
  }
}

TEST(ReplaySoa, MidRunCrashesMatchNaiveOn64Procs) {
  // θ-crashes (strictly positive crash instants) take the event-driven
  // path — candidate cache, propagate(), all-dirty invalidation — rather
  // than the up-front closure. Pin that side on the same wide platform.
  RandomDagParams dag;
  dag.min_tasks = 20;
  dag.max_tasks = 35;
  const Scenario s = test::random_setup(127, 64, 1.0, dag);
  const Schedule schedule = caft_for(s, 1);
  const ReplayEngine engine(schedule, *s.costs);
  const double horizon = schedule.horizon();
  ReplayEngine::Scratch scratch;
  Rng rng(1279);
  const double inf = std::numeric_limits<double>::infinity();

  for (int draw = 0; draw < 24; ++draw) {
    std::vector<double> times(64, inf);
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 4));
    for (const std::size_t p : rng.sample_without_replacement(64, k))
      times[p] = rng.uniform(0.0, horizon * 1.1);
    const CrashScenario scenario(std::move(times));
    const CrashResult naive = simulate_crashes(schedule, *s.costs, scenario);
    const CrashResult incr = engine.replay(scenario, scratch);
    expect_identical(naive, incr, "theta draw " + std::to_string(draw));
  }
}

TEST(ReplaySoa, WorklistFallbackMatchesNaiveAbove64Procs) {
  // Platforms wider than the 64-bit mask word keep the old worklist
  // propagation (and skip the memo). The schedulers cap platforms at 64
  // processors (support masks), so the schedule is hand-posted through the
  // one-port engine: a 10-task chain, two replicas per task, every
  // replica-to-replica communication committed, spread over 72 processors.
  const std::size_t procs = 72;
  const TaskGraph g = chain(10, 5.0);
  Platform platform(procs);
  const CostModel costs = uniform_costs(g, platform, 10.0, 1.0);
  Schedule sched(g, platform, 1, CommModelKind::kOnePort);
  OnePortEngine one_port(platform, costs);

  const auto proc_of = [&](std::size_t t, ReplicaIndex r) {
    return ProcId((t * 7 + r * 3) % procs);
  };
  const std::vector<TaskId> tasks = g.all_tasks();
  std::vector<std::array<TaskTimes, 2>> times(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (ReplicaIndex r = 0; r < 2; ++r) {
      double ready = 0.0;
      if (t > 0) {
        for (ReplicaIndex q = 0; q < 2; ++q) {
          CommAssignment ca;
          ca.edge = static_cast<EdgeIndex>(t - 1);
          ca.from = {tasks[t - 1], q};
          ca.to = {tasks[t], r};
          ca.src_proc = proc_of(t - 1, q);
          ca.dst_proc = proc_of(t, r);
          ca.volume = 5.0;
          ca.times = one_port.post_comm(ca.src_proc, ca.dst_proc, ca.volume,
                                        times[t - 1][q].finish);
          ready = std::max(ready, ca.times.arrival);
          sched.add_comm(ca);
        }
      }
      times[t][r] = one_port.post_exec(proc_of(t, r), ready, 10.0);
      sched.set_replica(tasks[t], r,
                        {proc_of(t, r), times[t][r].start, times[t][r].finish});
    }
  }
  ASSERT_TRUE(sched.complete());

  const ReplayEngine engine(sched, costs);
  ReplayEngine::Scratch scratch;
  Rng rng(1319);
  const double inf = std::numeric_limits<double>::infinity();

  // Dead-from-start masks of varying size, plus mid-run θ-crashes: both
  // must match the naive reference through the fallback path.
  for (int draw = 0; draw < 12; ++draw) {
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 8));
    std::vector<ProcId> failed;
    for (const std::size_t p : rng.sample_without_replacement(procs, k))
      failed.push_back(ProcId(p));
    const CrashScenario scenario = CrashScenario::at_zero(procs, failed);
    const CrashResult naive = simulate_crashes(sched, costs, scenario);
    const CrashResult incr = engine.replay(scenario, scratch);
    expect_identical(naive, incr, "fallback draw " + std::to_string(draw));
  }
  for (int draw = 0; draw < 8; ++draw) {
    std::vector<double> crash_times(procs, inf);
    for (const std::size_t p : rng.sample_without_replacement(procs, 3))
      crash_times[p] = rng.uniform(0.0, sched.horizon());
    const CrashScenario scenario(std::move(crash_times));
    const CrashResult naive = simulate_crashes(sched, costs, scenario);
    const CrashResult incr = engine.replay(scenario, scratch);
    expect_identical(naive, incr, "fallback theta " + std::to_string(draw));
  }
}

// ------------------------------------------------------- memo torture test

TEST(ReplaySoa, MemoTortureConcurrentInsertLookupEvict) {
  // Concurrent insert/lookup/evict on one striped-CAS memo: the mask space
  // (C(12,2) = 66 scenarios) is far larger than the 16-slot capacity, so
  // slots are continually displaced while other threads read them. Run in
  // the TSan CI job, this drives the hazard-pointer publish/verify/retire
  // protocol; here we additionally check the determinism contract — every
  // record handed back must equal the precomputed naive reference for its
  // scenario, no matter which thread populated or displaced which slot —
  // and the structural capacity bound.
  const Scenario s = test::random_setup(137, 12, 1.0);
  const Schedule schedule = caft_for(s, 1);
  const ReplayEngine engine(schedule, *s.costs);

  const UniformKSampler sampler(12, 2);
  Rng pool_rng(1777);
  std::vector<CrashScenario> pool;
  std::vector<CrashResult> reference;
  for (int i = 0; i < 66; ++i) {
    pool.push_back(sampler.sample(pool_rng));
    reference.push_back(simulate_crashes(schedule, *s.costs, pool.back()));
  }

  SharedMemoOptions memo_options;
  memo_options.capacity = 16;
  memo_options.shards = 4;
  SharedReplayMemo shared(memo_options);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kItersPerThread = 2000;
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> capacity_breaches{0};
  std::vector<std::thread> threads;
  for (std::size_t worker = 0; worker < kThreads; ++worker) {
    threads.emplace_back([&, worker] {
      ReplayEngine::Scratch scratch;
      Rng rng(9000 + worker);
      for (std::size_t iter = 0; iter < kItersPerThread; ++iter) {
        const std::size_t pick =
            static_cast<std::size_t>(rng.uniform_int(0, pool.size() - 1));
        const CrashResult got = engine.replay(pool[pick], scratch, &shared);
        if (!results_identical(got, reference[pick]))
          mismatches.fetch_add(1, std::memory_order_relaxed);
        if (iter % 64 == 0 &&
            shared.stats().entries > memo_options.capacity)
          capacity_breaches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0u)
      << "a memo lookup returned a record that is not the pure function of "
         "its scenario";
  EXPECT_EQ(capacity_breaches.load(), 0u);
  const SharedReplayMemo::Stats stats = shared.stats();
  EXPECT_LE(stats.entries, memo_options.capacity);
  EXPECT_GT(stats.lookups, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u) << "mask space >> capacity must displace";
}

}  // namespace
}  // namespace caft
