// Edge-case sweeps across the whole stack: degenerate platforms, zero-cost
// work, extreme replication, and hostile-but-legal inputs. Everything here
// must behave, not just not-crash: schedules validate and metrics stay
// finite.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/caft.hpp"
#include "algo/caft_batch.hpp"
#include "algo/ftbar.hpp"
#include "algo/ftsa.hpp"
#include "algo/heft.hpp"
#include "helpers.hpp"
#include "metrics/metrics.hpp"
#include "sched/validator.hpp"
#include "sim/resilience.hpp"

namespace caft {
namespace {

using test::Scenario;
using test::graph_setup;
using test::uniform_setup;

TEST(EdgeCases, SingleProcessorSingleTask) {
  Scenario s = uniform_setup(chain(1), 1, 5.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  EXPECT_DOUBLE_EQ(sched.zero_crash_latency(), 5.0);
  EXPECT_TRUE(validate_schedule(sched, *s.costs).ok());
}

TEST(EdgeCases, ZeroExecutionTimes) {
  // Tasks that cost nothing anywhere: everything collapses to communication.
  Scenario s = uniform_setup(fork_join(4, 10.0), 4, 0.0, 1.0);
  const Schedule sched = caft_schedule(
      s.graph, *s.platform, *s.costs,
      [] {
        CaftOptions o;
        o.base = {1, CommModelKind::kOnePort};
        return o;
      }());
  EXPECT_TRUE(validate_schedule(sched, *s.costs).ok());
  EXPECT_GE(sched.zero_crash_latency(), 0.0);
  EXPECT_TRUE(std::isfinite(sched.zero_crash_latency()));
}

TEST(EdgeCases, ZeroLinkDelays) {
  // Free communication: the one-port engine still serializes *nothing*
  // time-wise (zero-duration transfers), and schedules stay valid.
  Scenario s = uniform_setup(fork_join(4, 10.0), 4, 5.0, 0.0);
  for (const std::size_t eps : {0u, 1u, 2u}) {
    CaftOptions options;
    options.base = {eps, CommModelKind::kOnePort};
    const Schedule sched =
        caft_schedule(s.graph, *s.platform, *s.costs, options);
    EXPECT_TRUE(validate_schedule(sched, *s.costs).ok()) << "eps " << eps;
  }
}

TEST(EdgeCases, MaximumReplicationEpsEqualsMMinusOne) {
  // ε = m - 1: every processor hosts a replica of every task.
  Scenario s = uniform_setup(chain(4, 20.0), 4, 5.0, 1.0);
  const std::size_t eps = 3;
  const SchedulerOptions options{eps, CommModelKind::kOnePort};
  CaftOptions caft_options;
  caft_options.base = options;
  const Schedule caft =
      caft_schedule(s.graph, *s.platform, *s.costs, caft_options);
  const Schedule ftsa = ftsa_schedule(s.graph, *s.platform, *s.costs, options);
  EXPECT_TRUE(validate_schedule(caft, *s.costs).ok());
  EXPECT_TRUE(validate_schedule(ftsa, *s.costs).ok());
  // With a copy everywhere, even m-1 failures are survivable.
  EXPECT_TRUE(check_resilience_exhaustive(caft, *s.costs, eps).resistant);
}

TEST(EdgeCases, DisconnectedGraph) {
  // Two unrelated components schedule independently but share resources.
  TaskGraph g;
  const TaskId a0 = g.add_task();
  const TaskId a1 = g.add_task();
  g.add_edge(a0, a1, 30.0);
  const TaskId b0 = g.add_task();
  const TaskId b1 = g.add_task();
  g.add_edge(b0, b1, 30.0);
  Scenario s = uniform_setup(std::move(g), 3, 10.0, 1.0);
  FtbarOptions options;
  options.base = {1, CommModelKind::kOnePort};
  const Schedule sched =
      ftbar_schedule(s.graph, *s.platform, *s.costs, options);
  EXPECT_TRUE(validate_schedule(sched, *s.costs).ok());
  EXPECT_TRUE(check_resilience_exhaustive(sched, *s.costs, 1).resistant);
}

TEST(EdgeCases, WideGraphManyMoreTasksThanProcessors) {
  // 64 independent tasks on 3 processors with eps=1: heavy serialization,
  // still valid and resistant.
  TaskGraph g;
  for (int i = 0; i < 64; ++i) g.add_task();
  Scenario s = uniform_setup(std::move(g), 3, 4.0, 1.0);
  CaftOptions options;
  options.base = {1, CommModelKind::kOnePort};
  const Schedule sched =
      caft_schedule(s.graph, *s.platform, *s.costs, options);
  EXPECT_TRUE(validate_schedule(sched, *s.costs).ok());
  EXPECT_TRUE(check_resilience_exhaustive(sched, *s.costs, 1).resistant);
  // Balance bound: 64 tasks x 2 copies x 4 time units over 3 procs.
  EXPECT_GE(sched.upper_bound_latency(),
            replicated_lower_bound(s.graph, *s.costs, 1) - 1e-9);
}

TEST(EdgeCases, ExtremeHeterogeneity) {
  // One processor is 1000x slower for every task: schedulers should avoid
  // it for the earliest copies.
  TaskGraph g = chain(5, 10.0);
  Platform platform(3);
  CostModel costs(g.task_count(), platform);
  for (const TaskId t : g.all_tasks()) {
    costs.set_exec(t, ProcId(0), 1.0);
    costs.set_exec(t, ProcId(1), 1.0);
    costs.set_exec(t, ProcId(2), 1000.0);
  }
  costs.set_all_unit_delays(0.5);
  const Schedule sched =
      heft_schedule(g, platform, costs, CommModelKind::kOnePort);
  EXPECT_LT(sched.zero_crash_latency(), 100.0);  // never touches P2
  for (const TaskId t : g.all_tasks())
    EXPECT_NE(sched.replica(t, 0).proc, ProcId(2));
}

TEST(EdgeCases, HugeVolumesTinyComputation) {
  // Granularity ~ 0.001: communication utterly dominates; co-location is
  // the only sane layout and all algorithms should find it for the chain.
  Scenario s = uniform_setup(chain(6, 10000.0), 4, 1.0, 1.0);
  for (const std::size_t eps : {0u, 1u}) {
    CaftOptions options;
    options.base = {eps, CommModelKind::kOnePort};
    const Schedule sched =
        caft_schedule(s.graph, *s.platform, *s.costs, options);
    // Fully local chains: zero inter-processor messages.
    EXPECT_EQ(sched.message_count(), 0u) << "eps " << eps;
    EXPECT_DOUBLE_EQ(sched.zero_crash_latency(), 6.0);
  }
}

TEST(EdgeCases, BatchLargerThanGraph) {
  Scenario s = uniform_setup(fork_join(3, 10.0), 4, 5.0, 1.0);
  CaftBatchOptions options;
  options.caft.base = {1, CommModelKind::kOnePort};
  options.batch_size = 1000;  // far larger than the task count
  const Schedule sched =
      caft_batch_schedule(s.graph, *s.platform, *s.costs, options);
  EXPECT_TRUE(validate_schedule(sched, *s.costs).ok());
}

TEST(EdgeCases, SelfConsistencyAcrossRepeatedScheduling) {
  // Scheduling the same instance repeatedly from fresh engines must agree
  // bit-for-bit (no hidden global state anywhere in the library).
  Scenario s = test::random_setup(77, 8, 0.6);
  CaftOptions options;
  options.base = {2, CommModelKind::kOnePort};
  const Schedule first =
      caft_schedule(s.graph, *s.platform, *s.costs, options);
  for (int run = 0; run < 3; ++run) {
    const Schedule again =
        caft_schedule(s.graph, *s.platform, *s.costs, options);
    EXPECT_DOUBLE_EQ(again.zero_crash_latency(), first.zero_crash_latency());
    EXPECT_EQ(again.comms().size(), first.comms().size());
  }
}

TEST(EdgeCases, ValidatorRejectsReceivePortOverlap) {
  // Two receptions overlapping at the same processor violate ineq. (3).
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  const TaskId c = g.add_task();
  g.add_edge(a, c, 10.0);
  g.add_edge(b, c, 10.0);
  Platform platform(3);
  CostModel costs = uniform_costs(g, platform, 10.0, 1.0);
  Schedule bad(g, platform, 0, CommModelKind::kOnePort);
  bad.set_replica(a, 0, {ProcId(0), 0.0, 10.0});
  bad.set_replica(b, 0, {ProcId(1), 0.0, 10.0});
  bad.set_replica(c, 0, {ProcId(2), 20.0, 30.0});
  for (int src = 0; src < 2; ++src) {
    CommAssignment cm;
    cm.edge = static_cast<EdgeIndex>(src);
    cm.from = {src == 0 ? a : b, 0};
    cm.to = {c, 0};
    cm.src_proc = ProcId(static_cast<ProcId::value_type>(src));
    cm.dst_proc = ProcId(2);
    cm.volume = 10.0;
    cm.times.link_start = 10.0;
    cm.times.link_finish = 20.0;
    cm.times.send_finish = 20.0;
    cm.times.recv_start = 10.0;  // both receptions [10, 20] — overlap!
    cm.times.arrival = 20.0;
    cm.times.segments.push_back(
        {platform.topology().direct_link(cm.src_proc, ProcId(2)), 10.0, 20.0});
    bad.add_comm(cm);
  }
  const ValidationResult result = validate_schedule(bad, costs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("receive port"), std::string::npos);
}

}  // namespace
}  // namespace caft
