// Tests for ε-failure resistance (sim/resilience): Proposition 5.2 checked
// exhaustively for all three fault-tolerant schedulers.
#include "sim/resilience.hpp"

#include <gtest/gtest.h>

#include "algo/caft.hpp"
#include "algo/caft_batch.hpp"
#include "algo/ftbar.hpp"
#include "algo/ftsa.hpp"
#include "algo/heft.hpp"
#include "helpers.hpp"

namespace caft {
namespace {

using test::Scenario;
using test::graph_setup;
using test::random_setup;
using test::uniform_setup;

RandomDagParams small_dag() {
  RandomDagParams params;
  params.min_tasks = 25;
  params.max_tasks = 40;
  return params;
}

TEST(Resilience, HeftFailsUnderAnyUsedProcessorCrash) {
  Scenario s = uniform_setup(chain(4, 10.0), 3, 10.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  const ResilienceReport report =
      check_resilience_exhaustive(sched, *s.costs, 1);
  EXPECT_FALSE(report.resistant);
  EXPECT_FALSE(report.witness.empty());
  EXPECT_EQ(report.scenarios_tested, 3u);
}

TEST(Resilience, ZeroFailuresAlwaysResistant) {
  Scenario s = random_setup(1, 8, 1.0, small_dag());
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  const ResilienceReport report =
      check_resilience_exhaustive(sched, *s.costs, 0);
  EXPECT_TRUE(report.resistant);
  EXPECT_EQ(report.scenarios_tested, 1u);
}

TEST(Resilience, WorstLatencyAtLeastBest) {
  Scenario s = random_setup(2, 8, 1.0, small_dag());
  const Schedule sched = ftsa_schedule(
      s.graph, *s.platform, *s.costs, SchedulerOptions{1, CommModelKind::kOnePort});
  const ResilienceReport report =
      check_resilience_exhaustive(sched, *s.costs, 1);
  ASSERT_TRUE(report.resistant);
  EXPECT_GE(report.worst_latency, report.best_latency);
  EXPECT_GE(report.best_latency, 0.0);
}

TEST(Resilience, SampledAgreesWithExhaustiveOnResistantSchedule) {
  Scenario s = random_setup(3, 8, 1.0, small_dag());
  const Schedule sched = ftsa_schedule(
      s.graph, *s.platform, *s.costs, SchedulerOptions{2, CommModelKind::kOnePort});
  Rng rng(7);
  const ResilienceReport sampled =
      check_resilience_sampled(sched, *s.costs, 2, 40, rng);
  EXPECT_TRUE(sampled.resistant);
  EXPECT_EQ(sampled.scenarios_tested, 40u);
}

TEST(Resilience, SimulateRandomCrashesRespectsCount) {
  Scenario s = random_setup(4, 8, 1.0, small_dag());
  const Schedule sched = ftsa_schedule(
      s.graph, *s.platform, *s.costs, SchedulerOptions{2, CommModelKind::kOnePort});
  Rng rng(11);
  const CrashResult result = simulate_random_crashes(sched, *s.costs, 2, rng);
  EXPECT_TRUE(result.success);
}

/// The core guarantee (Proposition 5.2): exhaustive ε-subset survival for
/// each fault-tolerant algorithm across seeds and ε.
class Proposition52
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(Proposition52, FtsaResistsEpsFailures) {
  const auto [seed, eps] = GetParam();
  Scenario s = random_setup(seed, 8, 0.8, small_dag());
  const Schedule sched = ftsa_schedule(
      s.graph, *s.platform, *s.costs, SchedulerOptions{eps, CommModelKind::kOnePort});
  const ResilienceReport report =
      check_resilience_exhaustive(sched, *s.costs, eps);
  EXPECT_TRUE(report.resistant)
      << report.failures << "/" << report.scenarios_tested << " failed";
}

TEST_P(Proposition52, FtbarResistsEpsFailures) {
  const auto [seed, eps] = GetParam();
  Scenario s = random_setup(seed, 8, 0.8, small_dag());
  FtbarOptions options;
  options.base = SchedulerOptions{eps, CommModelKind::kOnePort};
  const Schedule sched = ftbar_schedule(s.graph, *s.platform, *s.costs, options);
  const ResilienceReport report =
      check_resilience_exhaustive(sched, *s.costs, eps);
  EXPECT_TRUE(report.resistant)
      << report.failures << "/" << report.scenarios_tested << " failed";
}

TEST_P(Proposition52, CaftResistsEpsFailures) {
  // The guarantee is carried by the kTransitive support mode; the default
  // kDirect mode reproduces the paper (including its blind spot, measured
  // by CaftDirectMode.* below).
  const auto [seed, eps] = GetParam();
  Scenario s = random_setup(seed, 8, 0.8, small_dag());
  CaftOptions options;
  options.base = SchedulerOptions{eps, CommModelKind::kOnePort};
  options.support_mode = CaftSupportMode::kTransitive;
  const Schedule sched = caft_schedule(s.graph, *s.platform, *s.costs, options);
  const ResilienceReport report =
      check_resilience_exhaustive(sched, *s.costs, eps);
  EXPECT_TRUE(report.resistant)
      << report.failures << "/" << report.scenarios_tested << " failed";
}

TEST_P(Proposition52, CaftBatchResistsEpsFailures) {
  const auto [seed, eps] = GetParam();
  Scenario s = random_setup(seed, 8, 0.8, small_dag());
  CaftBatchOptions options;
  options.caft.base = SchedulerOptions{eps, CommModelKind::kOnePort};
  options.caft.support_mode = CaftSupportMode::kTransitive;
  options.batch_size = 4;
  const Schedule sched =
      caft_batch_schedule(s.graph, *s.platform, *s.costs, options);
  const ResilienceReport report =
      check_resilience_exhaustive(sched, *s.costs, eps);
  EXPECT_TRUE(report.resistant)
      << report.failures << "/" << report.scenarios_tested << " failed";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Proposition52,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(1u, 2u, 3u)));

/// CAFT resistance on the graph families where one-to-one is most active.
class CaftFamilyResilience : public ::testing::TestWithParam<int> {};

TEST_P(CaftFamilyResilience, ResistsTwoFailures) {
  // kTransitive carries the guarantee on every family.
  TaskGraph g;
  switch (GetParam()) {
    case 0: g = fork(8, 100.0); break;
    case 1: g = join(8, 100.0); break;
    case 2: {
      Rng rng(5);
      g = random_out_forest(25, 2, rng);
      break;
    }
    case 3: g = gaussian_elimination(4, 100.0); break;
    default: g = diamond(6, 100.0); break;
  }
  Scenario s =
      graph_setup(std::move(g), 80u + static_cast<std::uint64_t>(GetParam()),
                  8, 0.8);
  CaftOptions options;
  options.base = SchedulerOptions{2, CommModelKind::kOnePort};
  options.support_mode = CaftSupportMode::kTransitive;
  const Schedule sched = caft_schedule(s.graph, *s.platform, *s.costs, options);
  const ResilienceReport report =
      check_resilience_exhaustive(sched, *s.costs, 2);
  EXPECT_TRUE(report.resistant)
      << report.failures << "/" << report.scenarios_tested << " failed";
}

INSTANTIATE_TEST_SUITE_P(Families, CaftFamilyResilience,
                         ::testing::Values(0, 1, 2, 3, 4));

/// The paper-faithful kDirect locking (equation (7) taken literally) is
/// NOT ε-resistant at realistic scale: one-to-one chains entangle
/// transitively, and with 80-120 tasks some task almost surely loses every
/// replica under an unlucky crash set. The default kTransitive mode closes
/// exactly that hole. Both facts are pinned here — this is the central
/// robustness finding of the reproduction (see EXPERIMENTS.md).
TEST(CaftDirectMode, DirectLockingBreaksWhereTransitiveHolds) {
  std::size_t direct_failing = 0;
  std::size_t transitive_failing = 0;
  std::size_t direct_msgs = 0, transitive_msgs = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Scenario s = random_setup(seed, 8, 0.8, small_dag());
    CaftOptions direct;
    direct.base = SchedulerOptions{2, CommModelKind::kOnePort};
    direct.support_mode = CaftSupportMode::kDirect;
    CaftOptions transitive = direct;
    transitive.support_mode = CaftSupportMode::kTransitive;
    const Schedule d = caft_schedule(s.graph, *s.platform, *s.costs, direct);
    const Schedule t = caft_schedule(s.graph, *s.platform, *s.costs, transitive);
    direct_failing += check_resilience_exhaustive(d, *s.costs, 2).failures;
    transitive_failing += check_resilience_exhaustive(t, *s.costs, 2).failures;
    direct_msgs += d.message_count();
    transitive_msgs += t.message_count();
  }
  // The direct rule leaves breaking crash sets; the transitive rule leaves
  // none. The price of the guarantee is a bounded message increase.
  EXPECT_GT(direct_failing, 0u);
  EXPECT_EQ(transitive_failing, 0u);
  EXPECT_LE(direct_msgs, transitive_msgs);
}

}  // namespace
}  // namespace caft
