// Tests for interconnect topologies and routing (platform/topology).
#include "platform/topology.hpp"

#include <gtest/gtest.h>

namespace caft {
namespace {

ProcId P(std::size_t i) { return ProcId(static_cast<ProcId::value_type>(i)); }

TEST(Clique, EveryPairAdjacent) {
  const Topology t = Topology::clique(5);
  EXPECT_EQ(t.proc_count(), 5u);
  EXPECT_EQ(t.link_count(), 20u);  // 5*4 directed links
  EXPECT_TRUE(t.is_clique());
  EXPECT_TRUE(t.connected());
  for (std::size_t a = 0; a < 5; ++a)
    for (std::size_t b = 0; b < 5; ++b) {
      if (a == b) continue;
      EXPECT_TRUE(t.direct_link(P(a), P(b)).valid());
      EXPECT_EQ(t.hop_count(P(a), P(b)), 1u);
    }
}

TEST(Clique, SingleProcessor) {
  const Topology t = Topology::clique(1);
  EXPECT_EQ(t.link_count(), 0u);
  EXPECT_TRUE(t.connected());
  EXPECT_TRUE(t.is_clique());
}

TEST(Clique, RouteToSelfEmpty) {
  const Topology t = Topology::clique(3);
  EXPECT_TRUE(t.route(P(1), P(1)).empty());
  EXPECT_EQ(t.hop_count(P(1), P(1)), 0u);
}

TEST(Clique, LinksAreDirectedPairs) {
  const Topology t = Topology::clique(3);
  const LinkId ab = t.direct_link(P(0), P(1));
  const LinkId ba = t.direct_link(P(1), P(0));
  ASSERT_TRUE(ab.valid());
  ASSERT_TRUE(ba.valid());
  EXPECT_NE(ab, ba);
  EXPECT_EQ(t.link(ab).from, P(0));
  EXPECT_EQ(t.link(ab).to, P(1));
  EXPECT_EQ(t.link(ba).from, P(1));
}

TEST(Ring, HopCounts) {
  const Topology t = Topology::ring(6);
  EXPECT_TRUE(t.connected());
  EXPECT_FALSE(t.is_clique());
  EXPECT_EQ(t.hop_count(P(0), P(1)), 1u);
  EXPECT_EQ(t.hop_count(P(0), P(3)), 3u);  // diameter
  EXPECT_EQ(t.hop_count(P(0), P(5)), 1u);  // wrap-around
}

TEST(Ring, TwoProcessors) {
  const Topology t = Topology::ring(2);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.hop_count(P(0), P(1)), 1u);
}

TEST(Star, HubRouting) {
  const Topology t = Topology::star(5);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.hop_count(P(0), P(3)), 1u);  // hub to leaf
  EXPECT_EQ(t.hop_count(P(2), P(4)), 2u);  // leaf via hub
  const auto route = t.route(P(2), P(4));
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(t.link(route[0]).to, P(0));  // through the hub
  EXPECT_EQ(t.link(route[1]).from, P(0));
}

TEST(Mesh, ManhattanDistances) {
  const Topology t = Topology::mesh(3, 4);
  EXPECT_TRUE(t.connected());
  // (0,0) -> (2,3): 2 + 3 hops.
  EXPECT_EQ(t.hop_count(P(0), P(11)), 5u);
  EXPECT_EQ(t.hop_count(P(0), P(1)), 1u);
}

TEST(Mesh, SingleRowIsPath) {
  const Topology t = Topology::mesh(1, 4);
  EXPECT_EQ(t.hop_count(P(0), P(3)), 3u);
}

TEST(Torus, WrapAroundShortens) {
  const Topology t = Topology::torus(4, 4);
  EXPECT_TRUE(t.connected());
  // (0,0) -> (0,3) is 1 hop thanks to the wrap link (vs 3 in a mesh).
  EXPECT_EQ(t.hop_count(P(0), P(3)), 1u);
  EXPECT_EQ(t.hop_count(P(0), P(12)), 1u);  // column wrap
}

TEST(RandomConnected, AlwaysConnected) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const Topology t = Topology::random_connected(12, 3.0, rng);
    EXPECT_TRUE(t.connected()) << "seed " << seed;
    EXPECT_EQ(t.proc_count(), 12u);
  }
}

TEST(RandomConnected, DegreeTargetRespectedApproximately) {
  Rng rng(42);
  const Topology t = Topology::random_connected(20, 4.0, rng);
  // Directed links = 2 * cables; average undirected degree = cables*2/m.
  const double avg_degree =
      static_cast<double>(t.link_count()) / static_cast<double>(t.proc_count());
  EXPECT_GE(avg_degree, 1.8);  // at least near the spanning tree
  EXPECT_LE(avg_degree, 4.5);
}

TEST(Routes, AreShortestAndWellFormed) {
  Rng rng(7);
  const Topology t = Topology::random_connected(10, 3.0, rng);
  for (std::size_t a = 0; a < 10; ++a)
    for (std::size_t b = 0; b < 10; ++b) {
      if (a == b) continue;
      const auto route = t.route(P(a), P(b));
      ASSERT_FALSE(route.empty());
      EXPECT_EQ(t.link(route.front()).from, P(a));
      EXPECT_EQ(t.link(route.back()).to, P(b));
      for (std::size_t i = 1; i < route.size(); ++i)
        EXPECT_EQ(t.link(route[i - 1]).to, t.link(route[i]).from);
      // Shortest: no route can be longer than proc_count - 1.
      EXPECT_LT(route.size(), t.proc_count());
      // Symmetric topologies here: reverse hop count matches.
      EXPECT_EQ(route.size(), t.hop_count(P(b), P(a)));
    }
}

TEST(Topology, RejectsDegenerate) {
  EXPECT_THROW(Topology::clique(0), CheckError);
  EXPECT_THROW(Topology::ring(1), CheckError);
  EXPECT_THROW(Topology::star(1), CheckError);
  EXPECT_THROW(Topology::torus(1, 4), CheckError);
}

}  // namespace
}  // namespace caft
