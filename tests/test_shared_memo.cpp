// Differential and regression suite for the campaign-wide SharedReplayMemo
// (sim/replay_engine.hpp) and its θ-quantized keys:
//
//  - triples naive / incremental+scratch-memo / incremental+shared-memo must
//    fold to *byte-identical* campaign summaries across samplers and
//    1/2/4/8 worker threads (memo placement is unobservable);
//  - θ-quantization must be exactly the documented approximation: a
//    quantized replay equals the bit-exact replay of its bucket-midpoint
//    representative, drift shrinks with the bucket width, and the exactness
//    escape hatch restores naive equivalence;
//  - both memo flavours must stay under their entry caps over campaigns far
//    longer than the cap (clear-on-threshold eviction);
//  - adaptive snapshot spacing must never change replay results.
#include "sim/replay_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "algo/caft.hpp"
#include "campaign/campaign.hpp"
#include "campaign/scenario_sampler.hpp"
#include "dag/generators.hpp"
#include "helpers.hpp"
#include "sim/crash_sim.hpp"

namespace caft {
namespace {

using test::Scenario;

Schedule caft_for(const Scenario& s, std::size_t eps) {
  CaftOptions options;
  options.base = SchedulerOptions{eps, CommModelKind::kOnePort};
  return caft_schedule(s.graph, *s.platform, *s.costs, options);
}

void expect_summaries_identical(const CampaignSummary& a,
                                const CampaignSummary& b,
                                const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.replays, b.replays);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.replays_within_eps, b.replays_within_eps);
  EXPECT_EQ(a.successes_within_eps, b.successes_within_eps);
  EXPECT_EQ(a.max_failed, b.max_failed);
  EXPECT_EQ(a.order_relaxations, b.order_relaxations);
  EXPECT_EQ(a.order_deadlocks, b.order_deadlocks);
  EXPECT_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.min(), b.latency.min());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.stddev(), b.latency.stddev());
  EXPECT_EQ(a.delivered_messages.mean(), b.delivered_messages.mean());
  ASSERT_EQ(a.latency_quantiles.size(), b.latency_quantiles.size());
  for (std::size_t i = 0; i < a.latency_quantiles.size(); ++i) {
    const double av = a.latency_quantiles[i].value;
    const double bv = b.latency_quantiles[i].value;
    // NaN marks "no successful replay yet" — identical summaries may both
    // carry it, and NaN != NaN under IEEE comparison.
    if (std::isnan(av) || std::isnan(bv))
      EXPECT_EQ(std::isnan(av), std::isnan(bv));
    else
      EXPECT_EQ(av, bv);
  }
}

void expect_results_identical(const CrashResult& a, const CrashResult& b,
                              const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.delivered_messages, b.delivered_messages);
  EXPECT_EQ(a.order_relaxations, b.order_relaxations);
  EXPECT_EQ(a.order_deadlock, b.order_deadlock);
  ASSERT_EQ(a.finish.size(), b.finish.size());
  for (std::size_t t = 0; t < a.finish.size(); ++t) {
    ASSERT_EQ(a.finish[t].size(), b.finish[t].size());
    for (std::size_t r = 0; r < a.finish[t].size(); ++r) {
      EXPECT_EQ(a.completed[t][r], b.completed[t][r]);
      EXPECT_EQ(a.finish[t][r], b.finish[t][r]);
    }
  }
}

// ------------------------------------------- campaign-level differentials

TEST(SharedMemo, CampaignTriplesIdenticalAcrossSamplersAndThreads) {
  // naive vs incremental+scratch vs incremental+shared, across four
  // scenario distributions and 1/2/4/8 worker threads, folded summaries
  // byte-identical throughout. This is the tentpole's determinism gate:
  // sharing one memo across workers must be unobservable in the summary.
  const Scenario s = test::random_setup(41, 8, 1.0);
  const Schedule schedule = caft_for(s, 1);
  const double horizon = schedule.horizon();

  std::vector<std::unique_ptr<ScenarioSampler>> samplers;
  samplers.push_back(std::make_unique<UniformKSampler>(8, 2));
  samplers.push_back(
      std::make_unique<CrashWindowSampler>(8, 2, 0.0, horizon));
  samplers.push_back(std::make_unique<ExponentialLifetimeSampler>(
      8, 2.0 / horizon, horizon));
  samplers.push_back(std::make_unique<CorrelatedGroupSampler>(
      8, 3, 0.4, 0.0, horizon * 0.5));

  for (const auto& sampler : samplers) {
    CampaignOptions base;
    base.replays = 400;
    base.block = 64;  // several waves, so memos persist across waves

    CampaignOptions naive = base;
    naive.engine = CampaignEngine::kNaive;
    naive.threads = 2;
    const CampaignSummary reference =
        run_campaign(schedule, *s.costs, *sampler, naive);

    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      for (const CampaignMemo memo :
           {CampaignMemo::kScratch, CampaignMemo::kShared}) {
        CampaignOptions incremental = base;
        incremental.engine = CampaignEngine::kIncremental;
        incremental.threads = threads;
        incremental.memo = memo;
        CampaignTelemetry telemetry;
        const CampaignSummary summary = run_campaign(
            schedule, *s.costs, *sampler, incremental, &telemetry);
        expect_summaries_identical(
            reference, summary,
            sampler->name() + " threads " + std::to_string(threads) +
                (memo == CampaignMemo::kShared ? " shared" : " scratch"));
      }
    }
  }
}

TEST(SharedMemo, EngineLevelTriplesMatchNaive) {
  // Below the executor: the same scenario replayed through simulate_crashes,
  // the engine with a Scratch memo, and the engine with a SharedReplayMemo
  // must agree field for field — including on repeats (memo hits).
  const Scenario s = test::random_setup(43, 8, 5.0);
  const Schedule schedule = caft_for(s, 1);
  const ReplayEngine engine(schedule, *s.costs);
  SharedReplayMemo shared;
  ReplayEngine::Scratch scratch_plain;
  ReplayEngine::Scratch scratch_shared;

  const UniformKSampler uniform(8, 2);
  const CrashWindowSampler window(8, 1, 0.0, schedule.horizon());
  Rng rng(4310);
  for (int draw = 0; draw < 30; ++draw) {
    for (const ScenarioSampler* sampler :
         std::vector<const ScenarioSampler*>{&uniform, &window}) {
      const CrashScenario scenario = sampler->sample(rng);
      const CrashResult naive = simulate_crashes(schedule, *s.costs, scenario);
      const CrashResult& via_scratch = engine.replay(scenario, scratch_plain);
      const CrashResult& via_shared =
          engine.replay(scenario, scratch_shared, &shared);
      const std::string context =
          sampler->name() + " draw " + std::to_string(draw);
      expect_results_identical(naive, via_scratch, context + " scratch");
      expect_results_identical(naive, via_shared, context + " shared");
    }
  }
  // The uniform draws hit the shared memo on repeats.
  EXPECT_GT(shared.stats().hits, 0u);
}

// ------------------------------------------------------- θ-quantization

TEST(SharedMemo, QuantizedReplayEqualsCanonicalRepresentative) {
  // The quantization contract, verified literally: with bucket width w, a
  // crash-at-θ replay through the shared memo must be bit-identical to the
  // *exact* replay of the scenario with every finite positive crash time
  // snapped to its bucket midpoint.
  const Scenario s = test::random_setup(47, 6, 1.0);
  const Schedule schedule = caft_for(s, 1);
  const double horizon = schedule.horizon();
  const double width = horizon / 16.0;

  ReplayEngineOptions quantized_options;
  quantized_options.theta_bucket_width = width;
  const ReplayEngine quantized(schedule, *s.costs, quantized_options);
  const ReplayEngine exact(schedule, *s.costs);
  SharedReplayMemo shared;
  ReplayEngine::Scratch qs;
  ReplayEngine::Scratch es;

  const CrashWindowSampler window(6, 2, 0.0, horizon);
  Rng rng(470);
  for (int draw = 0; draw < 40; ++draw) {
    const CrashScenario scenario = window.sample(rng);
    CrashScenario canonical = CrashScenario::none(6);
    for (std::size_t p = 0; p < 6; ++p) {
      const double t =
          scenario.crash_time(ProcId(static_cast<ProcId::value_type>(p)));
      if (std::isfinite(t) && t > 0.0)
        canonical.set_crash_time(
            ProcId(static_cast<ProcId::value_type>(p)),
            (std::floor(t / width) + 0.5) * width);
    }
    const CrashResult& via_quantized = quantized.replay(scenario, qs, &shared);
    const CrashResult via_exact = exact.replay(canonical, es);
    expect_results_identical(via_exact, via_quantized,
                             "draw " + std::to_string(draw));
  }
}

TEST(SharedMemo, QuantizationDriftShrinksWithBucketWidth) {
  // Replay results are step functions of θ (the state only changes when a
  // crash time crosses an op boundary), so a quantized replay can differ
  // from the exact one only when such a boundary separates θ from its
  // bucket midpoint — a fraction of draws that shrinks linearly with the
  // width. At ε-covered crash counts (k = 1 <= eps), success itself can
  // never drift: the schedule survives both the draw and its representative.
  const Scenario s = test::random_setup(53, 8, 1.0);
  const Schedule schedule = caft_for(s, 1);
  const double horizon = schedule.horizon();
  const ReplayEngine exact(schedule, *s.costs);

  const CrashWindowSampler window(8, 1, 0.0, horizon);
  const int draws = 300;
  std::vector<std::size_t> differing;
  for (const double width : {horizon / 16.0, horizon / 4096.0}) {
    ReplayEngineOptions options;
    options.theta_bucket_width = width;
    const ReplayEngine quantized(schedule, *s.costs, options);
    SharedReplayMemo shared;
    ReplayEngine::Scratch qs;
    ReplayEngine::Scratch es;
    Rng rng(5300);
    std::size_t differs = 0;
    for (int draw = 0; draw < draws; ++draw) {
      const CrashScenario scenario = window.sample(rng);
      const CrashResult& approx = quantized.replay(scenario, qs, &shared);
      const CrashResult& truth = exact.replay(scenario, es);
      ASSERT_TRUE(truth.success);
      EXPECT_TRUE(approx.success);  // k=1 <= eps: survival cannot drift
      if (approx.latency != truth.latency) ++differs;
    }
    differing.push_back(differs);
    // Coarse buckets over a keyspace of m × buckets keys must start
    // hitting within a few hundred draws.
    if (width == horizon / 16.0) {
      EXPECT_GT(shared.stats().hits, 0u);
    }
  }
  // 256× finer buckets: the differing fraction must collapse (and stay
  // small in absolute terms).
  EXPECT_LE(differing[1], differing[0]);
  EXPECT_LE(differing[1], draws / 20);
}

TEST(SharedMemo, ExactnessEscapeHatchDisablesQuantizedHits) {
  // options.exact must restore bit-exact naive equivalence even with a
  // bucket width configured and a shared memo attached.
  const Scenario s = test::random_setup(59, 6, 1.0);
  const Schedule schedule = caft_for(s, 1);
  ReplayEngineOptions options;
  options.theta_bucket_width = schedule.horizon() / 4.0;  // very coarse
  options.exact = true;
  const ReplayEngine engine(schedule, *s.costs, options);
  SharedReplayMemo shared;
  ReplayEngine::Scratch scratch;

  const CrashWindowSampler window(6, 2, 0.0, schedule.horizon());
  Rng rng(590);
  for (int draw = 0; draw < 25; ++draw) {
    const CrashScenario scenario = window.sample(rng);
    const CrashResult naive = simulate_crashes(schedule, *s.costs, scenario);
    const CrashResult& incr = engine.replay(scenario, scratch, &shared);
    expect_results_identical(naive, incr, "draw " + std::to_string(draw));
  }
  // Campaign level: exact + buckets == plain exact, byte for byte.
  const CrashWindowSampler sampler(6, 2, 0.0, schedule.horizon());
  CampaignOptions plain;
  plain.replays = 200;
  plain.threads = 2;
  CampaignOptions hatched = plain;
  hatched.theta_bucket_width = schedule.horizon() / 4.0;
  hatched.exact = true;
  hatched.threads = 4;
  expect_summaries_identical(
      run_campaign(schedule, *s.costs, sampler, plain),
      run_campaign(schedule, *s.costs, sampler, hatched), "escape hatch");
}

TEST(SharedMemo, QuantizedSummariesIdenticalAcrossThreadCounts) {
  // The approximation must be a pure function of the scenario stream —
  // never of which worker populated the memo first.
  const Scenario s = test::random_setup(61, 8, 1.0);
  const Schedule schedule = caft_for(s, 1);
  const CrashWindowSampler sampler(8, 2, 0.0, schedule.horizon());
  std::unique_ptr<CampaignSummary> reference;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    CampaignOptions options;
    options.replays = 500;
    options.block = 64;
    options.threads = threads;
    options.theta_bucket_width = schedule.horizon() / 24.0;
    const CampaignSummary summary =
        run_campaign(schedule, *s.costs, sampler, options);
    if (reference == nullptr)
      reference = std::make_unique<CampaignSummary>(summary);
    else
      expect_summaries_identical(*reference, summary,
                                 "threads " + std::to_string(threads));
  }
}

// ------------------------------------------------------------ memo caps

TEST(SharedMemo, ScratchMemoStaysUnderCapOverLongCampaign) {
  // Regression for the unbounded Scratch::memo: a campaign drawing from a
  // mask space far larger than the cap must keep the memo bounded (and keep
  // memoising — evictions, not insert-stop).
  const Scenario s = test::uniform_setup(chain(4, 2.0), 16, 2.0, 1.0);
  const Schedule schedule = caft_for(s, 1);
  ReplayEngineOptions options;
  options.memo_capacity = 16;
  const ReplayEngine engine(schedule, *s.costs, options);
  ReplayEngine::Scratch scratch;

  const UniformKSampler sampler(16, 2);  // C(16, 2) = 120 masks >> 16
  Rng rng(67);
  for (int i = 0; i < 20000; ++i) {
    (void)engine.replay(sampler.sample(rng), scratch);
    ASSERT_LE(scratch.memo_entries(), 16u) << "at replay " << i;
  }
  EXPECT_GT(scratch.memo_evictions(), 0u);
  EXPECT_GT(scratch.memo_hits(), 0u);
}

TEST(SharedMemo, MillionReplayCampaignMemoStaysBounded) {
  // The long-haul version on the fast path: 10^6 replays against both memo
  // flavours with small caps; memory must stay O(cap), not O(distinct keys),
  // while the memo keeps producing hits.
  const Scenario s = test::uniform_setup(chain(3, 2.0), 16, 2.0, 1.0);
  const Schedule schedule = caft_for(s, 1);
  ReplayEngineOptions options;
  options.memo_capacity = 8;
  const ReplayEngine engine(schedule, *s.costs, options);
  SharedMemoOptions memo_options;
  memo_options.capacity = 8;
  memo_options.shards = 4;
  SharedReplayMemo shared_capped(memo_options);
  ReplayEngine::Scratch scratch;
  ReplayEngine::Scratch scratch_shared;

  // Pre-draw a pool of k=1 scenarios (16 distinct masks) and cycle it: the
  // loop body is then pure memo traffic, so a million replays stay cheap.
  const UniformKSampler sampler(16, 1);
  Rng rng(71);
  std::vector<CrashScenario> pool;
  for (int i = 0; i < 64; ++i) pool.push_back(sampler.sample(rng));

  // Alternate the two memo flavours: 10^6 replays total, each one hitting
  // a capped memo.
  for (std::size_t i = 0; i < 1000000; ++i) {
    const CrashScenario& scenario = pool[i % pool.size()];
    if (i % 2 == 0)
      (void)engine.replay(scenario, scratch);
    else
      (void)engine.replay(scenario, scratch_shared, &shared_capped);
    if (i % 4096 == 0) {
      ASSERT_LE(scratch.memo_entries(), 8u) << "at replay " << i;
      ASSERT_LE(shared_capped.stats().entries, 8u) << "at replay " << i;
    }
  }
  EXPECT_LE(scratch.memo_entries(), 8u);
  EXPECT_GT(scratch.memo_hits(), 0u);
  const SharedReplayMemo::Stats stats = shared_capped.stats();
  EXPECT_LE(stats.entries, 8u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions + scratch.memo_evictions(), 0u);
}

TEST(SharedMemo, RejectsRebindToSecondEngine) {
  // One memo per (campaign, engine): keys are schedule-relative, so reusing
  // a memo across engines would serve one schedule's results for another.
  const Scenario s1 = test::random_setup(73, 6, 1.0);
  const Scenario s2 = test::random_setup(74, 6, 1.0);
  const Schedule sched1 = caft_for(s1, 1);
  const Schedule sched2 = caft_for(s2, 1);
  const ReplayEngine engine1(sched1, *s1.costs);
  const ReplayEngine engine2(sched2, *s2.costs);
  SharedReplayMemo shared;
  ReplayEngine::Scratch scratch;
  const CrashScenario crash = CrashScenario::at_zero(6, {ProcId(2)});
  (void)engine1.replay(crash, scratch, &shared);
  EXPECT_THROW((void)engine2.replay(crash, scratch, &shared), CheckError);
  // Without the shared memo the Scratch rebinds cleanly, as before.
  const CrashResult naive = simulate_crashes(sched2, *s2.costs, crash);
  expect_results_identical(naive, engine2.replay(crash, scratch), "rebind");
}

// ------------------------------------------------- adaptive snapshots

TEST(SharedMemo, AdaptiveSnapshotPlacementNeverChangesResults) {
  // Snapshot density is a pure performance knob: a fine θ sweep through an
  // engine with sampler-fitted snapshot times must match the naive replay
  // everywhere, and the snapshot budget must be respected.
  const Scenario s = test::random_setup(79, 6, 5.0);
  const Schedule schedule = caft_for(s, 1);
  const double horizon = schedule.horizon();
  const CrashWindowSampler sampler(6, 2, 0.0, horizon * 0.4);

  ReplayEngineOptions options;
  options.max_snapshots = 24;
  options.snapshot_times =
      sampler.first_crash_quantiles(options.max_snapshots, horizon);
  ASSERT_FALSE(options.snapshot_times.empty());
  const ReplayEngine adaptive(schedule, *s.costs, options);
  EXPECT_LE(adaptive.snapshot_count(), options.max_snapshots);
  EXPECT_GT(adaptive.snapshot_count(), 0u);

  ReplayEngine::Scratch scratch;
  for (int step = 0; step <= 30; ++step) {
    CrashScenario scenario = CrashScenario::none(6);
    scenario.set_crash_time(ProcId(1),
                            horizon * static_cast<double>(step) / 30.0);
    const CrashResult naive = simulate_crashes(schedule, *s.costs, scenario);
    expect_results_identical(naive, adaptive.replay(scenario, scratch),
                             "sweep step " + std::to_string(step));
  }

  // Campaign level: adaptive on/off is unobservable in the summary.
  CampaignOptions with;
  with.replays = 300;
  with.threads = 3;
  with.adaptive_snapshots = true;
  CampaignOptions without = with;
  without.adaptive_snapshots = false;
  without.threads = 2;
  expect_summaries_identical(
      run_campaign(schedule, *s.costs, sampler, with),
      run_campaign(schedule, *s.costs, sampler, without), "adaptive A/B");
}

TEST(SharedMemo, SamplerQuantileHintsAreSaneDensityProfiles) {
  const double horizon = 100.0;
  // The paper's dead-from-start model has no θ mass to adapt to.
  EXPECT_TRUE(UniformKSampler(8, 2)
                  .first_crash_quantiles(16, horizon)
                  .empty());

  const auto check_profile = [&](const ScenarioSampler& sampler,
                                 const std::string& label) {
    SCOPED_TRACE(label);
    const std::vector<double> q = sampler.first_crash_quantiles(16, horizon);
    ASSERT_EQ(q.size(), 16u);
    EXPECT_TRUE(std::is_sorted(q.begin(), q.end()));
    for (const double t : q) {
      EXPECT_GE(t, 0.0);
      EXPECT_LE(t, horizon);
    }
  };
  check_profile(CrashWindowSampler(8, 2, 10.0, 90.0), "window");
  check_profile(ExponentialLifetimeSampler(8, 0.01, horizon), "exp");
  check_profile(WeibullLifetimeSampler(8, 1.5, 50.0, horizon), "weibull");
  check_profile(CorrelatedGroupSampler(8, 2, 0.3, 5.0, 80.0), "groups");

  // The window profile concentrates below the window's upper edge: the
  // engine should not waste snapshots past the θ mass.
  const std::vector<double> window_q =
      CrashWindowSampler(8, 2, 0.0, 40.0).first_crash_quantiles(16, horizon);
  EXPECT_LE(window_q.back(), 40.0 + 1e-9);
}

}  // namespace
}  // namespace caft
