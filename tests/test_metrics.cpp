// Tests for the evaluation metrics (metrics/metrics): SLR normalization and
// the paper's overhead formula.
#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "algo/caft.hpp"
#include "algo/heft.hpp"
#include "helpers.hpp"

namespace caft {
namespace {

using test::Scenario;
using test::random_setup;
using test::uniform_setup;

TEST(Metrics, SlrDenominatorChain) {
  // chain(3), fastest exec 10 each, zero comm: CP = 30.
  Scenario s = uniform_setup(chain(3, 50.0), 4, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(slr_denominator(s.graph, *s.costs), 30.0);
}

TEST(Metrics, SlrDenominatorUsesFastestProcessor) {
  TaskGraph g = chain(2, 10.0);
  Platform platform(2);
  CostModel costs(2, platform);
  costs.set_exec(TaskId(0), ProcId(0), 10.0);
  costs.set_exec(TaskId(0), ProcId(1), 4.0);
  costs.set_exec(TaskId(1), ProcId(0), 6.0);
  costs.set_exec(TaskId(1), ProcId(1), 20.0);
  costs.set_all_unit_delays(1.0);
  // Fastest execs: 4 + 6 = 10 (communication free in the denominator).
  EXPECT_DOUBLE_EQ(slr_denominator(g, costs), 10.0);
}

TEST(Metrics, SlrDenominatorEmptyGraph) {
  const TaskGraph g;
  const Platform platform(2);
  const CostModel costs(0, platform);
  EXPECT_DOUBLE_EQ(slr_denominator(g, costs), 0.0);
}

TEST(Metrics, NormalizedLatencyDivides) {
  Scenario s = uniform_setup(chain(3, 50.0), 4, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(normalized_latency(60.0, s.graph, *s.costs), 2.0);
}

TEST(Metrics, NormalizedLatencyAtLeastOneForValidSchedules) {
  // Any real schedule takes at least the unloaded critical path.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Scenario s = random_setup(seed, 10, 1.0);
    const Schedule sched =
        heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
    EXPECT_GE(normalized_latency(sched.zero_crash_latency(), s.graph, *s.costs),
              1.0 - 1e-9);
  }
}

TEST(Metrics, NormalizedLatencyPassesInfinity) {
  Scenario s = uniform_setup(chain(2, 10.0), 3, 10.0, 1.0);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(std::isinf(normalized_latency(inf, s.graph, *s.costs)));
}

TEST(Metrics, OverheadFormula) {
  EXPECT_DOUBLE_EQ(overhead_percent(150.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(overhead_percent(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(overhead_percent(80.0, 100.0), -20.0);
}

TEST(Metrics, OverheadRejectsZeroReference) {
  EXPECT_THROW((void)overhead_percent(10.0, 0.0), CheckError);
}

TEST(Metrics, SummaryConsistent) {
  Scenario s = random_setup(3, 10, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  const LatencySummary summary = summarize_latency(sched, *s.costs);
  EXPECT_DOUBLE_EQ(summary.zero_crash, sched.zero_crash_latency());
  EXPECT_DOUBLE_EQ(summary.upper_bound, sched.upper_bound_latency());
  EXPECT_DOUBLE_EQ(
      summary.normalized_zero_crash,
      normalized_latency(summary.zero_crash, s.graph, *s.costs));
  EXPECT_GE(summary.normalized_upper_bound, summary.normalized_zero_crash);
}


TEST(LowerBounds, ChainEqualsCriticalPath) {
  // A chain has no parallelism: LB = sum of fastest execs.
  Scenario s = uniform_setup(chain(4, 10.0), 4, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(s.graph, *s.costs), 40.0);
}

TEST(LowerBounds, IndependentTasksBoundedByBalance) {
  // 8 independent unit tasks on 2 processors: balance term = 8*10/2 = 40.
  TaskGraph g;
  for (int i = 0; i < 8; ++i) g.add_task();
  Scenario s = uniform_setup(std::move(g), 2, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(s.graph, *s.costs), 40.0);
}

TEST(LowerBounds, ReplicatedBoundCountsEpsPlusOneCopies) {
  // 6 independent tasks, eps = 1, m = 3, exec 10 everywhere:
  // work = 6 * 2 * 10 = 120 over 3 procs -> 40.
  TaskGraph g;
  for (int i = 0; i < 6; ++i) g.add_task();
  Scenario s = uniform_setup(std::move(g), 3, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(replicated_lower_bound(s.graph, *s.costs, 1), 40.0);
  // eps = 0 degenerates to the fault-free bound.
  EXPECT_DOUBLE_EQ(replicated_lower_bound(s.graph, *s.costs, 0),
                   makespan_lower_bound(s.graph, *s.costs));
}

TEST(LowerBounds, ReplicatedUsesCheapestProcessors) {
  TaskGraph g;
  g.add_task();
  Platform platform(3);
  CostModel costs(1, platform);
  costs.set_exec(TaskId(0), ProcId(0), 2.0);
  costs.set_exec(TaskId(0), ProcId(1), 5.0);
  costs.set_exec(TaskId(0), ProcId(2), 100.0);
  costs.set_all_unit_delays(1.0);
  // eps=1: two cheapest copies 2+5=7 over 3 procs vs CP 2 -> max = 2.33.
  EXPECT_NEAR(replicated_lower_bound(g, costs, 1), 7.0 / 3.0, 1e-12);
}

/// Property: every schedule any algorithm emits respects the bounds.
class LowerBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LowerBoundProperty, SchedulesDominateBounds) {
  Scenario s = random_setup(GetParam(), 10, 0.8);
  const Schedule heft =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  EXPECT_GE(heft.zero_crash_latency(),
            makespan_lower_bound(s.graph, *s.costs) - 1e-9);

  const std::size_t eps = 2;
  CaftOptions caft_options;
  caft_options.base = {eps, CommModelKind::kOnePort};
  const Schedule caft =
      caft_schedule(s.graph, *s.platform, *s.costs, caft_options);
  // The earliest copies race like a fault-free run: zero-crash latency only
  // dominates the fault-free bound...
  EXPECT_GE(caft.zero_crash_latency(),
            makespan_lower_bound(s.graph, *s.costs) - 1e-9);
  // ...while the last replica must wait for all eps+1 copies' work.
  EXPECT_GE(caft.upper_bound_latency(),
            replicated_lower_bound(s.graph, *s.costs, eps) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerBoundProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace caft
