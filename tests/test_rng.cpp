// Tests for the deterministic random number generator (common/rng).
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace caft {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 16 && !differs; ++i) differs = a() != b();
  EXPECT_TRUE(differs);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01CoversRange) {
  Rng rng(11);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.5, 1.0);
    EXPECT_GE(x, 0.5);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(3);
  EXPECT_DOUBLE_EQ(rng.uniform(2.5, 2.5), 2.5);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(2.0, 1.0), CheckError);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(3, 7);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(9, 9), 9u);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(8, 3), CheckError);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.bernoulli(0.5) ? 1 : 0;
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  const auto sample = rng.sample_without_replacement(10, 6);
  EXPECT_EQ(sample.size(), 6u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
  for (const std::size_t v : sample) EXPECT_LT(v, 10u);
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(29);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleZero) {
  Rng rng(29);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, SampleOverPopulationThrows) {
  Rng rng(29);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), CheckError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitIndependentStreams) {
  Rng parent(37);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  bool differs = false;
  for (int i = 0; i < 16 && !differs; ++i) differs = child1() != child2();
  EXPECT_TRUE(differs);
}

TEST(Rng, SplitDeterministic) {
  Rng a(41), b(41);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, ExponentialPositiveAndFinite) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.exponential(0.5);
    EXPECT_GT(x, 0.0);
    EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);  // mean = 1/rate
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), CheckError);
  EXPECT_THROW(rng.exponential(-1.0), CheckError);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  // Weibull(1, scale) == Exp(1/scale); compare empirical means.
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(1.0, 4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, WeibullPositiveAndDeterministic) {
  Rng a(23), b(23);
  for (int i = 0; i < 1000; ++i) {
    const double x = a.weibull(1.5, 100.0);
    EXPECT_GT(x, 0.0);
    EXPECT_EQ(x, b.weibull(1.5, 100.0));
  }
}

TEST(Rng, WeibullRejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(rng.weibull(0.0, 1.0), CheckError);
  EXPECT_THROW(rng.weibull(1.0, -2.0), CheckError);
}

}  // namespace
}  // namespace caft
