// Tests for the fail-stop crash re-execution (sim/crash_sim): empty crash
// sets reproduce committed times; crashes remove work and reroute inputs.
#include "sim/crash_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "algo/caft.hpp"
#include "algo/ftsa.hpp"
#include "algo/heft.hpp"
#include "comm/one_port.hpp"
#include "platform/cost_synthesis.hpp"
#include "sim/resilience.hpp"
#include "helpers.hpp"

namespace caft {
namespace {

using test::Scenario;
using test::random_setup;
using test::uniform_setup;

ProcId P(std::size_t i) { return ProcId(static_cast<ProcId::value_type>(i)); }

TEST(CrashScenario, Constructors) {
  const CrashScenario none = CrashScenario::none(4);
  EXPECT_EQ(none.failed_count(), 0u);
  EXPECT_FALSE(none.dead_from_start(P(0)));

  const CrashScenario two = CrashScenario::at_zero(4, {P(1), P(3)});
  EXPECT_EQ(two.failed_count(), 2u);
  EXPECT_TRUE(two.dead_from_start(P(1)));
  EXPECT_FALSE(two.dead_from_start(P(0)));
}

TEST(CrashSim, NoCrashReproducesCommittedTimesHeft) {
  Scenario s = random_setup(1, 10, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  const CrashResult result =
      simulate_crashes(sched, *s.costs, CrashScenario::none(10));
  ASSERT_TRUE(result.success);
  EXPECT_FALSE(result.order_deadlock);
  EXPECT_NEAR(result.latency, sched.zero_crash_latency(), 1e-6);
  for (const TaskId t : s.graph.all_tasks()) {
    EXPECT_TRUE(result.completed[t.index()][0]);
    EXPECT_NEAR(result.finish[t.index()][0], sched.replica(t, 0).finish, 1e-6);
  }
}

TEST(CrashSim, NoCrashReproducesCommittedTimesFtsa) {
  Scenario s = random_setup(2, 10, 0.5);
  const Schedule sched = ftsa_schedule(
      s.graph, *s.platform, *s.costs, SchedulerOptions{2, CommModelKind::kOnePort});
  const CrashResult result =
      simulate_crashes(sched, *s.costs, CrashScenario::none(10));
  ASSERT_TRUE(result.success);
  for (const TaskId t : s.graph.all_tasks())
    for (ReplicaIndex r = 0; r < 3; ++r)
      EXPECT_NEAR(result.finish[t.index()][r], sched.replica(t, r).finish, 1e-6)
          << s.graph.name(t) << "#" << r;
}

TEST(CrashSim, NoCrashReproducesCommittedTimesCaft) {
  Scenario s = random_setup(3, 10, 1.0);
  CaftOptions options;
  options.base = SchedulerOptions{2, CommModelKind::kOnePort};
  const Schedule sched = caft_schedule(s.graph, *s.platform, *s.costs, options);
  const CrashResult result =
      simulate_crashes(sched, *s.costs, CrashScenario::none(10));
  ASSERT_TRUE(result.success);
  for (const TaskId t : s.graph.all_tasks())
    for (ReplicaIndex r = 0; r < 3; ++r)
      EXPECT_NEAR(result.finish[t.index()][r], sched.replica(t, r).finish, 1e-6)
          << s.graph.name(t) << "#" << r;
}

TEST(CrashSim, NoCrashReproducesMacroDataflow) {
  Scenario s = random_setup(4, 10, 1.0);
  const Schedule sched =
      ftsa_schedule(s.graph, *s.platform, *s.costs,
                    SchedulerOptions{1, CommModelKind::kMacroDataflow});
  const CrashResult result =
      simulate_crashes(sched, *s.costs, CrashScenario::none(10));
  ASSERT_TRUE(result.success);
  EXPECT_NEAR(result.latency, sched.zero_crash_latency(), 1e-6);
}

TEST(CrashSim, UnreplicatedScheduleDiesWithItsProcessor) {
  Scenario s = uniform_setup(chain(3, 10.0), 3, 10.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  // The whole chain sits on one processor; killing it loses everything.
  const ProcId used = sched.replica(TaskId(0), 0).proc;
  const CrashResult result = simulate_crashes(
      sched, *s.costs, CrashScenario::at_zero(3, {used}));
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(std::isinf(result.latency));
}

TEST(CrashSim, ReplicatedScheduleSurvivesOneCrash) {
  Scenario s = uniform_setup(chain(3, 10.0), 3, 10.0, 1.0);
  const Schedule sched = ftsa_schedule(
      s.graph, *s.platform, *s.costs, SchedulerOptions{1, CommModelKind::kOnePort});
  for (std::size_t p = 0; p < 3; ++p) {
    const CrashResult result = simulate_crashes(
        sched, *s.costs, CrashScenario::at_zero(3, {P(p)}));
    EXPECT_TRUE(result.success) << "crashed P" << p;
    EXPECT_TRUE(std::isfinite(result.latency));
  }
}

TEST(CrashSim, CrashedReplicasReportIncomplete) {
  Scenario s = uniform_setup(chain(2, 10.0), 3, 10.0, 1.0);
  const Schedule sched = ftsa_schedule(
      s.graph, *s.platform, *s.costs, SchedulerOptions{1, CommModelKind::kOnePort});
  const ProcId victim = sched.replica(TaskId(0), 0).proc;
  const CrashResult result = simulate_crashes(
      sched, *s.costs, CrashScenario::at_zero(3, {victim}));
  ASSERT_TRUE(result.success);
  for (const TaskId t : s.graph.all_tasks())
    for (ReplicaIndex r = 0; r < 2; ++r)
      if (sched.replica(t, r).proc == victim) {
        EXPECT_FALSE(result.completed[t.index()][r]);
      }
}

TEST(CrashSim, LatencyCanMoveEitherWayUnderCrash) {
  // Section 6 discusses that the re-executed latency may be smaller or
  // larger than the 0-crash estimate. Verify both directions occur across
  // seeds (on FTSA, whose port contention reacts strongly to removals).
  bool saw_decrease = false, saw_increase = false;
  for (std::uint64_t seed = 1; seed <= 12 && !(saw_decrease && saw_increase);
       ++seed) {
    Scenario s = random_setup(seed, 10, 0.4);
    const Schedule sched = ftsa_schedule(
        s.graph, *s.platform, *s.costs,
        SchedulerOptions{2, CommModelKind::kOnePort});
    const double base = sched.zero_crash_latency();
    for (std::size_t p = 0; p < 10; ++p) {
      const CrashResult result = simulate_crashes(
          sched, *s.costs, CrashScenario::at_zero(10, {P(p)}));
      if (!result.success) continue;
      if (result.latency < base - 1e-9) saw_decrease = true;
      if (result.latency > base + 1e-9) saw_increase = true;
    }
  }
  EXPECT_TRUE(saw_decrease);
  EXPECT_TRUE(saw_increase);
}

TEST(CrashSim, DeliveredMessagesDropWithCrash) {
  Scenario s = random_setup(5, 10, 0.5);
  const Schedule sched = ftsa_schedule(
      s.graph, *s.platform, *s.costs, SchedulerOptions{2, CommModelKind::kOnePort});
  const CrashResult clean =
      simulate_crashes(sched, *s.costs, CrashScenario::none(10));
  const CrashResult crashed = simulate_crashes(
      sched, *s.costs, CrashScenario::at_zero(10, {P(0), P(1)}));
  ASSERT_TRUE(crashed.success);
  EXPECT_LT(crashed.delivered_messages, clean.delivered_messages);
  EXPECT_EQ(clean.delivered_messages, sched.message_count());
}

TEST(CrashSim, CrashAtTimePreservesEarlyWork) {
  // chain(2) on one processor, exec 10 each: crash at t = 15 kills the
  // second task but the first completed at 10.
  Scenario s = uniform_setup(chain(2, 1.0), 2, 10.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  const ProcId used = sched.replica(TaskId(0), 0).proc;
  CrashScenario scenario = CrashScenario::none(2);
  scenario.set_crash_time(used, 15.0);
  const CrashResult result = simulate_crashes(sched, *s.costs, scenario);
  EXPECT_FALSE(result.success);  // t1 lost
  EXPECT_TRUE(result.completed[0][0]);
  EXPECT_FALSE(result.completed[1][0]);
}

TEST(CrashSim, CrashAfterEverythingIsHarmless) {
  Scenario s = random_setup(6, 10, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  CrashScenario scenario = CrashScenario::none(10);
  scenario.set_crash_time(P(0), sched.zero_crash_latency() + 1.0);
  const CrashResult result = simulate_crashes(sched, *s.costs, scenario);
  EXPECT_TRUE(result.success);
  EXPECT_NEAR(result.latency, sched.zero_crash_latency(), 1e-6);
}

TEST(CrashSim, AllProcessorsDeadFailsOutright) {
  Scenario s = uniform_setup(chain(2, 1.0), 3, 10.0, 1.0);
  const Schedule sched = ftsa_schedule(
      s.graph, *s.platform, *s.costs, SchedulerOptions{1, CommModelKind::kOnePort});
  const CrashResult result = simulate_crashes(
      sched, *s.costs, CrashScenario::at_zero(3, {P(0), P(1), P(2)}));
  EXPECT_FALSE(result.success);
}

TEST(CrashScenario, RejectsOutOfRangeProcessor) {
  CrashScenario scenario = CrashScenario::none(4);
  EXPECT_THROW((void)scenario.crash_time(P(4)), CheckError);
  EXPECT_THROW((void)scenario.dead_from_start(P(5)), CheckError);
  EXPECT_THROW(scenario.set_crash_time(P(7), 1.0), CheckError);
  EXPECT_THROW(CrashScenario::at_zero(4, {P(9)}), CheckError);
}

TEST(CrashScenario, RejectsNanAndNegativeCrashTimes) {
  CrashScenario scenario = CrashScenario::none(4);
  EXPECT_THROW(
      scenario.set_crash_time(P(0), std::numeric_limits<double>::quiet_NaN()),
      CheckError);
  EXPECT_THROW(scenario.set_crash_time(P(0), -1.0), CheckError);
  EXPECT_THROW(CrashScenario({1.0, std::numeric_limits<double>::quiet_NaN()}),
               CheckError);
  EXPECT_THROW(CrashScenario({-0.5}), CheckError);
}

// Property (crash-at-θ extension): θ = 0 must behave exactly like the
// dead-from-start model of CrashScenario::at_zero — same survivors, same
// times, bit for bit.
TEST(CrashSim, ThetaZeroMatchesAtZero) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Scenario s = random_setup(seed, 10, 0.8);
    CaftOptions options;
    options.base = SchedulerOptions{2, CommModelKind::kOnePort};
    const Schedule sched =
        caft_schedule(s.graph, *s.platform, *s.costs, options);
    const std::vector<ProcId> failed = {P(seed % 10), P((seed + 4) % 10)};
    CrashScenario theta = CrashScenario::none(10);
    for (const ProcId p : failed) theta.set_crash_time(p, 0.0);
    const CrashResult via_theta = simulate_crashes(sched, *s.costs, theta);
    const CrashResult via_at_zero = simulate_crashes(
        sched, *s.costs, CrashScenario::at_zero(10, failed));
    EXPECT_EQ(via_theta.success, via_at_zero.success);
    EXPECT_EQ(via_theta.latency, via_at_zero.latency);
    EXPECT_EQ(via_theta.completed, via_at_zero.completed);
    EXPECT_EQ(via_theta.finish, via_at_zero.finish);
    EXPECT_EQ(via_theta.delivered_messages, via_at_zero.delivered_messages);
    EXPECT_EQ(via_theta.order_relaxations, via_at_zero.order_relaxations);
  }
}

// Property (crash-at-θ extension): θ = +inf on every processor is the
// no-crash replay and must reproduce the committed timetable bit for bit.
TEST(CrashSim, ThetaInfinityMatchesCommittedTimetable) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Scenario s = random_setup(seed, 10, 0.8);
    CaftOptions options;
    options.base = SchedulerOptions{2, CommModelKind::kOnePort};
    const Schedule sched =
        caft_schedule(s.graph, *s.platform, *s.costs, options);
    CrashScenario theta = CrashScenario::none(10);
    for (std::size_t p = 0; p < 10; ++p)
      theta.set_crash_time(P(p), std::numeric_limits<double>::infinity());
    const CrashResult result = simulate_crashes(sched, *s.costs, theta);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.order_relaxations, 0u);
    EXPECT_EQ(result.latency, sched.zero_crash_latency());
    for (const TaskId t : s.graph.all_tasks())
      for (ReplicaIndex r = 0; r < sched.total_replicas(t); ++r) {
        EXPECT_TRUE(result.completed[t.index()][r]);
        EXPECT_EQ(result.finish[t.index()][r], sched.replica(t, r).finish)
            << s.graph.name(t) << "#" << r;
      }
  }
}

TEST(CrashSim, MismatchedScenarioRejected) {
  Scenario s = uniform_setup(chain(2, 1.0), 3, 10.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  EXPECT_THROW(simulate_crashes(sched, *s.costs, CrashScenario::none(5)),
               CheckError);
}


TEST(CrashSimSparse, NoCrashReproducesMultiHopTimetable) {
  // Star topology: cross-leaf messages have two segments; the replay must
  // still reproduce the committed timetable exactly.
  Rng rng(21);
  RandomDagParams dp;
  dp.min_tasks = 20;
  dp.max_tasks = 30;
  const TaskGraph g = random_dag(dp, rng);
  Platform platform(Topology::star(6));
  CostSynthesisParams cp;
  cp.granularity = 1.0;
  const CostModel costs = synthesize_costs(g, platform, cp, rng);
  CaftOptions options;
  options.base = SchedulerOptions{1, CommModelKind::kOnePort};
  const Schedule sched = caft_schedule(g, platform, costs, options);
  // The schedule actually exercises multi-hop routes.
  std::size_t multi_hop = 0;
  for (const CommAssignment& c : sched.comms())
    multi_hop += c.times.segments.size() > 1 ? 1u : 0u;
  ASSERT_GT(multi_hop, 0u);

  const CrashResult result =
      simulate_crashes(sched, costs, CrashScenario::none(6));
  ASSERT_TRUE(result.success);
  for (const TaskId t : g.all_tasks())
    for (ReplicaIndex r = 0; r < 2; ++r)
      EXPECT_NEAR(result.finish[t.index()][r], sched.replica(t, r).finish, 1e-6);
}

TEST(CrashSimSparse, DeadRouterBlocksTransitButNotLocalWork) {
  // Line P0 - P1 - P2: a message P0 -> P2 transits P1. With P1 dead the
  // message never arrives, but work local to P0/P2 proceeds.
  TaskGraph g;
  const TaskId a = g.add_task("a");
  const TaskId b = g.add_task("b");
  g.add_edge(a, b, 10.0);
  Platform platform(Topology::custom(3, {{0, 1}, {1, 2}}));
  CostModel costs = uniform_costs(g, platform, 10.0, 1.0);
  Schedule sched(g, platform, 0, CommModelKind::kOnePort);

  OnePortEngine engine(platform, costs);
  const TaskTimes at = engine.post_exec(ProcId(0), 0.0, 10.0);
  sched.set_replica(a, 0, {ProcId(0), at.start, at.finish});
  const CommTimes comm = engine.post_comm(ProcId(0), ProcId(2), 10.0, at.finish);
  CommAssignment ca;
  ca.edge = 0;
  ca.from = {a, 0};
  ca.to = {b, 0};
  ca.src_proc = ProcId(0);
  ca.dst_proc = ProcId(2);
  ca.volume = 10.0;
  ca.times = comm;
  sched.add_comm(ca);
  const TaskTimes bt = engine.post_exec(ProcId(2), comm.arrival, 10.0);
  sched.set_replica(b, 0, {ProcId(2), bt.start, bt.finish});

  // Sanity: clean replay reproduces the committed two-segment times.
  const CrashResult clean = simulate_crashes(sched, costs, CrashScenario::none(3));
  ASSERT_TRUE(clean.success);
  EXPECT_NEAR(clean.latency, sched.zero_crash_latency(), 1e-9);

  // P1 (pure router) dead: a still completes, b starves.
  const CrashResult routed = simulate_crashes(
      sched, costs, CrashScenario::at_zero(3, {ProcId(1)}));
  EXPECT_FALSE(routed.success);
  EXPECT_TRUE(routed.completed[a.index()][0]);
  EXPECT_FALSE(routed.completed[b.index()][0]);
  EXPECT_EQ(routed.delivered_messages, 0u);
}

TEST(CrashSimSparse, TransitiveCaftSurvivesRouterCrashOnLine) {
  // Line topology P0 - P1 - P2, chain graph, eps = 1: with route-aware
  // supports the transitive mode keeps each replica chain local to one
  // processor, so even the middle router's death is survivable.
  const TaskGraph g = chain(5, 50.0);
  Platform platform(Topology::custom(3, {{0, 1}, {1, 2}}));
  const CostModel costs = uniform_costs(g, platform, 10.0, 1.0);
  CaftOptions options;
  options.base = SchedulerOptions{1, CommModelKind::kOnePort};
  options.support_mode = CaftSupportMode::kTransitive;
  const Schedule sched = caft_schedule(g, platform, costs, options);
  const ResilienceReport report = check_resilience_exhaustive(sched, costs, 1);
  EXPECT_TRUE(report.resistant)
      << report.failures << "/" << report.scenarios_tested;
}

/// Replay fidelity sweep: the committed timetable is reproduced exactly for
/// every algorithm/model/ε combination.
class ReplayFidelity
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::size_t, CommModelKind>> {};

TEST_P(ReplayFidelity, ZeroCrashMatchesCommitted) {
  const auto [seed, eps, model] = GetParam();
  Scenario s = random_setup(seed, 10, 0.7);
  const Schedule sched =
      ftsa_schedule(s.graph, *s.platform, *s.costs, SchedulerOptions{eps, model});
  const CrashResult result =
      simulate_crashes(sched, *s.costs, CrashScenario::none(10));
  ASSERT_TRUE(result.success);
  EXPECT_FALSE(result.order_deadlock);
  EXPECT_NEAR(result.latency, sched.zero_crash_latency(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReplayFidelity,
    ::testing::Combine(::testing::Values(11u, 12u, 13u),
                       ::testing::Values(0u, 1u, 2u),
                       ::testing::Values(CommModelKind::kOnePort,
                                         CommModelKind::kMacroDataflow)));

}  // namespace
}  // namespace caft
