// Tests for the weighted DAG structure (dag/task_graph).
#include "dag/task_graph.hpp"

#include <gtest/gtest.h>

namespace caft {
namespace {

TEST(TaskGraph, EmptyGraph) {
  const TaskGraph g;
  EXPECT_EQ(g.task_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_TRUE(g.entry_tasks().empty());
  EXPECT_TRUE(g.exit_tasks().empty());
  EXPECT_DOUBLE_EQ(g.total_volume(), 0.0);
}

TEST(TaskGraph, AddTasksAssignsSequentialIds) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(g.task_count(), 2u);
}

TEST(TaskGraph, DefaultNamesFollowIds) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task("custom");
  EXPECT_EQ(g.name(a), "t0");
  EXPECT_EQ(g.name(b), "custom");
}

TEST(TaskGraph, EdgesAndDegrees) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  const TaskId c = g.add_task();
  g.add_edge(a, b, 10.0);
  g.add_edge(a, c, 20.0);
  g.add_edge(b, c, 30.0);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.out_degree(a), 2u);
  EXPECT_EQ(g.in_degree(a), 0u);
  EXPECT_EQ(g.in_degree(c), 2u);
  EXPECT_EQ(g.out_degree(c), 0u);
  EXPECT_DOUBLE_EQ(g.total_volume(), 60.0);
}

TEST(TaskGraph, HasEdgeAndVolume) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  g.add_edge(a, b, 12.5);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_FALSE(g.has_edge(b, a));
  EXPECT_DOUBLE_EQ(g.volume(a, b), 12.5);
  EXPECT_THROW((void)g.volume(b, a), CheckError);
}

TEST(TaskGraph, RejectsSelfLoop) {
  TaskGraph g;
  const TaskId a = g.add_task();
  EXPECT_THROW(g.add_edge(a, a, 1.0), CheckError);
}

TEST(TaskGraph, RejectsDuplicateEdge) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  g.add_edge(a, b, 1.0);
  EXPECT_THROW(g.add_edge(a, b, 2.0), CheckError);
}

TEST(TaskGraph, RejectsNegativeVolume) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  EXPECT_THROW(g.add_edge(a, b, -1.0), CheckError);
}

TEST(TaskGraph, RejectsUnknownEndpoints) {
  TaskGraph g;
  const TaskId a = g.add_task();
  EXPECT_THROW(g.add_edge(a, TaskId(5), 1.0), CheckError);
}

TEST(TaskGraph, EntryAndExitTasks) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  const TaskId c = g.add_task();
  g.add_edge(a, b, 1.0);
  g.add_edge(b, c, 1.0);
  const auto entries = g.entry_tasks();
  const auto exits = g.exit_tasks();
  ASSERT_EQ(entries.size(), 1u);
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_EQ(entries[0], a);
  EXPECT_EQ(exits[0], c);
}

TEST(TaskGraph, IsolatedTaskIsEntryAndExit) {
  TaskGraph g;
  const TaskId lone = g.add_task();
  ASSERT_EQ(g.entry_tasks().size(), 1u);
  ASSERT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_EQ(g.entry_tasks()[0], lone);
  EXPECT_EQ(g.exit_tasks()[0], lone);
}

TEST(TaskGraph, AcyclicOnDag) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  const TaskId c = g.add_task();
  g.add_edge(a, b, 1.0);
  g.add_edge(a, c, 1.0);
  g.add_edge(b, c, 1.0);
  EXPECT_TRUE(g.is_acyclic());
}

TEST(TaskGraph, DetectsCycle) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  const TaskId c = g.add_task();
  g.add_edge(a, b, 1.0);
  g.add_edge(b, c, 1.0);
  g.add_edge(c, a, 1.0);
  EXPECT_FALSE(g.is_acyclic());
}

TEST(TaskGraph, InOutEdgeSpansConsistent) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  const TaskId c = g.add_task();
  g.add_edge(a, c, 5.0);
  g.add_edge(b, c, 7.0);
  double incoming = 0.0;
  for (const EdgeIndex e : g.in_edges(c)) incoming += g.edge(e).volume;
  EXPECT_DOUBLE_EQ(incoming, 12.0);
  for (const EdgeIndex e : g.out_edges(a)) EXPECT_EQ(g.edge(e).src, a);
}

TEST(TaskGraph, AllTasksEnumeratesEverything) {
  TaskGraph g(5);
  for (int i = 0; i < 5; ++i) g.add_task();
  const auto all = g.all_tasks();
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].index(), i);
}

TEST(TaskGraph, ZeroVolumeEdgeAllowed) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  g.add_edge(a, b, 0.0);
  EXPECT_DOUBLE_EQ(g.volume(a, b), 0.0);
}

TEST(IdType, InvalidAndValid) {
  EXPECT_FALSE(TaskId().valid());
  EXPECT_FALSE(TaskId::invalid().valid());
  EXPECT_TRUE(TaskId(0).valid());
  EXPECT_LT(TaskId(1), TaskId(2));
}

TEST(IdType, DistinctTagsAreDistinctTypes) {
  // Compile-time property: TaskId and ProcId do not compare; this test
  // checks the runtime basics instead.
  EXPECT_EQ(ProcId(3).index(), 3u);
  EXPECT_EQ(LinkId(4).value(), 4u);
}

TEST(ReplicaRefType, Ordering) {
  const ReplicaRef a{TaskId(1), 0};
  const ReplicaRef b{TaskId(1), 1};
  const ReplicaRef c{TaskId(2), 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (ReplicaRef{TaskId(1), 0}));
}

}  // namespace
}  // namespace caft
