// Tests for the text Gantt rendering (metrics/gantt).
#include "metrics/gantt.hpp"

#include <gtest/gtest.h>

#include "algo/ftsa.hpp"
#include "algo/heft.hpp"
#include "helpers.hpp"
#include "sim/crash_sim.hpp"

namespace caft {
namespace {

using test::Scenario;
using test::uniform_setup;

TEST(Gantt, RendersEveryProcessorLane) {
  Scenario s = uniform_setup(fork_join(3, 1.0), 4, 10.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  const std::string out = render_gantt(sched);
  for (int p = 0; p < 4; ++p) {
    std::string lane = "P";
    lane += std::to_string(p);
    EXPECT_NE(out.find(lane), std::string::npos);
  }
  EXPECT_NE(out.find('#'), std::string::npos);  // at least one bar
}

TEST(Gantt, ShowsTaskNames) {
  Scenario s = uniform_setup(chain(2, 1.0), 2, 10.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  const std::string out = render_gantt(sched);
  EXPECT_NE(out.find("t0"), std::string::npos);
}

TEST(Gantt, CommTableOnDemand) {
  Scenario s = uniform_setup(fork(3, 50.0), 4, 10.0, 1.0);
  const Schedule sched = ftsa_schedule(
      s.graph, *s.platform, *s.costs, SchedulerOptions{1, CommModelKind::kOnePort});
  GanttOptions options;
  options.show_comms = true;
  const std::string out = render_gantt(sched, options);
  EXPECT_NE(out.find("communications"), std::string::npos);
  EXPECT_NE(out.find("->"), std::string::npos);
}

TEST(Gantt, CrashRenderMarksDeadProcessors) {
  Scenario s = uniform_setup(chain(2, 1.0), 3, 10.0, 1.0);
  const Schedule sched = ftsa_schedule(
      s.graph, *s.platform, *s.costs, SchedulerOptions{1, CommModelKind::kOnePort});
  const CrashScenario scenario = CrashScenario::at_zero(3, {ProcId(0)});
  const CrashResult result = simulate_crashes(sched, *s.costs, scenario);
  const std::string out = render_crash_gantt(sched, result, scenario);
  EXPECT_NE(out.find("P0 (DEAD)"), std::string::npos);
  EXPECT_EQ(out.find("P1 (DEAD)"), std::string::npos);
}

TEST(Gantt, FailedCrashRenderSaysSo) {
  Scenario s = uniform_setup(chain(2, 1.0), 3, 10.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  const ProcId used = sched.replica(TaskId(0), 0).proc;
  const CrashScenario scenario = CrashScenario::at_zero(3, {used});
  const CrashResult result = simulate_crashes(sched, *s.costs, scenario);
  const std::string out = render_crash_gantt(sched, result, scenario);
  EXPECT_NE(out.find("FAILED"), std::string::npos);
}

TEST(Gantt, EmptyScheduleOfSingleTask) {
  Scenario s = uniform_setup(chain(1), 2, 5.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  const std::string out = render_gantt(sched);
  EXPECT_FALSE(out.empty());
}

TEST(Gantt, WidthOptionRespected) {
  Scenario s = uniform_setup(chain(3, 1.0), 2, 10.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  GanttOptions narrow;
  narrow.width = 40;
  GanttOptions wide;
  wide.width = 120;
  EXPECT_LT(render_gantt(sched, narrow).size(), render_gantt(sched, wide).size());
}

}  // namespace
}  // namespace caft
