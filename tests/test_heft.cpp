// Tests for the fault-free HEFT baseline (algo/heft).
#include "algo/heft.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "metrics/metrics.hpp"
#include "sched/validator.hpp"

namespace caft {
namespace {

using test::Scenario;
using test::graph_setup;
using test::random_setup;
using test::uniform_setup;

TEST(Heft, SingleTaskRunsImmediately) {
  Scenario s = uniform_setup(chain(1), 3, 10.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  EXPECT_TRUE(sched.complete());
  EXPECT_DOUBLE_EQ(sched.zero_crash_latency(), 10.0);
  EXPECT_EQ(sched.message_count(), 0u);
}

TEST(Heft, ChainStaysOnOneProcessor) {
  // With positive comm costs and uniform processors, moving a chain task to
  // another processor only adds transfer time — HEFT keeps it local.
  Scenario s = uniform_setup(chain(5, 10.0), 3, 10.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  EXPECT_DOUBLE_EQ(sched.zero_crash_latency(), 50.0);
  EXPECT_EQ(sched.message_count(), 0u);  // everything intra
}

TEST(Heft, ForkSpreadsAcrossProcessors) {
  // Root (exec 10) then 3 children (exec 10 each) with tiny comm volumes:
  // running children in parallel beats serialising them locally.
  Scenario s = uniform_setup(fork(3, 0.1), 4, 10.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  // Local child: 20. Remote children: comm 0.1 serialized after root.
  EXPECT_LT(sched.zero_crash_latency(), 30.0);
  EXPECT_GE(sched.message_count(), 2u);
}

TEST(Heft, SingleProcessorSerializesEverything) {
  Scenario s = uniform_setup(fork_join(3, 1.0), 1, 10.0, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  EXPECT_DOUBLE_EQ(sched.zero_crash_latency(), 50.0);  // 5 tasks x 10
  EXPECT_EQ(sched.message_count(), 0u);
}

TEST(Heft, PicksFasterProcessor) {
  TaskGraph g = chain(1);
  Platform platform(2);
  CostModel costs(1, platform);
  costs.set_exec(TaskId(0), ProcId(0), 20.0);
  costs.set_exec(TaskId(0), ProcId(1), 5.0);
  costs.set_all_unit_delays(1.0);
  const Schedule sched =
      heft_schedule(g, platform, costs, CommModelKind::kOnePort);
  EXPECT_EQ(sched.replica(TaskId(0), 0).proc, ProcId(1));
  EXPECT_DOUBLE_EQ(sched.zero_crash_latency(), 5.0);
}

TEST(Heft, OneMessagePerCutEdge) {
  // ε = 0: at most one message per DAG edge (exactly e when no co-location).
  Scenario s = random_setup(7, 10, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  EXPECT_LE(sched.message_count(), s.graph.edge_count());
}

TEST(Heft, ZeroCrashEqualsUpperBoundWithoutReplication) {
  Scenario s = random_setup(11, 10, 1.0);
  const Schedule sched =
      heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
  EXPECT_DOUBLE_EQ(sched.zero_crash_latency(), sched.upper_bound_latency());
}

TEST(Heft, MacroDataflowNeverSlowerThanOnePort) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Scenario s = random_setup(seed, 10, 0.5);
    const Schedule op =
        heft_schedule(s.graph, *s.platform, *s.costs, CommModelKind::kOnePort);
    const Schedule md = heft_schedule(s.graph, *s.platform, *s.costs,
                                      CommModelKind::kMacroDataflow);
    // The contention-free model can only be optimistic.
    EXPECT_LE(md.zero_crash_latency(), op.zero_crash_latency() + 1e-9);
  }
}

/// Validator sweep across graph families and models.
class HeftValidity
    : public ::testing::TestWithParam<std::tuple<int, CommModelKind>> {};

TEST_P(HeftValidity, SchedulesValidate) {
  const int family = std::get<0>(GetParam());
  const CommModelKind model = std::get<1>(GetParam());
  TaskGraph g;
  switch (family) {
    case 0: g = chain(10, 80.0); break;
    case 1: g = fork_join(6, 80.0); break;
    case 2: g = gaussian_elimination(5, 80.0); break;
    case 3: g = fft(3, 80.0); break;
    default: g = stencil(4, 4, 80.0); break;
  }
  Scenario s = graph_setup(std::move(g), 21u + static_cast<std::uint64_t>(family),
                        6, 1.0);
  const Schedule sched = heft_schedule(s.graph, *s.platform, *s.costs, model);
  const ValidationResult result = validate_schedule(sched, *s.costs);
  EXPECT_TRUE(result.ok()) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Families, HeftValidity,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(CommModelKind::kOnePort,
                                         CommModelKind::kMacroDataflow)));

}  // namespace
}  // namespace caft
