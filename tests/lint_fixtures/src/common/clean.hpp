// Clean fixture: a header that satisfies every rule — guard present, no
// using-namespace, no upward includes, no nondeterministic sources. The
// linter must report nothing for this file.
#pragma once

#include <string>

namespace caft {

// Mentions of rand(), time() and system_clock in comments — and inside
// string literals, see clean.cpp — must never fire: the scanner strips
// comments and blanks literal contents before matching.
std::string clean_summary(double value);

}  // namespace caft
