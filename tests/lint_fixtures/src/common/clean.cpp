// Clean fixture: prose and string literals that *mention* banned tokens
// must not fire (the scanner matches code, not comments or literals).
#include "common/clean.hpp"

namespace caft {

std::string clean_summary(double value) {
  // rand() and system_clock in a comment are fine.
  std::string text = "calls rand() and time() and getenv at %f precision";
  return value > 0 ? text : "lifetime(rate=...)";
}

}  // namespace caft
