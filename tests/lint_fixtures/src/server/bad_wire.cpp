// wire-determinism fixture: src/server/ is wire scope — the campaign
// server speaks the campaign_wire dialect, so a double reaching a stream
// at default precision is flagged exactly as it is in src/io/.
#include <ostream>

void stream_progress(std::ostream& os) {
  double ci_width = 0.25;
  os << "progress " << ci_width << "\n";  // default-precision stream
}
