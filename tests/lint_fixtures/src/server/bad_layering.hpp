// layering fixture: server/ is a consumer of the facade — schedulers come
// via api/ (the registry), instances arrive as bytes and load through
// api/Instance. Reaching into algo/ or io/ directly is a violation.
#pragma once

#include "algo/caft.hpp"
#include "api/session.hpp"
#include "io/instance_io.hpp"

void serve_everything();
