// ordered-fold fixture: iterating an unordered container into an
// accumulator — the summary then depends on hash-table layout.
#include <cstdint>
#include <unordered_map>

struct Memo {
  std::unordered_map<std::uint64_t, double> entries;
};

double fold(const Memo& memo) {
  double total = 0.0;
  for (const auto& [key, value] : memo.entries) total += value;  // range-for
  auto it = memo.entries.begin();                                // iterator
  return it == memo.entries.end() ? total : total + it->second;
}

double keyed_lookup_is_fine(const Memo& memo) {
  auto hit = memo.entries.find(42);  // lookups never observe the order
  return hit == memo.entries.end() ? 0.0 : hit->second;
}
