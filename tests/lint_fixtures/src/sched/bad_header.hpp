// header-hygiene fixture: no #pragma once / include guard, and a
// file-scope using-namespace that would leak into every includer.
#include <string>

using namespace std;

string badly_guarded();
