// clock-rng fixture: every banned nondeterministic source in a core layer.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double nondeterministic_cost() {
  auto now = std::chrono::system_clock::now();          // wall clock
  std::time_t stamp = std::time(nullptr);               // libc wall clock
  int noise = std::rand();                              // libc RNG
  std::random_device entropy;                           // hardware entropy
  const char* knob = std::getenv("CAFT_SECRET_KNOB");   // environment
  return static_cast<double>(stamp) + noise +
         static_cast<double>(entropy()) +
         (knob != nullptr ? 1.0 : 0.0) +
         std::chrono::duration<double>(now.time_since_epoch()).count();
}
