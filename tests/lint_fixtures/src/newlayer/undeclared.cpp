// layering fixture: a directory that is not in the declared layer DAG —
// new layers must be added to the DAG deliberately, not appear silently.
#include "common/check.hpp"

void undeclared_layer();
