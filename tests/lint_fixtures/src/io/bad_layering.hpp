// layering fixture: io/ is the low-level serialization layer and may not
// reach up into campaign/ or api/ (their wire formats live up there).
#pragma once

#include "api/session.hpp"
#include "campaign/campaign.hpp"
#include "common/check.hpp"

void serialize_everything();
