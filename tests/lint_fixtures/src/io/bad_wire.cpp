// wire-determinism fixture: every way a floating value can reach the wire
// at nondeterministic-across-libc / default precision. No setprecision or
// hexfloat pin anywhere in this file, so the streaming heuristic is live.
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

void emit(std::ostream& os) {
  double latency = 1.5;
  std::vector<double> quantiles = {0.5, 0.9};
  os << latency;                                // default-precision stream
  os << quantiles[0];                           // indexed float sequence
  std::string s = std::to_string(latency);      // fixed 6-digit to_string
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", latency);  // printf float
  os << s << buffer;
}
