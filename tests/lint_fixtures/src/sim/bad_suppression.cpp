// suppression meta-rule fixture: suppressions must name known rules and
// carry a reason. A reasonless allow still suppresses its target (the
// violation does not double-report) but is itself a finding, so nothing
// sneaks past review silently.
#include <cstdlib>

int bad_suppressions() {
  const char* a = std::getenv("CAFT_FIXTURE_C");  // ftsched-lint: allow(clock-rng)
  // ftsched-lint: allow(made-up-rule) typo'd rule ids must be caught
  const char* b = std::getenv("CAFT_FIXTURE_D");
  return (a != nullptr ? 1 : 0) + (b != nullptr ? 1 : 0);
}
