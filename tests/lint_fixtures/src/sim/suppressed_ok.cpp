// suppression fixture: every violation here carries a well-formed allow
// comment with a reason, so this file must produce zero findings (they
// count as suppressed, not clean).
#include <cstdlib>

int suppressed_env_read() {
  // ftsched-lint: allow(clock-rng) fixture demonstrating a block-comment
  // suppression directly above the offending line.
  const char* above = std::getenv("CAFT_FIXTURE_A");
  const char* same =
      std::getenv("CAFT_FIXTURE_B");  // ftsched-lint: allow(clock-rng) inline suppression fixture
  return (above != nullptr ? 1 : 0) + (same != nullptr ? 1 : 0);
}
