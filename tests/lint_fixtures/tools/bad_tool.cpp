// layering fixture for the absorbed include_what_they_ship rule: shipped
// consumers must obtain algorithms via the api/ facade, never algo/*.hpp.
#include "algo/caft.hpp"
#include "api/api.hpp"

int main() { return 0; }
