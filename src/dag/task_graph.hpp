/// \file task_graph.hpp
/// The weighted Directed Acyclic Graph G = (V, E) of the paper's framework
/// (Section 2): nodes are tasks, edges are precedence constraints annotated
/// with the data volume V(t_i, t_j) the predecessor ships to the successor.
///
/// The structure is append-only (tasks and edges are added, never removed),
/// which lets us hand out stable dense indices: `TaskId::index()` addresses
/// per-task arrays everywhere else in the library.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"

namespace caft {

/// A precedence edge t_src -> t_dst carrying `volume` units of data.
struct Edge {
  TaskId src;
  TaskId dst;
  double volume = 0.0;
};

/// Dense index of an edge inside TaskGraph::edges().
using EdgeIndex = std::uint32_t;

/// Weighted DAG of tasks. Acyclicity is not enforced on every insertion
/// (generators build graphs edge by edge); call `is_acyclic()` or rely on
/// `topological_order()` (analysis.hpp) which throws on cycles.
class TaskGraph {
 public:
  TaskGraph() = default;
  /// Pre-reserves internal vectors for `expected_tasks` tasks.
  explicit TaskGraph(std::size_t expected_tasks);

  /// Adds a task and returns its id; `name` is for reports/Gantt only.
  TaskId add_task(std::string name = {});

  /// Adds edge src -> dst with the given data volume. Self-loops and
  /// duplicate edges are rejected (duplicates would double-count messages).
  void add_edge(TaskId src, TaskId dst, double volume);

  [[nodiscard]] std::size_t task_count() const { return names_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const std::string& name(TaskId t) const {
    CAFT_CHECK(t.index() < names_.size());
    return names_[t.index()];
  }

  /// All edges, in insertion order.
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }
  [[nodiscard]] const Edge& edge(EdgeIndex e) const {
    CAFT_CHECK(e < edges_.size());
    return edges_[e];
  }

  /// Indices (into `edges()`) of edges entering `t` — the paper's Γ⁻(t).
  [[nodiscard]] std::span<const EdgeIndex> in_edges(TaskId t) const {
    CAFT_CHECK(t.index() < in_.size());
    return in_[t.index()];
  }
  /// Indices (into `edges()`) of edges leaving `t` — the paper's Γ⁺(t).
  [[nodiscard]] std::span<const EdgeIndex> out_edges(TaskId t) const {
    CAFT_CHECK(t.index() < out_.size());
    return out_[t.index()];
  }

  [[nodiscard]] std::size_t in_degree(TaskId t) const { return in_edges(t).size(); }
  [[nodiscard]] std::size_t out_degree(TaskId t) const { return out_edges(t).size(); }

  /// Tasks with no predecessor (entry nodes).
  [[nodiscard]] std::vector<TaskId> entry_tasks() const;
  /// Tasks with no successor (exit nodes).
  [[nodiscard]] std::vector<TaskId> exit_tasks() const;

  /// True iff there is an edge src -> dst.
  [[nodiscard]] bool has_edge(TaskId src, TaskId dst) const;

  /// Volume of edge src -> dst; throws if the edge does not exist.
  [[nodiscard]] double volume(TaskId src, TaskId dst) const;

  /// Kahn's algorithm; true iff the graph has no directed cycle.
  [[nodiscard]] bool is_acyclic() const;

  /// Sum of all edge volumes.
  [[nodiscard]] double total_volume() const;

  /// All task ids, 0..task_count()-1.
  [[nodiscard]] std::vector<TaskId> all_tasks() const;

 private:
  std::vector<std::string> names_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeIndex>> in_;
  std::vector<std::vector<EdgeIndex>> out_;
};

}  // namespace caft
