#include "dag/generators.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace caft {

namespace {

double draw_volume(Rng& rng, double lo, double hi) { return rng.uniform(lo, hi); }

}  // namespace

TaskGraph random_dag(const RandomDagParams& params, Rng& rng) {
  CAFT_CHECK_MSG(params.min_tasks >= 2, "need at least two tasks");
  CAFT_CHECK(params.min_tasks <= params.max_tasks);
  CAFT_CHECK(params.min_out_degree >= 1);
  CAFT_CHECK(params.min_out_degree <= params.max_out_degree);
  CAFT_CHECK(params.min_volume <= params.max_volume);

  const auto n = static_cast<std::size_t>(
      rng.uniform_int(params.min_tasks, params.max_tasks));
  TaskGraph g(n);
  for (std::size_t i = 0; i < n; ++i) g.add_task();

  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t remaining = n - 1 - i;
    const std::size_t degree = std::min(
        remaining, static_cast<std::size_t>(rng.uniform_int(
                       params.min_out_degree, params.max_out_degree)));
    // Distinct successors among the higher-indexed tasks.
    auto offsets = rng.sample_without_replacement(remaining, degree);
    for (const std::size_t off : offsets) {
      const auto src = TaskId(static_cast<TaskId::value_type>(i));
      const auto dst = TaskId(static_cast<TaskId::value_type>(i + 1 + off));
      g.add_edge(src, dst,
                 draw_volume(rng, params.min_volume, params.max_volume));
    }
  }
  return g;
}

TaskGraph chain(std::size_t n, double volume) {
  CAFT_CHECK(n >= 1);
  TaskGraph g(n);
  for (std::size_t i = 0; i < n; ++i) g.add_task();
  for (std::size_t i = 0; i + 1 < n; ++i)
    g.add_edge(TaskId(static_cast<TaskId::value_type>(i)),
               TaskId(static_cast<TaskId::value_type>(i + 1)), volume);
  return g;
}

TaskGraph fork(std::size_t leaves, double volume) {
  TaskGraph g(leaves + 1);
  const TaskId root = g.add_task("root");
  for (std::size_t i = 0; i < leaves; ++i) {
    const TaskId leaf = g.add_task("leaf" + std::to_string(i));
    g.add_edge(root, leaf, volume);
  }
  return g;
}

TaskGraph join(std::size_t sources, double volume) {
  TaskGraph g(sources + 1);
  std::vector<TaskId> srcs;
  srcs.reserve(sources);
  for (std::size_t i = 0; i < sources; ++i)
    srcs.push_back(g.add_task("src" + std::to_string(i)));
  const TaskId sink = g.add_task("sink");
  for (const TaskId s : srcs) g.add_edge(s, sink, volume);
  return g;
}

TaskGraph fork_join(std::size_t middle, double volume) {
  TaskGraph g(middle + 2);
  const TaskId src = g.add_task("source");
  std::vector<TaskId> mids;
  mids.reserve(middle);
  for (std::size_t i = 0; i < middle; ++i)
    mids.push_back(g.add_task("mid" + std::to_string(i)));
  const TaskId sink = g.add_task("sink");
  for (const TaskId m : mids) {
    g.add_edge(src, m, volume);
    g.add_edge(m, sink, volume);
  }
  return g;
}

TaskGraph random_out_forest(std::size_t tasks, std::size_t roots, Rng& rng,
                            double min_volume, double max_volume) {
  CAFT_CHECK(roots >= 1 && roots <= tasks);
  TaskGraph g(tasks);
  for (std::size_t i = 0; i < tasks; ++i) g.add_task();
  for (std::size_t i = roots; i < tasks; ++i) {
    const auto parent =
        static_cast<std::size_t>(rng.uniform_int(0, i - 1));
    g.add_edge(TaskId(static_cast<TaskId::value_type>(parent)),
               TaskId(static_cast<TaskId::value_type>(i)),
               draw_volume(rng, min_volume, max_volume));
  }
  return g;
}

TaskGraph random_in_forest(std::size_t tasks, std::size_t sinks, Rng& rng,
                           double min_volume, double max_volume) {
  CAFT_CHECK(sinks >= 1 && sinks <= tasks);
  TaskGraph g(tasks);
  for (std::size_t i = 0; i < tasks; ++i) g.add_task();
  // Task i (for i < tasks - sinks) sends to one uniformly chosen later task,
  // so every task has out-degree <= 1 and the last `sinks` tasks are sinks.
  for (std::size_t i = 0; i + sinks < tasks; ++i) {
    const auto child = static_cast<std::size_t>(
        rng.uniform_int(i + 1, tasks - 1));
    g.add_edge(TaskId(static_cast<TaskId::value_type>(i)),
               TaskId(static_cast<TaskId::value_type>(child)),
               draw_volume(rng, min_volume, max_volume));
  }
  return g;
}

TaskGraph diamond(std::size_t width, double volume) {
  TaskGraph g(width + 2);
  const TaskId src = g.add_task("source");
  std::vector<TaskId> mids;
  for (std::size_t i = 0; i < width; ++i)
    mids.push_back(g.add_task("mid" + std::to_string(i)));
  const TaskId sink = g.add_task("sink");
  for (const TaskId m : mids) {
    g.add_edge(src, m, volume);
    g.add_edge(m, sink, volume);
  }
  return g;
}

namespace {

/// Recursive series-parallel skeleton: expands abstract edges until the task
/// budget is spent, then materialises the DAG.
struct SpBuilder {
  struct AbstractEdge {
    std::size_t src;
    std::size_t dst;
  };

  std::size_t next_node = 2;  // 0 = source, 1 = sink
  std::vector<AbstractEdge> final_edges;
  Rng& rng;
  std::size_t budget;

  SpBuilder(Rng& r, std::size_t b) : rng(r), budget(b) {}

  void expand(std::size_t src, std::size_t dst, std::size_t depth) {
    if (budget == 0 || depth > 12 || rng.bernoulli(0.25)) {
      final_edges.push_back({src, dst});
      return;
    }
    if (rng.bernoulli(0.5)) {
      // Series: src -> mid -> dst.
      if (budget == 0) {
        final_edges.push_back({src, dst});
        return;
      }
      const std::size_t mid = next_node++;
      --budget;
      expand(src, mid, depth + 1);
      expand(mid, dst, depth + 1);
    } else {
      // Parallel: duplicate the edge 2-3 times.
      const auto branches = static_cast<std::size_t>(rng.uniform_int(2, 3));
      for (std::size_t b = 0; b < branches; ++b) expand(src, dst, depth + 1);
    }
  }
};

}  // namespace

TaskGraph series_parallel(std::size_t approx_tasks, Rng& rng, double min_volume,
                          double max_volume) {
  CAFT_CHECK(approx_tasks >= 2);
  SpBuilder builder(rng, approx_tasks - 2);
  builder.expand(0, 1, 0);

  TaskGraph g(builder.next_node);
  for (std::size_t i = 0; i < builder.next_node; ++i) g.add_task();
  for (const auto& e : builder.final_edges) {
    const auto src = TaskId(static_cast<TaskId::value_type>(e.src));
    const auto dst = TaskId(static_cast<TaskId::value_type>(e.dst));
    if (!g.has_edge(src, dst))
      g.add_edge(src, dst, draw_volume(rng, min_volume, max_volume));
  }
  return g;
}

TaskGraph gaussian_elimination(std::size_t k, double volume) {
  CAFT_CHECK_MSG(k >= 2, "Gaussian elimination needs k >= 2");
  TaskGraph g(k * (k + 1) / 2);
  // id(s, j): update task of column j at elimination step s (j > s), plus the
  // pivot task id(s, s). Steps run s = 1..k-1; the trailing pivot of the last
  // step is omitted (it would be the solved 1x1 system).
  std::vector<std::vector<TaskId>> id(k, std::vector<TaskId>(k + 1, TaskId::invalid()));
  for (std::size_t s = 1; s < k; ++s)
    for (std::size_t j = s; j <= k; ++j) {
      if (j == s)
        id[s][j] = g.add_task("piv(" + std::to_string(s) + ")");
      else
        id[s][j] = g.add_task("upd(" + std::to_string(s) + "," +
                              std::to_string(j) + ")");
    }
  for (std::size_t s = 1; s < k; ++s) {
    for (std::size_t j = s + 1; j <= k; ++j) {
      g.add_edge(id[s][s], id[s][j], volume);     // pivot feeds the updates
      if (s + 1 < k && j >= s + 1)
        g.add_edge(id[s][j], id[s + 1][j], volume);  // update feeds next step
    }
  }
  return g;
}

TaskGraph cholesky(std::size_t tiles, double volume) {
  CAFT_CHECK_MSG(tiles >= 1, "need at least one tile");
  TaskGraph g;
  // Kernel tasks indexed by their tile coordinates.
  const auto key = [tiles](std::size_t i, std::size_t j, std::size_t k) {
    return (i * (tiles + 1) + j) * (tiles + 1) + k;
  };
  std::vector<TaskId> potrf(tiles, TaskId::invalid());
  std::vector<TaskId> trsm(tiles * (tiles + 1), TaskId::invalid());
  std::vector<TaskId> syrk(tiles * (tiles + 1), TaskId::invalid());
  std::vector<TaskId> gemm((tiles + 1) * (tiles + 1) * (tiles + 1),
                           TaskId::invalid());

  for (std::size_t k = 0; k < tiles; ++k) {
    potrf[k] = g.add_task("potrf(" + std::to_string(k) + ")");
    if (k > 0) {
      // POTRF(k) consumes SYRK(k, k-1).
      g.add_edge(syrk[k * (tiles + 1) + (k - 1)], potrf[k], volume);
    }
    for (std::size_t i = k + 1; i < tiles; ++i) {
      trsm[i * (tiles + 1) + k] =
          g.add_task("trsm(" + std::to_string(i) + "," + std::to_string(k) + ")");
      g.add_edge(potrf[k], trsm[i * (tiles + 1) + k], volume);
      if (k > 0)
        g.add_edge(gemm[key(i, k, k - 1)], trsm[i * (tiles + 1) + k], volume);
    }
    for (std::size_t i = k + 1; i < tiles; ++i) {
      syrk[i * (tiles + 1) + k] =
          g.add_task("syrk(" + std::to_string(i) + "," + std::to_string(k) + ")");
      g.add_edge(trsm[i * (tiles + 1) + k], syrk[i * (tiles + 1) + k], volume);
      if (k > 0)
        g.add_edge(syrk[i * (tiles + 1) + (k - 1)], syrk[i * (tiles + 1) + k],
                   volume);
      for (std::size_t j = k + 1; j < i; ++j) {
        gemm[key(i, j, k)] = g.add_task("gemm(" + std::to_string(i) + "," +
                                        std::to_string(j) + "," +
                                        std::to_string(k) + ")");
        g.add_edge(trsm[i * (tiles + 1) + k], gemm[key(i, j, k)], volume);
        g.add_edge(trsm[j * (tiles + 1) + k], gemm[key(i, j, k)], volume);
        if (k > 0)
          g.add_edge(gemm[key(i, j, k - 1)], gemm[key(i, j, k)], volume);
      }
    }
  }
  return g;
}

TaskGraph fft(std::size_t stages, double volume) {
  CAFT_CHECK_MSG(stages >= 1, "need at least one butterfly stage");
  const std::size_t points = std::size_t{1} << stages;
  TaskGraph g(points * (stages + 1));
  // Grid of tasks: row r (0..stages), column c (0..points-1). Row 0 holds the
  // input tasks; row r applies the r-th butterfly stage.
  std::vector<std::vector<TaskId>> node(stages + 1, std::vector<TaskId>(points));
  for (std::size_t r = 0; r <= stages; ++r)
    for (std::size_t c = 0; c < points; ++c)
      node[r][c] =
          g.add_task("fft(" + std::to_string(r) + "," + std::to_string(c) + ")");
  for (std::size_t r = 0; r < stages; ++r) {
    const std::size_t stride = points >> (r + 1);
    for (std::size_t c = 0; c < points; ++c) {
      const std::size_t partner = c ^ stride;
      g.add_edge(node[r][c], node[r + 1][c], volume);
      g.add_edge(node[r][c], node[r + 1][partner], volume);
    }
  }
  return g;
}

TaskGraph stencil(std::size_t rows, std::size_t cols, double volume) {
  CAFT_CHECK(rows >= 1 && cols >= 1);
  TaskGraph g(rows * cols);
  std::vector<TaskId> cell(rows * cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      cell[i * cols + j] =
          g.add_task("cell(" + std::to_string(i) + "," + std::to_string(j) + ")");
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) {
      if (i + 1 < rows) g.add_edge(cell[i * cols + j], cell[(i + 1) * cols + j], volume);
      if (j + 1 < cols) g.add_edge(cell[i * cols + j], cell[i * cols + j + 1], volume);
    }
  return g;
}

}  // namespace caft
