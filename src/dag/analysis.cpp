#include "dag/analysis.hpp"

#include <algorithm>

namespace caft {

std::vector<TaskId> topological_order(const TaskGraph& g) {
  std::vector<std::size_t> pending(g.task_count());
  std::vector<TaskId> order;
  order.reserve(g.task_count());
  std::vector<TaskId> frontier;
  for (const TaskId t : g.all_tasks()) {
    pending[t.index()] = g.in_degree(t);
    if (pending[t.index()] == 0) frontier.push_back(t);
  }
  // Process lowest-id-first for a deterministic order independent of
  // insertion history; a simple sorted frontier suffices at our sizes.
  std::make_heap(frontier.begin(), frontier.end(), std::greater<>{});
  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), std::greater<>{});
    const TaskId t = frontier.back();
    frontier.pop_back();
    order.push_back(t);
    for (const EdgeIndex e : g.out_edges(t)) {
      const TaskId next = g.edge(e).dst;
      if (--pending[next.index()] == 0) {
        frontier.push_back(next);
        std::push_heap(frontier.begin(), frontier.end(), std::greater<>{});
      }
    }
  }
  CAFT_CHECK_MSG(order.size() == g.task_count(), "graph has a cycle");
  return order;
}

namespace {

void check_weights(const TaskGraph& g, const DagWeights& w) {
  CAFT_CHECK_MSG(w.node.size() == g.task_count(),
                 "node weight vector size mismatch");
  CAFT_CHECK_MSG(w.edge.size() == g.edge_count(),
                 "edge weight vector size mismatch");
}

}  // namespace

std::vector<double> top_levels(const TaskGraph& g, const DagWeights& w) {
  check_weights(g, w);
  std::vector<double> tl(g.task_count(), 0.0);
  for (const TaskId t : topological_order(g)) {
    for (const EdgeIndex e : g.in_edges(t)) {
      const Edge& edge = g.edge(e);
      const double via = tl[edge.src.index()] + w.node[edge.src.index()] +
                         w.edge[e];
      tl[t.index()] = std::max(tl[t.index()], via);
    }
  }
  return tl;
}

std::vector<double> bottom_levels(const TaskGraph& g, const DagWeights& w) {
  check_weights(g, w);
  std::vector<double> bl(g.task_count(), 0.0);
  const auto order = topological_order(g);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double best_tail = 0.0;
    for (const EdgeIndex e : g.out_edges(t)) {
      const Edge& edge = g.edge(e);
      best_tail = std::max(best_tail, w.edge[e] + bl[edge.dst.index()]);
    }
    bl[t.index()] = w.node[t.index()] + best_tail;
  }
  return bl;
}

double critical_path_length(const TaskGraph& g, const DagWeights& w) {
  if (g.task_count() == 0) return 0.0;
  const auto tl = top_levels(g, w);
  const auto bl = bottom_levels(g, w);
  double best = 0.0;
  for (std::size_t i = 0; i < g.task_count(); ++i)
    best = std::max(best, tl[i] + bl[i]);
  return best;
}

std::vector<TaskId> critical_path(const TaskGraph& g, const DagWeights& w) {
  if (g.task_count() == 0) return {};
  const auto tl = top_levels(g, w);
  const auto bl = bottom_levels(g, w);

  // Start from the entry task on the longest path, then greedily follow
  // successors that keep tℓ + bℓ maximal (standard CP extraction).
  TaskId current = TaskId::invalid();
  double best = -1.0;
  for (const TaskId t : g.all_tasks()) {
    if (g.in_degree(t) != 0) continue;
    if (tl[t.index()] + bl[t.index()] > best) {
      best = tl[t.index()] + bl[t.index()];
      current = t;
    }
  }
  std::vector<TaskId> path;
  while (current.valid()) {
    path.push_back(current);
    TaskId next = TaskId::invalid();
    double next_len = -1.0;
    for (const EdgeIndex e : g.out_edges(current)) {
      const Edge& edge = g.edge(e);
      // The successor continues the critical path iff the path through this
      // edge realises bℓ(current).
      const double tail = w.edge[e] + bl[edge.dst.index()];
      if (tail > next_len) {
        next_len = tail;
        next = edge.dst;
      }
    }
    current = next;
  }
  return path;
}

std::vector<std::size_t> depths(const TaskGraph& g) {
  std::vector<std::size_t> depth(g.task_count(), 0);
  for (const TaskId t : topological_order(g))
    for (const EdgeIndex e : g.out_edges(t)) {
      const TaskId next = g.edge(e).dst;
      depth[next.index()] = std::max(depth[next.index()], depth[t.index()] + 1);
    }
  return depth;
}

bool reachable(const TaskGraph& g, TaskId src, TaskId dst) {
  if (src == dst) return true;
  std::vector<bool> seen(g.task_count(), false);
  std::vector<TaskId> stack{src};
  seen[src.index()] = true;
  while (!stack.empty()) {
    const TaskId t = stack.back();
    stack.pop_back();
    for (const EdgeIndex e : g.out_edges(t)) {
      const TaskId next = g.edge(e).dst;
      if (next == dst) return true;
      if (!seen[next.index()]) {
        seen[next.index()] = true;
        stack.push_back(next);
      }
    }
  }
  return false;
}

Reachability::Reachability(const TaskGraph& g)
    : n_(g.task_count()), words_per_row_((n_ + 63) / 64) {
  bits_.assign(n_ * words_per_row_, 0);
  const auto order = topological_order(g);
  // Reverse topological sweep: row(t) = union over successors s of
  // ({s} ∪ row(s)). Bitset unions keep this O(v·e/64).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    std::uint64_t* row = &bits_[t.index() * words_per_row_];
    for (const EdgeIndex e : g.out_edges(t)) {
      const TaskId s = g.edge(e).dst;
      row[s.index() / 64] |= (std::uint64_t{1} << (s.index() % 64));
      const std::uint64_t* srow = &bits_[s.index() * words_per_row_];
      for (std::size_t wi = 0; wi < words_per_row_; ++wi) row[wi] |= srow[wi];
    }
  }
}

bool Reachability::reaches(TaskId src, TaskId dst) const {
  CAFT_CHECK(src.index() < n_ && dst.index() < n_);
  const std::uint64_t word =
      bits_[src.index() * words_per_row_ + dst.index() / 64];
  return (word >> (dst.index() % 64)) & 1;
}

}  // namespace caft
