/// \file width.hpp
/// Exact DAG width ω: the maximum number of pairwise-independent tasks (a
/// maximum antichain of the precedence partial order). The paper uses ω in
/// the complexity bounds of FTSA and CAFT (Theorem 5.1).
///
/// By Dilworth's theorem, ω equals the minimum number of chains covering the
/// order, and the minimum chain cover of a DAG's transitive closure is
/// v − M where M is a maximum matching of the bipartite "u can precede w"
/// graph. We build the closure with bitset sweeps (analysis.hpp) and run
/// Hopcroft–Karp for the matching, giving exact widths in well under a
/// millisecond at the paper's sizes (v ≈ 100).
#pragma once

#include <cstddef>
#include <vector>

#include "dag/analysis.hpp"
#include "dag/task_graph.hpp"

namespace caft {

/// Maximum-cardinality matching in a bipartite graph given as adjacency of
/// the left side over right-side vertex indices. Exposed for testing and for
/// reuse by other covering problems.
class HopcroftKarp {
 public:
  HopcroftKarp(std::size_t left_count, std::size_t right_count);

  /// Declares an edge between left vertex `l` and right vertex `r`.
  void add_edge(std::size_t l, std::size_t r);

  /// Runs the algorithm; returns the matching cardinality.
  std::size_t solve();

  /// After solve(): match of left vertex `l`, or npos if unmatched.
  [[nodiscard]] std::size_t match_of_left(std::size_t l) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  bool bfs_layers();
  bool dfs_augment(std::size_t l);

  std::size_t left_n_;
  std::size_t right_n_;
  std::vector<std::vector<std::size_t>> adj_;
  std::vector<std::size_t> match_left_;
  std::vector<std::size_t> match_right_;
  std::vector<std::size_t> dist_;
};

/// Exact width ω(G) (maximum antichain size). ω(empty graph) = 0.
[[nodiscard]] std::size_t dag_width(const TaskGraph& g);

/// One maximum antichain realising dag_width(g), extracted from the minimum
/// vertex cover complement (König's theorem).
[[nodiscard]] std::vector<TaskId> maximum_antichain(const TaskGraph& g);

}  // namespace caft
