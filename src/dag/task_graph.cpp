#include "dag/task_graph.hpp"

#include <algorithm>
#include <numeric>

namespace caft {

TaskGraph::TaskGraph(std::size_t expected_tasks) {
  names_.reserve(expected_tasks);
  in_.reserve(expected_tasks);
  out_.reserve(expected_tasks);
}

TaskId TaskGraph::add_task(std::string name) {
  const auto id = TaskId(static_cast<TaskId::value_type>(names_.size()));
  if (name.empty()) {
    // move-assign a fresh string: assigning the "t" literal in place takes
    // libstdc++'s replace path, which GCC 12 misdiagnoses under -Wrestrict
    // (PR105329) and -Werror would reject.
    name = std::string("t");
    name += std::to_string(id.value());
  }
  names_.push_back(std::move(name));
  in_.emplace_back();
  out_.emplace_back();
  return id;
}

void TaskGraph::add_edge(TaskId src, TaskId dst, double volume) {
  CAFT_CHECK_MSG(src.index() < names_.size() && dst.index() < names_.size(),
                 "edge endpoints must be existing tasks");
  CAFT_CHECK_MSG(src != dst, "self-loops are not allowed in a DAG");
  CAFT_CHECK_MSG(volume >= 0.0, "edge volume must be non-negative");
  CAFT_CHECK_MSG(!has_edge(src, dst), "duplicate edge");
  const auto e = static_cast<EdgeIndex>(edges_.size());
  edges_.push_back(Edge{src, dst, volume});
  out_[src.index()].push_back(e);
  in_[dst.index()].push_back(e);
}

std::vector<TaskId> TaskGraph::entry_tasks() const {
  std::vector<TaskId> result;
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (in_[i].empty()) result.push_back(TaskId(static_cast<TaskId::value_type>(i)));
  return result;
}

std::vector<TaskId> TaskGraph::exit_tasks() const {
  std::vector<TaskId> result;
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (out_[i].empty()) result.push_back(TaskId(static_cast<TaskId::value_type>(i)));
  return result;
}

bool TaskGraph::has_edge(TaskId src, TaskId dst) const {
  CAFT_CHECK(src.index() < names_.size() && dst.index() < names_.size());
  const auto& outgoing = out_[src.index()];
  return std::any_of(outgoing.begin(), outgoing.end(),
                     [&](EdgeIndex e) { return edges_[e].dst == dst; });
}

double TaskGraph::volume(TaskId src, TaskId dst) const {
  for (const EdgeIndex e : out_edges(src))
    if (edges_[e].dst == dst) return edges_[e].volume;
  CAFT_CHECK_MSG(false, "edge not found");
  return 0.0;  // unreachable
}

bool TaskGraph::is_acyclic() const {
  std::vector<std::size_t> pending(names_.size());
  std::vector<TaskId> frontier;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    pending[i] = in_[i].size();
    if (pending[i] == 0)
      frontier.push_back(TaskId(static_cast<TaskId::value_type>(i)));
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const TaskId t = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const EdgeIndex e : out_[t.index()]) {
      const TaskId next = edges_[e].dst;
      if (--pending[next.index()] == 0) frontier.push_back(next);
    }
  }
  return visited == names_.size();
}

double TaskGraph::total_volume() const {
  return std::accumulate(edges_.begin(), edges_.end(), 0.0,
                         [](double acc, const Edge& e) { return acc + e.volume; });
}

std::vector<TaskId> TaskGraph::all_tasks() const {
  std::vector<TaskId> ids(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i)
    ids[i] = TaskId(static_cast<TaskId::value_type>(i));
  return ids;
}

}  // namespace caft
