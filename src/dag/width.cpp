#include "dag/width.hpp"

#include <algorithm>
#include <deque>

namespace caft {

HopcroftKarp::HopcroftKarp(std::size_t left_count, std::size_t right_count)
    : left_n_(left_count),
      right_n_(right_count),
      adj_(left_count),
      match_left_(left_count, npos),
      match_right_(right_count, npos),
      dist_(left_count, 0) {}

void HopcroftKarp::add_edge(std::size_t l, std::size_t r) {
  CAFT_CHECK(l < left_n_ && r < right_n_);
  adj_[l].push_back(r);
}

bool HopcroftKarp::bfs_layers() {
  std::deque<std::size_t> queue;
  for (std::size_t l = 0; l < left_n_; ++l) {
    if (match_left_[l] == npos) {
      dist_[l] = 0;
      queue.push_back(l);
    } else {
      dist_[l] = npos;
    }
  }
  bool found_augmenting = false;
  while (!queue.empty()) {
    const std::size_t l = queue.front();
    queue.pop_front();
    for (const std::size_t r : adj_[l]) {
      const std::size_t next = match_right_[r];
      if (next == npos) {
        found_augmenting = true;
      } else if (dist_[next] == npos) {
        dist_[next] = dist_[l] + 1;
        queue.push_back(next);
      }
    }
  }
  return found_augmenting;
}

bool HopcroftKarp::dfs_augment(std::size_t l) {
  for (const std::size_t r : adj_[l]) {
    const std::size_t next = match_right_[r];
    if (next == npos || (dist_[next] == dist_[l] + 1 && dfs_augment(next))) {
      match_left_[l] = r;
      match_right_[r] = l;
      return true;
    }
  }
  dist_[l] = npos;  // dead end: prune this vertex for the current phase
  return false;
}

std::size_t HopcroftKarp::solve() {
  std::size_t matching = 0;
  while (bfs_layers())
    for (std::size_t l = 0; l < left_n_; ++l)
      if (match_left_[l] == npos && dfs_augment(l)) ++matching;
  return matching;
}

std::size_t HopcroftKarp::match_of_left(std::size_t l) const {
  CAFT_CHECK(l < left_n_);
  return match_left_[l];
}

namespace {

HopcroftKarp closure_matching(const TaskGraph& g, const Reachability& reach) {
  const std::size_t n = g.task_count();
  HopcroftKarp hk(n, n);
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t w = 0; w < n; ++w)
      if (u != w &&
          reach.reaches(TaskId(static_cast<TaskId::value_type>(u)),
                        TaskId(static_cast<TaskId::value_type>(w))))
        hk.add_edge(u, w);
  return hk;
}

}  // namespace

std::size_t dag_width(const TaskGraph& g) {
  const std::size_t n = g.task_count();
  if (n == 0) return 0;
  const Reachability reach(g);
  HopcroftKarp hk = closure_matching(g, reach);
  return n - hk.solve();
}

std::vector<TaskId> maximum_antichain(const TaskGraph& g) {
  const std::size_t n = g.task_count();
  if (n == 0) return {};
  const Reachability reach(g);
  HopcroftKarp hk = closure_matching(g, reach);
  const std::size_t matching = hk.solve();

  // The minimum chain cover has n - matching chains: follow matched edges.
  // Chain heads are tasks never matched on the right side.
  std::vector<std::size_t> match_right(n, HopcroftKarp::npos);
  for (std::size_t l = 0; l < n; ++l)
    if (hk.match_of_left(l) != HopcroftKarp::npos)
      match_right[hk.match_of_left(l)] = l;

  std::vector<std::vector<TaskId>> chains;
  for (std::size_t head = 0; head < n; ++head) {
    if (match_right[head] != HopcroftKarp::npos) continue;
    std::vector<TaskId> chain;
    std::size_t cur = head;
    while (cur != HopcroftKarp::npos) {
      chain.push_back(TaskId(static_cast<TaskId::value_type>(cur)));
      cur = hk.match_of_left(cur);
    }
    chains.push_back(std::move(chain));
  }
  CAFT_CHECK(chains.size() == n - matching);

  // Greedy antichain extraction: repeatedly pick, per chain, the earliest
  // element independent from everything picked so far. A maximum antichain
  // intersects every chain exactly once; the greedy from chain fronts with
  // backtracking-free selection works because chains are linearly ordered.
  // We use a simpler exact approach: try every "cut" using per-chain
  // positions found via mutual independence with all other chains' picks.
  //
  // Robust exact method: find for each chain the set of elements that are
  // independent of at least one element per other chain would be costly;
  // instead use the classical result that the antichain formed by taking,
  // in each chain, the last element not reaching into the "tail" of any
  // other chain, is maximum. For our graph sizes we can afford a direct
  // O(width² · chain-length²) search.
  const std::size_t k = chains.size();
  std::vector<std::size_t> pick(k, 0);

  // Iteratively enforce pairwise independence: if pick[a] reaches pick[b],
  // advance pick[b]? No — advancing may break earlier pairs. Use fixpoint:
  // whenever chains[a][pick[a]] precedes chains[b][pick[b]] is false for all
  // pairs we are done; otherwise move the *predecessor side* forward (its
  // later elements cannot precede fewer things). Terminates since picks only
  // move forward, and a maximum antichain guarantees a feasible assignment.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t a = 0; a < k && !changed; ++a) {
      for (std::size_t b = 0; b < k && !changed; ++b) {
        if (a == b) continue;
        const TaskId ta = chains[a][pick[a]];
        const TaskId tb = chains[b][pick[b]];
        if (reach.reaches(ta, tb)) {
          // ta precedes tb: ta can never sit in an antichain with tb or any
          // later element of chain b, so advance chain a's pick.
          CAFT_CHECK_MSG(pick[a] + 1 < chains[a].size(),
                         "antichain extraction ran off a chain");
          ++pick[a];
          changed = true;
        }
      }
    }
  }

  std::vector<TaskId> antichain;
  antichain.reserve(k);
  for (std::size_t c = 0; c < k; ++c) antichain.push_back(chains[c][pick[c]]);
  return antichain;
}

}  // namespace caft
