/// \file analysis.hpp
/// Structural analyses over a TaskGraph that only need abstract node/edge
/// weights: topological order, top level tℓ, bottom level bℓ, critical path.
/// The scheduling layer supplies the paper's weights (average execution time
/// per task, average communication time per edge, Section 5 / [27, 4]); the
/// analyses themselves are weight-agnostic so tests can use simple integers.
#pragma once

#include <vector>

#include "dag/task_graph.hpp"

namespace caft {

/// Tasks sorted so every edge goes forward. Throws CheckError on cycles.
[[nodiscard]] std::vector<TaskId> topological_order(const TaskGraph& g);

/// Per-task weights indexed by TaskId::index(); per-edge weights indexed by
/// the EdgeIndex inside TaskGraph::edges().
struct DagWeights {
  std::vector<double> node;  ///< size task_count()
  std::vector<double> edge;  ///< size edge_count()
};

/// Top level tℓ(t): length of the longest path from an entry node to t,
/// *excluding* t's own weight (paper Section 5). Entry nodes have tℓ = 0.
[[nodiscard]] std::vector<double> top_levels(const TaskGraph& g,
                                             const DagWeights& w);

/// Bottom level bℓ(t): length of the longest path from t to an exit node,
/// *including* t's own weight; bℓ(exit) = weight(exit) (paper Section 5).
[[nodiscard]] std::vector<double> bottom_levels(const TaskGraph& g,
                                                const DagWeights& w);

/// Length of the longest node+edge-weighted path: max_t tℓ(t) + bℓ(t).
[[nodiscard]] double critical_path_length(const TaskGraph& g,
                                          const DagWeights& w);

/// The tasks of one longest path, in precedence order.
[[nodiscard]] std::vector<TaskId> critical_path(const TaskGraph& g,
                                                const DagWeights& w);

/// Per-task depth: number of edges on the longest entry->t path (levels of a
/// layered drawing). Entry tasks have depth 0.
[[nodiscard]] std::vector<std::size_t> depths(const TaskGraph& g);

/// True iff there is a directed path src ->* dst (src == dst counts as true).
[[nodiscard]] bool reachable(const TaskGraph& g, TaskId src, TaskId dst);

/// Transitive closure as a row-major bit matrix: row t lists every task
/// reachable from t (excluding t itself). Packed into uint64 words.
class Reachability {
 public:
  explicit Reachability(const TaskGraph& g);

  [[nodiscard]] bool reaches(TaskId src, TaskId dst) const;
  [[nodiscard]] std::size_t task_count() const { return n_; }

 private:
  std::size_t n_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace caft
