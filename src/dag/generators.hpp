/// \file generators.hpp
/// Task-graph families. `random_dag` follows the paper's experimental setup
/// (Section 6): task count uniform in [80,120], per-task fan-out in [1,3],
/// edge volumes uniform in [50,150]. The structured families serve the
/// examples, the property tests (Prop. 5.1 needs forks and out-forests) and
/// the domain workloads (Gaussian elimination, tiled Cholesky, FFT,
/// wavefront stencil are the classic DAGs of the list-scheduling literature).
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "dag/task_graph.hpp"

namespace caft {

/// Parameters of the paper's random layered DAGs.
struct RandomDagParams {
  std::size_t min_tasks = 80;   ///< inclusive
  std::size_t max_tasks = 120;  ///< inclusive
  std::size_t min_out_degree = 1;
  std::size_t max_out_degree = 3;
  double min_volume = 50.0;  ///< edge data volume lower bound
  double max_volume = 150.0;
};

/// Random DAG per the paper's Section 6 protocol. Every non-exit task gets a
/// fan-out drawn from [min_out_degree, max_out_degree] toward distinct
/// higher-indexed tasks, which yields layered-looking DAGs whose in/out
/// degrees match the published range.
[[nodiscard]] TaskGraph random_dag(const RandomDagParams& params, Rng& rng);

/// Path t0 -> t1 -> ... -> t_{n-1}.
[[nodiscard]] TaskGraph chain(std::size_t n, double volume = 1.0);

/// One root fanning out to `leaves` children (an out-tree of depth 1).
[[nodiscard]] TaskGraph fork(std::size_t leaves, double volume = 1.0);

/// `sources` parents all feeding one sink (an in-tree of depth 1).
[[nodiscard]] TaskGraph join(std::size_t sources, double volume = 1.0);

/// Fork followed by a join: 1 -> `middle` -> 1.
[[nodiscard]] TaskGraph fork_join(std::size_t middle, double volume = 1.0);

/// Random out-forest (every task has in-degree <= 1): `roots` roots, then
/// each further task attaches under a uniformly chosen earlier task.
/// This is the graph class of Proposition 5.1.
[[nodiscard]] TaskGraph random_out_forest(std::size_t tasks, std::size_t roots,
                                          Rng& rng, double min_volume = 50.0,
                                          double max_volume = 150.0);

/// Mirror image of random_out_forest: every task has out-degree <= 1.
[[nodiscard]] TaskGraph random_in_forest(std::size_t tasks, std::size_t sinks,
                                         Rng& rng, double min_volume = 50.0,
                                         double max_volume = 150.0);

/// Diamond: source, `width` independent middles, sink.
[[nodiscard]] TaskGraph diamond(std::size_t width, double volume = 1.0);

/// Random series-parallel DAG with ~`approx_tasks` tasks, built by recursive
/// series/parallel expansion of a single edge.
[[nodiscard]] TaskGraph series_parallel(std::size_t approx_tasks, Rng& rng,
                                        double min_volume = 50.0,
                                        double max_volume = 150.0);

/// Gaussian-elimination DAG over a k x k matrix: pivot tasks T(s,s) feed the
/// column updates T(s,j), which feed the next step's T(s+1,j).
/// Task count: k(k+1)/2 - 1 for k >= 2.
[[nodiscard]] TaskGraph gaussian_elimination(std::size_t k, double volume = 1.0);

/// Tiled Cholesky factorization DAG on a `tiles` x `tiles` lower-triangular
/// tile matrix with POTRF/TRSM/SYRK/GEMM kernels and their standard
/// dependencies.
[[nodiscard]] TaskGraph cholesky(std::size_t tiles, double volume = 1.0);

/// Fast-Fourier-Transform butterfly DAG with 2^stages points: the classic
/// recursive FFT task graph (used in the HEFT evaluation [27]).
[[nodiscard]] TaskGraph fft(std::size_t stages, double volume = 1.0);

/// Wavefront stencil over a rows x cols grid: (i,j) -> (i+1,j) and (i,j+1).
[[nodiscard]] TaskGraph stencil(std::size_t rows, std::size_t cols,
                                double volume = 1.0);

}  // namespace caft
