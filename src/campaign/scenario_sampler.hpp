/// \file scenario_sampler.hpp
/// Pluggable stochastic generators of CrashScenario draws — the first layer
/// of the Monte-Carlo fault-injection campaign (campaign/campaign.hpp).
///
/// The paper evaluates schedules under exactly one uniformly drawn crash set
/// of k processors dead from t = 0 per repetition ("With c Crash",
/// Section 6); UniformKSampler reproduces that model. The remaining samplers
/// open the distributional questions the paper leaves aside: exponential and
/// Weibull per-processor lifetimes (reliability-constrained scheduling à la
/// Tekawade & Banerjee), crash-at-θ windows exercising the simulator's
/// mid-execution extension, and correlated group failures (racks sharing a
/// power feed fail together).
///
/// Determinism contract: `sample` draws only from the Rng it is handed and
/// keeps no mutable state, so the campaign executor can pre-split one stream
/// per replay and fan replays across threads while staying bit-for-bit
/// reproducible (the same contract run_experiment documents).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/crash_sim.hpp"

namespace caft {

/// Interface of one crash-scenario distribution over a fixed platform size.
class ScenarioSampler {
 public:
  virtual ~ScenarioSampler() = default;

  /// Human-readable distribution name for reports ("uniform-k(2)", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Processors every produced scenario covers; must match the platform of
  /// the schedule the campaign replays.
  [[nodiscard]] virtual std::size_t proc_count() const = 0;

  /// Draws one scenario. Must be a pure function of the Rng stream (no
  /// mutable sampler state) — see the determinism contract above.
  [[nodiscard]] virtual CrashScenario sample(Rng& rng) const = 0;

  /// Density hint for adaptive snapshot placement: `count` non-decreasing
  /// quantiles of this distribution's *earliest* crash time, clamped to
  /// [0, horizon]. The replay engine concentrates its prefix snapshots at
  /// these times, so replays branch close to where crash mass actually
  /// falls. Empty (the default) means "no useful θ mass above zero" —
  /// e.g. the paper's dead-from-start model — and the engine falls back to
  /// uniform event-timeline spacing. Hints are advisory: they never change
  /// replay results, only prefix reuse, so approximations are fine.
  [[nodiscard]] virtual std::vector<double> first_crash_quantiles(
      std::size_t count, double horizon) const {
    (void)count;
    (void)horizon;
    return {};
  }
};

/// The paper's model: exactly k distinct processors, uniformly chosen, dead
/// from t = 0. With k <= ε every draw must be survived (Proposition 5.2).
class UniformKSampler final : public ScenarioSampler {
 public:
  UniformKSampler(std::size_t proc_count, std::size_t failures);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t proc_count() const override { return proc_count_; }
  [[nodiscard]] CrashScenario sample(Rng& rng) const override;

 private:
  std::size_t proc_count_;
  std::size_t failures_;
};

/// Independent exponential lifetime per processor: crash time ~ Exp(rate).
/// Crashes beyond `horizon` are censored to "never fails" (+inf); the
/// default horizon of +inf keeps every draw finite.
class ExponentialLifetimeSampler final : public ScenarioSampler {
 public:
  ExponentialLifetimeSampler(std::size_t proc_count, double rate,
                             double horizon =
                                 std::numeric_limits<double>::infinity());

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t proc_count() const override { return proc_count_; }
  [[nodiscard]] CrashScenario sample(Rng& rng) const override;
  /// min of m iid Exp(rate) lifetimes is Exp(m·rate).
  [[nodiscard]] std::vector<double> first_crash_quantiles(
      std::size_t count, double horizon) const override;

 private:
  std::size_t proc_count_;
  double rate_;
  double horizon_;
};

/// Independent Weibull(shape, scale) lifetime per processor; shape < 1
/// models infant mortality, shape > 1 wear-out. Same horizon censoring as
/// the exponential sampler.
class WeibullLifetimeSampler final : public ScenarioSampler {
 public:
  WeibullLifetimeSampler(std::size_t proc_count, double shape, double scale,
                         double horizon =
                             std::numeric_limits<double>::infinity());

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t proc_count() const override { return proc_count_; }
  [[nodiscard]] CrashScenario sample(Rng& rng) const override;
  /// min of m iid Weibull(shape, scale) is Weibull(shape, scale·m^(-1/shape)).
  [[nodiscard]] std::vector<double> first_crash_quantiles(
      std::size_t count, double horizon) const override;

 private:
  std::size_t proc_count_;
  double shape_;
  double scale_;
  double horizon_;
};

/// k distinct processors each crash at an independent θ drawn uniformly from
/// [theta_lo, theta_hi] — exercises the simulator's crash-at-θ extension
/// (work in flight at θ is lost, completed work survives).
class CrashWindowSampler final : public ScenarioSampler {
 public:
  CrashWindowSampler(std::size_t proc_count, std::size_t failures,
                     double theta_lo, double theta_hi);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t proc_count() const override { return proc_count_; }
  [[nodiscard]] CrashScenario sample(Rng& rng) const override;
  /// min of k iid U[lo, hi] draws: F(t) = 1 - (1 - (t-lo)/(hi-lo))^k.
  [[nodiscard]] std::vector<double> first_crash_quantiles(
      std::size_t count, double horizon) const override;

 private:
  std::size_t proc_count_;
  std::size_t failures_;
  double theta_lo_;
  double theta_hi_;
};

/// Correlated group failures: processors are partitioned into contiguous
/// groups of `group_size` (the last group may be smaller); each group
/// independently fails with probability `fail_prob`, and when it does every
/// member crashes at the same θ ~ U[theta_lo, theta_hi]. Models racks or
/// power domains — the failure mode replication across a group cannot mask.
class CorrelatedGroupSampler final : public ScenarioSampler {
 public:
  CorrelatedGroupSampler(std::size_t proc_count, std::size_t group_size,
                         double fail_prob, double theta_lo = 0.0,
                         double theta_hi = 0.0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t proc_count() const override { return proc_count_; }
  [[nodiscard]] CrashScenario sample(Rng& rng) const override;
  /// Approximated as the min of E[failing groups] iid U[lo, hi] draws.
  [[nodiscard]] std::vector<double> first_crash_quantiles(
      std::size_t count, double horizon) const override;

  [[nodiscard]] std::size_t group_count() const;

 private:
  std::size_t proc_count_;
  std::size_t group_size_;
  double fail_prob_;
  double theta_lo_;
  double theta_hi_;
};

}  // namespace caft
