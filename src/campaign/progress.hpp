/// \file progress.hpp
/// ProgressHeartbeat — the throttled live-progress line consumers hang on
/// CampaignProgress callbacks (campaign_cli --progress is the canonical
/// user). Extracted from the CLI (PR 7) so the throttle/terminal-line
/// state machine is testable: the original inline version could swallow
/// the campaign's final update when it landed inside the throttle window,
/// leaving a heartbeat frozen below 100%.
///
/// Reads CampaignProgress only — it can never steer a campaign — and
/// writes complete '\n'-terminated lines to its sink (stderr by default),
/// so a report printed to stdout afterwards never interleaves mid-line.
#pragma once

#include <chrono>
#include <functional>
#include <iosfwd>

#include "campaign/campaign.hpp"

namespace caft {

/// Throttled progress-line printer (~5 lines/s) with a guaranteed terminal
/// line: call finish() when the campaign completes and the last observed
/// state is printed even if the throttle swallowed it — including
/// early-stopped campaigns (--target-ci-width), whose final
/// `replays_done` never reaches `replays_total` and so never trips the
/// "final update bypasses the throttle" rule on its own.
///
/// One heartbeat instance may observe several campaigns in sequence (the
/// CLI reuses one across --algos entries): a restarted or shrunk replay
/// count, or a changed total, begins a new campaign with fresh rate/ETA
/// state.
class ProgressHeartbeat {
 public:
  using Clock = std::chrono::steady_clock;

  /// `sink` receives the lines (nullptr = the process's stderr). `now`
  /// overrides the clock so tests can drive the throttle
  /// deterministically.
  explicit ProgressHeartbeat(std::ostream* sink = nullptr,
                             std::function<Clock::time_point()> now = {});

  /// The CampaignProgress callback: prints a line unless the throttle
  /// (200 ms since the last line) suppresses it. An update whose
  /// replays_done reaches replays_total always prints.
  void operator()(const CampaignProgress& progress);

  /// Campaign-complete hook: prints the last observed state if the
  /// throttle suppressed it (the bugfix this class exists for). Idempotent
  /// and safe to call when nothing was ever observed.
  void finish();

 private:
  void print(const CampaignProgress& progress, Clock::time_point now);

  std::ostream* sink_;  ///< nullptr = stderr
  std::function<Clock::time_point()> now_;
  Clock::time_point start_{};
  Clock::time_point last_print_{};
  CampaignProgress last_seen_{};
  bool have_seen_ = false;
  bool printed_last_ = false;  ///< last_seen_ made it to the sink
};

}  // namespace caft
