#include "campaign/campaign.hpp"

#include <algorithm>
#include <thread>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "sim/crash_sim.hpp"

namespace caft {

namespace {

/// Compact per-replay outcome: everything the accumulator folds, nothing
/// else — the full CrashResult (per-replica matrices) never outlives its
/// worker.
struct ReplayRecord {
  bool success = false;
  bool order_deadlock = false;
  double latency = 0.0;
  std::size_t delivered_messages = 0;
  std::size_t order_relaxations = 0;
  std::size_t failed_count = 0;
};

ReplayRecord run_replay(const Schedule& schedule, const CostModel& costs,
                        const ScenarioSampler& sampler, Rng rng) {
  const CrashScenario scenario = sampler.sample(rng);
  const CrashResult result = simulate_crashes(schedule, costs, scenario);
  ReplayRecord record;
  record.success = result.success;
  record.order_deadlock = result.order_deadlock;
  record.latency = result.latency;
  record.delivered_messages = result.delivered_messages;
  record.order_relaxations = result.order_relaxations;
  record.failed_count = scenario.failed_count();
  return record;
}

}  // namespace

CampaignSummary run_campaign(const Schedule& schedule, const CostModel& costs,
                             const ScenarioSampler& sampler,
                             const CampaignOptions& options) {
  CAFT_CHECK_MSG(sampler.proc_count() == schedule.platform().proc_count(),
                 "sampler platform size does not match the schedule");
  CAFT_CHECK_MSG(schedule.complete(), "schedule is incomplete");
  CAFT_CHECK_MSG(options.block > 0, "block size must be positive");

  const std::size_t threads =
      std::max<std::size_t>(1, options.threads == 0 ? default_thread_count()
                                                    : options.threads);

  Rng master(options.seed);
  CampaignAccumulator accumulator(schedule.eps(), options.quantiles);
  accumulator.set_sampler_name(sampler.name());

  std::vector<Rng> streams;
  std::vector<ReplayRecord> records;
  for (std::size_t done = 0; done < options.replays;) {
    const std::size_t wave = std::min(options.block, options.replays - done);

    // Streams split sequentially in global replay order: neither the thread
    // schedule nor the block size can influence any draw.
    streams.clear();
    streams.reserve(wave);
    for (std::size_t i = 0; i < wave; ++i) streams.push_back(master.split());

    records.assign(wave, ReplayRecord{});
    const std::size_t workers = std::min(threads, wave);
    const auto worker = [&](std::size_t first) {
      for (std::size_t i = first; i < wave; i += workers)
        records[i] = run_replay(schedule, costs, sampler, streams[i]);
    };
    if (workers <= 1) {
      worker(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker, t);
      for (std::thread& thread : pool) thread.join();
    }

    // Fold in replay order.
    for (const ReplayRecord& record : records) {
      CrashResult result;
      result.success = record.success;
      result.order_deadlock = record.order_deadlock;
      result.latency = record.latency;
      result.delivered_messages = record.delivered_messages;
      result.order_relaxations = record.order_relaxations;
      accumulator.add(record.failed_count, result);
    }
    done += wave;
  }
  return accumulator.summary();
}

}  // namespace caft
