#include "campaign/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "obs/obs.hpp"
#include "sim/crash_sim.hpp"
#include "sim/replay_engine.hpp"

namespace caft {

namespace {

ReplayRecord to_record(const CrashResult& result, std::size_t failed_count) {
  ReplayRecord record;
  record.success = result.success;
  record.order_deadlock = result.order_deadlock;
  record.latency = result.latency;
  record.delivered_messages = result.delivered_messages;
  record.order_relaxations = result.order_relaxations;
  record.failed_count = failed_count;
  return record;
}

/// Shared core of run_campaign and run_campaign_block: executes the
/// contiguous replays [first, first + count) of the canonical scenario
/// stream in bounded waves and hands each wave's records — in canonical
/// replay order — to `sink(records, wave_size)`; a sink that returns false
/// stops the range after its wave (run_campaign's --target-ci-width early
/// stopping). The stream position is a function of (seed, first) alone: the
/// master Rng is advanced one split per replay, so any block of any
/// partition draws exactly the scenarios the full campaign would have drawn
/// at those indices.
template <typename Sink>
void run_replay_range(const Schedule& schedule, const CostModel& costs,
                      const ScenarioSampler& sampler,
                      const CampaignOptions& options, std::size_t first,
                      std::size_t count, CampaignTelemetry* telemetry,
                      Sink&& sink) {
  CAFT_CHECK_MSG(sampler.proc_count() == schedule.platform().proc_count(),
                 "sampler platform size does not match the schedule");
  CAFT_CHECK_MSG(schedule.complete(), "schedule is incomplete");
  CAFT_CHECK_MSG(options.block > 0, "block size must be positive");
  CAFT_CHECK_MSG(options.theta_bucket_width >= 0.0 &&
                     !std::isnan(options.theta_bucket_width),
                 "theta bucket width must be non-negative");

  const std::size_t threads =
      std::max<std::size_t>(1, options.threads == 0 ? default_thread_count()
                                                    : options.threads);

  // Observability is strictly write-only from here on: when the global
  // registry is disabled (the default) every call below is a relaxed load
  // plus a branch, and nothing it records ever feeds back into a replay.
  obs::Registry& registry = obs::Registry::global();
  obs::Span range_span = registry.span("campaign.range");
  obs::Histogram wave_seconds = registry.histogram("campaign.wave.seconds");
  obs::Counter replays_counter = registry.counter("campaign.replays");
  obs::Counter waves_counter = registry.counter("campaign.blocks");
  const std::chrono::steady_clock::time_point range_begin =
      std::chrono::steady_clock::now();

  // The prefix-cached engine is built once per campaign and shared
  // read-only by every worker (each worker owns its Scratch). With a
  // shared memo, all workers also consult one lock-free result cache. A
  // caller-supplied prebuilt engine (the campaign server's cached replay
  // template) short-circuits construction entirely — same const sharing,
  // same results, by the engine's purity contract.
  const ReplayEngine* engine = options.prebuilt_engine;
  std::unique_ptr<ReplayEngine> owned_engine;
  std::unique_ptr<SharedReplayMemo> shared_memo;
  if (engine == nullptr && options.engine == CampaignEngine::kIncremental) {
    ReplayEngineOptions engine_options;
    engine_options.theta_bucket_width = options.theta_bucket_width;
    engine_options.exact = options.exact;
    engine_options.memo_capacity = options.memo_capacity;
    if (options.adaptive_snapshots)
      engine_options.snapshot_times = sampler.first_crash_quantiles(
          engine_options.max_snapshots, schedule.horizon());
    owned_engine =
        std::make_unique<ReplayEngine>(schedule, costs, engine_options);
    engine = owned_engine.get();
  }
  if (engine != nullptr && options.memo == CampaignMemo::kShared) {
    SharedMemoOptions memo_options;
    memo_options.shards = options.memo_shards;
    memo_options.capacity = options.memo_capacity;
    shared_memo = std::make_unique<SharedReplayMemo>(memo_options);
  }

  Rng master(options.seed);
  // Fast-forward to replay `first`: exactly one split per earlier replay —
  // the sampler draws from the split stream, never from the master.
  for (std::size_t i = 0; i < first; ++i) (void)master.split();

  std::vector<CrashScenario> scenarios;
  std::vector<std::size_t> order;
  std::vector<std::size_t> group_start;
  std::vector<double> times;
  std::vector<double> firsts;
  std::vector<ReplayRecord> records;
  // One scratch per worker slot, persistent across waves: buffers and the
  // dead-set memo survive, so steady-state waves allocate nothing.
  std::vector<ReplayEngine::Scratch> scratches(threads);
  std::size_t successes = 0;
  std::size_t waves = 0;
  std::size_t done = 0;
  bool keep_going = true;
  while (done < count && keep_going) {
    const std::size_t wave = std::min(options.block, count - done);
    obs::Span wave_span = registry.span("campaign.wave");
    const std::chrono::steady_clock::time_point wave_begin =
        std::chrono::steady_clock::now();

    // Scenarios are drawn sequentially in global replay order, each from
    // its own split stream: neither the thread schedule, the block size nor
    // the engine can influence any draw.
    scenarios.clear();
    scenarios.reserve(wave);
    for (std::size_t i = 0; i < wave; ++i) {
      Rng stream = master.split();
      scenarios.push_back(sampler.sample(stream));
    }

    // Execute the wave sorted by earliest crash time, then by the full
    // crash-time vector: neighbouring replays branch from the same (or
    // adjacent) fault-free snapshots, and *identical* scenarios (a uniform-k
    // wave of 1024 draws covers only C(m, k) distinct masks) become adjacent
    // runs. Each run is replayed once and its record copied to every index —
    // sound because a record is a pure function of its scenario, so the
    // copies are bit-identical to replaying each index individually.
    // Results land in replay order regardless, so the sink below never sees
    // this order and summaries stay independent of the batching.
    // The sort comparator runs O(wave log wave) times; flatten the crash
    // times into one matrix up front so it compares raw doubles instead of
    // going through the checked per-proc accessor.
    const std::size_t m = sampler.proc_count();
    times.resize(wave * m);
    firsts.resize(wave);
    for (std::size_t i = 0; i < wave; ++i) {
      double earliest = std::numeric_limits<double>::infinity();
      for (std::size_t p = 0; p < m; ++p) {
        const double t = scenarios[i].crash_time(
            ProcId(static_cast<ProcId::value_type>(p)));
        times[i * m + p] = t;
        earliest = std::min(earliest, t);
      }
      firsts[i] = earliest;
    }
    const auto times_cmp = [&](std::size_t a, std::size_t b) {
      const double* ta = times.data() + a * m;
      const double* tb = times.data() + b * m;
      for (std::size_t p = 0; p < m; ++p)
        if (ta[p] != tb[p]) return ta[p] < tb[p] ? -1 : 1;
      return 0;
    };
    order.resize(wave);
    for (std::size_t i = 0; i < wave; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (firsts[a] != firsts[b]) return firsts[a] < firsts[b];
      const int c = times_cmp(a, b);
      if (c != 0) return c < 0;
      return a < b;
    });
    // Group boundaries of identical-scenario runs in the sorted order.
    group_start.clear();
    for (std::size_t j = 0; j < wave; ++j)
      if (j == 0 || times_cmp(order[j], order[j - 1]) != 0)
        group_start.push_back(j);
    group_start.push_back(wave);
    const std::size_t groups = group_start.size() - 1;

    records.assign(wave, ReplayRecord{});
    const std::size_t workers = std::min(threads, groups);
    const auto worker = [&](std::size_t first_slot) {
      ReplayEngine::Scratch& scratch = scratches[first_slot];
      for (std::size_t g = first_slot; g < groups; g += workers) {
        const std::size_t begin = group_start[g];
        const std::size_t end = group_start[g + 1];
        const std::size_t i = order[begin];
        // Branch instead of a ternary: the engine path returns a reference
        // (a ternary mixing it with the naive prvalue would force a copy).
        if (engine != nullptr)
          records[i] = to_record(
              engine->replay(scenarios[i], scratch, shared_memo.get()),
              scenarios[i].failed_count());
        else
          records[i] = to_record(simulate_crashes(schedule, costs,
                                                  scenarios[i]),
                                 scenarios[i].failed_count());
        for (std::size_t j = begin + 1; j < end; ++j)
          records[order[j]] = records[i];
      }
    };
    if (workers <= 1) {
      worker(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker, t);
      for (std::thread& thread : pool) thread.join();
    }

    keep_going = sink(records, wave);
    done += wave;
    ++waves;

    wave_span.finish();
    const std::chrono::duration<double> wave_elapsed =
        std::chrono::steady_clock::now() - wave_begin;
    wave_seconds.observe(wave_elapsed.count());
    replays_counter.add(wave);
    waves_counter.add(1);
    // Success tally and the progress callback run on the campaign thread
    // only — workers never touch them, and neither influences any replay.
    if (options.on_progress) {
      for (std::size_t i = 0; i < wave; ++i)
        if (records[i].success) ++successes;
      CampaignProgress progress;
      progress.replays_done = done;
      progress.replays_total = count;
      progress.successes = successes;
      const WilsonInterval ci = wilson_interval(successes, done);
      progress.ci_width = ci.high - ci.low;
      if (shared_memo != nullptr) {
        const SharedReplayMemo::Stats stats = shared_memo->stats();
        progress.memo_lookups = stats.lookups;
        progress.memo_hits = stats.hits;
      }
      options.on_progress(progress);
    }
  }

  const std::chrono::duration<double> range_elapsed =
      std::chrono::steady_clock::now() - range_begin;
  range_span.finish();

  // Gather memo/snapshot counters once, for both the telemetry out-param
  // and the registry fold (the registry fold happens only here for the
  // in-process backend; the subprocess coordinator folds worker partials
  // itself, so counts are never doubled).
  CampaignTelemetry gathered;
  if (shared_memo != nullptr) {
    const SharedReplayMemo::Stats stats = shared_memo->stats();
    gathered.memo_lookups = stats.lookups;
    gathered.memo_hits = stats.hits;
    gathered.memo_evictions = stats.evictions;
    gathered.memo_entries = stats.entries;
  } else {
    for (const ReplayEngine::Scratch& scratch : scratches) {
      gathered.memo_lookups += scratch.memo_lookups();
      gathered.memo_hits += scratch.memo_hits();
      gathered.memo_evictions += scratch.memo_evictions();
      gathered.memo_entries += scratch.memo_entries();
    }
  }
  if (engine != nullptr) gathered.snapshots = engine->snapshot_count();
  // `done`, not `count`: an early-stopped campaign executed (and folded)
  // only the waves up to its stopping point.
  gathered.replays = done;
  gathered.blocks = waves;
  gathered.workers = threads;
  gathered.wall_seconds = range_elapsed.count();

  if (registry.enabled()) {
    registry.counter("campaign.memo.lookups").add(gathered.memo_lookups);
    registry.counter("campaign.memo.hits").add(gathered.memo_hits);
    registry.counter("campaign.memo.evictions").add(gathered.memo_evictions);
    registry.gauge("campaign.memo.entries")
        .set(static_cast<double>(gathered.memo_entries));
    registry.gauge("campaign.snapshots")
        .set(static_cast<double>(gathered.snapshots));
    if (range_elapsed.count() > 0.0)
      registry.gauge("campaign.replays_per_second")
          .set(static_cast<double>(count) / range_elapsed.count());
  }

  if (telemetry != nullptr) *telemetry = gathered;
}

}  // namespace

void fold_replay_record(CampaignAccumulator& accumulator,
                        const ReplayRecord& record) {
  CrashResult result;
  result.success = record.success;
  result.order_deadlock = record.order_deadlock;
  result.latency = record.latency;
  result.delivered_messages = record.delivered_messages;
  result.order_relaxations = record.order_relaxations;
  accumulator.add(record.failed_count, result);
}

std::vector<ReplayRecord> run_campaign_block(const Schedule& schedule,
                                             const CostModel& costs,
                                             const ScenarioSampler& sampler,
                                             const CampaignOptions& options,
                                             std::size_t first,
                                             std::size_t count,
                                             CampaignTelemetry* telemetry) {
  std::vector<ReplayRecord> all;
  all.reserve(count);
  run_replay_range(schedule, costs, sampler, options, first, count, telemetry,
                   [&](const std::vector<ReplayRecord>& records,
                       std::size_t wave) {
                     all.insert(all.end(), records.begin(),
                                records.begin() +
                                    static_cast<std::ptrdiff_t>(wave));
                     return true;  // a block is a fixed slice: never stop
                   });
  return all;
}

void run_campaign_block_streamed(
    const Schedule& schedule, const CostModel& costs,
    const ScenarioSampler& sampler, const CampaignOptions& options,
    std::size_t first, std::size_t count, CampaignTelemetry* telemetry,
    const std::function<void(const ReplayRecord* records,
                             std::size_t count)>& sink) {
  run_replay_range(schedule, costs, sampler, options, first, count, telemetry,
                   [&](const std::vector<ReplayRecord>& records,
                       std::size_t wave) {
                     sink(records.data(), wave);
                     return true;  // a block is a fixed slice: never stop
                   });
}

CampaignSummary run_campaign(const Schedule& schedule, const CostModel& costs,
                             const ScenarioSampler& sampler,
                             const CampaignOptions& options,
                             CampaignTelemetry* telemetry) {
  CAFT_CHECK_MSG(options.target_ci_width == 0.0 ||
                     (std::isfinite(options.target_ci_width) &&
                      options.target_ci_width > 0.0 &&
                      options.target_ci_width < 1.0),
                 "target CI width must be in (0, 1)");
  CampaignAccumulator accumulator(schedule.eps(), options.quantiles);
  accumulator.set_sampler_name(sampler.name());
  // Fold in replay order, one wave at a time — memory stays O(block). With
  // a target CI width the fold also answers "keep going?": the campaign
  // stops after the first wave whose folded prefix satisfies the target, so
  // the stopping point is a pure function of (seed, block) — wave
  // boundaries are, and the prefix's records are, by the determinism
  // contract above.
  std::size_t done = 0;
  std::size_t successes = 0;
  run_replay_range(schedule, costs, sampler, options, 0, options.replays,
                   telemetry,
                   [&](const std::vector<ReplayRecord>& records,
                       std::size_t wave) {
                     for (std::size_t i = 0; i < wave; ++i)
                       fold_replay_record(accumulator, records[i]);
                     if (options.target_ci_width <= 0.0) return true;
                     done += wave;
                     for (std::size_t i = 0; i < wave; ++i)
                       if (records[i].success) ++successes;
                     const WilsonInterval ci =
                         wilson_interval(successes, done);
                     return ci.high - ci.low > options.target_ci_width;
                   });
  return accumulator.summary();
}

}  // namespace caft
