#include "campaign/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace caft {

WilsonInterval wilson_interval(std::size_t successes, std::size_t trials,
                               double z) {
  CAFT_CHECK_MSG(successes <= trials, "successes cannot exceed trials");
  CAFT_CHECK_MSG(z > 0.0, "critical value must be positive");
  if (trials == 0) return WilsonInterval{0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return WilsonInterval{std::max(0.0, center - margin),
                        std::min(1.0, center + margin)};
}

P2Quantile::P2Quantile(double quantile) : q_(quantile) {
  CAFT_CHECK_MSG(0.0 < quantile && quantile < 1.0,
                 "quantile must be strictly inside (0, 1)");
  for (int i = 0; i < 5; ++i) {
    height_[i] = 0.0;
    position_[i] = static_cast<double>(i + 1);
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  increment_[0] = 0.0;
  increment_[1] = q_ / 2.0;
  increment_[2] = q_;
  increment_[3] = (1.0 + q_) / 2.0;
  increment_[4] = 1.0;
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    height_[count_++] = x;
    if (count_ == 5) std::sort(height_, height_ + 5);
    return;
  }

  // Locate the cell containing x; clamp the extreme markers to the sample
  // range.
  int cell;
  if (x < height_[0]) {
    height_[0] = x;
    cell = 0;
  } else if (x >= height_[4]) {
    height_[4] = std::max(height_[4], x);
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= height_[cell + 1]) ++cell;
  }

  for (int i = cell + 1; i < 5; ++i) position_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increment_[i];
  ++count_;

  // Adjust the three interior markers toward their desired positions with
  // the piecewise-parabolic (P²) update, falling back to linear when the
  // parabola would leave the bracketing heights.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - position_[i];
    const double dn = position_[i + 1] - position_[i];  // gap to the right
    const double dp = position_[i] - position_[i - 1];  // gap to the left
    const bool right = d >= 1.0 && dn > 1.0;
    const bool left = d <= -1.0 && dp > 1.0;
    if (!right && !left) continue;
    const double sign = right ? 1.0 : -1.0;
    const double parabolic =
        height_[i] +
        sign / (dn + dp) *
            ((dp + sign) * (height_[i + 1] - height_[i]) / dn +
             (dn - sign) * (height_[i] - height_[i - 1]) / dp);
    // The parabolic step degenerates when marker heights collide (long runs
    // of identical or near-duplicate observations): the height differences
    // cancel to ~0 and rounding (or extreme magnitudes) can push the result
    // out of the bracket or to a non-finite value. Clamp to the linear
    // fallback in every such case — its denominator is a marker-position
    // gap, an integer > 1 by the guards above, so it can never divide by ~0.
    if (std::isfinite(parabolic) && height_[i - 1] < parabolic &&
        parabolic < height_[i + 1]) {
      height_[i] = parabolic;
    } else {
      const int neighbor = right ? i + 1 : i - 1;
      const double linear = height_[i] +
                            sign * (height_[neighbor] - height_[i]) /
                                (position_[neighbor] - position_[i]);
      // Identical-height runs make the linear step 0/huge-gap as well;
      // keep the marker inside its bracket no matter what arrives.
      height_[i] = std::clamp(linear, height_[i - 1], height_[i + 1]);
    }
    position_[i] += sign;
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (count_ >= 5) return height_[2];
  // Fewer than five samples: the buffer holds them unsorted; report the
  // exact empirical quantile (nearest-rank on a sorted copy).
  double sorted[5];
  std::copy(height_, height_ + count_, sorted);
  std::sort(sorted, sorted + count_);
  const double rank = q_ * static_cast<double>(count_ - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, count_ - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void StreamingMoments::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingMoments::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

CampaignAccumulator::CampaignAccumulator(std::size_t eps,
                                         const std::vector<double>& quantiles)
    : eps_(eps), quantile_targets_(quantiles) {
  quantile_estimators_.reserve(quantiles.size());
  for (const double q : quantiles) quantile_estimators_.emplace_back(q);
}

void CampaignAccumulator::add(const CrashScenario& scenario,
                              const CrashResult& result) {
  add(scenario.failed_count(), result);
}

void CampaignAccumulator::add(std::size_t failed_count,
                              const CrashResult& result) {
  ++running_.replays;
  running_.max_failed = std::max(running_.max_failed, failed_count);
  if (failed_count <= eps_) {
    ++running_.replays_within_eps;
    if (result.success) ++running_.successes_within_eps;
  }
  if (result.success) {
    ++running_.successes;
    running_.latency.add(result.latency);
    for (P2Quantile& est : quantile_estimators_) est.add(result.latency);
  }
  running_.delivered_messages.add(
      static_cast<double>(result.delivered_messages));
  running_.order_relaxations += result.order_relaxations;
  if (result.order_deadlock) ++running_.order_deadlocks;
}

CampaignSummary CampaignAccumulator::summary() const {
  CampaignSummary out = running_;
  out.sampler = sampler_;
  out.success_ci = wilson_interval(out.successes, out.replays);
  out.latency_quantiles.clear();
  out.latency_quantiles.reserve(quantile_targets_.size());
  for (std::size_t i = 0; i < quantile_targets_.size(); ++i)
    out.latency_quantiles.push_back(
        QuantileEstimate{quantile_targets_[i], quantile_estimators_[i].value()});
  return out;
}

Table campaign_table(
    const std::string& title,
    const std::vector<std::pair<std::string, CampaignSummary>>& rows) {
  std::vector<std::string> header = {
      "series",   "replays",   "successes", "success_rate", "ci_low",
      "ci_high",  "lat_mean",  "lat_min",   "lat_max",      "lat_stddev"};
  // Quantile columns come from the first row; all rows of one table are
  // expected to share the same quantile set.
  const auto* first = rows.empty() ? nullptr : &rows.front().second;
  if (first != nullptr) {
    for (const QuantileEstimate& q : first->latency_quantiles) {
      // Default stream precision keeps sub-percent quantiles distinct:
      // 0.5 -> lat_p50, 0.999 -> lat_p99.9.
      std::ostringstream os;
      os << "lat_p" << q.q * 100.0;
      header.push_back(os.str());
    }
  }
  header.insert(header.end(),
                {"msgs_mean", "relaxations", "deadlocks", "within_eps"});

  Table table(title, header);
  for (const auto& [label, s] : rows) {
    std::vector<Cell> row = {
        label,
        static_cast<double>(s.replays),
        static_cast<double>(s.successes),
        s.success_rate(),
        s.success_ci.low,
        s.success_ci.high,
        s.latency.mean(),
        s.latency.count() == 0 ? 0.0 : s.latency.min(),
        s.latency.count() == 0 ? 0.0 : s.latency.max(),
        s.latency.stddev()};
    for (const QuantileEstimate& q : s.latency_quantiles)
      row.emplace_back(q.value);
    row.emplace_back(s.delivered_messages.mean());
    row.emplace_back(static_cast<double>(s.order_relaxations));
    row.emplace_back(static_cast<double>(s.order_deadlocks));
    {
      std::ostringstream os;
      os << s.successes_within_eps << "/" << s.replays_within_eps;
      row.emplace_back(os.str());
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace caft
