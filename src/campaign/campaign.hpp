/// \file campaign.hpp
/// Monte-Carlo fault-injection campaign: fans N crash replays of one
/// committed schedule across worker threads and folds the outcomes into a
/// streaming CampaignSummary (campaign/stats.hpp).
///
/// Where the paper re-executes each schedule under a *single* uniformly
/// drawn crash set per repetition (Section 6, "With c Crash"), a campaign
/// asks the distributional questions: empirical success probability with a
/// confidence interval, latency quantiles under stochastic lifetimes,
/// behaviour beyond ε failures.
///
/// Determinism contract (same as run_experiment): every replay owns a
/// pre-split Rng stream, drawn from the master stream in replay order, and
/// the fold also happens in replay order — so the summary is bit-for-bit
/// identical for 1 thread and N threads, for any block size, and for either
/// replay engine (the incremental engine is replay-for-replay bit-identical
/// to the naive one; see sim/replay_engine.hpp). Replays are simulated in
/// bounded blocks, so memory stays O(block + threads), not O(replays).
///
/// Within a block, scenarios are *executed* in order of their earliest
/// crash time so consecutive replays branch from nearby prefix snapshots
/// (maximizing cache reuse in the incremental engine), but results are
/// still folded in replay order — execution order is unobservable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "campaign/scenario_sampler.hpp"
#include "campaign/stats.hpp"
#include "platform/cost_model.hpp"
#include "sched/schedule.hpp"

namespace caft {

/// Which replay implementation executes the campaign. Both produce
/// bit-for-bit identical summaries; kIncremental is the fast path.
enum class CampaignEngine {
  kNaive,        ///< simulate_crashes rebuilds and replays from t = 0
  kIncremental,  ///< prefix-cached ReplayEngine (sim/replay_engine.hpp)
};

/// Knobs of one campaign run.
struct CampaignOptions {
  std::size_t replays = 1000;
  std::uint64_t seed = 20080201;
  /// Worker threads; 0 = default_thread_count() (CAFT_THREADS env, else
  /// hardware concurrency).
  std::size_t threads = 0;
  /// Replays simulated per parallel wave; bounds peak memory. The summary
  /// does not depend on it.
  std::size_t block = 1024;
  /// Latency quantiles to estimate, each in (0, 1).
  std::vector<double> quantiles = {0.5, 0.9, 0.99};
  /// Replay implementation; the summary does not depend on it.
  CampaignEngine engine = CampaignEngine::kIncremental;
};

/// Runs `options.replays` crash replays of `schedule` under scenarios drawn
/// from `sampler` and returns the folded summary.
[[nodiscard]] CampaignSummary run_campaign(const Schedule& schedule,
                                           const CostModel& costs,
                                           const ScenarioSampler& sampler,
                                           const CampaignOptions& options);

}  // namespace caft
