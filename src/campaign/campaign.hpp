/// \file campaign.hpp
/// Monte-Carlo fault-injection campaign: fans N crash replays of one
/// committed schedule across worker threads and folds the outcomes into a
/// streaming CampaignSummary (campaign/stats.hpp).
///
/// Where the paper re-executes each schedule under a *single* uniformly
/// drawn crash set per repetition (Section 6, "With c Crash"), a campaign
/// asks the distributional questions: empirical success probability with a
/// confidence interval, latency quantiles under stochastic lifetimes,
/// behaviour beyond ε failures.
///
/// Determinism contract (same as run_experiment): every replay owns a
/// pre-split Rng stream, drawn from the master stream in replay order, and
/// the fold also happens in replay order — so the summary is bit-for-bit
/// identical for 1 thread and N threads, for any block size, for either
/// replay engine (the incremental engine is replay-for-replay bit-identical
/// to the naive one; see sim/replay_engine.hpp), and for either memo
/// placement (shared-memo values are pure functions of their keys, so the
/// race for who populates an entry is unobservable). θ-quantization
/// (CampaignOptions::theta_bucket_width) is the one knob that changes the
/// summary — deterministically, never as a function of threads. Replays are
/// simulated in bounded blocks, so memory stays O(block + threads), not
/// O(replays).
///
/// Within a block, scenarios are *executed* in order of their earliest
/// crash time so consecutive replays branch from nearby prefix snapshots
/// (maximizing cache reuse in the incremental engine), but results are
/// still folded in replay order — execution order is unobservable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "campaign/scenario_sampler.hpp"
#include "campaign/stats.hpp"
#include "platform/cost_model.hpp"
#include "sched/schedule.hpp"

namespace caft {

class ReplayEngine;  // sim/replay_engine.hpp (CampaignOptions hook below)

/// Which replay implementation executes the campaign. Both produce
/// bit-for-bit identical summaries; kIncremental is the fast path.
enum class CampaignEngine {
  kNaive,        ///< simulate_crashes rebuilds and replays from t = 0
  kIncremental,  ///< prefix-cached ReplayEngine (sim/replay_engine.hpp)
};

/// Where the incremental engine memoises dead-set results. Both modes
/// produce bit-for-bit identical summaries; kShared amortizes each mask
/// across *all* workers instead of once per worker thread.
enum class CampaignMemo {
  kScratch,  ///< per-worker Scratch memo (never crosses threads)
  kShared,   ///< one striped-CAS SharedReplayMemo consulted by every worker
};

/// Live progress of a campaign, delivered after each completed wave (or,
/// for the subprocess backend, each folded block). Observability only:
/// consumers may print heartbeats from it but must never feed it back into
/// scheduling or replay decisions — the summary does not depend on whether
/// anyone listens.
struct CampaignProgress {
  std::size_t replays_done = 0;   ///< replays folded so far
  std::size_t replays_total = 0;  ///< campaign size
  std::size_t successes = 0;      ///< successful replays among done
  std::uint64_t memo_lookups = 0;  ///< shared-memo lookups so far (0 if n/a)
  std::uint64_t memo_hits = 0;     ///< shared-memo hits so far (0 if n/a)
  /// Width of the Wilson 95% interval around the success rate of the folded
  /// prefix (1.0 until anything folds). What --target-ci-width early
  /// stopping watches; observational like every other field here.
  double ci_width = 1.0;
};

/// Knobs of one campaign run.
struct CampaignOptions {
  std::size_t replays = 1000;
  std::uint64_t seed = 20080201;
  /// Worker threads; 0 = default_thread_count() (CAFT_THREADS env, else
  /// hardware concurrency).
  std::size_t threads = 0;
  /// Replays simulated per parallel wave; bounds peak memory. The summary
  /// does not depend on it.
  std::size_t block = 1024;
  /// Latency quantiles to estimate, each in (0, 1).
  std::vector<double> quantiles = {0.5, 0.9, 0.99};
  /// Replay implementation; the summary does not depend on it.
  CampaignEngine engine = CampaignEngine::kIncremental;
  /// Memo placement for the incremental engine; the summary does not
  /// depend on it (shared-memo values are pure functions of their keys).
  CampaignMemo memo = CampaignMemo::kShared;
  /// θ-quantization bucket width for the shared memo; 0 (the default)
  /// keeps every replay bit-exact. With a positive width, crash-at-θ
  /// scenarios are replayed as bucket-midpoint representatives and
  /// memoised — summaries drift by at most width/2 per crash time but stay
  /// deterministic and thread-count independent. Requires memo == kShared
  /// to have any effect.
  double theta_bucket_width = 0.0;
  /// Exactness escape hatch: force bit-exact replays even when
  /// theta_bucket_width > 0 (quantized hits disabled; mask memo stays on).
  bool exact = false;
  /// Adaptive snapshot spacing: ask the sampler for its first-crash
  /// quantiles and concentrate the engine's prefix snapshots there.
  /// Never affects the summary, only replay speed.
  bool adaptive_snapshots = true;
  /// Entry caps of the shared memo and each per-worker Scratch memo (each
  /// entry is a full CrashResult; see ReplayEngineOptions::memo_capacity).
  std::size_t memo_capacity = 1 << 15;
  /// Lock shards of the shared memo.
  std::size_t memo_shards = 16;
  /// Progress callback, invoked after each completed wave from the thread
  /// that runs the campaign (never from worker threads). Purely
  /// observational — the summary is identical whether it is set or not.
  std::function<void(const CampaignProgress&)> on_progress;
  /// Early stopping: stop launching new waves once the Wilson 95% interval
  /// around the folded prefix's success rate is at most this wide (0 = off,
  /// run the full budget). Checked at wave boundaries after the wave folds,
  /// so the stopping point — and therefore the summary — is a deterministic
  /// function of (seed, block): still independent of threads, engine and
  /// memo placement, but `block` joins the summary-relevant knobs whenever
  /// this is set. Honoured by run_campaign only; run_campaign_block replays
  /// its exact range regardless (a block is a fixed slice of someone
  /// else's campaign).
  double target_ci_width = 0.0;
  /// Replay-template reuse hook for services that cache ReplayEngines
  /// across campaigns (the campaign server): a non-null engine — which MUST
  /// have been built from this campaign's schedule/costs with the same
  /// theta_bucket_width and exact flag — is used instead of constructing
  /// one, overriding `engine`/`adaptive_snapshots`. Summary-neutral by the
  /// engine's own contract: replays are pure functions of (schedule, costs,
  /// scenario, θ-config), and the engine is const-shared across worker
  /// threads exactly as an owned one would be. The caller keeps it alive
  /// for the duration of the call.
  const ReplayEngine* prebuilt_engine = nullptr;
};

/// Optional observability output of run_campaign — memo effectiveness and
/// snapshot placement. Purely informational: nothing here feeds back into
/// the summary.
struct CampaignTelemetry {
  std::uint64_t memo_lookups = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_evictions = 0;
  std::size_t memo_entries = 0;  ///< resident at campaign end (shared mode)
  std::size_t snapshots = 0;     ///< prefix snapshots the engine stored
  // Execution-shape counters (PR 6): identical semantics for the
  // in-process and subprocess backends, so Session can report one story.
  // wall_seconds is the only non-deterministic field; everything else is a
  // pure function of the campaign configuration.
  std::size_t replays = 0;       ///< replays executed and folded
  std::size_t blocks = 0;        ///< waves (in-process) or wire blocks
  std::size_t workers = 0;       ///< worker threads or subprocess slots
  std::size_t worker_retries = 0;  ///< subprocess blocks retried (0 in-proc)
  double wall_seconds = 0.0;     ///< campaign wall time (steady_clock)
  /// Most blocks the subprocess coordinator's reorder window ever held at
  /// once (PR 7) — the streaming fold's actual peak, bounded by
  /// ExecutionPolicy::reorder_window. 0 for the in-process backend, whose
  /// fold is wave-by-wave and never buffers.
  std::size_t fold_window_peak = 0;
};

/// Compact outcome of one replay: exactly what the accumulator folds,
/// nothing else (the full CrashResult with its per-replica matrices never
/// outlives its worker). Records are a pure function of (schedule, costs,
/// scenario, θ-quantization config) — never of threads, block size, engine
/// or memo placement — which is what lets campaign blocks be computed in
/// other processes and folded back bit-identically.
struct ReplayRecord {
  bool success = false;
  bool order_deadlock = false;
  double latency = 0.0;
  std::size_t delivered_messages = 0;
  std::size_t order_relaxations = 0;
  std::size_t failed_count = 0;  ///< processors the scenario crashed
};

/// Folds one record into `accumulator` — the single fold step shared by
/// run_campaign and the process-scale-out coordinator, so both produce the
/// same summary from the same record stream.
void fold_replay_record(CampaignAccumulator& accumulator,
                        const ReplayRecord& record);

/// Runs the contiguous replays [first, first + count) of the campaign's
/// canonical scenario stream (the stream run_campaign draws for the same
/// seed — `options.replays` is ignored here) and returns their records in
/// canonical replay order. Concatenating the blocks of any partition of
/// [0, N) reproduces run_campaign's record stream exactly; this is the
/// worker half of the subprocess campaign backend (api/session.hpp).
[[nodiscard]] std::vector<ReplayRecord> run_campaign_block(
    const Schedule& schedule, const CostModel& costs,
    const ScenarioSampler& sampler, const CampaignOptions& options,
    std::size_t first, std::size_t count,
    CampaignTelemetry* telemetry = nullptr);

/// Streaming form of run_campaign_block: identical record stream, but each
/// completed wave (options.block records at most) is handed to `sink` in
/// canonical replay order and then discarded, so the caller — the
/// subprocess worker writing records onto its stdout pipe — never holds
/// more than one wave in memory. Concatenating the sink chunks reproduces
/// run_campaign_block's return value exactly.
void run_campaign_block_streamed(
    const Schedule& schedule, const CostModel& costs,
    const ScenarioSampler& sampler, const CampaignOptions& options,
    std::size_t first, std::size_t count, CampaignTelemetry* telemetry,
    const std::function<void(const ReplayRecord* records, std::size_t count)>&
        sink);

/// Runs `options.replays` crash replays of `schedule` under scenarios drawn
/// from `sampler` and returns the folded summary. `telemetry`, when
/// non-null, receives memo/snapshot counters.
[[nodiscard]] CampaignSummary run_campaign(const Schedule& schedule,
                                           const CostModel& costs,
                                           const ScenarioSampler& sampler,
                                           const CampaignOptions& options,
                                           CampaignTelemetry* telemetry =
                                               nullptr);

}  // namespace caft
