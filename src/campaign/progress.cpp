#include "campaign/progress.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>

namespace caft {

ProgressHeartbeat::ProgressHeartbeat(std::ostream* sink,
                                     std::function<Clock::time_point()> now)
    : sink_(sink), now_(std::move(now)) {
  if (!now_) now_ = [] { return Clock::now(); };
}

void ProgressHeartbeat::operator()(const CampaignProgress& progress) {
  const Clock::time_point now = now_();
  // A non-increasing count or a changed total means a new campaign began
  // (the CLI reuses one heartbeat across --algos entries): per-campaign
  // rates and ETA, not a blend across campaigns.
  if (!have_seen_ || progress.replays_done <= last_seen_.replays_done ||
      progress.replays_total != last_seen_.replays_total) {
    start_ = now;
    last_print_ = Clock::time_point{};
  }
  last_seen_ = progress;
  have_seen_ = true;
  const bool final = progress.replays_done >= progress.replays_total;
  if (!final && now - last_print_ < std::chrono::milliseconds(200)) {
    printed_last_ = false;
    return;
  }
  print(progress, now);
}

void ProgressHeartbeat::finish() {
  // The terminal-line guarantee: whatever the throttle swallowed, the
  // campaign's last state reaches the sink exactly once.
  if (!have_seen_ || printed_last_) return;
  print(last_seen_, now_());
}

void ProgressHeartbeat::print(const CampaignProgress& progress,
                              Clock::time_point now) {
  const double elapsed = std::chrono::duration<double>(now - start_).count();
  const double rate =
      elapsed > 0.0 ? static_cast<double>(progress.replays_done) / elapsed
                    : 0.0;
  const std::size_t remaining =
      progress.replays_total > progress.replays_done
          ? progress.replays_total - progress.replays_done
          : 0;
  const double eta =
      rate > 0.0 ? static_cast<double>(remaining) / rate : 0.0;
  const double memo_pct =
      progress.memo_lookups > 0
          ? 100.0 * static_cast<double>(progress.memo_hits) /
                static_cast<double>(progress.memo_lookups)
          : 0.0;
  const double pct =
      progress.replays_total > 0
          ? 100.0 * static_cast<double>(progress.replays_done) /
                static_cast<double>(progress.replays_total)
          : 100.0;
  char line[160];
  std::snprintf(line, sizeof line,
                "progress: %zu/%zu (%.1f%%) | %.0f replays/s | "
                "CI width %.4f | memo %.1f%% | ETA %.1fs\n",
                progress.replays_done, progress.replays_total, pct, rate,
                progress.ci_width, memo_pct, eta);
  if (sink_ != nullptr)
    *sink_ << line << std::flush;
  else
    std::fputs(line, stderr);
  last_print_ = now;
  printed_last_ = true;
}

}  // namespace caft
