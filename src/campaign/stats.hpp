/// \file stats.hpp
/// Streaming aggregation for fault-injection campaigns: success probability
/// with a Wilson score interval, latency moments and P²-estimated quantiles
/// (Jain & Chlamtac 1985 — O(1) memory, no sample storage), plus the
/// delivered-message / order-relaxation counters the crash replay reports.
/// A campaign folds one CrashResult at a time, in replay order, so the
/// summary is bit-for-bit independent of how replays were scheduled across
/// threads.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/crash_sim.hpp"

namespace caft {

/// Wilson score confidence interval for a binomial proportion — unlike the
/// normal approximation it stays inside [0, 1] and behaves at p near 0 or 1,
/// exactly the regime of campaigns where (almost) every replay succeeds.
struct WilsonInterval {
  double low = 0.0;
  double high = 1.0;
};

/// Interval for `successes` out of `trials` at critical value `z`
/// (1.96 ~ 95%). Degenerates to [0, 1] when trials == 0.
[[nodiscard]] WilsonInterval wilson_interval(std::size_t successes,
                                             std::size_t trials,
                                             double z = 1.96);

/// P² single-quantile estimator: five markers updated per observation, no
/// sample storage. Exact until five observations have arrived (it sorts the
/// initial buffer), then a piecewise-parabolic approximation.
class P2Quantile {
 public:
  /// `quantile` in (0, 1), e.g. 0.5 for the median.
  explicit P2Quantile(double quantile);

  void add(double x);
  [[nodiscard]] std::size_t count() const { return count_; }
  /// Current estimate; NaN before the first observation.
  [[nodiscard]] double value() const;

 private:
  double q_;
  std::size_t count_ = 0;
  double height_[5];       ///< marker heights
  double position_[5];     ///< actual marker positions (1-based)
  double desired_[5];      ///< desired marker positions
  double increment_[5];    ///< desired-position increments per observation
};

/// Streaming count/mean/min/max/variance (Welford) accumulator.
class StreamingMoments {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
  [[nodiscard]] double stddev() const;

  /// Raw sum of squared deviations (the Welford M2 term). Together with
  /// count/mean/min/max it is the accumulator's *complete* state, which is
  /// what lets a summary cross a wire bit-exactly: ship the five fields as
  /// hexfloat, restore() on the far side, and every derived statistic
  /// (stddev included) reproduces bit-for-bit.
  [[nodiscard]] double m2() const { return m2_; }
  /// Rebuilds an accumulator from state previously read off m2()/count()/
  /// mean()/min()/max() — the read half of the wire round-trip. The raw
  /// mean is restored even for count == 0 (mean() masks it to 0 itself).
  [[nodiscard]] static StreamingMoments restore(std::size_t count,
                                                double mean, double m2,
                                                double min, double max) {
    StreamingMoments moments;
    moments.count_ = count;
    moments.mean_ = mean;
    moments.m2_ = m2;
    moments.min_ = min;
    moments.max_ = max;
    return moments;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// One estimated latency quantile.
struct QuantileEstimate {
  double q = 0.0;      ///< requested quantile in (0, 1)
  double value = 0.0;  ///< P² estimate over successful replays
};

/// Everything a campaign reports.
struct CampaignSummary {
  std::string sampler;  ///< distribution name the scenarios came from
  std::size_t replays = 0;
  std::size_t successes = 0;
  [[nodiscard]] double success_rate() const {
    return replays == 0 ? 0.0
                        : static_cast<double>(successes) /
                              static_cast<double>(replays);
  }
  WilsonInterval success_ci;

  /// Replays whose sampled crash count was <= ε — Proposition 5.2 says each
  /// of these must succeed, so successes_within_eps == replays_within_eps
  /// for any valid fault-tolerant schedule.
  std::size_t replays_within_eps = 0;
  std::size_t successes_within_eps = 0;
  /// Largest number of crashed processors seen in one scenario.
  std::size_t max_failed = 0;

  /// Latency over *successful* replays only (failures have no latency).
  StreamingMoments latency;
  std::vector<QuantileEstimate> latency_quantiles;

  /// Inter-processor messages actually delivered, over all replays.
  StreamingMoments delivered_messages;
  /// Total out-of-committed-order commits across all replays.
  std::size_t order_relaxations = 0;
  /// Replays where even the relaxed order deadlocked.
  std::size_t order_deadlocks = 0;
};

/// Folds (scenario, result) pairs in replay order into a CampaignSummary.
class CampaignAccumulator {
 public:
  /// `eps` is the schedule's supported failure count (for the within-ε
  /// split); `quantiles` the latencies to estimate, each in (0, 1).
  CampaignAccumulator(std::size_t eps, const std::vector<double>& quantiles);

  void add(const CrashScenario& scenario, const CrashResult& result);
  /// Convenience overload when the caller already counted the crash set.
  void add(std::size_t failed_count, const CrashResult& result);

  [[nodiscard]] CampaignSummary summary() const;
  void set_sampler_name(std::string name) { sampler_ = std::move(name); }

 private:
  std::size_t eps_;
  std::string sampler_;
  CampaignSummary running_;
  std::vector<double> quantile_targets_;
  std::vector<P2Quantile> quantile_estimators_;
};

/// One row per (label, summary): success rate with CI, latency moments and
/// quantiles, message/relaxation counters — print, CSV and JSON all come
/// from the common Table.
[[nodiscard]] Table campaign_table(
    const std::string& title,
    const std::vector<std::pair<std::string, CampaignSummary>>& rows);

}  // namespace caft
