#include "campaign/scenario_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace caft {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Applies horizon censoring: a lifetime beyond the mission horizon is
/// indistinguishable from "never fails" for the replay.
double censor(double lifetime, double horizon) {
  return lifetime > horizon ? kInf : lifetime;
}

/// Evaluates `quantile` at count evenly spread probabilities in (0, 1) and
/// clamps the results to [0, horizon] — the shared shape of every
/// first_crash_quantiles implementation.
template <typename Quantile>
std::vector<double> quantile_grid(std::size_t count, double horizon,
                                  Quantile&& quantile) {
  std::vector<double> times;
  if (count == 0 || !(horizon > 0.0)) return times;
  times.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double p = static_cast<double>(i + 1) /
                     static_cast<double>(count + 1);
    const double t = quantile(p);
    if (std::isnan(t)) continue;
    times.push_back(std::clamp(t, 0.0, horizon));
  }
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace

UniformKSampler::UniformKSampler(std::size_t proc_count, std::size_t failures)
    : proc_count_(proc_count), failures_(failures) {
  CAFT_CHECK_MSG(proc_count > 0, "sampler needs at least one processor");
  CAFT_CHECK_MSG(failures <= proc_count,
                 "cannot fail more processors than the platform has");
}

std::string UniformKSampler::name() const {
  std::ostringstream os;
  os << "uniform-k(" << failures_ << ")";
  return os.str();
}

CrashScenario UniformKSampler::sample(Rng& rng) const {
  const auto indices = rng.sample_without_replacement(proc_count_, failures_);
  std::vector<ProcId> failed(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i)
    failed[i] = ProcId(static_cast<ProcId::value_type>(indices[i]));
  return CrashScenario::at_zero(proc_count_, failed);
}

ExponentialLifetimeSampler::ExponentialLifetimeSampler(std::size_t proc_count,
                                                       double rate,
                                                       double horizon)
    : proc_count_(proc_count), rate_(rate), horizon_(horizon) {
  CAFT_CHECK_MSG(proc_count > 0, "sampler needs at least one processor");
  CAFT_CHECK_MSG(rate > 0.0, "exponential rate must be positive");
  CAFT_CHECK_MSG(horizon > 0.0, "horizon must be positive");
}

std::string ExponentialLifetimeSampler::name() const {
  std::ostringstream os;
  os << "exp-lifetime(rate=" << rate_ << ")";
  return os.str();
}

CrashScenario ExponentialLifetimeSampler::sample(Rng& rng) const {
  std::vector<double> times(proc_count_);
  for (double& t : times) t = censor(rng.exponential(rate_), horizon_);
  return CrashScenario(std::move(times));
}

std::vector<double> ExponentialLifetimeSampler::first_crash_quantiles(
    std::size_t count, double horizon) const {
  const double min_rate = rate_ * static_cast<double>(proc_count_);
  return quantile_grid(count, horizon, [&](double p) {
    return -std::log1p(-p) / min_rate;
  });
}

WeibullLifetimeSampler::WeibullLifetimeSampler(std::size_t proc_count,
                                               double shape, double scale,
                                               double horizon)
    : proc_count_(proc_count), shape_(shape), scale_(scale),
      horizon_(horizon) {
  CAFT_CHECK_MSG(proc_count > 0, "sampler needs at least one processor");
  CAFT_CHECK_MSG(shape > 0.0 && scale > 0.0,
                 "weibull shape and scale must be positive");
  CAFT_CHECK_MSG(horizon > 0.0, "horizon must be positive");
}

std::string WeibullLifetimeSampler::name() const {
  std::ostringstream os;
  os << "weibull-lifetime(shape=" << shape_ << ", scale=" << scale_ << ")";
  return os.str();
}

CrashScenario WeibullLifetimeSampler::sample(Rng& rng) const {
  std::vector<double> times(proc_count_);
  for (double& t : times) t = censor(rng.weibull(shape_, scale_), horizon_);
  return CrashScenario(std::move(times));
}

std::vector<double> WeibullLifetimeSampler::first_crash_quantiles(
    std::size_t count, double horizon) const {
  const double min_scale =
      scale_ * std::pow(static_cast<double>(proc_count_), -1.0 / shape_);
  return quantile_grid(count, horizon, [&](double p) {
    return min_scale * std::pow(-std::log1p(-p), 1.0 / shape_);
  });
}

CrashWindowSampler::CrashWindowSampler(std::size_t proc_count,
                                       std::size_t failures, double theta_lo,
                                       double theta_hi)
    : proc_count_(proc_count), failures_(failures), theta_lo_(theta_lo),
      theta_hi_(theta_hi) {
  CAFT_CHECK_MSG(proc_count > 0, "sampler needs at least one processor");
  CAFT_CHECK_MSG(failures <= proc_count,
                 "cannot fail more processors than the platform has");
  CAFT_CHECK_MSG(0.0 <= theta_lo && theta_lo <= theta_hi,
                 "crash window requires 0 <= theta_lo <= theta_hi");
}

std::string CrashWindowSampler::name() const {
  std::ostringstream os;
  os << "crash-window(" << failures_ << ", [" << theta_lo_ << ", "
     << theta_hi_ << "])";
  return os.str();
}

CrashScenario CrashWindowSampler::sample(Rng& rng) const {
  CrashScenario scenario = CrashScenario::none(proc_count_);
  const auto indices = rng.sample_without_replacement(proc_count_, failures_);
  for (const std::size_t i : indices)
    scenario.set_crash_time(ProcId(static_cast<ProcId::value_type>(i)),
                            rng.uniform(theta_lo_, theta_hi_));
  return scenario;
}

std::vector<double> CrashWindowSampler::first_crash_quantiles(
    std::size_t count, double horizon) const {
  if (failures_ == 0) return {};
  const double span = theta_hi_ - theta_lo_;
  const double k = static_cast<double>(failures_);
  return quantile_grid(count, horizon, [&](double p) {
    return theta_lo_ + span * (1.0 - std::pow(1.0 - p, 1.0 / k));
  });
}

CorrelatedGroupSampler::CorrelatedGroupSampler(std::size_t proc_count,
                                               std::size_t group_size,
                                               double fail_prob,
                                               double theta_lo,
                                               double theta_hi)
    : proc_count_(proc_count), group_size_(group_size), fail_prob_(fail_prob),
      theta_lo_(theta_lo), theta_hi_(theta_hi) {
  CAFT_CHECK_MSG(proc_count > 0, "sampler needs at least one processor");
  CAFT_CHECK_MSG(group_size >= 1, "group size must be at least 1");
  CAFT_CHECK_MSG(0.0 <= fail_prob && fail_prob <= 1.0,
                 "group failure probability must be in [0, 1]");
  CAFT_CHECK_MSG(0.0 <= theta_lo && theta_lo <= theta_hi,
                 "crash window requires 0 <= theta_lo <= theta_hi");
}

std::size_t CorrelatedGroupSampler::group_count() const {
  return (proc_count_ + group_size_ - 1) / group_size_;
}

std::string CorrelatedGroupSampler::name() const {
  std::ostringstream os;
  os << "correlated-groups(size=" << group_size_ << ", p=" << fail_prob_
     << ")";
  return os.str();
}

std::vector<double> CorrelatedGroupSampler::first_crash_quantiles(
    std::size_t count, double horizon) const {
  // All mass at 0 (or no mass at all) gives the engine nothing to adapt to.
  if (theta_hi_ <= 0.0 || fail_prob_ <= 0.0) return {};
  const double span = theta_hi_ - theta_lo_;
  const double expected_failing = std::max(
      1.0, static_cast<double>(group_count()) * fail_prob_);
  return quantile_grid(count, horizon, [&](double p) {
    return theta_lo_ +
           span * (1.0 - std::pow(1.0 - p, 1.0 / expected_failing));
  });
}

CrashScenario CorrelatedGroupSampler::sample(Rng& rng) const {
  CrashScenario scenario = CrashScenario::none(proc_count_);
  for (std::size_t g = 0; g < group_count(); ++g) {
    if (!rng.bernoulli(fail_prob_)) continue;
    const double theta = theta_lo_ == theta_hi_
                             ? theta_lo_
                             : rng.uniform(theta_lo_, theta_hi_);
    const std::size_t first = g * group_size_;
    const std::size_t last = std::min(first + group_size_, proc_count_);
    for (std::size_t p = first; p < last; ++p)
      scenario.set_crash_time(ProcId(static_cast<ProcId::value_type>(p)),
                              theta);
  }
  return scenario;
}

}  // namespace caft
