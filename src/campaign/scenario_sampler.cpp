#include "campaign/scenario_sampler.hpp"

#include <sstream>

#include "common/check.hpp"

namespace caft {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Applies horizon censoring: a lifetime beyond the mission horizon is
/// indistinguishable from "never fails" for the replay.
double censor(double lifetime, double horizon) {
  return lifetime > horizon ? kInf : lifetime;
}

}  // namespace

UniformKSampler::UniformKSampler(std::size_t proc_count, std::size_t failures)
    : proc_count_(proc_count), failures_(failures) {
  CAFT_CHECK_MSG(proc_count > 0, "sampler needs at least one processor");
  CAFT_CHECK_MSG(failures <= proc_count,
                 "cannot fail more processors than the platform has");
}

std::string UniformKSampler::name() const {
  std::ostringstream os;
  os << "uniform-k(" << failures_ << ")";
  return os.str();
}

CrashScenario UniformKSampler::sample(Rng& rng) const {
  const auto indices = rng.sample_without_replacement(proc_count_, failures_);
  std::vector<ProcId> failed(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i)
    failed[i] = ProcId(static_cast<ProcId::value_type>(indices[i]));
  return CrashScenario::at_zero(proc_count_, failed);
}

ExponentialLifetimeSampler::ExponentialLifetimeSampler(std::size_t proc_count,
                                                       double rate,
                                                       double horizon)
    : proc_count_(proc_count), rate_(rate), horizon_(horizon) {
  CAFT_CHECK_MSG(proc_count > 0, "sampler needs at least one processor");
  CAFT_CHECK_MSG(rate > 0.0, "exponential rate must be positive");
  CAFT_CHECK_MSG(horizon > 0.0, "horizon must be positive");
}

std::string ExponentialLifetimeSampler::name() const {
  std::ostringstream os;
  os << "exp-lifetime(rate=" << rate_ << ")";
  return os.str();
}

CrashScenario ExponentialLifetimeSampler::sample(Rng& rng) const {
  std::vector<double> times(proc_count_);
  for (double& t : times) t = censor(rng.exponential(rate_), horizon_);
  return CrashScenario(std::move(times));
}

WeibullLifetimeSampler::WeibullLifetimeSampler(std::size_t proc_count,
                                               double shape, double scale,
                                               double horizon)
    : proc_count_(proc_count), shape_(shape), scale_(scale),
      horizon_(horizon) {
  CAFT_CHECK_MSG(proc_count > 0, "sampler needs at least one processor");
  CAFT_CHECK_MSG(shape > 0.0 && scale > 0.0,
                 "weibull shape and scale must be positive");
  CAFT_CHECK_MSG(horizon > 0.0, "horizon must be positive");
}

std::string WeibullLifetimeSampler::name() const {
  std::ostringstream os;
  os << "weibull-lifetime(shape=" << shape_ << ", scale=" << scale_ << ")";
  return os.str();
}

CrashScenario WeibullLifetimeSampler::sample(Rng& rng) const {
  std::vector<double> times(proc_count_);
  for (double& t : times) t = censor(rng.weibull(shape_, scale_), horizon_);
  return CrashScenario(std::move(times));
}

CrashWindowSampler::CrashWindowSampler(std::size_t proc_count,
                                       std::size_t failures, double theta_lo,
                                       double theta_hi)
    : proc_count_(proc_count), failures_(failures), theta_lo_(theta_lo),
      theta_hi_(theta_hi) {
  CAFT_CHECK_MSG(proc_count > 0, "sampler needs at least one processor");
  CAFT_CHECK_MSG(failures <= proc_count,
                 "cannot fail more processors than the platform has");
  CAFT_CHECK_MSG(0.0 <= theta_lo && theta_lo <= theta_hi,
                 "crash window requires 0 <= theta_lo <= theta_hi");
}

std::string CrashWindowSampler::name() const {
  std::ostringstream os;
  os << "crash-window(" << failures_ << ", [" << theta_lo_ << ", "
     << theta_hi_ << "])";
  return os.str();
}

CrashScenario CrashWindowSampler::sample(Rng& rng) const {
  CrashScenario scenario = CrashScenario::none(proc_count_);
  const auto indices = rng.sample_without_replacement(proc_count_, failures_);
  for (const std::size_t i : indices)
    scenario.set_crash_time(ProcId(static_cast<ProcId::value_type>(i)),
                            rng.uniform(theta_lo_, theta_hi_));
  return scenario;
}

CorrelatedGroupSampler::CorrelatedGroupSampler(std::size_t proc_count,
                                               std::size_t group_size,
                                               double fail_prob,
                                               double theta_lo,
                                               double theta_hi)
    : proc_count_(proc_count), group_size_(group_size), fail_prob_(fail_prob),
      theta_lo_(theta_lo), theta_hi_(theta_hi) {
  CAFT_CHECK_MSG(proc_count > 0, "sampler needs at least one processor");
  CAFT_CHECK_MSG(group_size >= 1, "group size must be at least 1");
  CAFT_CHECK_MSG(0.0 <= fail_prob && fail_prob <= 1.0,
                 "group failure probability must be in [0, 1]");
  CAFT_CHECK_MSG(0.0 <= theta_lo && theta_lo <= theta_hi,
                 "crash window requires 0 <= theta_lo <= theta_hi");
}

std::size_t CorrelatedGroupSampler::group_count() const {
  return (proc_count_ + group_size_ - 1) / group_size_;
}

std::string CorrelatedGroupSampler::name() const {
  std::ostringstream os;
  os << "correlated-groups(size=" << group_size_ << ", p=" << fail_prob_
     << ")";
  return os.str();
}

CrashScenario CorrelatedGroupSampler::sample(Rng& rng) const {
  CrashScenario scenario = CrashScenario::none(proc_count_);
  for (std::size_t g = 0; g < group_count(); ++g) {
    if (!rng.bernoulli(fail_prob_)) continue;
    const double theta = theta_lo_ == theta_hi_
                             ? theta_lo_
                             : rng.uniform(theta_lo_, theta_hi_);
    const std::size_t first = g * group_size_;
    const std::size_t last = std::min(first + group_size_, proc_count_);
    for (std::size_t p = first; p < last; ++p)
      scenario.set_crash_time(ProcId(static_cast<ProcId::value_type>(p)),
                              theta);
  }
  return scenario;
}

}  // namespace caft
