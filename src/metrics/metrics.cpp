#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "dag/analysis.hpp"

namespace caft {

double slr_denominator(const TaskGraph& graph, const CostModel& costs) {
  if (graph.task_count() == 0) return 0.0;
  return critical_path_length(graph, costs.fastest_weights(graph));
}

double normalized_latency(double latency, const TaskGraph& graph,
                          const CostModel& costs) {
  if (std::isinf(latency)) return latency;
  const double denom = slr_denominator(graph, costs);
  if (denom <= 0.0) return 0.0;
  return latency / denom;
}

double overhead_percent(double latency, double reference) {
  CAFT_CHECK_MSG(reference > 0.0, "overhead needs a positive reference");
  return 100.0 * (latency - reference) / reference;
}

double makespan_lower_bound(const TaskGraph& graph, const CostModel& costs) {
  const double critical = slr_denominator(graph, costs);
  double work = 0.0;
  for (const TaskId t : graph.all_tasks()) work += costs.fastest_exec(t);
  const double balance = work / static_cast<double>(costs.proc_count());
  return std::max(critical, balance);
}

double replicated_lower_bound(const TaskGraph& graph, const CostModel& costs,
                              std::size_t eps) {
  CAFT_CHECK_MSG(eps + 1 <= costs.proc_count(),
                 "need at least eps+1 processors");
  const double critical = slr_denominator(graph, costs);
  // Each task runs on eps+1 *distinct* processors, so at best it uses its
  // eps+1 cheapest options; that work has to fit on m processors.
  double work = 0.0;
  std::vector<double> execs(costs.proc_count());
  for (const TaskId t : graph.all_tasks()) {
    for (std::size_t p = 0; p < costs.proc_count(); ++p)
      execs[p] = costs.exec(t, ProcId(static_cast<ProcId::value_type>(p)));
    std::partial_sort(execs.begin(),
                      execs.begin() + static_cast<std::ptrdiff_t>(eps + 1),
                      execs.end());
    for (std::size_t r = 0; r <= eps; ++r) work += execs[r];
  }
  const double balance = work / static_cast<double>(costs.proc_count());
  return std::max(critical, balance);
}

LatencySummary summarize_latency(const Schedule& schedule,
                                 const CostModel& costs) {
  LatencySummary summary;
  summary.zero_crash = schedule.zero_crash_latency();
  summary.upper_bound = schedule.upper_bound_latency();
  summary.normalized_zero_crash =
      normalized_latency(summary.zero_crash, schedule.graph(), costs);
  summary.normalized_upper_bound =
      normalized_latency(summary.upper_bound, schedule.graph(), costs);
  return summary;
}

}  // namespace caft
