#include "metrics/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace caft {

namespace {

struct Bar {
  double start;
  double finish;
  std::string label;
};

std::string render_lanes(const std::vector<std::vector<Bar>>& lanes,
                         const std::vector<std::string>& lane_names,
                         double horizon, std::size_t width) {
  std::ostringstream os;
  const double scale =
      horizon > 0.0 ? static_cast<double>(width) / horizon : 0.0;
  std::size_t name_width = 0;
  for (const auto& n : lane_names) name_width = std::max(name_width, n.size());

  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    std::string row(width, '.');
    for (const Bar& bar : lanes[lane]) {
      auto from = static_cast<std::size_t>(std::floor(bar.start * scale));
      auto to = static_cast<std::size_t>(std::ceil(bar.finish * scale));
      from = std::min(from, width != 0 ? width - 1 : 0);
      to = std::min(std::max(to, from + 1), width);
      for (std::size_t col = from; col < to; ++col) row[col] = '#';
      // Stamp as much of the label as fits inside the bar.
      for (std::size_t k = 0; k < bar.label.size() && from + k < to; ++k)
        row[from + k] = bar.label[k];
    }
    os << std::setw(static_cast<int>(name_width)) << lane_names[lane] << " |"
       << row << "|\n";
  }
  os << std::setw(static_cast<int>(name_width)) << "" << " 0" << std::string(width > 10 ? width - 10 : 0, ' ')
     << std::fixed << std::setprecision(1) << horizon << '\n';
  return os.str();
}

std::string comm_table(const Schedule& schedule, std::size_t max_comms) {
  std::ostringstream os;
  os << "communications (first " << max_comms << "):\n";
  std::size_t listed = 0;
  for (const CommAssignment& c : schedule.comms()) {
    if (listed == max_comms) {
      os << "  ... (" << schedule.comms().size() - listed << " more)\n";
      break;
    }
    const TaskGraph& g = schedule.graph();
    os << "  " << g.name(c.from.task) << "#" << c.from.replica << "@P"
       << c.src_proc.value() << " -> " << g.name(c.to.task) << "#"
       << c.to.replica << "@P" << c.dst_proc.value();
    if (c.intra()) {
      os << " (intra, t=" << c.times.arrival << ")\n";
    } else {
      os << " [" << c.times.link_start << ", " << c.times.arrival << "]\n";
    }
    ++listed;
  }
  return os.str();
}

}  // namespace

std::string render_gantt(const Schedule& schedule, const GanttOptions& options) {
  const std::size_t m = schedule.platform().proc_count();
  std::vector<std::vector<Bar>> lanes(m);
  std::vector<std::string> names(m);
  for (std::size_t p = 0; p < m; ++p) {
    // append-built (not `"P" + str`): the char*+string&& operator+ takes
    // libstdc++'s insert path, which GCC 12 misdiagnoses under -Wrestrict
    // (PR105329) and -Werror would reject.
    names[p] = std::string("P");
    names[p] += std::to_string(p);
  }

  double horizon = 0.0;
  for (const TaskId t : schedule.graph().all_tasks()) {
    const std::size_t total = schedule.total_replicas(t);
    for (ReplicaIndex r = 0; r < total; ++r) {
      const ReplicaAssignment& a = schedule.replica(t, r);
      lanes[a.proc.index()].push_back(
          Bar{a.start, a.finish, schedule.graph().name(t)});
      horizon = std::max(horizon, a.finish);
    }
  }
  std::ostringstream os;
  os << render_lanes(lanes, names, horizon, options.width);
  if (options.show_comms) os << comm_table(schedule, options.max_comms);
  return os.str();
}

std::string render_crash_gantt(const Schedule& schedule,
                               const CrashResult& result,
                               const CrashScenario& scenario,
                               const GanttOptions& options) {
  const std::size_t m = schedule.platform().proc_count();
  std::vector<std::vector<Bar>> lanes(m);
  std::vector<std::string> names(m);
  for (std::size_t p = 0; p < m; ++p) {
    const auto proc = ProcId(static_cast<ProcId::value_type>(p));
    names[p] = std::string("P");
    names[p] += std::to_string(p);
    if (scenario.dead_from_start(proc)) names[p] += " (DEAD)";
  }

  double horizon = 0.0;
  for (const TaskId t : schedule.graph().all_tasks()) {
    const std::size_t total = schedule.total_replicas(t);
    for (ReplicaIndex r = 0; r < total; ++r) {
      if (!result.completed[t.index()][r]) continue;
      const ReplicaAssignment& a = schedule.replica(t, r);
      const double finish = result.finish[t.index()][r];
      const double start = finish - (a.finish - a.start);
      lanes[a.proc.index()].push_back(
          Bar{start, finish, schedule.graph().name(t)});
      horizon = std::max(horizon, finish);
    }
  }
  std::ostringstream os;
  if (!result.success) os << "(schedule FAILED under this crash pattern)\n";
  os << render_lanes(lanes, names, horizon, options.width);
  return os.str();
}

}  // namespace caft
