/// \file gantt.hpp
/// Text Gantt rendering of a schedule: one lane per processor showing the
/// replica executions, plus an optional communication table. Used by the
/// crash-replay example and handy when debugging schedulers.
#pragma once

#include <string>

#include "platform/cost_model.hpp"
#include "sched/schedule.hpp"
#include "sim/crash_sim.hpp"

namespace caft {

/// Rendering knobs.
struct GanttOptions {
  std::size_t width = 100;     ///< character columns for the time axis
  bool show_comms = false;     ///< append the communication table
  std::size_t max_comms = 40;  ///< cap on listed communications
};

/// ASCII Gantt chart of the committed schedule.
[[nodiscard]] std::string render_gantt(const Schedule& schedule,
                                       const GanttOptions& options = {});

/// ASCII Gantt chart of a crash re-execution: completed replicas only,
/// crashed processors marked.
[[nodiscard]] std::string render_crash_gantt(const Schedule& schedule,
                                             const CrashResult& result,
                                             const CrashScenario& scenario,
                                             const GanttOptions& options = {});

}  // namespace caft
