/// \file metrics.hpp
/// The evaluation quantities of the paper's Section 6: normalized latency
/// and the fault-tolerance overhead.
///
/// Normalization: the paper plots "Normalized Latency" without giving the
/// formula; we use the Schedule Length Ratio customary in the HEFT lineage
/// [27] — latency divided by the length of the critical path with per-task
/// *minimum* execution times and zero communication. Any fixed per-graph
/// normalization preserves the orderings and crossovers the paper reports.
///
/// Overhead (Section 6, verbatim):
///   Overhead = (ALG^{0|c} − CAFT*) / CAFT*
/// where CAFT* is the latency of the fault-free schedule (an implementation
/// of HEFT) on the same graph and platform; reported in percent.
#pragma once

#include "dag/task_graph.hpp"
#include "platform/cost_model.hpp"
#include "sched/schedule.hpp"

namespace caft {

/// Length of the critical path with minimal execution times and free
/// communications — the SLR denominator. Returns 0 for an empty graph.
[[nodiscard]] double slr_denominator(const TaskGraph& graph,
                                     const CostModel& costs);

/// latency / slr_denominator; passes +inf through, returns 0 when the
/// denominator is 0 (single-task graphs cannot have latency without work).
[[nodiscard]] double normalized_latency(double latency, const TaskGraph& graph,
                                        const CostModel& costs);

/// The paper's overhead, in percent. `reference` is CAFT* (fault-free).
[[nodiscard]] double overhead_percent(double latency, double reference);

/// All latency figures of one schedule in one struct (convenience for the
/// benches and examples).
struct LatencySummary {
  double zero_crash = 0.0;
  double upper_bound = 0.0;
  double normalized_zero_crash = 0.0;
  double normalized_upper_bound = 0.0;
};

[[nodiscard]] LatencySummary summarize_latency(const Schedule& schedule,
                                               const CostModel& costs);

/// Model-independent makespan lower bound for a fault-free schedule:
/// max(critical path with per-task minimum execution and free communication,
///     total minimum work / m).
/// Every valid schedule's latency is at least this (property-tested).
[[nodiscard]] double makespan_lower_bound(const TaskGraph& graph,
                                          const CostModel& costs);

/// Lower bound for an ε-replicated schedule's *upper-bound* latency: every
/// task must occupy ε+1 distinct processors, so at least the sum over tasks
/// of their ε+1 smallest execution times must be processed, spread over m
/// processors — combined with the critical path term. The zero-crash
/// latency of a replicated schedule is only bounded by
/// makespan_lower_bound (the earliest copies race like a fault-free run).
[[nodiscard]] double replicated_lower_bound(const TaskGraph& graph,
                                            const CostModel& costs,
                                            std::size_t eps);

}  // namespace caft
