/// \file obs/obs.hpp
/// End-to-end observability: a metrics registry (named counters, gauges and
/// fixed-bucket histograms over striped atomic storage), span tracing that
/// emits Chrome trace-event JSON (loadable in Perfetto / about:tracing),
/// and a `caft-metrics/v1` JSON snapshot writer.
///
/// The hard contract of this subsystem is that it is *provably inert*:
/// nothing recorded here may ever feed back into a schedule, a replay, a
/// campaign summary or any other deterministic result stream. Every
/// consumer writes observability output to its own file or to stderr,
/// never interleaved with report streams, and the golden / byte-identity
/// ctests run a second time with instrumentation enabled to enforce it
/// (cmake/campaign_golden.cmake, cmake/campaign_subprocess.cmake).
///
/// Cost model:
///  - Disabled (the default): every hot-path operation — Counter::add,
///    Gauge::set, Histogram::observe, Registry::span(const char*),
///    ScopedTimer construction — is one relaxed atomic load plus a branch,
///    performs zero heap allocations, and never reads a clock
///    (tests/test_obs.cpp guards the zero-allocation property).
///  - Enabled: counters and histograms stripe their storage across
///    cache-line-sized cells indexed by a per-thread slot, so concurrent
///    writers do not contend on one line; totals are exact (fetch_add).
///    Trace events take one mutex-guarded vector append per *span*, which
///    is fine at span granularity (phases, waves, worker blocks — never
///    per replay).
///
/// All timestamps come from std::chrono::steady_clock (monotonic — wall
/// clock adjustments can never produce negative spans), expressed in
/// microseconds since the registry's construction, which is exactly the
/// "ts" unit the Chrome trace-event format wants.
///
/// Handles (Counter, Gauge, Histogram) are cheap value types pointing into
/// registry-owned storage; they stay valid for the registry's lifetime and
/// a default-constructed handle is a no-op. Look handles up once, outside
/// hot loops — `counter(name)` takes a lock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/build_info.hpp"

namespace obs {

class Registry;

/// Stripe count of counter/histogram storage. 16 cache lines per counter
/// is enough that 8-16 writer threads rarely share a line.
inline constexpr std::size_t kStripes = 16;

namespace detail {

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

/// Storage of one named counter: kStripes padded cells, summed on read.
struct CounterCells {
  CounterCell cells[kStripes];
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const CounterCell& cell : cells)
      sum += cell.value.load(std::memory_order_relaxed);
    return sum;
  }
};

/// Storage of one named gauge (last-write-wins, not striped: gauges are
/// set, not accumulated).
struct GaugeCell {
  std::atomic<double> value{0.0};
};

struct alignas(64) SumCell {
  std::atomic<double> value{0.0};
};

/// Storage of one named histogram: per-stripe bucket counts plus striped
/// observation count and sum. `bounds` are inclusive upper bounds of the
/// first bounds.size() buckets; the last bucket is +inf (overflow).
struct HistogramCells {
  std::vector<double> bounds;              ///< immutable after creation
  std::vector<CounterCell> bucket_counts;  ///< [stripe][bucket], flattened
  CounterCell observations[kStripes];
  SumCell sums[kStripes];

  explicit HistogramCells(std::vector<double> upper_bounds)
      : bounds(std::move(upper_bounds)),
        bucket_counts(kStripes * (bounds.size() + 1)) {}

  [[nodiscard]] std::size_t buckets() const { return bounds.size() + 1; }
};

/// The calling thread's stripe slot: a small round-robin id assigned on
/// first use, stable for the thread's lifetime.
[[nodiscard]] std::size_t stripe_index() noexcept;

}  // namespace detail

/// Monotonically increasing counter handle.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) noexcept;

 private:
  friend class Registry;
  Counter(const std::atomic<bool>* enabled, detail::CounterCells* cells)
      : enabled_(enabled), cells_(cells) {}
  const std::atomic<bool>* enabled_ = nullptr;
  detail::CounterCells* cells_ = nullptr;
};

/// Last-write-wins gauge handle.
class Gauge {
 public:
  Gauge() = default;
  void set(double value) noexcept;

 private:
  friend class Registry;
  Gauge(const std::atomic<bool>* enabled, detail::GaugeCell* cell)
      : enabled_(enabled), cell_(cell) {}
  const std::atomic<bool>* enabled_ = nullptr;
  detail::GaugeCell* cell_ = nullptr;
};

/// Fixed-bucket histogram handle.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) noexcept;

 private:
  friend class Registry;
  Histogram(const std::atomic<bool>* enabled, detail::HistogramCells* cells)
      : enabled_(enabled), cells_(cells) {}
  const std::atomic<bool>* enabled_ = nullptr;
  detail::HistogramCells* cells_ = nullptr;
};

/// RAII trace span: created via Registry::span, records one Chrome
/// "complete" event (ph:"X") covering construction to finish()/destruction.
/// Inert (and allocation-free for const char* names) when tracing is off.
/// Move-only; moving transfers responsibility for recording the event.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      finish();
      registry_ = other.registry_;
      name_ = std::move(other.name_);
      begin_us_ = other.begin_us_;
      tid_ = other.tid_;
      other.registry_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  /// Records the event now (idempotent; the destructor then does nothing).
  void finish() noexcept;

 private:
  friend class Registry;
  Span(Registry* registry, std::string name, double begin_us,
       std::uint32_t tid)
      : registry_(registry),
        name_(std::move(name)),
        begin_us_(begin_us),
        tid_(tid) {}
  Registry* registry_ = nullptr;  ///< null = inert
  std::string name_;
  double begin_us_ = 0.0;
  std::uint32_t tid_ = 0;
};

/// RAII phase timer: on destruction (or stop()) observes the elapsed
/// seconds into the histogram `<name>.seconds` *and* records a trace span
/// named `<name>`. One line per phase at the call site; inert and
/// allocation-free when the registry is disabled.
class ScopedTimer {
 public:
  ScopedTimer() = default;
  ScopedTimer(Registry& registry, const char* name);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Records histogram + span now (idempotent).
  void stop() noexcept;

 private:
  Registry* registry_ = nullptr;  ///< null = inert
  Histogram histogram_;
  Span span_;
  std::chrono::steady_clock::time_point begin_{};
};

/// Point-in-time copy of every metric, for programmatic inspection and the
/// JSON writers. Entries are sorted by name (deterministic output).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;          ///< upper bounds (last bucket +inf)
    std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 entries
    std::uint64_t count = 0;             ///< total observations
    double sum = 0.0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// The named counter's value, or 0 when absent (telemetry cross-checks).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  /// The named gauge's value, or 0.0 when absent.
  [[nodiscard]] double gauge_value(std::string_view name) const;
};

/// The metrics + tracing registry. One global() instance serves the whole
/// process; local instances exist for tests. Thread-safe throughout.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Master switch: metrics recording (and, with set_tracing, spans).
  /// Disabled registries make every handle operation a cheap no-op.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_release);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Span collection switch; effective only while enabled() too.
  void set_tracing(bool on) {
    tracing_.store(on, std::memory_order_release);
  }
  [[nodiscard]] bool tracing() const {
    return enabled() && tracing_.load(std::memory_order_relaxed);
  }

  /// Find-or-create handles. Creation allocates storage once per name (the
  /// storage lives as long as the registry, even while disabled, so a
  /// handle created before set_enabled(true) records afterwards).
  [[nodiscard]] Counter counter(const std::string& name);
  [[nodiscard]] Gauge gauge(const std::string& name);
  /// Default bounds: log-spaced seconds from 10µs to 100s.
  [[nodiscard]] Histogram histogram(const std::string& name);
  [[nodiscard]] Histogram histogram(const std::string& name,
                                    std::vector<double> bounds);

  /// A span on the current thread's trace track. The (const char*) form
  /// allocates nothing when tracing is off; the two-part form builds
  /// "prefix:detail" only when tracing is on.
  [[nodiscard]] Span span(const char* name);
  [[nodiscard]] Span span(const char* prefix, std::string_view detail);

  /// Explicit complete event for callers that track their own begin time
  /// and/or report on behalf of another track (e.g. the campaign
  /// coordinator tagging per-worker-slot tracks). No-op when !tracing().
  void complete_event(std::string name, double begin_us, double duration_us,
                      std::uint32_t tid);
  /// Names a trace track (Chrome "thread_name" metadata event).
  void set_track_label(std::uint32_t tid, std::string label);

  /// Microseconds since the registry's construction (steady_clock).
  [[nodiscard]] double now_us() const;
  /// Small stable id of the calling thread — the default span track.
  [[nodiscard]] static std::uint32_t current_tid();

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::size_t trace_event_count() const;

  /// `caft-metrics/v1` JSON document: schema tag, build-provenance block,
  /// then counters/gauges/histograms sorted by name.
  void write_metrics_json(std::ostream& os,
                          const caft::BuildInfo& build) const;
  /// Chrome trace-event JSON (the object form: {"traceEvents": [...]}),
  /// loadable in Perfetto / about:tracing.
  void write_trace_json(std::ostream& os) const;

  /// The process-wide registry (never destroyed). Disabled until a
  /// consumer — e.g. campaign_cli --trace-out/--metrics-out — enables it.
  [[nodiscard]] static Registry& global();

 private:
  struct TraceEvent {
    std::string name;
    double ts_us = 0.0;
    double dur_us = 0.0;
    std::uint32_t tid = 0;
    char phase = 'X';  ///< 'X' complete, 'M' metadata (track label)
  };

  [[nodiscard]] detail::CounterCells* counter_cells(const std::string& name);
  [[nodiscard]] detail::GaugeCell* gauge_cell(const std::string& name);
  [[nodiscard]] detail::HistogramCells* histogram_cells(
      const std::string& name, std::vector<double> bounds);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> tracing_{false};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex metrics_mutex_;  ///< guards the three name tables
  std::vector<std::pair<std::string, std::unique_ptr<detail::CounterCells>>>
      counters_;
  std::vector<std::pair<std::string, std::unique_ptr<detail::GaugeCell>>>
      gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<detail::HistogramCells>>>
      histograms_;

  mutable std::mutex trace_mutex_;  ///< guards the event buffer
  std::vector<TraceEvent> events_;
};

}  // namespace obs
