#include "obs/obs.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace obs {

namespace detail {

std::size_t stripe_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return slot;
}

}  // namespace detail

namespace {

/// Log-spaced seconds from 10µs to 100s — the default phase-timing bounds.
std::vector<double> default_seconds_bounds() {
  std::vector<double> bounds;
  for (double b = 1e-5; b < 100.0 * 1.0001; b *= 10.0) {
    bounds.push_back(b);
    bounds.push_back(b * 2.5);
    bounds.push_back(b * 5.0);
  }
  bounds.resize(bounds.size() - 2);  // stop at exactly 1e2
  return bounds;
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Shortest round-trippable decimal form (metrics are human-inspected, so
/// no hexfloat here; %.17g survives a parse back to the same double).
void write_json_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void Counter::add(std::uint64_t n) noexcept {
  if (!enabled_ || !enabled_->load(std::memory_order_relaxed)) return;
  cells_->cells[detail::stripe_index()].value.fetch_add(
      n, std::memory_order_relaxed);
}

void Gauge::set(double value) noexcept {
  if (!enabled_ || !enabled_->load(std::memory_order_relaxed)) return;
  cell_->value.store(value, std::memory_order_relaxed);
}

void Histogram::observe(double value) noexcept {
  if (!enabled_ || !enabled_->load(std::memory_order_relaxed)) return;
  const std::size_t stripe = detail::stripe_index();
  const auto it = std::lower_bound(cells_->bounds.begin(),
                                   cells_->bounds.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - cells_->bounds.begin());
  cells_->bucket_counts[stripe * cells_->buckets() + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  cells_->observations[stripe].value.fetch_add(1, std::memory_order_relaxed);
  cells_->sums[stripe].value.fetch_add(value, std::memory_order_relaxed);
}

void Span::finish() noexcept {
  if (registry_ == nullptr) return;
  Registry* registry = registry_;
  registry_ = nullptr;
  const double end_us = registry->now_us();
  registry->complete_event(std::move(name_), begin_us_, end_us - begin_us_,
                           tid_);
}

ScopedTimer::ScopedTimer(Registry& registry, const char* name) {
  if (!registry.enabled()) return;
  registry_ = &registry;
  histogram_ = registry.histogram(std::string(name) + ".seconds");
  span_ = registry.span(name);
  begin_ = std::chrono::steady_clock::now();
}

void ScopedTimer::stop() noexcept {
  if (registry_ == nullptr) return;
  registry_ = nullptr;
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - begin_;
  histogram_.observe(elapsed.count());
  span_.finish();
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  for (const CounterValue& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

double MetricsSnapshot::gauge_value(std::string_view name) const {
  for (const GaugeValue& g : gauges)
    if (g.name == name) return g.value;
  return 0.0;
}

Registry::Registry() : epoch_(std::chrono::steady_clock::now()) {}
Registry::~Registry() = default;

detail::CounterCells* Registry::counter_cells(const std::string& name) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  for (auto& [existing, cells] : counters_)
    if (existing == name) return cells.get();
  counters_.emplace_back(name, std::make_unique<detail::CounterCells>());
  return counters_.back().second.get();
}

detail::GaugeCell* Registry::gauge_cell(const std::string& name) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  for (auto& [existing, cell] : gauges_)
    if (existing == name) return cell.get();
  gauges_.emplace_back(name, std::make_unique<detail::GaugeCell>());
  return gauges_.back().second.get();
}

detail::HistogramCells* Registry::histogram_cells(const std::string& name,
                                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  for (auto& [existing, cells] : histograms_)
    if (existing == name) return cells.get();
  histograms_.emplace_back(
      name, std::make_unique<detail::HistogramCells>(std::move(bounds)));
  return histograms_.back().second.get();
}

Counter Registry::counter(const std::string& name) {
  return Counter(&enabled_, counter_cells(name));
}

Gauge Registry::gauge(const std::string& name) {
  return Gauge(&enabled_, gauge_cell(name));
}

Histogram Registry::histogram(const std::string& name) {
  return histogram(name, default_seconds_bounds());
}

Histogram Registry::histogram(const std::string& name,
                              std::vector<double> bounds) {
  return Histogram(&enabled_, histogram_cells(name, std::move(bounds)));
}

Span Registry::span(const char* name) {
  if (!tracing()) return Span();
  return Span(this, std::string(name), now_us(), current_tid());
}

Span Registry::span(const char* prefix, std::string_view detail) {
  if (!tracing()) return Span();
  std::string name(prefix);
  name += ':';
  name += detail;
  return Span(this, std::move(name), now_us(), current_tid());
}

void Registry::complete_event(std::string name, double begin_us,
                              double duration_us, std::uint32_t tid) {
  if (!tracing()) return;
  std::lock_guard<std::mutex> lock(trace_mutex_);
  events_.push_back(
      TraceEvent{std::move(name), begin_us, duration_us, tid, 'X'});
}

void Registry::set_track_label(std::uint32_t tid, std::string label) {
  if (!tracing()) return;
  std::lock_guard<std::mutex> lock(trace_mutex_);
  events_.push_back(TraceEvent{std::move(label), 0.0, 0.0, tid, 'M'});
}

double Registry::now_us() const {
  const std::chrono::duration<double, std::micro> since =
      std::chrono::steady_clock::now() - epoch_;
  return since.count();
}

std::uint32_t Registry::current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, cells] : counters_)
      snap.counters.push_back({name, cells->total()});
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, cell] : gauges_)
      snap.gauges.push_back(
          {name, cell->value.load(std::memory_order_relaxed)});
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, cells] : histograms_) {
      MetricsSnapshot::HistogramValue h;
      h.name = name;
      h.bounds = cells->bounds;
      h.counts.assign(cells->buckets(), 0);
      for (std::size_t stripe = 0; stripe < kStripes; ++stripe) {
        for (std::size_t bucket = 0; bucket < cells->buckets(); ++bucket)
          h.counts[bucket] +=
              cells->bucket_counts[stripe * cells->buckets() + bucket]
                  .value.load(std::memory_order_relaxed);
        h.count +=
            cells->observations[stripe].value.load(std::memory_order_relaxed);
        h.sum += cells->sums[stripe].value.load(std::memory_order_relaxed);
      }
      snap.histograms.push_back(std::move(h));
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::size_t Registry::trace_event_count() const {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  return events_.size();
}

void Registry::write_metrics_json(std::ostream& os,
                                  const caft::BuildInfo& build) const {
  const MetricsSnapshot snap = snapshot();
  os << "{\n  \"schema\": \"caft-metrics/v1\",\n  \"build\": {\n"
     << "    \"git_sha\": ";
  write_json_string(os, build.git_sha);
  os << ",\n    \"compiler\": ";
  write_json_string(os, build.compiler);
  os << ",\n    \"build_type\": ";
  write_json_string(os, build.build_type);
  os << "\n  },\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    write_json_string(os, snap.counters[i].name);
    os << ": " << snap.counters[i].value;
  }
  os << (snap.counters.empty() ? "},\n" : "\n  },\n");
  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    write_json_string(os, snap.gauges[i].name);
    os << ": ";
    write_json_double(os, snap.gauges[i].value);
  }
  os << (snap.gauges.empty() ? "},\n" : "\n  },\n");
  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const MetricsSnapshot::HistogramValue& h = snap.histograms[i];
    os << (i == 0 ? "\n    " : ",\n    ");
    write_json_string(os, h.name);
    os << ": {\"bounds\": [";
    for (std::size_t j = 0; j < h.bounds.size(); ++j) {
      if (j != 0) os << ", ";
      write_json_double(os, h.bounds[j]);
    }
    os << "], \"counts\": [";
    for (std::size_t j = 0; j < h.counts.size(); ++j) {
      if (j != 0) os << ", ";
      os << h.counts[j];
    }
    os << "], \"count\": " << h.count << ", \"sum\": ";
    write_json_double(os, h.sum);
    os << "}";
  }
  os << (snap.histograms.empty() ? "}\n" : "\n  }\n");
  os << "}\n";
}

void Registry::write_trace_json(std::ostream& os) const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    events = events_;
  }
  // Stable order: metadata first, then events by (ts, tid, name).
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.phase != b.phase) return a.phase == 'M';
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.name < b.name;
                   });
  os << "{\"traceEvents\": [";
  char buf[96];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << (i == 0 ? "\n" : ",\n");
    if (e.phase == 'M') {
      os << "  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
            "\"tid\": "
         << e.tid << ", \"args\": {\"name\": ";
      write_json_string(os, e.name);
      os << "}}";
    } else {
      os << "  {\"ph\": \"X\", \"name\": ";
      write_json_string(os, e.name);
      std::snprintf(buf, sizeof(buf),
                    ", \"pid\": 1, \"tid\": %" PRIu32
                    ", \"ts\": %.3f, \"dur\": %.3f}",
                    e.tid, e.ts_us, e.dur_us);
      os << buf;
    }
  }
  os << (events.empty() ? "]}\n" : "\n]}\n");
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

}  // namespace obs
