#include "platform/topology.hpp"

#include <algorithm>
#include <deque>

namespace caft {

Topology Topology::clique(std::size_t m) {
  CAFT_CHECK_MSG(m >= 1, "a platform needs at least one processor");
  Topology t(m);
  for (std::size_t a = 0; a < m; ++a)
    for (std::size_t b = a + 1; b < m; ++b) t.add_bidirectional(a, b);
  t.build_routes();
  return t;
}

Topology Topology::ring(std::size_t m) {
  CAFT_CHECK_MSG(m >= 2, "a ring needs at least two processors");
  Topology t(m);
  for (std::size_t a = 0; a < m; ++a) {
    const std::size_t b = (a + 1) % m;
    if (a < b || m == 2) {
      if (a < b) t.add_bidirectional(a, b);
    }
  }
  if (m > 2) t.add_bidirectional(m - 1, 0);
  t.build_routes();
  return t;
}

Topology Topology::star(std::size_t m) {
  CAFT_CHECK_MSG(m >= 2, "a star needs a hub and at least one leaf");
  Topology t(m);
  for (std::size_t leaf = 1; leaf < m; ++leaf) t.add_bidirectional(0, leaf);
  t.build_routes();
  return t;
}

Topology Topology::mesh(std::size_t rows, std::size_t cols) {
  CAFT_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 1);
  Topology t(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.add_bidirectional(id(r, c), id(r, c + 1));
      if (r + 1 < rows) t.add_bidirectional(id(r, c), id(r + 1, c));
    }
  t.build_routes();
  return t;
}

Topology Topology::torus(std::size_t rows, std::size_t cols) {
  CAFT_CHECK(rows >= 2 && cols >= 2);
  Topology t(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols)
        t.add_bidirectional(id(r, c), id(r, c + 1));
      else if (cols > 2)
        t.add_bidirectional(id(r, c), id(r, 0));
      if (r + 1 < rows)
        t.add_bidirectional(id(r, c), id(r + 1, c));
      else if (rows > 2)
        t.add_bidirectional(id(r, c), id(0, c));
    }
  t.build_routes();
  return t;
}

Topology Topology::random_connected(std::size_t m, double avg_degree, Rng& rng) {
  CAFT_CHECK(m >= 2);
  CAFT_CHECK_MSG(avg_degree >= 1.0, "average degree must be at least 1");
  Topology t(m);
  std::vector<std::vector<bool>> adjacent(m, std::vector<bool>(m, false));
  // Random spanning tree: attach each processor under a random earlier one.
  for (std::size_t i = 1; i < m; ++i) {
    const auto parent = static_cast<std::size_t>(rng.uniform_int(0, i - 1));
    t.add_bidirectional(parent, i);
    adjacent[parent][i] = adjacent[i][parent] = true;
  }
  // Extra cables until the average (undirected) degree target is met.
  const std::size_t target_cables = std::min(
      m * (m - 1) / 2,
      static_cast<std::size_t>(avg_degree * static_cast<double>(m) / 2.0));
  std::size_t cables = m - 1;
  std::size_t attempts = 0;
  while (cables < target_cables && attempts < 100 * m * m) {
    ++attempts;
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, m - 1));
    const auto b = static_cast<std::size_t>(rng.uniform_int(0, m - 1));
    if (a == b || adjacent[a][b]) continue;
    t.add_bidirectional(a, b);
    adjacent[a][b] = adjacent[b][a] = true;
    ++cables;
  }
  t.build_routes();
  return t;
}

Topology Topology::custom(
    std::size_t m,
    const std::vector<std::pair<std::size_t, std::size_t>>& cables) {
  CAFT_CHECK_MSG(m >= 1, "a platform needs at least one processor");
  Topology t(m);
  for (const auto& [a, b] : cables) t.add_bidirectional(a, b);
  t.build_routes();
  return t;
}

void Topology::add_bidirectional(std::size_t a, std::size_t b) {
  CAFT_CHECK(a < proc_count_ && b < proc_count_ && a != b);
  links_.push_back(LinkDef{ProcId(static_cast<ProcId::value_type>(a)),
                           ProcId(static_cast<ProcId::value_type>(b))});
  links_.push_back(LinkDef{ProcId(static_cast<ProcId::value_type>(b)),
                           ProcId(static_cast<ProcId::value_type>(a))});
}

void Topology::build_routes() {
  const std::size_t m = proc_count_;
  direct_.assign(m * m, LinkId::invalid());
  for (std::size_t l = 0; l < links_.size(); ++l) {
    const LinkDef& def = links_[l];
    direct_[def.from.index() * m + def.to.index()] =
        LinkId(static_cast<LinkId::value_type>(l));
  }

  routes_.assign(m * m, {});
  // BFS per source over the directed adjacency; neighbours are visited in
  // link-insertion order, so routes are deterministic.
  std::vector<std::vector<LinkId>> outgoing(m);
  for (std::size_t l = 0; l < links_.size(); ++l)
    outgoing[links_[l].from.index()].push_back(
        LinkId(static_cast<LinkId::value_type>(l)));

  for (std::size_t src = 0; src < m; ++src) {
    std::vector<LinkId> via(m, LinkId::invalid());
    std::vector<bool> seen(m, false);
    seen[src] = true;
    std::deque<std::size_t> queue{src};
    while (!queue.empty()) {
      const std::size_t cur = queue.front();
      queue.pop_front();
      for (const LinkId l : outgoing[cur]) {
        const std::size_t next = links_[l.index()].to.index();
        if (seen[next]) continue;
        seen[next] = true;
        via[next] = l;
        queue.push_back(next);
      }
    }
    for (std::size_t dst = 0; dst < m; ++dst) {
      if (dst == src || !seen[dst]) continue;
      std::vector<LinkId> path;
      std::size_t cur = dst;
      while (cur != src) {
        const LinkId l = via[cur];
        path.push_back(l);
        cur = links_[l.index()].from.index();
      }
      std::reverse(path.begin(), path.end());
      routes_[src * m + dst] = std::move(path);
    }
  }
}

LinkId Topology::direct_link(ProcId a, ProcId b) const {
  CAFT_CHECK(a.index() < proc_count_ && b.index() < proc_count_);
  if (a == b) return LinkId::invalid();
  return direct_[a.index() * proc_count_ + b.index()];
}

std::span<const LinkId> Topology::route(ProcId a, ProcId b) const {
  CAFT_CHECK(a.index() < proc_count_ && b.index() < proc_count_);
  return routes_[a.index() * proc_count_ + b.index()];
}

bool Topology::connected() const {
  for (std::size_t a = 0; a < proc_count_; ++a)
    for (std::size_t b = 0; b < proc_count_; ++b)
      if (a != b && routes_[a * proc_count_ + b].empty()) return false;
  return true;
}

bool Topology::is_clique() const {
  for (std::size_t a = 0; a < proc_count_; ++a)
    for (std::size_t b = 0; b < proc_count_; ++b)
      if (a != b && !direct_[a * proc_count_ + b].valid()) return false;
  return true;
}

}  // namespace caft
