#include "platform/platform.hpp"

// Platform is header-only today; this translation unit anchors the target so
// future out-of-line members have a home without touching the build.
