#include "platform/cost_model.hpp"

#include <algorithm>
#include <limits>

namespace caft {

CostModel::CostModel(std::size_t task_count, const Platform& platform)
    : task_count_(task_count),
      platform_(&platform),
      exec_(task_count * platform.proc_count(), 0.0),
      link_delay_(platform.topology().link_count(), 0.0) {}

void CostModel::set_exec(TaskId t, ProcId p, double time) {
  CAFT_CHECK(t.index() < task_count_ && p.index() < proc_count());
  CAFT_CHECK_MSG(time >= 0.0, "execution time must be non-negative");
  exec_[t.index() * proc_count() + p.index()] = time;
}

void CostModel::set_exec_all(TaskId t, double time) {
  for (std::size_t p = 0; p < proc_count(); ++p)
    set_exec(t, ProcId(static_cast<ProcId::value_type>(p)), time);
}

void CostModel::set_unit_delay(LinkId l, double delay) {
  CAFT_CHECK(l.index() < link_delay_.size());
  CAFT_CHECK_MSG(delay >= 0.0, "unit delay must be non-negative");
  link_delay_[l.index()] = delay;
}

void CostModel::set_all_unit_delays(double delay) {
  CAFT_CHECK_MSG(delay >= 0.0, "unit delay must be non-negative");
  std::fill(link_delay_.begin(), link_delay_.end(), delay);
}

double CostModel::pair_delay(ProcId from, ProcId to) const {
  if (from == to) return 0.0;
  double total = 0.0;
  const auto path = platform_->topology().route(from, to);
  CAFT_CHECK_MSG(!path.empty(), "no route between distinct processors");
  for (const LinkId l : path) total += unit_delay(l);
  return total;
}

double CostModel::avg_exec(TaskId t) const {
  CAFT_CHECK(t.index() < task_count_);
  double sum = 0.0;
  for (std::size_t p = 0; p < proc_count(); ++p)
    sum += exec_[t.index() * proc_count() + p];
  return sum / static_cast<double>(proc_count());
}

double CostModel::slowest_exec(TaskId t) const {
  CAFT_CHECK(t.index() < task_count_);
  double worst = 0.0;
  for (std::size_t p = 0; p < proc_count(); ++p)
    worst = std::max(worst, exec_[t.index() * proc_count() + p]);
  return worst;
}

double CostModel::fastest_exec(TaskId t) const {
  CAFT_CHECK(t.index() < task_count_);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < proc_count(); ++p)
    best = std::min(best, exec_[t.index() * proc_count() + p]);
  return best;
}

double CostModel::avg_pair_delay() const {
  const std::size_t m = proc_count();
  if (m < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t a = 0; a < m; ++a)
    for (std::size_t b = 0; b < m; ++b)
      if (a != b)
        sum += pair_delay(ProcId(static_cast<ProcId::value_type>(a)),
                          ProcId(static_cast<ProcId::value_type>(b)));
  return sum / static_cast<double>(m * (m - 1));
}

double CostModel::max_pair_delay() const {
  const std::size_t m = proc_count();
  double worst = 0.0;
  for (std::size_t a = 0; a < m; ++a)
    for (std::size_t b = 0; b < m; ++b)
      if (a != b)
        worst = std::max(worst,
                         pair_delay(ProcId(static_cast<ProcId::value_type>(a)),
                                    ProcId(static_cast<ProcId::value_type>(b))));
  return worst;
}

double CostModel::granularity(const TaskGraph& g) const {
  CAFT_CHECK(g.task_count() == task_count_);
  double comp = 0.0;
  for (const TaskId t : g.all_tasks()) comp += slowest_exec(t);
  const double worst_delay = max_pair_delay();
  double comm = 0.0;
  for (const Edge& e : g.edges()) comm += e.volume * worst_delay;
  if (comm == 0.0) return std::numeric_limits<double>::infinity();
  return comp / comm;
}

DagWeights CostModel::average_weights(const TaskGraph& g) const {
  CAFT_CHECK(g.task_count() == task_count_);
  DagWeights w;
  w.node.resize(g.task_count());
  for (const TaskId t : g.all_tasks()) w.node[t.index()] = avg_exec(t);
  const double avg_delay = avg_pair_delay();
  w.edge.resize(g.edge_count());
  for (std::size_t e = 0; e < g.edge_count(); ++e)
    w.edge[e] = g.edge(static_cast<EdgeIndex>(e)).volume * avg_delay;
  return w;
}

DagWeights CostModel::fastest_weights(const TaskGraph& g) const {
  CAFT_CHECK(g.task_count() == task_count_);
  DagWeights w;
  w.node.resize(g.task_count());
  for (const TaskId t : g.all_tasks()) w.node[t.index()] = fastest_exec(t);
  w.edge.assign(g.edge_count(), 0.0);
  return w;
}

void CostModel::scale_exec(double factor) {
  CAFT_CHECK_MSG(factor > 0.0, "scale factor must be positive");
  for (double& e : exec_) e *= factor;
}

}  // namespace caft
