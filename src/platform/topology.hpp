/// \file topology.hpp
/// Interconnect topologies. The paper's platform is a clique ("processors are
/// fully connected", Section 2); Section 7 proposes sparse interconnection
/// graphs with routing tables as an extension, which we implement here:
/// ring, star, 2-D mesh/torus and random connected graphs, with shortest-hop
/// routes precomputed per ordered processor pair (the "routing table").
///
/// Links are *directed*: the bidirectional full-duplex link between P_k and
/// P_h appears as two LinkIds, one per direction, so the one-port engine can
/// account for simultaneous send/receive on the same physical cable.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"

namespace caft {

/// A directed link from one processor to another.
struct LinkDef {
  ProcId from;
  ProcId to;
};

/// Directed-link interconnect with precomputed shortest-hop routes.
class Topology {
 public:
  /// Fully-connected platform of `m` processors (the paper's model).
  [[nodiscard]] static Topology clique(std::size_t m);
  /// Bidirectional ring P_0 - P_1 - ... - P_{m-1} - P_0.
  [[nodiscard]] static Topology ring(std::size_t m);
  /// Star with hub P_0 and `m - 1` leaves.
  [[nodiscard]] static Topology star(std::size_t m);
  /// 2-D mesh (grid) of rows x cols processors, row-major numbering.
  [[nodiscard]] static Topology mesh(std::size_t rows, std::size_t cols);
  /// 2-D torus (mesh plus wrap-around links).
  [[nodiscard]] static Topology torus(std::size_t rows, std::size_t cols);
  /// Random connected graph: a spanning tree plus extra edges until the
  /// average degree reaches `avg_degree`.
  [[nodiscard]] static Topology random_connected(std::size_t m,
                                                 double avg_degree, Rng& rng);
  /// Arbitrary topology from an explicit cable list; each (a, b) pair adds
  /// the two directed links a->b and b->a in order, so link indices are
  /// reproducible (the serialization layer relies on this).
  [[nodiscard]] static Topology custom(
      std::size_t m, const std::vector<std::pair<std::size_t, std::size_t>>& cables);

  [[nodiscard]] std::size_t proc_count() const { return proc_count_; }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const LinkDef& link(LinkId l) const {
    CAFT_CHECK(l.index() < links_.size());
    return links_[l.index()];
  }

  /// Direct link from `a` to `b`, or invalid() if they are not adjacent.
  [[nodiscard]] LinkId direct_link(ProcId a, ProcId b) const;

  /// Shortest-hop route from `a` to `b` as a sequence of links; empty iff
  /// a == b. Routes are deterministic (lowest-id tie-break).
  [[nodiscard]] std::span<const LinkId> route(ProcId a, ProcId b) const;

  /// Number of hops between `a` and `b` (0 iff equal).
  [[nodiscard]] std::size_t hop_count(ProcId a, ProcId b) const {
    return route(a, b).size();
  }

  /// True iff every processor can reach every other.
  [[nodiscard]] bool connected() const;

  /// True iff every distinct ordered pair is adjacent.
  [[nodiscard]] bool is_clique() const;

 private:
  explicit Topology(std::size_t m) : proc_count_(m) {}

  /// Adds the two directed links of one bidirectional cable.
  void add_bidirectional(std::size_t a, std::size_t b);
  /// BFS from every source; fills routes_.
  void build_routes();

  std::size_t proc_count_ = 0;
  std::vector<LinkDef> links_;
  /// direct_[a * m + b] = link id or invalid.
  std::vector<LinkId> direct_;
  /// routes_[a * m + b] = link sequence of the shortest path.
  std::vector<std::vector<LinkId>> routes_;
};

}  // namespace caft
