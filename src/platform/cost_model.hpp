/// \file cost_model.hpp
/// Heterogeneous cost functions of the paper's Section 2:
///   - E(t, P_k): execution time of task t on processor P_k;
///   - d(P_k, P_h): time to ship one unit of data from P_k to P_h
///     (d(P_k, P_k) = 0, intra-processor communication is free);
///   - W(t_i, t_j) = V(t_i, t_j) · d(P_k, P_h): communication time of an edge
///     whose endpoints are mapped on P_k and P_h.
/// On sparse topologies d(P_k, P_h) is the sum of the per-link unit delays
/// along the routing table's path (store-and-forward, documented in
/// DESIGN.md); on the paper's clique it is exactly the direct link's delay.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "dag/analysis.hpp"
#include "dag/task_graph.hpp"
#include "platform/platform.hpp"

namespace caft {

/// Execution and communication costs for one (graph, platform) pairing.
/// Holds a reference to the platform; the platform must outlive the model.
class CostModel {
 public:
  CostModel(std::size_t task_count, const Platform& platform);

  [[nodiscard]] std::size_t task_count() const { return task_count_; }
  [[nodiscard]] std::size_t proc_count() const { return platform_->proc_count(); }
  [[nodiscard]] const Platform& platform() const { return *platform_; }

  /// E(t, P_k). Must be set for every pair before scheduling.
  [[nodiscard]] double exec(TaskId t, ProcId p) const {
    CAFT_CHECK(t.index() < task_count_ && p.index() < proc_count());
    return exec_[t.index() * proc_count() + p.index()];
  }
  void set_exec(TaskId t, ProcId p, double time);
  /// Sets E(t, P_k) = time for all processors (homogeneous task).
  void set_exec_all(TaskId t, double time);

  /// Unit delay of one directed link.
  [[nodiscard]] double unit_delay(LinkId l) const {
    CAFT_CHECK(l.index() < link_delay_.size());
    return link_delay_[l.index()];
  }
  void set_unit_delay(LinkId l, double delay);
  /// Sets both directions of every link to `delay`.
  void set_all_unit_delays(double delay);

  /// d(P_k, P_h): route delay per data unit; 0 iff same processor.
  [[nodiscard]] double pair_delay(ProcId from, ProcId to) const;

  /// W = volume · d(from, to).
  [[nodiscard]] double comm_time(double volume, ProcId from, ProcId to) const {
    return volume * pair_delay(from, to);
  }

  /// Average of E(t, ·) over processors — the paper's node weight for
  /// priority computation (Section 5, following [27, 4]).
  [[nodiscard]] double avg_exec(TaskId t) const;
  /// max_k E(t, P_k) — the "slowest computation time" of the granularity
  /// definition (Section 2).
  [[nodiscard]] double slowest_exec(TaskId t) const;
  /// min_k E(t, P_k) — used by the SLR normalization.
  [[nodiscard]] double fastest_exec(TaskId t) const;

  /// Average d(P_k, P_h) over ordered pairs of *distinct* processors.
  [[nodiscard]] double avg_pair_delay() const;
  /// max d(P_k, P_h) over ordered pairs of distinct processors.
  [[nodiscard]] double max_pair_delay() const;

  /// Granularity g(G, P) (Section 2): Σ_t slowest-exec / Σ_e slowest-comm.
  /// Graphs without edges have infinite granularity; we return +inf.
  [[nodiscard]] double granularity(const TaskGraph& g) const;

  /// Node/edge weights for tℓ/bℓ priorities: average execution per task,
  /// average communication (volume · average pair delay) per edge.
  [[nodiscard]] DagWeights average_weights(const TaskGraph& g) const;

  /// Weights for the SLR normalization: per-task minimum execution time and
  /// zero communication.
  [[nodiscard]] DagWeights fastest_weights(const TaskGraph& g) const;

  /// Multiplies every execution time by `factor` (granularity retargeting).
  void scale_exec(double factor);

 private:
  std::size_t task_count_;
  const Platform* platform_;
  std::vector<double> exec_;        ///< task-major [t][p]
  std::vector<double> link_delay_;  ///< per directed link
};

}  // namespace caft
