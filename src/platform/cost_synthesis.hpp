/// \file cost_synthesis.hpp
/// Random cost generation following the paper's experimental protocol
/// (Section 6): unit link delays uniform in [0.5, 1], edge volumes uniform in
/// [50, 150] (already drawn by the DAG generators), and execution times
/// synthesized so that the granularity g(G, P) of Section 2 hits the sweep's
/// exact target. Heterogeneity is "inconsistent" (a per-(task, processor)
/// factor), matching the arbitrary E : V x P -> R+ of the paper's framework.
#pragma once

#include "common/rng.hpp"
#include "dag/task_graph.hpp"
#include "platform/cost_model.hpp"

namespace caft {

/// Knobs of the paper's cost distributions.
struct CostSynthesisParams {
  double granularity = 1.0;      ///< exact g(G, P) target
  double min_unit_delay = 0.5;   ///< link delay lower bound (paper: 0.5)
  double max_unit_delay = 1.0;   ///< link delay upper bound (paper: 1.0)
  double base_spread = 0.5;      ///< task base cost varies in mean·[1∓spread]
  double heterogeneity = 0.5;    ///< per-(t,P) factor varies in [1∓heterogeneity]
};

/// Draws link delays and execution times, then rescales execution times so
/// g(G, P) equals `params.granularity` exactly. Requires at least one edge
/// with positive volume (otherwise granularity is undefined).
[[nodiscard]] CostModel synthesize_costs(const TaskGraph& g,
                                         const Platform& platform,
                                         const CostSynthesisParams& params,
                                         Rng& rng);

/// Homogeneous costs — every task costs `exec`, every link delay is `delay`.
/// Useful for tests with hand-computable schedules.
[[nodiscard]] CostModel uniform_costs(const TaskGraph& g,
                                      const Platform& platform, double exec,
                                      double delay);

}  // namespace caft
