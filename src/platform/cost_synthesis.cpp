#include "platform/cost_synthesis.hpp"

#include <cmath>

namespace caft {

CostModel synthesize_costs(const TaskGraph& g, const Platform& platform,
                           const CostSynthesisParams& params, Rng& rng) {
  CAFT_CHECK_MSG(params.granularity > 0.0, "granularity target must be positive");
  CAFT_CHECK(params.min_unit_delay >= 0.0);
  CAFT_CHECK(params.min_unit_delay <= params.max_unit_delay);
  CAFT_CHECK(params.base_spread >= 0.0 && params.base_spread < 1.0);
  CAFT_CHECK(params.heterogeneity >= 0.0 && params.heterogeneity < 1.0);
  CAFT_CHECK_MSG(g.task_count() >= 1, "cannot cost an empty graph");

  CostModel costs(g.task_count(), platform);

  for (std::size_t l = 0; l < platform.topology().link_count(); ++l)
    costs.set_unit_delay(LinkId(static_cast<LinkId::value_type>(l)),
                         rng.uniform(params.min_unit_delay, params.max_unit_delay));

  // Unit-mean draws; the absolute scale is fixed by the rescaling below, so
  // only the *relative* spread across tasks and processors matters here.
  for (const TaskId t : g.all_tasks()) {
    const double base =
        rng.uniform(1.0 - params.base_spread, 1.0 + params.base_spread);
    for (const ProcId p : platform.all_procs()) {
      const double factor =
          rng.uniform(1.0 - params.heterogeneity, 1.0 + params.heterogeneity);
      costs.set_exec(t, p, base * factor);
    }
  }

  const double g_now = costs.granularity(g);
  CAFT_CHECK_MSG(std::isfinite(g_now) && g_now > 0.0,
                 "granularity targeting needs at least one weighted edge");
  costs.scale_exec(params.granularity / g_now);
  return costs;
}

CostModel uniform_costs(const TaskGraph& g, const Platform& platform,
                        double exec, double delay) {
  CAFT_CHECK(exec >= 0.0 && delay >= 0.0);
  CostModel costs(g.task_count(), platform);
  for (const TaskId t : g.all_tasks()) costs.set_exec_all(t, exec);
  costs.set_all_unit_delays(delay);
  return costs;
}

}  // namespace caft
