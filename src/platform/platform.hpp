/// \file platform.hpp
/// The target parallel heterogeneous system of the paper's Section 2: a
/// finite processor set P = {P_1, ..., P_m} connected by a dedicated network.
/// The Platform couples the processor count with an interconnect Topology;
/// per-(task, processor) execution times and per-link delays live in the
/// CostModel so several cost scenarios can share one physical platform.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "platform/topology.hpp"

namespace caft {

/// Processor set plus interconnect.
class Platform {
 public:
  /// Fully-connected platform of `m` processors (the paper's setting).
  explicit Platform(std::size_t m) : topology_(Topology::clique(m)) {}
  /// Platform over an explicit (possibly sparse) topology.
  explicit Platform(Topology topology) : topology_(std::move(topology)) {}

  [[nodiscard]] std::size_t proc_count() const { return topology_.proc_count(); }
  [[nodiscard]] const Topology& topology() const { return topology_; }

  /// All processor ids, 0..m-1.
  [[nodiscard]] std::vector<ProcId> all_procs() const {
    std::vector<ProcId> procs(proc_count());
    for (std::size_t i = 0; i < procs.size(); ++i)
      procs[i] = ProcId(static_cast<ProcId::value_type>(i));
    return procs;
  }

 private:
  Topology topology_;
};

}  // namespace caft
