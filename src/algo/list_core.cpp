#include "algo/list_core.hpp"

#include <algorithm>
#include <limits>

#include "comm/macro_dataflow.hpp"
#include "comm/one_port.hpp"
#include "common/check.hpp"

namespace caft {

SupportMap::SupportMap(std::size_t task_count, std::size_t primaries)
    : primaries_(primaries), masks_(task_count * primaries, 0) {}

SupportMask SupportMap::get(TaskId t, ReplicaIndex r) const {
  CAFT_CHECK_MSG(r < primaries_, "support masks track primary replicas only");
  CAFT_CHECK(t.index() * primaries_ + r < masks_.size());
  return masks_[t.index() * primaries_ + r];
}

void SupportMap::set(TaskId t, ReplicaIndex r, SupportMask mask) {
  CAFT_CHECK_MSG(r < primaries_, "support masks track primary replicas only");
  CAFT_CHECK(t.index() * primaries_ + r < masks_.size());
  masks_[t.index() * primaries_ + r] = mask;
}

Placer::Placer(const TaskGraph& graph, const CostModel& costs,
               CommEngine& engine, Schedule& schedule)
    : graph_(&graph), costs_(&costs), engine_(&engine), schedule_(&schedule) {
  CAFT_CHECK_MSG(schedule.platform().proc_count() <= 64,
                 "support masks cap platforms at 64 processors");
}

TaskTimes Placer::evaluate(TaskId t, ProcId p,
                           std::span<const IncomingPlan> plans,
                           std::vector<double>* first_arrivals) {
  const EngineSnapshot snap = engine_->snapshot();
  const TaskTimes times =
      place(t, p, plans, /*commit_mode=*/false, ReplicaRef{t, 0}, first_arrivals);
  engine_->restore(snap);
  return times;
}

TaskTimes Placer::tentative(TaskId t, ProcId p,
                            std::span<const IncomingPlan> plans,
                            std::vector<double>* first_arrivals) {
  return place(t, p, plans, /*commit_mode=*/false, ReplicaRef{t, 0},
               first_arrivals);
}

TaskTimes Placer::commit(TaskId t, ReplicaIndex r, ProcId p,
                         std::span<const IncomingPlan> plans) {
  return place(t, p, plans, /*commit_mode=*/true, ReplicaRef{t, r}, nullptr);
}

TaskTimes Placer::commit_duplicate(TaskId t, ProcId p,
                                   std::span<const IncomingPlan> plans,
                                   ReplicaIndex& out_replica) {
  // Reserve the duplicate's slot first so its incoming communications can
  // name it; the final times are patched in below.
  out_replica = schedule_->add_duplicate(t, ReplicaAssignment{p, 0.0, 0.0});
  return place(t, p, plans, /*commit_mode=*/true, ReplicaRef{t, out_replica},
               nullptr);
}

std::vector<IncomingPlan> Placer::receive_all_plans(
    TaskId t, ProcId p, const SupportMap* supports) const {
  std::vector<IncomingPlan> plans;
  plans.reserve(graph_->in_degree(t));
  for (const EdgeIndex e : graph_->in_edges(t)) {
    const Edge& edge = graph_->edge(e);
    const TaskId pred = edge.src;
    IncomingPlan plan;
    plan.edge = e;
    plan.volume = edge.volume;

    // Co-located replica rule: a copy of the predecessor living on `p`
    // serves alone when relying on it is safe (its completion needs nothing
    // beyond `p` being alive).
    const ReplicaIndex total =
        static_cast<ReplicaIndex>(schedule_->total_replicas(pred));
    ReplicaIndex colocated = static_cast<ReplicaIndex>(total);
    for (ReplicaIndex r = 0; r < total; ++r) {
      const ReplicaAssignment& a = schedule_->replica(pred, r);
      if (a.proc != p) continue;
      const bool safe =
          supports == nullptr || r >= schedule_->primary_count() ||
          (supports->get(pred, r) & ~support_of(p)) == 0;
      if (!safe) continue;
      if (colocated == total ||
          a.finish < schedule_->replica(pred, colocated).finish)
        colocated = r;
    }
    if (colocated != total) {
      const ReplicaAssignment& a = schedule_->replica(pred, colocated);
      plan.senders.push_back(
          SenderOption{ReplicaRef{pred, colocated}, a.proc, a.finish});
    } else {
      for (ReplicaIndex r = 0;
           r < static_cast<ReplicaIndex>(schedule_->primary_count()); ++r) {
        const ReplicaAssignment& a = schedule_->replica(pred, r);
        plan.senders.push_back(SenderOption{ReplicaRef{pred, r}, a.proc, a.finish});
      }
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

TaskTimes Placer::place(TaskId t, ProcId p, std::span<const IncomingPlan> plans,
                        bool commit_mode, ReplicaRef as_replica,
                        std::vector<double>* first_arrivals) {
  struct PendingComm {
    std::size_t plan_index;
    const SenderOption* sender;
    double sort_key;
  };
  std::vector<PendingComm> pending;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    CAFT_CHECK_MSG(!plans[i].senders.empty(),
                   "every in-edge needs at least one sender");
    for (const SenderOption& s : plans[i].senders)
      pending.push_back(PendingComm{
          i, &s,
          engine_->peek_link_finish(s.proc, p, plans[i].volume, s.data_ready)});
  }
  // Equation (6)'s protocol: receive in non-decreasing order of the link
  // finish each message would have on its own. Ties break deterministically.
  std::sort(pending.begin(), pending.end(),
            [](const PendingComm& a, const PendingComm& b) {
              if (a.sort_key != b.sort_key) return a.sort_key < b.sort_key;
              if (a.sender->ref.task != b.sender->ref.task)
                return a.sender->ref.task < b.sender->ref.task;
              return a.sender->ref.replica < b.sender->ref.replica;
            });

  std::vector<double> first_arrival(
      plans.size(), std::numeric_limits<double>::infinity());
  for (const PendingComm& pc : pending) {
    const IncomingPlan& plan = plans[pc.plan_index];
    const CommTimes times =
        engine_->post_comm(pc.sender->proc, p, plan.volume, pc.sender->data_ready);
    first_arrival[pc.plan_index] =
        std::min(first_arrival[pc.plan_index], times.arrival);
    if (commit_mode) {
      CommAssignment comm;
      comm.edge = plan.edge;
      comm.from = pc.sender->ref;
      comm.to = as_replica;
      comm.src_proc = pc.sender->proc;
      comm.dst_proc = p;
      comm.volume = plan.volume;
      comm.times = times;
      schedule_->add_comm(std::move(comm));
    }
  }

  double earliest_input = 0.0;
  for (const double a : first_arrival) earliest_input = std::max(earliest_input, a);
  if (first_arrivals != nullptr) *first_arrivals = first_arrival;

  const TaskTimes times =
      engine_->post_exec(p, earliest_input, costs_->exec(t, p));
  if (commit_mode) {
    if (as_replica.replica < schedule_->primary_count()) {
      schedule_->set_replica(t, as_replica.replica,
                             ReplicaAssignment{p, times.start, times.finish});
    } else {
      // Duplicate slot was reserved up front; overwrite its times now.
      // Schedule exposes no mutable access, so rebuild via const_cast-free
      // path: duplicates are append-only, so we patch through a dedicated
      // setter below.
      schedule_->patch_duplicate(t, as_replica.replica,
                                 ReplicaAssignment{p, times.start, times.finish});
    }
  }
  return times;
}

namespace {

/// Strict weak order "a is better than b": smaller key, ties to the lower
/// processor id (processor ids are distinct, so this is a total order).
bool candidate_better(const BestKSelector::Candidate& a,
                      const BestKSelector::Candidate& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.proc < b.proc;
}

}  // namespace

BestKSelector::BestKSelector(std::size_t k) : k_(k) {
  CAFT_CHECK_MSG(k > 0, "selector needs k > 0");
  heap_.reserve(k);
}

void BestKSelector::offer(double key, ProcId proc) {
  const Candidate candidate{key, proc};
  if (heap_.size() < k_) {
    heap_.push_back(candidate);
    std::push_heap(heap_.begin(), heap_.end(), candidate_better);
    return;
  }
  if (!candidate_better(candidate, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), candidate_better);
  heap_.back() = candidate;
  std::push_heap(heap_.begin(), heap_.end(), candidate_better);
}

std::vector<BestKSelector::Candidate> BestKSelector::take_sorted() {
  // sort_heap sorts ascending under the comparator: best candidate first,
  // exactly the order the full sort emitted.
  std::sort_heap(heap_.begin(), heap_.end(), candidate_better);
  std::vector<Candidate> sorted = std::move(heap_);
  heap_ = {};
  heap_.reserve(k_);
  return sorted;
}

std::unique_ptr<CommEngine> make_engine(CommModelKind model,
                                        const Platform& platform,
                                        const CostModel& costs) {
  switch (model) {
    case CommModelKind::kMacroDataflow:
      return std::make_unique<MacroDataflowEngine>(platform, costs);
    case CommModelKind::kOnePort:
      return std::make_unique<OnePortEngine>(platform, costs);
  }
  CAFT_CHECK_MSG(false, "unknown communication model");
  return nullptr;  // unreachable
}

}  // namespace caft
