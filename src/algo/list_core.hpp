/// \file list_core.hpp
/// Shared list-scheduling machinery: tentative/committed placement of one
/// replica together with its incoming communications, following the one-port
/// accounting of equations (4)-(6).
///
/// A placement is described by one IncomingPlan per in-edge: the list of
/// sender replicas that will actually transmit. The FT fallback used by FTSA
/// and FTBAR lists *all* primaries of the predecessor (the replica may start
/// once the first copy arrives); CAFT's one-to-one mapping lists exactly one.
///
/// Placement protocol (identical for evaluation and commit, so the committed
/// times are exactly the evaluated ones):
///   1. every pending message gets a sort key = its link finish time as if
///      posted alone (Algorithm 5.2 line 3 / equation (6)'s sorted order);
///   2. messages are posted to the engine in key order, serializing on the
///      sender, the link and the receiver;
///   3. the replica's earliest input time is max over in-edges of the *first*
///      arrival for that edge (the paper's Section 6 note: a task runs as
///      soon as one copy of each input has landed; later copies still occupy
///      the receive port);
///   4. the replica executes at max(earliest input, r(P)).
///
/// Support masks: the set of processors whose simultaneous health guarantees
/// the replica completes (given at most ε total failures). Receive-from-all
/// plans contribute nothing beyond the host (any surviving predecessor copy
/// feeds them); one-to-one plans add the chosen sender's own support. CAFT
/// keeps the ε+1 masks of every task pairwise disjoint, which is what makes
/// Proposition 5.2 hold transitively (see DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comm/engine.hpp"
#include "common/ids.hpp"
#include "platform/cost_model.hpp"
#include "sched/schedule.hpp"

namespace caft {

/// Bit p set means processor p's failure can prevent the replica from
/// completing. Platforms are capped at 64 processors.
using SupportMask = std::uint64_t;

/// Mask with only processor `p`.
[[nodiscard]] constexpr SupportMask support_of(ProcId p) {
  return SupportMask{1} << p.index();
}

/// Per-replica support masks of the schedule under construction.
class SupportMap {
 public:
  explicit SupportMap(std::size_t task_count, std::size_t primaries);

  [[nodiscard]] SupportMask get(TaskId t, ReplicaIndex r) const;
  void set(TaskId t, ReplicaIndex r, SupportMask mask);

 private:
  std::size_t primaries_;
  std::vector<SupportMask> masks_;
};

/// One sender replica that will transmit over a given edge.
struct SenderOption {
  ReplicaRef ref;
  ProcId proc;
  double data_ready = 0.0;  ///< the sender replica's finish time
};

/// All senders feeding one in-edge of the replica being placed.
struct IncomingPlan {
  EdgeIndex edge = 0;
  double volume = 0.0;
  std::vector<SenderOption> senders;
};

/// Placement executor bound to one (graph, costs, engine, schedule) run.
class Placer {
 public:
  Placer(const TaskGraph& graph, const CostModel& costs, CommEngine& engine,
         Schedule& schedule);

  [[nodiscard]] const TaskGraph& graph() const { return *graph_; }
  [[nodiscard]] const CostModel& costs() const { return *costs_; }
  [[nodiscard]] CommEngine& engine() const { return *engine_; }
  [[nodiscard]] Schedule& schedule() const { return *schedule_; }
  [[nodiscard]] std::size_t proc_count() const {
    return schedule_->platform().proc_count();
  }

  /// Simulates placing a replica of `t` on `p`: posts the plan's messages,
  /// reads start/finish, then rolls the engine back. O(m + links) per call.
  /// When `first_arrivals` is non-null it receives, per plan, the earliest
  /// arrival among that plan's senders (FTBAR's critical-parent detection).
  [[nodiscard]] TaskTimes evaluate(TaskId t, ProcId p,
                                   std::span<const IncomingPlan> plans,
                                   std::vector<double>* first_arrivals = nullptr);

  /// Like evaluate() but leaves the engine mutated and records nothing in
  /// the schedule — building block for multi-step what-if analyses (e.g.
  /// "duplicate the parent, then place the child"). Callers snapshot and
  /// restore the engine themselves.
  TaskTimes tentative(TaskId t, ProcId p, std::span<const IncomingPlan> plans,
                      std::vector<double>* first_arrivals = nullptr);

  /// Commits primary replica `r` of `t` on `p`: posts messages for real,
  /// records them and the replica into the schedule.
  TaskTimes commit(TaskId t, ReplicaIndex r, ProcId p,
                   std::span<const IncomingPlan> plans);

  /// Commits a *duplicate* of `t` on `p` (FTBAR's Minimize-Start-Time);
  /// returns the duplicate's replica index through `out_replica`.
  TaskTimes commit_duplicate(TaskId t, ProcId p,
                             std::span<const IncomingPlan> plans,
                             ReplicaIndex& out_replica);

  /// Builds the receive-from-all plan of `t` targeting processor `p`: for
  /// each in-edge, all committed primaries of the predecessor — except that
  /// a co-located replica serves alone (the paper's Section 6 note) when it
  /// is safe to rely on it. Safety: without `supports` every replica is
  /// assumed to complete whenever its processor is alive (true for FTSA and
  /// FTBAR); with `supports`, the co-located replica serves alone only if
  /// its support mask is contained in {p}.
  [[nodiscard]] std::vector<IncomingPlan> receive_all_plans(
      TaskId t, ProcId p, const SupportMap* supports = nullptr) const;

 private:
  TaskTimes place(TaskId t, ProcId p, std::span<const IncomingPlan> plans,
                  bool commit_mode, ReplicaRef as_replica,
                  std::vector<double>* first_arrivals);

  const TaskGraph* graph_;
  const CostModel* costs_;
  CommEngine* engine_;
  Schedule* schedule_;
};

/// Streaming selector of the k best (smallest-key) processor candidates —
/// the heap-based replacement for the schedulers' "evaluate every
/// processor, sort all m candidates, keep ε+1" scan. A bounded max-heap
/// keeps the k best seen so far (worst kept candidate on top), so a sweep
/// over m processors costs O(m log k) instead of O(m log m), and no
/// m-sized candidate array is ever materialized.
///
/// The total order is (key, proc id) ascending — identical to the full
/// sort's tie-break, so the kept set and its emitted order are exactly what
/// the sort-based selection produced.
class BestKSelector {
 public:
  /// `k` > 0: how many candidates to keep.
  explicit BestKSelector(std::size_t k);

  /// Number of candidates currently kept (min(k, offered)).
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Considers one candidate.
  void offer(double key, ProcId proc);

  /// The kept candidates in ascending (key, proc) order, best first.
  /// Leaves the selector empty, ready for the next sweep.
  struct Candidate {
    double key;
    ProcId proc;
  };
  [[nodiscard]] std::vector<Candidate> take_sorted();

 private:
  std::size_t k_;
  std::vector<Candidate> heap_;  ///< max-heap: worst kept candidate on top
};

/// Instantiates the engine matching `model` (both engines share CommEngine).
[[nodiscard]] std::unique_ptr<CommEngine> make_engine(CommModelKind model,
                                                      const Platform& platform,
                                                      const CostModel& costs);

/// Options shared by every scheduler in this library.
struct SchedulerOptions {
  std::size_t eps = 0;  ///< number of failures ε to tolerate
  CommModelKind model = CommModelKind::kOnePort;
};

}  // namespace caft
