#include "algo/caft.hpp"

#include <algorithm>
#include <bit>

#include "algo/caft_internal.hpp"
#include "common/check.hpp"
#include "obs/obs.hpp"

namespace caft {

namespace internal {

CaftMapper::CaftMapper(const TaskGraph& graph, const Platform& platform,
                       const CostModel& costs, const CaftOptions& options,
                       CaftRunStats* stats)
    : graph_(graph),
      options_(&options),
      stats_(stats),
      schedule_(graph, platform, options.base.eps, options.base.model),
      engine_(make_engine(options.base.model, platform, costs)),
      placer_(graph, costs, *engine_, schedule_),
      supports_(graph.task_count(), options.base.eps + 1),
      tracker_(graph, costs) {}

TaskStep CaftMapper::begin_task(TaskId t) const {
  TaskStep step;
  step.task = t;
  return step;
}

bool CaftMapper::build_channel(const TaskStep& step, ProcId p, bool relaxed,
                               bool use_one_to_one, ChannelCandidate& out) {
  if (!relaxed && (support_of(p) & step.locked) != 0) return false;
  if (relaxed && hosts_replica_of(step.task, step.committed, p)) return false;
  out.proc = p;
  out.support = support_of(p);
  out.plans.clear();
  out.receive_all_edges = 0;

  // Support budget: every replica still to be placed after this one needs at
  // least one unlocked processor for its host (a pure receive-from-all
  // channel needs nothing else), so this channel may consume at most
  // |unlocked| - remaining of them. Without the budget a wide channel can
  // lock the whole platform and force an overlapping placement, destroying
  // the pairwise-disjoint support family Proposition 5.2 rests on.
  const SupportMask all_procs =
      proc_count() == 64 ? ~SupportMask{0}
                         : ((SupportMask{1} << proc_count()) - 1);
  const std::size_t unlocked =
      static_cast<std::size_t>(std::popcount(all_procs & ~step.locked));
  const std::size_t remaining = replicas() - step.committed - 1;
  std::size_t budget =
      unlocked > remaining ? unlocked - remaining : 0;  // host included
  if (!relaxed) {
    if (budget == 0) return false;  // later replicas would starve
    budget -= 1;                    // the host itself
  }

  const bool one_to_one = use_one_to_one && !relaxed;
  for (const EdgeIndex e : graph_.in_edges(step.task)) {
    const Edge& edge = graph_.edge(e);
    const TaskId pred = edge.src;
    IncomingPlan plan;
    plan.edge = e;
    plan.volume = edge.volume;

    // On sparse topologies a one-to-one message additionally depends on
    // every router along its fixed route; fold those processors into the
    // sender's effective support (no-op on the paper's clique). kDirect
    // keeps the paper's clique-level rule.
    const auto route_mask = [&](ProcId from) {
      SupportMask mask = 0;
      if (options_->support_mode == CaftSupportMode::kTransitive)
        for (const LinkId l :
             schedule_.platform().topology().route(from, p)) {
          const LinkDef& def = schedule_.platform().topology().link(l);
          mask |= support_of(def.from) | support_of(def.to);
        }
      return mask;
    };
    const auto support_cost = [&](SupportMask sender_support) {
      return static_cast<std::size_t>(
          std::popcount(sender_support & ~(out.support | step.locked)));
    };

    if (!relaxed) {
      // (a) A co-located predecessor replica with an unlocked support serves
      // alone — the intra-processor rule (Section 6 note), applied even when
      // one-to-one is disabled (FTSA uses the same rule). Its support may
      // overlap the channel's own accumulated support freely: sharing
      // *within* a channel is harmless, only sharing across channels breaks
      // Proposition 5.2.
      auto colocated = static_cast<ReplicaIndex>(replicas());
      for (ReplicaIndex r = 0; r < replicas(); ++r) {
        const ReplicaAssignment& a = schedule_.replica(pred, r);
        if (a.proc != p) continue;
        if ((supports_.get(pred, r) & step.locked) != 0) continue;
        if (support_cost(supports_.get(pred, r)) > budget) continue;
        if (colocated == replicas() ||
            a.finish < schedule_.replica(pred, colocated).finish)
          colocated = r;
      }
      if (colocated != static_cast<ReplicaIndex>(replicas())) {
        const ReplicaAssignment& a = schedule_.replica(pred, colocated);
        plan.senders.push_back(
            SenderOption{ReplicaRef{pred, colocated}, a.proc, a.finish});
        budget -= support_cost(supports_.get(pred, colocated));
        out.support |= supports_.get(pred, colocated);
        out.plans.push_back(std::move(plan));
        continue;
      }
    }

    if (one_to_one) {
      // (b) The eligible replica whose communication would finish first on
      // the links (Algorithm 5.2 line 3's sort key). Eligibility = support
      // disjoint from the locked set P̄, so a sender consumed by an earlier
      // channel — or anything its completion depends on — never serves two
      // channels (the paper's mutual-exclusion argument).
      // Prefer the *cheapest* eligible sender (fewest processors added to
      // the channel's support), then the earliest link finish (Algorithm
      // 5.2 line 3's key). Narrow channels preserve the budget, so more
      // edges across the whole task can stay one-to-one.
      auto best_head = static_cast<ReplicaIndex>(replicas());
      double best_key = std::numeric_limits<double>::infinity();
      std::size_t best_cost = 0;
      SupportMask best_support = 0;
      for (ReplicaIndex r = 0; r < replicas(); ++r) {
        const ReplicaAssignment& a = schedule_.replica(pred, r);
        const SupportMask effective =
            supports_.get(pred, r) | route_mask(a.proc);
        if ((effective & step.locked) != 0) continue;
        const std::size_t cost = support_cost(effective);
        if (cost > budget) continue;
        const double key =
            engine_->peek_link_finish(a.proc, p, edge.volume, a.finish);
        const bool better =
            best_head == static_cast<ReplicaIndex>(replicas()) ||
            cost < best_cost || (cost == best_cost && key < best_key) ||
            (cost == best_cost && key == best_key && r < best_head);
        if (better) {
          best_cost = cost;
          best_key = key;
          best_head = r;
          best_support = effective;
        }
      }
      if (best_head != static_cast<ReplicaIndex>(replicas())) {
        const ReplicaAssignment& a = schedule_.replica(pred, best_head);
        plan.senders.push_back(
            SenderOption{ReplicaRef{pred, best_head}, a.proc, a.finish});
        budget -= best_cost;
        out.support |= best_support;
        out.plans.push_back(std::move(plan));
        continue;
      }
    }

    // (c) No usable single sender: this edge receives from every replica
    // ("greedily add extra communications"). Any surviving predecessor copy
    // then feeds the replica, so the edge adds no support requirement.
    for (ReplicaIndex r = 0; r < replicas(); ++r) {
      const ReplicaAssignment& a = schedule_.replica(pred, r);
      plan.senders.push_back(SenderOption{ReplicaRef{pred, r}, a.proc, a.finish});
    }
    ++out.receive_all_edges;
    out.plans.push_back(std::move(plan));
  }
  return true;
}

namespace {

/// Total senders across a candidate's plans (message-count proxy).
std::size_t sender_count(const ChannelCandidate& candidate) {
  std::size_t senders = 0;
  for (const IncomingPlan& plan : candidate.plans) senders += plan.senders.size();
  return senders;
}

}  // namespace

ChannelCandidate CaftMapper::best_candidate(const TaskStep& step,
                                            bool& relaxed_out) {
  ChannelCandidate best;
  ChannelCandidate candidate;
  // Preferred pass honours the lock; if every processor is locked (wide
  // transitive supports), fall back to the space-exclusion minimum.
  //
  // Each processor is evaluated adaptively: with one-to-one channels and
  // with the plain receive-from-all plan. One-to-one saves messages but
  // binds the replica to one sender per edge; under heavy replication on a
  // small platform (ε = 3 on m = 10) waiting for the designated copy can
  // cost more than the port traffic it avoids, so the earlier-finishing
  // variant wins. The sender count breaks ties toward fewer messages, which
  // keeps pure one-to-one channels whenever they are latency-neutral.
  // Receive-from-all must beat the best one-to-one candidate by this factor
  // to displace it: mildly slower one-to-one channels keep their message
  // savings (which also relieves the ports for later tasks); only clearly
  // pathological ones (a locked-in sender far away) are replaced.
  constexpr double kReceiveAllMargin = 0.10;

  for (const bool relaxed : {false, true}) {
    bool found = false;
    bool best_is_one_to_one = false;
    std::size_t best_senders = 0;
    for (const bool use_one_to_one : {options_->one_to_one, false}) {
      for (std::size_t pi = 0; pi < proc_count(); ++pi) {
        const auto p = ProcId(static_cast<ProcId::value_type>(pi));
        if (!build_channel(step, p, relaxed, use_one_to_one, candidate))
          continue;
        candidate.times = placer_.evaluate(step.task, p, candidate.plans);
        const std::size_t senders = sender_count(candidate);
        bool better;
        if (!found) {
          better = true;
        } else if (use_one_to_one == best_is_one_to_one) {
          better = candidate.times.finish < best.times.finish ||
                   (candidate.times.finish == best.times.finish &&
                    (senders < best_senders ||
                     (senders == best_senders && p < best.proc)));
        } else {
          // Crossing from the one-to-one pass into the receive-all pass:
          // demand a clear win.
          better = candidate.times.finish <
                   best.times.finish * (1.0 - kReceiveAllMargin);
        }
        if (better) {
          best = candidate;
          best_senders = senders;
          best_is_one_to_one = use_one_to_one;
          found = true;
        }
      }
      if (!options_->one_to_one) break;  // both passes identical
    }
    if (found) {
      relaxed_out = relaxed;
      return best;
    }
  }
  CAFT_CHECK_MSG(false, "no processor available for a replica");
  return best;  // unreachable
}

double CaftMapper::peek_next_finish(const TaskStep& step) {
  bool relaxed = false;
  return best_candidate(step, relaxed).times.finish;
}

void CaftMapper::advance(TaskStep& step) {
  CAFT_CHECK_MSG(!done(step), "task already fully replicated");
  bool relaxed = false;
  const ChannelCandidate best = best_candidate(step, relaxed);
  commit_candidate(step, best, relaxed);
}

void CaftMapper::commit_candidate(TaskStep& step,
                                  const ChannelCandidate& candidate,
                                  bool relaxed) {
  const auto r = static_cast<ReplicaIndex>(step.committed);
  const TaskTimes times =
      placer_.commit(step.task, r, candidate.proc, candidate.plans);
  // In kDirect mode a replica's recorded support is just its host, so
  // candidate.support accumulates exactly {host} ∪ {sender processors} —
  // the paper's equation (7). In kTransitive mode the full dependency
  // closure is recorded and locked (see CaftSupportMode).
  supports_.set(step.task, r,
                options_->support_mode == CaftSupportMode::kDirect
                    ? support_of(candidate.proc)
                    : candidate.support);
  step.locked |= candidate.support;  // equation (7)
  ++step.committed;
  step.first_finish = std::min(step.first_finish, times.finish);
  if (stats_ != nullptr) {
    if (candidate.receive_all_edges == 0 && options_->one_to_one && !relaxed)
      ++stats_->one_to_one_commits;
    else
      ++stats_->fallback_commits;
    stats_->per_edge_fallbacks += candidate.receive_all_edges;
    if (relaxed) ++stats_->lock_exhaustions;
  }
}

void CaftMapper::finish_task(const TaskStep& step) {
  CAFT_CHECK(done(step));
  tracker_.mark_scheduled(step.task, step.first_finish);
}

Schedule CaftMapper::take_schedule() {
  CAFT_CHECK(schedule_.complete());
  return std::move(schedule_);
}

bool CaftMapper::hosts_replica_of(TaskId t, std::size_t committed,
                                  ProcId p) const {
  for (ReplicaIndex r = 0; r < committed; ++r)
    if (schedule_.replica(t, r).proc == p) return true;
  return false;
}

}  // namespace internal

Schedule caft_schedule(const TaskGraph& graph, const Platform& platform,
                       const CostModel& costs, const CaftOptions& options,
                       CaftRunStats* stats) {
  CAFT_CHECK_MSG(options.base.eps + 1 <= platform.proc_count(),
                 "CAFT needs at least eps+1 processors");
  if (stats != nullptr) *stats = CaftRunStats{};
  obs::Registry& registry = obs::Registry::global();
  // With metrics on, collect run stats even when the caller passed none —
  // the replication counters below come from them. Collection is counter
  // increments only; the schedule is identical either way.
  CaftRunStats enabled_stats;
  if (stats == nullptr && registry.enabled()) stats = &enabled_stats;
  // Phase timings: the priority pass is the mapper's construction (the
  // b-level tracker), placement + replication is the mapping loop.
  obs::ScopedTimer priorities_timer(registry, "caft.priorities");
  internal::CaftMapper mapper(graph, platform, costs, options, stats);
  priorities_timer.stop();
  obs::ScopedTimer placement_timer(registry, "caft.placement");
  while (mapper.tracker().has_free_task()) {
    const TaskId t = mapper.tracker().pop_highest();
    internal::TaskStep step = mapper.begin_task(t);
    while (!mapper.done(step)) mapper.advance(step);
    mapper.finish_task(step);
  }
  placement_timer.stop();
  if (stats != nullptr && registry.enabled()) {
    registry.counter("caft.replication.one_to_one_commits")
        .add(stats->one_to_one_commits);
    registry.counter("caft.replication.fallback_commits")
        .add(stats->fallback_commits);
    registry.counter("caft.replication.per_edge_fallbacks")
        .add(stats->per_edge_fallbacks);
    registry.counter("caft.replication.lock_exhaustions")
        .add(stats->lock_exhaustions);
  }
  return mapper.take_schedule();
}

}  // namespace caft
