#include "algo/heft.hpp"

#include "algo/ftsa.hpp"

namespace caft {

Schedule heft_schedule(const TaskGraph& graph, const Platform& platform,
                       const CostModel& costs, CommModelKind model) {
  // With ε = 0 FTSA degenerates to exactly HEFT-style EFT scheduling: one
  // replica per task on the earliest-finishing processor, one message per
  // DAG edge. Sharing the implementation keeps the fault-free baseline and
  // the fault-tolerant schedulers numerically consistent.
  return ftsa_schedule(graph, platform, costs,
                       SchedulerOptions{/*eps=*/0, model});
}

}  // namespace caft
