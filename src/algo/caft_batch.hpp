/// \file caft_batch.hpp
/// CAFT-B — the batched decision procedure the paper sketches as future work
/// (Section 7): "instead of considering a single task (the one with highest
/// priority) and assigning all its replicas to the currently best available
/// resources, why not consider say, 10 ready tasks, and assign all their
/// replicas in the same decision making procedure?"
///
/// Our interpretation (documented in DESIGN.md): a window of up to
/// `batch_size` ready tasks is opened by priority; the replicas of all tasks
/// in the window are committed one at a time, always picking the (task,
/// placement) pair with the globally earliest finish time across the window.
/// Each task keeps its own CAFT state (locked set, B̄ heads, θ budget), so
/// the fault-tolerance construction is untouched — only the commit order
/// interleaves, which lets a lightly-loaded processor serve the batch's most
/// urgent replica instead of being monopolised by the first task popped.
/// batch_size = 1 is exactly CAFT.
#pragma once

#include "algo/caft.hpp"

namespace caft {

/// Tuning knobs of the batched variant.
struct CaftBatchOptions {
  CaftOptions caft;
  std::size_t batch_size = 10;  ///< the paper's "say, 10 ready tasks"
};

/// Runs CAFT-B; same guarantees as caft_schedule.
[[nodiscard]] Schedule caft_batch_schedule(const TaskGraph& graph,
                                           const Platform& platform,
                                           const CostModel& costs,
                                           const CaftBatchOptions& options,
                                           CaftRunStats* stats = nullptr);

}  // namespace caft
