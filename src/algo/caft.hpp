/// \file caft.hpp
/// CAFT — Contention-Aware Fault Tolerant scheduling (the paper's Section 5,
/// Algorithms 5.1 and 5.2).
///
/// Each task t is mapped on ε+1 processors. Whenever the replicas of t's
/// predecessors offer enough *singleton processors* (processors hosting
/// exactly one replica of one predecessor), the one-to-one mapping procedure
/// builds per-replica communication channels: every chosen predecessor
/// replica transmits to exactly one replica of t, the processors involved
/// are locked (equation (7)) so no processor serves two channels, and the
/// used heads are consumed. When the structure runs out (θ < ε+1, a locked
/// head, or an exhausted candidate set) the remaining replicas fall back to
/// FTSA-style receive-from-all placement — the paper's "greedily add extra
/// communications to guarantee failure tolerance".
///
/// Support masks make Proposition 5.2 robust transitively: a channel's mask
/// is its host plus the masks of its one-to-one senders, head eligibility
/// requires a mask disjoint from the locked set, and locking covers the full
/// committed mask. The ε+1 masks of every task are therefore pairwise
/// disjoint, so ε arbitrary failures always leave one replica whose entire
/// supply chain is alive (see DESIGN.md, "Key modelling decisions").
#pragma once

#include "algo/list_core.hpp"
#include "dag/task_graph.hpp"
#include "platform/cost_model.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace caft {

/// Run counters for EXPERIMENTS.md's mechanism analyses.
struct CaftRunStats {
  std::size_t one_to_one_commits = 0;  ///< replicas placed by Algorithm 5.2
  std::size_t fallback_commits = 0;    ///< replicas placed receive-from-all
  std::size_t per_edge_fallbacks = 0;  ///< edges inside a channel that had to
                                       ///< receive from all replicas
  std::size_t lock_exhaustions = 0;    ///< placements that had to relax the
                                       ///< locked-processor constraint
};

/// How far the mutual-exclusion locking of equation (7) reaches.
enum class CaftSupportMode {
  /// The paper's rule: a committed channel locks its host and the
  /// processors of its chosen senders. This reproduces the published
  /// behaviour (message counts near e(ε+1), the latency gaps of Figures
  /// 1-6), but inherits the paper's blind spot: a replica chosen as a
  /// sender may itself depend on a processor another channel also depends
  /// on, and a single failure can then break two channels at once. Such
  /// transitive entanglement is rare (the ablation bench quantifies it)
  /// and the paper's own experiments never hit it.
  kDirect,
  /// Strengthened rule (DESIGN.md): every replica carries the full set of
  /// processors its completion depends on; eligibility and locking use
  /// those masks, and a per-channel budget keeps one unlocked host per
  /// remaining replica. The resulting ε+1 supports are pairwise disjoint,
  /// which makes Proposition 5.2 a theorem — at the cost of more
  /// receive-from-all edges (and latency closer to FTSA) for large ε on
  /// small platforms.
  kTransitive,
};

/// Tuning knobs specific to CAFT.
struct CaftOptions {
  SchedulerOptions base;
  /// Disables Algorithm 5.2 entirely (every replica falls back to
  /// receive-from-all) — the ablation bench's "CAFT minus one-to-one".
  bool one_to_one = true;
  /// See CaftSupportMode; defaults to the provably resistant rule (the
  /// adaptive channel construction keeps it ahead of FTSA and FTBAR on both
  /// latency and messages at every ε — see EXPERIMENTS.md).
  CaftSupportMode support_mode = CaftSupportMode::kTransitive;
};

/// Runs CAFT; the result has ε+1 replicas per task and passes the validator
/// as well as the exhaustive ε-resistance check. `stats`, when non-null,
/// receives mechanism counters.
[[nodiscard]] Schedule caft_schedule(const TaskGraph& graph,
                                     const Platform& platform,
                                     const CostModel& costs,
                                     const CaftOptions& options,
                                     CaftRunStats* stats = nullptr);

}  // namespace caft
