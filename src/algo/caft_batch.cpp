#include "algo/caft_batch.hpp"

#include <limits>
#include <vector>

#include "algo/caft_internal.hpp"
#include "common/check.hpp"

namespace caft {

Schedule caft_batch_schedule(const TaskGraph& graph, const Platform& platform,
                             const CostModel& costs,
                             const CaftBatchOptions& options,
                             CaftRunStats* stats) {
  CAFT_CHECK_MSG(options.batch_size >= 1, "batch size must be at least 1");
  CAFT_CHECK_MSG(options.caft.base.eps + 1 <= platform.proc_count(),
                 "CAFT-B needs at least eps+1 processors");
  if (stats != nullptr) *stats = CaftRunStats{};
  internal::CaftMapper mapper(graph, platform, costs, options.caft, stats);

  while (mapper.tracker().has_free_task()) {
    // Open a window of up to batch_size ready tasks, by priority.
    std::vector<internal::TaskStep> window;
    while (window.size() < options.batch_size &&
           mapper.tracker().has_free_task())
      window.push_back(mapper.begin_task(mapper.tracker().pop_highest()));

    // Commit one replica at a time: always the window member whose next
    // placement finishes earliest (global EFT across the batch).
    std::size_t open = window.size();
    while (open > 0) {
      std::size_t winner = window.size();
      double winner_finish = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < window.size(); ++i) {
        if (mapper.done(window[i])) continue;
        const double finish = mapper.peek_next_finish(window[i]);
        if (finish < winner_finish) {
          winner_finish = finish;
          winner = i;
        }
      }
      CAFT_CHECK(winner < window.size());
      mapper.advance(window[winner]);
      if (mapper.done(window[winner])) {
        mapper.finish_task(window[winner]);
        --open;
      }
    }
    // Tasks released by this window become eligible for the next one.
  }
  return mapper.take_schedule();
}

}  // namespace caft
