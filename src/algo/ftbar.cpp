#include "algo/ftbar.hpp"

#include <algorithm>
#include <limits>

#include "algo/priorities.hpp"
#include "common/check.hpp"
#include "dag/analysis.hpp"
#include "obs/obs.hpp"

namespace caft {

namespace {

/// Attempts Minimize-Start-Time before committing replica `r` of `t` on `p`:
/// if duplicating the critical parent onto `p` strictly reduces t's start
/// time, commit the duplicate first and reroute the critical edge to it.
/// Returns the replica's committed times either way.
TaskTimes commit_with_mst(Placer& placer, const TaskGraph& graph, TaskId t,
                          ReplicaIndex r, ProcId p, bool enable_mst) {
  auto plans = placer.receive_all_plans(t, p);
  std::vector<double> arrivals;
  const TaskTimes base = placer.evaluate(t, p, plans, &arrivals);

  if (!enable_mst || plans.empty()) return placer.commit(t, r, p, plans);

  // Critical parent: the in-edge whose first arrival binds the start time.
  // Duplication can only help when that arrival is an inter-processor
  // transfer and actually dominates the processor-ready constraint.
  std::size_t critical = plans.size();
  double critical_arrival = 0.0;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (arrivals[i] > critical_arrival) {
      critical_arrival = arrivals[i];
      critical = i;
    }
  }
  const bool inter_proc =
      critical < plans.size() && plans[critical].senders.size() >= 1 &&
      !std::any_of(plans[critical].senders.begin(),
                   plans[critical].senders.end(),
                   [&](const SenderOption& s) { return s.proc == p; });
  if (critical == plans.size() || !inter_proc ||
      critical_arrival <= base.start - 1e-12) {
    return placer.commit(t, r, p, plans);
  }

  const TaskId parent = graph.edge(plans[critical].edge).src;
  // Skip when the parent already runs on p (the plan would have used it).
  const std::size_t parent_total = placer.schedule().total_replicas(parent);
  for (ReplicaIndex pr = 0; pr < parent_total; ++pr)
    if (placer.schedule().replica(parent, pr).proc == p)
      return placer.commit(t, r, p, plans);

  // What-if: place the duplicate, then the task, on a scratch engine state.
  const auto dup_plans = placer.receive_all_plans(parent, p);
  const EngineSnapshot snap = placer.engine().snapshot();
  const TaskTimes dup_what_if = placer.tentative(parent, p, dup_plans);
  auto rerouted = plans;
  rerouted[critical].senders = {SenderOption{
      ReplicaRef{parent, 0}, p, dup_what_if.finish}};  // ref fixed on commit
  const TaskTimes with_dup = placer.tentative(t, p, rerouted);
  placer.engine().restore(snap);

  if (with_dup.start + 1e-12 >= base.start)
    return placer.commit(t, r, p, plans);

  ReplicaIndex dup_index = 0;
  const TaskTimes dup_times =
      placer.commit_duplicate(parent, p, dup_plans, dup_index);
  rerouted[critical].senders = {
      SenderOption{ReplicaRef{parent, dup_index}, p, dup_times.finish}};
  return placer.commit(t, r, p, rerouted);
}

}  // namespace

Schedule ftbar_schedule(const TaskGraph& graph, const Platform& platform,
                        const CostModel& costs, const FtbarOptions& options) {
  const std::size_t eps = options.base.eps;
  CAFT_CHECK_MSG(eps + 1 <= platform.proc_count(),
                 "FTBAR needs at least eps+1 processors");
  Schedule schedule(graph, platform, eps, options.base.model);
  const auto engine = make_engine(options.base.model, platform, costs);
  Placer placer(graph, costs, *engine, schedule);

  // s(t): the latest-start measure, a static bottom level over average
  // weights (Section 4.1's bottom-up term).
  obs::Registry& registry = obs::Registry::global();
  obs::ScopedTimer priorities_timer(registry, "ftbar.priorities");
  const DagWeights weights = costs.average_weights(graph);
  const std::vector<double> s = bottom_levels(graph, weights);
  priorities_timer.stop();

  // Free-set management (FTBAR scans *all* free tasks each step).
  std::vector<std::size_t> pending(graph.task_count());
  std::vector<TaskId> free_tasks;
  for (const TaskId t : graph.all_tasks()) {
    pending[t.index()] = graph.in_degree(t);
    if (pending[t.index()] == 0) free_tasks.push_back(t);
  }

  const std::size_t m = platform.proc_count();
  double schedule_length = 0.0;  // R^(n-1)
  std::size_t remaining = graph.task_count();

  obs::ScopedTimer placement_timer(registry, "ftbar.placement");
  while (remaining > 0) {
    CAFT_CHECK_MSG(!free_tasks.empty(), "free list exhausted with tasks left");

    // Step i: per free task, the ε+1 processors of minimum pressure.
    TaskId urgent_task = TaskId::invalid();
    double urgent_pressure = -std::numeric_limits<double>::infinity();
    std::vector<ProcId> urgent_procs;
    for (const TaskId t : free_tasks) {
      // Keep only the ε+1 minimum-pressure processors in a bounded heap
      // (ties: lowest id) — same kept set and order as the full sort.
      BestKSelector selector(eps + 1);
      for (std::size_t pi = 0; pi < m; ++pi) {
        const auto p = ProcId(static_cast<ProcId::value_type>(pi));
        const auto plans = placer.receive_all_plans(t, p);
        const TaskTimes times = placer.evaluate(t, p, plans);
        selector.offer(times.start + s[t.index()] - schedule_length, p);
      }
      const auto entries = selector.take_sorted();
      // Step ii: urgency of t = the largest pressure among its kept pairs.
      const double urgency = entries[eps].key;
      if (urgency > urgent_pressure ||
          (urgency == urgent_pressure &&
           (!urgent_task.valid() || t < urgent_task))) {
        urgent_pressure = urgency;
        urgent_task = t;
        urgent_procs.clear();
        for (std::size_t k = 0; k <= eps; ++k)
          urgent_procs.push_back(entries[k].proc);
      }
    }

    // Commit the most urgent task on its ε+1 processors.
    const TaskId t = urgent_task;
    for (ReplicaIndex r = 0; r <= static_cast<ReplicaIndex>(eps); ++r) {
      const TaskTimes times = commit_with_mst(placer, graph, t, r,
                                              urgent_procs[r],
                                              options.minimize_start_time);
      schedule_length = std::max(schedule_length, times.finish);
    }

    free_tasks.erase(std::find(free_tasks.begin(), free_tasks.end(), t));
    --remaining;
    for (const EdgeIndex e : graph.out_edges(t)) {
      const TaskId succ = graph.edge(e).dst;
      if (--pending[succ.index()] == 0) free_tasks.push_back(succ);
    }
  }
  placement_timer.stop();

  CAFT_CHECK(schedule.complete());
  return schedule;
}

}  // namespace caft
