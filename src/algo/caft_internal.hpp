/// \file caft_internal.hpp
/// Implementation machinery shared by the sequential CAFT driver (caft.cpp)
/// and the batched CAFT-B driver (caft_batch.cpp). Not part of the public
/// API — include caft.hpp / caft_batch.hpp instead.
///
/// CaftMapper owns the engine, the schedule under construction, the support
/// masks and the priority tracker, and exposes a per-task placement state
/// machine: begin_task() opens the locked set P̄, advance() commits one
/// replica channel, peek_next_finish() evaluates what advance() would commit
/// — the hook the batched driver uses to pick the globally earliest-
/// finishing replica across a window of ready tasks.
///
/// Channel construction generalizes Algorithm 5.2's singleton-processor
/// heads (see DESIGN.md): an in-edge is single-sourced by the *eligible*
/// predecessor replica (support mask disjoint from the locked set P̄) whose
/// message would finish first on the links — co-located replicas serve for
/// free — and falls back to receive-from-all only when no eligible sender
/// exists ("greedily add extra communications"). Locking the committed
/// channel's full support keeps the ε+1 supports pairwise disjoint, which is
/// what makes Proposition 5.2 hold transitively.
#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "algo/caft.hpp"
#include "algo/list_core.hpp"
#include "algo/priorities.hpp"

namespace caft::internal {

/// Mutable state while placing the ε+1 replicas of one task
/// (Algorithm 5.1 lines 10-20).
struct TaskStep {
  TaskId task;
  SupportMask locked = 0;  ///< the paper's P̄ (equation (7)), as a proc mask
  std::size_t committed = 0;
  double first_finish = std::numeric_limits<double>::infinity();
};

/// One candidate channel: the plan per in-edge plus bookkeeping.
struct ChannelCandidate {
  ProcId proc;
  TaskTimes times;
  std::vector<IncomingPlan> plans;
  SupportMask support = 0;
  std::size_t receive_all_edges = 0;  ///< edges that needed extra comms
};

/// The CAFT placement engine; see file comment.
class CaftMapper {
 public:
  CaftMapper(const TaskGraph& graph, const Platform& platform,
             const CostModel& costs, const CaftOptions& options,
             CaftRunStats* stats);

  [[nodiscard]] PriorityTracker& tracker() { return tracker_; }

  /// Starts mapping `t` (all predecessors must be committed).
  [[nodiscard]] TaskStep begin_task(TaskId t) const;

  /// Finish time of the replica advance() would commit next.
  [[nodiscard]] double peek_next_finish(const TaskStep& step);

  /// Commits the next replica of `step`'s task.
  void advance(TaskStep& step);

  /// True once all ε+1 replicas are committed.
  [[nodiscard]] bool done(const TaskStep& step) const {
    return step.committed == replicas();
  }

  /// Releases the task's successors (call exactly once, after done()).
  void finish_task(const TaskStep& step);

  /// Moves the finished schedule out (call once, at the very end).
  [[nodiscard]] Schedule take_schedule();

 private:
  [[nodiscard]] std::size_t replicas() const { return options_->base.eps + 1; }
  [[nodiscard]] std::size_t proc_count() const {
    return schedule_.platform().proc_count();
  }

  /// Builds the channel targeting `p`; false iff `p` itself is locked.
  /// `relaxed` drops the lock constraints entirely (used when every
  /// processor is locked): all edges receive from every replica.
  /// `use_one_to_one` toggles single-sender selection (case (b)); the
  /// intra-processor rule (case (a)) applies either way.
  bool build_channel(const TaskStep& step, ProcId p, bool relaxed,
                     bool use_one_to_one, ChannelCandidate& out);

  /// Best channel over all processors under the lock; if no processor is
  /// available, retries with the relaxed rule. Always succeeds.
  ChannelCandidate best_candidate(const TaskStep& step, bool& relaxed_out);

  void commit_candidate(TaskStep& step, const ChannelCandidate& candidate,
                        bool relaxed);

  /// True iff an already-placed replica of `t` occupies `p`.
  [[nodiscard]] bool hosts_replica_of(TaskId t, std::size_t committed,
                                      ProcId p) const;

  const TaskGraph& graph_;
  const CaftOptions* options_;
  CaftRunStats* stats_;
  Schedule schedule_;
  std::unique_ptr<CommEngine> engine_;
  Placer placer_;
  SupportMap supports_;
  PriorityTracker tracker_;
};

}  // namespace caft::internal
