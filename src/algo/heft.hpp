/// \file heft.hpp
/// HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al. [27]), the
/// reference fault-free list scheduler. The paper uses it as the fault-free
/// baseline everywhere: "the fault-free version of CAFT reduces to an
/// implementation of HEFT" (Section 6), and the overhead metric divides by
/// the fault-free CAFT latency CAFT*.
///
/// Two deliberate deviations from the 2002 paper, both documented in
/// DESIGN.md: tasks are ordered by tℓ + bℓ (the priority all schedulers in
/// this library share, per Section 5) rather than upward rank alone, and
/// placement appends to the processor's timeline instead of using insertion
/// slots — the one-port engine's free times are monotone clocks, exactly the
/// accounting equations (4)-(6) define.
#pragma once

#include "algo/list_core.hpp"
#include "dag/task_graph.hpp"
#include "platform/cost_model.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace caft {

/// Fault-free EFT list schedule (one replica per task, i.e. ε = 0).
[[nodiscard]] Schedule heft_schedule(const TaskGraph& graph,
                                     const Platform& platform,
                                     const CostModel& costs,
                                     CommModelKind model);

}  // namespace caft
