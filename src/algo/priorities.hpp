/// \file priorities.hpp
/// Task priorities and the free list α of the paper's Algorithm 5.1.
///
/// The priority of a free task t is tℓ(t) + bℓ(t) (Section 5): bℓ is the
/// static bottom level over *average* execution/communication weights
/// ([27, 4]); tℓ is maintained dynamically over the partially built schedule
/// ("the current partially clustered DAG") — when a task is committed, each
/// successor's top level is relaxed with the task's earliest replica finish
/// plus the average communication weight of the connecting edge.
///
/// H(α) (the head function) returns the free task with the highest priority;
/// the paper breaks ties randomly, we break them by lowest task id so
/// experiments are reproducible.
#pragma once

#include <cstddef>
#include <queue>
#include <vector>

#include "dag/analysis.hpp"
#include "dag/task_graph.hpp"
#include "platform/cost_model.hpp"

namespace caft {

/// Tracks tℓ/bℓ, pending-predecessor counts and the free list α.
class PriorityTracker {
 public:
  PriorityTracker(const TaskGraph& graph, const CostModel& costs);

  /// True while unscheduled tasks remain.
  [[nodiscard]] bool has_free_task() const { return !alpha_.empty(); }

  /// Pops H(α): the free task with maximum tℓ + bℓ (ties: lowest id).
  TaskId pop_highest();

  /// Declares `t` committed with earliest replica finish `first_finish`;
  /// relaxes successors' top levels and releases the ones that become free.
  void mark_scheduled(TaskId t, double first_finish);

  /// Current priority tℓ(t) + bℓ(t).
  [[nodiscard]] double priority(TaskId t) const;

  [[nodiscard]] double top_level(TaskId t) const { return tl_[t.index()]; }
  [[nodiscard]] double bottom_level(TaskId t) const { return bl_[t.index()]; }

  /// Number of tasks popped so far.
  [[nodiscard]] std::size_t scheduled_count() const { return scheduled_count_; }

 private:
  struct Entry {
    double priority;
    TaskId task;
    /// Max-heap on priority; ties favour the lowest task id.
    bool operator<(const Entry& other) const {
      if (priority != other.priority) return priority < other.priority;
      return task > other.task;
    }
  };

  void push_free(TaskId t);

  const TaskGraph* graph_;
  std::vector<double> tl_;
  std::vector<double> bl_;
  std::vector<double> avg_edge_weight_;  ///< V(e) · average pair delay
  std::vector<std::size_t> pending_preds_;
  std::priority_queue<Entry> alpha_;
  std::size_t scheduled_count_ = 0;
};

}  // namespace caft
