/// \file ftsa.hpp
/// FTSA — Fault Tolerant Scheduling Algorithm ([4], summarized in the
/// paper's Section 4.2), the fault-tolerant extension of HEFT [27]:
///
///   - free tasks are processed by decreasing tℓ + bℓ priority;
///   - the selected task is tentatively mapped on every processor, taking
///     as ready time the moment at least one replica of each predecessor has
///     delivered its data;
///   - the ε+1 processors giving the smallest finish times each host one
///     replica; every replica receives from *all* ε+1 replicas of every
///     predecessor (up to (ε+1)² messages per DAG edge — the quadratic blow-
///     up CAFT attacks), except that a co-located copy serves alone
///     (Section 6's intra-processor note).
///
/// The communication model is pluggable (Section 4.3's one-port adaptation
/// versus the original macro-dataflow formulation) via SchedulerOptions.
#pragma once

#include "algo/list_core.hpp"
#include "dag/task_graph.hpp"
#include "platform/cost_model.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace caft {

/// Runs FTSA; the result has ε+1 replicas per task and passes the validator.
[[nodiscard]] Schedule ftsa_schedule(const TaskGraph& graph,
                                     const Platform& platform,
                                     const CostModel& costs,
                                     const SchedulerOptions& options);

}  // namespace caft
