#include "algo/ftsa.hpp"

#include <algorithm>
#include <limits>

#include "algo/priorities.hpp"
#include "common/check.hpp"
#include "obs/obs.hpp"

namespace caft {

Schedule ftsa_schedule(const TaskGraph& graph, const Platform& platform,
                       const CostModel& costs,
                       const SchedulerOptions& options) {
  CAFT_CHECK_MSG(options.eps + 1 <= platform.proc_count(),
                 "FTSA needs at least eps+1 processors");
  Schedule schedule(graph, platform, options.eps, options.model);
  const auto engine = make_engine(options.model, platform, costs);
  Placer placer(graph, costs, *engine, schedule);
  obs::Registry& registry = obs::Registry::global();
  obs::ScopedTimer priorities_timer(registry, "ftsa.priorities");
  PriorityTracker tracker(graph, costs);
  priorities_timer.stop();

  const std::size_t m = platform.proc_count();
  const std::size_t replicas = options.eps + 1;

  obs::ScopedTimer placement_timer(registry, "ftsa.placement");
  while (tracker.has_free_task()) {
    const TaskId t = tracker.pop_highest();

    // Simulate the mapping on every processor from the same engine state,
    // keeping only the ε+1 earliest-finishing processors (ties: lowest id)
    // in a bounded heap — O(m log(ε+1)) instead of a full m-wide sort.
    BestKSelector selector(replicas);
    for (std::size_t pi = 0; pi < m; ++pi) {
      const auto p = ProcId(static_cast<ProcId::value_type>(pi));
      const auto plans = placer.receive_all_plans(t, p);
      const TaskTimes times = placer.evaluate(t, p, plans);
      selector.offer(times.finish, p);
    }
    const auto candidates = selector.take_sorted();

    double first_finish = std::numeric_limits<double>::infinity();
    for (ReplicaIndex r = 0; r < replicas; ++r) {
      const ProcId p = candidates[r].proc;
      // Rebuild the plan: sender placements did not change, but a fresh plan
      // keeps the commit code path identical to evaluation.
      const auto plans = placer.receive_all_plans(t, p);
      const TaskTimes times = placer.commit(t, r, p, plans);
      first_finish = std::min(first_finish, times.finish);
    }
    tracker.mark_scheduled(t, first_finish);
  }
  placement_timer.stop();

  CAFT_CHECK(schedule.complete());
  return schedule;
}

}  // namespace caft
