#include "algo/priorities.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace caft {

PriorityTracker::PriorityTracker(const TaskGraph& graph, const CostModel& costs)
    : graph_(&graph) {
  const DagWeights weights = costs.average_weights(graph);
  bl_ = bottom_levels(graph, weights);
  avg_edge_weight_ = weights.edge;
  tl_.assign(graph.task_count(), 0.0);  // entry tasks: tℓ = 0 (Algorithm 5.1)
  pending_preds_.resize(graph.task_count());
  for (const TaskId t : graph.all_tasks()) {
    pending_preds_[t.index()] = graph.in_degree(t);
    if (pending_preds_[t.index()] == 0) push_free(t);
  }
}

TaskId PriorityTracker::pop_highest() {
  CAFT_CHECK_MSG(!alpha_.empty(), "no free task available");
  const TaskId t = alpha_.top().task;
  alpha_.pop();
  ++scheduled_count_;
  return t;
}

void PriorityTracker::mark_scheduled(TaskId t, double first_finish) {
  CAFT_CHECK(t.index() < graph_->task_count());
  for (const EdgeIndex e : graph_->out_edges(t)) {
    const TaskId succ = graph_->edge(e).dst;
    // tℓ relaxation over the partially built schedule: the successor cannot
    // start before t's earliest copy finished plus the average transfer.
    tl_[succ.index()] =
        std::max(tl_[succ.index()], first_finish + avg_edge_weight_[e]);
    CAFT_CHECK_MSG(pending_preds_[succ.index()] > 0,
                   "successor released twice");
    if (--pending_preds_[succ.index()] == 0) push_free(succ);
  }
}

double PriorityTracker::priority(TaskId t) const {
  CAFT_CHECK(t.index() < graph_->task_count());
  return tl_[t.index()] + bl_[t.index()];
}

void PriorityTracker::push_free(TaskId t) {
  alpha_.push(Entry{priority(t), t});
}

}  // namespace caft
