/// \file ftbar.hpp
/// FTBAR — Fault Tolerance Based Active Replication (Girault, Kalla,
/// Sighireanu, Sorel [10]; paper Section 4.1), adapted to the one-port model
/// per Section 4.3.
///
/// At each step n the *schedule pressure*
///
///   σ⁽ⁿ⁾(t_i, p_j) = S⁽ⁿ⁾(t_i, p_j) + s(t_i) − R⁽ⁿ⁻¹⁾
///
/// is computed for every free task / processor pair, where S is the earliest
/// start time of t_i on p_j under the engine's accounting (top-down), s(t_i)
/// the bottom level over average weights (the latest-start measure, bottom-
/// up) and R⁽ⁿ⁻¹⁾ the schedule length so far. Each free task keeps its
/// Npf+1 = ε+1 minimum-pressure processors; the task whose kept set contains
/// the *maximum* pressure (the most urgent pair) is scheduled on all ε+1 of
/// them, each replica receiving from every replica of every predecessor.
///
/// Committing a replica first runs Ahmad & Kwok's Minimize-Start-Time [1]:
/// if duplicating the replica's critical parent (the predecessor whose
/// earliest arrival binds the start time) onto the same processor strictly
/// reduces the start, the duplicate is committed too. The recursion is depth
/// bounded at one level, keeping the published O(P·N³) complexity.
#pragma once

#include "algo/list_core.hpp"
#include "dag/task_graph.hpp"
#include "platform/cost_model.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace caft {

/// Tuning knobs specific to FTBAR.
struct FtbarOptions {
  SchedulerOptions base;
  /// Enables the Minimize-Start-Time duplication pass (on in the paper).
  bool minimize_start_time = true;
};

/// Runs FTBAR; the result has ε+1 primary replicas per task (plus possible
/// duplicates from Minimize-Start-Time) and passes the validator.
[[nodiscard]] Schedule ftbar_schedule(const TaskGraph& graph,
                                      const Platform& platform,
                                      const CostModel& costs,
                                      const FtbarOptions& options);

}  // namespace caft
