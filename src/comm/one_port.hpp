/// \file one_port.hpp
/// The bi-directional one-port engine (paper Sections 2 and 4.3). Mutable
/// state per resource:
///
///   SF(P) — sending free time: P's network card can start a new emission;
///   RF(P) — receiving free time: P can start a new reception;
///   R(l)  — link ready time: the latest finish of any message on link l.
///
/// A message of volume V from P_k to P_h with payload ready at time d:
///
///   S(c, l) = max(SF(P_k), d, R(l))                     (equation (4))
///   F(c, l) = S(c, l) + V · d(l)
///   reception start = max(RF(P_h), S(c, l))              (equation (6))
///   A(c, P_h) = reception start + V · d(l)
///
/// then SF(P_k) = F(c, l), R(l) = F(c, l), RF(P_h) = A(c, P_h). Reception may
/// overlap the wire transfer (cut-through: when every port is free, A = F),
/// but two receptions at the same processor never overlap.
///
/// Interpretation note (documented in DESIGN.md): equation (6) as printed
/// keeps RF(P) fixed while walking the sorted predecessor list, which would
/// let two receptions overlap, violating inequality (3). We therefore update
/// RF(P) after every arrival — posting messages in the paper's sorted order
/// reproduces its accounting while strictly enforcing (3).
///
/// On sparse topologies (Section 7 extension) a message crosses its route
/// link by link: segment i may enter link l_i only after leaving l_{i-1},
/// each link carries one message at a time, the sender port is held for the
/// first segment and the reception happens on the last. On the paper's
/// clique every route has one hop and the equations above apply verbatim.
#pragma once

#include "comm/engine.hpp"

namespace caft {

/// Contention-aware engine enforcing the one-port constraints (1)-(3).
class OnePortEngine final : public CommEngine {
 public:
  OnePortEngine(const Platform& platform, const CostModel& costs);

  CommTimes post_comm(ProcId from, ProcId to, double volume,
                      double data_ready) override;

  [[nodiscard]] double peek_link_finish(ProcId from, ProcId to, double volume,
                                        double data_ready) const override;

  /// SF(P): earliest time P may start emitting a new message.
  [[nodiscard]] double sending_free(ProcId p) const;
  /// RF(P): earliest time P may start receiving a new message.
  [[nodiscard]] double receiving_free(ProcId p) const;
  /// R(l): ready time of link l.
  [[nodiscard]] double link_ready(LinkId l) const;

  [[nodiscard]] EngineSnapshot snapshot() const override;
  void restore(const EngineSnapshot& snap) override;
  void reset() override;

 private:
  std::vector<double> sending_free_;
  std::vector<double> receiving_free_;
  std::vector<double> link_ready_;
};

}  // namespace caft
