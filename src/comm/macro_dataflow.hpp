/// \file macro_dataflow.hpp
/// The traditional contention-free model the paper argues against (Section 1):
/// unlimited ports and links, so a message departs the moment its payload is
/// ready and lands exactly W = V · d(P_k, P_h) later. FTSA and FTBAR were
/// originally designed for this model; the ablation benches evaluate both
/// engines on identical placements to quantify what contention costs.
#pragma once

#include "comm/engine.hpp"

namespace caft {

/// Contention-free engine: post_comm never waits for any port or link.
class MacroDataflowEngine final : public CommEngine {
 public:
  using CommEngine::CommEngine;

  CommTimes post_comm(ProcId from, ProcId to, double volume,
                      double data_ready) override;

  [[nodiscard]] double peek_link_finish(ProcId from, ProcId to, double volume,
                                        double data_ready) const override;
};

}  // namespace caft
