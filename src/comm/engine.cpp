#include "comm/engine.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace caft {

CommEngine::CommEngine(const Platform& platform, const CostModel& costs)
    : platform_(&platform),
      costs_(&costs),
      proc_ready_(platform.proc_count(), 0.0) {
  CAFT_CHECK_MSG(&costs.platform() == &platform,
                 "cost model was built for a different platform");
}

double CommEngine::proc_ready(ProcId p) const {
  CAFT_CHECK(p.index() < proc_ready_.size());
  return proc_ready_[p.index()];
}

TaskTimes CommEngine::post_exec(ProcId p, double earliest_start,
                                double exec_time) {
  CAFT_CHECK(p.index() < proc_ready_.size());
  CAFT_CHECK(exec_time >= 0.0);
  TaskTimes times;
  times.start = std::max(earliest_start, proc_ready_[p.index()]);
  times.finish = times.start + exec_time;
  proc_ready_[p.index()] = times.finish;
  return times;
}

EngineSnapshot CommEngine::snapshot() const {
  EngineSnapshot snap;
  snap.proc_ready = proc_ready_;
  return snap;
}

void CommEngine::restore(const EngineSnapshot& snap) {
  CAFT_CHECK(snap.proc_ready.size() == proc_ready_.size());
  proc_ready_ = snap.proc_ready;
}

void CommEngine::reset() {
  std::fill(proc_ready_.begin(), proc_ready_.end(), 0.0);
}

}  // namespace caft
