/// \file engine.hpp
/// Communication engines: the resource-accounting substrate the schedulers
/// place work on. Two implementations share this interface:
///
///  - MacroDataflowEngine — the traditional contention-free model (Section 2
///    of the paper): a message leaves as soon as its source task finishes and
///    arrives W time units later; ports and links are unlimited.
///  - OnePortEngine — the bi-directional one-port model (Sections 2/4.3):
///    per-processor sending/receiving serialization (inequalities (2), (3)),
///    per-link exclusivity (inequality (1)), with start/finish/arrival times
///    per equations (4) and (6).
///
/// Schedulers *tentatively* place a task on every candidate processor, read
/// the resulting finish time, and roll back; `snapshot()` / `restore()` make
/// that cheap (the whole mutable state is a handful of time vectors; the
/// paper: "the incoming communications are removed from the links before the
/// procedure is repeated on the next processor").
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "platform/cost_model.hpp"
#include "platform/platform.hpp"

namespace caft {

/// Occupancy of one link by one message (sparse routes have several).
struct LinkOccupancy {
  LinkId link;
  double start = 0.0;
  double finish = 0.0;
};

/// Timing of one posted communication. The send interval occupies the
/// sender's port, the receive interval the receiver's port; on a clique both
/// coincide with the single link's occupancy when nothing contends.
struct CommTimes {
  double link_start = 0.0;   ///< S(c, l): when the message enters its first link
  double link_finish = 0.0;  ///< F(c, l): when it leaves its last link
  double send_finish = 0.0;  ///< when the sender's port is released
  double recv_start = 0.0;   ///< when the receiver's port starts the reception
  double arrival = 0.0;      ///< A(c, P): when the receiver has fully received it
  /// Per-hop link occupancy; empty for intra-processor hand-offs and for the
  /// macro-dataflow model (which has no link exclusivity to validate).
  std::vector<LinkOccupancy> segments;
};

/// Timing of one posted task execution.
struct TaskTimes {
  double start = 0.0;
  double finish = 0.0;
};

/// Opaque copy of an engine's mutable state.
struct EngineSnapshot {
  std::vector<double> proc_ready;
  std::vector<double> sending_free;
  std::vector<double> receiving_free;
  std::vector<double> link_ready;
};

/// Resource accounting interface shared by both platform models.
class CommEngine {
 public:
  CommEngine(const Platform& platform, const CostModel& costs);
  virtual ~CommEngine() = default;

  CommEngine(const CommEngine&) = delete;
  CommEngine& operator=(const CommEngine&) = delete;

  [[nodiscard]] const Platform& platform() const { return *platform_; }
  [[nodiscard]] const CostModel& costs() const { return *costs_; }
  [[nodiscard]] std::size_t proc_count() const { return platform_->proc_count(); }

  /// r(P): maximum finish time of the tasks already placed on P.
  [[nodiscard]] double proc_ready(ProcId p) const;

  /// Places a communication of `volume` data units from `from` to `to` whose
  /// payload becomes available at the sender at `data_ready` (the source
  /// task's finish time). Mutates the engine state. `from == to` is the
  /// intra-processor case: free and instantaneous (arrival = data_ready).
  virtual CommTimes post_comm(ProcId from, ProcId to, double volume,
                              double data_ready) = 0;

  /// Finish time on the link(s) that `post_comm` would produce, *without*
  /// mutating state — the sort key of Algorithm 5.2 line 3.
  [[nodiscard]] virtual double peek_link_finish(ProcId from, ProcId to,
                                                double volume,
                                                double data_ready) const = 0;

  /// Executes a task on `p`, not before `earliest_start`, for `exec_time`.
  /// Processors run one task at a time: start = max(earliest_start, r(P)).
  TaskTimes post_exec(ProcId p, double earliest_start, double exec_time);

  /// Copies the mutable state (O(m + links)).
  [[nodiscard]] virtual EngineSnapshot snapshot() const;
  /// Restores a state previously returned by snapshot().
  virtual void restore(const EngineSnapshot& snap);

  /// Resets every clock to zero (new scheduling run).
  virtual void reset();

 protected:
  const Platform* platform_;
  const CostModel* costs_;
  std::vector<double> proc_ready_;
};

}  // namespace caft
