#include "comm/one_port.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace caft {

OnePortEngine::OnePortEngine(const Platform& platform, const CostModel& costs)
    : CommEngine(platform, costs),
      sending_free_(platform.proc_count(), 0.0),
      receiving_free_(platform.proc_count(), 0.0),
      link_ready_(platform.topology().link_count(), 0.0) {}

CommTimes OnePortEngine::post_comm(ProcId from, ProcId to, double volume,
                                   double data_ready) {
  CAFT_CHECK(from.index() < proc_count() && to.index() < proc_count());
  CAFT_CHECK(volume >= 0.0);

  CommTimes times;
  if (from == to) {
    // Intra-processor: free, instantaneous, touches no port (Section 2).
    times.link_start = times.link_finish = data_ready;
    times.send_finish = times.recv_start = times.arrival = data_ready;
    return times;
  }

  const auto route = platform().topology().route(from, to);
  CAFT_CHECK_MSG(!route.empty(), "no route between distinct processors");

  // First segment holds the sender port: equation (4).
  double segment_start = std::max({sending_free_[from.index()], data_ready,
                                   link_ready_[route.front().index()]});
  double segment_finish =
      segment_start + volume * costs().unit_delay(route.front());
  times.link_start = segment_start;
  times.send_finish = segment_finish;
  sending_free_[from.index()] = segment_finish;
  link_ready_[route.front().index()] = segment_finish;
  times.segments.push_back({route.front(), segment_start, segment_finish});

  // Intermediate hops (sparse-topology extension; empty loop on a clique).
  double last_segment_start = segment_start;
  for (std::size_t i = 1; i < route.size(); ++i) {
    const LinkId l = route[i];
    segment_start = std::max(segment_finish, link_ready_[l.index()]);
    segment_finish = segment_start + volume * costs().unit_delay(l);
    link_ready_[l.index()] = segment_finish;
    last_segment_start = segment_start;
    times.segments.push_back({l, segment_start, segment_finish});
  }
  times.link_finish = segment_finish;

  // Reception on the last hop: equation (6) with the RF(P) running update.
  const double reception_duration =
      volume * costs().unit_delay(route.back());
  const double reception_start =
      std::max(receiving_free_[to.index()], last_segment_start);
  times.recv_start = reception_start;
  times.arrival = reception_start + reception_duration;
  receiving_free_[to.index()] = times.arrival;
  return times;
}

double OnePortEngine::peek_link_finish(ProcId from, ProcId to, double volume,
                                       double data_ready) const {
  CAFT_CHECK(from.index() < proc_count() && to.index() < proc_count());
  if (from == to) return data_ready;
  const auto route = platform().topology().route(from, to);
  CAFT_CHECK_MSG(!route.empty(), "no route between distinct processors");
  double finish = std::max({sending_free_[from.index()], data_ready,
                            link_ready_[route.front().index()]}) +
                  volume * costs().unit_delay(route.front());
  for (std::size_t i = 1; i < route.size(); ++i) {
    const LinkId l = route[i];
    finish = std::max(finish, link_ready_[l.index()]) +
             volume * costs().unit_delay(l);
  }
  return finish;
}

double OnePortEngine::sending_free(ProcId p) const {
  CAFT_CHECK(p.index() < proc_count());
  return sending_free_[p.index()];
}

double OnePortEngine::receiving_free(ProcId p) const {
  CAFT_CHECK(p.index() < proc_count());
  return receiving_free_[p.index()];
}

double OnePortEngine::link_ready(LinkId l) const {
  CAFT_CHECK(l.index() < link_ready_.size());
  return link_ready_[l.index()];
}

EngineSnapshot OnePortEngine::snapshot() const {
  EngineSnapshot snap = CommEngine::snapshot();
  snap.sending_free = sending_free_;
  snap.receiving_free = receiving_free_;
  snap.link_ready = link_ready_;
  return snap;
}

void OnePortEngine::restore(const EngineSnapshot& snap) {
  CommEngine::restore(snap);
  CAFT_CHECK(snap.sending_free.size() == sending_free_.size());
  CAFT_CHECK(snap.receiving_free.size() == receiving_free_.size());
  CAFT_CHECK(snap.link_ready.size() == link_ready_.size());
  sending_free_ = snap.sending_free;
  receiving_free_ = snap.receiving_free;
  link_ready_ = snap.link_ready;
}

void OnePortEngine::reset() {
  CommEngine::reset();
  std::fill(sending_free_.begin(), sending_free_.end(), 0.0);
  std::fill(receiving_free_.begin(), receiving_free_.end(), 0.0);
  std::fill(link_ready_.begin(), link_ready_.end(), 0.0);
}

}  // namespace caft
