#include "comm/macro_dataflow.hpp"

namespace caft {

CommTimes MacroDataflowEngine::post_comm(ProcId from, ProcId to, double volume,
                                         double data_ready) {
  CommTimes times;
  times.link_start = data_ready;
  times.link_finish = data_ready + costs().comm_time(volume, from, to);
  times.send_finish = times.link_finish;
  times.recv_start = times.link_start;
  times.arrival = times.link_finish;
  return times;
}

double MacroDataflowEngine::peek_link_finish(ProcId from, ProcId to,
                                             double volume,
                                             double data_ready) const {
  return data_ready + costs().comm_time(volume, from, to);
}

}  // namespace caft
