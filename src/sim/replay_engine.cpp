#include "sim/replay_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.hpp"

namespace caft {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kNone32 = 0xffffffffu;

// Op kinds/states; values mirror the naive replay's enums.
constexpr std::uint8_t kExec = 0;
constexpr std::uint8_t kWire = 1;
constexpr std::uint8_t kSegment = 2;
constexpr std::uint8_t kReception = 3;
constexpr std::uint8_t kHandoff = 4;

constexpr std::uint8_t kPending = 0;
constexpr std::uint8_t kDone = 1;
constexpr std::uint8_t kDead = 2;

}  // namespace

double ReplayEngine::first_crash(const CrashScenario& scenario) {
  double earliest = kInf;
  for (std::size_t p = 0; p < scenario.proc_count(); ++p)
    earliest = std::min(
        earliest,
        scenario.crash_time(ProcId(static_cast<ProcId::value_type>(p))));
  return earliest;
}

// ---------------------------------------------------------------------------
// SharedReplayMemo: striped open-addressing CAS table with hazard-pointer
// protected reads.
//
// Invariants the correctness argument leans on:
//  * An Entry is immutable after publication: its fields are written before
//    the slot CAS (release) and never again, so any acquire load of a slot
//    yields a fully constructed entry.
//  * Slots never return to nullptr: inserts CAS empty slots, a full probe
//    window *exchanges* its home slot (displacing the victim). Lookups may
//    therefore stop at the first empty slot — every key's publish saw only
//    non-empty slots before its own, and that prefix can only stay non-empty.
//  * Displaced entries are retired, not freed: a reader publishes the entry
//    pointer in its hazard slot and re-verifies the table slot (both seq_cst)
//    before dereferencing; the displacer re-reads all hazard slots after its
//    exchange (also seq_cst) and defers the free while any matches. The total
//    order on those four operations makes "reader dereferences freed entry"
//    impossible. Readers without a hazard slot serialize on fallback_mutex_,
//    which retirement sweeps also take.
//  * Values are pure functions of their keys, so every race degrades to a
//    benign extra recompute: a reader that skips a slot mid-displacement
//    misses and recomputes identical bits; two writers publishing the same
//    key publish identical bits.

SharedReplayMemo::SharedReplayMemo(SharedMemoOptions options)
    : stripes_(std::max<std::size_t>(1, options.shards)),
      hazards_(new std::atomic<const Entry*>[kMaxReaders]) {
  for (std::size_t i = 0; i < kMaxReaders; ++i) hazards_[i].store(nullptr);
  // Slot count: capacity rounded *down* to a power of two, so the resident
  // entry count is structurally bounded by the requested capacity.
  std::size_t slots = 1;
  while (slots * 2 <= options.capacity) slots *= 2;
  if (options.capacity == 0) slots = 0;
  slots_ = std::vector<std::atomic<Entry*>>(slots);
  slot_mask_ = slots == 0 ? 0 : slots - 1;
  probe_window_ = std::min<std::size_t>(16, slots);
  static std::atomic<std::uint64_t> next_memo_id{1};
  memo_id_ = next_memo_id.fetch_add(1, std::memory_order_relaxed);
}

SharedReplayMemo::~SharedReplayMemo() {
  for (std::atomic<Entry*>& slot : slots_) delete slot.load();
  for (Entry* entry : retired_) delete entry;
}

std::uint64_t SharedReplayMemo::hash_key(const Key& key) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the words
  for (const std::uint64_t w : key) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

void SharedReplayMemo::bind(std::uint64_t generation) {
  std::uint64_t expected = 0;
  if (bound_generation_.compare_exchange_strong(expected, generation,
                                                std::memory_order_relaxed))
    return;
  CAFT_CHECK_MSG(expected == generation,
                 "SharedReplayMemo is bound to a different ReplayEngine — "
                 "create one memo per (campaign, engine)");
}

std::size_t SharedReplayMemo::acquire_reader_slot() {
  const std::size_t idx =
      reader_count_.fetch_add(1, std::memory_order_relaxed);
  return idx < kMaxReaders ? idx : kFallbackReader;
}

bool SharedReplayMemo::hazarded(const Entry* entry) const {
  for (std::size_t i = 0; i < kMaxReaders; ++i)
    if (hazards_[i].load(std::memory_order_seq_cst) == entry) return true;
  return false;
}

void SharedReplayMemo::retire_locked(Entry* entry) {
  retired_.push_back(entry);
  // Sweep: free everything no hazard slot still references. The list stays
  // O(kMaxReaders): each sweep keeps only currently-hazarded entries.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < retired_.size(); ++i) {
    if (hazarded(retired_[i]))
      retired_[keep++] = retired_[i];
    else
      delete retired_[i];
  }
  retired_.resize(keep);
}

void SharedReplayMemo::retire(Entry* entry) {
  std::lock_guard<std::mutex> lock(fallback_mutex_);
  retire_locked(entry);
}

std::shared_ptr<const CrashResult> SharedReplayMemo::find(const Key& key,
                                                          std::size_t reader) {
  const std::uint64_t h = hash_key(key);
  Stripe& stripe = stripes_[h % stripes_.size()];
  stripe.lookups.fetch_add(1, std::memory_order_relaxed);
  if (slots_.empty()) return nullptr;

  if (reader == kFallbackReader) {
    // No hazard slot: the mutex excludes retirement sweeps instead.
    std::lock_guard<std::mutex> lock(fallback_mutex_);
    for (std::size_t i = 0; i < probe_window_; ++i) {
      const Entry* e =
          slots_[(h + i) & slot_mask_].load(std::memory_order_acquire);
      if (e == nullptr) break;
      if (e->hash == h && e->key == key) {
        stripe.hits.fetch_add(1, std::memory_order_relaxed);
        return e->value;
      }
    }
    return nullptr;
  }

  std::atomic<const Entry*>& hazard = hazards_[reader];
  for (std::size_t i = 0; i < probe_window_; ++i) {
    std::atomic<Entry*>& slot = slots_[(h + i) & slot_mask_];
    Entry* e = slot.load(std::memory_order_acquire);
    if (e == nullptr) break;
    hazard.store(e, std::memory_order_seq_cst);
    if (slot.load(std::memory_order_seq_cst) != e) {
      // Displaced between load and hazard publication — the entry may
      // already be retired, so it must not be dereferenced. Skipping the
      // slot is benign: at worst this lookup misses and recomputes.
      hazard.store(nullptr, std::memory_order_relaxed);
      continue;
    }
    const bool match = e->hash == h && e->key == key;
    std::shared_ptr<const CrashResult> value;
    if (match) value = e->value;
    hazard.store(nullptr, std::memory_order_release);
    if (match) {
      stripe.hits.fetch_add(1, std::memory_order_relaxed);
      return value;
    }
  }
  return nullptr;
}

void SharedReplayMemo::insert(const Key& key,
                              std::shared_ptr<const CrashResult> value,
                              std::size_t reader) {
  if (slots_.empty()) return;
  const std::uint64_t h = hash_key(key);
  Stripe& stripe = stripes_[h % stripes_.size()];
  Entry* fresh = new Entry{h, key, std::move(value)};

  const bool fallback = reader == kFallbackReader;
  std::unique_lock<std::mutex> lock(fallback_mutex_, std::defer_lock);
  if (fallback) lock.lock();

  for (std::size_t i = 0; i < probe_window_; ++i) {
    std::atomic<Entry*>& slot = slots_[(h + i) & slot_mask_];
    Entry* e = slot.load(std::memory_order_acquire);
    while (e == nullptr) {
      if (slot.compare_exchange_weak(e, fresh, std::memory_order_release,
                                     std::memory_order_acquire)) {
        stripe.insertions.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    // Occupied: keep the resident entry if it already carries this key
    // (its value is bit-identical to ours by purity).
    bool same_key = false;
    if (fallback) {
      same_key = e->hash == h && e->key == key;
    } else {
      std::atomic<const Entry*>& hazard = hazards_[reader];
      hazard.store(e, std::memory_order_seq_cst);
      if (slot.load(std::memory_order_seq_cst) == e)
        same_key = e->hash == h && e->key == key;
      hazard.store(nullptr, std::memory_order_release);
    }
    if (same_key) {
      delete fresh;
      stripe.insertions.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  // Window full: displace the home slot's resident (any victim preserves
  // correctness; the home slot keeps the hottest recent key reachable).
  Entry* victim = slots_[h & slot_mask_].exchange(fresh,
                                                  std::memory_order_seq_cst);
  stripe.insertions.fetch_add(1, std::memory_order_relaxed);
  if (victim != nullptr) {
    stripe.evictions.fetch_add(1, std::memory_order_relaxed);
    if (fallback)
      retire_locked(victim);
    else
      retire(victim);
  }
}

SharedReplayMemo::Stats SharedReplayMemo::stats() const {
  Stats stats;
  for (const Stripe& stripe : stripes_) {
    stats.lookups += stripe.lookups.load(std::memory_order_relaxed);
    stats.hits += stripe.hits.load(std::memory_order_relaxed);
    stats.insertions += stripe.insertions.load(std::memory_order_relaxed);
    stats.evictions += stripe.evictions.load(std::memory_order_relaxed);
  }
  for (const std::atomic<Entry*>& slot : slots_)
    if (slot.load(std::memory_order_acquire) != nullptr) ++stats.entries;
  return stats;
}

ReplayEngine::ReplayEngine(const Schedule& schedule, const CostModel& costs,
                           ReplayEngineOptions options)
    : schedule_(&schedule), options_(std::move(options)) {
  (void)costs;  // durations come from the committed schedule, as in the
                // naive replay; the parameter keeps the two call shapes
                // symmetric.
  CAFT_CHECK_MSG(schedule.complete(), "schedule is incomplete");
  CAFT_CHECK_MSG(options_.max_snapshots > 0,
                 "the engine needs at least one snapshot slot");
  CAFT_CHECK_MSG(options_.theta_bucket_width >= 0.0 &&
                     !std::isnan(options_.theta_bucket_width),
                 "theta bucket width must be non-negative");
  static std::atomic<std::uint64_t> next_generation{1};
  generation_ = next_generation.fetch_add(1, std::memory_order_relaxed);
  build_template();
  record_fault_free();
}

void ReplayEngine::build_template() {
  const TaskGraph& g = schedule_->graph();
  m_ = schedule_->platform().proc_count();
  const std::size_t link_count = schedule_->platform().topology().link_count();
  resource_count_ = 3 * m_ + link_count;

  const auto exec_res = [&](ProcId p) { return p.index(); };
  const auto send_res = [&](ProcId p) { return m_ + p.index(); };
  const auto recv_res = [&](ProcId p) { return 2 * m_ + p.index(); };
  const auto link_res = [&](LinkId l) { return 3 * m_ + l.index(); };

  // Build in exactly the order the naive replay does, so op ids (the
  // deterministic tie-break of the event loop) coincide.
  struct Keyed {
    double key;
    std::size_t seq;
    std::uint32_t op;
    std::size_t res;
  };
  std::vector<Keyed> keyed;

  const auto push_op = [&](std::uint8_t kind, double duration,
                           std::size_t res_a, std::size_t res_b,
                           std::uint32_t prereq, bool prereq_start,
                           std::int32_t owner) -> std::uint32_t {
    const auto id = static_cast<std::uint32_t>(kind_.size());
    kind_.push_back(kind);
    prereq_is_start_.push_back(prereq_start ? 1 : 0);
    counts_message_.push_back(0);
    duration_.push_back(duration);
    res_a_.push_back(res_a == static_cast<std::size_t>(-1)
                         ? kNone32
                         : static_cast<std::uint32_t>(res_a));
    res_b_.push_back(res_b == static_cast<std::size_t>(-1)
                         ? kNone32
                         : static_cast<std::uint32_t>(res_b));
    prereq_.push_back(prereq);
    owner_.push_back(owner);
    feed_slot_.push_back(kNone32);
    feed_exec_.push_back(kNone32);
    return id;
  };

  // Execution ops, CSR-indexed per task: exec_ops_[exec_op_begin_[t] + r].
  exec_op_begin_.assign(g.task_count() + 1, 0);
  for (const TaskId t : g.all_tasks())
    exec_op_begin_[t.index() + 1] =
        static_cast<std::uint32_t>(schedule_->total_replicas(t));
  for (std::size_t i = 1; i <= g.task_count(); ++i)
    exec_op_begin_[i] += exec_op_begin_[i - 1];
  exec_ops_.assign(exec_op_begin_[g.task_count()], 0);
  const auto exec_op = [&](std::size_t task, ReplicaIndex r) {
    return exec_ops_[exec_op_begin_[task] + r];
  };
  std::size_t seq = 0;
  for (const TaskId t : g.all_tasks()) {
    const std::size_t total = schedule_->total_replicas(t);
    for (ReplicaIndex r = 0; r < total; ++r) {
      const ReplicaAssignment& a = schedule_->replica(t, r);
      const std::uint32_t id =
          push_op(kExec, a.finish - a.start, exec_res(a.proc),
                  static_cast<std::size_t>(-1), kNone32, false,
                  static_cast<std::int32_t>(a.proc.index()));
      exec_ops_[exec_op_begin_[t.index()] + r] = id;
      keyed.push_back({a.start, seq++, id, exec_res(a.proc)});
    }
  }

  // Communication chains; comm_to_op maps each comm to its terminating op.
  std::vector<std::uint32_t> comm_to_op(schedule_->comms().size(), kNone32);
  for (std::size_t ci = 0; ci < schedule_->comms().size(); ++ci) {
    const CommAssignment& c = schedule_->comms()[ci];
    const std::uint32_t source_exec =
        exec_op(c.from.task.index(), c.from.replica);

    if (c.intra() || schedule_->model() == CommModelKind::kMacroDataflow) {
      const std::uint32_t id =
          push_op(kHandoff, c.times.arrival - c.times.link_start,
                  static_cast<std::size_t>(-1), static_cast<std::size_t>(-1),
                  source_exec, false, -1);
      counts_message_[id] = c.intra() ? 0 : 1;
      comm_to_op[ci] = id;
      initial_handoffs_.push_back(id);
      continue;
    }

    // One-port chain: wire, optional extra segments, reception.
    CAFT_CHECK_MSG(!c.times.segments.empty(),
                   "one-port inter-processor comm without segments");
    std::uint32_t prev = kNone32;
    for (std::size_t si = 0; si < c.times.segments.size(); ++si) {
      const LinkOccupancy& seg = c.times.segments[si];
      std::uint32_t id;
      if (si == 0) {
        // A wire dies with its *sender*; forwarding through a dead router
        // (non-final hop toward the link's far end) is handled by the kill
        // lists below.
        id = push_op(kWire, seg.finish - seg.start, send_res(c.src_proc),
                     link_res(seg.link), source_exec, false,
                     static_cast<std::int32_t>(c.src_proc.index()));
        keyed.push_back({seg.start, seq++, id, send_res(c.src_proc)});
        keyed.push_back({seg.start, seq, id, link_res(seg.link)});
      } else {
        id = push_op(kSegment, seg.finish - seg.start, link_res(seg.link),
                     static_cast<std::size_t>(-1), prev, false, -1);
        keyed.push_back({seg.start, seq++, id, link_res(seg.link)});
      }
      prev = id;
    }
    const std::uint32_t recv =
        push_op(kReception, c.times.arrival - c.times.recv_start,
                recv_res(c.dst_proc), static_cast<std::size_t>(-1), prev,
                /*prereq_start=*/true,
                static_cast<std::int32_t>(c.dst_proc.index()));
    counts_message_[recv] = 1;
    comm_to_op[ci] = recv;
    keyed.push_back({c.times.recv_start, seq++, recv, recv_res(c.dst_proc)});
  }

  op_count_ = kind_.size();

  // Resource queues in committed order (same sort as the naive replay),
  // flattened into one CSR array: the whole hot working set of the commit
  // loop is then four contiguous arrays (queue_ops_, state, head, free_at).
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  });
  queue_begin_.assign(resource_count_ + 1, 0);
  for (const Keyed& k : keyed) ++queue_begin_[k.res + 1];
  for (std::size_t r = 0; r < resource_count_; ++r)
    queue_begin_[r + 1] += queue_begin_[r];
  queue_ops_.assign(keyed.size(), 0);
  {
    std::vector<std::uint32_t> cursor(queue_begin_.begin(),
                                      queue_begin_.end() - 1);
    for (const Keyed& k : keyed) queue_ops_[cursor[k.res]++] = k.op;
  }

  // Disjunctive input slots: one slot per (exec op, in-edge), flattened.
  exec_slot_begin_.assign(op_count_ + 1, 0);
  std::vector<std::vector<std::vector<std::uint32_t>>> inputs_by_exec(
      op_count_);
  for (const TaskId t : g.all_tasks()) {
    const auto in = g.in_edges(t);
    const std::size_t total = schedule_->total_replicas(t);
    for (ReplicaIndex r = 0; r < total; ++r) {
      const std::uint32_t eop = exec_op(t.index(), r);
      inputs_by_exec[eop].assign(in.size(), {});
      for (const std::size_t ci : schedule_->incoming_comms(t, r)) {
        const CommAssignment& c = schedule_->comms()[ci];
        const auto pos = std::find(in.begin(), in.end(), c.edge) - in.begin();
        CAFT_CHECK(static_cast<std::size_t>(pos) < in.size());
        CAFT_CHECK(comm_to_op[ci] != kNone32);
        inputs_by_exec[eop][static_cast<std::size_t>(pos)].push_back(
            comm_to_op[ci]);
      }
    }
  }
  slot_input_begin_.assign(1, 0);
  for (std::uint32_t op = 0; op < op_count_; ++op) {
    exec_slot_begin_[op] = static_cast<std::uint32_t>(
        slot_input_begin_.size() - 1);
    for (const auto& slot : inputs_by_exec[op]) {
      const std::uint32_t slot_id =
          static_cast<std::uint32_t>(slot_input_begin_.size() - 1);
      for (const std::uint32_t in_op : slot) {
        slot_inputs_.push_back(in_op);
        // Every terminating op feeds exactly one (exec, edge) slot.
        feed_slot_[in_op] = slot_id;
        feed_exec_[in_op] = op;
      }
      slot_input_begin_.push_back(
          static_cast<std::uint32_t>(slot_inputs_.size()));
    }
  }
  exec_slot_begin_[op_count_] =
      static_cast<std::uint32_t>(slot_input_begin_.size() - 1);

  // Prerequisite dependents (reverse of prereq_), CSR.
  dep_begin_.assign(op_count_ + 1, 0);
  for (std::uint32_t op = 0; op < op_count_; ++op)
    if (prereq_[op] != kNone32) ++dep_begin_[prereq_[op] + 1];
  for (std::size_t i = 1; i <= op_count_; ++i) dep_begin_[i] += dep_begin_[i - 1];
  dep_ops_.assign(dep_begin_[op_count_], 0);
  {
    std::vector<std::uint32_t> cursor(dep_begin_.begin(),
                                      dep_begin_.end() - 1);
    for (std::uint32_t op = 0; op < op_count_; ++op)
      if (prereq_[op] != kNone32) dep_ops_[cursor[prereq_[op]]++] = op;
  }

  // Per-processor kill lists: which ops die when p is dead from the start.
  // Mirrors the naive kill_dead_processors case analysis exactly.
  const Topology& topology = schedule_->platform().topology();
  std::vector<std::vector<std::uint32_t>> kills(m_);
  const auto link_of = [&](std::size_t res) -> const LinkDef& {
    return topology.link(
        LinkId(static_cast<LinkId::value_type>(res - 3 * m_)));
  };
  for (std::uint32_t op = 0; op < op_count_; ++op) {
    switch (kind_[op]) {
      case kExec:
        kills[static_cast<std::size_t>(owner_[op])].push_back(op);
        break;
      case kWire:
        kills[res_a_[op] - m_].push_back(op);  // dies with its sender port
        break;
      case kSegment: {
        const LinkDef& def = link_of(res_a_[op]);
        kills[def.from.index()].push_back(op);
        break;
      }
      case kReception: {
        const std::size_t port = res_a_[op] - 2 * m_;
        kills[port].push_back(op);
        break;
      }
      default:
        break;  // hand-offs die only via propagation
    }
  }
  // Non-final wires and segments also die with the router they forward to.
  // "Non-final" = some segment lists this op as its prerequisite.
  std::vector<std::uint8_t> has_segment_successor(op_count_, 0);
  for (std::uint32_t op = 0; op < op_count_; ++op)
    if (kind_[op] == kSegment && prereq_[op] != kNone32)
      has_segment_successor[prereq_[op]] = 1;
  for (std::uint32_t op = 0; op < op_count_; ++op) {
    if (!has_segment_successor[op]) continue;
    if (kind_[op] == kWire) {
      kills[link_of(res_b_[op]).to.index()].push_back(op);
    } else if (kind_[op] == kSegment) {
      kills[link_of(res_a_[op]).to.index()].push_back(op);
    }
  }

  kill_begin_.assign(m_ + 1, 0);
  for (std::size_t p = 0; p < m_; ++p)
    kill_begin_[p + 1] =
        kill_begin_[p] + static_cast<std::uint32_t>(kills[p].size());
  kill_ops_.reserve(kill_begin_[m_]);
  for (std::size_t p = 0; p < m_; ++p)
    kill_ops_.insert(kill_ops_.end(), kills[p].begin(), kills[p].end());

  // The kill lists inverted into per-op processor bitmasks, plus a
  // topological order over the (prereq → dependent, slot input → exec)
  // edges: close_dead_mask() uses them to turn dead-from-start propagation
  // into one linear pass of word-sized mask tests. m > 64 (no single dead
  // word) keeps the worklist path and leaves both arrays empty.
  topo_order_.clear();
  direct_kill_mask_.clear();
  if (m_ <= 64) {
    direct_kill_mask_.assign(op_count_, 0);
    for (std::size_t p = 0; p < m_; ++p)
      for (std::uint32_t i = kill_begin_[p]; i < kill_begin_[p + 1]; ++i)
        direct_kill_mask_[kill_ops_[i]] |= std::uint64_t{1} << p;

    std::vector<std::uint32_t> indegree(op_count_, 0);
    for (std::uint32_t op = 0; op < op_count_; ++op) {
      if (prereq_[op] != kNone32) ++indegree[op];
      if (feed_slot_[op] != kNone32) ++indegree[feed_exec_[op]];
    }
    std::vector<std::uint32_t> stack;
    for (std::uint32_t op = 0; op < op_count_; ++op)
      if (indegree[op] == 0) stack.push_back(op);
    topo_order_.reserve(op_count_);
    while (!stack.empty()) {
      const std::uint32_t op = stack.back();
      stack.pop_back();
      topo_order_.push_back(op);
      for (std::uint32_t i = dep_begin_[op]; i < dep_begin_[op + 1]; ++i)
        if (--indegree[dep_ops_[i]] == 0) stack.push_back(dep_ops_[i]);
      if (feed_slot_[op] != kNone32 && --indegree[feed_exec_[op]] == 0)
        stack.push_back(feed_exec_[op]);
    }
    CAFT_CHECK_MSG(topo_order_.size() == op_count_,
                   "op dependency graph has a cycle");
  }
}

void ReplayEngine::reset_pristine(Scratch& s) const {
  s.state.assign(op_count_, kPending);
  // start/finish need no clearing: they are only ever read for ops in the
  // kDone state, which always receive fresh values at their commit.
  s.start.resize(op_count_);
  s.finish.resize(op_count_);
  s.head.assign(resource_count_, 0);
  s.free_at.assign(resource_count_, 0.0);
  s.handoffs.assign(initial_handoffs_.begin(), initial_handoffs_.end());
  s.dead_inputs.assign(slot_input_begin_.size() - 1, 0);
  s.worklist.clear();
  s.cand_ready.resize(resource_count_);
  s.cand_op.resize(resource_count_);
  s.dirty_flag.assign(resource_count_, 0);
  s.dirty_resources.clear();
  s.all_dirty = true;
  s.order_relaxations = 0;
  s.order_deadlock = false;
  s.died = false;
}

void ReplayEngine::restore_snapshot(Scratch& s, const Snapshot& snap) const {
  s.state = snap.state;
  s.start = snap.start;
  s.finish = snap.finish;
  s.head = snap.head;
  s.free_at = snap.free_at;
  s.handoffs = snap.pending_handoffs;
  // No op is dead anywhere on the fault-free prefix.
  s.dead_inputs.assign(slot_input_begin_.size() - 1, 0);
  s.worklist.clear();
  s.cand_ready.resize(resource_count_);
  s.cand_op.resize(resource_count_);
  s.dirty_flag.assign(resource_count_, 0);
  s.dirty_resources.clear();
  s.all_dirty = true;
  s.order_relaxations = 0;
  s.order_deadlock = false;
  s.died = false;
}

std::size_t ReplayEngine::pick_snapshot(const CrashScenario& scenario) const {
  // A processor dead (or dying) at t <= 0 invalidates the whole prefix: the
  // naive replay pre-kills its ops before the first event.
  for (std::size_t p = 0; p < m_; ++p)
    if (scenario.crash_time(ProcId(static_cast<ProcId::value_type>(p))) <=
        0.0)
      return static_cast<std::size_t>(-1);
  const auto valid = [&](const Snapshot& snap) {
    for (std::size_t p = 0; p < m_; ++p)
      if (snap.per_proc_max[p] >
          scenario.crash_time(ProcId(static_cast<ProcId::value_type>(p))))
        return false;
    return true;
  };
  // Validity is monotone (prefix maxima only grow): binary-search the
  // latest valid snapshot.
  std::size_t lo = 0;
  std::size_t hi = snapshots_.size();
  std::size_t best = static_cast<std::size_t>(-1);
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (valid(snapshots_[mid])) {
      best = mid;
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return best;
}

void ReplayEngine::kill(Scratch& s, std::uint32_t op) const {
  s.state[op] = kDead;
  s.worklist.push_back(op);
}

void ReplayEngine::propagate(Scratch& s) const {
  // Worklist closure of the naive propagate_dead fixpoint: a dead
  // prerequisite kills its dependents; an exec dies when some in-edge has
  // every input dead. The resulting state set is the same least fixpoint
  // the naive full-scan loop computes. A death wave can invalidate any
  // cached candidate, so the next commit refreshes them all.
  s.all_dirty = true;
  while (!s.worklist.empty()) {
    const std::uint32_t op = s.worklist.back();
    s.worklist.pop_back();
    for (std::uint32_t i = dep_begin_[op]; i < dep_begin_[op + 1]; ++i) {
      const std::uint32_t d = dep_ops_[i];
      if (s.state[d] == kPending) kill(s, d);
    }
    if (feed_slot_[op] != kNone32) {
      const std::uint32_t slot = feed_slot_[op];
      const std::uint32_t total =
          slot_input_begin_[slot + 1] - slot_input_begin_[slot];
      if (++s.dead_inputs[slot] == total) {
        const std::uint32_t e = feed_exec_[op];
        if (s.state[e] == kPending) kill(s, e);
      }
    }
    // A settled op at a queue head unblocks whatever sits behind it.
    if (res_a_[op] != kNone32) advance_resource(s, res_a_[op]);
    if (res_b_[op] != kNone32) advance_resource(s, res_b_[op]);
  }
}

void ReplayEngine::close_dead_mask(Scratch& s, std::uint64_t dead_mask) const {
  // One linear pass over the topological order computes the same least
  // fixpoint as the worklist propagate: every edge that can transmit death
  // (prereq → dependent, slot input → exec) points forward in topo_order_,
  // so by the time an op is visited everything that could kill it is final.
  // The per-op test is word arithmetic on direct_kill_mask_, not
  // pointer-chasing through kill lists.
  for (const std::uint32_t op : topo_order_) {
    bool dead = (direct_kill_mask_[op] & dead_mask) != 0;
    const std::uint32_t pre = prereq_[op];
    if (!dead && pre != kNone32 && s.state[pre] == kDead) dead = true;
    if (!dead && kind_[op] == kExec) {
      for (std::uint32_t slot = exec_slot_begin_[op];
           slot < exec_slot_begin_[op + 1]; ++slot) {
        const std::uint32_t total =
            slot_input_begin_[slot + 1] - slot_input_begin_[slot];
        // total > 0 mirrors the worklist, which kills through a slot only
        // when an increment *reaches* the total — never for empty slots.
        if (total > 0 && s.dead_inputs[slot] == total) {
          dead = true;
          break;
        }
      }
    }
    if (!dead) continue;
    s.state[op] = kDead;
    if (feed_slot_[op] != kNone32) ++s.dead_inputs[feed_slot_[op]];
  }
  // The worklist path interleaves head advances with deaths; advancing
  // every resource once after all deaths lands each head on the same first
  // still-pending op (advance is monotone and settled states are final).
  for (std::uint32_t res = 0; res < resource_count_; ++res)
    advance_resource(s, res);
}

void ReplayEngine::advance_resource(Scratch& s, std::uint32_t res) const {
  const std::uint32_t qb = queue_begin_[res];
  const std::uint32_t qe = queue_begin_[res + 1];
  std::uint32_t h = s.head[res];
  while (qb + h < qe && s.state[queue_ops_[qb + h]] != kPending) ++h;
  s.head[res] = h;
}

bool ReplayEngine::at_heads(const Scratch& s, std::uint32_t op) const {
  const std::uint32_t a = res_a_[op];
  if (a != kNone32) {
    const std::uint32_t idx = queue_begin_[a] + s.head[a];
    if (idx >= queue_begin_[a + 1] || queue_ops_[idx] != op) return false;
  }
  const std::uint32_t b = res_b_[op];
  if (b != kNone32) {
    const std::uint32_t idx = queue_begin_[b] + s.head[b];
    if (idx >= queue_begin_[b + 1] || queue_ops_[idx] != op) return false;
  }
  return true;
}

bool ReplayEngine::runnable(const Scratch& s, std::uint32_t op,
                            double& ready) const {
  ready = 0.0;
  const std::uint32_t pre = prereq_[op];
  if (pre != kNone32) {
    if (s.state[pre] != kDone) return false;
    ready = prereq_is_start_[op] ? s.start[pre] : s.finish[pre];
  }
  if (kind_[op] == kExec) {
    for (std::uint32_t slot = exec_slot_begin_[op];
         slot < exec_slot_begin_[op + 1]; ++slot) {
      double first = kInf;
      for (std::uint32_t i = slot_input_begin_[slot];
           i < slot_input_begin_[slot + 1]; ++i) {
        const std::uint32_t in_op = slot_inputs_[i];
        if (s.state[in_op] == kDone)
          first = std::min(first, s.finish[in_op]);
      }
      if (first == kInf) return false;  // no live input yet for this edge
      ready = std::max(ready, first);
    }
  }
  if (res_a_[op] != kNone32) ready = std::max(ready, s.free_at[res_a_[op]]);
  if (res_b_[op] != kNone32) ready = std::max(ready, s.free_at[res_b_[op]]);
  return true;
}

void ReplayEngine::recompute_candidate(Scratch& s, std::uint32_t res) const {
  // The cached candidate is exactly what the old per-commit consider() scan
  // computed for this resource's queue head; (kInf, kNone32) encodes "no
  // runnable head" and can never win the selection below.
  double ready = kInf;
  std::uint32_t op = kNone32;
  const std::uint32_t idx = queue_begin_[res] + s.head[res];
  if (idx < queue_begin_[res + 1]) {
    const std::uint32_t cand = queue_ops_[idx];
    double r = 0.0;
    if (s.state[cand] == kPending && at_heads(s, cand) &&
        runnable(s, cand, r)) {
      ready = r;
      op = cand;
    }
  }
  s.cand_ready[res] = ready;
  s.cand_op[res] = op;
}

void ReplayEngine::mark_dirty(Scratch& s, std::uint32_t res) const {
  if (s.all_dirty || s.dirty_flag[res] != 0) return;
  s.dirty_flag[res] = 1;
  s.dirty_resources.push_back(res);
}

bool ReplayEngine::commit_next(Scratch& s, const CrashScenario& scenario,
                               std::uint32_t* committed) const {
  s.died = false;
  // Discrete-event step, exactly the naive selection: among the queue-head
  // operations (plus resource-free hand-offs) whose prerequisites are met,
  // commit the one with the earliest candidate start; lowest op id breaks
  // ties. Instead of re-deriving every head's readiness each step, the
  // Scratch keeps a per-resource candidate cache (SoA: cand_ready/cand_op)
  // and each commit refreshes only the resources the previous commit could
  // have affected; the selection is then a branch-light min scan over two
  // flat arrays. Candidate values come from the same at_heads/runnable
  // code, so the selected (ready, op) — tie-breaks, ±inf conventions and
  // IEEE arithmetic included — is bit-identical to the full rescan.
  if (s.all_dirty) {
    for (std::uint32_t res = 0;
         res < static_cast<std::uint32_t>(resource_count_); ++res)
      recompute_candidate(s, res);
    s.all_dirty = false;
    s.dirty_resources.clear();
    std::fill(s.dirty_flag.begin(), s.dirty_flag.end(), 0);
  } else {
    for (const std::uint32_t res : s.dirty_resources) {
      s.dirty_flag[res] = 0;
      recompute_candidate(s, res);
    }
    s.dirty_resources.clear();
  }

  std::uint32_t best = kNone32;
  double best_start = kInf;
  for (std::size_t res = 0; res < resource_count_; ++res) {
    const double ready = s.cand_ready[res];
    const std::uint32_t op = s.cand_op[res];
    if (ready < best_start || (ready == best_start && op < best)) {
      best_start = ready;
      best = op;
    }
  }
  for (std::size_t hi = 0; hi < s.handoffs.size();) {
    const std::uint32_t op = s.handoffs[hi];
    if (s.state[op] != kPending) {
      s.handoffs[hi] = s.handoffs.back();  // drop settled hand-offs
      s.handoffs.pop_back();
      continue;
    }
    double ready = 0.0;
    if (runnable(s, op, ready) &&
        (ready < best_start || (ready == best_start && op < best))) {
      best_start = ready;
      best = op;
    }
    ++hi;
  }

  if (best == kNone32) {
    // Strict committed order stuck (circular wait through rerouted inputs —
    // possible only under crashes): any prerequisite-ready op may jump the
    // queue; the resource clocks still serialize everything.
    for (std::uint32_t op = 0; op < op_count_; ++op) {
      if (s.state[op] != kPending) continue;
      double ready = 0.0;
      if (!runnable(s, op, ready)) continue;
      if (ready < best_start || (ready == best_start && op < best)) {
        best_start = ready;
        best = op;
      }
    }
    if (best != kNone32) {
      ++s.order_relaxations;
      // A queue-jumping commit moves resource clocks under ops that never
      // headed a queue — no targeted invalidation covers that, so refresh
      // everything next step (relaxations are rare: zero fault-free).
      s.all_dirty = true;
    }
  }
  if (best == kNone32) {
    // Nothing can ever run again: remaining pending work is lost.
    for (std::uint32_t op = 0; op < op_count_; ++op)
      if (s.state[op] == kPending) {
        s.order_deadlock = true;
        break;
      }
    if (s.order_deadlock)
      for (std::uint32_t op = 0; op < op_count_; ++op)
        if (s.state[op] == kPending) s.state[op] = kDead;
    return false;
  }

  s.start[best] = best_start;
  const double finish = best_start + duration_[best];
  s.finish[best] = finish;
  if (committed != nullptr) *committed = best;

  // Crash-at-θ: work in flight when the owner dies is lost, and the owner's
  // resources are gone for good.
  const std::int32_t owner = owner_[best];
  if (owner >= 0 &&
      finish > scenario.crash_time(
                   ProcId(static_cast<ProcId::value_type>(owner)))) {
    kill(s, best);
    s.died = true;
    const auto p = static_cast<std::size_t>(owner);
    s.free_at[p] = kInf;           // exec resource
    s.free_at[m_ + p] = kInf;      // send port
    s.free_at[2 * m_ + p] = kInf;  // receive port
    // The caller runs propagate(), which advances this op's resources and
    // those of everything that dies with it (and dirties every candidate).
    s.all_dirty = true;
    return true;
  }

  s.state[best] = kDone;
  if (res_a_[best] != kNone32) {
    s.free_at[res_a_[best]] = std::max(s.free_at[res_a_[best]], finish);
    advance_resource(s, res_a_[best]);
    mark_dirty(s, res_a_[best]);
  }
  if (res_b_[best] != kNone32) {
    s.free_at[res_b_[best]] = std::max(s.free_at[res_b_[best]], finish);
    advance_resource(s, res_b_[best]);
    mark_dirty(s, res_b_[best]);
  }
  // Targeted invalidation — the commit can only change the candidacy of:
  // ops behind it on its own resources (heads and clocks moved, covered
  // above); its prerequisite dependents (now satisfiable); and the exec one
  // of whose input slots it feeds (that slot's earliest live arrival may
  // have dropped). Resource-free hand-offs are rescanned every step.
  for (std::uint32_t i = dep_begin_[best]; i < dep_begin_[best + 1]; ++i) {
    const std::uint32_t d = dep_ops_[i];
    if (res_a_[d] != kNone32) mark_dirty(s, res_a_[d]);
    if (res_b_[d] != kNone32) mark_dirty(s, res_b_[d]);
  }
  if (feed_slot_[best] != kNone32) {
    const std::uint32_t e = feed_exec_[best];
    if (res_a_[e] != kNone32) mark_dirty(s, res_a_[e]);
  }
  return true;
}

CrashResult ReplayEngine::collect(const Scratch& s) const {
  const TaskGraph& g = schedule_->graph();
  CrashResult result;
  result.order_deadlock = s.order_deadlock;
  result.order_relaxations = s.order_relaxations;
  result.completed.resize(g.task_count());
  result.finish.resize(g.task_count());
  result.success = true;
  double latency = 0.0;
  for (const TaskId t : g.all_tasks()) {
    const std::size_t total = schedule_->total_replicas(t);
    result.completed[t.index()].assign(total, false);
    result.finish[t.index()].assign(total, kInf);
    double first = kInf;
    for (ReplicaIndex r = 0; r < total; ++r) {
      const std::uint32_t op = exec_ops_[exec_op_begin_[t.index()] + r];
      if (s.state[op] == kDone) {
        result.completed[t.index()][r] = true;
        result.finish[t.index()][r] = s.finish[op];
        first = std::min(first, s.finish[op]);
      }
    }
    if (first == kInf) {
      result.success = false;
    } else {
      latency = std::max(latency, first);
    }
  }
  result.latency = result.success ? latency : kInf;

  std::size_t delivered = 0;
  for (std::uint32_t op = 0; op < op_count_; ++op)
    if (counts_message_[op] != 0 && s.state[op] == kDone) ++delivered;
  result.delivered_messages = delivered;
  return result;
}

void ReplayEngine::record_fault_free() {
  const std::size_t max_snapshots = options_.max_snapshots;
  const CrashScenario none = CrashScenario::none(m_);
  Scratch s;

  // Pass 1: count events on the fault-free timeline and record the
  // committed frontier (running max finish over owned ops) after each —
  // the scalar whose crossing of a crash time invalidates a snapshot.
  reset_pristine(s);
  commit_count_ = 0;
  std::vector<double> frontier;
  {
    double running = 0.0;
    std::uint32_t committed = kNone32;
    while (commit_next(s, none, &committed)) {
      ++commit_count_;
      if (owner_[committed] >= 0)
        running = std::max(running, s.finish[committed]);
      frontier.push_back(running);
    }
  }
  CAFT_CHECK_MSG(!s.order_deadlock,
                 "fault-free replay of a complete schedule deadlocked");

  if (commit_count_ == 0) return;

  // Snapshot placement: the 1-based commit counts after which to snapshot.
  // Adaptive mode places one snapshot per target time (the last event whose
  // frontier has not passed it — the latest state still valid for a crash
  // at that time); uniform mode spaces snapshots evenly over the events.
  // The final state is always snapshotted, so never-crashing scenarios
  // finish in one restore. Placement never affects replay results.
  std::vector<std::size_t> marks;
  if (!options_.snapshot_times.empty()) {
    for (const double target : options_.snapshot_times) {
      if (std::isnan(target) || target <= 0.0) continue;
      const auto it =
          std::upper_bound(frontier.begin(), frontier.end(), target);
      const auto commits =
          static_cast<std::size_t>(it - frontier.begin());
      if (commits > 0) marks.push_back(commits);
    }
  } else {
    const std::size_t interval =
        std::max<std::size_t>(1, (commit_count_ + max_snapshots - 1) /
                                     max_snapshots);
    for (std::size_t i = interval; i < commit_count_; i += interval)
      marks.push_back(i);
  }
  marks.push_back(commit_count_);
  std::sort(marks.begin(), marks.end());
  marks.erase(std::unique(marks.begin(), marks.end()), marks.end());
  if (marks.size() > max_snapshots) {
    // Thin deterministically to the budget, keeping the final state.
    std::vector<std::size_t> thinned;
    thinned.reserve(max_snapshots);
    for (std::size_t i = 0; i < max_snapshots; ++i)
      thinned.push_back(
          marks[((i + 1) * marks.size()) / max_snapshots - 1]);
    thinned.back() = marks.back();
    marks = std::move(thinned);
    marks.erase(std::unique(marks.begin(), marks.end()), marks.end());
  }

  // Pass 2: replay again, snapshotting at the chosen commit counts.
  reset_pristine(s);
  std::vector<double> per_proc_max(m_, 0.0);
  std::size_t done = 0;
  std::size_t next_mark = 0;
  std::uint32_t committed = kNone32;
  while (commit_next(s, none, &committed)) {
    ++done;
    if (owner_[committed] >= 0) {
      auto& peak = per_proc_max[static_cast<std::size_t>(owner_[committed])];
      peak = std::max(peak, s.finish[committed]);
    }
    if (next_mark < marks.size() && done == marks[next_mark]) {
      ++next_mark;
      Snapshot snap;
      snap.per_proc_max = per_proc_max;
      snap.state = s.state;
      snap.start = s.start;
      snap.finish = s.finish;
      snap.head = s.head;
      snap.free_at = s.free_at;
      for (const std::uint32_t op : initial_handoffs_)
        if (s.state[op] == kPending) snap.pending_handoffs.push_back(op);
      snapshots_.push_back(std::move(snap));
    }
  }
}

CrashResult ReplayEngine::replay(const CrashScenario& scenario) const {
  Scratch scratch;
  return replay(scenario, scratch);
}

void ReplayEngine::replay_uncached(const CrashScenario& scenario,
                                   Scratch& scratch) const {
  const std::size_t snap = pick_snapshot(scenario);
  if (snap == static_cast<std::size_t>(-1)) {
    reset_pristine(scratch);
    if (m_ <= 64) {
      // Dead-from-start closure as one linear bitmask pass (the worklist
      // form of kill_dead_processors + propagate_dead computes the same
      // least fixpoint; see close_dead_mask).
      std::uint64_t dead_mask = 0;
      for (std::size_t p = 0; p < m_; ++p)
        if (scenario.dead_from_start(
                ProcId(static_cast<ProcId::value_type>(p))))
          dead_mask |= std::uint64_t{1} << p;
      if (dead_mask != 0) close_dead_mask(scratch, dead_mask);
    } else {
      // No single dead word: pre-kill each dead processor's ops from the
      // kill lists and close over the consequences with the worklist.
      for (std::size_t p = 0; p < m_; ++p) {
        if (!scenario.dead_from_start(
                ProcId(static_cast<ProcId::value_type>(p))))
          continue;
        for (std::uint32_t i = kill_begin_[p]; i < kill_begin_[p + 1]; ++i)
          if (scratch.state[kill_ops_[i]] == kPending)
            kill(scratch, kill_ops_[i]);
      }
      propagate(scratch);
    }
  } else {
    restore_snapshot(scratch, snapshots_[snap]);
  }
  while (commit_next(scratch, scenario, nullptr))
    if (scratch.died) propagate(scratch);
  scratch.result = collect(scratch);
}

ReplayEngine::KeyKind ReplayEngine::classify(
    const CrashScenario& scenario, bool quantize_enabled,
    std::vector<std::uint64_t>& key) const {
  key.clear();
  if (m_ > 64) return KeyKind::kNotMemoisable;
  const double width = options_.theta_bucket_width;
  std::uint64_t mask = 0;
  bool exact = true;
  bool quantizable = quantize_enabled && width > 0.0 && !options_.exact;
  key.push_back(0);
  for (std::size_t p = 0; p < m_; ++p) {
    const double t =
        scenario.crash_time(ProcId(static_cast<ProcId::value_type>(p)));
    if (t <= 0.0) {
      mask |= std::uint64_t{1} << p;
    } else if (t != kInf) {
      // A finite positive crash time rules out the exact dead-set key; it
      // stays memoisable only via a θ bucket small enough to pack.
      exact = false;
      if (!quantizable) return KeyKind::kNotMemoisable;
      const double bucket = std::floor(t / width);
      if (!(bucket < 4294967295.0)) return KeyKind::kNotMemoisable;
      key.push_back((std::uint64_t{p} << 32) |
                    static_cast<std::uint64_t>(bucket));
    }
  }
  key[0] = mask;
  return exact ? KeyKind::kExactKey : KeyKind::kQuantizedKey;
}

CrashScenario ReplayEngine::canonical_scenario(
    const CrashScenario& scenario) const {
  const double width = options_.theta_bucket_width;
  std::vector<double> times(m_);
  for (std::size_t p = 0; p < m_; ++p) {
    const double t =
        scenario.crash_time(ProcId(static_cast<ProcId::value_type>(p)));
    if (t <= 0.0)
      times[p] = 0.0;  // dead from the start; the exact instant <= 0 is
                       // unobservable (all owned ops are pre-killed)
    else if (t == kInf)
      times[p] = kInf;
    else
      times[p] = (std::floor(t / width) + 0.5) * width;  // bucket midpoint
  }
  return CrashScenario(std::move(times));
}

const CrashResult& ReplayEngine::replay(const CrashScenario& scenario,
                                        Scratch& scratch,
                                        SharedReplayMemo* shared) const {
  CAFT_CHECK_MSG(scenario.proc_count() == m_,
                 "scenario size does not match the platform");
  if (scratch.bound_generation != generation_) {
    // A Scratch reused across engines must not leak another schedule's
    // memoised results.
    scratch.bound_generation = generation_;
    scratch.memo.clear();
    scratch.shared_hold.reset();
  }
  if (shared != nullptr) {
    shared->bind(generation_);
    // Claim this Scratch's hazard-pointer slot on first contact with this
    // memo (keyed by the memo's process-unique id, so a new memo at a dead
    // one's address cannot inherit a stale slot).
    if (scratch.hazard_memo_id != shared->memo_id_) {
      scratch.hazard_memo_id = shared->memo_id_;
      scratch.hazard_slot = shared->acquire_reader_slot();
    }
  }

  const KeyKind kind =
      classify(scenario, /*quantize_enabled=*/shared != nullptr, scratch.key);

  if (kind == KeyKind::kNotMemoisable) {
    replay_uncached(scenario, scratch);
    return scratch.result;
  }

  if (shared != nullptr) {
    // Campaign-wide memo. The value is a pure function of the key (the
    // quantized key replays its canonical representative), so whichever
    // worker populates an entry first, every hit returns identical bits.
    if (auto hit = shared->find(scratch.key, scratch.hazard_slot)) {
      scratch.shared_hold = std::move(hit);
      return *scratch.shared_hold;
    }
    if (kind == KeyKind::kQuantizedKey)
      replay_uncached(canonical_scenario(scenario), scratch);
    else
      replay_uncached(scenario, scratch);
    auto value =
        std::make_shared<const CrashResult>(std::move(scratch.result));
    shared->insert(scratch.key, value, scratch.hazard_slot);
    scratch.shared_hold = std::move(value);
    return *scratch.shared_hold;
  }

  // Per-Scratch dead-set memo (exact keys only: without a shared memo the
  // quantized path is pointless — each worker would approximate without
  // amortizing across threads).
  if (kind == KeyKind::kQuantizedKey || options_.memo_capacity == 0) {
    replay_uncached(scenario, scratch);
    return scratch.result;
  }
  const std::uint64_t mask = scratch.key[0];
  ++scratch.lookups;
  const auto hit = scratch.memo.find(mask);
  if (hit != scratch.memo.end()) {
    ++scratch.hits;
    return hit->second;
  }
  replay_uncached(scenario, scratch);
  // Bounded insert with clear-on-threshold eviction: each entry stores a
  // full CrashResult, so a long campaign over a large mask space would
  // otherwise grow the memo without bound. unordered_map element addresses
  // are stable, so the returned reference survives later insertions; a
  // clear can only happen on a later replay call, after the reference's
  // validity window has ended.
  if (scratch.memo.size() >= options_.memo_capacity) {
    scratch.memo.clear();
    ++scratch.evictions;
  }
  return scratch.memo.emplace(mask, scratch.result).first->second;
}

}  // namespace caft
