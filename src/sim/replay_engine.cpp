#include "sim/replay_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.hpp"

namespace caft {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kNone32 = 0xffffffffu;

// Op kinds/states; values mirror the naive replay's enums.
constexpr std::uint8_t kExec = 0;
constexpr std::uint8_t kWire = 1;
constexpr std::uint8_t kSegment = 2;
constexpr std::uint8_t kReception = 3;
constexpr std::uint8_t kHandoff = 4;

constexpr std::uint8_t kPending = 0;
constexpr std::uint8_t kDone = 1;
constexpr std::uint8_t kDead = 2;

}  // namespace

double ReplayEngine::first_crash(const CrashScenario& scenario) {
  double earliest = kInf;
  for (std::size_t p = 0; p < scenario.proc_count(); ++p)
    earliest = std::min(
        earliest,
        scenario.crash_time(ProcId(static_cast<ProcId::value_type>(p))));
  return earliest;
}

SharedReplayMemo::SharedReplayMemo(SharedMemoOptions options)
    : shards_(std::max<std::size_t>(1, options.shards)),
      shard_capacity_(options.capacity / std::max<std::size_t>(1,
                                                               options.shards)) {
  // A capacity smaller than the shard count still leaves one slot per
  // shard, so tiny caps degrade to "remember the last result per shard"
  // rather than disabling memoisation outright.
  if (options.capacity > 0 && shard_capacity_ == 0) shard_capacity_ = 1;
}

void SharedReplayMemo::bind(std::uint64_t generation) {
  std::uint64_t expected = 0;
  if (bound_generation_.compare_exchange_strong(expected, generation,
                                                std::memory_order_relaxed))
    return;
  CAFT_CHECK_MSG(expected == generation,
                 "SharedReplayMemo is bound to a different ReplayEngine — "
                 "create one memo per (campaign, engine)");
}

SharedReplayMemo::Shard& SharedReplayMemo::shard_for(const Key& key) {
  return shards_[KeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const CrashResult> SharedReplayMemo::find(const Key& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.lookups;
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  ++shard.hits;
  return it->second;
}

void SharedReplayMemo::insert(const Key& key,
                              std::shared_ptr<const CrashResult> value) {
  if (shard_capacity_ == 0) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.map.size() >= shard_capacity_ && shard.map.count(key) == 0) {
    // Clear-on-threshold: O(1) amortized, keeps the memo bounded while the
    // hot keys of the next waves repopulate it immediately. Outstanding
    // shared_ptr references stay valid.
    shard.map.clear();
    ++shard.evictions;
  }
  shard.map.emplace(key, std::move(value));
  ++shard.insertions;
}

SharedReplayMemo::Stats SharedReplayMemo::stats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.lookups += shard.lookups;
    stats.hits += shard.hits;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.entries += shard.map.size();
  }
  return stats;
}

ReplayEngine::ReplayEngine(const Schedule& schedule, const CostModel& costs,
                           ReplayEngineOptions options)
    : schedule_(&schedule), options_(std::move(options)) {
  (void)costs;  // durations come from the committed schedule, as in the
                // naive replay; the parameter keeps the two call shapes
                // symmetric.
  CAFT_CHECK_MSG(schedule.complete(), "schedule is incomplete");
  CAFT_CHECK_MSG(options_.max_snapshots > 0,
                 "the engine needs at least one snapshot slot");
  CAFT_CHECK_MSG(options_.theta_bucket_width >= 0.0 &&
                     !std::isnan(options_.theta_bucket_width),
                 "theta bucket width must be non-negative");
  static std::atomic<std::uint64_t> next_generation{1};
  generation_ = next_generation.fetch_add(1, std::memory_order_relaxed);
  build_template();
  record_fault_free();
}

void ReplayEngine::build_template() {
  const TaskGraph& g = schedule_->graph();
  m_ = schedule_->platform().proc_count();
  const std::size_t link_count = schedule_->platform().topology().link_count();
  resource_count_ = 3 * m_ + link_count;
  queue_.assign(resource_count_, {});

  const auto exec_res = [&](ProcId p) { return p.index(); };
  const auto send_res = [&](ProcId p) { return m_ + p.index(); };
  const auto recv_res = [&](ProcId p) { return 2 * m_ + p.index(); };
  const auto link_res = [&](LinkId l) { return 3 * m_ + l.index(); };

  // Build in exactly the order the naive replay does, so op ids (the
  // deterministic tie-break of the event loop) coincide.
  struct Keyed {
    double key;
    std::size_t seq;
    std::uint32_t op;
    std::size_t res;
  };
  std::vector<Keyed> keyed;

  const auto push_op = [&](std::uint8_t kind, double duration,
                           std::size_t res_a, std::size_t res_b,
                           std::uint32_t prereq, bool prereq_start,
                           std::int32_t owner) -> std::uint32_t {
    const auto id = static_cast<std::uint32_t>(kind_.size());
    kind_.push_back(kind);
    prereq_is_start_.push_back(prereq_start ? 1 : 0);
    counts_message_.push_back(0);
    duration_.push_back(duration);
    res_a_.push_back(res_a == static_cast<std::size_t>(-1)
                         ? kNone32
                         : static_cast<std::uint32_t>(res_a));
    res_b_.push_back(res_b == static_cast<std::size_t>(-1)
                         ? kNone32
                         : static_cast<std::uint32_t>(res_b));
    prereq_.push_back(prereq);
    owner_.push_back(owner);
    feed_slot_.push_back(kNone32);
    feed_exec_.push_back(kNone32);
    return id;
  };

  // Execution ops.
  exec_op_.assign(g.task_count(), {});
  std::size_t seq = 0;
  for (const TaskId t : g.all_tasks()) {
    const std::size_t total = schedule_->total_replicas(t);
    exec_op_[t.index()].resize(total);
    for (ReplicaIndex r = 0; r < total; ++r) {
      const ReplicaAssignment& a = schedule_->replica(t, r);
      const std::uint32_t id =
          push_op(kExec, a.finish - a.start, exec_res(a.proc),
                  static_cast<std::size_t>(-1), kNone32, false,
                  static_cast<std::int32_t>(a.proc.index()));
      exec_op_[t.index()][r] = id;
      keyed.push_back({a.start, seq++, id, exec_res(a.proc)});
    }
  }

  // Communication chains; comm_to_op maps each comm to its terminating op.
  std::vector<std::uint32_t> comm_to_op(schedule_->comms().size(), kNone32);
  for (std::size_t ci = 0; ci < schedule_->comms().size(); ++ci) {
    const CommAssignment& c = schedule_->comms()[ci];
    const std::uint32_t source_exec =
        exec_op_[c.from.task.index()][c.from.replica];

    if (c.intra() || schedule_->model() == CommModelKind::kMacroDataflow) {
      const std::uint32_t id =
          push_op(kHandoff, c.times.arrival - c.times.link_start,
                  static_cast<std::size_t>(-1), static_cast<std::size_t>(-1),
                  source_exec, false, -1);
      counts_message_[id] = c.intra() ? 0 : 1;
      comm_to_op[ci] = id;
      initial_handoffs_.push_back(id);
      continue;
    }

    // One-port chain: wire, optional extra segments, reception.
    CAFT_CHECK_MSG(!c.times.segments.empty(),
                   "one-port inter-processor comm without segments");
    std::uint32_t prev = kNone32;
    for (std::size_t si = 0; si < c.times.segments.size(); ++si) {
      const LinkOccupancy& seg = c.times.segments[si];
      std::uint32_t id;
      if (si == 0) {
        // A wire dies with its *sender*; forwarding through a dead router
        // (non-final hop toward the link's far end) is handled by the kill
        // lists below.
        id = push_op(kWire, seg.finish - seg.start, send_res(c.src_proc),
                     link_res(seg.link), source_exec, false,
                     static_cast<std::int32_t>(c.src_proc.index()));
        keyed.push_back({seg.start, seq++, id, send_res(c.src_proc)});
        keyed.push_back({seg.start, seq, id, link_res(seg.link)});
      } else {
        id = push_op(kSegment, seg.finish - seg.start, link_res(seg.link),
                     static_cast<std::size_t>(-1), prev, false, -1);
        keyed.push_back({seg.start, seq++, id, link_res(seg.link)});
      }
      prev = id;
    }
    const std::uint32_t recv =
        push_op(kReception, c.times.arrival - c.times.recv_start,
                recv_res(c.dst_proc), static_cast<std::size_t>(-1), prev,
                /*prereq_start=*/true,
                static_cast<std::int32_t>(c.dst_proc.index()));
    counts_message_[recv] = 1;
    comm_to_op[ci] = recv;
    keyed.push_back({c.times.recv_start, seq++, recv, recv_res(c.dst_proc)});
  }

  op_count_ = kind_.size();

  // Resource queues in committed order (same sort as the naive replay).
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  });
  for (const Keyed& k : keyed) queue_[k.res].push_back(k.op);

  // Disjunctive input slots: one slot per (exec op, in-edge), flattened.
  exec_slot_begin_.assign(op_count_ + 1, 0);
  std::vector<std::vector<std::vector<std::uint32_t>>> inputs_by_exec(
      op_count_);
  for (const TaskId t : g.all_tasks()) {
    const auto in = g.in_edges(t);
    const std::size_t total = schedule_->total_replicas(t);
    for (ReplicaIndex r = 0; r < total; ++r) {
      const std::uint32_t eop = exec_op_[t.index()][r];
      inputs_by_exec[eop].assign(in.size(), {});
      for (const std::size_t ci : schedule_->incoming_comms(t, r)) {
        const CommAssignment& c = schedule_->comms()[ci];
        const auto pos = std::find(in.begin(), in.end(), c.edge) - in.begin();
        CAFT_CHECK(static_cast<std::size_t>(pos) < in.size());
        CAFT_CHECK(comm_to_op[ci] != kNone32);
        inputs_by_exec[eop][static_cast<std::size_t>(pos)].push_back(
            comm_to_op[ci]);
      }
    }
  }
  slot_input_begin_.assign(1, 0);
  for (std::uint32_t op = 0; op < op_count_; ++op) {
    exec_slot_begin_[op] = static_cast<std::uint32_t>(
        slot_input_begin_.size() - 1);
    for (const auto& slot : inputs_by_exec[op]) {
      const std::uint32_t slot_id =
          static_cast<std::uint32_t>(slot_input_begin_.size() - 1);
      for (const std::uint32_t in_op : slot) {
        slot_inputs_.push_back(in_op);
        // Every terminating op feeds exactly one (exec, edge) slot.
        feed_slot_[in_op] = slot_id;
        feed_exec_[in_op] = op;
      }
      slot_input_begin_.push_back(
          static_cast<std::uint32_t>(slot_inputs_.size()));
    }
  }
  exec_slot_begin_[op_count_] =
      static_cast<std::uint32_t>(slot_input_begin_.size() - 1);

  // Prerequisite dependents (reverse of prereq_), CSR.
  dep_begin_.assign(op_count_ + 1, 0);
  for (std::uint32_t op = 0; op < op_count_; ++op)
    if (prereq_[op] != kNone32) ++dep_begin_[prereq_[op] + 1];
  for (std::size_t i = 1; i <= op_count_; ++i) dep_begin_[i] += dep_begin_[i - 1];
  dep_ops_.assign(dep_begin_[op_count_], 0);
  {
    std::vector<std::uint32_t> cursor(dep_begin_.begin(),
                                      dep_begin_.end() - 1);
    for (std::uint32_t op = 0; op < op_count_; ++op)
      if (prereq_[op] != kNone32) dep_ops_[cursor[prereq_[op]]++] = op;
  }

  // Per-processor kill lists: which ops die when p is dead from the start.
  // Mirrors the naive kill_dead_processors case analysis exactly.
  const Topology& topology = schedule_->platform().topology();
  std::vector<std::vector<std::uint32_t>> kills(m_);
  const auto link_of = [&](std::size_t res) -> const LinkDef& {
    return topology.link(
        LinkId(static_cast<LinkId::value_type>(res - 3 * m_)));
  };
  for (std::uint32_t op = 0; op < op_count_; ++op) {
    switch (kind_[op]) {
      case kExec:
        kills[static_cast<std::size_t>(owner_[op])].push_back(op);
        break;
      case kWire:
        kills[res_a_[op] - m_].push_back(op);  // dies with its sender port
        break;
      case kSegment: {
        const LinkDef& def = link_of(res_a_[op]);
        kills[def.from.index()].push_back(op);
        break;
      }
      case kReception: {
        const std::size_t port = res_a_[op] - 2 * m_;
        kills[port].push_back(op);
        break;
      }
      default:
        break;  // hand-offs die only via propagation
    }
  }
  // Non-final wires and segments also die with the router they forward to.
  // "Non-final" = some segment lists this op as its prerequisite.
  std::vector<std::uint8_t> has_segment_successor(op_count_, 0);
  for (std::uint32_t op = 0; op < op_count_; ++op)
    if (kind_[op] == kSegment && prereq_[op] != kNone32)
      has_segment_successor[prereq_[op]] = 1;
  for (std::uint32_t op = 0; op < op_count_; ++op) {
    if (!has_segment_successor[op]) continue;
    if (kind_[op] == kWire) {
      kills[link_of(res_b_[op]).to.index()].push_back(op);
    } else if (kind_[op] == kSegment) {
      kills[link_of(res_a_[op]).to.index()].push_back(op);
    }
  }

  kill_begin_.assign(m_ + 1, 0);
  for (std::size_t p = 0; p < m_; ++p)
    kill_begin_[p + 1] =
        kill_begin_[p] + static_cast<std::uint32_t>(kills[p].size());
  kill_ops_.reserve(kill_begin_[m_]);
  for (std::size_t p = 0; p < m_; ++p)
    kill_ops_.insert(kill_ops_.end(), kills[p].begin(), kills[p].end());
}

void ReplayEngine::reset_pristine(Scratch& s) const {
  s.state.assign(op_count_, kPending);
  // start/finish need no clearing: they are only ever read for ops in the
  // kDone state, which always receive fresh values at their commit.
  s.start.resize(op_count_);
  s.finish.resize(op_count_);
  s.head.assign(resource_count_, 0);
  s.free_at.assign(resource_count_, 0.0);
  s.handoffs.assign(initial_handoffs_.begin(), initial_handoffs_.end());
  s.dead_inputs.assign(slot_input_begin_.size() - 1, 0);
  s.worklist.clear();
  s.order_relaxations = 0;
  s.order_deadlock = false;
  s.died = false;
}

void ReplayEngine::restore_snapshot(Scratch& s, const Snapshot& snap) const {
  s.state = snap.state;
  s.start = snap.start;
  s.finish = snap.finish;
  s.head = snap.head;
  s.free_at = snap.free_at;
  s.handoffs = snap.pending_handoffs;
  // No op is dead anywhere on the fault-free prefix.
  s.dead_inputs.assign(slot_input_begin_.size() - 1, 0);
  s.worklist.clear();
  s.order_relaxations = 0;
  s.order_deadlock = false;
  s.died = false;
}

std::size_t ReplayEngine::pick_snapshot(const CrashScenario& scenario) const {
  // A processor dead (or dying) at t <= 0 invalidates the whole prefix: the
  // naive replay pre-kills its ops before the first event.
  for (std::size_t p = 0; p < m_; ++p)
    if (scenario.crash_time(ProcId(static_cast<ProcId::value_type>(p))) <=
        0.0)
      return static_cast<std::size_t>(-1);
  const auto valid = [&](const Snapshot& snap) {
    for (std::size_t p = 0; p < m_; ++p)
      if (snap.per_proc_max[p] >
          scenario.crash_time(ProcId(static_cast<ProcId::value_type>(p))))
        return false;
    return true;
  };
  // Validity is monotone (prefix maxima only grow): binary-search the
  // latest valid snapshot.
  std::size_t lo = 0;
  std::size_t hi = snapshots_.size();
  std::size_t best = static_cast<std::size_t>(-1);
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (valid(snapshots_[mid])) {
      best = mid;
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return best;
}

void ReplayEngine::kill(Scratch& s, std::uint32_t op) const {
  s.state[op] = kDead;
  s.worklist.push_back(op);
}

void ReplayEngine::propagate(Scratch& s) const {
  // Worklist closure of the naive propagate_dead fixpoint: a dead
  // prerequisite kills its dependents; an exec dies when some in-edge has
  // every input dead. The resulting state set is the same least fixpoint
  // the naive full-scan loop computes.
  while (!s.worklist.empty()) {
    const std::uint32_t op = s.worklist.back();
    s.worklist.pop_back();
    for (std::uint32_t i = dep_begin_[op]; i < dep_begin_[op + 1]; ++i) {
      const std::uint32_t d = dep_ops_[i];
      if (s.state[d] == kPending) kill(s, d);
    }
    if (feed_slot_[op] != kNone32) {
      const std::uint32_t slot = feed_slot_[op];
      const std::uint32_t total =
          slot_input_begin_[slot + 1] - slot_input_begin_[slot];
      if (++s.dead_inputs[slot] == total) {
        const std::uint32_t e = feed_exec_[op];
        if (s.state[e] == kPending) kill(s, e);
      }
    }
    // A settled op at a queue head unblocks whatever sits behind it.
    if (res_a_[op] != kNone32) advance_resource(s, res_a_[op]);
    if (res_b_[op] != kNone32) advance_resource(s, res_b_[op]);
  }
}

void ReplayEngine::advance_resource(Scratch& s, std::uint32_t res) const {
  const auto& q = queue_[res];
  std::uint32_t h = s.head[res];
  while (h < q.size() && s.state[q[h]] != kPending) ++h;
  s.head[res] = h;
}

bool ReplayEngine::at_heads(const Scratch& s, std::uint32_t op) const {
  const std::uint32_t a = res_a_[op];
  if (a != kNone32 &&
      (s.head[a] >= queue_[a].size() || queue_[a][s.head[a]] != op))
    return false;
  const std::uint32_t b = res_b_[op];
  if (b != kNone32 &&
      (s.head[b] >= queue_[b].size() || queue_[b][s.head[b]] != op))
    return false;
  return true;
}

bool ReplayEngine::runnable(const Scratch& s, std::uint32_t op,
                            double& ready) const {
  ready = 0.0;
  const std::uint32_t pre = prereq_[op];
  if (pre != kNone32) {
    if (s.state[pre] != kDone) return false;
    ready = prereq_is_start_[op] ? s.start[pre] : s.finish[pre];
  }
  if (kind_[op] == kExec) {
    for (std::uint32_t slot = exec_slot_begin_[op];
         slot < exec_slot_begin_[op + 1]; ++slot) {
      double first = kInf;
      for (std::uint32_t i = slot_input_begin_[slot];
           i < slot_input_begin_[slot + 1]; ++i) {
        const std::uint32_t in_op = slot_inputs_[i];
        if (s.state[in_op] == kDone)
          first = std::min(first, s.finish[in_op]);
      }
      if (first == kInf) return false;  // no live input yet for this edge
      ready = std::max(ready, first);
    }
  }
  if (res_a_[op] != kNone32) ready = std::max(ready, s.free_at[res_a_[op]]);
  if (res_b_[op] != kNone32) ready = std::max(ready, s.free_at[res_b_[op]]);
  return true;
}

bool ReplayEngine::commit_next(Scratch& s, const CrashScenario& scenario,
                               std::uint32_t* committed) const {
  s.died = false;
  std::uint32_t best = kNone32;
  double best_start = kInf;
  // Discrete-event step, exactly the naive selection: among the queue-head
  // operations (plus resource-free hand-offs) whose prerequisites are met,
  // commit the one with the earliest candidate start; lowest op id breaks
  // ties.
  const auto consider = [&](std::uint32_t op) {
    if (s.state[op] != kPending) return;
    if (!at_heads(s, op)) return;  // a wire must head *both* of its queues
    double ready = 0.0;
    if (!runnable(s, op, ready)) return;
    if (ready < best_start || (ready == best_start && op < best)) {
      best_start = ready;
      best = op;
    }
  };
  for (std::size_t res = 0; res < resource_count_; ++res)
    if (s.head[res] < queue_[res].size())
      consider(queue_[res][s.head[res]]);
  for (std::size_t hi = 0; hi < s.handoffs.size();) {
    if (s.state[s.handoffs[hi]] != kPending) {
      s.handoffs[hi] = s.handoffs.back();  // drop settled hand-offs
      s.handoffs.pop_back();
      continue;
    }
    consider(s.handoffs[hi]);
    ++hi;
  }

  if (best == kNone32) {
    // Strict committed order stuck (circular wait through rerouted inputs —
    // possible only under crashes): any prerequisite-ready op may jump the
    // queue; the resource clocks still serialize everything.
    for (std::uint32_t op = 0; op < op_count_; ++op) {
      if (s.state[op] != kPending) continue;
      double ready = 0.0;
      if (!runnable(s, op, ready)) continue;
      if (ready < best_start || (ready == best_start && op < best)) {
        best_start = ready;
        best = op;
      }
    }
    if (best != kNone32) ++s.order_relaxations;
  }
  if (best == kNone32) {
    // Nothing can ever run again: remaining pending work is lost.
    for (std::uint32_t op = 0; op < op_count_; ++op)
      if (s.state[op] == kPending) {
        s.order_deadlock = true;
        break;
      }
    if (s.order_deadlock)
      for (std::uint32_t op = 0; op < op_count_; ++op)
        if (s.state[op] == kPending) s.state[op] = kDead;
    return false;
  }

  s.start[best] = best_start;
  const double finish = best_start + duration_[best];
  s.finish[best] = finish;
  if (committed != nullptr) *committed = best;

  // Crash-at-θ: work in flight when the owner dies is lost, and the owner's
  // resources are gone for good.
  const std::int32_t owner = owner_[best];
  if (owner >= 0 &&
      finish > scenario.crash_time(
                   ProcId(static_cast<ProcId::value_type>(owner)))) {
    kill(s, best);
    s.died = true;
    const auto p = static_cast<std::size_t>(owner);
    s.free_at[p] = kInf;           // exec resource
    s.free_at[m_ + p] = kInf;      // send port
    s.free_at[2 * m_ + p] = kInf;  // receive port
    // The caller runs propagate(), which advances this op's resources and
    // those of everything that dies with it.
    return true;
  }

  s.state[best] = kDone;
  if (res_a_[best] != kNone32) {
    s.free_at[res_a_[best]] = std::max(s.free_at[res_a_[best]], finish);
    advance_resource(s, res_a_[best]);
  }
  if (res_b_[best] != kNone32) {
    s.free_at[res_b_[best]] = std::max(s.free_at[res_b_[best]], finish);
    advance_resource(s, res_b_[best]);
  }
  return true;
}

CrashResult ReplayEngine::collect(const Scratch& s) const {
  const TaskGraph& g = schedule_->graph();
  CrashResult result;
  result.order_deadlock = s.order_deadlock;
  result.order_relaxations = s.order_relaxations;
  result.completed.resize(g.task_count());
  result.finish.resize(g.task_count());
  result.success = true;
  double latency = 0.0;
  for (const TaskId t : g.all_tasks()) {
    const std::size_t total = schedule_->total_replicas(t);
    result.completed[t.index()].assign(total, false);
    result.finish[t.index()].assign(total, kInf);
    double first = kInf;
    for (ReplicaIndex r = 0; r < total; ++r) {
      const std::uint32_t op = exec_op_[t.index()][r];
      if (s.state[op] == kDone) {
        result.completed[t.index()][r] = true;
        result.finish[t.index()][r] = s.finish[op];
        first = std::min(first, s.finish[op]);
      }
    }
    if (first == kInf) {
      result.success = false;
    } else {
      latency = std::max(latency, first);
    }
  }
  result.latency = result.success ? latency : kInf;

  std::size_t delivered = 0;
  for (std::uint32_t op = 0; op < op_count_; ++op)
    if (counts_message_[op] != 0 && s.state[op] == kDone) ++delivered;
  result.delivered_messages = delivered;
  return result;
}

void ReplayEngine::record_fault_free() {
  const std::size_t max_snapshots = options_.max_snapshots;
  const CrashScenario none = CrashScenario::none(m_);
  Scratch s;

  // Pass 1: count events on the fault-free timeline and record the
  // committed frontier (running max finish over owned ops) after each —
  // the scalar whose crossing of a crash time invalidates a snapshot.
  reset_pristine(s);
  commit_count_ = 0;
  std::vector<double> frontier;
  {
    double running = 0.0;
    std::uint32_t committed = kNone32;
    while (commit_next(s, none, &committed)) {
      ++commit_count_;
      if (owner_[committed] >= 0)
        running = std::max(running, s.finish[committed]);
      frontier.push_back(running);
    }
  }
  CAFT_CHECK_MSG(!s.order_deadlock,
                 "fault-free replay of a complete schedule deadlocked");

  if (commit_count_ == 0) return;

  // Snapshot placement: the 1-based commit counts after which to snapshot.
  // Adaptive mode places one snapshot per target time (the last event whose
  // frontier has not passed it — the latest state still valid for a crash
  // at that time); uniform mode spaces snapshots evenly over the events.
  // The final state is always snapshotted, so never-crashing scenarios
  // finish in one restore. Placement never affects replay results.
  std::vector<std::size_t> marks;
  if (!options_.snapshot_times.empty()) {
    for (const double target : options_.snapshot_times) {
      if (std::isnan(target) || target <= 0.0) continue;
      const auto it =
          std::upper_bound(frontier.begin(), frontier.end(), target);
      const auto commits =
          static_cast<std::size_t>(it - frontier.begin());
      if (commits > 0) marks.push_back(commits);
    }
  } else {
    const std::size_t interval =
        std::max<std::size_t>(1, (commit_count_ + max_snapshots - 1) /
                                     max_snapshots);
    for (std::size_t i = interval; i < commit_count_; i += interval)
      marks.push_back(i);
  }
  marks.push_back(commit_count_);
  std::sort(marks.begin(), marks.end());
  marks.erase(std::unique(marks.begin(), marks.end()), marks.end());
  if (marks.size() > max_snapshots) {
    // Thin deterministically to the budget, keeping the final state.
    std::vector<std::size_t> thinned;
    thinned.reserve(max_snapshots);
    for (std::size_t i = 0; i < max_snapshots; ++i)
      thinned.push_back(
          marks[((i + 1) * marks.size()) / max_snapshots - 1]);
    thinned.back() = marks.back();
    marks = std::move(thinned);
    marks.erase(std::unique(marks.begin(), marks.end()), marks.end());
  }

  // Pass 2: replay again, snapshotting at the chosen commit counts.
  reset_pristine(s);
  std::vector<double> per_proc_max(m_, 0.0);
  std::size_t done = 0;
  std::size_t next_mark = 0;
  std::uint32_t committed = kNone32;
  while (commit_next(s, none, &committed)) {
    ++done;
    if (owner_[committed] >= 0) {
      auto& peak = per_proc_max[static_cast<std::size_t>(owner_[committed])];
      peak = std::max(peak, s.finish[committed]);
    }
    if (next_mark < marks.size() && done == marks[next_mark]) {
      ++next_mark;
      Snapshot snap;
      snap.per_proc_max = per_proc_max;
      snap.state = s.state;
      snap.start = s.start;
      snap.finish = s.finish;
      snap.head = s.head;
      snap.free_at = s.free_at;
      for (const std::uint32_t op : initial_handoffs_)
        if (s.state[op] == kPending) snap.pending_handoffs.push_back(op);
      snapshots_.push_back(std::move(snap));
    }
  }
}

CrashResult ReplayEngine::replay(const CrashScenario& scenario) const {
  Scratch scratch;
  return replay(scenario, scratch);
}

void ReplayEngine::replay_uncached(const CrashScenario& scenario,
                                   Scratch& scratch) const {
  const std::size_t snap = pick_snapshot(scenario);
  if (snap == static_cast<std::size_t>(-1)) {
    reset_pristine(scratch);
    // Pre-kill the ops of processors dead from the start, then close over
    // the consequences (starved replicas, broken chains) — the worklist
    // form of kill_dead_processors + propagate_dead.
    for (std::size_t p = 0; p < m_; ++p) {
      if (!scenario.dead_from_start(
              ProcId(static_cast<ProcId::value_type>(p))))
        continue;
      for (std::uint32_t i = kill_begin_[p]; i < kill_begin_[p + 1]; ++i)
        if (scratch.state[kill_ops_[i]] == kPending)
          kill(scratch, kill_ops_[i]);
    }
    propagate(scratch);
  } else {
    restore_snapshot(scratch, snapshots_[snap]);
  }
  while (commit_next(scratch, scenario, nullptr))
    if (scratch.died) propagate(scratch);
  scratch.result = collect(scratch);
}

ReplayEngine::KeyKind ReplayEngine::classify(
    const CrashScenario& scenario, bool quantize_enabled,
    std::vector<std::uint64_t>& key) const {
  key.clear();
  if (m_ > 64) return KeyKind::kNotMemoisable;
  const double width = options_.theta_bucket_width;
  std::uint64_t mask = 0;
  bool exact = true;
  bool quantizable = quantize_enabled && width > 0.0 && !options_.exact;
  key.push_back(0);
  for (std::size_t p = 0; p < m_; ++p) {
    const double t =
        scenario.crash_time(ProcId(static_cast<ProcId::value_type>(p)));
    if (t <= 0.0) {
      mask |= std::uint64_t{1} << p;
    } else if (t != kInf) {
      // A finite positive crash time rules out the exact dead-set key; it
      // stays memoisable only via a θ bucket small enough to pack.
      exact = false;
      if (!quantizable) return KeyKind::kNotMemoisable;
      const double bucket = std::floor(t / width);
      if (!(bucket < 4294967295.0)) return KeyKind::kNotMemoisable;
      key.push_back((std::uint64_t{p} << 32) |
                    static_cast<std::uint64_t>(bucket));
    }
  }
  key[0] = mask;
  return exact ? KeyKind::kExactKey : KeyKind::kQuantizedKey;
}

CrashScenario ReplayEngine::canonical_scenario(
    const CrashScenario& scenario) const {
  const double width = options_.theta_bucket_width;
  std::vector<double> times(m_);
  for (std::size_t p = 0; p < m_; ++p) {
    const double t =
        scenario.crash_time(ProcId(static_cast<ProcId::value_type>(p)));
    if (t <= 0.0)
      times[p] = 0.0;  // dead from the start; the exact instant <= 0 is
                       // unobservable (all owned ops are pre-killed)
    else if (t == kInf)
      times[p] = kInf;
    else
      times[p] = (std::floor(t / width) + 0.5) * width;  // bucket midpoint
  }
  return CrashScenario(std::move(times));
}

const CrashResult& ReplayEngine::replay(const CrashScenario& scenario,
                                        Scratch& scratch,
                                        SharedReplayMemo* shared) const {
  CAFT_CHECK_MSG(scenario.proc_count() == m_,
                 "scenario size does not match the platform");
  if (scratch.bound_generation != generation_) {
    // A Scratch reused across engines must not leak another schedule's
    // memoised results.
    scratch.bound_generation = generation_;
    scratch.memo.clear();
    scratch.shared_hold.reset();
  }
  if (shared != nullptr) shared->bind(generation_);

  const KeyKind kind =
      classify(scenario, /*quantize_enabled=*/shared != nullptr, scratch.key);

  if (kind == KeyKind::kNotMemoisable) {
    replay_uncached(scenario, scratch);
    return scratch.result;
  }

  if (shared != nullptr) {
    // Campaign-wide memo. The value is a pure function of the key (the
    // quantized key replays its canonical representative), so whichever
    // worker populates an entry first, every hit returns identical bits.
    if (auto hit = shared->find(scratch.key)) {
      scratch.shared_hold = std::move(hit);
      return *scratch.shared_hold;
    }
    if (kind == KeyKind::kQuantizedKey)
      replay_uncached(canonical_scenario(scenario), scratch);
    else
      replay_uncached(scenario, scratch);
    auto value =
        std::make_shared<const CrashResult>(std::move(scratch.result));
    shared->insert(scratch.key, value);
    scratch.shared_hold = std::move(value);
    return *scratch.shared_hold;
  }

  // Per-Scratch dead-set memo (exact keys only: without a shared memo the
  // quantized path is pointless — each worker would approximate without
  // amortizing across threads).
  if (kind == KeyKind::kQuantizedKey || options_.memo_capacity == 0) {
    replay_uncached(scenario, scratch);
    return scratch.result;
  }
  const std::uint64_t mask = scratch.key[0];
  ++scratch.lookups;
  const auto hit = scratch.memo.find(mask);
  if (hit != scratch.memo.end()) {
    ++scratch.hits;
    return hit->second;
  }
  replay_uncached(scenario, scratch);
  // Bounded insert with clear-on-threshold eviction: each entry stores a
  // full CrashResult, so a long campaign over a large mask space would
  // otherwise grow the memo without bound. unordered_map element addresses
  // are stable, so the returned reference survives later insertions; a
  // clear can only happen on a later replay call, after the reference's
  // validity window has ended.
  if (scratch.memo.size() >= options_.memo_capacity) {
    scratch.memo.clear();
    ++scratch.evictions;
  }
  return scratch.memo.emplace(mask, scratch.result).first->second;
}

}  // namespace caft
