#include "sim/resilience.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace caft {

namespace {

/// Applies one scenario and folds its outcome into the report.
void fold(const Schedule& schedule, const CostModel& costs,
          const std::vector<ProcId>& failed, ResilienceReport& report) {
  const CrashScenario scenario =
      CrashScenario::at_zero(schedule.platform().proc_count(), failed);
  const CrashResult result = simulate_crashes(schedule, costs, scenario);
  ++report.scenarios_tested;
  if (!result.success) {
    ++report.failures;
    report.resistant = false;
    if (report.witness.empty()) report.witness = failed;
  } else {
    report.worst_latency = std::max(report.worst_latency, result.latency);
    report.best_latency = std::min(report.best_latency, result.latency);
  }
}

}  // namespace

ResilienceReport check_resilience_exhaustive(const Schedule& schedule,
                                             const CostModel& costs,
                                             std::size_t failures) {
  const std::size_t m = schedule.platform().proc_count();
  CAFT_CHECK_MSG(failures <= m, "cannot fail more processors than exist");
  ResilienceReport report;
  report.best_latency = std::numeric_limits<double>::infinity();

  if (failures == 0) {
    fold(schedule, costs, {}, report);
    return report;
  }

  // Lexicographic combination walk over {0, ..., m-1} choose `failures`.
  std::vector<std::size_t> pick(failures);
  for (std::size_t i = 0; i < failures; ++i) pick[i] = i;
  while (true) {
    std::vector<ProcId> failed(failures);
    for (std::size_t i = 0; i < failures; ++i)
      failed[i] = ProcId(static_cast<ProcId::value_type>(pick[i]));
    fold(schedule, costs, failed, report);

    // Advance to the next combination.
    std::size_t i = failures;
    while (i > 0) {
      --i;
      if (pick[i] != i + m - failures) break;
      if (i == 0) {
        if (report.best_latency == std::numeric_limits<double>::infinity())
          report.best_latency = 0.0;
        return report;
      }
    }
    ++pick[i];
    for (std::size_t j = i + 1; j < failures; ++j) pick[j] = pick[j - 1] + 1;
  }
}

ResilienceReport check_resilience_sampled(const Schedule& schedule,
                                          const CostModel& costs,
                                          std::size_t failures,
                                          std::size_t samples, Rng& rng) {
  const std::size_t m = schedule.platform().proc_count();
  CAFT_CHECK_MSG(failures <= m, "cannot fail more processors than exist");
  ResilienceReport report;
  report.best_latency = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < samples; ++s) {
    const auto indices = rng.sample_without_replacement(m, failures);
    std::vector<ProcId> failed(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
      failed[i] = ProcId(static_cast<ProcId::value_type>(indices[i]));
    fold(schedule, costs, failed, report);
  }
  if (report.best_latency == std::numeric_limits<double>::infinity())
    report.best_latency = 0.0;
  return report;
}

CrashResult simulate_random_crashes(const Schedule& schedule,
                                    const CostModel& costs,
                                    std::size_t failures, Rng& rng) {
  const std::size_t m = schedule.platform().proc_count();
  CAFT_CHECK_MSG(failures <= m, "cannot fail more processors than exist");
  const auto indices = rng.sample_without_replacement(m, failures);
  std::vector<ProcId> failed(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i)
    failed[i] = ProcId(static_cast<ProcId::value_type>(indices[i]));
  return simulate_crashes(
      schedule, costs,
      CrashScenario::at_zero(schedule.platform().proc_count(), failed));
}

}  // namespace caft
