#include "sim/crash_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/check.hpp"

namespace caft {

CrashScenario CrashScenario::none(std::size_t proc_count) {
  return CrashScenario(std::vector<double>(
      proc_count, std::numeric_limits<double>::infinity()));
}

CrashScenario CrashScenario::at_zero(std::size_t proc_count,
                                     const std::vector<ProcId>& failed) {
  CrashScenario scenario = none(proc_count);
  for (const ProcId p : failed) scenario.set_crash_time(p, 0.0);
  return scenario;
}

CrashScenario::CrashScenario(std::vector<double> crash_times)
    : crash_time_(std::move(crash_times)) {
  for (const double t : crash_time_) {
    CAFT_CHECK_MSG(!std::isnan(t), "crash time must not be NaN");
    CAFT_CHECK_MSG(t >= 0.0, "crash time must be non-negative");
  }
}

double CrashScenario::crash_time(ProcId p) const {
  CAFT_CHECK_MSG(p.index() < crash_time_.size(),
                 "processor id out of range for this scenario");
  return crash_time_[p.index()];
}

void CrashScenario::set_crash_time(ProcId p, double time) {
  CAFT_CHECK_MSG(p.index() < crash_time_.size(),
                 "processor id out of range for this scenario");
  CAFT_CHECK_MSG(!std::isnan(time), "crash time must not be NaN");
  CAFT_CHECK_MSG(time >= 0.0, "crash time must be non-negative");
  crash_time_[p.index()] = time;
}

std::size_t CrashScenario::failed_count() const {
  return static_cast<std::size_t>(
      std::count_if(crash_time_.begin(), crash_time_.end(), [](double t) {
        return t < std::numeric_limits<double>::infinity();
      }));
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

enum class OpKind : std::uint8_t {
  kExec,       ///< replica execution on its processor
  kWire,       ///< first hop: holds the sender port and the first link
  kSegment,    ///< later hop of a multi-link route: holds one link
  kReception,  ///< reception at the destination's receive port
  kHandoff,    ///< intra-processor hand-off or macro-dataflow transfer
};

enum class OpState : std::uint8_t { kPending, kDone, kDead };

struct Op {
  OpKind kind;
  OpState state = OpState::kPending;
  double duration = 0.0;
  double start = 0.0;
  double finish = 0.0;

  // Resources this op holds (kNone if unused). res_b only for kWire.
  std::size_t res_a = kNone;
  std::size_t res_b = kNone;

  // Conjunctive prerequisite: finish-of (kPrevFinish) or start-of
  // (kPrevStart, used by receptions overlapping the last wire segment).
  std::size_t prereq = kNone;
  bool prereq_is_start = false;

  // kExec bookkeeping.
  TaskId task;
  ReplicaIndex replica = 0;
  ProcId proc;

  // kReception / kHandoff: which comm this op terminates.
  std::size_t comm_index = kNone;

  // kWire / kSegment: true when this hop delivers onto the destination
  // processor (a blind send into a dead receiver still happens; forwarding
  // through a dead router does not).
  bool final_hop = false;
};

/// The replay machine; see the header for the semantics.
class Replay {
 public:
  Replay(const Schedule& schedule, const CostModel& costs,
         const CrashScenario& scenario)
      : schedule_(schedule), costs_(costs), scenario_(scenario) {
    build_ops();
    kill_dead_processors();
  }

  CrashResult run() {
    propagate_dead();
    // propagate_dead is only needed again when a commit kills an op
    // (crash-at-θ); commit_next reports that through died_.
    while (commit_next())
      if (died_) propagate_dead();
    return collect();
  }

 private:
  // Resource id layout: execs [0, m), send ports [m, 2m), receive ports
  // [2m, 3m), links [3m, 3m + L).
  std::size_t exec_res(ProcId p) const { return p.index(); }
  std::size_t send_res(ProcId p) const { return m_ + p.index(); }
  std::size_t recv_res(ProcId p) const { return 2 * m_ + p.index(); }
  std::size_t link_res(LinkId l) const { return 3 * m_ + l.index(); }

  void build_ops();
  void kill_dead_processors();
  void propagate_dead();
  void advance_heads();
  bool commit_next();
  CrashResult collect();

  /// True iff op's prerequisites (conjunctive + disjunctive inputs for
  /// execs) are satisfied; fills the earliest allowed start.
  bool runnable(std::size_t op, double& ready) const;

  /// True iff `op` is at the head of every resource queue it needs.
  bool at_heads(std::size_t op) const;

  const Schedule& schedule_;
  const CostModel& costs_;
  const CrashScenario& scenario_;
  std::size_t m_ = 0;

  std::vector<Op> ops_;
  /// exec_op_[task][replica] = op id.
  std::vector<std::vector<std::size_t>> exec_op_;
  /// Per exec op: for each in-edge, the terminating (reception/hand-off) op
  /// ids feeding it.
  std::vector<std::vector<std::vector<std::size_t>>> exec_inputs_;

  /// Per resource: op ids in committed order + a head cursor + a free time.
  std::vector<std::vector<std::size_t>> queue_;
  std::vector<std::size_t> head_;
  std::vector<double> free_;

  /// Resource-free ops (intra hand-offs / macro-dataflow transfers) that are
  /// still pending — they are always eligible, so they get their own list.
  std::vector<std::size_t> handoffs_;

  bool order_deadlock_ = false;
  std::size_t order_relaxations_ = 0;
  bool died_ = false;  ///< did the last commit_next kill an op (crash-at-θ)?
};

void Replay::build_ops() {
  const TaskGraph& g = schedule_.graph();
  m_ = schedule_.platform().proc_count();
  const std::size_t link_count = schedule_.platform().topology().link_count();
  queue_.assign(3 * m_ + link_count, {});
  head_.assign(queue_.size(), 0);
  free_.assign(queue_.size(), 0.0);

  struct Keyed {
    double key;
    std::size_t seq;
    std::size_t op;
    std::size_t res;
  };
  std::vector<Keyed> keyed;

  // Execution ops.
  exec_op_.assign(g.task_count(), {});
  std::size_t seq = 0;
  for (const TaskId t : g.all_tasks()) {
    const std::size_t total = schedule_.total_replicas(t);
    exec_op_[t.index()].resize(total);
    for (ReplicaIndex r = 0; r < total; ++r) {
      const ReplicaAssignment& a = schedule_.replica(t, r);
      Op op;
      op.kind = OpKind::kExec;
      op.duration = a.finish - a.start;
      op.task = t;
      op.replica = r;
      op.proc = a.proc;
      op.res_a = exec_res(a.proc);
      exec_op_[t.index()][r] = ops_.size();
      keyed.push_back({a.start, seq++, ops_.size(), op.res_a});
      ops_.push_back(op);
    }
  }

  // Communication chains.
  for (std::size_t ci = 0; ci < schedule_.comms().size(); ++ci) {
    const CommAssignment& c = schedule_.comms()[ci];
    const std::size_t source_exec =
        exec_op_[c.from.task.index()][c.from.replica];

    if (c.intra() || schedule_.model() == CommModelKind::kMacroDataflow) {
      Op op;
      op.kind = OpKind::kHandoff;
      op.duration = c.times.arrival - c.times.link_start;
      op.prereq = source_exec;
      op.comm_index = ci;
      op.task = c.to.task;
      op.replica = c.to.replica;
      handoffs_.push_back(ops_.size());
      ops_.push_back(op);
      continue;
    }

    // One-port chain: wire, optional extra segments, reception.
    CAFT_CHECK_MSG(!c.times.segments.empty(),
                   "one-port inter-processor comm without segments");
    std::size_t prev = kNone;
    for (std::size_t si = 0; si < c.times.segments.size(); ++si) {
      const LinkOccupancy& seg = c.times.segments[si];
      Op op;
      op.kind = si == 0 ? OpKind::kWire : OpKind::kSegment;
      op.final_hop = si + 1 == c.times.segments.size();
      op.duration = seg.finish - seg.start;
      op.prereq = si == 0 ? source_exec : prev;
      if (si == 0) {
        op.res_a = send_res(c.src_proc);
        op.res_b = link_res(seg.link);
        keyed.push_back({seg.start, seq++, ops_.size(), op.res_a});
        keyed.push_back({seg.start, seq, ops_.size(), op.res_b});
      } else {
        op.res_a = link_res(seg.link);
        keyed.push_back({seg.start, seq++, ops_.size(), op.res_a});
      }
      prev = ops_.size();
      ops_.push_back(op);
    }
    Op recv;
    recv.kind = OpKind::kReception;
    recv.duration = c.times.arrival - c.times.recv_start;
    recv.prereq = prev;
    recv.prereq_is_start = true;  // reception overlaps the last hop
    recv.res_a = recv_res(c.dst_proc);
    recv.comm_index = ci;
    recv.task = c.to.task;
    recv.replica = c.to.replica;
    keyed.push_back({c.times.recv_start, seq++, ops_.size(), recv.res_a});
    ops_.push_back(recv);
  }

  // Resource queues in committed order.
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  });
  for (const Keyed& k : keyed) queue_[k.res].push_back(k.op);

  // Input map: per exec op, the terminating (reception/hand-off) ops per
  // in-edge. Terminating ops carry their comm index, so invert that first.
  exec_inputs_.assign(ops_.size(), {});
  std::vector<std::size_t> comm_to_op(schedule_.comms().size(), kNone);
  for (std::size_t oi = 0; oi < ops_.size(); ++oi)
    if (ops_[oi].comm_index != kNone) comm_to_op[ops_[oi].comm_index] = oi;
  for (const TaskId t : g.all_tasks()) {
    const auto in = g.in_edges(t);
    const std::size_t total = schedule_.total_replicas(t);
    for (ReplicaIndex r = 0; r < total; ++r) {
      const std::size_t eop = exec_op_[t.index()][r];
      exec_inputs_[eop].assign(in.size(), {});
      for (const std::size_t ci : schedule_.incoming_comms(t, r)) {
        const CommAssignment& c = schedule_.comms()[ci];
        const auto pos = std::find(in.begin(), in.end(), c.edge) - in.begin();
        CAFT_CHECK(static_cast<std::size_t>(pos) < in.size());
        CAFT_CHECK(comm_to_op[ci] != kNone);
        exec_inputs_[eop][static_cast<std::size_t>(pos)].push_back(
            comm_to_op[ci]);
      }
    }
  }
}

void Replay::kill_dead_processors() {
  const Topology& topology = schedule_.platform().topology();
  const auto link_of = [&](std::size_t res) -> const LinkDef& {
    return topology.link(LinkId(static_cast<LinkId::value_type>(res - 3 * m_)));
  };
  for (std::size_t oi = 0; oi < ops_.size(); ++oi) {
    Op& op = ops_[oi];
    switch (op.kind) {
      case OpKind::kExec:
        if (scenario_.dead_from_start(op.proc)) op.state = OpState::kDead;
        break;
      case OpKind::kWire: {
        const std::size_t port = op.res_a - m_;
        if (scenario_.dead_from_start(
                ProcId(static_cast<ProcId::value_type>(port))))
          op.state = OpState::kDead;
        // A blind send into a dead *destination* still occupies the sender
        // port and the link (fail-silent senders do not detect the loss),
        // but a hop that needs a dead *router* to forward never happens.
        else if (!op.final_hop &&
                 scenario_.dead_from_start(link_of(op.res_b).to))
          op.state = OpState::kDead;
        break;
      }
      case OpKind::kSegment:
        // Transit originating at a dead router is impossible; so is transit
        // toward one (sparse-topology extension; a clique never has
        // segments beyond the first).
        if (scenario_.dead_from_start(link_of(op.res_a).from) ||
            (!op.final_hop &&
             scenario_.dead_from_start(link_of(op.res_a).to)))
          op.state = OpState::kDead;
        break;
      case OpKind::kReception: {
        const std::size_t port = op.res_a - 2 * m_;
        if (scenario_.dead_from_start(
                ProcId(static_cast<ProcId::value_type>(port))))
          op.state = OpState::kDead;
        break;
      }
      case OpKind::kHandoff:
        break;  // dies only via prerequisite propagation
    }
  }
}

void Replay::propagate_dead() {
  // Conjunctive prerequisites: dead prereq kills the dependent. Disjunctive
  // exec inputs: an exec dies when one of its in-edges has only dead inputs.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t oi = 0; oi < ops_.size(); ++oi) {
      Op& op = ops_[oi];
      if (op.state != OpState::kPending) continue;
      if (op.prereq != kNone && ops_[op.prereq].state == OpState::kDead) {
        op.state = OpState::kDead;
        changed = true;
        continue;
      }
      if (op.kind == OpKind::kExec) {
        for (const auto& edge_inputs : exec_inputs_[oi]) {
          const bool all_dead =
              !edge_inputs.empty() &&
              std::all_of(edge_inputs.begin(), edge_inputs.end(),
                          [&](std::size_t in_op) {
                            return ops_[in_op].state == OpState::kDead;
                          });
          if (all_dead) {
            op.state = OpState::kDead;
            changed = true;
            break;
          }
        }
      }
    }
  }
  advance_heads();
}

void Replay::advance_heads() {
  // The head cursor points at the first still-pending op of each queue;
  // settled ops (done — possibly out of order — or dead) never block it.
  for (std::size_t res = 0; res < queue_.size(); ++res)
    while (head_[res] < queue_[res].size() &&
           ops_[queue_[res][head_[res]]].state != OpState::kPending)
      ++head_[res];
}

bool Replay::at_heads(std::size_t op) const {
  const Op& o = ops_[op];
  if (o.res_a != kNone &&
      (head_[o.res_a] >= queue_[o.res_a].size() ||
       queue_[o.res_a][head_[o.res_a]] != op))
    return false;
  if (o.res_b != kNone &&
      (head_[o.res_b] >= queue_[o.res_b].size() ||
       queue_[o.res_b][head_[o.res_b]] != op))
    return false;
  return true;
}

bool Replay::runnable(std::size_t op, double& ready) const {
  const Op& o = ops_[op];
  ready = 0.0;
  if (o.prereq != kNone) {
    if (ops_[o.prereq].state != OpState::kDone) return false;
    ready = o.prereq_is_start ? ops_[o.prereq].start : ops_[o.prereq].finish;
  }
  if (o.kind == OpKind::kExec) {
    for (const auto& edge_inputs : exec_inputs_[op]) {
      double first = kInf;
      for (const std::size_t in_op : edge_inputs)
        if (ops_[in_op].state == OpState::kDone)
          first = std::min(first, ops_[in_op].finish);
      if (first == kInf) return false;  // no live input yet for this edge
      ready = std::max(ready, first);
    }
  }
  if (o.res_a != kNone) ready = std::max(ready, free_[o.res_a]);
  if (o.res_b != kNone) ready = std::max(ready, free_[o.res_b]);
  return true;
}

bool Replay::commit_next() {
  died_ = false;
  // Discrete-event step: among the queue-head operations (plus resource-free
  // hand-offs) whose prerequisites are met, commit the one with the earliest
  // candidate start; lowest op id (committed sequence) breaks ties. Only
  // heads can run, so the scan is O(resources + pending hand-offs).
  std::size_t best = kNone;
  double best_start = kInf;
  const auto consider = [&](std::size_t oi) {
    const Op& o = ops_[oi];
    if (o.state != OpState::kPending) return;
    if (!at_heads(oi)) return;  // a wire must head *both* of its queues
    double ready = 0.0;
    if (!runnable(oi, ready)) return;
    if (ready < best_start || (ready == best_start && oi < best)) {
      best_start = ready;
      best = oi;
    }
  };
  for (std::size_t res = 0; res < queue_.size(); ++res)
    if (head_[res] < queue_[res].size()) consider(queue_[res][head_[res]]);
  for (std::size_t hi = 0; hi < handoffs_.size();) {
    if (ops_[handoffs_[hi]].state != OpState::kPending) {
      handoffs_[hi] = handoffs_.back();  // drop settled hand-offs
      handoffs_.pop_back();
      continue;
    }
    consider(handoffs_[hi]);
    ++hi;
  }
  if (best == kNone) {
    // The strict committed order is stuck (a circular wait through rerouted
    // inputs — possible only under crashes). Relax it: any prerequisite-
    // ready pending op may run out of order; the resource clocks still
    // serialize everything, so the one-port constraints hold.
    for (std::size_t oi = 0; oi < ops_.size(); ++oi) {
      const Op& o = ops_[oi];
      if (o.state != OpState::kPending) continue;
      double ready = 0.0;
      if (!runnable(oi, ready)) continue;
      if (ready < best_start || (ready == best_start && oi < best)) {
        best_start = ready;
        best = oi;
      }
    }
    if (best != kNone) ++order_relaxations_;
  }
  if (best == kNone) {
    // Nothing can ever run again: the remaining pending work is lost.
    for (const Op& o : ops_)
      if (o.state == OpState::kPending) {
        order_deadlock_ = true;
        break;
      }
    if (order_deadlock_)
      for (Op& o : ops_)
        if (o.state == OpState::kPending) o.state = OpState::kDead;
    return false;
  }

  Op& o = ops_[best];
  o.start = best_start;
  o.finish = best_start + o.duration;

  // Crash-at-θ: work still in flight when the processor dies is lost, and
  // the processor's resources are gone for good.
  ProcId owner = ProcId::invalid();
  if (o.kind == OpKind::kExec) owner = o.proc;
  if (o.kind == OpKind::kWire)
    owner = ProcId(static_cast<ProcId::value_type>(o.res_a - m_));
  if (o.kind == OpKind::kReception)
    owner = ProcId(static_cast<ProcId::value_type>(o.res_a - 2 * m_));
  if (owner.valid() && o.finish > scenario_.crash_time(owner)) {
    o.state = OpState::kDead;
    died_ = true;
    free_[exec_res(owner)] = kInf;
    free_[send_res(owner)] = kInf;
    free_[recv_res(owner)] = kInf;
    advance_heads();
    return true;
  }

  o.state = OpState::kDone;
  if (o.res_a != kNone) free_[o.res_a] = std::max(free_[o.res_a], o.finish);
  if (o.res_b != kNone) free_[o.res_b] = std::max(free_[o.res_b], o.finish);
  advance_heads();
  return true;
}

CrashResult Replay::collect() {
  const TaskGraph& g = schedule_.graph();
  CrashResult result;
  result.order_deadlock = order_deadlock_;
  result.order_relaxations = order_relaxations_;
  result.completed.resize(g.task_count());
  result.finish.resize(g.task_count());
  result.success = true;
  double latency = 0.0;
  for (const TaskId t : g.all_tasks()) {
    const std::size_t total = schedule_.total_replicas(t);
    result.completed[t.index()].assign(total, false);
    result.finish[t.index()].assign(total, kInf);
    double first = kInf;
    for (ReplicaIndex r = 0; r < total; ++r) {
      const Op& op = ops_[exec_op_[t.index()][r]];
      if (op.state == OpState::kDone) {
        result.completed[t.index()][r] = true;
        result.finish[t.index()][r] = op.finish;
        first = std::min(first, op.finish);
      }
    }
    if (first == kInf) {
      result.success = false;
    } else {
      latency = std::max(latency, first);
    }
  }
  result.latency = result.success ? latency : kInf;

  for (const Op& op : ops_)
    if (op.comm_index != kNone && op.state == OpState::kDone &&
        !schedule_.comms()[op.comm_index].intra())
      ++result.delivered_messages;
  return result;
}

}  // namespace

CrashResult simulate_crashes(const Schedule& schedule, const CostModel& costs,
                             const CrashScenario& scenario) {
  CAFT_CHECK_MSG(scenario.proc_count() == schedule.platform().proc_count(),
                 "scenario size does not match the platform");
  CAFT_CHECK_MSG(schedule.complete(), "schedule is incomplete");
  Replay replay(schedule, costs, scenario);
  return replay.run();
}

}  // namespace caft
