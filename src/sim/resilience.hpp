/// \file resilience.hpp
/// ε-failure resistance checking: does a schedule deliver every task's
/// result under ANY ε processor crashes (Proposition 5.2's guarantee)?
///
/// Survival is monotone in the set of healthy processors — a replica
/// completes iff its processor is alive and every in-edge has a delivered
/// message from a completed sender, which only improves as fewer processors
/// fail (timing shifts but existence of inputs cannot be lost). Checking all
/// subsets of size exactly ε therefore covers all smaller crash sets too.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "platform/cost_model.hpp"
#include "sched/schedule.hpp"
#include "sim/crash_sim.hpp"

namespace caft {

/// Aggregated outcome of a resilience sweep.
struct ResilienceReport {
  bool resistant = true;          ///< every tested scenario succeeded
  std::size_t scenarios_tested = 0;
  std::size_t failures = 0;       ///< scenarios where some task produced nothing
  std::vector<ProcId> witness;    ///< one failing crash set, when any exists
  /// Largest re-executed latency among *surviving* scenarios — an
  /// empirical, adversarial counterpart to Schedule::upper_bound_latency().
  double worst_latency = 0.0;
  /// Smallest re-executed latency among surviving scenarios.
  double best_latency = 0.0;
};

/// Simulates every crash set of exactly `failures` processors
/// (C(m, failures) scenarios — affordable for the paper's platforms).
[[nodiscard]] ResilienceReport check_resilience_exhaustive(
    const Schedule& schedule, const CostModel& costs, std::size_t failures);

/// Simulates `samples` uniformly drawn crash sets of exactly `failures`
/// processors (for platforms where the exhaustive sweep is too wide).
[[nodiscard]] ResilienceReport check_resilience_sampled(
    const Schedule& schedule, const CostModel& costs, std::size_t failures,
    std::size_t samples, Rng& rng);

/// Convenience: one uniformly drawn crash set of exactly `failures`
/// processors, re-executed — the paper's "With c Crash" data point.
[[nodiscard]] CrashResult simulate_random_crashes(const Schedule& schedule,
                                                  const CostModel& costs,
                                                  std::size_t failures,
                                                  Rng& rng);

}  // namespace caft
