/// \file replay_engine.hpp
/// Incremental, prefix-cached crash replay — the campaign hot path.
///
/// `simulate_crashes` (sim/crash_sim.hpp) rebuilds the full replay machine
/// and re-executes the committed schedule from t = 0 for every scenario. A
/// Monte-Carlo campaign replays the *same* schedule millions of times, and
/// every scenario whose earliest crash happens at time θ shares an identical
/// fault-free prefix with every other scenario up to θ. ReplayEngine
/// exploits both redundancies:
///
///  1. **Immutable template.** The operation graph (executions, wire/segment
///     chains, receptions, hand-offs), the per-resource committed queues and
///     the per-replica input maps depend only on the schedule — they are
///     built once, in flat CSR-style arrays, and shared read-only by every
///     replay (and every worker thread).
///  2. **Prefix snapshots.** The fault-free timeline is simulated once at
///     construction; the mutable simulator state (op states and times, queue
///     head cursors, resource clocks, pending hand-offs) is checkpointed at
///     event boundaries, each snapshot annotated with the per-processor
///     maximum finish time committed so far. A scenario whose crash times
///     all exceed those maxima replays *identically* through that prefix, so
///     `replay` branches from the latest valid snapshot instead of t = 0.
///     Scenarios with a processor dead from the start (the paper's model)
///     fall back to the pristine state — they still reuse the template and
///     a worklist-based dead-propagation instead of the naive fixpoint scan.
///  3. **Dead-set memoisation.** When every crash time is 0 or +inf (the
///     paper's "k processors dead from t = 0" model), the outcome is a pure
///     function of the dead-processor bitmask — and a uniform-k campaign
///     draws from a scenario space of only C(m, k) masks. Each Scratch
///     memoises those results, so repeated masks cost one hash lookup plus
///     a result copy. This is prefix caching taken to its limit: at θ = 0
///     the shared prefix is empty, but the branch space itself is finite.
///
/// Determinism contract: for every (schedule, scenario) pair, `replay`
/// returns a CrashResult **bit-for-bit identical** to
/// `simulate_crashes(schedule, costs, scenario)` — same event choices, same
/// IEEE arithmetic, same relaxation/deadlock accounting. The differential
/// suite tests/test_replay_equivalence.cpp asserts this over randomized
/// (instance, schedule, scenario) triples; the campaign executor relies on
/// it to make `--engine naive` and `--engine incremental` interchangeable.
///
/// Thread safety: `replay` is const and touches only the template plus the
/// caller's Scratch, so one engine may serve any number of threads as long
/// as each thread owns its Scratch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "platform/cost_model.hpp"
#include "sched/schedule.hpp"
#include "sim/crash_sim.hpp"

namespace caft {

/// Tuning knobs; the defaults suit campaign workloads.
struct ReplayEngineOptions {
  /// Upper bound on stored fault-free snapshots. Snapshots are spaced
  /// uniformly over the event timeline; memory is O(max_snapshots × ops).
  std::size_t max_snapshots = 64;
};

/// Prefix-cached replay engine bound to one committed schedule.
class ReplayEngine {
 public:
  /// Builds the template and records the fault-free timeline. `schedule`
  /// and `costs` must outlive the engine.
  ReplayEngine(const Schedule& schedule, const CostModel& costs,
               ReplayEngineOptions options = {});

  ReplayEngine(const ReplayEngine&) = delete;
  ReplayEngine& operator=(const ReplayEngine&) = delete;

  /// Per-thread mutable replay state. Reusing one Scratch across replays
  /// avoids all per-replay allocation; contents are opaque.
  class Scratch {
   public:
    Scratch() = default;

   private:
    friend class ReplayEngine;
    std::vector<std::uint8_t> state;
    std::vector<double> start;
    std::vector<double> finish;
    std::vector<std::uint32_t> head;
    std::vector<double> free_at;
    std::vector<std::uint32_t> handoffs;
    std::vector<std::uint32_t> dead_inputs;
    std::vector<std::uint32_t> worklist;
    std::size_t order_relaxations = 0;
    bool order_deadlock = false;
    bool died = false;
    /// Dead-set memo: crash-mask -> full result, for scenarios whose crash
    /// times are all 0 or +inf. Bound to one engine *instance* via its
    /// unique generation (a pointer would suffer ABA when a new engine is
    /// allocated at a dead one's address); cleared on rebind.
    std::unordered_map<std::uint64_t, CrashResult> memo;
    std::uint64_t bound_generation = 0;
    /// Home of the most recent non-memoised result (replay returns a
    /// reference into either this or the memo — never a copy).
    CrashResult result;
  };

  /// Re-executes the schedule under `scenario`; equivalent to
  /// simulate_crashes bit for bit. Allocates a throw-away Scratch.
  [[nodiscard]] CrashResult replay(const CrashScenario& scenario) const;

  /// Same, reusing the caller's Scratch (the campaign hot path). The
  /// returned reference lives inside `scratch` (or its memo) and stays
  /// valid until the next replay call with the same Scratch; memo hits
  /// cost one hash lookup, never a result copy.
  const CrashResult& replay(const CrashScenario& scenario,
                            Scratch& scratch) const;

  /// Events (op commits) on the fault-free timeline.
  [[nodiscard]] std::size_t event_count() const { return commit_count_; }
  /// Stored prefix snapshots.
  [[nodiscard]] std::size_t snapshot_count() const {
    return snapshots_.size();
  }
  [[nodiscard]] const Schedule& schedule() const { return *schedule_; }

  /// Earliest crash instant of `scenario` (+inf when nothing ever fails) —
  /// the key the campaign executor sorts replay blocks by.
  [[nodiscard]] static double first_crash(const CrashScenario& scenario);

 private:
  struct Snapshot {
    /// per_proc_max[p]: max finish committed so far among ops owned by p.
    /// The snapshot is valid for a scenario iff every processor's crash
    /// time is positive and >= its entry here.
    std::vector<double> per_proc_max;
    std::vector<std::uint8_t> state;
    std::vector<double> start;
    std::vector<double> finish;
    std::vector<std::uint32_t> head;
    std::vector<double> free_at;
    /// Hand-off ops still pending at this point (hand-offs hold no
    /// resource, so the queue heads cannot rediscover them on restore).
    std::vector<std::uint32_t> pending_handoffs;
  };

  void build_template();
  void record_fault_free(std::size_t max_snapshots);

  void reset_pristine(Scratch& s) const;
  void restore_snapshot(Scratch& s, const Snapshot& snap) const;
  /// Index into snapshots_ usable for `scenario`, or npos for "from t=0".
  [[nodiscard]] std::size_t pick_snapshot(const CrashScenario& scenario) const;

  void kill(Scratch& s, std::uint32_t op) const;
  void propagate(Scratch& s) const;
  /// Advances one resource's head cursor past settled ops.
  void advance_resource(Scratch& s, std::uint32_t res) const;
  [[nodiscard]] bool at_heads(const Scratch& s, std::uint32_t op) const;
  [[nodiscard]] bool runnable(const Scratch& s, std::uint32_t op,
                              double& ready) const;
  bool commit_next(Scratch& s, const CrashScenario& scenario,
                   std::uint32_t* committed) const;
  [[nodiscard]] CrashResult collect(const Scratch& s) const;

  const Schedule* schedule_;
  std::size_t m_ = 0;
  std::size_t op_count_ = 0;
  std::size_t resource_count_ = 0;

  // --- immutable per-op template (struct-of-arrays; see build_template).
  std::vector<std::uint8_t> kind_;
  std::vector<std::uint8_t> prereq_is_start_;
  std::vector<std::uint8_t> counts_message_;
  std::vector<double> duration_;
  std::vector<std::uint32_t> res_a_;
  std::vector<std::uint32_t> res_b_;
  std::vector<std::uint32_t> prereq_;
  std::vector<std::int32_t> owner_;  ///< proc whose crash kills the op, or -1

  /// Committed per-resource queues (same order as the naive replay).
  std::vector<std::vector<std::uint32_t>> queue_;
  std::vector<std::uint32_t> initial_handoffs_;

  /// exec_op_[task][replica] = op id (for collect()).
  std::vector<std::vector<std::uint32_t>> exec_op_;

  // Disjunctive exec inputs, flattened: exec op -> [slot_begin, slot_end)
  // global in-edge slots; slot -> terminating op ids feeding it.
  std::vector<std::uint32_t> exec_slot_begin_;   ///< size op_count_+1
  std::vector<std::uint32_t> slot_input_begin_;  ///< size slot_count+1
  std::vector<std::uint32_t> slot_inputs_;

  // Reverse maps for worklist dead-propagation.
  std::vector<std::uint32_t> dep_begin_;  ///< prereq dependents CSR
  std::vector<std::uint32_t> dep_ops_;
  std::vector<std::uint32_t> feed_slot_;  ///< slot the op terminates into
  std::vector<std::uint32_t> feed_exec_;  ///< exec op of that slot

  /// kill_ops_[kill_begin_[p]..kill_begin_[p+1]): ops dead when processor p
  /// is dead from the start (mirrors the naive kill_dead_processors rules).
  std::vector<std::uint32_t> kill_begin_;
  std::vector<std::uint32_t> kill_ops_;

  std::size_t commit_count_ = 0;
  std::vector<Snapshot> snapshots_;
  /// Process-unique instance id (never 0); keys Scratch memo binding.
  std::uint64_t generation_ = 0;
};

}  // namespace caft
