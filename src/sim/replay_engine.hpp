/// \file replay_engine.hpp
/// Incremental, prefix-cached crash replay — the campaign hot path.
///
/// `simulate_crashes` (sim/crash_sim.hpp) rebuilds the full replay machine
/// and re-executes the committed schedule from t = 0 for every scenario. A
/// Monte-Carlo campaign replays the *same* schedule millions of times, and
/// every scenario whose earliest crash happens at time θ shares an identical
/// fault-free prefix with every other scenario up to θ. ReplayEngine
/// exploits both redundancies:
///
///  1. **Immutable template.** The operation graph (executions, wire/segment
///     chains, receptions, hand-offs), the per-resource committed queues and
///     the per-replica input maps depend only on the schedule — they are
///     built once, in flat CSR-style arrays, and shared read-only by every
///     replay (and every worker thread).
///  2. **Prefix snapshots.** The fault-free timeline is simulated once at
///     construction; the mutable simulator state (op states and times, queue
///     head cursors, resource clocks, pending hand-offs) is checkpointed at
///     event boundaries, each snapshot annotated with the per-processor
///     maximum finish time committed so far. A scenario whose crash times
///     all exceed those maxima replays *identically* through that prefix, so
///     `replay` branches from the latest valid snapshot instead of t = 0.
///     Scenarios with a processor dead from the start (the paper's model)
///     fall back to the pristine state — they still reuse the template, and
///     dead-propagation is a single linear pass over a precomputed
///     topological op order testing per-op processor bitmasks against the
///     ≤64-proc dead word (the worklist closure remains for m > 64 and for
///     mid-replay θ deaths), instead of the naive fixpoint scan.
///  3. **Dead-set memoisation.** When every crash time is 0 or +inf (the
///     paper's "k processors dead from t = 0" model), the outcome is a pure
///     function of the dead-processor bitmask — and a uniform-k campaign
///     draws from a scenario space of only C(m, k) masks. Each Scratch
///     memoises those results, so repeated masks cost one hash lookup plus
///     a result copy. This is prefix caching taken to its limit: at θ = 0
///     the shared prefix is empty, but the branch space itself is finite.
///  4. **Shared memoisation** (SharedReplayMemo). The per-Scratch memo never
///     crosses threads, so an 8-worker campaign re-simulates every mask up
///     to 8 times. A SharedReplayMemo is one striped open-addressing CAS
///     table all workers consult lock-free; because the memoised value is a
///     pure deterministic function of its key, a hit returns the *same bits*
///     no matter which thread computed it first — summaries stay bit-for-bit
///     independent of thread count, and a lost race (two workers computing
///     the same key, or a reader missing an entry mid-eviction) costs one
///     recompute of identical bits, never a wrong answer. With a positive `theta_bucket_width` the shared memo
///     also covers crash-at-θ scenarios: every finite positive crash time is
///     quantized to a bucket and the bucket's *midpoint representative*
///     scenario is replayed and cached, turning a continuous θ space into a
///     finite, memoisable one (a deliberate, width-bounded approximation —
///     see the quantization contract below).
///
/// Determinism contract: for every (schedule, scenario) pair, `replay`
/// returns a CrashResult **bit-for-bit identical** to
/// `simulate_crashes(schedule, costs, scenario)` — same event choices, same
/// IEEE arithmetic, same relaxation/deadlock accounting. The differential
/// suite tests/test_replay_equivalence.cpp asserts this over randomized
/// (instance, schedule, scenario) triples; the campaign executor relies on
/// it to make `--engine naive` and `--engine incremental` interchangeable.
///
/// Quantization contract: with `theta_bucket_width > 0` and a SharedReplayMemo
/// supplied, a scenario containing finite positive crash times is replayed as
/// its canonical representative (each such time snapped to the midpoint of
/// its bucket; dead-from-start and never-failing processors are untouched).
/// The result is exact for the representative and off by at most
/// width/2 per crash time for the original draw — still a deterministic pure
/// function of the scenario, so summaries remain independent of thread count
/// and memo state. Scenarios whose times are all 0/+inf are always exact.
/// Setting `exact` (or width 0) disables quantized hits entirely and
/// restores bit-exact naive equivalence for every scenario.
///
/// Thread safety: `replay` is const and touches only the template, the
/// caller's Scratch and (optionally) a SharedReplayMemo, so one engine may
/// serve any number of threads as long as each thread owns its Scratch; one
/// SharedReplayMemo may be shared by all of them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "platform/cost_model.hpp"
#include "sched/schedule.hpp"
#include "sim/crash_sim.hpp"

namespace caft {

/// Tuning knobs; the defaults suit campaign workloads.
struct ReplayEngineOptions {
  /// Upper bound on stored fault-free snapshots; memory is
  /// O(max_snapshots × ops).
  std::size_t max_snapshots = 64;
  /// Adaptive snapshot placement: target times (e.g. quantiles of the
  /// sampler's first-crash distribution) at which prefix snapshots should
  /// still be valid. For each target the engine snapshots at the last event
  /// whose committed frontier does not exceed it, so snapshot density
  /// follows the θ mass instead of the event timeline. Empty (the default)
  /// falls back to uniform event-timeline spacing. Placement never affects
  /// replay results, only how much prefix is reused.
  std::vector<double> snapshot_times;
  /// Bucket width for θ-quantized shared-memo keys; 0 disables quantized
  /// memoisation (crash-at-θ scenarios are then replayed individually).
  /// See the quantization contract in the file header.
  double theta_bucket_width = 0.0;
  /// Exactness escape hatch: when true, quantized hits are disabled even if
  /// theta_bucket_width > 0 — every replay is bit-exact against the naive
  /// simulator. Dead-set (mask) memoisation stays on; it is always exact.
  bool exact = false;
  /// Entry cap of the per-Scratch dead-set memo. Each entry stores a full
  /// CrashResult, so an uncapped memo grows without bound over a long
  /// campaign with a large mask space; on reaching the cap the memo is
  /// cleared (cheap clear-on-threshold eviction) and keeps memoising.
  /// 0 disables the per-Scratch memo.
  std::size_t memo_capacity = 1024;
};

/// Campaign-wide concurrent replay memo: a striped open-addressing CAS table
/// keyed by (dead-set bitmask [, quantized-θ buckets]), shared by every
/// worker thread of a campaign. Values are pure deterministic functions of
/// their key, so concurrent population cannot introduce any thread-count
/// dependence in folded summaries — a racing insert or an eviction-shadowed
/// lookup degrades to a recompute of identical bits, never a wrong answer.
/// Bound to one ReplayEngine instance on first use; rebinding to a different
/// engine is a checked error (a memo never outlives the campaign that
/// created it).
struct SharedMemoOptions {
  /// Statistic-counter stripes (cache-line padded); more stripes = less
  /// false sharing on the hot lookup/hit counters. (Until PR 10 this was
  /// the lock-shard count; the table itself is now lock-free.)
  std::size_t shards = 16;
  /// Entry cap. The table is a fixed array of `capacity` rounded down to a
  /// power of two slots, so resident results are bounded at O(capacity)
  /// *structurally*; a full probe window displaces one victim entry
  /// (displace-on-collision eviction) while the hot keys of the next waves
  /// re-enter immediately. 0 disables the memo (every lookup misses).
  std::size_t capacity = 1 << 15;
};

class SharedReplayMemo {
 public:
  explicit SharedReplayMemo(SharedMemoOptions options = {});
  ~SharedReplayMemo();

  SharedReplayMemo(const SharedReplayMemo&) = delete;
  SharedReplayMemo& operator=(const SharedReplayMemo&) = delete;

  /// Aggregated counters over all stripes (snapshot; other threads may be
  /// mutating concurrently — use after the campaign joined its workers).
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;  ///< entries displaced by full probe windows
    std::size_t entries = 0;      ///< currently resident results
  };
  [[nodiscard]] Stats stats() const;

 private:
  friend class ReplayEngine;

  /// word 0: dead-from-start bitmask; words 1..: (proc << 32) | θ-bucket for
  /// every finite positive crash time, in increasing processor order. Exact
  /// dead-set keys are the 1-word prefix alone, so the two key families can
  /// never collide (different lengths).
  using Key = std::vector<std::uint64_t>;

  /// One immutable published entry. Slots hold Entry* atomically: an entry's
  /// fields are written before its pointer is CAS-published and never after,
  /// so any reader that observes the pointer (acquire) sees a complete entry.
  struct Entry {
    std::uint64_t hash;
    Key key;
    std::shared_ptr<const CrashResult> value;
  };

  /// Cache-line-padded statistic stripe: counters only, never correctness.
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> insertions{0};
    std::atomic<std::uint64_t> evictions{0};
  };

  /// Readers that exhausted the hazard-slot array serialize on a mutex
  /// instead (correct, slower; only reachable past kMaxReaders scratches).
  static constexpr std::size_t kMaxReaders = 128;
  static constexpr std::size_t kFallbackReader =
      static_cast<std::size_t>(-1);

  [[nodiscard]] static std::uint64_t hash_key(const Key& key);

  /// Binds the memo to one engine generation; throws on mismatch.
  void bind(std::uint64_t generation);
  /// Claims a hazard-pointer slot for one Scratch (kFallbackReader when the
  /// array is exhausted — that reader then uses the mutex path).
  [[nodiscard]] std::size_t acquire_reader_slot();
  [[nodiscard]] std::shared_ptr<const CrashResult> find(const Key& key,
                                                        std::size_t reader);
  void insert(const Key& key, std::shared_ptr<const CrashResult> value,
              std::size_t reader);
  /// Defers freeing a displaced entry until no hazard pointer references it.
  void retire(Entry* entry);
  void retire_locked(Entry* entry);
  [[nodiscard]] bool hazarded(const Entry* entry) const;

  std::vector<std::atomic<Entry*>> slots_;  ///< power-of-two open table
  std::size_t slot_mask_ = 0;
  std::size_t probe_window_ = 0;
  std::vector<Stripe> stripes_;
  std::unique_ptr<std::atomic<const Entry*>[]> hazards_;  ///< kMaxReaders
  std::atomic<std::size_t> reader_count_{0};
  /// Guards retired_ and the no-hazard-slot reader path; retire sweeps
  /// under it, so fallback readers can never observe a freed entry.
  std::mutex fallback_mutex_;
  std::vector<Entry*> retired_;  ///< displaced but still hazard-referenced
  std::atomic<std::uint64_t> bound_generation_{0};
  /// Process-unique id (never 0); keys Scratch hazard-slot binding so a new
  /// memo at a dead one's address cannot inherit stale reader slots.
  std::uint64_t memo_id_ = 0;
};

/// Prefix-cached replay engine bound to one committed schedule.
class ReplayEngine {
 public:
  /// Builds the template and records the fault-free timeline. `schedule`
  /// and `costs` must outlive the engine.
  ReplayEngine(const Schedule& schedule, const CostModel& costs,
               ReplayEngineOptions options = {});

  ReplayEngine(const ReplayEngine&) = delete;
  ReplayEngine& operator=(const ReplayEngine&) = delete;

  /// Per-thread mutable replay state. Reusing one Scratch across replays
  /// avoids all per-replay allocation; contents are opaque.
  class Scratch {
   public:
    Scratch() = default;

    /// Resident entries of the per-Scratch dead-set memo (capped at
    /// ReplayEngineOptions::memo_capacity; see the eviction note there).
    [[nodiscard]] std::size_t memo_entries() const { return memo.size(); }
    /// Memo probe counters since construction (scratch-memo path only; a
    /// SharedReplayMemo keeps its own Stats).
    [[nodiscard]] std::uint64_t memo_lookups() const { return lookups; }
    [[nodiscard]] std::uint64_t memo_hits() const { return hits; }
    [[nodiscard]] std::uint64_t memo_evictions() const { return evictions; }

   private:
    friend class ReplayEngine;
    std::vector<std::uint8_t> state;
    std::vector<double> start;
    std::vector<double> finish;
    std::vector<std::uint32_t> head;
    std::vector<double> free_at;
    std::vector<std::uint32_t> handoffs;
    std::vector<std::uint32_t> dead_inputs;
    std::vector<std::uint32_t> worklist;
    /// Per-resource candidate cache (structure-of-arrays): the ready time
    /// and op id of each resource's runnable queue head, kept current by
    /// targeted invalidation so each commit recomputes only the resources
    /// the previous commit touched, then takes a branch-light min over two
    /// flat arrays. (kInf, kNone32) encodes "no runnable head".
    std::vector<double> cand_ready;
    std::vector<std::uint32_t> cand_op;
    std::vector<std::uint32_t> dirty_resources;
    std::vector<std::uint8_t> dirty_flag;
    bool all_dirty = true;
    std::size_t order_relaxations = 0;
    bool order_deadlock = false;
    bool died = false;
    /// Dead-set memo: crash-mask -> full result, for scenarios whose crash
    /// times are all 0 or +inf. Bound to one engine *instance* via its
    /// unique generation (a pointer would suffer ABA when a new engine is
    /// allocated at a dead one's address); cleared on rebind.
    std::unordered_map<std::uint64_t, CrashResult> memo;
    std::uint64_t bound_generation = 0;
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t evictions = 0;
    /// Reused key buffer for shared-memo probes (no allocation per probe).
    std::vector<std::uint64_t> key;
    /// Hazard-pointer slot in the SharedReplayMemo this Scratch last probed
    /// (claimed lazily, keyed by the memo's process-unique id).
    std::uint64_t hazard_memo_id = 0;
    std::size_t hazard_slot = 0;
    /// Keeps the latest shared-memo result alive across evictions: replay
    /// returns a reference into it, valid until the next replay call.
    std::shared_ptr<const CrashResult> shared_hold;
    /// Home of the most recent non-memoised result (replay returns a
    /// reference into this, the memo, or shared_hold — never a copy).
    CrashResult result;
  };

  /// Re-executes the schedule under `scenario`; equivalent to
  /// simulate_crashes bit for bit. Allocates a throw-away Scratch.
  [[nodiscard]] CrashResult replay(const CrashScenario& scenario) const;

  /// Same, reusing the caller's Scratch (the campaign hot path). The
  /// returned reference lives inside `scratch` (or its memo) and stays
  /// valid until the next replay call with the same Scratch; memo hits
  /// cost one hash lookup, never a result copy.
  ///
  /// With a non-null `shared`, memoisation goes through the campaign-wide
  /// SharedReplayMemo instead of the per-Scratch map, and — when the engine
  /// was built with theta_bucket_width > 0 and not `exact` — crash-at-θ
  /// scenarios are replayed as their quantized representatives (see the
  /// quantization contract in the file header).
  const CrashResult& replay(const CrashScenario& scenario, Scratch& scratch,
                            SharedReplayMemo* shared = nullptr) const;

  /// Events (op commits) on the fault-free timeline.
  [[nodiscard]] std::size_t event_count() const { return commit_count_; }
  /// Stored prefix snapshots.
  [[nodiscard]] std::size_t snapshot_count() const {
    return snapshots_.size();
  }
  [[nodiscard]] const Schedule& schedule() const { return *schedule_; }

  /// Earliest crash instant of `scenario` (+inf when nothing ever fails) —
  /// the key the campaign executor sorts replay blocks by.
  [[nodiscard]] static double first_crash(const CrashScenario& scenario);

 private:
  struct Snapshot {
    /// per_proc_max[p]: max finish committed so far among ops owned by p.
    /// The snapshot is valid for a scenario iff every processor's crash
    /// time is positive and >= its entry here.
    std::vector<double> per_proc_max;
    std::vector<std::uint8_t> state;
    std::vector<double> start;
    std::vector<double> finish;
    std::vector<std::uint32_t> head;
    std::vector<double> free_at;
    /// Hand-off ops still pending at this point (hand-offs hold no
    /// resource, so the queue heads cannot rediscover them on restore).
    std::vector<std::uint32_t> pending_handoffs;
  };

  void build_template();
  void record_fault_free();

  /// Full (non-memoised) replay of `scenario` into scratch.result.
  void replay_uncached(const CrashScenario& scenario, Scratch& scratch) const;
  /// Classifies `scenario` for memoisation and fills scratch.key: a 1-word
  /// dead-set key when every crash time is 0/+inf, a multi-word quantized
  /// key when finite positive times exist and quantization is enabled.
  /// Returns kExactKey / kQuantizedKey / kNotMemoisable.
  enum class KeyKind { kExactKey, kQuantizedKey, kNotMemoisable };
  [[nodiscard]] KeyKind classify(const CrashScenario& scenario,
                                 bool quantize_enabled,
                                 std::vector<std::uint64_t>& key) const;
  /// The canonical representative of a quantized scenario: every finite
  /// positive crash time snapped to its bucket midpoint.
  [[nodiscard]] CrashScenario canonical_scenario(
      const CrashScenario& scenario) const;

  void reset_pristine(Scratch& s) const;
  void restore_snapshot(Scratch& s, const Snapshot& snap) const;
  /// Index into snapshots_ usable for `scenario`, or npos for "from t=0".
  [[nodiscard]] std::size_t pick_snapshot(const CrashScenario& scenario) const;

  void kill(Scratch& s, std::uint32_t op) const;
  void propagate(Scratch& s) const;
  /// Dead-from-start closure: one linear pass over topo_order_ computing the
  /// same least fixpoint as the worklist propagate, as branch-light bitmask
  /// tests of direct_kill_mask_ against the ≤64-proc dead word. Only valid
  /// from the pristine state (no op settled yet); m_ <= 64 only.
  void close_dead_mask(Scratch& s, std::uint64_t dead_mask) const;
  /// Advances one resource's head cursor past settled ops.
  void advance_resource(Scratch& s, std::uint32_t res) const;
  /// Recomputes one resource's cached (ready, op) candidate.
  void recompute_candidate(Scratch& s, std::uint32_t res) const;
  void mark_dirty(Scratch& s, std::uint32_t res) const;
  [[nodiscard]] bool at_heads(const Scratch& s, std::uint32_t op) const;
  [[nodiscard]] bool runnable(const Scratch& s, std::uint32_t op,
                              double& ready) const;
  bool commit_next(Scratch& s, const CrashScenario& scenario,
                   std::uint32_t* committed) const;
  [[nodiscard]] CrashResult collect(const Scratch& s) const;

  const Schedule* schedule_;
  std::size_t m_ = 0;
  std::size_t op_count_ = 0;
  std::size_t resource_count_ = 0;

  // --- immutable per-op template (struct-of-arrays; see build_template).
  std::vector<std::uint8_t> kind_;
  std::vector<std::uint8_t> prereq_is_start_;
  std::vector<std::uint8_t> counts_message_;
  std::vector<double> duration_;
  std::vector<std::uint32_t> res_a_;
  std::vector<std::uint32_t> res_b_;
  std::vector<std::uint32_t> prereq_;
  std::vector<std::int32_t> owner_;  ///< proc whose crash kills the op, or -1

  /// Committed per-resource queues (same order as the naive replay),
  /// flattened CSR-style: queue_ops_[queue_begin_[r] .. queue_begin_[r+1]).
  /// Scratch head cursors stay relative to each resource's own queue.
  std::vector<std::uint32_t> queue_begin_;  ///< size resource_count_+1
  std::vector<std::uint32_t> queue_ops_;
  std::vector<std::uint32_t> initial_handoffs_;

  /// exec ops per task, flattened CSR-style (for collect()):
  /// exec_ops_[exec_op_begin_[t] + replica] = op id.
  std::vector<std::uint32_t> exec_op_begin_;  ///< size task_count+1
  std::vector<std::uint32_t> exec_ops_;

  // Disjunctive exec inputs, flattened: exec op -> [slot_begin, slot_end)
  // global in-edge slots; slot -> terminating op ids feeding it.
  std::vector<std::uint32_t> exec_slot_begin_;   ///< size op_count_+1
  std::vector<std::uint32_t> slot_input_begin_;  ///< size slot_count+1
  std::vector<std::uint32_t> slot_inputs_;

  // Reverse maps for worklist dead-propagation.
  std::vector<std::uint32_t> dep_begin_;  ///< prereq dependents CSR
  std::vector<std::uint32_t> dep_ops_;
  std::vector<std::uint32_t> feed_slot_;  ///< slot the op terminates into
  std::vector<std::uint32_t> feed_exec_;  ///< exec op of that slot

  /// kill_ops_[kill_begin_[p]..kill_begin_[p+1]): ops dead when processor p
  /// is dead from the start (mirrors the naive kill_dead_processors rules).
  std::vector<std::uint32_t> kill_begin_;
  std::vector<std::uint32_t> kill_ops_;
  /// The same kill lists inverted into per-op processor bitmasks (m_ <= 64
  /// only; empty otherwise): op dies directly iff mask & dead-word != 0.
  std::vector<std::uint64_t> direct_kill_mask_;
  /// Ops in a topological order of (prereq, slot-input → exec) edges; the
  /// dead-from-start closure is one linear pass over this.
  std::vector<std::uint32_t> topo_order_;

  std::size_t commit_count_ = 0;
  std::vector<Snapshot> snapshots_;
  ReplayEngineOptions options_;
  /// Process-unique instance id (never 0); keys Scratch memo binding.
  std::uint64_t generation_ = 0;
};

}  // namespace caft
