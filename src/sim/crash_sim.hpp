/// \file crash_sim.hpp
/// Fail-silent (fail-stop) crash re-execution of a committed schedule — the
/// machinery behind the paper's "With c Crash" measurements (Section 6):
/// "we have also compared the behavior of each algorithm when processors
/// crash down by computing the real execution time for a given schedule
/// rather than just bounds."
///
/// Semantics (documented in DESIGN.md):
///  - the mapping and the per-resource *order* of operations (executions per
///    processor, emissions per send port, transits per link, receptions per
///    receive port) stay exactly as committed — a static schedule's runtime
///    replays its tables;
///  - a processor crashed from time 0 executes nothing, sends nothing, and
///    its inbound receptions vanish — but senders are fail-silent-blind, so
///    their emissions still occupy the sender port and the link;
///  - a replica whose predecessors' messages all died (starved) is skipped,
///    freeing its processor slot; everything it would have sent is skipped
///    too;
///  - a replica starts once, for every in-edge, at least one live message
///    has arrived (the earliest one that actually arrives, which under
///    crashes may be a later copy than the committed first — exactly the
///    phenomenon the paper analyses with its two-scenario example, where the
///    crash latency may *decrease* or *increase* relative to the 0-crash
///    estimate);
///  - crash-at-time-θ is supported as an extension: work completing at or
///    before θ survives, anything still in flight at θ is lost.
///
/// The simulator is a discrete-event replay: operations commit in global
/// simulated-time order (earliest candidate start first, committed order as
/// the tie-break), which reproduces the committed timetable bit-for-bit when
/// the crash set is empty (a property test asserts this).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/ids.hpp"
#include "platform/cost_model.hpp"
#include "sched/schedule.hpp"

namespace caft {

/// Per-processor crash instants; +inf = the processor never fails.
/// All accessors CAFT_CHECK their ProcId against the scenario size, and
/// crash times must be non-negative and not NaN (enforced by the
/// constructor and set_crash_time alike).
class CrashScenario {
 public:
  /// All processors healthy.
  static CrashScenario none(std::size_t proc_count);
  /// The given processors are dead from t = 0.
  static CrashScenario at_zero(std::size_t proc_count,
                               const std::vector<ProcId>& failed);

  explicit CrashScenario(std::vector<double> crash_times);

  [[nodiscard]] std::size_t proc_count() const { return crash_time_.size(); }
  [[nodiscard]] double crash_time(ProcId p) const;
  [[nodiscard]] bool dead_from_start(ProcId p) const {
    return crash_time(p) <= 0.0;
  }
  [[nodiscard]] std::size_t failed_count() const;

  void set_crash_time(ProcId p, double time);

 private:
  std::vector<double> crash_time_;
};

/// Outcome of one re-execution.
struct CrashResult {
  /// True iff every task has at least one completed replica.
  bool success = false;
  /// max over tasks of the earliest completed replica finish; +inf on
  /// failure.
  double latency = std::numeric_limits<double>::infinity();
  /// completed[t][r]: did replica r of task t run to completion?
  std::vector<std::vector<bool>> completed;
  /// finish[t][r]: completion time (only meaningful when completed).
  std::vector<std::vector<double>> finish;
  /// Inter-processor messages actually delivered.
  std::size_t delivered_messages = 0;
  /// Number of operations that had to run out of their committed resource
  /// order to make progress. Rerouted inputs can create circular waits in
  /// the strict table order; the replay then lets any ready operation jump
  /// the queue (the resource clocks still enforce the one-port exclusivity).
  /// Always 0 when the crash set is empty.
  std::size_t order_relaxations = 0;
  /// True when even the relaxed order could make no progress and the
  /// remaining operations were declared lost (e.g. every processor dead).
  bool order_deadlock = false;
};

/// Re-executes `schedule` under `scenario`.
[[nodiscard]] CrashResult simulate_crashes(const Schedule& schedule,
                                           const CostModel& costs,
                                           const CrashScenario& scenario);

}  // namespace caft
