#include "api/session.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/subprocess.hpp"
#include "api/campaign_wire.hpp"
#include "obs/obs.hpp"

namespace ftsched {

SamplerSpec SamplerSpec::uniform_k(std::size_t k) {
  SamplerSpec spec;
  spec.kind = Kind::kUniformK;
  spec.failures = k;
  return spec;
}

SamplerSpec SamplerSpec::exponential(double rate, double horizon) {
  SamplerSpec spec;
  spec.kind = Kind::kExponential;
  spec.rate = rate;
  spec.horizon = horizon;
  return spec;
}

SamplerSpec SamplerSpec::weibull(double shape, double scale, double horizon) {
  SamplerSpec spec;
  spec.kind = Kind::kWeibull;
  spec.shape = shape;
  spec.scale = scale;
  spec.horizon = horizon;
  return spec;
}

SamplerSpec SamplerSpec::window(std::size_t k, double theta_lo,
                                double theta_hi) {
  SamplerSpec spec;
  spec.kind = Kind::kWindow;
  spec.failures = k;
  spec.theta_lo = theta_lo;
  spec.theta_hi = theta_hi;
  return spec;
}

SamplerSpec SamplerSpec::groups(std::size_t group_size, double group_prob,
                                double theta_lo, double theta_hi) {
  SamplerSpec spec;
  spec.kind = Kind::kGroups;
  spec.group_size = group_size;
  spec.group_prob = group_prob;
  spec.theta_lo = theta_lo;
  spec.theta_hi = theta_hi;
  return spec;
}

std::unique_ptr<caft::ScenarioSampler> SamplerSpec::build(
    std::size_t procs) const {
  switch (kind) {
    case Kind::kUniformK:
      return std::make_unique<caft::UniformKSampler>(procs, failures);
    case Kind::kExponential:
      return std::make_unique<caft::ExponentialLifetimeSampler>(procs, rate,
                                                                horizon);
    case Kind::kWeibull:
      return std::make_unique<caft::WeibullLifetimeSampler>(procs, shape,
                                                            scale, horizon);
    case Kind::kWindow:
      return std::make_unique<caft::CrashWindowSampler>(procs, failures,
                                                        theta_lo, theta_hi);
    case Kind::kGroups:
      return std::make_unique<caft::CorrelatedGroupSampler>(
          procs, group_size, group_prob, theta_lo, theta_hi);
  }
  throw caft::CheckError("unhandled sampler kind");
}

double CampaignSpec::theta_bucket_width(double schedule_horizon) const {
  if (theta_buckets == 0) return 0.0;
  // A zero or non-finite horizon (empty instance, fully-dead schedule)
  // admits no bucket width: horizon / buckets would be 0, inf or NaN, and a
  // 0-width bucket silently degenerates to exact replays while inf/NaN
  // poison every quantized crash time. Refuse loudly; the exact path is
  // the meaningful option for such schedules.
  CAFT_CHECK_MSG(
      std::isfinite(schedule_horizon) && schedule_horizon > 0.0,
      "theta buckets are underivable for a zero or non-finite schedule "
      "horizon — run such schedules exact (CampaignSpec::exact / --exact)");
  return schedule_horizon / static_cast<double>(theta_buckets);
}

const CampaignRun* CampaignReport::find(const std::string& algorithm) const {
  for (const CampaignRun& run : runs)
    if (run.algorithm == algorithm) return &run;
  return nullptr;
}

std::vector<std::pair<std::string, caft::CampaignSummary>>
CampaignReport::summary_rows() const {
  std::vector<std::pair<std::string, caft::CampaignSummary>> rows;
  rows.reserve(runs.size());
  for (const CampaignRun& run : runs)
    rows.emplace_back(display_name(run.algorithm), run.summary);
  return rows;
}

Session::Session(SessionOptions options) : options_(options) {}

namespace {

/// The spec checks every campaign entry point applies, whichever backend
/// runs it — evaluate_schedule and evaluate_saved both funnel through here
/// so a spec rejected by one path is rejected by all of them.
void validate_campaign_spec(const SessionOptions& options,
                            const CampaignSpec& spec) {
  CAFT_CHECK_MSG(spec.replays > 0, "campaign replays must be positive");
  if (spec.target_ci_width != 0.0) {
    CAFT_CHECK_MSG(std::isfinite(spec.target_ci_width) &&
                       spec.target_ci_width > 0.0 &&
                       spec.target_ci_width < 1.0,
                   "target CI width must be in (0, 1)");
  }
  // θ-quantization only exists on the incremental engine's shared memo;
  // reject the inert combinations rather than silently running an exact
  // campaign the caller believes is bucketed (spec.exact is the intentional
  // opt-out and stays allowed).
  if (spec.theta_buckets > 0 && !spec.exact) {
    CAFT_CHECK_MSG(options.engine == caft::CampaignEngine::kIncremental,
                   "theta buckets require the incremental engine");
    CAFT_CHECK_MSG(options.memo == caft::CampaignMemo::kShared,
                   "theta buckets require the shared memo");
  }
}

}  // namespace

caft::CampaignOptions Session::campaign_options(
    const CampaignSpec& spec, double schedule_horizon) const {
  caft::CampaignOptions campaign;
  campaign.replays = spec.replays;
  campaign.seed = spec.seed;
  campaign.quantiles = spec.quantiles;
  campaign.threads = options_.threads;
  campaign.block = options_.block;
  campaign.engine = options_.engine;
  campaign.memo = options_.memo;
  campaign.memo_capacity = options_.memo_capacity;
  campaign.memo_shards = options_.memo_shards;
  campaign.adaptive_snapshots = options_.adaptive_snapshots;
  campaign.exact = spec.exact;
  // An exact campaign never consults the width, so don't derive it —
  // deriving would (correctly) throw on the degenerate horizons the exact
  // path exists to serve.
  campaign.theta_bucket_width =
      spec.exact ? 0.0 : spec.theta_bucket_width(schedule_horizon);
  campaign.target_ci_width = spec.target_ci_width;
  campaign.on_progress = options_.on_progress;
  return campaign;
}

CampaignRun Session::evaluate_schedule(const Instance& instance,
                                       ScheduleResult result,
                                       const CampaignSpec& spec) const {
  return evaluate_schedule(instance, std::move(result), spec, nullptr);
}

CampaignRun Session::evaluate_schedule(
    const Instance& instance, ScheduleResult result, const CampaignSpec& spec,
    const caft::ReplayEngine* replay_template) const {
  validate_campaign_spec(options_, spec);

  CampaignRun run{.algorithm = result.algorithm,
                  .result = std::move(result),
                  .summary = {},
                  .telemetry = {},
                  .theta_bucket_width = 0.0};
  if (options_.exec.mode == ExecutionPolicy::Mode::kSubprocess)
    return evaluate_schedule_subprocess(instance, std::move(run), spec,
                                        nullptr);

  const auto sampler = spec.sampler.build(instance.proc_count());
  caft::CampaignOptions campaign =
      campaign_options(spec, run.result.schedule.horizon());
  campaign.prebuilt_engine = replay_template;
  run.theta_bucket_width = campaign.theta_bucket_width;
  run.summary = run_campaign(run.result.schedule, instance.costs(), *sampler,
                             campaign, &run.telemetry);
  return run;
}

CampaignReport Session::evaluate(const Instance& instance,
                                 const CampaignSpec& spec) const {
  return evaluate_saved(instance, spec, nullptr);
}

CampaignReport Session::evaluate_saved(
    const Instance& instance, const CampaignSpec& spec,
    const std::string* instance_path) const {
  CAFT_CHECK_MSG(!spec.algorithms.empty(),
                 "campaign spec names no algorithms");
  validate_campaign_spec(options_, spec);
  const SchedulerRegistry& registry = SchedulerRegistry::global();

  // In subprocess mode every algorithm's work orders reference the same
  // instance file, so one save covers the whole report — and a caller
  // (evaluate_batch) that already saved these bytes passes its path
  // through, making the save count one per *distinct content*, not one
  // per algorithm or per evaluate call.
  std::unique_ptr<caft::ScratchDir> scratch;
  std::string saved_path;
  if (options_.exec.mode == ExecutionPolicy::Mode::kSubprocess &&
      instance_path == nullptr) {
    scratch = std::make_unique<caft::ScratchDir>("ftsched-campaign");
    saved_path = scratch->file("instance.txt");
    instance.save(saved_path);
    obs::Registry::global().counter("campaign.instance.saves").add(1);
    instance_path = &saved_path;
  }

  CampaignReport report;
  report.runs.reserve(spec.algorithms.size());
  for (const std::string& algorithm : spec.algorithms) {
    const auto scheduler = registry.make(algorithm);
    ScheduleResult result = scheduler->schedule(instance, spec.request);
    if (options_.exec.mode == ExecutionPolicy::Mode::kSubprocess) {
      CampaignRun run{.algorithm = result.algorithm,
                      .result = std::move(result),
                      .summary = {},
                      .telemetry = {},
                      .theta_bucket_width = 0.0};
      report.runs.push_back(evaluate_schedule_subprocess(
          instance, std::move(run), spec, instance_path));
    } else {
      report.runs.push_back(
          evaluate_schedule(instance, std::move(result), spec, nullptr));
    }
  }
  return report;
}

std::vector<CampaignReport> Session::evaluate_batch(
    std::span<const Instance> instances, const CampaignSpec& spec) const {
  return evaluate_batch(instances, spec, options_.exec);
}

std::vector<CampaignReport> Session::evaluate_batch(
    std::span<const Instance> instances, const CampaignSpec& spec,
    const ExecutionPolicy& exec) const {
  // The per-instance campaigns are independent by construction and each one
  // already saturates its execution backend (the in-process thread budget,
  // or the subprocess worker pool), so instances run sequentially and the
  // parallelism lives inside evaluate().
  SessionOptions dispatch_options = options_;
  dispatch_options.exec = exec;
  const Session dispatch(dispatch_options);
  std::vector<CampaignReport> reports;
  reports.reserve(instances.size());

  if (exec.mode != ExecutionPolicy::Mode::kSubprocess) {
    for (const Instance& instance : instances)
      reports.push_back(dispatch.evaluate(instance, spec));
    return reports;
  }

  // Subprocess batches dedupe instance saves by content: sweeps routinely
  // evaluate the same DAG under several specs or repeated Instance objects,
  // and the archival text serialization is the expensive part of dispatch.
  // One file per distinct byte content (FNV-1a over the serialized form —
  // the same hash the server's content cache keys on), every evaluate of
  // equal content reuses it.
  const caft::ScratchDir scratch("ftsched-batch");
  std::map<std::uint64_t, std::string> saved;  // content hash -> saved path
  for (const Instance& instance : instances) {
    std::ostringstream bytes;
    instance.save(bytes);
    const std::uint64_t key = caft::fnv1a64(bytes.str());
    auto it = saved.find(key);
    if (it == saved.end()) {
      char name[32];
      std::snprintf(name, sizeof name, "instance-%016llx.txt",
                    static_cast<unsigned long long>(key));
      std::string path = scratch.file(name);
      std::ofstream out(path, std::ios::binary);
      out << bytes.str();
      CAFT_CHECK_MSG(out.good(), "cannot write batch instance file " + path);
      out.close();
      obs::Registry::global().counter("campaign.instance.saves").add(1);
      it = saved.emplace(key, std::move(path)).first;
    }
    reports.push_back(dispatch.evaluate_saved(instance, spec, &it->second));
  }
  return reports;
}

CampaignRun Session::evaluate_schedule_subprocess(
    const Instance& instance, CampaignRun run, const CampaignSpec& spec,
    const std::string* instance_path_hint) const {
  const ExecutionPolicy& exec = options_.exec;
  CAFT_CHECK_MSG(!exec.worker_command.empty(),
                 "subprocess execution needs ExecutionPolicy::worker_command "
                 "(a campaign_cli-compatible binary)");
  CAFT_CHECK_MSG(exec.n_workers > 0,
                 "subprocess execution needs at least one worker");

  // Hand the instance to workers through the archival text format (exact
  // double round-trip); scheduling is deterministic, so every worker
  // rebuilds the coordinator's schedule bit-for-bit — and proves it against
  // the `expect` pins below. A caller that already saved these bytes
  // (evaluate_saved / evaluate_batch) passes its path, and no new file is
  // written here.
  std::unique_ptr<caft::ScratchDir> scratch;
  std::string instance_path;
  if (instance_path_hint != nullptr) {
    instance_path = *instance_path_hint;
  } else {
    scratch = std::make_unique<caft::ScratchDir>("ftsched-campaign");
    instance_path = scratch->file("instance.txt");
    instance.save(instance_path);
    obs::Registry::global().counter("campaign.instance.saves").add(1);
  }

  const double horizon = run.result.schedule.horizon();
  const caft::CampaignOptions campaign = campaign_options(spec, horizon);
  run.theta_bucket_width = campaign.theta_bucket_width;

  // Work-order template shared by every block.
  CampaignWorkOrder order;
  order.instance_path = instance_path;
  order.algorithm = run.algorithm;
  order.spec = spec;
  // Pin the resolved ε and model: the worker re-schedules from the raw
  // instance file, which carries neither RunOptions field.
  order.spec.request.eps = run.result.eps;
  order.spec.request.model = run.result.schedule.model();
  order.threads = exec.worker_threads;
  order.engine = options_.engine;
  order.memo = options_.memo;
  order.block = options_.block;
  order.memo_capacity = options_.memo_capacity;
  order.memo_shards = options_.memo_shards;
  order.adaptive_snapshots = options_.adaptive_snapshots;
  order.expect_makespan = run.result.makespan;
  order.expect_horizon = horizon;

  // Contiguous blocks of the canonical scenario stream. The partition is
  // invisible in the summary (any partition folds to the same stream); it
  // only sets the retry/straggler granularity.
  std::size_t chunk = exec.block_replays;
  if (chunk == 0)
    chunk = std::max<std::size_t>(
        1, (spec.replays + exec.n_workers * 4 - 1) / (exec.n_workers * 4));
  struct Block {
    std::size_t first;
    std::size_t count;
  };
  std::vector<Block> blocks;
  for (std::size_t first = 0; first < spec.replays; first += chunk)
    blocks.push_back({first, std::min(chunk, spec.replays - first)});

  // Streaming fold state (PR 7). Completed partials enter a reorder window
  // keyed by block index; whenever the window holds the fold frontier
  // (next_to_fold), that block folds into the single accumulator and is
  // freed. Claims are gated on the same frontier — a dispatcher may only
  // claim block b while b < next_to_fold + window — so at any instant the
  // blocks past the frontier (in a worker, in the window, or both) number
  // at most `window`: coordinator memory is O(window × block), never
  // O(replays). Deadlock-free because claims are monotone and a claimed
  // block either folds (advancing the frontier and waking waiters) or
  // fails the campaign (also waking waiters): the frontier block is always
  // claimed and always progressing.
  //
  // The fold itself is byte-identical to the buffered coordinator and to
  // an in-process run by construction: records still fold in canonical
  // scenario order, only *when* each block folds changed.
  const std::size_t window =
      exec.reorder_window > 0
          ? exec.reorder_window
          : std::max<std::size_t>(2 * exec.n_workers, 4);
  const auto sampler = spec.sampler.build(instance.proc_count());
  caft::CampaignAccumulator accumulator(run.result.schedule.eps(),
                                        spec.quantiles);
  accumulator.set_sampler_name(sampler->name());
  run.telemetry = {};

  std::mutex fold_mutex;  ///< guards everything in this block
  std::condition_variable fold_cv;
  std::map<std::size_t, CampaignPartialResult> reorder;
  std::size_t next_to_fold = 0;   ///< first block not yet folded
  std::size_t next_to_claim = 0;  ///< first block not yet claimed
  std::size_t window_peak = 0;    ///< most blocks `reorder` ever held
  std::size_t blocks_buffered = 0;  ///< completions that had to wait
  std::size_t folded_replays = 0;
  std::size_t folded_successes = 0;
  double worker_replay_seconds = 0.0;
  bool stop = false;  ///< early stop: target CI width reached
  std::atomic<bool> failed{false};
  std::string error;

  // Observability is strictly write-only: the registry is disabled unless a
  // consumer turned it on, spans/counters never steer dispatch, and the
  // progress callback fires under the fold mutex with canonical-prefix
  // counts (monotone by construction).
  obs::Registry& registry = obs::Registry::global();
  obs::Span coordinator_span = registry.span("campaign.subprocess", order.algorithm);
  obs::Span fold_span = registry.span("campaign.fold");
  obs::Counter retries_counter = registry.counter("campaign.worker.retries");
  obs::Histogram block_seconds =
      registry.histogram("campaign.worker.block.seconds");
  const std::chrono::steady_clock::time_point campaign_begin =
      std::chrono::steady_clock::now();
  std::atomic<std::size_t> retries_total{0};

  // Claim the next block index, or size() when the dispatcher should exit
  // (campaign failed, early stop, or no blocks left). Blocks until the
  // claim fits the reorder window.
  const auto claim = [&]() -> std::size_t {
    std::unique_lock<std::mutex> lock(fold_mutex);
    fold_cv.wait(lock, [&] {
      return failed.load() || stop || next_to_claim >= blocks.size() ||
             next_to_claim < next_to_fold + window;
    });
    if (failed.load() || stop || next_to_claim >= blocks.size())
      return blocks.size();
    return next_to_claim++;
  };

  // Hand a completed block to the reorder window and drain the fold
  // frontier. Folding under the mutex is deliberate: the accumulator is a
  // strictly sequential structure, and a fold step is microseconds next to
  // the subprocess replay that produced the block.
  const auto complete = [&](std::size_t b, CampaignPartialResult partial) {
    const std::lock_guard<std::mutex> lock(fold_mutex);
    if (b != next_to_fold) ++blocks_buffered;
    reorder.emplace(b, std::move(partial));
    window_peak = std::max(window_peak, reorder.size());
    bool advanced = false;
    for (auto it = reorder.find(next_to_fold); it != reorder.end();
         it = reorder.find(next_to_fold)) {
      const CampaignPartialResult& ready = it->second;
      for (const caft::ReplayRecord& record : ready.records)
        caft::fold_replay_record(accumulator, record);
      folded_replays += ready.count;
      folded_successes += ready.successes;
      // Telemetry sums across workers (snapshots are per-engine: max —
      // every worker builds the same engine).
      run.telemetry.memo_lookups += ready.telemetry.memo_lookups;
      run.telemetry.memo_hits += ready.telemetry.memo_hits;
      run.telemetry.memo_evictions += ready.telemetry.memo_evictions;
      run.telemetry.memo_entries += ready.telemetry.memo_entries;
      run.telemetry.snapshots =
          std::max(run.telemetry.snapshots, ready.telemetry.snapshots);
      if (ready.timing.present)
        worker_replay_seconds += ready.timing.replay_seconds;
      reorder.erase(it);
      ++next_to_fold;
      advanced = true;
    }
    if (!advanced) return;
    const caft::WilsonInterval ci =
        caft::wilson_interval(folded_successes, folded_replays);
    if (spec.target_ci_width > 0.0 && !stop && folded_replays > 0 &&
        ci.high - ci.low <= spec.target_ci_width)
      stop = true;  // already-claimed blocks still finish and fold
    if (options_.on_progress) {
      caft::CampaignProgress progress;
      progress.replays_done = folded_replays;
      progress.replays_total = spec.replays;
      progress.successes = folded_successes;
      progress.memo_lookups = run.telemetry.memo_lookups;
      progress.memo_hits = run.telemetry.memo_hits;
      progress.ci_width = ci.high - ci.low;
      options_.on_progress(progress);
    }
    fold_cv.notify_all();  // frontier moved: gated claims may proceed
  };

  // One dispatcher thread per worker slot: claim a block, spawn a worker
  // process for it, stream its stdout into an incremental parser, retry on
  // any failure (crash, nonzero exit, garbage or truncated output, wrong
  // block echoed back), give up after the retry budget and fail the whole
  // campaign loudly.
  const auto dispatch = [&](std::size_t slot) {
    // One trace track per worker slot: every spawn/retry span of this slot
    // lands on it, so Perfetto shows the pool's occupancy directly.
    const std::uint32_t track = 100 + static_cast<std::uint32_t>(slot);
    registry.set_track_label(track, "worker-slot-" + std::to_string(slot));
    for (std::size_t b = claim(); b < blocks.size(); b = claim()) {
      CampaignWorkOrder block_order = order;
      block_order.first = blocks[b].first;
      block_order.count = blocks[b].count;
      std::ostringstream doc;
      write_campaign_work_order(doc, block_order);

      std::string last_failure;
      bool done = false;
      // `!failed` also here: once any block exhausts its budget the
      // campaign is doomed — don't keep spawning retries for it.
      for (std::size_t attempt = 0;
           attempt <= exec.max_retries && !done && !failed.load();
           ++attempt) {
        if (attempt > 0) {
          retries_counter.add(1);
          retries_total.fetch_add(1, std::memory_order_relaxed);
        }
        const double attempt_begin_us = registry.now_us();
        const std::chrono::steady_clock::time_point attempt_begin =
            std::chrono::steady_clock::now();
        // Worker stdout streams into the incremental reader as it arrives:
        // the coordinator never holds a block's full wire text next to its
        // parsed records (the reader latches parse errors; take() below
        // throws them, after the child is reaped).
        CampaignPartialReader reader;
        const caft::SubprocessResult child = caft::run_subprocess(
            {exec.worker_command, "--worker"}, doc.str(),
            [&reader](const char* data, std::size_t size) {
              reader.feed(data, size);
            });
        if (!child.ok()) {
          last_failure = child.describe_failure();
          if (registry.tracing())
            registry.complete_event(
                "worker.spawn.failed[" + std::to_string(blocks[b].first) +
                    "," + std::to_string(blocks[b].count) + ")",
                attempt_begin_us, registry.now_us() - attempt_begin_us,
                track);
          continue;
        }
        try {
          CampaignPartialResult partial = reader.take();
          CAFT_CHECK_MSG(partial.algorithm == block_order.algorithm,
                         "worker answered for algorithm '" +
                             partial.algorithm + "'");
          CAFT_CHECK_MSG(partial.first == block_order.first &&
                             partial.count == block_order.count,
                         "worker answered the wrong scenario block");
          complete(b, std::move(partial));
          done = true;
        } catch (const std::exception& parse_error) {
          last_failure = parse_error.what();
        }
        const std::chrono::duration<double> attempt_elapsed =
            std::chrono::steady_clock::now() - attempt_begin;
        if (registry.tracing())
          registry.complete_event(
              std::string(done ? "worker.block[" : "worker.retry[") +
                  std::to_string(blocks[b].first) + "," +
                  std::to_string(blocks[b].count) + ")",
              attempt_begin_us, registry.now_us() - attempt_begin_us, track);
        if (done) block_seconds.observe(attempt_elapsed.count());
      }
      if (!done) {
        const std::lock_guard<std::mutex> lock(fold_mutex);
        if (error.empty())
          error = "campaign worker failed on scenario block [" +
                  std::to_string(blocks[b].first) + ", " +
                  std::to_string(blocks[b].first + blocks[b].count) +
                  ") after " + std::to_string(exec.max_retries + 1) +
                  " attempts: " + last_failure;
        failed.store(true);
        fold_cv.notify_all();  // wake window-gated claimers to exit
      }
    }
  };
  const std::size_t dispatchers = std::min(exec.n_workers, blocks.size());
  if (dispatchers <= 1) {
    dispatch(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(dispatchers);
    for (std::size_t t = 0; t < dispatchers; ++t)
      pool.emplace_back(dispatch, t);
    for (std::thread& thread : pool) thread.join();
  }
  if (failed.load()) throw caft::CheckError(error);
  // Every claimed block folded: claims are monotone, so the folded set is
  // the contiguous canonical prefix [0, next_to_claim) — the invariant
  // that makes an early-stopped summary a truncated-campaign summary, not
  // a subsampled one.
  CAFT_CHECK_MSG(next_to_fold == next_to_claim && reorder.empty(),
                 "streaming fold frontier did not drain");
  run.summary = accumulator.summary();
  fold_span.finish();

  // Execution-shape telemetry: same fields the in-process backend reports,
  // so a CampaignRun reads identically whichever backend produced it.
  const std::chrono::duration<double> campaign_elapsed =
      std::chrono::steady_clock::now() - campaign_begin;
  run.telemetry.replays = folded_replays;
  run.telemetry.blocks = next_to_fold;
  run.telemetry.workers = dispatchers;
  run.telemetry.worker_retries = retries_total.load();
  run.telemetry.wall_seconds = campaign_elapsed.count();
  run.telemetry.fold_window_peak = window_peak;
  coordinator_span.finish();

  // Worker processes run with *their* registries disabled, so the
  // coordinator is the single place their counters reach this process's
  // metrics — no double counting with the in-process path, which folds
  // inside run_campaign instead.
  if (registry.enabled()) {
    registry.counter("campaign.replays").add(folded_replays);
    registry.counter("campaign.blocks").add(next_to_fold);
    registry.gauge("campaign.fold.window_peak")
        .set(static_cast<double>(window_peak));
    registry.counter("campaign.fold.blocks_buffered").add(blocks_buffered);
    registry.counter("campaign.memo.lookups").add(run.telemetry.memo_lookups);
    registry.counter("campaign.memo.hits").add(run.telemetry.memo_hits);
    registry.counter("campaign.memo.evictions")
        .add(run.telemetry.memo_evictions);
    registry.gauge("campaign.memo.entries")
        .set(static_cast<double>(run.telemetry.memo_entries));
    registry.gauge("campaign.snapshots")
        .set(static_cast<double>(run.telemetry.snapshots));
    if (campaign_elapsed.count() > 0.0)
      registry.gauge("campaign.replays_per_second")
          .set(static_cast<double>(folded_replays) /
               campaign_elapsed.count());
    if (worker_replay_seconds > 0.0)
      registry.gauge("campaign.worker.replay_seconds_total")
          .set(worker_replay_seconds);
  }
  return run;
}

void run_campaign_worker(std::istream& in, std::ostream& out) {
  // Worker-side timings ride back on the partial's optional `timing` line.
  // steady_clock, measured unconditionally (the cost is three clock reads
  // per block) — whether anyone *records* them is the coordinator's call.
  const std::chrono::steady_clock::time_point worker_begin =
      std::chrono::steady_clock::now();
  const CampaignWorkOrder order = read_campaign_work_order(in);
  const Instance instance = Instance::load(order.instance_path);
  const auto scheduler = SchedulerRegistry::global().make(order.algorithm);
  const ScheduleResult scheduled =
      scheduler->schedule(instance, order.spec.request);
  // Determinism pins: the schedule this worker replays must be bit-for-bit
  // the coordinator's. A mismatch means environment drift (mixed binaries,
  // different code) that would silently corrupt the campaign — refuse.
  if (!std::isnan(order.expect_makespan))
    CAFT_CHECK_MSG(scheduled.makespan == order.expect_makespan,
                   "worker schedule diverged from the coordinator's "
                   "(makespan mismatch — mixed worker binaries?)");
  const double horizon = scheduled.schedule.horizon();
  if (!std::isnan(order.expect_horizon))
    CAFT_CHECK_MSG(horizon == order.expect_horizon,
                   "worker schedule diverged from the coordinator's "
                   "(horizon mismatch — mixed worker binaries?)");

  const auto sampler = order.spec.sampler.build(instance.proc_count());
  caft::CampaignOptions campaign;
  campaign.replays = order.spec.replays;
  campaign.seed = order.spec.seed;
  campaign.quantiles = order.spec.quantiles;
  campaign.threads = order.threads;
  campaign.block = order.block;
  campaign.engine = order.engine;
  campaign.memo = order.memo;
  campaign.memo_capacity = order.memo_capacity;
  campaign.memo_shards = order.memo_shards;
  campaign.adaptive_snapshots = order.adaptive_snapshots;
  campaign.exact = order.spec.exact;
  // The shared derivation (CampaignSpec::theta_bucket_width) — horizon is
  // pinned above, so the width matches the coordinator's bit-for-bit (and
  // like the coordinator, an exact campaign never derives one).
  campaign.theta_bucket_width =
      order.spec.exact ? 0.0 : order.spec.theta_bucket_width(horizon);

  // Stream the partial document: header up front, each completed wave's
  // records the moment they exist, the mergeable fold state (`counts`) and
  // telemetry/timing as the footer. The worker never materialises the
  // whole block, so its memory — like the coordinator's — is bounded by
  // the wave size, not the block size. Flushing per wave is what lets the
  // coordinator's incremental reader overlap parsing with the replay.
  caft::CampaignTelemetry telemetry;
  std::size_t successes = 0;
  std::size_t written = 0;
  write_campaign_partial_header(out, order.algorithm, order.first,
                                order.count);
  const std::chrono::steady_clock::time_point replay_begin =
      std::chrono::steady_clock::now();
  run_campaign_block_streamed(
      scheduled.schedule, instance.costs(), *sampler, campaign, order.first,
      order.count, &telemetry,
      [&](const caft::ReplayRecord* records, std::size_t count) {
        write_campaign_partial_records(out, records, count);
        out.flush();
        for (std::size_t i = 0; i < count; ++i)
          if (records[i].success) ++successes;
        written += count;
      });
  const std::chrono::steady_clock::time_point worker_end =
      std::chrono::steady_clock::now();
  WorkerTiming timing;
  timing.present = true;
  timing.schedule_seconds =
      std::chrono::duration<double>(replay_begin - worker_begin).count();
  timing.replay_seconds =
      std::chrono::duration<double>(worker_end - replay_begin).count();
  timing.wall_seconds =
      std::chrono::duration<double>(worker_end - worker_begin).count();
  write_campaign_partial_footer(out, written, successes, telemetry, timing);
  out.flush();
}

}  // namespace ftsched
