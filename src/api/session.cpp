#include "api/session.hpp"

#include "common/check.hpp"

namespace ftsched {

SamplerSpec SamplerSpec::uniform_k(std::size_t k) {
  SamplerSpec spec;
  spec.kind = Kind::kUniformK;
  spec.failures = k;
  return spec;
}

SamplerSpec SamplerSpec::exponential(double rate, double horizon) {
  SamplerSpec spec;
  spec.kind = Kind::kExponential;
  spec.rate = rate;
  spec.horizon = horizon;
  return spec;
}

SamplerSpec SamplerSpec::weibull(double shape, double scale, double horizon) {
  SamplerSpec spec;
  spec.kind = Kind::kWeibull;
  spec.shape = shape;
  spec.scale = scale;
  spec.horizon = horizon;
  return spec;
}

SamplerSpec SamplerSpec::window(std::size_t k, double theta_lo,
                                double theta_hi) {
  SamplerSpec spec;
  spec.kind = Kind::kWindow;
  spec.failures = k;
  spec.theta_lo = theta_lo;
  spec.theta_hi = theta_hi;
  return spec;
}

SamplerSpec SamplerSpec::groups(std::size_t group_size, double group_prob,
                                double theta_lo, double theta_hi) {
  SamplerSpec spec;
  spec.kind = Kind::kGroups;
  spec.group_size = group_size;
  spec.group_prob = group_prob;
  spec.theta_lo = theta_lo;
  spec.theta_hi = theta_hi;
  return spec;
}

std::unique_ptr<caft::ScenarioSampler> SamplerSpec::build(
    std::size_t procs) const {
  switch (kind) {
    case Kind::kUniformK:
      return std::make_unique<caft::UniformKSampler>(procs, failures);
    case Kind::kExponential:
      return std::make_unique<caft::ExponentialLifetimeSampler>(procs, rate,
                                                                horizon);
    case Kind::kWeibull:
      return std::make_unique<caft::WeibullLifetimeSampler>(procs, shape,
                                                            scale, horizon);
    case Kind::kWindow:
      return std::make_unique<caft::CrashWindowSampler>(procs, failures,
                                                        theta_lo, theta_hi);
    case Kind::kGroups:
      return std::make_unique<caft::CorrelatedGroupSampler>(
          procs, group_size, group_prob, theta_lo, theta_hi);
  }
  throw caft::CheckError("unhandled sampler kind");
}

const CampaignRun* CampaignReport::find(const std::string& algorithm) const {
  for (const CampaignRun& run : runs)
    if (run.algorithm == algorithm) return &run;
  return nullptr;
}

std::vector<std::pair<std::string, caft::CampaignSummary>>
CampaignReport::summary_rows() const {
  std::vector<std::pair<std::string, caft::CampaignSummary>> rows;
  rows.reserve(runs.size());
  for (const CampaignRun& run : runs)
    rows.emplace_back(display_name(run.algorithm), run.summary);
  return rows;
}

Session::Session(SessionOptions options) : options_(options) {}

caft::CampaignOptions Session::campaign_options(
    const CampaignSpec& spec, double schedule_horizon) const {
  caft::CampaignOptions campaign;
  campaign.replays = spec.replays;
  campaign.seed = spec.seed;
  campaign.quantiles = spec.quantiles;
  campaign.threads = options_.threads;
  campaign.block = options_.block;
  campaign.engine = options_.engine;
  campaign.memo = options_.memo;
  campaign.memo_capacity = options_.memo_capacity;
  campaign.memo_shards = options_.memo_shards;
  campaign.adaptive_snapshots = options_.adaptive_snapshots;
  campaign.exact = spec.exact;
  campaign.theta_bucket_width =
      spec.theta_buckets > 0
          ? schedule_horizon / static_cast<double>(spec.theta_buckets)
          : 0.0;
  return campaign;
}

CampaignRun Session::evaluate_schedule(const Instance& instance,
                                       ScheduleResult result,
                                       const CampaignSpec& spec) const {
  CAFT_CHECK_MSG(spec.replays > 0, "campaign replays must be positive");
  // θ-quantization only exists on the incremental engine's shared memo;
  // reject the inert combinations rather than silently running an exact
  // campaign the caller believes is bucketed (spec.exact is the intentional
  // opt-out and stays allowed).
  if (spec.theta_buckets > 0 && !spec.exact) {
    CAFT_CHECK_MSG(options_.engine == caft::CampaignEngine::kIncremental,
                   "theta buckets require the incremental engine");
    CAFT_CHECK_MSG(options_.memo == caft::CampaignMemo::kShared,
                   "theta buckets require the shared memo");
  }

  const auto sampler = spec.sampler.build(instance.proc_count());
  CampaignRun run{.algorithm = result.algorithm,
                  .result = std::move(result),
                  .summary = {},
                  .telemetry = {},
                  .theta_bucket_width = 0.0};
  const caft::CampaignOptions campaign =
      campaign_options(spec, run.result.schedule.horizon());
  run.theta_bucket_width = spec.exact ? 0.0 : campaign.theta_bucket_width;
  run.summary = run_campaign(run.result.schedule, instance.costs(), *sampler,
                             campaign, &run.telemetry);
  return run;
}

CampaignReport Session::evaluate(const Instance& instance,
                                 const CampaignSpec& spec) const {
  CAFT_CHECK_MSG(!spec.algorithms.empty(),
                 "campaign spec names no algorithms");
  const SchedulerRegistry& registry = SchedulerRegistry::global();
  CampaignReport report;
  report.runs.reserve(spec.algorithms.size());
  for (const std::string& algorithm : spec.algorithms) {
    const auto scheduler = registry.make(algorithm);
    report.runs.push_back(evaluate_schedule(
        instance, scheduler->schedule(instance, spec.request), spec));
  }
  return report;
}

std::vector<CampaignReport> Session::evaluate_batch(
    std::span<const Instance> instances, const CampaignSpec& spec) const {
  // Sequential for now — each campaign already saturates the Session's
  // thread budget internally. When campaigns scale out across processes
  // (ROADMAP), this loop becomes the dispatch point; the per-instance
  // results are independent by construction.
  std::vector<CampaignReport> reports;
  reports.reserve(instances.size());
  for (const Instance& instance : instances)
    reports.push_back(evaluate(instance, spec));
  return reports;
}

}  // namespace ftsched
