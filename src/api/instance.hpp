/// \file api/instance.hpp
/// `ftsched::Instance` — the owning bundle every consumer of this library
/// schedules against: one task graph, one platform, one cost model, plus the
/// per-run options (ε, communication model) all schedulers share.
///
/// Why a class instead of three loose references: the core types
/// cross-reference each other by pointer (CostModel keeps a pointer to its
/// Platform, Schedule keeps pointers to its TaskGraph and Platform), so the
/// lifetime and address stability of the parts is a contract every caller
/// used to re-implement with ad-hoc unique_ptr plumbing. The Instance owns
/// the parts behind one stable heap allocation: it is movable, the addresses
/// of graph()/platform()/costs() never change, and any Schedule produced
/// from it stays valid for as long as the Instance lives.
///
/// Loading and saving go through io/instance_io (the archival text format),
/// so CLIs, tests and services all share a single serialization path.
///
/// `validate()` front-loads the checks that used to surface as CHECK
/// failures deep inside list_core mid-run: ε ≥ m (more replicas than
/// processors), cost-model/graph and cost-model/platform size mismatches,
/// and the 64-processor support-mask cap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "dag/task_graph.hpp"
#include "io/instance_io.hpp"
#include "platform/cost_model.hpp"
#include "platform/cost_synthesis.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace ftsched {

/// Options every scheduler in the registry understands. They live on the
/// Instance (the natural scope: ε is a property of the reliability target of
/// a run, not of an algorithm); a ScheduleRequest can override per call.
struct RunOptions {
  std::size_t eps = 0;  ///< failures ε to tolerate (ε+1 replicas per task)
  caft::CommModelKind model = caft::CommModelKind::kOnePort;
};

/// Owning, movable, address-stable bundle of graph + platform + costs (+ an
/// optional schedule loaded alongside, for replay tooling).
class Instance {
 public:
  /// Adopts pre-built parts. `costs` must have been built against
  /// `*platform` (checked); `schedule`, when given, against `graph`.
  Instance(caft::TaskGraph graph, std::unique_ptr<caft::Platform> platform,
           std::unique_ptr<caft::CostModel> costs, RunOptions options = {},
           std::unique_ptr<caft::Schedule> schedule = nullptr);

  /// Builds the platform in place and synthesizes costs against it with the
  /// paper's protocol, drawing from `rng` (shared-stream variant: the caller
  /// keeps control of the stream, e.g. graph and costs from one seed).
  Instance(caft::TaskGraph graph, caft::Platform platform,
           const caft::CostSynthesisParams& params, caft::Rng& rng,
           RunOptions options = {});

  /// Same, seeding a private stream — the one-liner for examples and tools.
  Instance(caft::TaskGraph graph, caft::Platform platform,
           const caft::CostSynthesisParams& params, std::uint64_t cost_seed,
           RunOptions options = {});

  Instance(Instance&&) noexcept = default;
  Instance& operator=(Instance&&) noexcept = default;

  /// Loads an instance file (io/instance_io format). A schedule serialized
  /// alongside is kept — see loaded_schedule(); its ε becomes options().eps.
  [[nodiscard]] static Instance load(const std::string& path,
                                     RunOptions options = {});

  /// Same, from an already-open stream — how services that receive instance
  /// bytes over a wire (the campaign server) load without touching disk.
  [[nodiscard]] static Instance load(std::istream& is, RunOptions options = {});

  /// Saves through the same io/instance_io path. `schedule` may be null
  /// (instance only) — pass e.g. &result.schedule to archive a run.
  void save(const std::string& path,
            const caft::Schedule* schedule = nullptr) const;

  /// Stream twin of save(): the serialized bytes are identical to the file
  /// form, so a content hash of either names the same instance.
  void save(std::ostream& os, const caft::Schedule* schedule = nullptr) const;

  [[nodiscard]] const caft::TaskGraph& graph() const {
    return *bundle_->graph;
  }
  [[nodiscard]] const caft::Platform& platform() const {
    return *bundle_->platform;
  }
  [[nodiscard]] const caft::CostModel& costs() const { return *bundle_->costs; }
  [[nodiscard]] std::size_t proc_count() const {
    return bundle_->platform->proc_count();
  }

  [[nodiscard]] const RunOptions& options() const { return options_; }
  [[nodiscard]] RunOptions& options() { return options_; }
  [[nodiscard]] std::size_t eps() const { return options_.eps; }
  void set_eps(std::size_t eps) { options_.eps = eps; }

  /// Schedule that was serialized in the loaded file; null when none (or
  /// when the instance was built in memory).
  [[nodiscard]] const caft::Schedule* loaded_schedule() const {
    return bundle_->schedule.get();
  }

  /// Hard-fails (caft::CheckError) on instances no scheduler can handle,
  /// with actionable messages instead of mid-run CHECK failures:
  ///   - empty graph;
  ///   - cost model sized for a different graph or platform;
  ///   - more than 64 processors (the support-mask cap of list_core);
  ///   - ε ≥ m — ε+1 replicas cannot occupy distinct processors.
  /// Validates `eps` (default: the instance's own options().eps).
  void validate() const { validate(options_.eps); }
  void validate(std::size_t eps) const;

 private:
  explicit Instance(std::unique_ptr<caft::InstanceBundle> bundle,
                    RunOptions options);

  /// All parts behind one stable allocation (see file comment). The
  /// InstanceBundle layout is reused so load() keeps the internal
  /// cross-references of a deserialized schedule intact.
  std::unique_ptr<caft::InstanceBundle> bundle_;
  RunOptions options_;
};

}  // namespace ftsched
