/// \file api/session.hpp
/// `ftsched::Session` — the batch/campaign service facade of the library.
///
/// A Session owns the execution policy of fault-injection campaigns: the
/// worker-thread budget, the replay engine choice, the shared-replay-memo
/// configuration (placement, capacity, shards) and the snapshot strategy.
/// Consumers describe *what* to evaluate declaratively — a `CampaignSpec`
/// names registered algorithms, a sampler distribution (`SamplerSpec`, plain
/// data so specs can cross process boundaries when campaigns scale out) and
/// the replay/seed budget — and the Session turns it into scheduled
/// instances and folded `CampaignReport`s.
///
/// Determinism contract (inherited from campaign/run_campaign): a report is
/// a pure function of (instance, spec) — thread count, engine, memo
/// placement and block size never change a summary. `evaluate` is therefore
/// bit-identical to hand-rolling registry->schedule + run_campaign with the
/// same seeds, and tests/test_api.cpp holds it to that.
///
/// `evaluate_batch` is the multi-instance entry point and the single choke
/// point of process-level campaign scale-out: an `ExecutionPolicy` can fan
/// each campaign's scenario stream out to worker processes (see
/// api/campaign_wire.hpp for the protocol) — the deterministic split-stream
/// contract makes the results placement-independent, and the coordinator's
/// canonical-order fold makes them *byte-identical* to in-process runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "api/instance.hpp"
#include "api/scheduler.hpp"
#include "campaign/campaign.hpp"
#include "campaign/scenario_sampler.hpp"
#include "campaign/stats.hpp"

namespace ftsched {

/// Declarative crash-distribution configuration — the data form of the
/// campaign/scenario_sampler class family. Build with the factories.
struct SamplerSpec {
  enum class Kind {
    kUniformK,     ///< k distinct processors dead from t=0 (paper model)
    kExponential,  ///< per-processor exponential lifetimes
    kWeibull,      ///< per-processor Weibull lifetimes
    kWindow,       ///< k processors crash at θ ~ U[theta_lo, theta_hi]
    kGroups,       ///< contiguous groups fail together at a shared θ
  };
  Kind kind = Kind::kUniformK;
  std::size_t failures = 1;  ///< k (uniform-k, window)
  double rate = 0.001;       ///< exponential
  double shape = 1.5;        ///< weibull
  double scale = 1000.0;     ///< weibull
  /// Lifetimes beyond the horizon are censored to "never fails".
  double horizon = std::numeric_limits<double>::infinity();
  double theta_lo = 0.0;  ///< window/groups crash-time window
  double theta_hi = 0.0;
  std::size_t group_size = 2;  ///< groups
  double group_prob = 0.1;     ///< groups

  [[nodiscard]] static SamplerSpec uniform_k(std::size_t k);
  [[nodiscard]] static SamplerSpec exponential(
      double rate,
      double horizon = std::numeric_limits<double>::infinity());
  [[nodiscard]] static SamplerSpec weibull(
      double shape, double scale,
      double horizon = std::numeric_limits<double>::infinity());
  [[nodiscard]] static SamplerSpec window(std::size_t k, double theta_lo,
                                          double theta_hi);
  [[nodiscard]] static SamplerSpec groups(std::size_t group_size,
                                          double group_prob, double theta_lo,
                                          double theta_hi);

  /// Materializes the sampler for a platform of `procs` processors.
  [[nodiscard]] std::unique_ptr<caft::ScenarioSampler> build(
      std::size_t procs) const;

  /// The report/display name of the materialized sampler (delegates to the
  /// sampler class, the single source of that string).
  [[nodiscard]] std::string name(std::size_t procs) const {
    return build(procs)->name();
  }
};

/// What one campaign evaluates: which registered algorithms, under which
/// crash distribution, with which replay/seed budget.
struct CampaignSpec {
  /// Registry names, campaigned in this order. Every name is resolved via
  /// SchedulerRegistry::make — unknown names fail with the canonical
  /// "unknown algo 'x'; known: ..." error before any work starts.
  std::vector<std::string> algorithms = {"caft", "ftsa", "ftbar"};
  SamplerSpec sampler;
  std::size_t replays = 1000;
  std::uint64_t seed = 20080201;
  /// Latency quantiles to estimate, each in (0, 1).
  std::vector<double> quantiles = {0.5, 0.9, 0.99};
  /// θ-quantization: split each schedule's horizon into this many memo
  /// buckets (0 = off, bit-exact replays). Requires the Session to run the
  /// incremental engine with the shared memo.
  std::size_t theta_buckets = 0;
  /// Exactness escape hatch: bit-exact replays even with buckets set.
  bool exact = false;
  /// Early stopping: stop once the Wilson 95% interval around the folded
  /// prefix's success rate is at most this wide (0 = off, run all
  /// replays). The summary then covers a *contiguous canonical prefix* of
  /// the scenario stream. Where the cut lands differs by backend: the
  /// in-process backend checks at wave boundaries, so its stopping point
  /// is a deterministic function of (seed, SessionOptions::block) — this
  /// is what the campaign server relies on for byte-identical early-
  /// stopped reports. The subprocess backend checks as blocks fold, so its
  /// stopping point additionally depends on worker completion timing —
  /// deterministic per stopping point, but intentionally NOT byte-
  /// identical across runs or backends.
  double target_ci_width = 0.0;
  /// Forwarded to every scheduler (ε/model overrides, algorithm knobs).
  ScheduleRequest request;

  /// The memo bucket width theta_buckets implies for a schedule of this
  /// horizon (0 when theta_buckets == 0). The *single* derivation both the
  /// in-process path and the subprocess worker use — the width changes
  /// replay results, so the two sides must agree bit-for-bit. Throws
  /// caft::CheckError when buckets are requested for a zero or non-finite
  /// horizon (empty or fully-dead schedule): no meaningful width is
  /// derivable, so the caller must take the exact path instead of
  /// silently replaying with 0-width buckets.
  [[nodiscard]] double theta_bucket_width(double schedule_horizon) const;
};

/// How a Session physically executes campaigns: in this process (the
/// default) or fanned out across worker *processes*. Like every other
/// execution knob, the mode can never change a summary: the subprocess
/// backend assigns contiguous scenario blocks of the same deterministic
/// split-stream to workers (campaign_cli --worker speaking the
/// api/campaign_wire protocol) and folds their per-replay records back in
/// canonical scenario order, so subprocess summaries are byte-identical to
/// in-process ones for any worker count (the per-process replay memo is
/// unobservable by design).
struct ExecutionPolicy {
  enum class Mode {
    kInProcess,   ///< run campaigns inside this process (thread pool)
    kSubprocess,  ///< spawn worker processes, one scenario block at a time
  };
  Mode mode = Mode::kInProcess;
  /// Concurrent worker processes (subprocess mode).
  std::size_t n_workers = 2;
  /// Threads *each worker process* uses; keep n_workers × worker_threads
  /// near the machine's core count.
  std::size_t worker_threads = 1;
  /// Replays per worker block; 0 = auto (aims at ~4 blocks per worker, so
  /// a straggler or retried block costs a fraction of the campaign).
  std::size_t block_replays = 0;
  /// Reorder window of the coordinator's streaming fold (PR 7): at most
  /// this many blocks may be past the fold frontier at once — claimed,
  /// completed-and-buffered, or both — so coordinator memory is
  /// O(reorder_window × block_replays) records, never O(replays). Larger
  /// windows tolerate slower stragglers without idling dispatchers; 1
  /// serializes the fold (one block in flight at a time). 0 = auto
  /// (max(2 × n_workers, 4)). Can never change a summary — only when each
  /// buffered block folds.
  std::size_t reorder_window = 0;
  /// Extra attempts per block after a worker failure (crash, nonzero exit,
  /// unparseable output) before the campaign gives up.
  std::size_t max_retries = 2;
  /// Worker program: anything accepting `--worker` and speaking the
  /// campaign wire protocol on stdin/stdout — normally the campaign_cli
  /// binary. Required in subprocess mode.
  std::string worker_command;

  [[nodiscard]] static ExecutionPolicy in_process() { return {}; }
  [[nodiscard]] static ExecutionPolicy subprocess(std::string worker_command,
                                                  std::size_t n_workers = 2) {
    ExecutionPolicy policy;
    policy.mode = Mode::kSubprocess;
    policy.n_workers = n_workers;
    policy.worker_command = std::move(worker_command);
    return policy;
  }
};

/// Execution policy a Session owns — how campaigns run, never what they
/// compute (no field here can change a summary).
struct SessionOptions {
  /// Worker threads; 0 = default_thread_count() (CAFT_THREADS env).
  std::size_t threads = 0;
  caft::CampaignEngine engine = caft::CampaignEngine::kIncremental;
  caft::CampaignMemo memo = caft::CampaignMemo::kShared;
  std::size_t memo_capacity = 1 << 15;
  std::size_t memo_shards = 16;
  bool adaptive_snapshots = true;
  /// Replays simulated per parallel wave; bounds peak memory.
  std::size_t block = 1024;
  /// Where campaigns run: this process or a pool of worker processes.
  ExecutionPolicy exec;
  /// Live progress callback, invoked from the coordinating thread after
  /// each folded wave (in-process) or each advance of the streaming fold
  /// frontier (subprocess) — counts are always of the *folded canonical
  /// prefix*, so they are monotone at any worker count. Purely
  /// observational: summaries are identical whether it is set or not, and
  /// it must never be used to steer the campaign (the one sanctioned
  /// feedback, --target-ci-width early stopping, lives in CampaignSpec).
  std::function<void(const caft::CampaignProgress&)> on_progress;
};

/// Outcome of campaigning one algorithm on one instance.
struct CampaignRun {
  std::string algorithm;  ///< registry name
  ScheduleResult result;  ///< the schedule the campaign replayed
  caft::CampaignSummary summary;
  caft::CampaignTelemetry telemetry;
  double theta_bucket_width = 0.0;  ///< width actually used (0 = exact)
};

/// One instance's campaign outcomes, in spec.algorithms order.
struct CampaignReport {
  std::vector<CampaignRun> runs;

  [[nodiscard]] const CampaignRun* find(const std::string& algorithm) const;
  /// (display label, summary) rows for campaign_table — label is the
  /// uppercased registry name ("caft" -> "CAFT").
  [[nodiscard]] std::vector<std::pair<std::string, caft::CampaignSummary>>
  summary_rows() const;
};

/// The campaign service facade. Sessions are cheap; hold one per execution
/// policy (e.g. one per thread budget in a sweep).
class Session {
 public:
  explicit Session(SessionOptions options = {});

  [[nodiscard]] const SessionOptions& options() const { return options_; }

  /// Schedules every spec.algorithms entry via the registry, campaigns each
  /// schedule under spec.sampler, returns the runs in spec order.
  /// The report's schedules reference `instance` — same lifetime rule as
  /// ScheduleResult.
  [[nodiscard]] CampaignReport evaluate(const Instance& instance,
                                        const CampaignSpec& spec) const;

  /// Campaigns one pre-built schedule (no re-scheduling) — the building
  /// block evaluate() loops over, exposed for benches that schedule once
  /// and sweep campaign configurations. Takes the result by value (it is
  /// carried into the returned run); pass a copy to keep the original.
  [[nodiscard]] CampaignRun evaluate_schedule(const Instance& instance,
                                              ScheduleResult result,
                                              const CampaignSpec& spec) const;

  /// Same, reusing a caller-cached replay template (the campaign server's
  /// content-addressed ReplayEngine cache): a non-null `replay_template`
  /// must have been built from `result`'s schedule and `instance`'s costs
  /// with the θ-width/exact configuration this spec derives, and outlive
  /// the call. In-process backend only — the subprocess backend's engines
  /// live in worker processes, so the hint is ignored there. Results are
  /// bit-identical with and without the template (the engine's purity
  /// contract); only construction time is saved.
  [[nodiscard]] CampaignRun evaluate_schedule(
      const Instance& instance, ScheduleResult result,
      const CampaignSpec& spec,
      const caft::ReplayEngine* replay_template) const;

  /// Multi-instance entry point; reports in instance order. This is the
  /// choke point where campaigns scale out across processes: with a
  /// subprocess ExecutionPolicy (the session's, or the override below) each
  /// campaign's scenario stream is split into contiguous blocks, dispatched
  /// to worker processes, retried on failure, and folded back in canonical
  /// scenario order — byte-identical to the in-process result. Callers
  /// should prefer it over looping evaluate() so sharding stays transparent
  /// to them.
  [[nodiscard]] std::vector<CampaignReport> evaluate_batch(
      std::span<const Instance> instances, const CampaignSpec& spec) const;

  /// Same, with an explicit execution policy overriding the session's.
  [[nodiscard]] std::vector<CampaignReport> evaluate_batch(
      std::span<const Instance> instances, const CampaignSpec& spec,
      const ExecutionPolicy& exec) const;

 private:
  [[nodiscard]] caft::CampaignOptions campaign_options(
      const CampaignSpec& spec, double schedule_horizon) const;

  /// evaluate() with an optional pre-saved instance file: a non-null
  /// `instance_path` is handed to every subprocess work order instead of
  /// saving a fresh scratch copy — how evaluate_batch dedupes the handoff
  /// of instances that share content (one write per distinct content hash
  /// per batch). In-process campaigns ignore it.
  [[nodiscard]] CampaignReport evaluate_saved(
      const Instance& instance, const CampaignSpec& spec,
      const std::string* instance_path) const;

  /// The subprocess coordinator behind evaluate_schedule: blocks, workers,
  /// retries, canonical-order fold (api/session.cpp has the details).
  /// `instance_path`, when non-null, is a ready instance file to reference
  /// in work orders (no save); otherwise a scratch copy is written.
  [[nodiscard]] CampaignRun evaluate_schedule_subprocess(
      const Instance& instance, CampaignRun run, const CampaignSpec& spec,
      const std::string* instance_path) const;

  SessionOptions options_;
};

/// Executes one serialized campaign work order: reads the order from `in`,
/// loads the referenced instance, re-schedules the named algorithm
/// (bit-identical by determinism — the order's `expect` pins are verified),
/// replays the scenario block with run_campaign_block, and writes the
/// partial-result document to `out`. `campaign_cli --worker` is a thin
/// shell over this; it is exposed so tests can drive the worker protocol
/// without spawning processes.
void run_campaign_worker(std::istream& in, std::ostream& out);

}  // namespace ftsched
