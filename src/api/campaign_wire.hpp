/// \file campaign_wire.hpp
/// Text wire format of the process-parallel campaign backend: the work
/// order a coordinator sends to one worker process and the partial result
/// the worker sends back (see api/session.hpp for the coordinator and
/// worker entry points).
///
/// Both documents are line-oriented, keyed by the first token of each line
/// — the same family as io/instance_io — and every double crosses the wire
/// as a C hexadecimal float literal ("0x1.8p+3", plus "inf"/"nan"), so
/// values round-trip *bit-exactly*: the coordinator's canonical-order fold
/// of worker records must be indistinguishable from an in-process fold.
///
/// Work order (one block of one campaign):
///   caft-campaign-work v1
///   instance <path>                      # instance reference (io format)
///   algorithm <registry-name>
///   block <first> <count>                # contiguous canonical replays
///   replays <n>  /  seed <u64>
///   quantiles <k> <q...>                 # hexfloat
///   theta-buckets <n>  /  exact <0|1>
///   sampler <kind> <failures> <rate> <shape> <scale> <horizon>
///           <theta-lo> <theta-hi> <group-size> <group-prob>
///   request <eps|-> <model|-> <validate> <support> <one-to-one>
///           <batch-size> <mst>           # "-" = no override
///   exec <threads> <engine> <memo> <block> <memo-capacity> <memo-shards>
///        <adaptive>                      # summary-neutral worker knobs
///   expect <makespan> <horizon>          # coordinator's schedule, hexfloat;
///                                        # the worker re-schedules and must
///                                        # reproduce both bit-for-bit
///   end
///
/// Partial result (the worker's answer):
///   caft-campaign-partial v1
///   algorithm <name>
///   block <first> <count>
///   counts <replays> <successes>         # the block's Wilson inputs —
///                                        # integrity check on the records
///   telemetry <lookups> <hits> <evictions> <entries> <snapshots>
///   timing <wall> <schedule> <replay>    # OPTIONAL, v1-compatible: the
///                                        # worker's own steady_clock
///                                        # seconds (hexfloat) — whole
///                                        # invocation, re-schedule phase,
///                                        # replay phase. Observability
///                                        # only; a reader accepts its
///                                        # absence (pre-PR-6 workers)
///                                        # and the fold ignores it.
///   records <count>
///   r <success> <deadlock> <latency> <delivered> <relaxations> <failed>
///   ...                                  # one line per replay, in
///                                        # canonical replay order
///   end
///
/// Line order outside the record list is free (the reader is keyed by the
/// first token); streaming workers exploit that by emitting the `records`
/// list first and the `counts`/`telemetry`/`timing` lines last, so record
/// lines can leave the process before the block finishes computing
/// (write_campaign_partial_header/records/footer below).
///
/// Why per-replay records and not merged fold states: the summary's P²
/// quantile estimators and Welford moments are order-sensitive streaming
/// folds — merging two partial estimator states is not bit-identical to
/// streaming the observations in order. Shipping the fold *inputs* (one
/// compact record per replay) and re-folding them in canonical scenario
/// order at the coordinator is what makes subprocess summaries
/// byte-identical to single-process ones, for any worker count and any
/// block partition. The `counts` line carries the block-level fold state
/// that *is* mergeable (trial/success counts, i.e. the Wilson interval
/// inputs) and doubles as a corruption check: a reader rejects a document
/// whose records do not reproduce it.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "campaign/campaign.hpp"

namespace ftsched {

/// The building blocks every `caft-*` campaign document shares — exposed so
/// new documents (the campaign server's request/report family lives in
/// src/server/server_wire.hpp) speak the same dialect instead of growing a
/// second, subtly different one. Everything throws caft::CheckError on
/// malformed input, like the readers built from them.
namespace wire {

/// Doubles cross campaign wires as C hexadecimal float literals
/// ("0x1.8p+3", plus "inf"/"nan"): bit-exact round-trip,
/// locale-independent, and strtod parses them back natively.
[[nodiscard]] std::string format_double(double value);
[[nodiscard]] double parse_double(const std::string& token, const char* what);
/// Strict non-negative decimal integer ("12x", "", "-3" all throw).
[[nodiscard]] std::size_t parse_size(const std::string& token,
                                     const char* what);
/// Strict 0|1 flag.
[[nodiscard]] bool parse_bool(const std::string& token, const char* what);
/// Pulls the next whitespace token off `line`; throws when the line is
/// exhausted (every field of a keyed line is mandatory).
[[nodiscard]] std::string next_token(std::istringstream& line,
                                     const char* what);

/// Validates a document's first line against `<magic> v1`. Version skew
/// gets its own diagnostic: a matching magic at any other version ("caft-
/// campaign-work v2") names the version mismatch and tells the peer this
/// reader speaks v1, instead of the generic bad-magic error a corrupt line
/// earns — a future writer must be told to downgrade, not to debug
/// "corruption".
void check_magic_line(const std::string& line, const char* magic);
/// Reads the magic line `<magic> v1` from `is` (check_magic_line rules)
/// and positions the stream after it.
void expect_magic(std::istream& is, const char* magic);

/// The `sampler ...` spec line (kind + every distribution parameter,
/// doubles as hexfloat) — one writer/reader pair shared by the work order
/// and the server request, so the two documents cannot drift.
void write_sampler_line(std::ostream& os, const SamplerSpec& sampler);
void read_sampler_line(std::istringstream& fields, SamplerSpec& sampler);
/// The `request ...` spec line (ScheduleRequest with "-" for unset
/// optionals), same sharing story.
void write_request_line(std::ostream& os, const ScheduleRequest& request);
void read_request_line(std::istringstream& fields, ScheduleRequest& request);

}  // namespace wire

/// One unit of subprocess campaign work: replay the contiguous canonical
/// scenario block [first, first + count) of `spec`'s campaign against the
/// schedule `algorithm` produces on the referenced instance.
struct CampaignWorkOrder {
  std::string instance_path;  ///< io/instance_io file the worker loads
  std::string algorithm;      ///< registry name the worker re-schedules
  std::size_t first = 0;
  std::size_t count = 0;
  /// The declarative campaign (sampler, seed, quantiles, θ-quantization,
  /// request). The coordinator pins request.eps / request.model to the
  /// values its own scheduling run resolved, so the worker cannot drift.
  CampaignSpec spec;
  /// Summary-neutral execution knobs the worker honours (its private
  /// thread/engine/memo policy — same fields as SessionOptions).
  std::size_t threads = 1;
  caft::CampaignEngine engine = caft::CampaignEngine::kIncremental;
  caft::CampaignMemo memo = caft::CampaignMemo::kShared;
  std::size_t block = 1024;
  std::size_t memo_capacity = 1 << 15;
  std::size_t memo_shards = 16;
  bool adaptive_snapshots = true;
  /// Determinism pins: the coordinator's 0-crash makespan and horizon. A
  /// worker whose re-scheduled values differ bit-for-bit refuses to run
  /// (environment drift would silently corrupt the campaign). NaN = don't
  /// check (hand-written orders).
  double expect_makespan = std::numeric_limits<double>::quiet_NaN();
  double expect_horizon = std::numeric_limits<double>::quiet_NaN();
};

/// Worker-side wall-clock breakdown of one block (steady_clock seconds).
/// Observability only: never folded into the summary, and optional on the
/// wire so pre-existing partial documents stay readable.
struct WorkerTiming {
  bool present = false;           ///< the wire carried a timing line
  double wall_seconds = 0.0;      ///< whole worker invocation
  double schedule_seconds = 0.0;  ///< instance load + re-schedule + pins
  double replay_seconds = 0.0;    ///< run_campaign_block proper
};

/// One block's fold inputs plus its mergeable fold state and telemetry.
struct CampaignPartialResult {
  std::string algorithm;
  std::size_t first = 0;
  std::size_t count = 0;
  std::size_t successes = 0;  ///< Wilson inputs: (count, successes)
  std::vector<caft::ReplayRecord> records;  ///< canonical replay order
  caft::CampaignTelemetry telemetry;
  WorkerTiming timing;  ///< optional worker-side timings (observability)
};

void write_campaign_work_order(std::ostream& os,
                               const CampaignWorkOrder& order);
/// Parses a work order; throws caft::CheckError on malformed input.
[[nodiscard]] CampaignWorkOrder read_campaign_work_order(std::istream& is);

void write_campaign_partial(std::ostream& os,
                            const CampaignPartialResult& partial);
/// Parses a partial result; throws caft::CheckError on malformed input —
/// including a record list that disagrees with the `counts` line or the
/// `block` range, a block range whose `first + count` overflows, or a
/// `records` header that disagrees with the block's `count`.
[[nodiscard]] CampaignPartialResult read_campaign_partial(std::istream& is);

/// Chunked partial-result writer — the worker half of the streaming pipe.
/// A worker that replays a large block must not materialise every record
/// before the first byte of output; these three calls let it emit the
/// document incrementally:
///
///   write_campaign_partial_header(os, algorithm, first, count);
///   for each computed sub-block: write_campaign_partial_records(os, ...);
///   write_campaign_partial_footer(os, successes, telemetry, timing);
///
/// The header carries the `records <count>` line (count is the block size,
/// known up front); the mergeable fold state (`counts`) and telemetry land
/// in the footer, *after* the record lines — the reader is line-keyed and
/// validates the whole document at the end, so both orders parse
/// identically (write_campaign_partial keeps the legacy counts-first order
/// for whole-document writes).
void write_campaign_partial_header(std::ostream& os,
                                   const std::string& algorithm,
                                   std::size_t first, std::size_t count);
void write_campaign_partial_records(
    std::ostream& os, const caft::ReplayRecord* records, std::size_t count);
void write_campaign_partial_footer(std::ostream& os, std::size_t records,
                                   std::size_t successes,
                                   const caft::CampaignTelemetry& telemetry,
                                   const WorkerTiming& timing);

/// Incremental partial-result parser — the coordinator half of the
/// streaming pipe. Feed it raw stdout bytes as they arrive from the worker
/// (any chunking, including mid-line splits); it consumes complete lines
/// immediately, so the coordinator never holds a worker's full stdout
/// string next to the parsed records.
///
/// feed() never throws: a malformed document latches an error and further
/// input is ignored (the poll loop that delivers chunks must keep draining
/// the child regardless). finish() validates the complete document — the
/// same strictness contract as read_campaign_partial — and either returns
/// the parsed partial or throws caft::CheckError with the latched reason.
class CampaignPartialReader {
 public:
  /// Buffers `data` and consumes every complete line. Safe to call after
  /// an error (input is discarded).
  void feed(const char* data, std::size_t size) noexcept;

  /// True once a parse error has been latched; finish() will throw it.
  [[nodiscard]] bool failed() const { return !error_.empty(); }

  /// Validates end-of-stream (a trailing unterminated line, a missing
  /// `end`, count mismatches and every latched feed() error all throw) and
  /// returns the parsed partial. Call exactly once, after the last feed().
  [[nodiscard]] CampaignPartialResult take();

 private:
  void consume_line(const std::string& line);
  void fail(const std::string& why) noexcept;

  CampaignPartialResult partial_;
  std::string buffer_;          ///< bytes of the current (incomplete) line
  std::string error_;           ///< first latched parse error, empty = ok
  bool saw_magic_ = false;
  bool saw_end_ = false;
  bool saw_block_ = false;
  bool saw_counts_ = false;
  bool saw_records_ = false;
  std::size_t records_expected_ = 0;  ///< from the `records` header line
  std::size_t declared_records_ = 0;  ///< from the `counts` line
  std::size_t declared_successes_ = 0;
};

}  // namespace ftsched
