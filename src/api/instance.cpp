#include "api/instance.hpp"

#include <utility>

#include "common/check.hpp"

namespace ftsched {

namespace {

std::unique_ptr<caft::InstanceBundle> make_bundle(
    caft::TaskGraph graph, std::unique_ptr<caft::Platform> platform,
    std::unique_ptr<caft::CostModel> costs,
    std::unique_ptr<caft::Schedule> schedule) {
  CAFT_CHECK_MSG(platform != nullptr && costs != nullptr,
                 "instance needs a platform and a cost model");
  CAFT_CHECK_MSG(&costs->platform() == platform.get(),
                 "cost model was built against a different platform object");
  auto bundle = std::make_unique<caft::InstanceBundle>();
  bundle->graph = std::make_unique<caft::TaskGraph>(std::move(graph));
  bundle->platform = std::move(platform);
  bundle->costs = std::move(costs);
  bundle->schedule = std::move(schedule);
  return bundle;
}

}  // namespace

Instance::Instance(std::unique_ptr<caft::InstanceBundle> bundle,
                   RunOptions options)
    : bundle_(std::move(bundle)), options_(options) {}

Instance::Instance(caft::TaskGraph graph,
                   std::unique_ptr<caft::Platform> platform,
                   std::unique_ptr<caft::CostModel> costs, RunOptions options,
                   std::unique_ptr<caft::Schedule> schedule)
    : Instance(make_bundle(std::move(graph), std::move(platform),
                           std::move(costs), std::move(schedule)),
               options) {}

namespace {

std::unique_ptr<caft::InstanceBundle> synthesize_bundle(
    caft::TaskGraph graph, caft::Platform platform,
    const caft::CostSynthesisParams& params, caft::Rng& rng) {
  auto bundle = std::make_unique<caft::InstanceBundle>();
  bundle->graph = std::make_unique<caft::TaskGraph>(std::move(graph));
  bundle->platform = std::make_unique<caft::Platform>(std::move(platform));
  // Costs are synthesized against the *stored* platform so the internal
  // pointer is stable for the lifetime of the instance.
  bundle->costs = std::make_unique<caft::CostModel>(
      synthesize_costs(*bundle->graph, *bundle->platform, params, rng));
  return bundle;
}

}  // namespace

Instance::Instance(caft::TaskGraph graph, caft::Platform platform,
                   const caft::CostSynthesisParams& params, caft::Rng& rng,
                   RunOptions options)
    : Instance(synthesize_bundle(std::move(graph), std::move(platform), params,
                                 rng),
               options) {}

Instance::Instance(caft::TaskGraph graph, caft::Platform platform,
                   const caft::CostSynthesisParams& params,
                   std::uint64_t cost_seed, RunOptions options)
    : options_(options) {
  caft::Rng rng(cost_seed);
  bundle_ = synthesize_bundle(std::move(graph), std::move(platform), params,
                              rng);
}

Instance Instance::load(const std::string& path, RunOptions options) {
  auto bundle = std::make_unique<caft::InstanceBundle>(
      caft::load_instance_file(path));
  if (bundle->schedule != nullptr) {
    options.eps = bundle->schedule->eps();
    options.model = bundle->schedule->model();
  }
  return Instance(std::move(bundle), options);
}

Instance Instance::load(std::istream& is, RunOptions options) {
  auto bundle =
      std::make_unique<caft::InstanceBundle>(caft::load_instance(is));
  if (bundle->schedule != nullptr) {
    options.eps = bundle->schedule->eps();
    options.model = bundle->schedule->model();
  }
  return Instance(std::move(bundle), options);
}

void Instance::save(const std::string& path,
                    const caft::Schedule* schedule) const {
  caft::save_instance_file(path, graph(), platform(), costs(), schedule);
}

void Instance::save(std::ostream& os, const caft::Schedule* schedule) const {
  caft::save_instance(os, graph(), platform(), costs(), schedule);
}

void Instance::validate(std::size_t eps) const {
  const std::size_t tasks = graph().task_count();
  const std::size_t m = proc_count();
  CAFT_CHECK_MSG(tasks > 0, "instance has no tasks");
  CAFT_CHECK_MSG(
      costs().task_count() == tasks,
      "cost model covers " + std::to_string(costs().task_count()) +
          " tasks but the graph has " + std::to_string(tasks) +
          " — the costs were synthesized for a different graph");
  CAFT_CHECK_MSG(costs().proc_count() == m,
                 "cost model covers " + std::to_string(costs().proc_count()) +
                     " processors but the platform has " + std::to_string(m));
  CAFT_CHECK_MSG(m <= 64,
                 "platforms are capped at 64 processors (support masks are "
                 "64-bit); got m=" + std::to_string(m));
  CAFT_CHECK_MSG(eps < m,
                 "eps=" + std::to_string(eps) + " needs " +
                     std::to_string(eps + 1) +
                     " replicas per task on distinct processors, but the "
                     "platform has only m=" + std::to_string(m) +
                     " — eps must be < m");
}

}  // namespace ftsched
